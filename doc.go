// Package ampsched is a from-scratch reproduction of "Dynamic Thread
// Scheduling in Asymmetric Multicores to Maximize Performance-per-
// Watt" (Annamalai, Rodrigues, Koren, Kundu — IPPS 2012).
//
// The repository contains the full substrate the paper depends on —
// a cycle-level out-of-order dual-core simulator with the paper's two
// core personalities (internal/cpu), a Wattch-style power model
// (internal/power), a 37-benchmark synthetic workload suite
// (internal/workload) — plus the paper's contribution and baselines
// (internal/sched: the proposed fine-grained scheme, the HPE
// estimation scheme and Round Robin) and a harness that regenerates
// every table and figure of the evaluation (internal/experiments,
// driven by cmd/ampexperiments).
//
// Start with README.md, run the examples under examples/, and see
// DESIGN.md for the paper-to-code map and EXPERIMENTS.md for measured
// results.
package ampsched
