// schedulercompare reruns one multiprogrammed pair under every
// scheduling scheme of the paper — both static assignments, Round
// Robin, HPE and the proposed fine-grained scheme — and prints a
// comparison table, the §VII experiment in miniature.
//
//	go run ./examples/schedulercompare [-a gcc] [-b equake]
package main

import (
	"flag"
	"fmt"
	"math"
	"os"

	"ampsched/internal/experiments"
	"ampsched/internal/report"
	"ampsched/internal/workload"
)

func main() {
	benchA := flag.String("a", "mixstress", "benchmark for thread 0 (starts on INT core)")
	benchB := flag.String("b", "gcc", "benchmark for thread 1 (starts on FP core)")
	flag.Parse()

	a, err := workload.ByName(*benchA)
	check(err)
	b, err := workload.ByName(*benchB)
	check(err)

	opt := experiments.DefaultOptions()
	opt.InstrLimit = 1_000_000
	runner, err := experiments.NewRunner(opt)
	check(err)
	fmt.Fprintln(os.Stderr, "profiling for the HPE estimator (one-time)...")
	matrix, err := runner.Matrix()
	check(err)

	pair := experiments.Pair{A: a, B: b}
	schemes := []struct {
		name    string
		factory experiments.SchedFactory
	}{
		{"static (as placed)", experiments.StaticFactory()},
		{"roundrobin", runner.RRFactory(1)},
		{"hpe-matrix", runner.HPEFactory(matrix)},
		{"hpe-regression", nil}, // filled below
		{"proposed", runner.ProposedFactory()},
	}
	surface, err := runner.Surface()
	check(err)
	schemes[3].factory = runner.HPEFactory(surface)

	t := &report.Table{
		Title:   fmt.Sprintf("scheduling %s + %s (limit %d instructions)", a.Name, b.Name, opt.InstrLimit),
		Headers: []string{"scheme", "swaps", "IPCW(" + a.Name + ")", "IPCW(" + b.Name + ")", "geomean"},
	}
	for _, s := range schemes {
		res, err := runner.RunPair(0, pair, s.factory)
		check(err)
		geo := math.Sqrt(res.Threads[0].IPCPerWatt * res.Threads[1].IPCPerWatt)
		t.AddRow(s.name, fmt.Sprint(res.Swaps),
			report.F4(res.Threads[0].IPCPerWatt), report.F4(res.Threads[1].IPCPerWatt),
			report.F4(geo))
	}
	t.Note = "proposed should match or beat the best alternative; HPE reacts only at coarse intervals"
	check(t.Fprint(os.Stdout))
}

func check(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "schedulercompare:", err)
		os.Exit(1)
	}
}
