// service drives the simulation service end to end as a Go client: it
// submits a five-pair sweep to ampserve, follows the NDJSON stream as
// each pair finishes, and prints the paper's weighted IPC/Watt
// comparison (proposed vs HPE and Round Robin) as a table.
//
// With no -addr it starts an in-process service on an ephemeral port
// first, so the example is self-contained:
//
//	go run ./examples/service
//	go run ./examples/service -addr 127.0.0.1:8080   # against a daemon
package main

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"os"

	"ampsched/internal/experiments"
	"ampsched/internal/jobqueue"
	"ampsched/internal/server"
)

func main() {
	addr := ""
	if len(os.Args) > 2 && os.Args[1] == "-addr" {
		addr = os.Args[2]
	}
	if addr == "" {
		var stop func()
		var err error
		addr, stop, err = startInProcess()
		if err != nil {
			fail(err)
		}
		defer stop()
		fmt.Printf("started in-process service on %s\n\n", addr)
	}
	base := "http://" + addr

	// Submit a five-pair sweep. Seed picks the random pair draw; the
	// interval engine keeps the example fast while preserving ranking.
	spec := map[string]interface{}{"pairs": 5, "seed": 7, "fidelity": "interval"}
	body, err := json.Marshal(spec)
	if err != nil {
		fail(err)
	}
	resp, err := http.Post(base+"/v1/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		fail(err)
	}
	var submitted struct {
		ID    string `json:"id"`
		State string `json:"state"`
	}
	err = json.NewDecoder(resp.Body).Decode(&submitted)
	resp.Body.Close()
	if err != nil {
		fail(err)
	}
	fmt.Printf("job %s submitted (%s); streaming outcomes:\n\n", submitted.ID, submitted.State)

	// Follow the NDJSON stream: one line per finished pair, then a
	// terminal {"done":true,...} line.
	stream, err := http.Get(base + "/v1/jobs/" + submitted.ID + "/stream")
	if err != nil {
		fail(err)
	}
	defer stream.Body.Close()

	type pairLine struct {
		Done             bool    `json:"done"`
		State            string  `json:"state"`
		Error            string  `json:"error"`
		Pair             string  `json:"pair"`
		Cached           bool    `json:"cached"`
		Failed           bool    `json:"failed"`
		WeightedVsHPEPct float64 `json:"weighted_vs_hpe_pct"`
		WeightedVsRRPct  float64 `json:"weighted_vs_rr_pct"`
	}
	fmt.Printf("  %-24s %14s %14s %s\n", "pair", "vs HPE", "vs RR", "source")
	var sumHPE, sumRR float64
	var n int
	sc := bufio.NewScanner(stream.Body)
	for sc.Scan() {
		var l pairLine
		if err := json.Unmarshal(sc.Bytes(), &l); err != nil {
			fail(fmt.Errorf("bad stream line %q: %w", sc.Text(), err))
		}
		if l.Done {
			if l.State != "done" {
				fail(fmt.Errorf("job finished %s: %s", l.State, l.Error))
			}
			break
		}
		if l.Failed {
			fmt.Printf("  %-24s %30s\n", l.Pair, "degraded: "+l.Error)
			continue
		}
		source := "simulated"
		if l.Cached {
			source = "cache"
		}
		fmt.Printf("  %-24s %+13.2f%% %+13.2f%% %s\n", l.Pair, l.WeightedVsHPEPct, l.WeightedVsRRPct, source)
		sumHPE += l.WeightedVsHPEPct
		sumRR += l.WeightedVsRRPct
		n++
	}
	if err := sc.Err(); err != nil {
		fail(err)
	}
	if n == 0 {
		fail(fmt.Errorf("no pair completed"))
	}
	fmt.Printf("\n  mean weighted IPC/Watt gain of the proposed scheduler: %+.2f%% vs HPE, %+.2f%% vs RR over %d pairs\n",
		sumHPE/float64(n), sumRR/float64(n), n)
}

// startInProcess brings up the same stack ampserve runs, on an
// ephemeral port, with test-scale options.
func startInProcess() (addr string, stop func(), err error) {
	opt := experiments.DefaultOptions()
	opt.InstrLimit = 200_000
	opt.ContextSwitch = 20_000
	opt.ProfileInstrLimit = 100_000
	srv, err := server.New(server.Config{
		BaseOptions: opt,
		Queue:       jobqueue.Config{Workers: 4},
	})
	if err != nil {
		return "", nil, err
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return "", nil, err
	}
	hs := &http.Server{Handler: srv.Handler()}
	go func() { _ = hs.Serve(ln) }()
	stop = func() {
		if err := srv.Drain(context.Background()); err != nil {
			fmt.Fprintln(os.Stderr, "service: drain:", err)
		}
		if err := hs.Shutdown(context.Background()); err != nil {
			fmt.Fprintln(os.Stderr, "service: shutdown:", err)
		}
	}
	return ln.Addr().String(), stop, nil
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "service:", err)
	os.Exit(1)
}
