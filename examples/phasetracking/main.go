// phasetracking demonstrates the paper's core argument: a workload
// whose flavor changes on a scale shorter than the 2 ms context
// switch (mixstress flips INT<->FP every ~37k instructions) is tracked
// by the fine-grained proposed scheduler but missed by coarse-grained
// schemes.
//
// The program runs mixstress against a steady FP workload under the
// proposed scheduler and under HPE, printing a timeline of swaps and
// the final IPC/Watt comparison.
//
//	go run ./examples/phasetracking
package main

import (
	"fmt"
	"os"

	"ampsched/internal/amp"
	"ampsched/internal/cpu"
	"ampsched/internal/experiments"
	"ampsched/internal/sched"
	"ampsched/internal/workload"
)

// tracer wraps a scheduler and records the cycle of every move batch.
type tracer struct {
	inner amp.MoveScheduler
	swaps []uint64
}

func (t *tracer) Name() string     { return t.inner.Name() }
func (t *tracer) Reset(v amp.View) { t.inner.Reset(v) }
func (t *tracer) Tick(v amp.View) []amp.Move {
	mv := t.inner.Tick(v)
	if len(mv) > 0 {
		t.swaps = append(t.swaps, v.Cycle())
	}
	return mv
}

func main() {
	const limit = 1_200_000
	const ctxSwitch = 400_000

	opt := experiments.DefaultOptions()
	opt.InstrLimit = limit
	opt.ContextSwitch = ctxSwitch
	runner, err := experiments.NewRunner(opt)
	if err != nil {
		fail(err)
	}
	fmt.Fprintln(os.Stderr, "building HPE estimator...")
	matrix, err := runner.Matrix()
	if err != nil {
		fail(err)
	}

	run := func(name string, mk func() amp.MoveScheduler) (amp.Result, *tracer) {
		tr := &tracer{inner: mk()}
		t0 := amp.NewThread(0, workload.MustByName("mixstress"), 1, 0)
		t1 := amp.NewThread(1, workload.MustByName("equake"), 2, 1<<40)
		sys := amp.MustSystem(
			[2]*cpu.Config{cpu.IntCoreConfig(), cpu.FPCoreConfig()},
			[2]*amp.Thread{t0, t1}, tr, amp.Config{})
		res := sys.MustRun(limit)
		fmt.Printf("\n%s: %d swaps over %d cycles\n", name, res.Swaps, res.Cycles)
		for i, c := range tr.swaps {
			if i >= 12 {
				fmt.Printf("  ... and %d more\n", len(tr.swaps)-12)
				break
			}
			fmt.Printf("  swap %2d at cycle %8d\n", i+1, c)
		}
		for i, t := range res.Threads {
			fmt.Printf("  thread %d (%s): IPC/Watt %.4f\n", i, t.Name, t.IPCPerWatt)
		}
		return res, tr
	}

	resProp, _ := run("proposed (window=1000, history=5)", func() amp.MoveScheduler {
		cfg := sched.DefaultProposedConfig()
		cfg.ForceInterval = ctxSwitch
		return sched.NewProposed(cfg)
	})
	resHPE, _ := run(fmt.Sprintf("HPE (decides every %d cycles)", ctxSwitch), func() amp.MoveScheduler {
		cfg := sched.DefaultHPEConfig()
		cfg.Interval = ctxSwitch
		return sched.NewHPE(cfg, matrix)
	})

	g := func(r amp.Result) float64 {
		return r.Threads[0].IPCPerWatt * r.Threads[1].IPCPerWatt
	}
	fmt.Println()
	switch {
	case g(resProp) > g(resHPE):
		fmt.Println("=> the fine-grained scheduler tracked the intra-interval phase changes better")
	default:
		fmt.Println("=> on this seed HPE kept up; try other pairs (mixstress vs an INT workload)")
	}
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "phasetracking:", err)
	os.Exit(1)
}
