// Quickstart: build the paper's asymmetric dual-core, run two threads
// under the proposed fine-grained scheduler, and print per-thread
// IPC/Watt.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"

	"ampsched/internal/amp"
	"ampsched/internal/cpu"
	"ampsched/internal/sched"
	"ampsched/internal/workload"
)

func main() {
	// The two core personalities of the paper (Tables I and II).
	cores := [2]*cpu.Config{cpu.IntCoreConfig(), cpu.FPCoreConfig()}

	// Two threads: an integer-heavy kernel starting on the FP core
	// (a deliberately bad initial assignment) and an FP-heavy kernel
	// starting on the INT core.
	t0 := amp.NewThread(0, workload.MustByName("fpstress"), 1, 0)      // -> INT core
	t1 := amp.NewThread(1, workload.MustByName("intstress"), 2, 1<<40) // -> FP core

	// The proposed scheduler with its paper operating point: 1000-
	// instruction windows, history depth 5, Fig. 5 thresholds.
	scheduler := sched.NewProposed(sched.DefaultProposedConfig())

	// Watch the system's lifecycle events as they happen (swaps here;
	// see amp.EventKind for the full set). Options compose: add
	// amp.WithTelemetry for metrics or amp.WithFaultPlan for faults.
	watcher := amp.ObserverFunc(func(e amp.Event) {
		if e.Kind == amp.EventSwap {
			fmt.Printf("  cycle %8d: swap (threads now on cores %v, overhead %d cycles)\n",
				e.Cycle, e.ThreadOnCore, e.Overhead)
		}
	})

	system := amp.MustSystem(cores, [2]*amp.Thread{t0, t1}, scheduler, amp.Config{},
		amp.WithObserver(watcher))
	result := system.MustRun(500_000) // stop when either thread commits 500k

	fmt.Printf("\nran %d cycles, %d thread swaps\n\n", result.Cycles, result.Swaps)
	for i, tr := range result.Threads {
		fmt.Printf("thread %d (%s): IPC %.3f, %.2f W, IPC/Watt %.4f (%%INT %.0f, %%FP %.0f)\n",
			i, tr.Name, tr.IPC, tr.Watts, tr.IPCPerWatt, tr.IntPct, tr.FPPct)
	}
	fmt.Println("\nthe scheduler should have swapped the misplaced threads within a few windows")
}
