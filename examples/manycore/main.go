// manycore runs the §VIII generalization: four threads on a quad-core
// AMP (two INT-flavored cores, two FP-flavored) under the scalable
// rank-and-place scheduler, starting from a deliberately inverted
// placement.
//
//	go run ./examples/manycore
package main

import (
	"fmt"
	"os"

	"ampsched/internal/cpu"
	"ampsched/internal/manycore"
	"ampsched/internal/workload"
)

func main() {
	cores := []*cpu.Config{
		cpu.IntCoreConfig(), cpu.IntCoreConfig(),
		cpu.FPCoreConfig(), cpu.FPCoreConfig(),
	}
	// FP-heavy threads start on the INT cores and vice versa.
	names := []string{"fpstress", "equake", "intstress", "bitcount"}
	benches := make([]*workload.Benchmark, len(names))
	for i, n := range names {
		b, err := workload.ByName(n)
		if err != nil {
			fmt.Fprintln(os.Stderr, "manycore:", err)
			os.Exit(1)
		}
		benches[i] = b
	}
	seeds := []uint64{1, 2, 3, 4}

	run := func(label string, s manycore.Scheduler) {
		sys, err := manycore.NewSystem(cores, benches, seeds, s, manycore.Config{})
		if err != nil {
			fmt.Fprintln(os.Stderr, "manycore:", err)
			os.Exit(1)
		}
		res := sys.MustRun(400_000)
		fmt.Printf("%-8s reassigns=%-3d geomean IPC/Watt=%.4f  placement:", label, res.Reassigns, res.GeomeanIPCW())
		for c := 0; c < sys.NumCores(); c++ {
			fmt.Printf(" core%d(%s)=%s", c, sys.CoreConfig(c).Name, benches[sys.ThreadOnCore(c)].Name)
		}
		fmt.Println()
	}

	fmt.Println("initial placement is fully inverted (FP threads on INT cores)")
	run("static", manycore.Static{})
	run("rank", manycore.NewRank(manycore.DefaultRankConfig()))
	fmt.Println("\nrank-and-place should move intstress/bitcount onto the INT cores within a few windows")
}
