// manycore runs the §VIII generalization: four threads on a quad-core
// AMP (two INT-flavored cores, two FP-flavored) under the scalable
// rank-and-place scheduler, starting from a deliberately inverted
// placement.
//
//	go run ./examples/manycore
package main

import (
	"fmt"
	"os"

	"ampsched/internal/amp"
	"ampsched/internal/cpu"
	"ampsched/internal/manycore"
	"ampsched/internal/workload"
)

func main() {
	cores := []manycore.CoreSpec{
		{Config: cpu.IntCoreConfig(), Pool: 0}, {Config: cpu.IntCoreConfig(), Pool: 0},
		{Config: cpu.FPCoreConfig(), Pool: 1}, {Config: cpu.FPCoreConfig(), Pool: 1},
	}
	// FP-heavy threads start on the INT cores and vice versa.
	names := []string{"fpstress", "equake", "intstress", "bitcount"}
	threads := make([]manycore.ThreadSpec, len(names))
	for i, n := range names {
		b, err := workload.ByName(n)
		if err != nil {
			fmt.Fprintln(os.Stderr, "manycore:", err)
			os.Exit(1)
		}
		threads[i] = manycore.ThreadSpec{Bench: b, Seed: uint64(i + 1)}
	}

	run := func(label string, s amp.MoveScheduler) {
		sys, err := manycore.New(cores, threads, s, manycore.Config{})
		if err != nil {
			fmt.Fprintln(os.Stderr, "manycore:", err)
			os.Exit(1)
		}
		res := sys.MustRun(400_000)
		fmt.Printf("%-8s reassigns=%-3d geomean IPC/Watt=%.4f  placement:", label, res.Reassigns, res.GeomeanIPCW())
		for c := 0; c < sys.NumCores(); c++ {
			name := "idle"
			if t := sys.ThreadOnCore(c); t >= 0 {
				name = threads[t].Bench.Name
			}
			fmt.Printf(" core%d(%s)=%s", c, sys.CoreConfig(c).Name, name)
		}
		fmt.Println()
	}

	fmt.Println("initial placement is fully inverted (FP threads on INT cores)")
	run("static", manycore.Static{})
	run("rank", manycore.NewRank(manycore.DefaultRankConfig()))
	fmt.Println("\nrank-and-place should move intstress/bitcount onto the INT cores within a few windows")
}
