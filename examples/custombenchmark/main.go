// custombenchmark shows how to define a new workload model, validate
// it, and find which of the two asymmetric cores suits it better — the
// first thing a user does before scheduling their own application mix.
//
//	go run ./examples/custombenchmark
package main

import (
	"fmt"
	"os"

	"ampsched/internal/amp"
	"ampsched/internal/cpu"
	"ampsched/internal/isa"
	"ampsched/internal/workload"
)

func main() {
	// A hypothetical signal-processing pipeline: an integer unpacking
	// stage followed by a long FP filter stage, looping forever.
	custom := &workload.Benchmark{
		Name:          "dspfilter",
		Suite:         "Custom",
		CodeFootprint: 4 << 10,
		Phases: []workload.Phase{
			{
				Name:                 "unpack",
				Mix:                  normalized(isa.Mix{isa.IntALU: 50, isa.IntMul: 6, isa.Load: 24, isa.Store: 10, isa.Branch: 10}),
				Length:               60_000,
				MeanDepDist:          4,
				BranchPredictability: 0.95,
				WorkingSet:           32 << 10,
				SeqFrac:              0.9,
			},
			{
				Name:                 "filter",
				Mix:                  normalized(isa.Mix{isa.FPALU: 30, isa.FPMul: 28, isa.IntALU: 8, isa.Load: 22, isa.Store: 8, isa.Branch: 4}),
				Length:               180_000,
				MeanDepDist:          10,
				BranchPredictability: 0.98,
				WorkingSet:           48 << 10,
				SeqFrac:              0.85,
			},
		},
	}
	if err := custom.Validate(); err != nil {
		fmt.Fprintln(os.Stderr, "invalid benchmark:", err)
		os.Exit(1)
	}

	avg := custom.AverageMix()
	fmt.Printf("defined %q: flavor %s, avg %%INT %.0f / %%FP %.0f\n\n",
		custom.Name, custom.Flavor(), 100*avg.IntFrac(), 100*avg.FPFrac())

	// Characterize it on both cores, sampling every 100k cycles to
	// see the phase behavior the hardware monitors would observe.
	for _, cfg := range []*cpu.Config{cpu.IntCoreConfig(), cpu.FPCoreConfig()} {
		res := amp.SoloRun(cfg, custom, 7, 600_000, 100_000)
		fmt.Printf("%s core: IPC %.3f, %.2f W, IPC/Watt %.4f\n", cfg.Name, res.IPC, res.Watts, res.IPCPerWatt)
		for i, s := range res.Samples {
			fmt.Printf("  interval %d: %%INT %4.1f  %%FP %4.1f  IPC %.3f\n", i, s.IntPct, s.FPPct, s.IPC)
		}
	}
	fmt.Println("\nphase-dependent preference is exactly what the dynamic scheduler exploits")
}

func normalized(m isa.Mix) isa.Mix {
	m.Normalize()
	return m
}
