// Telemetry: run one workload pair with the observability stack wired
// in — a JSONL event stream, the shared metrics registry, and a
// histogram-backed swap-latency summary — then print what was
// collected. This is the amp.WithTelemetry / sched.WithTelemetry tour;
// the ampsim and ampexperiments commands expose the same wiring behind
// their -telemetry flags.
//
//	go run ./examples/telemetry
package main

import (
	"fmt"
	"os"

	"ampsched/internal/amp"
	"ampsched/internal/cpu"
	"ampsched/internal/sched"
	"ampsched/internal/telemetry"
	"ampsched/internal/workload"
)

func main() {
	// Events go to a JSONL file; metrics accumulate in the registry.
	f, err := os.CreateTemp("", "ampsched-events-*.jsonl")
	check(err)
	defer os.Remove(f.Name())
	tel := telemetry.New(telemetry.NewJSONLSink(f))

	cores := [2]*cpu.Config{cpu.IntCoreConfig(), cpu.FPCoreConfig()}
	t0 := amp.NewThread(0, workload.MustByName("fpstress"), 1, 0)
	t1 := amp.NewThread(1, workload.MustByName("intstress"), 2, 1<<40)

	// Both layers publish into the same Telemetry: the scheduler its
	// window/vote/decision counters, the system its swap and run
	// counters plus the swap-overhead histogram.
	scheduler := sched.NewProposed(sched.DefaultProposedConfig(),
		sched.WithTelemetry(tel))
	system := amp.MustSystem(cores, [2]*amp.Thread{t0, t1}, scheduler,
		amp.Config{}, amp.WithTelemetry(tel))
	result := system.MustRun(500_000)

	fmt.Printf("ran %d cycles, %d swaps; every metric below came from telemetry:\n\n",
		result.Cycles, result.Swaps)
	for _, m := range tel.Registry().Snapshot() {
		switch m.Kind {
		case "counter":
			if m.Value > 0 {
				fmt.Printf("  %-32s %8.0f\n", m.Name, m.Value)
			}
		case "histogram":
			if m.Count > 0 {
				fmt.Printf("  %-32s count=%d mean=%.0f p99=%.0f\n",
					m.Name, m.Count, m.Mean, m.P99)
			}
		}
	}

	check(tel.Close()) // flushes the JSONL sink and appends the summary line
	st, err := os.Stat(f.Name())
	check(err)
	fmt.Printf("\nevent stream: %d bytes of JSONL (window/swap/run events + summary)\n", st.Size())
}

func check(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "telemetry example:", err)
		os.Exit(1)
	}
}
