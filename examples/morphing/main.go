// morphing demonstrates the §III design question: this paper studies
// swap-only scheduling to avoid the core-morphing hardware of the
// authors' prior work [5]. Here both are available, so you can watch
// what morphing buys — the system fuses the FP core's strong
// floating-point datapath into the INT core when one thread's utility
// collapses, giving the surviving thread a core that is strong on all
// fronts.
//
//	go run ./examples/morphing [-a memstress] [-b mixstress]
package main

import (
	"flag"
	"fmt"
	"math"
	"os"

	"ampsched/internal/amp"
	"ampsched/internal/cpu"
	"ampsched/internal/sched"
	"ampsched/internal/workload"
)

func main() {
	benchA := flag.String("a", "memstress", "thread 0 (starts on the INT core)")
	benchB := flag.String("b", "mixstress", "thread 1 (starts on the FP core)")
	limit := flag.Uint64("limit", 1_000_000, "instruction budget")
	flag.Parse()

	a, err := workload.ByName(*benchA)
	check(err)
	b, err := workload.ByName(*benchB)
	check(err)

	run := func(label string, s amp.MoveScheduler) amp.Result {
		t0 := amp.NewThread(0, a, 1, 0)
		t1 := amp.NewThread(1, b, 2, 1<<40)
		sys := amp.MustSystem(
			[2]*cpu.Config{cpu.IntCoreConfig(), cpu.FPCoreConfig()},
			[2]*amp.Thread{t0, t1}, s, amp.Config{})
		res := sys.MustRun(*limit)
		geo := math.Sqrt(res.Threads[0].IPCPerWatt * res.Threads[1].IPCPerWatt)
		fmt.Printf("%-22s swaps=%-3d morphs=%-3d geomean IPC/Watt=%.4f", label, res.Swaps, res.Morphs, geo)
		for i, tr := range res.Threads {
			fmt.Printf("  [t%d %s: ipc=%.2f ipcw=%.4f]", i, tr.Name, tr.IPC, tr.IPCPerWatt)
		}
		fmt.Println()
		return res
	}

	fmt.Printf("pair: %s (INT core) + %s (FP core)\n\n", a.Name, b.Name)
	run("swap-only (paper)", sched.NewProposed(sched.DefaultProposedConfig()))
	run("swap+morph ([5])", sched.NewMorphing(sched.DefaultMorphConfig()))

	fmt.Println("\nmorphing pays when one thread stalls while its partner mixes INT and FP work;")
	fmt.Println("on balanced pairs the policy abstains and both rows should match")
}

func check(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "morphing:", err)
		os.Exit(1)
	}
}
