package ampsched

import (
	"testing"

	"ampsched/internal/amp"
	"ampsched/internal/cpu"
	"ampsched/internal/experiments"
	"ampsched/internal/metrics"
	"ampsched/internal/sched"
	"ampsched/internal/stats"
	"ampsched/internal/workload"
)

// integrationOptions are sized so the whole file runs in tens of
// seconds while giving every scheduler several decision points.
func integrationOptions() experiments.Options {
	return experiments.Options{
		Pairs:             8,
		InstrLimit:        500_000,
		ContextSwitch:     150_000,
		SwapOverhead:      1000,
		ProfileInstrLimit: 500_000,
		RuleWindow:        1000,
		RulePairs:         10,
		SensitivityPairs:  3,
		Seed:              13,
	}
}

// TestProposedFixesMisplacedThreads is the paper's elevator pitch as a
// test: start an FP-heavy thread on the INT core and an INT-heavy
// thread on the FP core; the proposed scheduler must swap them and end
// up near the oracle (correct static) placement, far above the
// misplaced static baseline.
func TestProposedFixesMisplacedThreads(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	cores := [2]*cpu.Config{cpu.IntCoreConfig(), cpu.FPCoreConfig()}
	run := func(a, b string, s amp.MoveScheduler) amp.Result {
		t0 := amp.NewThread(0, workload.MustByName(a), 21, 0)
		t1 := amp.NewThread(1, workload.MustByName(b), 22, 1<<40)
		return amp.MustSystem(cores, [2]*amp.Thread{t0, t1}, s, amp.Config{}).MustRun(400_000)
	}

	// Misplaced static: fpstress on INT, intstress on FP.
	misplaced := run("fpstress", "intstress", sched.Static{})
	// Oracle static: swap the thread order.
	oracle := run("intstress", "fpstress", sched.Static{})
	// Proposed, starting misplaced.
	dynamic := run("fpstress", "intstress", sched.NewProposed(sched.DefaultProposedConfig()))

	if dynamic.Swaps == 0 {
		t.Fatal("proposed never swapped the misplaced threads")
	}
	geo := func(r amp.Result) float64 {
		return r.Threads[0].IPCPerWatt * r.Threads[1].IPCPerWatt
	}
	if geo(dynamic) <= geo(misplaced)*1.1 {
		t.Fatalf("proposed (%.5f) not clearly above misplaced static (%.5f)",
			geo(dynamic), geo(misplaced))
	}
	// Within striking distance of the oracle (swap overhead + initial
	// misplacement cost allowed).
	if geo(dynamic) < geo(oracle)*0.80 {
		t.Fatalf("proposed (%.5f) too far below oracle static (%.5f)",
			geo(dynamic), geo(oracle))
	}
}

// TestHeadlineShape asserts the §VII ordering at reduced scale: on
// average over random pairs, proposed >= HPE (small margin) and
// proposed > Round Robin (larger margin), with only a minority of
// pairs degrading.
func TestHeadlineShape(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	r, err := experiments.NewRunner(integrationOptions())
	if err != nil {
		t.Fatal(err)
	}
	sw, err := r.Sweep()
	if err != nil {
		t.Fatal(err)
	}
	vsHPE := stats.Mean(sw.WeightedVsHPE())
	vsRR := stats.Mean(sw.WeightedVsRR())
	t.Logf("mean weighted improvement: vs HPE %+.2f%%, vs RR %+.2f%%", vsHPE, vsRR)

	if vsHPE < -1.0 {
		t.Errorf("proposed clearly loses to HPE on average: %+.2f%%", vsHPE)
	}
	if vsRR < 2.0 {
		t.Errorf("proposed does not clearly beat Round Robin: %+.2f%%", vsRR)
	}
	if vsRR < vsHPE {
		t.Errorf("RR (%+.2f%%) should be the weaker baseline than HPE (%+.2f%%)", vsRR, vsHPE)
	}

	degraded := 0
	for _, v := range sw.WeightedVsRR() {
		if v < 0 {
			degraded++
		}
	}
	if degraded*2 >= len(sw.Outcomes) {
		t.Errorf("%d/%d pairs degraded vs RR; paper reports a small minority",
			degraded, len(sw.Outcomes))
	}
}

// TestSwapFractionTiny asserts the §VI-D property: swaps happen at far
// fewer than 1% of the proposed scheme's decision points.
func TestSwapFractionTiny(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	r, err := experiments.NewRunner(integrationOptions())
	if err != nil {
		t.Fatal(err)
	}
	pairs := experiments.RandomPairs(6, 17)
	var points, swaps uint64
	for i, p := range pairs {
		res, err := r.RunPair(i, p, r.ProposedFactory())
		if err != nil {
			t.Fatal(err)
		}
		points += res.Sched.DecisionPoints
		swaps += res.Swaps
	}
	if points == 0 {
		t.Fatal("no decision points")
	}
	frac := float64(swaps) / float64(points)
	t.Logf("swap fraction: %.4f%% (%d/%d)", 100*frac, swaps, points)
	if frac > 0.01 {
		t.Errorf("swap fraction %.3f%% exceeds 1%%", 100*frac)
	}
}

// TestReproducibleSweep asserts whole-experiment determinism: two
// runners with the same options produce identical improvement lists.
func TestReproducibleSweep(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	opt := integrationOptions()
	opt.Pairs = 2
	opt.InstrLimit = 250_000
	mk := func() []float64 {
		r, err := experiments.NewRunner(opt)
		if err != nil {
			t.Fatal(err)
		}
		sw, err := r.Sweep()
		if err != nil {
			t.Fatal(err)
		}
		return append(sw.WeightedVsHPE(), sw.WeightedVsRR()...)
	}
	a, b := mk(), mk()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("sweep nondeterministic at %d: %g vs %g", i, a[i], b[i])
		}
	}
}

// TestCompareAgainstBothEstimators checks that HPE behaves sanely with
// both the matrix and the regression estimator on a real pair.
func TestCompareAgainstBothEstimators(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	r, err := experiments.NewRunner(integrationOptions())
	if err != nil {
		t.Fatal(err)
	}
	m, err := r.Matrix()
	if err != nil {
		t.Fatal(err)
	}
	s, err := r.Surface()
	if err != nil {
		t.Fatal(err)
	}
	pair := experiments.Pair{A: workload.MustByName("gcc"), B: workload.MustByName("equake")}
	rm, err := r.RunPair(0, pair, r.HPEFactory(m))
	if err != nil {
		t.Fatal(err)
	}
	rs, err := r.RunPair(0, pair, r.HPEFactory(s))
	if err != nil {
		t.Fatal(err)
	}
	cmp, err := metrics.Compare(rm, rs)
	if err != nil {
		t.Fatal(err)
	}
	// The two estimators may disagree slightly but not wildly.
	if cmp.WeightedPct > 25 || cmp.WeightedPct < -25 {
		t.Errorf("matrix vs regression HPE differ by %+.1f%%", cmp.WeightedPct)
	}
}
