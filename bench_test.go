// Benchmarks regenerating each table and figure of the paper at a
// reduced-but-faithful scale, plus ablation benches for the design
// choices called out in DESIGN.md §6 and microbenchmarks of the
// simulator substrate.
//
// Run everything with:
//
//	go test -bench=. -benchmem
//
// Each figure bench reports its headline number through
// b.ReportMetric (e.g. pct_vs_hpe for Fig. 9), so `-bench` output
// doubles as a miniature EXPERIMENTS table.
package ampsched

import (
	"context"
	"io"
	"testing"

	"ampsched/internal/amp"
	"ampsched/internal/cpu"
	"ampsched/internal/experiments"
	"ampsched/internal/interval"
	"ampsched/internal/isa"
	"ampsched/internal/metrics"
	"ampsched/internal/profilegen"
	"ampsched/internal/sched"
	"ampsched/internal/stats"
	"ampsched/internal/workload"
)

// benchOptions are small enough for iterating benchmarks but large
// enough that every scheduler gets multiple decision points.
func benchOptions() experiments.Options {
	return experiments.Options{
		Pairs:             4,
		InstrLimit:        300_000,
		ContextSwitch:     80_000,
		SwapOverhead:      1000,
		ProfileInstrLimit: 300_000,
		RuleWindow:        1000,
		RulePairs:         10,
		SensitivityPairs:  2,
		Seed:              7,
	}
}

func newBenchRunner(b *testing.B) *experiments.Runner {
	b.Helper()
	r, err := experiments.NewRunner(benchOptions())
	if err != nil {
		b.Fatal(err)
	}
	return r
}

func runExperiment(b *testing.B, name string) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		r := newBenchRunner(b)
		e, err := experiments.ByName(name)
		if err != nil {
			b.Fatal(err)
		}
		if err := e.Run(r, io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}

// --- one bench per paper table/figure --------------------------------

// BenchmarkTableConfigs regenerates Tables I and II.
func BenchmarkTableConfigs(b *testing.B) { runExperiment(b, "tables") }

// BenchmarkFig1CoreAsymmetry regenerates Fig. 1 and reports the
// measured INT/FP IPC-per-watt ratio of the flagship workloads.
func BenchmarkFig1CoreAsymmetry(b *testing.B) {
	intCfg, fpCfg := cpu.IntCoreConfig(), cpu.FPCoreConfig()
	var last float64
	for i := 0; i < b.N; i++ {
		ri := amp.SoloRun(intCfg, workload.MustByName("intstress"), 7, 150_000, 0)
		rf := amp.SoloRun(fpCfg, workload.MustByName("intstress"), 7, 150_000, 0)
		last = ri.IPCPerWatt / rf.IPCPerWatt
	}
	b.ReportMetric(last, "intstress_ratio")
}

// BenchmarkFig3RatioMatrix regenerates the HPE ratio matrix.
func BenchmarkFig3RatioMatrix(b *testing.B) { runExperiment(b, "fig3") }

// BenchmarkFig4Regression regenerates the regression surface.
func BenchmarkFig4Regression(b *testing.B) { runExperiment(b, "fig4") }

// BenchmarkFig5RuleDerivation regenerates the §VI-A threshold
// derivation behind Fig. 5.
func BenchmarkFig5RuleDerivation(b *testing.B) { runExperiment(b, "rules") }

// BenchmarkFig6Sensitivity regenerates the window/history sweep.
func BenchmarkFig6Sensitivity(b *testing.B) { runExperiment(b, "fig6") }

// BenchmarkFig7VsHPE regenerates the per-pair comparison against HPE
// and reports the mean weighted improvement.
func BenchmarkFig7VsHPE(b *testing.B) {
	var mean float64
	for i := 0; i < b.N; i++ {
		r := newBenchRunner(b)
		sw, err := r.Sweep()
		if err != nil {
			b.Fatal(err)
		}
		mean = stats.Mean(sw.WeightedVsHPE())
	}
	b.ReportMetric(mean, "pct_vs_hpe")
}

// BenchmarkFig8VsRR regenerates the per-pair comparison against Round
// Robin and reports the mean weighted improvement.
func BenchmarkFig8VsRR(b *testing.B) {
	var mean float64
	for i := 0; i < b.N; i++ {
		r := newBenchRunner(b)
		sw, err := r.Sweep()
		if err != nil {
			b.Fatal(err)
		}
		mean = stats.Mean(sw.WeightedVsRR())
	}
	b.ReportMetric(mean, "pct_vs_rr")
}

// BenchmarkFig9Summary regenerates the worst/average/best summary.
func BenchmarkFig9Summary(b *testing.B) { runExperiment(b, "fig9") }

// BenchmarkOverheadSweep regenerates the §VI-C swap-overhead study.
func BenchmarkOverheadSweep(b *testing.B) { runExperiment(b, "overhead") }

// BenchmarkDecisionStats regenerates the §VI-D decision-point count.
func BenchmarkDecisionStats(b *testing.B) { runExperiment(b, "decisions") }

// BenchmarkRRIntervalAblation regenerates the §VII Round Robin
// interval comparison.
func BenchmarkRRIntervalAblation(b *testing.B) { runExperiment(b, "rrinterval") }

// BenchmarkExtensionGuard regenerates the §VII future-work study
// (IPC + LLC-miss-rate guard on the swapping rules).
func BenchmarkExtensionGuard(b *testing.B) { runExperiment(b, "extension") }

// BenchmarkMorphComparison regenerates the §III swap-only vs
// swap+morph comparison.
func BenchmarkMorphComparison(b *testing.B) { runExperiment(b, "morph") }

// BenchmarkBaselinePanorama regenerates the all-policies comparison
// against the best static placement.
func BenchmarkBaselinePanorama(b *testing.B) { runExperiment(b, "baselines") }

// BenchmarkPowerBreakdown regenerates the per-structure energy table.
func BenchmarkPowerBreakdown(b *testing.B) { runExperiment(b, "power") }

// BenchmarkManycoreGeneralization regenerates the §VIII quad-core
// comparison.
func BenchmarkManycoreGeneralization(b *testing.B) { runExperiment(b, "manycore") }

// BenchmarkPhaseDetection regenerates the phase-classification table.
func BenchmarkPhaseDetection(b *testing.B) { runExperiment(b, "phases") }

// BenchmarkClairvoyantComparison regenerates the clairvoyant-scheduler
// comparison.
func BenchmarkClairvoyantComparison(b *testing.B) { runExperiment(b, "oracle") }

// --- ablation benches (DESIGN.md §6) ---------------------------------

// BenchmarkAblationFairnessSwap compares the proposed scheme with and
// without the Fig. 5 step-3 forced fairness swap on a same-flavor
// pair, reporting the geometric-IPC/Watt delta (pct).
func BenchmarkAblationFairnessSwap(b *testing.B) {
	opt := benchOptions()
	r, err := experiments.NewRunner(opt)
	if err != nil {
		b.Fatal(err)
	}
	pair := experiments.Pair{
		A: workload.MustByName("bitcount"),
		B: workload.MustByName("sha"),
	}
	var delta float64
	for i := 0; i < b.N; i++ {
		with, err := r.RunPair(0, pair, r.ProposedFactory())
		if err != nil {
			b.Fatal(err)
		}
		without, err := r.RunPair(0, pair, func(opts ...sched.Option) amp.MoveScheduler {
			cfg := sched.DefaultProposedConfig()
			cfg.ForceInterval = opt.ContextSwitch
			cfg.DisableForcedSwap = true
			return sched.NewProposed(cfg, opts...)
		})
		if err != nil {
			b.Fatal(err)
		}
		cmp, err := metrics.Compare(with, without)
		if err != nil {
			b.Fatal(err)
		}
		delta = cmp.GeoPct
	}
	b.ReportMetric(delta, "fairness_geo_pct")
}

// BenchmarkAblationHPEEstimator compares HPE driven by the binned
// matrix against HPE driven by the regression surface.
func BenchmarkAblationHPEEstimator(b *testing.B) {
	r := newBenchRunner(b)
	m, err := r.Matrix()
	if err != nil {
		b.Fatal(err)
	}
	s, err := r.Surface()
	if err != nil {
		b.Fatal(err)
	}
	pair := experiments.RandomPairs(1, 3)[0]
	var delta float64
	for i := 0; i < b.N; i++ {
		rm, err := r.RunPair(0, pair, r.HPEFactory(m))
		if err != nil {
			b.Fatal(err)
		}
		rs, err := r.RunPair(0, pair, r.HPEFactory(s))
		if err != nil {
			b.Fatal(err)
		}
		cmp, err := metrics.Compare(rm, rs)
		if err != nil {
			b.Fatal(err)
		}
		delta = cmp.WeightedPct
	}
	b.ReportMetric(delta, "matrix_vs_regression_pct")
}

// BenchmarkAblationPrefetcher measures the substrate's L2 next-line
// prefetcher (off in the paper configuration) on a streaming FP
// workload, reporting the IPC gain in percent.
func BenchmarkAblationPrefetcher(b *testing.B) {
	run := func(prefetch bool) float64 {
		cfg := cpu.IntCoreConfig()
		cfg.Caches.NextLinePrefetch = prefetch
		res := amp.SoloRun(cfg, workload.MustByName("swim"), 7, 100_000, 0)
		return res.IPC
	}
	var gain float64
	for i := 0; i < b.N; i++ {
		off := run(false)
		on := run(true)
		gain = 100 * (on/off - 1)
	}
	b.ReportMetric(gain, "prefetch_ipc_gain_pct")
}

// --- engine fidelity benches (BENCH_core.json / make bench-check) ----

// benchFidelityPairs runs the Fig. 7-style pair sweep (every random
// pair under proposed, HPE and Round Robin) at the given fidelity.
// The detailed/interval pairing of these benches records the interval
// engine's speedup in BENCH_core.json; profiling (always detailed) is
// shared and untimed, and one untimed warm-up sweep populates the
// interval calibration cache.
func benchFidelityPairs(b *testing.B, fidelity string) {
	opt := benchOptions()
	opt.Fidelity = fidelity
	r, err := experiments.NewRunner(opt)
	if err != nil {
		b.Fatal(err)
	}
	m, err := r.Matrix()
	if err != nil {
		b.Fatal(err)
	}
	pairs := experiments.RandomPairs(opt.Pairs, opt.Seed)
	proposed, hpe, rr := r.ProposedFactory(), r.HPEFactory(m), r.RRFactory(1)
	sweep := func() {
		for j, p := range pairs {
			if _, err := r.RunPair(j, p, proposed); err != nil {
				b.Fatal(err)
			}
			if _, err := r.RunPair(j, p, hpe); err != nil {
				b.Fatal(err)
			}
			if _, err := r.RunPair(j, p, rr); err != nil {
				b.Fatal(err)
			}
		}
	}
	sweep()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sweep()
	}
}

// BenchmarkEnginePairSweepDetailed is the cycle-accurate reference for
// the fidelity sweep trio.
func BenchmarkEnginePairSweepDetailed(b *testing.B) { benchFidelityPairs(b, cpu.FidelityDetailed) }

// BenchmarkEnginePairSweepInterval must stay well over an order of
// magnitude under the Detailed sibling's ns/op.
func BenchmarkEnginePairSweepInterval(b *testing.B) { benchFidelityPairs(b, interval.FidelityInterval) }

// BenchmarkEnginePairSweepSampled exercises the two-tier engine's
// warm-up/fast-forward switching on the same sweep.
func BenchmarkEnginePairSweepSampled(b *testing.B) { benchFidelityPairs(b, interval.FidelitySampled) }

// benchBatchPairs drives the identical sweep through the batch
// submission path: all of the sweep's runs advance through one
// interleaved interval.BatchRunner pass instead of each run streaming
// the shared tables alone.
func benchBatchPairs(b *testing.B, fidelity string) {
	opt := benchOptions()
	opt.Fidelity = fidelity
	r, err := experiments.NewRunner(opt)
	if err != nil {
		b.Fatal(err)
	}
	m, err := r.Matrix()
	if err != nil {
		b.Fatal(err)
	}
	pairs := experiments.RandomPairs(opt.Pairs, opt.Seed)
	proposed, hpe, rr := r.ProposedFactory(), r.HPEFactory(m), r.RRFactory(1)
	runs := make([]experiments.PairRun, 0, 3*len(pairs))
	for j, p := range pairs {
		runs = append(runs,
			experiments.PairRun{Index: j, Pair: p, Factory: proposed},
			experiments.PairRun{Index: j, Pair: p, Factory: hpe},
			experiments.PairRun{Index: j, Pair: p, Factory: rr})
	}
	ctx := context.Background()
	sweep := func() {
		_, errs := r.RunPairsBatch(ctx, runs)
		for _, err := range errs {
			if err != nil {
				b.Fatal(err)
			}
		}
	}
	sweep()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sweep()
	}
}

// BenchmarkEngineBatchSweepInterval is the batched counterpart of
// BenchmarkEnginePairSweepInterval; the gap between the two is the
// cache-residency and pooling win of the batch path.
func BenchmarkEngineBatchSweepInterval(b *testing.B) { benchBatchPairs(b, interval.FidelityInterval) }

// BenchmarkEngineBatchSweepSampled batches the two-tier engine (its
// detailed warm-up windows interleave with other runs' fast-forward).
func BenchmarkEngineBatchSweepSampled(b *testing.B) { benchBatchPairs(b, interval.FidelitySampled) }

// benchSoloEngine isolates one engine's per-window hot loop on a
// single core running gcc (no scheduler, no second core).
func benchSoloEngine(b *testing.B, factory cpu.EngineFactory) {
	cfg := cpu.IntCoreConfig()
	bench := workload.MustByName("gcc")
	amp.SoloRunEngine(factory, cfg, bench, 7, 50_000, 0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		amp.SoloRunEngine(factory, cfg, bench, 7, 300_000, 0)
	}
}

// BenchmarkEngineSoloDetailed measures the detailed pipeline loop.
func BenchmarkEngineSoloDetailed(b *testing.B) { benchSoloEngine(b, cpu.DetailedFactory) }

// BenchmarkEngineSoloInterval measures the analytic window loop.
func BenchmarkEngineSoloInterval(b *testing.B) { benchSoloEngine(b, interval.Factory()) }

// --- microbenchmarks of the substrate --------------------------------

// BenchmarkCoreSimulation measures simulated cycles per second of one
// out-of-order core running gcc.
func BenchmarkCoreSimulation(b *testing.B) {
	cfg := cpu.IntCoreConfig()
	bench := workload.MustByName("gcc")
	gen := workload.NewGenerator(bench, 1, 0)
	core := cpu.NewCore(cfg)
	arch := &cpu.ThreadArch{CodeBase: 1 << 36, CodeSize: bench.EffectiveCodeFootprint()}
	core.Bind(gen, arch)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		core.Step(uint64(i))
	}
}

// BenchmarkDualCoreSystem measures a full two-core system cycle under
// the proposed scheduler.
func BenchmarkDualCoreSystem(b *testing.B) {
	t0 := amp.NewThread(0, workload.MustByName("gcc"), 1, 0)
	t1 := amp.NewThread(1, workload.MustByName("equake"), 2, 1<<40)
	sys := amp.MustSystem(
		[2]*cpu.Config{cpu.IntCoreConfig(), cpu.FPCoreConfig()},
		[2]*amp.Thread{t0, t1},
		sched.NewProposed(sched.DefaultProposedConfig()), amp.Config{})
	b.ResetTimer()
	chunk := uint64(10_000)
	for i := 0; i < b.N; i++ {
		sys.MustRun(uint64(i+1) * chunk / 10)
	}
}

// BenchmarkWorkloadGenerator measures instruction synthesis.
func BenchmarkWorkloadGenerator(b *testing.B) {
	gen := workload.NewGenerator(workload.MustByName("apsi"), 1, 0)
	var in isa.Instruction
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		gen.Next(&in)
	}
}

// BenchmarkProfileCollect measures the §V profiling pass on one
// benchmark pair of cores.
func BenchmarkProfileCollect(b *testing.B) {
	intCfg, fpCfg := cpu.IntCoreConfig(), cpu.FPCoreConfig()
	benches := []*workload.Benchmark{workload.MustByName("pi")}
	for i := 0; i < b.N; i++ {
		profilegen.Collect(intCfg, fpCfg, benches, profilegen.ProfileConfig{
			InstrLimit:   60_000,
			SampleCycles: 20_000,
			Seed:         1,
		})
	}
}
