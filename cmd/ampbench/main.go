// Command ampbench lists the 37-benchmark pool: suite, flavor, phase
// structure and average instruction mix of each synthetic workload
// model.
package main

import (
	"flag"
	"fmt"
	"os"

	"ampsched/internal/isa"
	"ampsched/internal/report"
	"ampsched/internal/workload"
)

func main() {
	var (
		detail = flag.String("detail", "", "print the per-phase detail of one benchmark")
	)
	flag.Parse()

	if *detail != "" {
		b, err := workload.ByName(*detail)
		if err != nil {
			fmt.Fprintln(os.Stderr, "ampbench:", err)
			os.Exit(1)
		}
		printDetail(b)
		return
	}

	t := &report.Table{
		Title:   "benchmark pool (37 workload models)",
		Headers: []string{"name", "suite", "flavor", "phases", "%INT", "%FP", "%MEM", "code"},
	}
	for _, b := range workload.All() {
		m := b.AverageMix()
		t.AddRow(b.Name, b.Suite, b.Flavor(), fmt.Sprint(len(b.Phases)),
			fmt.Sprintf("%.0f", 100*m.IntFrac()),
			fmt.Sprintf("%.0f", 100*m.FPFrac()),
			fmt.Sprintf("%.0f", 100*m.MemFrac()),
			fmt.Sprintf("%dK", b.EffectiveCodeFootprint()>>10))
	}
	if err := t.Fprint(os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "ampbench:", err)
		os.Exit(1)
	}
}

func printDetail(b *workload.Benchmark) {
	if b.Notes != "" {
		fmt.Printf("%s\n\n", b.Notes)
	}
	t := &report.Table{
		Title: fmt.Sprintf("%s (%s, code footprint %d B)", b.Name, b.Suite, b.EffectiveCodeFootprint()),
		Headers: []string{"phase", "length", "ILP", "brpred", "workingset", "seq%",
			"IntALU", "IntMul", "IntDiv", "FPALU", "FPMul", "FPDiv", "Load", "Store", "Branch"},
	}
	for i := range b.Phases {
		p := &b.Phases[i]
		row := []string{p.Name, fmt.Sprint(p.Length), fmt.Sprintf("%.1f", p.MeanDepDist),
			fmt.Sprintf("%.2f", p.BranchPredictability),
			fmt.Sprintf("%dK", p.WorkingSet>>10), fmt.Sprintf("%.0f", 100*p.SeqFrac)}
		for c := isa.Class(0); c < isa.NumClasses; c++ {
			row = append(row, fmt.Sprintf("%.1f", 100*p.Mix[c]))
		}
		t.AddRow(row...)
	}
	if err := t.Fprint(os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "ampbench:", err)
		os.Exit(1)
	}
}
