// Command ampexperiments regenerates the paper's tables and figures.
//
// Usage:
//
//	ampexperiments [-run fig7,fig9] [-pairs 80] [-limit 1500000] [-v]
//
// With no -run flag every experiment runs in paper order. The -paper
// flag switches to the publication-scale parameters (hours of CPU).
//
// Observability: -telemetry streams run/window/swap/fault events as
// JSONL (plus a final metrics summary line), -telemetrycsv writes a
// CSV metrics summary, -http serves /metrics and /debug/pprof while
// the experiments run, and -pprof writes CPU and heap profiles. A
// first interrupt (Ctrl-C) cancels the in-flight sweep cleanly —
// partial pairs are flagged, sinks are flushed — and a second one
// kills the process.
//
// Crash safety: -checkpointdir snapshots main-sweep progress every
// -checkpointevery completed pairs (CRC-framed, atomically written),
// so a killed or interrupted run re-invoked with the same options
// resumes from its last snapshot instead of pair zero.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"time"

	"ampsched/internal/experiments"
	"ampsched/internal/telemetry"
)

func main() {
	var (
		runList      = flag.String("run", "all", "comma-separated experiment names, or 'all' (see -list)")
		list         = flag.Bool("list", false, "list available experiments and exit")
		pairs        = flag.Int("pairs", 0, "override number of random workload pairs")
		limit        = flag.Uint64("limit", 0, "override per-run instruction limit")
		ctxSwitch    = flag.Uint64("contextswitch", 0, "override coarse decision interval (cycles)")
		overhead     = flag.Uint64("overhead", 0, "override swap overhead (cycles)")
		seed         = flag.Uint64("seed", 0, "override RNG seed")
		paper        = flag.Bool("paper", false, "use publication-scale parameters (slow)")
		fidelity     = flag.String("fidelity", "", "simulation engine for pair runs: detailed (default) | interval | sampled")
		faultRate    = flag.Float64("faultrate", 0, "inject monitor/swap faults at this uniform rate into every pair run (0 = off)")
		faultSeed    = flag.Uint64("faultseed", 1, "fault-plan seed (deterministic with -seed and -faultrate)")
		budget       = flag.Uint64("cyclebudget", 0, "per-run cycle budget; an exhausted run is reported wedged (0 = off)")
		nxmCores     = flag.String("nxmcores", "", "comma-separated core counts for the nxm sweep (default 4,16,64,256)")
		nxmPerCore   = flag.Int("nxmthreads", 0, "nxm threads per core (default 8)")
		nxmCycles    = flag.Uint64("nxmcycles", 0, "nxm per-run cycle horizon (default 200000)")
		nxmQuantum   = flag.Uint64("nxmquantum", 0, "nxm scheduler decision quantum in cycles (default 10000)")
		verbose      = flag.Bool("v", false, "print progress lines to stderr")
		ckptDir      = flag.String("checkpointdir", "", "snapshot sweep progress to this directory and resume interrupted sweeps from it")
		ckptEvery    = flag.Int("checkpointevery", 0, "checkpoint save cadence in completed pairs (0 = 8)")
		telemetryOut = flag.String("telemetry", "", "write a JSONL event stream plus a final metrics summary to this file")
		telemetryCSV = flag.String("telemetrycsv", "", "write a CSV metrics summary to this file")
		httpAddr     = flag.String("http", "", "serve /metrics and /debug/pprof on this address while experiments run")
		pprofPrefix  = flag.String("pprof", "", "write <prefix>.cpu.pprof and <prefix>.heap.pprof profiles")
	)
	flag.Parse()

	if *list {
		for _, e := range experiments.All() {
			fmt.Printf("%-12s %s\n", e.Name, e.Desc)
		}
		return
	}

	opt := experiments.DefaultOptions()
	if *paper {
		opt = experiments.PaperScaleOptions()
	}
	if *pairs > 0 {
		opt.Pairs = *pairs
	}
	if *limit > 0 {
		opt.InstrLimit = *limit
	}
	if *ctxSwitch > 0 {
		opt.ContextSwitch = *ctxSwitch
	}
	if *overhead > 0 {
		opt.SwapOverhead = *overhead
	}
	if *seed > 0 {
		opt.Seed = *seed
	}
	opt.FaultRate = *faultRate
	opt.FaultSeed = *faultSeed
	opt.CycleBudget = *budget
	opt.Fidelity = *fidelity
	if *nxmCores != "" {
		opt.NXMCores = nil
		for _, s := range strings.Split(*nxmCores, ",") {
			n, err := strconv.Atoi(strings.TrimSpace(s))
			if err != nil {
				fatal(fmt.Errorf("-nxmcores: %w", err))
			}
			opt.NXMCores = append(opt.NXMCores, n)
		}
	}
	if *nxmPerCore > 0 {
		opt.NXMThreadsPerCore = *nxmPerCore
	}
	if *nxmCycles > 0 {
		opt.NXMCycles = *nxmCycles
	}
	if *nxmQuantum > 0 {
		opt.NXMQuantum = *nxmQuantum
	}

	r, err := experiments.NewRunner(opt)
	if err != nil {
		fatal(err)
	}
	if *verbose {
		r.Progress = func(s string) { fmt.Fprintln(os.Stderr, "  ..", s) }
	}
	if *ckptDir != "" {
		r.Checkpoint = experiments.NewDirCheckpointer(*ckptDir)
		r.CheckpointEvery = *ckptEvery
	}

	var sinks []telemetry.Sink
	for _, out := range []struct {
		path string
		mk   func(f *os.File) telemetry.Sink
	}{
		{*telemetryOut, func(f *os.File) telemetry.Sink { return telemetry.NewJSONLSink(f) }},
		{*telemetryCSV, func(f *os.File) telemetry.Sink { return telemetry.NewCSVSummarySink(f) }},
	} {
		if out.path == "" {
			continue
		}
		f, err := os.Create(out.path)
		if err != nil {
			fatal(err)
		}
		sinks = append(sinks, out.mk(f))
	}
	var tel *telemetry.Telemetry
	if len(sinks) > 0 || *httpAddr != "" {
		tel = telemetry.New(sinks...)
		r.Telemetry = tel
		defer func() {
			if err := tel.Close(); err != nil {
				fmt.Fprintln(os.Stderr, "ampexperiments: telemetry:", err)
			}
		}()
	}
	if *httpAddr != "" {
		_, addr, err := telemetry.Serve(*httpAddr, tel.Registry())
		if err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "ampexperiments: metrics and pprof at http://%s/\n", addr)
	}
	if *pprofPrefix != "" {
		prof, err := telemetry.StartProfiler(*pprofPrefix)
		if err != nil {
			fatal(err)
		}
		defer func() {
			if err := prof.Stop(); err != nil {
				fmt.Fprintln(os.Stderr, "ampexperiments: pprof:", err)
			}
		}()
	}

	// The first interrupt cancels the runner's context so in-flight
	// pairs stop at the next check point; signal.NotifyContext restores
	// default handling afterwards, so a second interrupt kills us.
	ctx, stopSignals := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stopSignals()
	r.BaseContext = ctx

	var selected []experiments.Experiment
	if *runList == "all" {
		for _, e := range experiments.All() {
			if e.Name == "fig7full" {
				continue // paper-scale; run explicitly with -run fig7full
			}
			selected = append(selected, e)
		}
	} else {
		for _, name := range strings.Split(*runList, ",") {
			e, err := experiments.ByName(strings.TrimSpace(name))
			if err != nil {
				fatal(err)
			}
			selected = append(selected, e)
		}
	}

	fmt.Printf("# ampsched experiment harness (pairs=%d limit=%d ctxswitch=%d overhead=%d seed=%d)\n\n",
		opt.Pairs, opt.InstrLimit, opt.ContextSwitch, opt.SwapOverhead, opt.Seed)
	start := time.Now()
	for _, e := range selected {
		t0 := time.Now()
		if err := e.Run(r, os.Stdout); err != nil {
			if errors.Is(err, context.Canceled) || ctx.Err() != nil {
				fmt.Fprintf(os.Stderr, "ampexperiments: interrupted during %s\n", e.Name)
				return // deferred sink/profile flushes still run
			}
			fmt.Fprintf(os.Stderr, "ampexperiments: %s: %v\n", e.Name, err)
			os.Exit(1)
		}
		if *verbose {
			fmt.Fprintf(os.Stderr, "  [%s done in %v]\n", e.Name, time.Since(t0).Round(time.Millisecond))
		}
	}
	fmt.Printf("# total elapsed: %v\n", time.Since(start).Round(time.Millisecond))
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "ampexperiments:", err)
	os.Exit(1)
}
