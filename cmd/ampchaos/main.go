// Command ampchaos is the crash-safety harness for ampserve: it
// proves that a kill -9 mid-load loses no acknowledged job and
// corrupts no result, by actually doing it.
//
// Three phases, one verdict:
//
//  1. Chaos: start ampserve with -faultservice (injected disk errors,
//     torn writes, stalls, panics) plus a journal and cache dir. Drive
//     a batch of jobs to completion, record their per-pair result
//     bytes, submit a second batch, and SIGKILL the daemon while that
//     batch is in flight.
//  2. Recovery: restart ampserve on the same dirs with no fault
//     injection. Every acknowledged job must still be addressable and
//     reach a terminal state; jobs the journal never saw finish are
//     re-enqueued (server.jobs_recovered); every pre-kill result byte
//     must read back identical.
//  3. Oracle: run the same specs on a pristine server with fresh dirs
//     and assert the recovered results are byte-identical to an
//     execution that never saw a fault or a crash.
//
// Usage (see `make chaos-smoke`):
//
//	ampchaos -ampserve bin/ampserve [-rate 0.05] [-jobs 10] [-v]
//
// Exit status is non-zero on the first violated invariant.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strconv"
	"syscall"
	"time"
)

var (
	ampserve = flag.String("ampserve", "bin/ampserve", "path to the ampserve binary under test")
	workdir  = flag.String("workdir", "", "scratch directory (default: a fresh temp dir)")
	rate     = flag.Float64("rate", 0.05, "phase-1 service fault rate")
	jobsN    = flag.Int("jobs", 10, "total jobs across both phase-1 batches")
	pairs    = flag.Int("pairs", 2, "pairs per batch-A job (batch B uses 2x to stay in flight)")
	timeout  = flag.Duration("timeout", 4*time.Minute, "overall harness deadline")
	verbose  = flag.Bool("v", false, "pass server stderr through and log each check")
)

var deadline time.Time

func main() {
	flag.Parse()
	if *jobsN < 4 {
		fatal(fmt.Errorf("-jobs must be >= 4 (need both a completed and an in-flight batch)"))
	}
	deadline = time.Now().Add(*timeout)

	dir := *workdir
	if dir == "" {
		var err error
		if dir, err = os.MkdirTemp("", "ampchaos-*"); err != nil {
			fatal(err)
		}
		defer os.RemoveAll(dir)
	} else if err := os.MkdirAll(dir, 0o755); err != nil {
		fatal(err)
	}
	journalDir := filepath.Join(dir, "journal")
	cacheDir := filepath.Join(dir, "cache")

	// ---- Phase 1: chaos ------------------------------------------------
	logf("phase 1: chaos server (fault rate %g)", *rate)
	p1, err := startServer(dir, "p1", journalDir, cacheDir,
		"-faultservice", fmt.Sprint(*rate), "-faultseed", "7")
	if err != nil {
		fatal(err)
	}
	defer p1.kill()

	nA := *jobsN / 2
	type acked struct {
		id   string
		seed uint64
		n    int // pairs
	}
	var ackedJobs []acked

	for i := 0; i < nA; i++ {
		spec := jobSpec{Pairs: *pairs, Seed: 100 + uint64(i)}
		id, err := submit(p1.base, spec)
		if err != nil {
			fatal(fmt.Errorf("phase 1 submit A%d: %w", i, err))
		}
		ackedJobs = append(ackedJobs, acked{id, spec.Seed, spec.Pairs})
	}
	// Batch A runs to completion under fault injection; its result
	// bytes are the crash-survival corpus.
	preKill := map[string][]byte{} // pair key -> raw cached record
	for _, a := range ackedJobs {
		st, err := waitTerminal(p1.base, a.id)
		if err != nil {
			fatal(fmt.Errorf("phase 1 job %s: %w", a.id, err))
		}
		logf("phase 1: job %s (seed %d) %s, %d pairs", a.id, a.seed, st.State, len(st.Results))
		for _, r := range st.Results {
			if r.Failed || r.Key == "" {
				continue
			}
			data, err := fetchResult(p1.base, r.Key)
			if err != nil {
				fatal(fmt.Errorf("phase 1 result %s: %w", r.Key, err))
			}
			preKill[r.Key] = data
		}
	}
	if len(preKill) == 0 {
		fatal(fmt.Errorf("phase 1 completed no pairs; nothing to assert over"))
	}

	// Batch B is acknowledged but (very likely) unfinished when the
	// SIGKILL lands — the jobs recovery must not lose. Double pairs
	// keep them in flight.
	for i := nA; i < *jobsN; i++ {
		spec := jobSpec{Pairs: 2 * *pairs, Seed: 200 + uint64(i)}
		id, err := submit(p1.base, spec)
		if err != nil {
			fatal(fmt.Errorf("phase 1 submit B%d: %w", i, err))
		}
		ackedJobs = append(ackedJobs, acked{id, spec.Seed, spec.Pairs})
	}
	logf("phase 1: SIGKILL with %d jobs acknowledged", len(ackedJobs))
	p1.kill()

	// ---- Phase 2: recovery ---------------------------------------------
	logf("phase 2: recovery server on the same journal and cache")
	p2, err := startServer(dir, "p2", journalDir, cacheDir)
	if err != nil {
		fatal(err)
	}
	defer p2.kill()

	recovered, err := metricValue(p2.base, "server.jobs_recovered")
	if err != nil {
		fatal(err)
	}
	logf("phase 2: server.jobs_recovered = %.0f", recovered)

	postKill := map[string][]byte{}
	seedKeys := map[uint64][]string{} // seed -> sorted pair keys of done jobs
	requeuedDone := 0
	for _, a := range ackedJobs {
		st, err := waitTerminal(p2.base, a.id)
		if err != nil {
			fatal(fmt.Errorf("phase 2: acknowledged job %s lost: %w", a.id, err))
		}
		if !terminalState(st.State) {
			fatal(fmt.Errorf("phase 2: job %s stuck in %q", a.id, st.State))
		}
		if st.State == "done" && len(st.Results) > 0 {
			requeuedDone++
			var keys []string
			for _, r := range st.Results {
				if r.Failed || r.Key == "" {
					continue
				}
				data, err := fetchResult(p2.base, r.Key)
				if err != nil {
					fatal(fmt.Errorf("phase 2 result %s: %w", r.Key, err))
				}
				postKill[r.Key] = data
				keys = append(keys, r.Key)
			}
			sort.Strings(keys)
			seedKeys[a.seed] = keys
		}
		logf("phase 2: job %s %s (recovered=%v)", a.id, st.State, st.Recovered)
	}
	if recovered < 1 && requeuedDone <= nA {
		// Only fatal when nothing from batch B was actually re-run —
		// i.e. recovery truly did nothing despite in-flight work.
		fatal(fmt.Errorf("phase 2: no job was recovered from the journal"))
	}

	// Every pre-kill byte must survive the crash unchanged.
	for key, want := range preKill {
		data, err := fetchResult(p2.base, key)
		if err != nil {
			fatal(fmt.Errorf("phase 2: pre-kill result %s unreadable after crash: %w", key, err))
		}
		if !bytes.Equal(data, want) {
			fatal(fmt.Errorf("phase 2: result %s changed across the crash", key))
		}
	}
	logf("phase 2: all %d pre-kill results byte-identical", len(preKill))
	if err := p2.stop(); err != nil {
		fatal(fmt.Errorf("phase 2 graceful stop: %w", err))
	}

	// ---- Phase 3: oracle -----------------------------------------------
	logf("phase 3: pristine server, fresh dirs, same specs")
	p3, err := startServer(dir, "p3",
		filepath.Join(dir, "journal3"), filepath.Join(dir, "cache3"))
	if err != nil {
		fatal(err)
	}
	defer p3.kill()

	checked := 0
	for _, a := range ackedJobs {
		if _, ok := seedKeys[a.seed]; !ok {
			continue // job ended failed/canceled in phase 2; no oracle to compare
		}
		id, err := submit(p3.base, jobSpec{Pairs: a.n, Seed: a.seed})
		if err != nil {
			fatal(fmt.Errorf("phase 3 submit seed %d: %w", a.seed, err))
		}
		st, err := waitTerminal(p3.base, id)
		if err != nil || st.State != "done" {
			fatal(fmt.Errorf("phase 3 job seed %d: state %q, err %v", a.seed, st.State, err))
		}
		var keys []string
		for _, r := range st.Results {
			if r.Key == "" {
				continue
			}
			data, err := fetchResult(p3.base, r.Key)
			if err != nil {
				fatal(fmt.Errorf("phase 3 result %s: %w", r.Key, err))
			}
			if got, ok := postKill[r.Key]; ok {
				if !bytes.Equal(got, data) {
					fatal(fmt.Errorf("phase 3: result %s differs between recovered and pristine runs", r.Key))
				}
				checked++
			}
			keys = append(keys, r.Key)
		}
		sort.Strings(keys)
		if want := seedKeys[a.seed]; !equalStrings(keys, want) {
			fatal(fmt.Errorf("phase 3: seed %d produced keys %v, recovered run had %v", a.seed, keys, want))
		}
	}
	if checked == 0 {
		fatal(fmt.Errorf("phase 3 compared no results"))
	}
	if err := p3.stop(); err != nil {
		fatal(fmt.Errorf("phase 3 graceful stop: %w", err))
	}

	fmt.Printf("chaos-smoke PASS: %d jobs acknowledged, %.0f recovered, %d pre-kill results intact, %d pairs oracle-verified\n",
		len(ackedJobs), recovered, len(preKill), checked)
}

// ---- server process management -----------------------------------------

type proc struct {
	cmd    *exec.Cmd
	base   string
	exited chan struct{}
	werr   error
}

// startServer launches ampserve on a free port with small, fast
// simulation parameters and waits until it answers /healthz.
func startServer(dir, name, journalDir, cacheDir string, extra ...string) (*proc, error) {
	addrFile := filepath.Join(dir, name+".addr")
	_ = os.Remove(addrFile)
	args := append([]string{
		"-addr", "127.0.0.1:0", "-addrfile", addrFile,
		"-journaldir", journalDir, "-cachedir", cacheDir,
		"-flushevery", "100ms",
		"-limit", "40000", "-contextswitch", "10000",
		"-profilelimit", "30000", "-fidelity", "interval",
		"-workers", "4",
	}, extra...)
	cmd := exec.Command(*ampserve, args...)
	if *verbose {
		cmd.Stdout, cmd.Stderr = os.Stderr, os.Stderr
	} else {
		cmd.Stdout, cmd.Stderr = io.Discard, io.Discard
	}
	if err := cmd.Start(); err != nil {
		return nil, fmt.Errorf("starting %s: %w", name, err)
	}
	p := &proc{cmd: cmd, exited: make(chan struct{})}
	go func() {
		p.werr = cmd.Wait()
		close(p.exited)
	}()
	for {
		if time.Now().After(deadline) {
			p.kill()
			return nil, fmt.Errorf("%s: server never became healthy", name)
		}
		select {
		case <-p.exited:
			return nil, fmt.Errorf("%s: server exited before becoming healthy: %v", name, p.werr)
		default:
		}
		if addr, err := os.ReadFile(addrFile); err == nil && len(addr) > 0 {
			p.base = "http://" + string(bytes.TrimSpace(addr))
			if resp, err := http.Get(p.base + "/healthz"); err == nil {
				resp.Body.Close()
				if resp.StatusCode == http.StatusOK {
					return p, nil
				}
			}
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// kill is the chaos primitive: SIGKILL, no drain, no flush. Idempotent
// so it doubles as cleanup.
func (p *proc) kill() {
	select {
	case <-p.exited:
		return
	default:
	}
	_ = p.cmd.Process.Kill()
	<-p.exited
}

// stop drains gracefully via SIGTERM and requires a clean exit.
func (p *proc) stop() error {
	if err := p.cmd.Process.Signal(syscall.SIGTERM); err != nil {
		return err
	}
	select {
	case <-p.exited:
	case <-time.After(time.Until(deadline)):
		p.kill()
		return fmt.Errorf("server did not drain before the harness deadline")
	}
	if p.werr != nil {
		return fmt.Errorf("unclean exit: %w", p.werr)
	}
	return nil
}

// ---- HTTP client helpers ------------------------------------------------

type jobSpec struct {
	Pairs int    `json:"pairs"`
	Seed  uint64 `json:"seed,omitempty"`
}

type pairResult struct {
	Key    string `json:"key"`
	Failed bool   `json:"failed,omitempty"`
}

type jobStatus struct {
	ID        string       `json:"id"`
	State     string       `json:"state"`
	Recovered bool         `json:"recovered,omitempty"`
	Results   []pairResult `json:"results,omitempty"`
}

func terminalState(s string) bool { return s == "done" || s == "failed" || s == "canceled" }

// submit POSTs one job, retrying overload pushback (429/503) with the
// server's Retry-After hint, and returns the acknowledged id.
func submit(base string, spec jobSpec) (string, error) {
	body, err := json.Marshal(spec)
	if err != nil {
		return "", err
	}
	for {
		resp, err := http.Post(base+"/v1/jobs", "application/json", bytes.NewReader(body))
		if err != nil {
			return "", err
		}
		if resp.StatusCode == http.StatusTooManyRequests ||
			resp.StatusCode == http.StatusServiceUnavailable {
			resp.Body.Close()
			if time.Now().After(deadline) {
				return "", fmt.Errorf("submit timed out on backpressure")
			}
			time.Sleep(retryAfter(resp))
			continue
		}
		if resp.StatusCode != http.StatusAccepted {
			resp.Body.Close()
			return "", fmt.Errorf("submit: HTTP %d", resp.StatusCode)
		}
		var st jobStatus
		err = json.NewDecoder(resp.Body).Decode(&st)
		resp.Body.Close()
		if err != nil {
			return "", err
		}
		return st.ID, nil
	}
}

func retryAfter(resp *http.Response) time.Duration {
	if secs, err := strconv.Atoi(resp.Header.Get("Retry-After")); err == nil && secs > 0 && secs <= 5 {
		return time.Duration(secs) * time.Second
	}
	return 50 * time.Millisecond
}

// waitTerminal polls a job until it reaches a terminal state.
func waitTerminal(base, id string) (jobStatus, error) {
	for {
		resp, err := http.Get(base + "/v1/jobs/" + id)
		if err != nil {
			return jobStatus{}, err
		}
		if resp.StatusCode != http.StatusOK {
			resp.Body.Close()
			return jobStatus{}, fmt.Errorf("status: HTTP %d", resp.StatusCode)
		}
		var st jobStatus
		err = json.NewDecoder(resp.Body).Decode(&st)
		resp.Body.Close()
		if err != nil {
			return jobStatus{}, err
		}
		if terminalState(st.State) {
			return st, nil
		}
		if time.Now().After(deadline) {
			return st, fmt.Errorf("job %s still %s at harness deadline", id, st.State)
		}
		time.Sleep(25 * time.Millisecond)
	}
}

// fetchResult reads one content-addressed pair record's raw bytes.
func fetchResult(base, key string) ([]byte, error) {
	resp, err := http.Get(base + "/v1/results/" + key)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("result %s: HTTP %d", key, resp.StatusCode)
	}
	return io.ReadAll(resp.Body)
}

// metricValue reads one counter/gauge from /metrics.
func metricValue(base, name string) (float64, error) {
	resp, err := http.Get(base + "/metrics")
	if err != nil {
		return 0, err
	}
	defer resp.Body.Close()
	var snap struct {
		Metrics []struct {
			Name  string  `json:"name"`
			Value float64 `json:"value"`
		} `json:"metrics"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		return 0, err
	}
	for _, m := range snap.Metrics {
		if m.Name == name {
			return m.Value, nil
		}
	}
	return 0, nil // absent = never incremented
}

func equalStrings(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func logf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "ampchaos: "+format+"\n", args...)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "ampchaos: FAIL:", err)
	os.Exit(1)
}
