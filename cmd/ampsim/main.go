// Command ampsim runs one two-thread workload on the asymmetric
// dual-core under a chosen scheduler and prints per-thread metrics.
//
// Usage:
//
//	ampsim -a gcc -b fpstress -sched proposed [-limit 1500000]
//
// Schedulers: proposed, hpe-matrix, hpe-regression, rr, rr2, static.
// The HPE variants first run the §V profiling pass to build their
// estimator (add -profilelimit to trade accuracy for speed).
//
// Observability: -telemetry streams window/swap/fault events as JSONL
// (plus a final metrics summary line), -telemetrycsv writes a CSV
// metrics summary, -http serves /metrics and /debug/pprof during the
// run, and -pprof writes CPU and heap profiles.
package main

import (
	"errors"
	"flag"
	"fmt"
	"os"

	"ampsched/internal/amp"
	"ampsched/internal/cpu"
	"ampsched/internal/experiments"
	"ampsched/internal/fault"
	"ampsched/internal/interval"
	"ampsched/internal/monitor"
	"ampsched/internal/report"
	"ampsched/internal/sched"
	"ampsched/internal/telemetry"
	"ampsched/internal/workload"
)

func main() {
	var (
		benchA       = flag.String("a", "gcc", "benchmark for thread 0 (starts on the INT core)")
		benchB       = flag.String("b", "fpstress", "benchmark for thread 1 (starts on the FP core)")
		schedName    = flag.String("sched", "proposed", "scheduler: proposed|proposed-ext|morphing|sampling|hpe-matrix|hpe-regression|rr|rr2|static")
		fidelity     = flag.String("fidelity", "", "simulation engine: detailed (default, cycle-accurate) | interval (calibrated analytic) | sampled (detailed warm-up + interval fast-forward)")
		limit        = flag.Uint64("limit", 1_500_000, "stop when either thread commits this many instructions")
		ctxSwitch    = flag.Uint64("contextswitch", 400_000, "coarse decision interval in cycles")
		overhead     = flag.Uint64("overhead", amp.DefaultSwapOverheadCycles, "swap overhead in cycles")
		seed         = flag.Uint64("seed", 7, "workload seed")
		profileLimit = flag.Uint64("profilelimit", 2_000_000, "instructions per profiling run (HPE schedulers)")
		timeline     = flag.Uint64("timeline", 0, "record and print a timeline point every N cycles (0 = off)")
		faultRate    = flag.Float64("faultrate", 0, "uniform fault-injection rate in [0,1]: monitor drop/stale/noise plus swap fail/delay (0 = off)")
		faultSeed    = flag.Uint64("faultseed", 1, "fault-plan seed; runs are deterministic in (seed, faultseed, faultrate)")
		telemetryOut = flag.String("telemetry", "", "write a JSONL event stream plus a final metrics summary to this file")
		telemetryCSV = flag.String("telemetrycsv", "", "write a CSV metrics summary to this file")
		httpAddr     = flag.String("http", "", "serve /metrics and /debug/pprof on this address for the duration of the run")
		pprofPrefix  = flag.String("pprof", "", "write <prefix>.cpu.pprof and <prefix>.heap.pprof profiles of the run")
	)
	flag.Parse()

	a, err := workload.ByName(*benchA)
	if err != nil {
		fatal(err)
	}
	b, err := workload.ByName(*benchB)
	if err != nil {
		fatal(err)
	}

	opt := experiments.DefaultOptions()
	opt.InstrLimit = *limit
	opt.ContextSwitch = *ctxSwitch
	opt.SwapOverhead = *overhead
	opt.Seed = *seed
	opt.ProfileInstrLimit = *profileLimit
	opt.Fidelity = *fidelity
	runner, err := experiments.NewRunner(opt)
	if err != nil {
		fatal(err)
	}
	engineFactory, err := interval.FactoryFor(*fidelity)
	if err != nil {
		fatal(err)
	}

	var sinks []telemetry.Sink
	for _, out := range []struct {
		path string
		mk   func(f *os.File) telemetry.Sink
	}{
		{*telemetryOut, func(f *os.File) telemetry.Sink { return telemetry.NewJSONLSink(f) }},
		{*telemetryCSV, func(f *os.File) telemetry.Sink { return telemetry.NewCSVSummarySink(f) }},
	} {
		if out.path == "" {
			continue
		}
		f, err := os.Create(out.path)
		if err != nil {
			fatal(err)
		}
		sinks = append(sinks, out.mk(f))
	}
	var tel *telemetry.Telemetry
	if len(sinks) > 0 || *httpAddr != "" {
		tel = telemetry.New(sinks...)
		defer func() {
			if err := tel.Close(); err != nil {
				fmt.Fprintln(os.Stderr, "ampsim: telemetry:", err)
			}
		}()
	}
	if *httpAddr != "" {
		_, addr, err := telemetry.Serve(*httpAddr, tel.Registry())
		if err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "ampsim: metrics and pprof at http://%s/\n", addr)
	}
	if *pprofPrefix != "" {
		prof, err := telemetry.StartProfiler(*pprofPrefix)
		if err != nil {
			fatal(err)
		}
		defer func() {
			if err := prof.Stop(); err != nil {
				fmt.Fprintln(os.Stderr, "ampsim: pprof:", err)
			}
		}()
	}

	var factory experiments.SchedFactory
	switch *schedName {
	case "proposed":
		factory = runner.ProposedFactory()
	case "proposed-ext":
		factory = runner.ProposedExtFactory()
	case "morphing":
		factory = runner.MorphingFactory()
	case "sampling":
		factory = runner.SamplingFactory()
	case "hpe-matrix":
		m, err := runner.Matrix()
		if err != nil {
			fatal(err)
		}
		factory = runner.HPEFactory(m)
	case "hpe-regression":
		s, err := runner.Surface()
		if err != nil {
			fatal(err)
		}
		factory = runner.HPEFactory(s)
	case "rr":
		factory = runner.RRFactory(1)
	case "rr2":
		factory = runner.RRFactory(2)
	case "static":
		factory = experiments.StaticFactory()
	default:
		fatal(fmt.Errorf("unknown scheduler %q", *schedName))
	}

	t0 := amp.NewThread(0, a, *seed*1_000_003, 0)
	t1 := amp.NewThread(1, b, *seed*1_000_003+1, 1<<40)

	var schedOpts []sched.Option
	ampOpts := []amp.Option{amp.WithEngine(engineFactory)}
	if tel != nil {
		schedOpts = append(schedOpts, sched.WithTelemetry(tel))
		ampOpts = append(ampOpts, amp.WithTelemetry(tel))
	}
	var plan *fault.Plan
	if *faultRate > 0 {
		plan, err = fault.New(fault.Uniform(*faultRate, *faultSeed))
		if err != nil {
			fatal(err)
		}
		plan.SetTelemetry(tel)
		ampOpts = append(ampOpts, amp.WithFaultPlan(plan))
		var tag uint64
		schedOpts = append(schedOpts, sched.WithObserverFactory(func(window uint64) monitor.Observer {
			tag++
			return plan.Observer(monitor.NewWindowTracker(window), tag)
		}))
	}
	var schedInst amp.MoveScheduler
	if factory != nil {
		schedInst = factory(schedOpts...)
	}
	cfg := amp.Config{SwapOverheadCycles: *overhead}
	sys, err := amp.NewSystem([2]*cpu.Config{runner.IntCfg, runner.FPCfg},
		[2]*amp.Thread{t0, t1}, schedInst, cfg, ampOpts...)
	if err != nil {
		fatal(err)
	}
	if *timeline > 0 {
		sys.EnableTimeline(*timeline)
	}
	res, runErr := sys.Run(*limit)
	if runErr != nil && !errors.Is(runErr, amp.ErrWedged) {
		fatal(runErr)
	}

	t := &report.Table{
		Title: fmt.Sprintf("%s + %s under %s (cycles=%d, swaps=%d, morphs=%d)",
			a.Name, b.Name, res.Scheduler, res.Cycles, res.Swaps, res.Morphs),
		Headers: []string{"thread", "benchmark", "committed", "IPC", "watts", "IPC/Watt", "%INT", "%FP"},
	}
	if runErr != nil {
		t.Note = fmt.Sprintf("RUN WEDGED (partial results): %v", runErr)
	}
	if plan != nil {
		st := plan.Stats()
		note := fmt.Sprintf("faults injected: %d dropped / %d stale / %d noised samples, %d failed / %d delayed swaps",
			st.SamplesDropped, st.SamplesStale, st.SamplesNoised, st.SwapsFailed, st.SwapsDelayed)
		if t.Note != "" {
			t.Note += "; " + note
		} else {
			t.Note = note
		}
	}
	for i, tr := range res.Threads {
		t.AddRow(fmt.Sprint(i), tr.Name, fmt.Sprint(tr.Committed),
			report.F3(tr.IPC), report.F3(tr.Watts), report.F4(tr.IPCPerWatt),
			fmt.Sprintf("%.1f", tr.IntPct), fmt.Sprintf("%.1f", tr.FPPct))
	}
	if res.Sched.DecisionPoints > 0 {
		note := fmt.Sprintf("scheduler evaluated %d decision points, requested %d swaps",
			res.Sched.DecisionPoints, res.Sched.SwapRequests)
		if res.FailedSwaps > 0 {
			note += fmt.Sprintf(" (%d failed)", res.FailedSwaps)
		}
		if t.Note != "" {
			t.Note += "; " + note
		} else {
			t.Note = note
		}
	}
	if err := t.Fprint(os.Stdout); err != nil {
		fatal(err)
	}

	if *timeline > 0 {
		tt := &report.Table{
			Title: "timeline (one row per interval)",
			Headers: []string{"end cycle", "sw/mo",
				"t0 core", "t0 ipc", "t0 %INT", "t0 %FP",
				"t1 core", "t1 ipc", "t1 %INT", "t1 %FP"},
		}
		for _, p := range sys.Timeline() {
			tt.AddRow(fmt.Sprint(p.EndCycle), fmt.Sprintf("%d/%d", p.Swaps, p.Morphs),
				fmt.Sprint(p.Threads[0].Core), report.F3(p.Threads[0].IPC),
				fmt.Sprintf("%.0f", p.Threads[0].IntPct), fmt.Sprintf("%.0f", p.Threads[0].FPPct),
				fmt.Sprint(p.Threads[1].Core), report.F3(p.Threads[1].IPC),
				fmt.Sprintf("%.0f", p.Threads[1].IntPct), fmt.Sprintf("%.0f", p.Threads[1].FPPct))
		}
		if err := tt.Fprint(os.Stdout); err != nil {
			fatal(err)
		}
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "ampsim:", err)
	os.Exit(1)
}
