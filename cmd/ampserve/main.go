// Command ampserve runs the simulation-as-a-service daemon: an
// HTTP/JSON API (internal/server) over the bounded priority job queue
// (internal/jobqueue), with a content-addressed result cache and
// NDJSON streaming of per-pair outcomes.
//
// Usage:
//
//	ampserve [-addr 127.0.0.1:8080] [-workers N] [-cachedir DIR] ...
//
// The daemon serves until SIGINT/SIGTERM, then drains gracefully:
// in-flight jobs finish (up to -draintimeout), the cache is persisted,
// and the listener shuts down. A second signal aborts immediately.
//
// With -addr :0 the kernel picks a free port; -addrfile writes the
// bound address to a file once the listener is up, so scripts (and
// `make serve-smoke`) can wait for readiness without racing.
//
// Crash safety: -journaldir journals every job's lifecycle to a
// CRC-framed write-ahead log; on restart the journal is replayed and
// acknowledged-but-unfinished jobs are re-enqueued (their completed
// pairs return from the -cachedir result cache, so recovery repeats
// no work already persisted). -maxcost and the -breaker* flags bound
// the backlog under overload, and -faultservice turns the daemon into
// its own chaos subject for `make chaos-smoke`.
//
// Fleet mode: -peers (or -peersfile) lists the static membership of
// an ampserve fleet. Submissions route to their canonical owner on a
// consistent-hash ring (so concurrent identical jobs collapse into
// one simulation fleet-wide), cached results are shared node-to-node,
// idle nodes steal pending pair jobs from overloaded peers, and a
// heartbeat marks unreachable peers dead and re-routes around them
// (internal/cluster).
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"ampsched/internal/cluster"
	"ampsched/internal/experiments"
	"ampsched/internal/fault"
	"ampsched/internal/jobqueue"
	"ampsched/internal/server"
	"ampsched/internal/telemetry"
)

func main() {
	var (
		addr         = flag.String("addr", "127.0.0.1:8080", "listen address (host:port; :0 picks a free port)")
		addrFile     = flag.String("addrfile", "", "write the bound address to this file once listening")
		workers      = flag.Int("workers", 0, "job queue worker pool size (0 = GOMAXPROCS)")
		queueCap     = flag.Int("queuecap", 0, "pending job high-water mark (0 = 4x workers)")
		maxPairs     = flag.Int("maxpairs", 0, "per-job pair limit (0 = 400)")
		cacheBytes   = flag.Int64("cachebytes", 0, "result cache byte budget (0 = 64 MiB)")
		cacheDir     = flag.String("cachedir", "", "persist the result cache to this directory")
		journalDir   = flag.String("journaldir", "", "journal job lifecycle to this directory and replay it on startup")
		flushEvery   = flag.Duration("flushevery", 0, "background cache/journal flush cadence (0 = only on drain)")
		maxCost      = flag.Float64("maxcost", 0, "shed submissions past this backlog cost in weighted pairs (0 = no shedding)")
		breakerWin   = flag.Int("breakerwindow", 0, "per-fidelity breaker outcome window (0 = 20, negative disables)")
		breakerTrip  = flag.Float64("breakertrip", 0, "wedge fraction over a full window that trips the breaker (0 = 0.5)")
		breakerCool  = flag.Duration("breakercooldown", 0, "tripped-breaker refusal period before a half-open probe (0 = 5s)")
		faultRate    = flag.Float64("faultservice", 0, "chaos: inject service faults (disk errors, torn writes, stalls, panics) at this uniform rate")
		faultSeed    = flag.Uint64("faultseed", 1, "chaos: service fault-plan seed")
		fidelity     = flag.String("fidelity", "", "default simulation engine: detailed | interval | sampled")
		limit        = flag.Uint64("limit", 0, "default per-run instruction limit")
		profileLimit = flag.Uint64("profilelimit", 0, "default profiling-pass instruction limit")
		ctxSwitch    = flag.Uint64("contextswitch", 0, "default coarse decision interval (cycles)")
		overhead     = flag.Uint64("overhead", 0, "default swap overhead (cycles)")
		seed         = flag.Uint64("seed", 0, "default RNG seed")
		telemetryOut = flag.String("telemetry", "", "write a JSONL event stream plus a final metrics summary to this file")
		drainTimeout = flag.Duration("draintimeout", 30*time.Second, "graceful drain budget after SIGTERM")
		verbose      = flag.Bool("v", false, "log requests-in-progress details to stderr")

		peers         = flag.String("peers", "", "fleet mode: comma-separated peer addresses (host:port), including this node")
		peersFile     = flag.String("peersfile", "", "fleet mode: file with one peer address per line (alternative to -peers)")
		advertise     = flag.String("advertise", "", "fleet mode: this node's address as peers spell it (default: the bound address)")
		vnodes        = flag.Int("vnodes", 0, "fleet mode: virtual nodes per peer on the hash ring (0 = 64)")
		heartbeat     = flag.Duration("heartbeat", 0, "fleet mode: peer liveness probe cadence (0 = 500ms)")
		stealInterval = flag.Duration("stealinterval", 0, "fleet mode: idle work-stealing poll cadence (0 = 250ms, negative disables)")
		claimTTL      = flag.Duration("claimttl", 0, "fleet mode: stolen-work claim TTL before local re-dispatch (0 = 20s)")
	)
	flag.Parse()

	opt := experiments.DefaultOptions()
	if *limit > 0 {
		opt.InstrLimit = *limit
	}
	if *profileLimit > 0 {
		opt.ProfileInstrLimit = *profileLimit
	}
	if *ctxSwitch > 0 {
		opt.ContextSwitch = *ctxSwitch
	}
	if *overhead > 0 {
		opt.SwapOverhead = *overhead
	}
	if *seed > 0 {
		opt.Seed = *seed
	}
	if *fidelity != "" {
		opt.Fidelity = *fidelity
	}

	var sinks []telemetry.Sink
	if *telemetryOut != "" {
		f, err := os.Create(*telemetryOut)
		if err != nil {
			fatal(err)
		}
		sinks = append(sinks, telemetry.NewJSONLSink(f))
	}
	tel := telemetry.New(sinks...)

	var chaos *fault.ServicePlan
	if *faultRate > 0 {
		plan, err := fault.NewService(fault.UniformService(*faultRate, *faultSeed))
		if err != nil {
			fatal(err)
		}
		chaos = plan
		fmt.Fprintf(os.Stderr, "ampserve: CHAOS MODE: injecting service faults at rate %g (seed %d)\n",
			*faultRate, *faultSeed)
	}

	// The listener binds before the server is built: in fleet mode the
	// bound address is this node's default identity, and the job-id
	// namespace derived from it must be fixed before journal recovery
	// mints or replays any id. Nothing is served until hs.Serve below,
	// so clients still never observe a half-recovered job table.
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fatal(err)
	}
	bound := ln.Addr().String()
	if *addrFile != "" {
		// Write-then-rename so watchers never read a partial address.
		tmp := *addrFile + ".tmp"
		if err := os.WriteFile(tmp, []byte(bound+"\n"), 0o644); err != nil {
			fatal(err)
		}
		if err := os.Rename(tmp, *addrFile); err != nil {
			fatal(err)
		}
	}
	fmt.Fprintf(os.Stderr, "ampserve: listening on http://%s/\n", bound)

	peerList, err := resolvePeers(*peers, *peersFile)
	if err != nil {
		fatal(err)
	}
	self := *advertise
	if self == "" {
		self = bound
	}
	idSpace := ""
	if len(peerList) > 0 {
		// Fleet mode: namespace job ids by node identity so ids minted
		// concurrently across the fleet never collide (status polls for
		// forwarded jobs route by id).
		idSpace = self
	}

	srv, err := server.New(server.Config{
		BaseOptions:    opt,
		MaxPairsPerJob: *maxPairs,
		Queue:          jobqueue.Config{Workers: *workers, Capacity: *queueCap},
		Cache:          server.CacheConfig{ByteBudget: *cacheBytes, Dir: *cacheDir},
		JournalDir:     *journalDir,
		FlushEvery:     *flushEvery,
		Admission: server.AdmissionConfig{
			MaxPendingCost:  *maxCost,
			BreakerWindow:   *breakerWin,
			BreakerTripRate: *breakerTrip,
			BreakerCooldown: *breakerCool,
		},
		Chaos:      chaos,
		Telemetry:  tel,
		JobIDSpace: idSpace,
	})
	if err != nil {
		fatal(err)
	}
	if *cacheDir != "" {
		if err := srv.Cache().Load(); err != nil {
			fatal(err)
		}
		if *verbose {
			fmt.Fprintf(os.Stderr, "ampserve: cache warm with %d entries (%d bytes)\n",
				srv.Cache().Len(), srv.Cache().Bytes())
		}
	}
	if *journalDir != "" {
		// Recovery runs after the cache load so re-run jobs hit it, and
		// before hs.Serve starts accepting so clients never observe a
		// half-recovered job table (the listener is bound but idle).
		rs, err := srv.Recover()
		if err != nil {
			fatal(err)
		}
		if rs.Jobs > 0 || rs.Replay.Degraded() {
			fmt.Fprintf(os.Stderr,
				"ampserve: journal replay: %d jobs (%d requeued, %d already terminal); %d records, %d dropped, %d segments quarantined\n",
				rs.Jobs, rs.Requeued, rs.Terminal,
				rs.Replay.Records, rs.Replay.RecordsDropped, rs.Replay.SegmentsQuarantined)
		}
	}

	// Fleet mode: wrap the server in a cluster node. The node's
	// handler layers consistent-hash routing, peer endpoints and
	// forwarding over the plain API; its background loops (heartbeat,
	// work stealing) run until the drain path closes them.
	handler := srv.Handler()
	var node *cluster.Node
	if len(peerList) > 0 {
		node, err = cluster.New(srv, cluster.Config{
			Self:          self,
			Peers:         peerList,
			VNodes:        *vnodes,
			Heartbeat:     *heartbeat,
			StealInterval: *stealInterval,
			ClaimTTL:      *claimTTL,
			Telemetry:     tel,
		})
		if err != nil {
			fatal(err)
		}
		nodeCtx, nodeCancel := context.WithCancel(context.Background())
		defer nodeCancel()
		if err := node.Start(nodeCtx); err != nil {
			fatal(err)
		}
		handler = node.Handler()
		fmt.Fprintf(os.Stderr, "ampserve: fleet mode: self %s, peers %v\n", self, peerList)
	}

	hs := &http.Server{Handler: handler}
	serveErr := make(chan error, 1)
	go func() { serveErr <- hs.Serve(ln) }()

	sigc := make(chan os.Signal, 2)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	select {
	case sig := <-sigc:
		fmt.Fprintf(os.Stderr, "ampserve: %v: draining (budget %v; signal again to abort)\n", sig, *drainTimeout)
	case err := <-serveErr:
		fatal(err)
	}

	// A second signal cuts the drain short.
	ctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	go func() {
		<-sigc
		fmt.Fprintln(os.Stderr, "ampserve: second signal: aborting drain")
		cancel()
	}()
	defer cancel()

	exit := 0
	if node != nil {
		// Stop forwarding/stealing before the queue drains: a claim
		// voided here re-dispatches on its owner, and peers' heartbeats
		// re-route new work away once the listener is gone.
		if err := node.Close(); err != nil {
			fmt.Fprintln(os.Stderr, "ampserve: cluster:", err)
			exit = 1
		}
	}
	if err := srv.Drain(ctx); err != nil {
		fmt.Fprintln(os.Stderr, "ampserve: drain:", err)
		exit = 1
	}
	if err := hs.Shutdown(ctx); err != nil && !errors.Is(err, context.Canceled) && !errors.Is(err, context.DeadlineExceeded) {
		fmt.Fprintln(os.Stderr, "ampserve: shutdown:", err)
		exit = 1
	}
	if err := tel.Close(); err != nil {
		fmt.Fprintln(os.Stderr, "ampserve: telemetry:", err)
		exit = 1
	}
	os.Exit(exit)
}

// resolvePeers merges the -peers list and -peersfile contents into
// the fleet membership (nil = single-node mode). The file form takes
// one address per line; blank lines and #-comments are skipped.
func resolvePeers(flat, file string) ([]string, error) {
	var peers []string
	for _, p := range strings.Split(flat, ",") {
		if p = strings.TrimSpace(p); p != "" {
			peers = append(peers, p)
		}
	}
	if file != "" {
		data, err := os.ReadFile(file)
		if err != nil {
			return nil, fmt.Errorf("reading peers file: %w", err)
		}
		for _, line := range strings.Split(string(data), "\n") {
			line = strings.TrimSpace(line)
			if line == "" || strings.HasPrefix(line, "#") {
				continue
			}
			peers = append(peers, line)
		}
	}
	return peers, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "ampserve:", err)
	os.Exit(1)
}
