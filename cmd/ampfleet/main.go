// Command ampfleet is the distributed-mode smoke harness for
// ampserve: it boots a three-node fleet, proves cross-node routing is
// doing real work, SIGKILLs one node mid-load, and requires the
// survivors to re-route around the corpse, drain cleanly, and produce
// results byte-identical to a single-node run that never clustered at
// all.
//
// Phases:
//
//  1. Boot: three ampserve processes on one machine, each given the
//     full peer list (-peers), fast heartbeats, and work stealing
//     enabled.
//  2. Load: spray a batch of jobs round-robin across all nodes with a
//     skewed key distribution (half pin the hottest seed), wait for
//     every job, and record each pair's result bytes. Every key is
//     also fetched from a node that did not run the job — the remote
//     result lookup path. Requires cluster.forwards > 0 somewhere:
//     the ring actually routed work between nodes.
//  3. Chaos: submit another batch across all three nodes and SIGKILL
//     node 3 while it is in flight. Jobs stranded on the dead node
//     (submitted or forwarded to it) are resubmitted to a survivor —
//     the content-addressed cache makes the retry cheap and safe.
//     The survivors must mark the corpse dead (cluster.ring_rebuilds
//     >= 1), keep answering submissions, and then drain cleanly on
//     SIGTERM (exit 0).
//  4. Oracle: a fresh single node (no -peers, no cluster layer) runs
//     the same specs; every recorded pair result must be
//     byte-identical. Compute location — owner, forward fallback,
//     stealer — must be unobservable in the bytes.
//
// Usage (see `make fleet-smoke`):
//
//	ampfleet -ampserve bin/ampserve [-jobs 18] [-v]
//
// Exit status is non-zero on the first violated invariant.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"syscall"
	"time"
)

var (
	ampserve = flag.String("ampserve", "bin/ampserve", "path to the ampserve binary under test")
	workdir  = flag.String("workdir", "", "scratch directory (default: a fresh temp dir)")
	jobsN    = flag.Int("jobs", 18, "phase-2 load batch size")
	pairs    = flag.Int("pairs", 3, "pairs per job (hot jobs use 2x)")
	timeout  = flag.Duration("timeout", 4*time.Minute, "overall harness deadline")
	verbose  = flag.Bool("v", false, "pass server stderr through and log each check")
)

var deadline time.Time

// procs tracks every child server so fatal (os.Exit skips defers)
// still reaps them instead of leaking daemons into CI.
var procs []*proc

const (
	hotSeed  = 500 // the skewed half of the load batch pins this seed
	coldSeed = 600
	bSeed    = 700 // chaos batch
	postSeed = 800 // post-death probe batch
)

func main() {
	flag.Parse()
	if *jobsN < 6 {
		fatal(fmt.Errorf("-jobs must be >= 6 (need hot and cold keys on every node)"))
	}
	deadline = time.Now().Add(*timeout)

	dir := *workdir
	if dir == "" {
		var err error
		if dir, err = os.MkdirTemp("", "ampfleet-*"); err != nil {
			fatal(err)
		}
		defer os.RemoveAll(dir)
	} else if err := os.MkdirAll(dir, 0o755); err != nil {
		fatal(err)
	}

	// ---- Phase 1: boot the fleet ---------------------------------------
	addrs, err := freeAddrs(3)
	if err != nil {
		fatal(err)
	}
	peerList := strings.Join(addrs, ",")
	logf("phase 1: booting 3 nodes: %s", peerList)
	fleet := make([]*proc, 3)
	for i, a := range addrs {
		name := fmt.Sprintf("n%d", i+1)
		fleet[i], err = startServer(dir, name, a,
			"-peers", peerList,
			"-heartbeat", "200ms",
			"-stealinterval", "100ms",
			"-workers", "2",
		)
		if err != nil {
			fatal(err)
		}
		defer fleet[i].kill()
	}

	// ---- Phase 2: skewed fleet load ------------------------------------
	type tracked struct {
		spec jobSpec
		node int // submission target
		id   string
	}
	specFor := func(i int) jobSpec {
		if i%2 == 0 {
			return jobSpec{Pairs: 2 * *pairs, Seed: hotSeed}
		}
		return jobSpec{Pairs: *pairs, Seed: coldSeed + uint64(i)}
	}
	var load []tracked
	for i := 0; i < *jobsN; i++ {
		tr := tracked{spec: specFor(i), node: i % 3}
		if tr.id, err = submit(fleet[tr.node].base, tr.spec); err != nil {
			fatal(fmt.Errorf("phase 2 submit %d via n%d: %w", i, tr.node+1, err))
		}
		load = append(load, tr)
	}
	logf("phase 2: %d jobs sprayed (half pinned to seed %d)", len(load), hotSeed)

	results := map[string][]byte{}    // pair key -> raw record bytes
	specKeys := map[uint64][]string{} // seed -> sorted pair keys
	for _, tr := range load {
		st, err := waitTerminal(fleet[tr.node].base, tr.id)
		if err != nil {
			fatal(fmt.Errorf("phase 2 job %s on n%d: %w", tr.id, tr.node+1, err))
		}
		if st.State != "done" {
			fatal(fmt.Errorf("phase 2 job %s (seed %d): state %q, error %q", tr.id, tr.spec.Seed, st.State, st.Error))
		}
		if err := recordResults(fleet[tr.node].base, st, tr.spec.Seed, results, specKeys); err != nil {
			fatal(fmt.Errorf("phase 2: %w", err))
		}
		// Remote lookup check: the same key fetched from a node the job
		// was not submitted to must return the identical bytes.
		other := fleet[(tr.node+1)%3]
		for _, r := range st.Results {
			if r.Key == "" || r.Failed {
				continue
			}
			data, err := fetchResult(other.base, r.Key)
			if err != nil {
				fatal(fmt.Errorf("phase 2: key %s unreachable via peer: %w", r.Key, err))
			}
			if !bytes.Equal(data, results[r.Key]) {
				fatal(fmt.Errorf("phase 2: key %s differs between nodes", r.Key))
			}
		}
	}
	forwards, steals, remoteHits := fleetCounters(fleet)
	logf("phase 2: forwards=%.0f steals=%.0f remote_hits=%.0f over %d keys",
		forwards, steals, remoteHits, len(results))
	if forwards < 1 {
		fatal(fmt.Errorf("phase 2: cluster.forwards = 0 — the ring never routed work between nodes"))
	}

	// ---- Phase 3: kill one node mid-load -------------------------------
	nB := 6
	var batchB []tracked
	for i := 0; i < nB; i++ {
		tr := tracked{spec: jobSpec{Pairs: *pairs, Seed: bSeed + uint64(i)}, node: i % 3}
		if tr.id, err = submit(fleet[tr.node].base, tr.spec); err != nil {
			fatal(fmt.Errorf("phase 3 submit %d via n%d: %w", i, tr.node+1, err))
		}
		batchB = append(batchB, tr)
	}
	logf("phase 3: SIGKILL n3 with %d jobs in flight", nB)
	fleet[2].kill()

	for _, tr := range batchB {
		st, err := waitOrResubmit(fleet, tr.node, tr.id, tr.spec)
		if err != nil {
			fatal(fmt.Errorf("phase 3 job seed %d: %w", tr.spec.Seed, err))
		}
		if err := recordResults(st.base, st.status, tr.spec.Seed, results, specKeys); err != nil {
			fatal(fmt.Errorf("phase 3: %w", err))
		}
	}

	// Survivors must detect the death and rebuild the ring.
	for i := 0; i < 2; i++ {
		for {
			rebuilds, err := metricValue(fleet[i].base, "cluster.ring_rebuilds")
			if err == nil && rebuilds >= 1 {
				break
			}
			if time.Now().After(deadline) {
				fatal(fmt.Errorf("phase 3: n%d never rebuilt the ring after n3 died", i+1))
			}
			time.Sleep(50 * time.Millisecond)
		}
	}
	logf("phase 3: both survivors rebuilt the ring around n3")

	// Post-death probe: both survivors still accept and finish work.
	for i := 0; i < 2; i++ {
		spec := jobSpec{Pairs: *pairs, Seed: postSeed + uint64(i)}
		id, err := submit(fleet[i].base, spec)
		if err != nil {
			fatal(fmt.Errorf("phase 3 post-death submit via n%d: %w", i+1, err))
		}
		st, err := waitTerminal(fleet[i].base, id)
		if err != nil || st.State != "done" {
			fatal(fmt.Errorf("phase 3 post-death job on n%d: state %q, err %v", i+1, st.State, err))
		}
		if err := recordResults(fleet[i].base, st, spec.Seed, results, specKeys); err != nil {
			fatal(fmt.Errorf("phase 3: %w", err))
		}
	}

	// Survivors drain cleanly: SIGTERM, exit 0.
	for i := 0; i < 2; i++ {
		if err := fleet[i].stop(); err != nil {
			fatal(fmt.Errorf("phase 3: n%d unclean drain: %w", i+1, err))
		}
	}
	logf("phase 3: survivors drained cleanly")

	// ---- Phase 4: single-node oracle -----------------------------------
	logf("phase 4: single-node oracle, same specs, no cluster layer")
	oracleAddrs, err := freeAddrs(1)
	if err != nil {
		fatal(err)
	}
	oracle, err := startServer(dir, "oracle", oracleAddrs[0])
	if err != nil {
		fatal(err)
	}
	defer oracle.kill()

	seeds := make([]uint64, 0, len(specKeys))
	for s := range specKeys {
		seeds = append(seeds, s)
	}
	sort.Slice(seeds, func(i, j int) bool { return seeds[i] < seeds[j] })
	checked := 0
	for _, seed := range seeds {
		spec := jobSpec{Pairs: *pairs, Seed: seed}
		if seed == hotSeed {
			spec.Pairs = 2 * *pairs
		}
		id, err := submit(oracle.base, spec)
		if err != nil {
			fatal(fmt.Errorf("phase 4 submit seed %d: %w", seed, err))
		}
		st, err := waitTerminal(oracle.base, id)
		if err != nil || st.State != "done" {
			fatal(fmt.Errorf("phase 4 job seed %d: state %q, err %v", seed, st.State, err))
		}
		var keys []string
		for _, r := range st.Results {
			if r.Key == "" {
				continue
			}
			keys = append(keys, r.Key)
			want, ok := results[r.Key]
			if !ok {
				fatal(fmt.Errorf("phase 4: oracle produced key %s the fleet never did (seed %d)", r.Key, seed))
			}
			data, err := fetchResult(oracle.base, r.Key)
			if err != nil {
				fatal(fmt.Errorf("phase 4 result %s: %w", r.Key, err))
			}
			if !bytes.Equal(data, want) {
				fatal(fmt.Errorf("phase 4: result %s differs between fleet and single node", r.Key))
			}
			checked++
		}
		sort.Strings(keys)
		if want := specKeys[seed]; !equalStrings(keys, want) {
			fatal(fmt.Errorf("phase 4: seed %d produced keys %v, fleet had %v", seed, keys, want))
		}
	}
	if err := oracle.stop(); err != nil {
		fatal(fmt.Errorf("phase 4 graceful stop: %w", err))
	}

	fmt.Printf("fleet-smoke PASS: %d jobs across 3 nodes, %.0f forwards, %.0f steals, 1 node killed, %d pair results byte-identical to single-node oracle\n",
		len(load)+nB+2, forwards, steals, checked)
}

// waitResult pairs a terminal status with the base URL it came from,
// so result bytes are fetched from a node that actually answers.
type waitResult struct {
	base   string
	status jobStatus
}

// waitOrResubmit polls a job on its submission node; if the node (or
// the owner it proxies to) is dead, the spec is resubmitted to the
// first survivor — the client-side retry story for a fleet without
// job-state replication. Content addressing makes the retry safe:
// recomputed pairs land on the same keys with the same bytes.
func waitOrResubmit(fleet []*proc, node int, id string, spec jobSpec) (waitResult, error) {
	base := fleet[node].base
	if node != 2 { // submission node survives; owner may not
		st, err := waitTerminalTolerant(base, id)
		if err == nil && st.State == "done" {
			return waitResult{base, st}, nil
		}
	}
	base = fleet[0].base
	id2, err := submit(base, spec)
	if err != nil {
		return waitResult{}, fmt.Errorf("resubmit: %w", err)
	}
	st, err := waitTerminal(base, id2)
	if err != nil {
		return waitResult{}, err
	}
	if st.State != "done" {
		return waitResult{}, fmt.Errorf("resubmitted job %s: state %q, error %q", id2, st.State, st.Error)
	}
	return waitResult{base, st}, nil
}

// recordResults files every successful pair of st into the shared
// byte and key-set maps, requiring cross-job byte agreement on
// shared keys.
func recordResults(base string, st jobStatus, seed uint64, results map[string][]byte, specKeys map[uint64][]string) error {
	var keys []string
	for _, r := range st.Results {
		if r.Failed || r.Key == "" {
			continue
		}
		data, err := fetchResult(base, r.Key)
		if err != nil {
			return fmt.Errorf("result %s: %w", r.Key, err)
		}
		if prev, ok := results[r.Key]; ok && !bytes.Equal(prev, data) {
			return fmt.Errorf("key %s changed bytes between jobs", r.Key)
		}
		results[r.Key] = data
		keys = append(keys, r.Key)
	}
	sort.Strings(keys)
	if prev, ok := specKeys[seed]; ok {
		if !equalStrings(prev, keys) {
			return fmt.Errorf("seed %d produced keys %v, previously %v", seed, keys, prev)
		}
	} else {
		specKeys[seed] = keys
	}
	return nil
}

// fleetCounters sums the cross-node counters over reachable nodes.
func fleetCounters(fleet []*proc) (forwards, steals, remoteHits float64) {
	for _, p := range fleet {
		if f, err := metricValue(p.base, "cluster.forwards"); err == nil {
			forwards += f
		}
		if s, err := metricValue(p.base, "cluster.steals"); err == nil {
			steals += s
		}
		if h, err := metricValue(p.base, "cluster.remote_hits"); err == nil {
			remoteHits += h
		}
	}
	return
}

// freeAddrs reserves n distinct loopback ports by binding and
// releasing them. The tiny release-to-reuse race is acceptable in a
// smoke harness; peers must know each other's ports before any node
// starts, so ephemeral :0 binding cannot work here.
func freeAddrs(n int) ([]string, error) {
	addrs := make([]string, 0, n)
	listeners := make([]net.Listener, 0, n)
	defer func() {
		for _, l := range listeners {
			l.Close()
		}
	}()
	for i := 0; i < n; i++ {
		l, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return nil, err
		}
		listeners = append(listeners, l)
		addrs = append(addrs, l.Addr().String())
	}
	return addrs, nil
}

// ---- server process management (mirrors cmd/ampchaos) -------------------

type proc struct {
	cmd    *exec.Cmd
	base   string
	exited chan struct{}
	werr   error
}

// startServer launches ampserve on the given fixed address with
// small, fast simulation parameters and waits until it answers
// /healthz. The simulation parameters must match across every node
// and the oracle: content addresses hash them.
func startServer(dir, name, addr string, extra ...string) (*proc, error) {
	args := append([]string{
		"-addr", addr,
		"-journaldir", filepath.Join(dir, name+"-journal"),
		"-cachedir", filepath.Join(dir, name+"-cache"),
		"-flushevery", "100ms",
		"-limit", "40000", "-contextswitch", "10000",
		"-profilelimit", "30000", "-fidelity", "interval",
	}, extra...)
	cmd := exec.Command(*ampserve, args...)
	if *verbose {
		cmd.Stdout, cmd.Stderr = os.Stderr, os.Stderr
	} else {
		cmd.Stdout, cmd.Stderr = io.Discard, io.Discard
	}
	if err := cmd.Start(); err != nil {
		return nil, fmt.Errorf("starting %s: %w", name, err)
	}
	p := &proc{cmd: cmd, base: "http://" + addr, exited: make(chan struct{})}
	procs = append(procs, p)
	go func() {
		p.werr = cmd.Wait()
		close(p.exited)
	}()
	for {
		if time.Now().After(deadline) {
			p.kill()
			return nil, fmt.Errorf("%s: server never became healthy", name)
		}
		select {
		case <-p.exited:
			return nil, fmt.Errorf("%s: server exited before becoming healthy: %v", name, p.werr)
		default:
		}
		if resp, err := http.Get(p.base + "/healthz"); err == nil {
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return p, nil
			}
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// kill is the chaos primitive: SIGKILL, no drain, no flush. Idempotent
// so it doubles as cleanup.
func (p *proc) kill() {
	select {
	case <-p.exited:
		return
	default:
	}
	_ = p.cmd.Process.Kill()
	<-p.exited
}

// stop drains gracefully via SIGTERM and requires a clean exit.
func (p *proc) stop() error {
	if err := p.cmd.Process.Signal(syscall.SIGTERM); err != nil {
		return err
	}
	select {
	case <-p.exited:
	case <-time.After(time.Until(deadline)):
		p.kill()
		return fmt.Errorf("server did not drain before the harness deadline")
	}
	if p.werr != nil {
		return fmt.Errorf("unclean exit: %w", p.werr)
	}
	return nil
}

// ---- HTTP client helpers ------------------------------------------------

type jobSpec struct {
	Pairs int    `json:"pairs"`
	Seed  uint64 `json:"seed,omitempty"`
}

type pairResult struct {
	Key    string `json:"key"`
	Failed bool   `json:"failed,omitempty"`
}

type jobStatus struct {
	ID      string       `json:"id"`
	State   string       `json:"state"`
	Error   string       `json:"error,omitempty"`
	Results []pairResult `json:"results,omitempty"`
}

func terminalState(s string) bool { return s == "done" || s == "failed" || s == "canceled" }

// submit POSTs one job, retrying overload pushback (429/503) with the
// server's Retry-After hint, and returns the acknowledged id.
func submit(base string, spec jobSpec) (string, error) {
	body, err := json.Marshal(spec)
	if err != nil {
		return "", err
	}
	for {
		resp, err := http.Post(base+"/v1/jobs", "application/json", bytes.NewReader(body))
		if err != nil {
			return "", err
		}
		if resp.StatusCode == http.StatusTooManyRequests ||
			resp.StatusCode == http.StatusServiceUnavailable {
			resp.Body.Close()
			if time.Now().After(deadline) {
				return "", fmt.Errorf("submit timed out on backpressure")
			}
			time.Sleep(retryAfter(resp))
			continue
		}
		if resp.StatusCode != http.StatusAccepted {
			resp.Body.Close()
			return "", fmt.Errorf("submit: HTTP %d", resp.StatusCode)
		}
		var st jobStatus
		err = json.NewDecoder(resp.Body).Decode(&st)
		resp.Body.Close()
		if err != nil {
			return "", err
		}
		return st.ID, nil
	}
}

func retryAfter(resp *http.Response) time.Duration {
	if secs, err := strconv.Atoi(resp.Header.Get("Retry-After")); err == nil && secs > 0 && secs <= 5 {
		return time.Duration(secs) * time.Second
	}
	return 50 * time.Millisecond
}

// waitTerminal polls a job until it reaches a terminal state.
func waitTerminal(base, id string) (jobStatus, error) {
	for {
		st, err := pollOnce(base, id)
		if err != nil {
			return jobStatus{}, err
		}
		if terminalState(st.State) {
			return st, nil
		}
		if time.Now().After(deadline) {
			return st, fmt.Errorf("job %s still %s at harness deadline", id, st.State)
		}
		time.Sleep(25 * time.Millisecond)
	}
}

// waitTerminalTolerant polls like waitTerminal but treats transport
// and proxy errors as a verdict ("this job is stranded on a dead
// node") after a few consecutive failures, instead of fatal.
func waitTerminalTolerant(base, id string) (jobStatus, error) {
	errs := 0
	for {
		st, err := pollOnce(base, id)
		if err != nil {
			errs++
			if errs >= 5 {
				return jobStatus{}, fmt.Errorf("job %s unreachable: %w", id, err)
			}
			time.Sleep(100 * time.Millisecond)
			continue
		}
		errs = 0
		if terminalState(st.State) {
			return st, nil
		}
		if time.Now().After(deadline) {
			return st, fmt.Errorf("job %s still %s at harness deadline", id, st.State)
		}
		time.Sleep(25 * time.Millisecond)
	}
}

func pollOnce(base, id string) (jobStatus, error) {
	resp, err := http.Get(base + "/v1/jobs/" + id)
	if err != nil {
		return jobStatus{}, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		return jobStatus{}, fmt.Errorf("status: HTTP %d: %s", resp.StatusCode, bytes.TrimSpace(msg))
	}
	var st jobStatus
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		return jobStatus{}, err
	}
	return st, nil
}

// fetchResult reads one content-addressed pair record's raw bytes.
func fetchResult(base, key string) ([]byte, error) {
	resp, err := http.Get(base + "/v1/results/" + key)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("result %s: HTTP %d", key, resp.StatusCode)
	}
	return io.ReadAll(resp.Body)
}

// metricValue reads one counter/gauge from /metrics.
func metricValue(base, name string) (float64, error) {
	resp, err := http.Get(base + "/metrics")
	if err != nil {
		return 0, err
	}
	defer resp.Body.Close()
	var snap struct {
		Metrics []struct {
			Name  string  `json:"name"`
			Value float64 `json:"value"`
		} `json:"metrics"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		return 0, err
	}
	for _, m := range snap.Metrics {
		if m.Name == name {
			return m.Value, nil
		}
	}
	return 0, nil // absent = never incremented
}

func equalStrings(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func logf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "ampfleet: "+format+"\n", args...)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "ampfleet: FAIL:", err)
	for _, p := range procs {
		p.kill()
	}
	os.Exit(1)
}
