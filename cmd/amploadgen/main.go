// Command amploadgen is a closed-loop load generator for ampserve: it
// keeps -concurrency sweep jobs in flight against a running daemon,
// cycling over a small pool of distinct specs so repeat submissions
// exercise the content-addressed cache, and reports job latency
// percentiles, throughput, and the cache-hit ratio.
//
// Usage:
//
//	amploadgen -addr 127.0.0.1:8080 [-jobs 16] [-concurrency 4] ...
//
// It doubles as the service's end-to-end smoke test (`make
// serve-smoke`): the exit status is non-zero when no job completes.
//
// Overload protection is backpressure, not failure: a 429 (load shed)
// or 503 (circuit breaker open) is retried after the server's
// Retry-After hint. -report-shed appends a summary of how often the
// server pushed back and how long the loop honored its hints — the
// observable half of the admission-control contract.
//
// Fleet mode: -fleet takes a comma-separated node list and sprays
// submissions round-robin across it, so every node sees every spec
// and the cluster layer's forwarding/singleflight does the
// deduplication. -skew pins a fraction of jobs to the hottest spec to
// provoke imbalance (and therefore work stealing). The report gains a
// per-node balance table — jobs completed, pairs simulated locally,
// forwards, steals granted/run — plus the fleet-wide cross-node
// cache-hit rate, all scraped from each node's /metrics endpoint.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"net/http"
	"os"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

type jobSpec struct {
	Pairs    int    `json:"pairs"`
	Seed     uint64 `json:"seed,omitempty"`
	Fidelity string `json:"fidelity,omitempty"`
	Priority int    `json:"priority,omitempty"`
}

type jobStatus struct {
	ID        string `json:"id"`
	State     string `json:"state"`
	Completed int    `json:"completed"`
	Failed    int    `json:"failed"`
	CacheHits int    `json:"cache_hits"`
	Error     string `json:"error,omitempty"`
}

// shedStats counts the server's overload pushback.
type shedStats struct {
	shed     atomic.Int64 // HTTP 429: cost-based load shedding
	breaker  atomic.Int64 // HTTP 503: circuit breaker open
	waitNano atomic.Int64 // total backoff honored before resubmitting
}

func (s *shedStats) rejections() int64 { return s.shed.Load() + s.breaker.Load() }

func main() {
	var (
		addr        = flag.String("addr", "127.0.0.1:8080", "ampserve address (host:port)")
		fleetFlag   = flag.String("fleet", "", "fleet mode: comma-separated node list to spray round-robin (overrides -addr)")
		skew        = flag.Float64("skew", 0, "fleet mode: fraction of jobs pinned to the first seed (hot key, 0..1)")
		jobs        = flag.Int("jobs", 16, "total jobs to run (0 = until -duration elapses)")
		duration    = flag.Duration("duration", 0, "run for this long instead of a fixed job count")
		concurrency = flag.Int("concurrency", 4, "closed-loop workers (jobs in flight)")
		pairs       = flag.Int("pairs", 2, "pairs per job")
		distinct    = flag.Int("distinct", 4, "distinct specs to cycle through (smaller = more cache hits)")
		seed        = flag.Uint64("seed", 1000, "first spec seed; spec i uses seed+i%distinct")
		fidelity    = flag.String("fidelity", "", "per-job fidelity override (inherit server default when empty)")
		timeout     = flag.Duration("timeout", 2*time.Minute, "per-job completion timeout")
		reportShed  = flag.Bool("report-shed", false, "report load-shed/breaker rejections and honored backoff")
		verbose     = flag.Bool("v", false, "log each job outcome to stderr")
	)
	flag.Parse()
	if *jobs <= 0 && *duration <= 0 {
		fatal(fmt.Errorf("need -jobs > 0 or -duration > 0"))
	}
	if *concurrency <= 0 || *pairs <= 0 || *distinct <= 0 {
		fatal(fmt.Errorf("-concurrency, -pairs and -distinct must be positive"))
	}
	if *skew < 0 || *skew > 1 {
		fatal(fmt.Errorf("-skew must be in [0, 1]"))
	}

	nodes := fleetNodes(*fleetFlag, *addr)
	bases := make([]string, len(nodes))
	for i, n := range nodes {
		bases[i] = "http://" + n
	}
	var (
		submitted atomic.Int64
		completed atomic.Int64
		failed    atomic.Int64
		pairsDone atomic.Int64
		cacheHits atomic.Int64
		shed      shedStats

		latMu     sync.Mutex
		latencies []time.Duration
	)
	deadline := time.Now().Add(*duration)
	start := time.Now()

	// next picks the i-th job's spec seed and target node. Seeds cycle
	// over the distinct pool; -skew pins that fraction of jobs to the
	// first (hottest) seed instead. Targets rotate round-robin through
	// the fleet, so in fleet mode every node receives every hot key
	// and cross-node routing has to deduplicate the work.
	next := func() (uint64, string, bool) {
		n := submitted.Add(1)
		if *jobs > 0 && n > int64(*jobs) {
			return 0, "", false
		}
		if *jobs <= 0 && !time.Now().Before(deadline) {
			return 0, "", false
		}
		jobSeed := *seed + uint64((n-1)%int64(*distinct))
		// Stride the hot jobs through the sequence (7919 is coprime to
		// 100, so the residues cycle uniformly) instead of front-loading
		// them: a skewed run should interleave hot and cold submissions.
		if ((n-1)*7919)%100 < int64(*skew*100) {
			jobSeed = *seed
		}
		return jobSeed, bases[(n-1)%int64(len(bases))], true
	}

	var wg sync.WaitGroup
	for w := 0; w < *concurrency; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				jobSeed, base, ok := next()
				if !ok {
					return
				}
				t0 := time.Now()
				st, err := runJob(base, jobSpec{
					Pairs: *pairs, Seed: jobSeed, Fidelity: *fidelity,
				}, *timeout, &shed)
				if err != nil {
					failed.Add(1)
					fmt.Fprintln(os.Stderr, "amploadgen:", err)
					continue
				}
				lat := time.Since(t0)
				if st.State == "done" {
					completed.Add(1)
					pairsDone.Add(int64(st.Completed))
					cacheHits.Add(int64(st.CacheHits))
					latMu.Lock()
					latencies = append(latencies, lat)
					latMu.Unlock()
				} else {
					failed.Add(1)
				}
				if *verbose {
					fmt.Fprintf(os.Stderr, "amploadgen: job %s %s in %v (%d pairs, %d cached)\n",
						st.ID, st.State, lat.Round(time.Millisecond), st.Completed, st.CacheHits)
				}
			}
		}()
	}
	wg.Wait()
	elapsed := time.Since(start)

	done := completed.Load()
	fmt.Printf("jobs:       %d completed, %d failed, %d rejections retried\n",
		done, failed.Load(), shed.rejections())
	fmt.Printf("pairs:      %d served, %d from cache (%.0f%% hit ratio)\n",
		pairsDone.Load(), cacheHits.Load(), 100*ratio(cacheHits.Load(), pairsDone.Load()))
	fmt.Printf("throughput: %.2f jobs/s over %v at concurrency %d\n",
		float64(done)/elapsed.Seconds(), elapsed.Round(time.Millisecond), *concurrency)
	if len(latencies) > 0 {
		sort.Slice(latencies, func(i, j int) bool { return latencies[i] < latencies[j] })
		fmt.Printf("latency:    p50 %v  p90 %v  p99 %v\n",
			pct(latencies, 50), pct(latencies, 90), pct(latencies, 99))
	}
	if *reportShed {
		fmt.Printf("shed:       %d load-shed (429), %d breaker-refused (503), %v backoff honored\n",
			shed.shed.Load(), shed.breaker.Load(),
			time.Duration(shed.waitNano.Load()).Round(time.Millisecond))
	}
	if len(nodes) > 1 {
		fleetReport(nodes, bases)
	}
	if done == 0 {
		fatal(fmt.Errorf("no job completed"))
	}
}

// fleetNodes resolves the target node list: the -fleet spray list
// when given, else the single -addr.
func fleetNodes(fleet, addr string) []string {
	if fleet == "" {
		return []string{addr}
	}
	var out []string
	for _, n := range strings.Split(fleet, ",") {
		if n = strings.TrimSpace(n); n != "" {
			out = append(out, n)
		}
	}
	if len(out) == 0 {
		fatal(fmt.Errorf("-fleet has no usable addresses"))
	}
	return out
}

// fleetReport scrapes each node's /metrics and prints the per-node
// balance table: how work landed (jobs completed, pairs simulated
// locally = cache misses), how it moved (forwards, steals), and the
// fleet-wide cross-node cache-hit rate — remote lookups that found
// the pair already computed elsewhere.
func fleetReport(nodes, bases []string) {
	fmt.Printf("fleet:      %-21s %8s %8s %8s %8s %8s %8s\n",
		"node", "jobs", "simmed", "fwd", "stolen", "granted", "rebuilds")
	var remoteHits, remoteMisses float64
	for i, base := range bases {
		m, err := scrapeMetrics(base)
		if err != nil {
			fmt.Printf("fleet:      %-21s unreachable: %v\n", nodes[i], err)
			continue
		}
		fmt.Printf("fleet:      %-21s %8.0f %8.0f %8.0f %8.0f %8.0f %8.0f\n",
			nodes[i], m["server.jobs_completed"], m["server.cache_misses"],
			m["cluster.forwards"], m["cluster.steals"],
			m["cluster.steals_granted"], m["cluster.ring_rebuilds"])
		remoteHits += m["cluster.remote_hits"]
		remoteMisses += m["cluster.remote_misses"]
	}
	fmt.Printf("fleet:      cross-node cache-hit rate %.0f%% (%.0f/%.0f remote lookups)\n",
		100*ratio(int64(remoteHits), int64(remoteHits+remoteMisses)),
		remoteHits, remoteHits+remoteMisses)
}

// scrapeMetrics reads one node's /metrics snapshot into name → value.
func scrapeMetrics(base string) (map[string]float64, error) {
	resp, err := http.Get(base + "/metrics")
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("metrics: HTTP %d", resp.StatusCode)
	}
	var snap struct {
		Metrics []struct {
			Name  string  `json:"name"`
			Value float64 `json:"value"`
		} `json:"metrics"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		return nil, err
	}
	out := make(map[string]float64, len(snap.Metrics))
	for _, m := range snap.Metrics {
		out[m.Name] = m.Value
	}
	return out, nil
}

// retryAfter extracts the server's backoff hint, clamped to keep a
// misconfigured server from stalling the loop; fallback is the old
// fixed 50ms poll.
func retryAfter(resp *http.Response, fallback, max time.Duration) time.Duration {
	secs, err := strconv.Atoi(resp.Header.Get("Retry-After"))
	if err != nil || secs <= 0 {
		return fallback
	}
	d := time.Duration(secs) * time.Second
	if d > max {
		return max
	}
	return d
}

// runJob submits one job and polls it to a terminal state. A 429
// (shed) or 503 (breaker) is backpressure, not failure: the closed
// loop honors Retry-After and resubmits.
func runJob(base string, spec jobSpec, timeout time.Duration, shed *shedStats) (jobStatus, error) {
	body, err := json.Marshal(spec)
	if err != nil {
		return jobStatus{}, err
	}
	deadline := time.Now().Add(timeout)
	var st jobStatus
	for {
		resp, err := http.Post(base+"/v1/jobs", "application/json", bytes.NewReader(body))
		if err != nil {
			return jobStatus{}, fmt.Errorf("submitting job: %w", err)
		}
		if resp.StatusCode == http.StatusTooManyRequests ||
			resp.StatusCode == http.StatusServiceUnavailable {
			wait := retryAfter(resp, 50*time.Millisecond, 5*time.Second)
			resp.Body.Close()
			if resp.StatusCode == http.StatusTooManyRequests {
				shed.shed.Add(1)
			} else {
				shed.breaker.Add(1)
			}
			if !time.Now().Before(deadline) {
				return jobStatus{}, fmt.Errorf("submit timed out on backpressure")
			}
			shed.waitNano.Add(int64(wait))
			time.Sleep(wait)
			continue
		}
		if resp.StatusCode != http.StatusAccepted {
			resp.Body.Close()
			return jobStatus{}, fmt.Errorf("submit: HTTP %d", resp.StatusCode)
		}
		err = json.NewDecoder(resp.Body).Decode(&st)
		resp.Body.Close()
		if err != nil {
			return jobStatus{}, fmt.Errorf("decoding submit response: %w", err)
		}
		break
	}

	for time.Now().Before(deadline) {
		resp, err := http.Get(base + "/v1/jobs/" + st.ID)
		if err != nil {
			return jobStatus{}, fmt.Errorf("polling job %s: %w", st.ID, err)
		}
		err = json.NewDecoder(resp.Body).Decode(&st)
		resp.Body.Close()
		if err != nil {
			return jobStatus{}, fmt.Errorf("decoding job %s status: %w", st.ID, err)
		}
		switch st.State {
		case "done", "failed", "canceled":
			return st, nil
		}
		time.Sleep(25 * time.Millisecond)
	}
	return jobStatus{}, fmt.Errorf("job %s did not finish within %v", st.ID, timeout)
}

// pct returns the p-th percentile of sorted latencies.
func pct(sorted []time.Duration, p int) time.Duration {
	idx := (len(sorted)*p + 99) / 100
	if idx > 0 {
		idx--
	}
	return sorted[idx].Round(time.Millisecond)
}

func ratio(num, den int64) float64 {
	if den == 0 {
		return 0
	}
	return float64(num) / float64(den)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "amploadgen:", err)
	os.Exit(1)
}
