// Command amploadgen is a closed-loop load generator for ampserve: it
// keeps -concurrency sweep jobs in flight against a running daemon,
// cycling over a small pool of distinct specs so repeat submissions
// exercise the content-addressed cache, and reports job latency
// percentiles, throughput, and the cache-hit ratio.
//
// Usage:
//
//	amploadgen -addr 127.0.0.1:8080 [-jobs 16] [-concurrency 4] ...
//
// It doubles as the service's end-to-end smoke test (`make
// serve-smoke`): the exit status is non-zero when no job completes.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"net/http"
	"os"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

type jobSpec struct {
	Pairs    int    `json:"pairs"`
	Seed     uint64 `json:"seed,omitempty"`
	Fidelity string `json:"fidelity,omitempty"`
	Priority int    `json:"priority,omitempty"`
}

type jobStatus struct {
	ID        string `json:"id"`
	State     string `json:"state"`
	Completed int    `json:"completed"`
	Failed    int    `json:"failed"`
	CacheHits int    `json:"cache_hits"`
	Error     string `json:"error,omitempty"`
}

func main() {
	var (
		addr        = flag.String("addr", "127.0.0.1:8080", "ampserve address (host:port)")
		jobs        = flag.Int("jobs", 16, "total jobs to run (0 = until -duration elapses)")
		duration    = flag.Duration("duration", 0, "run for this long instead of a fixed job count")
		concurrency = flag.Int("concurrency", 4, "closed-loop workers (jobs in flight)")
		pairs       = flag.Int("pairs", 2, "pairs per job")
		distinct    = flag.Int("distinct", 4, "distinct specs to cycle through (smaller = more cache hits)")
		seed        = flag.Uint64("seed", 1000, "first spec seed; spec i uses seed+i%distinct")
		fidelity    = flag.String("fidelity", "", "per-job fidelity override (inherit server default when empty)")
		timeout     = flag.Duration("timeout", 2*time.Minute, "per-job completion timeout")
		verbose     = flag.Bool("v", false, "log each job outcome to stderr")
	)
	flag.Parse()
	if *jobs <= 0 && *duration <= 0 {
		fatal(fmt.Errorf("need -jobs > 0 or -duration > 0"))
	}
	if *concurrency <= 0 || *pairs <= 0 || *distinct <= 0 {
		fatal(fmt.Errorf("-concurrency, -pairs and -distinct must be positive"))
	}

	base := "http://" + *addr
	var (
		submitted atomic.Int64
		completed atomic.Int64
		failed    atomic.Int64
		rejected  atomic.Int64
		pairsDone atomic.Int64
		cacheHits atomic.Int64

		latMu     sync.Mutex
		latencies []time.Duration
	)
	deadline := time.Now().Add(*duration)
	start := time.Now()

	next := func() (uint64, bool) {
		n := submitted.Add(1)
		if *jobs > 0 && n > int64(*jobs) {
			return 0, false
		}
		if *jobs <= 0 && !time.Now().Before(deadline) {
			return 0, false
		}
		return *seed + uint64((n-1)%int64(*distinct)), true
	}

	var wg sync.WaitGroup
	for w := 0; w < *concurrency; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				jobSeed, ok := next()
				if !ok {
					return
				}
				t0 := time.Now()
				st, err := runJob(base, jobSpec{
					Pairs: *pairs, Seed: jobSeed, Fidelity: *fidelity,
				}, *timeout, &rejected)
				if err != nil {
					failed.Add(1)
					fmt.Fprintln(os.Stderr, "amploadgen:", err)
					continue
				}
				lat := time.Since(t0)
				if st.State == "done" {
					completed.Add(1)
					pairsDone.Add(int64(st.Completed))
					cacheHits.Add(int64(st.CacheHits))
					latMu.Lock()
					latencies = append(latencies, lat)
					latMu.Unlock()
				} else {
					failed.Add(1)
				}
				if *verbose {
					fmt.Fprintf(os.Stderr, "amploadgen: job %s %s in %v (%d pairs, %d cached)\n",
						st.ID, st.State, lat.Round(time.Millisecond), st.Completed, st.CacheHits)
				}
			}
		}()
	}
	wg.Wait()
	elapsed := time.Since(start)

	done := completed.Load()
	fmt.Printf("jobs:       %d completed, %d failed, %d rejections retried\n",
		done, failed.Load(), rejected.Load())
	fmt.Printf("pairs:      %d served, %d from cache (%.0f%% hit ratio)\n",
		pairsDone.Load(), cacheHits.Load(), 100*ratio(cacheHits.Load(), pairsDone.Load()))
	fmt.Printf("throughput: %.2f jobs/s over %v at concurrency %d\n",
		float64(done)/elapsed.Seconds(), elapsed.Round(time.Millisecond), *concurrency)
	if len(latencies) > 0 {
		sort.Slice(latencies, func(i, j int) bool { return latencies[i] < latencies[j] })
		fmt.Printf("latency:    p50 %v  p90 %v  p99 %v\n",
			pct(latencies, 50), pct(latencies, 90), pct(latencies, 99))
	}
	if done == 0 {
		fatal(fmt.Errorf("no job completed"))
	}
}

// runJob submits one job and polls it to a terminal state. A full
// queue (429) is backpressure, not failure: the closed loop waits and
// resubmits.
func runJob(base string, spec jobSpec, timeout time.Duration, rejected *atomic.Int64) (jobStatus, error) {
	body, err := json.Marshal(spec)
	if err != nil {
		return jobStatus{}, err
	}
	deadline := time.Now().Add(timeout)
	var st jobStatus
	for {
		resp, err := http.Post(base+"/v1/jobs", "application/json", bytes.NewReader(body))
		if err != nil {
			return jobStatus{}, fmt.Errorf("submitting job: %w", err)
		}
		if resp.StatusCode == http.StatusTooManyRequests {
			resp.Body.Close()
			rejected.Add(1)
			if !time.Now().Before(deadline) {
				return jobStatus{}, fmt.Errorf("submit timed out on backpressure")
			}
			time.Sleep(50 * time.Millisecond)
			continue
		}
		if resp.StatusCode != http.StatusAccepted {
			resp.Body.Close()
			return jobStatus{}, fmt.Errorf("submit: HTTP %d", resp.StatusCode)
		}
		err = json.NewDecoder(resp.Body).Decode(&st)
		resp.Body.Close()
		if err != nil {
			return jobStatus{}, fmt.Errorf("decoding submit response: %w", err)
		}
		break
	}

	for time.Now().Before(deadline) {
		resp, err := http.Get(base + "/v1/jobs/" + st.ID)
		if err != nil {
			return jobStatus{}, fmt.Errorf("polling job %s: %w", st.ID, err)
		}
		err = json.NewDecoder(resp.Body).Decode(&st)
		resp.Body.Close()
		if err != nil {
			return jobStatus{}, fmt.Errorf("decoding job %s status: %w", st.ID, err)
		}
		switch st.State {
		case "done", "failed", "canceled":
			return st, nil
		}
		time.Sleep(25 * time.Millisecond)
	}
	return jobStatus{}, fmt.Errorf("job %s did not finish within %v", st.ID, timeout)
}

// pct returns the p-th percentile of sorted latencies.
func pct(sorted []time.Duration, p int) time.Duration {
	idx := (len(sorted)*p + 99) / 100
	if idx > 0 {
		idx--
	}
	return sorted[idx].Round(time.Millisecond)
}

func ratio(num, den int64) float64 {
	if den == 0 {
		return 0
	}
	return float64(num) / float64(den)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "amploadgen:", err)
	os.Exit(1)
}
