// Command ampvet runs ampsched's custom static-analysis suite (see
// internal/analysis) over the repository: determinism, hotpathalloc,
// deprecatedapi, obserrcheck, lockcheck, unitcheck and ctxcheck.
//
// Usage:
//
//	ampvet [flags] [packages]
//
// Packages default to ./... . Findings print one per line as
// file:line:col: [check] message, or as a JSON array with -json (each
// entry carries file/line/column/check/message/pkg). The exit status
// is 1 when there are findings, 2 on a loading or internal error, 0 on
// a clean tree.
//
// Each check can be disabled individually (-determinism=false) or the
// suite narrowed to an explicit list (-checks determinism,obserrcheck).
//
// Per-package verdicts are cached on disk keyed by package content
// (see internal/analysis FindingsCache), so a warm run costs one
// `go list` plus hashing. -cachedir overrides the location,
// -nocache disables it entirely.
//
// A findings baseline supports gradual adoption: -writebaseline
// records the current findings into -baseline's file, and later runs
// with -baseline fail only on findings not in the file.
package main

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strings"

	"ampsched/internal/analysis"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr *os.File) int {
	fs := flag.NewFlagSet("ampvet", flag.ContinueOnError)
	fs.SetOutput(stderr)
	jsonOut := fs.Bool("json", false, "emit findings as a JSON array")
	checks := fs.String("checks", "", "comma-separated checks to run (default: all)")
	verbose := fs.Bool("v", false, "report packages as they are analyzed")
	cacheDir := fs.String("cachedir", "", "findings-cache directory (default: user cache dir)")
	noCache := fs.Bool("nocache", false, "disable the findings cache")
	baselinePath := fs.String("baseline", "", "findings-baseline file: entries in it do not fail the run")
	writeBaseline := fs.Bool("writebaseline", false, "write current findings to -baseline and exit 0")

	enabled := map[string]*bool{}
	for _, a := range analysis.All() {
		enabled[a.Name] = fs.Bool(a.Name, true, "run the "+a.Name+" check")
	}
	fs.Usage = func() {
		fmt.Fprintf(stderr, "usage: ampvet [flags] [packages]\n\nChecks:\n")
		for _, a := range analysis.All() {
			fmt.Fprintf(stderr, "  %-14s %s\n", a.Name, a.Doc)
		}
		fmt.Fprintf(stderr, "\nFlags:\n")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}

	var suite []*analysis.Analyzer
	if *checks != "" {
		var err error
		suite, err = analysis.ByName(*checks)
		if err != nil {
			fmt.Fprintln(stderr, "ampvet:", err)
			return 2
		}
	} else {
		for _, a := range analysis.All() {
			if *enabled[a.Name] {
				suite = append(suite, a)
			}
		}
	}
	if len(suite) == 0 {
		fmt.Fprintln(stderr, "ampvet: no checks enabled")
		return 2
	}
	if *writeBaseline && *baselinePath == "" {
		fmt.Fprintln(stderr, "ampvet: -writebaseline needs -baseline <file>")
		return 2
	}

	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	loader := analysis.NewLoader(".")
	listed, err := loader.List(patterns...)
	if err != nil {
		fmt.Fprintln(stderr, "ampvet:", err)
		return 2
	}
	var targets []*analysis.ListedPackage
	for _, p := range listed {
		if !p.Standard && p.ImportPath != "unsafe" {
			targets = append(targets, p)
		}
	}

	cache := openCache(*cacheDir, *noCache, suite, stderr, *verbose)
	hits := map[string][]analysis.Diagnostic{}
	if cache != nil {
		if err := cache.Index(listed); err != nil {
			// Hash failures (racing file deletion, permissions) only
			// cost the cache, never correctness.
			if *verbose {
				fmt.Fprintln(stderr, "ampvet: cache disabled:", err)
			}
			cache = nil
		}
	}
	if cache != nil {
		for _, p := range targets {
			if d, ok := cache.Get(p.ImportPath); ok {
				hits[p.ImportPath] = d
			}
		}
	}

	var diags []analysis.Diagnostic
	if len(hits) == len(targets) && cache != nil {
		// Every package verdict is current: no parse, no type check.
		for _, d := range hits {
			diags = append(diags, d...)
		}
		sort.Slice(diags, func(i, j int) bool {
			a, b := diags[i], diags[j]
			if a.File != b.File {
				return a.File < b.File
			}
			if a.Line != b.Line {
				return a.Line < b.Line
			}
			return a.Column < b.Column
		})
		if *verbose {
			fmt.Fprintf(stderr, "ampvet: %d package(s), all served from cache\n", len(targets))
		}
	} else {
		pkgs, err := loader.LoadTargets(targets)
		if err != nil {
			fmt.Fprintln(stderr, "ampvet:", err)
			return 2
		}
		typeErrs := 0
		for _, pkg := range pkgs {
			for _, terr := range pkg.TypeErrors {
				fmt.Fprintf(stderr, "ampvet: type error in %s: %v\n", pkg.Path, terr)
				typeErrs++
			}
		}
		if typeErrs > 0 {
			return 2
		}
		diags, err = analysis.RunSuite(pkgs, suite, func(pkg *analysis.Package) ([]analysis.Diagnostic, bool) {
			d, ok := hits[pkg.Path]
			return d, ok
		})
		if err != nil {
			fmt.Fprintln(stderr, "ampvet:", err)
			return 2
		}
		if cache != nil {
			perPkg := map[string][]analysis.Diagnostic{}
			for _, d := range diags {
				perPkg[d.Package] = append(perPkg[d.Package], d)
			}
			for _, pkg := range pkgs {
				if _, hit := hits[pkg.Path]; hit {
					continue
				}
				if err := cache.Put(pkg.Path, perPkg[pkg.Path]); err != nil && *verbose {
					fmt.Fprintln(stderr, "ampvet: cache write:", err)
				}
			}
		}
		if *verbose {
			fmt.Fprintf(stderr, "ampvet: %d package(s): %d analyzed, %d from cache\n",
				len(pkgs), len(pkgs)-len(hits), len(hits))
		}
	}

	// Emit paths relative to the working directory so editor links,
	// baseline entries and the CI problem matcher's PR-diff annotations
	// all resolve against the repo root, and cached absolute paths from
	// other checkouts normalize the same way.
	if wd, err := os.Getwd(); err == nil {
		for i := range diags {
			if rel, err := filepath.Rel(wd, diags[i].File); err == nil && !strings.HasPrefix(rel, "..") {
				diags[i].File = rel
			}
		}
	}

	if *writeBaseline {
		if err := analysis.WriteBaseline(*baselinePath, diags); err != nil {
			fmt.Fprintln(stderr, "ampvet:", err)
			return 2
		}
		fmt.Fprintf(stderr, "ampvet: wrote %d finding(s) to baseline %s\n", len(diags), *baselinePath)
		return 0
	}
	if *baselinePath != "" {
		base, err := analysis.LoadBaseline(*baselinePath)
		if err != nil {
			fmt.Fprintln(stderr, "ampvet:", err)
			return 2
		}
		var suppressed int
		diags, suppressed = base.Filter(diags)
		if suppressed > 0 && *verbose {
			fmt.Fprintf(stderr, "ampvet: %d finding(s) suppressed by baseline\n", suppressed)
		}
	}

	if *jsonOut {
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		if diags == nil {
			diags = []analysis.Diagnostic{}
		}
		if err := enc.Encode(diags); err != nil {
			fmt.Fprintln(stderr, "ampvet:", err)
			return 2
		}
	} else {
		for _, d := range diags {
			fmt.Fprintln(stdout, d.String())
		}
	}
	if len(diags) > 0 {
		if !*jsonOut {
			names := make([]string, 0, len(suite))
			for _, a := range suite {
				names = append(names, a.Name)
			}
			fmt.Fprintf(stderr, "ampvet: %d finding(s) from checks [%s]\n",
				len(diags), strings.Join(names, " "))
		}
		return 1
	}
	return 0
}

// openCache builds the findings cache with a salt covering the ampvet
// binary itself, the toolchain and the enabled checks. Any failure
// (no user cache dir, unreadable executable) silently disables
// caching — it is an accelerator, not a dependency.
func openCache(dir string, disabled bool, suite []*analysis.Analyzer, stderr io.Writer, verbose bool) *analysis.FindingsCache {
	if disabled {
		return nil
	}
	if dir == "" {
		ucd, err := os.UserCacheDir()
		if err != nil {
			return nil
		}
		dir = filepath.Join(ucd, "ampvet")
	}
	exeHash, err := executableHash()
	if err != nil {
		if verbose {
			fmt.Fprintln(stderr, "ampvet: cache disabled:", err)
		}
		return nil
	}
	names := make([]string, 0, len(suite))
	for _, a := range suite {
		names = append(names, a.Name)
	}
	sort.Strings(names)
	salt := exeHash + "|" + runtime.Version() + "|" + strings.Join(names, ",")
	c, err := analysis.NewFindingsCache(dir, salt)
	if err != nil {
		if verbose {
			fmt.Fprintln(stderr, "ampvet: cache disabled:", err)
		}
		return nil
	}
	return c
}

// executableHash hashes the running ampvet binary, so editing any
// analyzer (even under `go run`) invalidates cached verdicts.
func executableHash() (string, error) {
	exe, err := os.Executable()
	if err != nil {
		return "", err
	}
	f, err := os.Open(exe)
	if err != nil {
		return "", err
	}
	defer f.Close()
	h := sha256.New()
	if _, err := io.Copy(h, f); err != nil {
		return "", err
	}
	return hex.EncodeToString(h.Sum(nil)), nil
}
