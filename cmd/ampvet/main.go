// Command ampvet runs ampsched's custom static-analysis suite (see
// internal/analysis) over the repository: determinism, hotpathalloc,
// deprecatedapi and obserrcheck.
//
// Usage:
//
//	ampvet [flags] [packages]
//
// Packages default to ./... . Findings print one per line as
// file:line:col: [check] message, or as a JSON array with -json.
// The exit status is 1 when there are findings, 2 on a loading or
// internal error, 0 on a clean tree.
//
// Each check can be disabled individually (-determinism=false) or the
// suite narrowed to an explicit list (-checks determinism,obserrcheck).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"

	"ampsched/internal/analysis"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr *os.File) int {
	fs := flag.NewFlagSet("ampvet", flag.ContinueOnError)
	fs.SetOutput(stderr)
	jsonOut := fs.Bool("json", false, "emit findings as a JSON array")
	checks := fs.String("checks", "", "comma-separated checks to run (default: all)")
	verbose := fs.Bool("v", false, "report packages as they are analyzed")

	enabled := map[string]*bool{}
	for _, a := range analysis.All() {
		enabled[a.Name] = fs.Bool(a.Name, true, "run the "+a.Name+" check")
	}
	fs.Usage = func() {
		fmt.Fprintf(stderr, "usage: ampvet [flags] [packages]\n\nChecks:\n")
		for _, a := range analysis.All() {
			fmt.Fprintf(stderr, "  %-14s %s\n", a.Name, a.Doc)
		}
		fmt.Fprintf(stderr, "\nFlags:\n")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}

	var suite []*analysis.Analyzer
	if *checks != "" {
		var err error
		suite, err = analysis.ByName(*checks)
		if err != nil {
			fmt.Fprintln(stderr, "ampvet:", err)
			return 2
		}
	} else {
		for _, a := range analysis.All() {
			if *enabled[a.Name] {
				suite = append(suite, a)
			}
		}
	}
	if len(suite) == 0 {
		fmt.Fprintln(stderr, "ampvet: no checks enabled")
		return 2
	}

	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	loader := analysis.NewLoader(".")
	pkgs, err := loader.Load(patterns...)
	if err != nil {
		fmt.Fprintln(stderr, "ampvet:", err)
		return 2
	}

	var diags []analysis.Diagnostic
	for _, pkg := range pkgs {
		if *verbose {
			fmt.Fprintf(stderr, "ampvet: %s (%d files)\n", pkg.Path, len(pkg.Files))
		}
		for _, terr := range pkg.TypeErrors {
			fmt.Fprintf(stderr, "ampvet: type error in %s: %v\n", pkg.Path, terr)
		}
		if len(pkg.TypeErrors) > 0 {
			return 2
		}
		d, err := analysis.RunAnalyzers(pkg, suite)
		if err != nil {
			fmt.Fprintln(stderr, "ampvet:", err)
			return 2
		}
		diags = append(diags, d...)
	}

	if *jsonOut {
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		if diags == nil {
			diags = []analysis.Diagnostic{}
		}
		if err := enc.Encode(diags); err != nil {
			fmt.Fprintln(stderr, "ampvet:", err)
			return 2
		}
	} else {
		for _, d := range diags {
			fmt.Fprintln(stdout, d.String())
		}
	}
	if len(diags) > 0 {
		if !*jsonOut {
			names := make([]string, 0, len(suite))
			for _, a := range suite {
				names = append(names, a.Name)
			}
			fmt.Fprintf(stderr, "ampvet: %d finding(s) from checks [%s]\n",
				len(diags), strings.Join(names, " "))
		}
		return 1
	}
	return 0
}
