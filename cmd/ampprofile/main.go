// Command ampprofile regenerates the offline profiling artifacts of
// §V and §VI-A: the IPC/Watt ratio matrix (Fig. 3), the regression
// surface (Fig. 4) and the derived swapping-rule thresholds (Fig. 5).
package main

import (
	"flag"
	"fmt"
	"os"

	"ampsched/internal/experiments"
)

func main() {
	var (
		limit     = flag.Uint64("limit", 2_500_000, "instructions per profiling run")
		ctxSwitch = flag.Uint64("contextswitch", 400_000, "sampling interval in cycles")
		rulePairs = flag.Int("rulepairs", 50, "random pairs for the rule derivation")
		window    = flag.Uint64("window", 1000, "committed-instruction window for rule derivation")
		seed      = flag.Uint64("seed", 7, "workload seed")
		verbose   = flag.Bool("v", false, "print progress")
	)
	flag.Parse()

	opt := experiments.DefaultOptions()
	opt.ProfileInstrLimit = *limit
	opt.ContextSwitch = *ctxSwitch
	opt.RulePairs = *rulePairs
	opt.RuleWindow = *window
	opt.Seed = *seed

	r, err := experiments.NewRunner(opt)
	if err != nil {
		fatal(err)
	}
	if *verbose {
		r.Progress = func(s string) { fmt.Fprintln(os.Stderr, "  ..", s) }
	}
	for _, name := range []string{"fig3", "fig4", "rules"} {
		e, err := experiments.ByName(name)
		if err != nil {
			fatal(err)
		}
		if err := e.Run(r, os.Stdout); err != nil {
			fatal(err)
		}
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "ampprofile:", err)
	os.Exit(1)
}
