package main

import (
	"bufio"
	"fmt"
	"io"
	"regexp"
	"strings"
)

// parseSnapshot reads `go test -bench` text from r into a Snapshot.
// Non-benchmark lines (PASS, ok, ...) pass through to passthrough so
// the snapshot never silently swallows a test failure.
func parseSnapshot(r io.Reader, passthrough io.Writer) (Snapshot, error) {
	var snap Snapshot
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "goos:"):
			snap.GOOS = strings.TrimSpace(strings.TrimPrefix(line, "goos:"))
		case strings.HasPrefix(line, "goarch:"):
			snap.GOARCH = strings.TrimSpace(strings.TrimPrefix(line, "goarch:"))
		case strings.HasPrefix(line, "pkg:"):
			snap.Package = strings.TrimSpace(strings.TrimPrefix(line, "pkg:"))
		case strings.HasPrefix(line, "cpu:"):
			snap.CPU = strings.TrimSpace(strings.TrimPrefix(line, "cpu:"))
		case strings.HasPrefix(line, "Benchmark"):
			if b, ok := parseLine(line); ok {
				snap.Benchmarks = append(snap.Benchmarks, b)
			} else {
				fmt.Fprintln(passthrough, line)
			}
		default:
			if line != "" {
				fmt.Fprintln(passthrough, line)
			}
		}
	}
	return snap, sc.Err()
}

// compareResult is the outcome of one baseline comparison: the
// per-benchmark report lines plus how many regressed past a gate.
// hard counts the subset of failures that are allocs/op increases on
// benchmarks matching the -hard-allocs pattern; CI fails on those even
// where it tolerates ordinary (machine-variance-prone) ns/op drift.
type compareResult struct {
	lines    []string
	failures int
	hard     int
}

// compareSnapshots gates fresh against the committed baseline old. A
// benchmark fails when its ns/op grew more than thresholdPct percent,
// or when its allocs/op increased at all (the snapshot exists to pin
// the hot-path zero-alloc guarantees, so any increase is a
// regression). An allocs/op increase on a benchmark matching
// hardAllocs (nil = none) is additionally counted as a hard failure.
// Benchmarks present on only one side are reported but never fail the
// gate — renames should not break CI.
func compareSnapshots(old, fresh *Snapshot, thresholdPct float64, hardAllocs *regexp.Regexp) compareResult {
	var res compareResult
	oldBy := make(map[string]Benchmark, len(old.Benchmarks))
	for _, b := range old.Benchmarks {
		oldBy[b.Name] = b
	}
	seen := make(map[string]bool, len(fresh.Benchmarks))
	for _, nb := range fresh.Benchmarks {
		seen[nb.Name] = true
		ob, ok := oldBy[nb.Name]
		if !ok {
			res.lines = append(res.lines,
				fmt.Sprintf("new  %s: %.1f ns/op (no baseline)", nb.Name, nb.NsPerOp))
			continue
		}
		failed := false
		if ob.NsPerOp > 0 {
			pct := 100 * (nb.NsPerOp - ob.NsPerOp) / ob.NsPerOp
			if pct > thresholdPct {
				failed = true
				res.failures++
				res.lines = append(res.lines,
					fmt.Sprintf("FAIL %s: %.1f -> %.1f ns/op (%+.1f%%, gate +%.1f%%)",
						nb.Name, ob.NsPerOp, nb.NsPerOp, pct, thresholdPct))
			}
		}
		if nb.AllocsPerOp > ob.AllocsPerOp {
			failed = true
			res.failures++
			tag := "FAIL"
			if hardAllocs != nil && hardAllocs.MatchString(nb.Name) {
				res.hard++
				tag = "HARD"
			}
			res.lines = append(res.lines,
				fmt.Sprintf("%s %s: allocs/op %d -> %d (any increase fails)",
					tag, nb.Name, ob.AllocsPerOp, nb.AllocsPerOp))
		}
		if !failed {
			pct := 0.0
			if ob.NsPerOp > 0 {
				pct = 100 * (nb.NsPerOp - ob.NsPerOp) / ob.NsPerOp
			}
			res.lines = append(res.lines,
				fmt.Sprintf("ok   %s: %.1f -> %.1f ns/op (%+.1f%%)",
					nb.Name, ob.NsPerOp, nb.NsPerOp, pct))
		}
	}
	for _, ob := range old.Benchmarks {
		if !seen[ob.Name] {
			res.lines = append(res.lines,
				fmt.Sprintf("gone %s: in baseline but not in this run", ob.Name))
		}
	}
	return res
}
