package main

import (
	"io"
	"regexp"
	"strings"
	"testing"
)

func bench(name string, ns float64, allocs int64) Benchmark {
	return Benchmark{Name: name, Iterations: 100, NsPerOp: ns, AllocsPerOp: allocs}
}

func countFail(lines []string) int {
	n := 0
	for _, l := range lines {
		if strings.HasPrefix(l, "FAIL") {
			n++
		}
	}
	return n
}

func TestCompareNoRegression(t *testing.T) {
	old := &Snapshot{Benchmarks: []Benchmark{bench("BenchmarkA", 100, 0)}}
	fresh := &Snapshot{Benchmarks: []Benchmark{bench("BenchmarkA", 105, 0)}}
	res := compareSnapshots(old, fresh, 10, nil)
	if res.failures != 0 {
		t.Fatalf("+5%% within a +10%% gate must pass, got %d failures: %v", res.failures, res.lines)
	}
	// A speedup of any size passes too.
	fresh.Benchmarks[0].NsPerOp = 10
	if res := compareSnapshots(old, fresh, 10, nil); res.failures != 0 {
		t.Fatalf("speedup must pass, got %v", res.lines)
	}
}

func TestCompareNsRegression(t *testing.T) {
	old := &Snapshot{Benchmarks: []Benchmark{bench("BenchmarkA", 100, 0)}}
	fresh := &Snapshot{Benchmarks: []Benchmark{bench("BenchmarkA", 111, 0)}}
	res := compareSnapshots(old, fresh, 10, nil)
	if res.failures != 1 || countFail(res.lines) != 1 {
		t.Fatalf("+11%% past a +10%% gate must fail once, got %d failures: %v", res.failures, res.lines)
	}
	// A looser gate lets the same delta through.
	if res := compareSnapshots(old, fresh, 20, nil); res.failures != 0 {
		t.Fatalf("+11%% within a +20%% gate must pass, got %v", res.lines)
	}
}

func TestCompareAllocRegression(t *testing.T) {
	old := &Snapshot{Benchmarks: []Benchmark{bench("BenchmarkA", 100, 0)}}
	fresh := &Snapshot{Benchmarks: []Benchmark{bench("BenchmarkA", 100, 1)}}
	res := compareSnapshots(old, fresh, 10, nil)
	if res.failures != 1 {
		t.Fatalf("any allocs/op increase must fail, got %d failures: %v", res.failures, res.lines)
	}
}

func TestCompareBothRegressions(t *testing.T) {
	old := &Snapshot{Benchmarks: []Benchmark{bench("BenchmarkA", 100, 2)}}
	fresh := &Snapshot{Benchmarks: []Benchmark{bench("BenchmarkA", 200, 3)}}
	res := compareSnapshots(old, fresh, 10, nil)
	if res.failures != 2 {
		t.Fatalf("ns/op and allocs/op regressions count separately, got %d: %v", res.failures, res.lines)
	}
}

func TestCompareHardAllocsSplit(t *testing.T) {
	old := &Snapshot{Benchmarks: []Benchmark{
		bench("BenchmarkEnginePairSweepInterval", 100, 2),
		bench("BenchmarkEnginePairSweepDetailed", 100, 2),
	}}
	fresh := &Snapshot{Benchmarks: []Benchmark{
		bench("BenchmarkEnginePairSweepInterval", 150, 3),
		bench("BenchmarkEnginePairSweepDetailed", 150, 3),
	}}
	res := compareSnapshots(old, fresh, 10, regexp.MustCompile("Interval"))
	// Four failures total (ns+allocs on both rows) but only the
	// interval row's allocs increase is hard.
	if res.failures != 4 {
		t.Fatalf("want 4 failures, got %d: %v", res.failures, res.lines)
	}
	if res.hard != 1 {
		t.Fatalf("want 1 hard failure (interval allocs), got %d: %v", res.hard, res.lines)
	}
	var sawHard bool
	for _, l := range res.lines {
		sawHard = sawHard || strings.HasPrefix(l, "HARD BenchmarkEnginePairSweepInterval: allocs/op")
	}
	if !sawHard {
		t.Fatalf("missing HARD line for the interval allocs regression: %v", res.lines)
	}
	// ns/op drift alone on a matching row stays soft.
	fresh.Benchmarks[0].AllocsPerOp = 2
	fresh.Benchmarks[1].AllocsPerOp = 2
	if res := compareSnapshots(old, fresh, 10, regexp.MustCompile("Interval")); res.hard != 0 {
		t.Fatalf("ns/op drift must not hard-fail, got %d hard: %v", res.hard, res.lines)
	}
}

func TestCompareNewAndGone(t *testing.T) {
	old := &Snapshot{Benchmarks: []Benchmark{bench("BenchmarkGone", 100, 0)}}
	fresh := &Snapshot{Benchmarks: []Benchmark{bench("BenchmarkNew", 100, 5)}}
	res := compareSnapshots(old, fresh, 10, nil)
	if res.failures != 0 {
		t.Fatalf("added/removed benchmarks must not fail the gate: %v", res.lines)
	}
	var sawNew, sawGone bool
	for _, l := range res.lines {
		sawNew = sawNew || strings.HasPrefix(l, "new  BenchmarkNew")
		sawGone = sawGone || strings.HasPrefix(l, "gone BenchmarkGone")
	}
	if !sawNew || !sawGone {
		t.Fatalf("missing new/gone report lines: %v", res.lines)
	}
}

func TestParseSnapshot(t *testing.T) {
	in := `goos: linux
goarch: amd64
pkg: ampsched
cpu: Test CPU
BenchmarkCoreSimulation-8   	     100	  12345.6 ns/op	       0 B/op	       0 allocs/op
BenchmarkWithExtra-8        	      50	    200.0 ns/op	      16 B/op	       2 allocs/op	       1.5 pct_vs_hpe
PASS
ok  	ampsched	1.234s
`
	snap, err := parseSnapshot(strings.NewReader(in), io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	if snap.GOOS != "linux" || snap.Package != "ampsched" {
		t.Fatalf("header mis-parsed: %+v", snap)
	}
	if len(snap.Benchmarks) != 2 {
		t.Fatalf("want 2 benchmarks, got %+v", snap.Benchmarks)
	}
	b := snap.Benchmarks[0]
	if b.Name != "BenchmarkCoreSimulation" || b.NsPerOp != 12345.6 || b.AllocsPerOp != 0 {
		t.Fatalf("first benchmark mis-parsed: %+v", b)
	}
	if got := snap.Benchmarks[1].Extra["pct_vs_hpe"]; got != 1.5 {
		t.Fatalf("extra metric mis-parsed: %+v", snap.Benchmarks[1])
	}
}
