// Command benchsnap converts `go test -bench -benchmem` output on
// stdin into a machine-readable JSON snapshot, so benchmark baselines
// can be committed and diffed (see the Makefile's bench-snapshot
// target).
//
//	go test -run NONE -bench . -benchmem . | benchsnap -o BENCH.json
//
// Non-benchmark lines (PASS, ok, goos, ...) pass through to stderr so
// the snapshot never silently swallows a test failure.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
)

// Benchmark is one parsed result line.
type Benchmark struct {
	Name       string  `json:"name"`
	Iterations int64   `json:"iterations"`
	NsPerOp    float64 `json:"ns_per_op"`
	// -benchmem metrics; an explicit 0 is the hot-path guarantee the
	// snapshot exists to record, so these are never omitted.
	BytesPerOp  int64 `json:"bytes_per_op"`
	AllocsPerOp int64 `json:"allocs_per_op"`

	// Extra holds custom -benchmem style metrics (pct_vs_hpe, ...).
	Extra map[string]float64 `json:"extra,omitempty"`
}

// Snapshot is the file's top-level shape.
type Snapshot struct {
	GOOS       string      `json:"goos,omitempty"`
	GOARCH     string      `json:"goarch,omitempty"`
	Package    string      `json:"pkg,omitempty"`
	CPU        string      `json:"cpu,omitempty"`
	Benchmarks []Benchmark `json:"benchmarks"`
}

func main() {
	out := flag.String("o", "", "output file (default stdout)")
	flag.Parse()

	var snap Snapshot
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "goos:"):
			snap.GOOS = strings.TrimSpace(strings.TrimPrefix(line, "goos:"))
		case strings.HasPrefix(line, "goarch:"):
			snap.GOARCH = strings.TrimSpace(strings.TrimPrefix(line, "goarch:"))
		case strings.HasPrefix(line, "pkg:"):
			snap.Package = strings.TrimSpace(strings.TrimPrefix(line, "pkg:"))
		case strings.HasPrefix(line, "cpu:"):
			snap.CPU = strings.TrimSpace(strings.TrimPrefix(line, "cpu:"))
		case strings.HasPrefix(line, "Benchmark"):
			if b, ok := parseLine(line); ok {
				snap.Benchmarks = append(snap.Benchmarks, b)
			} else {
				fmt.Fprintln(os.Stderr, line)
			}
		default:
			if line != "" {
				fmt.Fprintln(os.Stderr, line)
			}
		}
	}
	if err := sc.Err(); err != nil {
		fatal(err)
	}
	if len(snap.Benchmarks) == 0 {
		fatal(fmt.Errorf("no benchmark lines on stdin"))
	}

	enc, err := json.MarshalIndent(&snap, "", "  ")
	if err != nil {
		fatal(err)
	}
	enc = append(enc, '\n')
	if *out == "" {
		os.Stdout.Write(enc)
		return
	}
	if err := os.WriteFile(*out, enc, 0o644); err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "benchsnap: wrote %d benchmarks to %s\n", len(snap.Benchmarks), *out)
}

// parseLine parses one result line:
//
//	BenchmarkFoo-8   123  456.7 ns/op  0 B/op  0 allocs/op  1.2 pct_vs_hpe
func parseLine(line string) (Benchmark, bool) {
	f := strings.Fields(line)
	if len(f) < 4 {
		return Benchmark{}, false
	}
	name := f[0]
	if i := strings.LastIndex(name, "-"); i > 0 {
		// Strip the GOMAXPROCS suffix.
		if _, err := strconv.Atoi(name[i+1:]); err == nil {
			name = name[:i]
		}
	}
	iters, err := strconv.ParseInt(f[1], 10, 64)
	if err != nil {
		return Benchmark{}, false
	}
	b := Benchmark{Name: name, Iterations: iters}
	// The rest is (value, unit) couples.
	for i := 2; i+1 < len(f); i += 2 {
		v, err := strconv.ParseFloat(f[i], 64)
		if err != nil {
			return Benchmark{}, false
		}
		switch unit := f[i+1]; unit {
		case "ns/op":
			b.NsPerOp = v
		case "B/op":
			b.BytesPerOp = int64(v)
		case "allocs/op":
			b.AllocsPerOp = int64(v)
		default:
			if b.Extra == nil {
				b.Extra = make(map[string]float64)
			}
			b.Extra[unit] = v
		}
	}
	return b, true
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchsnap:", err)
	os.Exit(1)
}
