// Command benchsnap converts `go test -bench -benchmem` output on
// stdin into a machine-readable JSON snapshot, so benchmark baselines
// can be committed and diffed (see the Makefile's bench-snapshot
// target).
//
//	go test -run NONE -bench . -benchmem . | benchsnap -o BENCH.json
//
// Non-benchmark lines (PASS, ok, goos, ...) pass through to stderr so
// the snapshot never silently swallows a test failure.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"regexp"
	"strconv"
	"strings"
)

// Benchmark is one parsed result line.
type Benchmark struct {
	Name       string  `json:"name"`
	Iterations int64   `json:"iterations"`
	NsPerOp    float64 `json:"ns_per_op"`
	// -benchmem metrics; an explicit 0 is the hot-path guarantee the
	// snapshot exists to record, so these are never omitted.
	BytesPerOp  int64 `json:"bytes_per_op"`
	AllocsPerOp int64 `json:"allocs_per_op"`

	// Extra holds custom -benchmem style metrics (pct_vs_hpe, ...).
	Extra map[string]float64 `json:"extra,omitempty"`
}

// Snapshot is the file's top-level shape.
type Snapshot struct {
	GOOS       string      `json:"goos,omitempty"`
	GOARCH     string      `json:"goarch,omitempty"`
	Package    string      `json:"pkg,omitempty"`
	CPU        string      `json:"cpu,omitempty"`
	Benchmarks []Benchmark `json:"benchmarks"`
}

func main() {
	out := flag.String("o", "", "output file (default stdout)")
	compareWith := flag.String("compare", "", "compare fresh -bench output on stdin against this snapshot; exit 1 on regression")
	threshold := flag.Float64("threshold", 10, "ns/op regression gate in percent (compare mode); allocs/op may never increase")
	hardAllocs := flag.String("hard-allocs", "", "regexp of benchmark names whose allocs/op increases hard-fail; every other regression is reported but exits 0 (CI soft/hard split)")
	flag.Parse()

	snap, err := parseSnapshot(os.Stdin, os.Stderr)
	if err != nil {
		fatal(err)
	}
	if len(snap.Benchmarks) == 0 {
		fatal(fmt.Errorf("no benchmark lines on stdin"))
	}

	if *compareWith != "" {
		data, err := os.ReadFile(*compareWith)
		if err != nil {
			fatal(err)
		}
		var old Snapshot
		if err := json.Unmarshal(data, &old); err != nil {
			fatal(fmt.Errorf("parsing %s: %w", *compareWith, err))
		}
		var hardRe *regexp.Regexp
		if *hardAllocs != "" {
			hardRe, err = regexp.Compile(*hardAllocs)
			if err != nil {
				fatal(fmt.Errorf("bad -hard-allocs pattern: %w", err))
			}
		}
		res := compareSnapshots(&old, &snap, *threshold, hardRe)
		for _, l := range res.lines {
			fmt.Println(l)
		}
		if hardRe != nil {
			// Soft/hard split: only allocs/op increases on rows
			// matching -hard-allocs gate the exit status; everything
			// else is advisory (CI shows it, the job stays green).
			if res.hard > 0 {
				fatal(fmt.Errorf("%d hard allocs/op regression(s) vs %s (pattern %q)", res.hard, *compareWith, *hardAllocs))
			}
			if res.failures > 0 {
				fmt.Fprintf(os.Stderr, "benchsnap: %d soft regression(s) vs %s (advisory; no hard allocs/op failures)\n", res.failures, *compareWith)
			} else {
				fmt.Fprintf(os.Stderr, "benchsnap: no regressions vs %s\n", *compareWith)
			}
			return
		}
		if res.failures > 0 {
			fatal(fmt.Errorf("%d regression(s) vs %s", res.failures, *compareWith))
		}
		fmt.Fprintf(os.Stderr, "benchsnap: no regressions vs %s\n", *compareWith)
		return
	}

	enc, err := json.MarshalIndent(&snap, "", "  ")
	if err != nil {
		fatal(err)
	}
	enc = append(enc, '\n')
	if *out == "" {
		os.Stdout.Write(enc)
		return
	}
	if err := os.WriteFile(*out, enc, 0o644); err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "benchsnap: wrote %d benchmarks to %s\n", len(snap.Benchmarks), *out)
}

// parseLine parses one result line:
//
//	BenchmarkFoo-8   123  456.7 ns/op  0 B/op  0 allocs/op  1.2 pct_vs_hpe
func parseLine(line string) (Benchmark, bool) {
	f := strings.Fields(line)
	if len(f) < 4 {
		return Benchmark{}, false
	}
	name := f[0]
	if i := strings.LastIndex(name, "-"); i > 0 {
		// Strip the GOMAXPROCS suffix.
		if _, err := strconv.Atoi(name[i+1:]); err == nil {
			name = name[:i]
		}
	}
	iters, err := strconv.ParseInt(f[1], 10, 64)
	if err != nil {
		return Benchmark{}, false
	}
	b := Benchmark{Name: name, Iterations: iters}
	// The rest is (value, unit) couples.
	for i := 2; i+1 < len(f); i += 2 {
		v, err := strconv.ParseFloat(f[i], 64)
		if err != nil {
			return Benchmark{}, false
		}
		switch unit := f[i+1]; unit {
		case "ns/op":
			b.NsPerOp = v
		case "B/op":
			b.BytesPerOp = int64(v)
		case "allocs/op":
			b.AllocsPerOp = int64(v)
		default:
			if b.Extra == nil {
				b.Extra = make(map[string]float64)
			}
			b.Extra[unit] = v
		}
	}
	return b, true
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchsnap:", err)
	os.Exit(1)
}
