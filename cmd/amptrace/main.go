// Command amptrace records, inspects and replays binary instruction
// traces (internal/trace format).
//
// Usage:
//
//	amptrace record -bench gcc -n 1000000 -o gcc.ampt [-seed 7]
//	amptrace info gcc.ampt
//	amptrace replay -core INT gcc.ampt [-limit 500000]
//
// Replay runs the trace through a single core and prints IPC, power
// and IPC/Watt — the way a user would characterize a captured
// workload before scheduling it.
package main

import (
	"flag"
	"fmt"
	"os"

	"ampsched/internal/cpu"
	"ampsched/internal/isa"
	"ampsched/internal/power"
	"ampsched/internal/trace"
	"ampsched/internal/workload"
)

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	switch os.Args[1] {
	case "record":
		record(os.Args[2:])
	case "info":
		info(os.Args[2:])
	case "replay":
		replay(os.Args[2:])
	default:
		usage()
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: amptrace record|info|replay [flags]")
	os.Exit(2)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "amptrace:", err)
	os.Exit(1)
}

func record(args []string) {
	fs := flag.NewFlagSet("record", flag.ExitOnError)
	bench := fs.String("bench", "gcc", "benchmark to capture")
	n := fs.Uint64("n", 1_000_000, "instructions to record")
	out := fs.String("o", "", "output file (required)")
	seed := fs.Uint64("seed", 7, "workload seed")
	_ = fs.Parse(args)
	if *out == "" {
		fatal(fmt.Errorf("record: -o is required"))
	}
	b, err := workload.ByName(*bench)
	if err != nil {
		fatal(err)
	}
	f, err := os.Create(*out)
	if err != nil {
		fatal(err)
	}
	defer f.Close()
	gen := workload.NewGenerator(b, *seed, 0)
	if err := trace.RecordBenchmark(f, b.Name, b.EffectiveCodeFootprint(), *n, gen.Next); err != nil {
		fatal(err)
	}
	st, err := f.Stat()
	if err != nil {
		fatal(err)
	}
	fmt.Printf("recorded %d instructions of %s to %s (%d bytes, %.2f B/instr)\n",
		*n, b.Name, *out, st.Size(), float64(st.Size())/float64(*n))
}

func openTrace(path string, recover bool) *trace.Source {
	f, err := os.Open(path)
	if err != nil {
		fatal(err)
	}
	defer f.Close()
	if recover {
		src, st, err := trace.LoadRecover(f)
		if err != nil {
			fatal(err)
		}
		if st.Degraded() {
			fmt.Fprintf(os.Stderr, "amptrace: recovered %d frames, dropped %d (%d records lost, %d bytes skipped)\n",
				st.FramesOK, st.FramesDropped, st.RecordsLost, st.BytesSkipped)
		}
		return src
	}
	src, err := trace.Load(f)
	if err != nil {
		fatal(err)
	}
	return src
}

func info(args []string) {
	fs := flag.NewFlagSet("info", flag.ExitOnError)
	rec := fs.Bool("recover", false, "skip damaged frames instead of failing on corruption")
	_ = fs.Parse(args)
	if fs.NArg() != 1 {
		fatal(fmt.Errorf("info: expected one trace file"))
	}
	src := openTrace(fs.Arg(0), *rec)
	hdr := src.Header()
	fmt.Printf("trace   %s\nname    %s\ncode    %d bytes\ncount   %d instructions\n",
		fs.Arg(0), hdr.Name, hdr.CodeFootprint, hdr.Count)

	// Class histogram over one pass.
	var counts [isa.NumClasses]uint64
	var in isa.Instruction
	for i := uint64(0); i < hdr.Count; i++ {
		src.Next(&in)
		counts[in.Class]++
	}
	var intN, fpN, memN uint64
	for c := isa.Class(0); c < isa.NumClasses; c++ {
		fmt.Printf("  %-8s %6.2f%%\n", c, 100*float64(counts[c])/float64(hdr.Count))
		switch {
		case c.IsInt():
			intN += counts[c]
		case c.IsFP():
			fpN += counts[c]
		case c.IsMem():
			memN += counts[c]
		}
	}
	fmt.Printf("mix     %%INT %.1f  %%FP %.1f  %%MEM %.1f\n",
		100*float64(intN)/float64(hdr.Count),
		100*float64(fpN)/float64(hdr.Count),
		100*float64(memN)/float64(hdr.Count))
}

func replay(args []string) {
	fs := flag.NewFlagSet("replay", flag.ExitOnError)
	coreName := fs.String("core", "INT", "core to replay on: INT or FP")
	limit := fs.Uint64("limit", 0, "instruction budget (default: one pass over the trace)")
	rec := fs.Bool("recover", false, "skip damaged frames instead of failing on corruption")
	_ = fs.Parse(args)
	if fs.NArg() != 1 {
		fatal(fmt.Errorf("replay: expected one trace file"))
	}
	src := openTrace(fs.Arg(0), *rec)

	var cfg *cpu.Config
	switch *coreName {
	case "INT":
		cfg = cpu.IntCoreConfig()
	case "FP":
		cfg = cpu.FPCoreConfig()
	default:
		fatal(fmt.Errorf("replay: unknown core %q", *coreName))
	}
	budget := *limit
	if budget == 0 {
		budget = src.Header().Count
	}

	core := cpu.NewCore(cfg)
	model := power.NewModel(cfg)
	arch := &cpu.ThreadArch{CodeBase: 1 << 36, CodeSize: src.Header().CodeFootprint}
	core.Bind(src, arch)
	var cycle uint64
	for arch.Committed < budget {
		core.Step(cycle)
		cycle++
	}
	energy := model.EnergyNJ(core.Activity(), power.SnapshotCaches(core))
	watts := model.Watts(energy, cycle)
	ipc := float64(arch.Committed) / float64(cycle)
	fmt.Printf("replayed %s on %s core: %d instructions in %d cycles\n",
		src.Header().Name, cfg.Name, arch.Committed, cycle)
	fmt.Printf("IPC %.3f   %.2f W   IPC/Watt %.4f   %%INT %.1f   %%FP %.1f\n",
		ipc, watts, ipc/watts, arch.IntPct(), arch.FPPct())
}
