package ampsched

import (
	"bytes"
	"encoding/json"
	"reflect"
	"testing"

	"ampsched/internal/amp"
	"ampsched/internal/cpu"
	"ampsched/internal/interval"
	"ampsched/internal/sched"
	"ampsched/internal/trace"
	"ampsched/internal/workload"
)

// TestSeededRunsAreByteIdentical is the determinism contract end to
// end — the invariant the ampvet determinism check guards at compile
// time, asserted at run time: two identical-seed runs must produce
// byte-identical results, identical event streams, and byte-identical
// trace output. Any divergence means a wall clock, unseeded random
// draw or map walk leaked into the simulation.
func TestSeededRunsAreByteIdentical(t *testing.T) {
	run := func() ([]byte, []amp.Event) {
		cores := [2]*cpu.Config{cpu.IntCoreConfig(), cpu.FPCoreConfig()}
		t0 := amp.NewThread(0, workload.MustByName("fpstress"), 21, 0)
		t1 := amp.NewThread(1, workload.MustByName("intstress"), 22, 1<<40)
		var events []amp.Event
		sys := amp.MustSystem(cores, [2]*amp.Thread{t0, t1},
			sched.NewProposed(sched.DefaultProposedConfig()),
			amp.Config{SwapOverheadCycles: 500},
			amp.WithObserver(amp.ObserverFunc(func(e amp.Event) {
				events = append(events, e)
			})))
		res := sys.MustRun(150_000)
		blob, err := json.Marshal(res)
		if err != nil {
			t.Fatal(err)
		}
		return blob, events
	}

	blobA, eventsA := run()
	blobB, eventsB := run()
	if !bytes.Equal(blobA, blobB) {
		t.Errorf("identical-seed results differ:\n  A: %s\n  B: %s", blobA, blobB)
	}
	if len(eventsA) == 0 {
		t.Fatal("observer saw no events")
	}
	if !reflect.DeepEqual(eventsA, eventsB) {
		t.Errorf("identical-seed event streams differ: %d vs %d events", len(eventsA), len(eventsB))
	}
}

// TestSeededEngineRunsAreByteIdentical extends the determinism
// contract to the non-detailed simulation engines: with identical
// seeds, the interval and sampled engines must also be byte-identical
// run to run (including the synthesized Activity/cache ledgers that
// feed the power model).
func TestSeededEngineRunsAreByteIdentical(t *testing.T) {
	for _, fidelity := range []string{interval.FidelityInterval, interval.FidelitySampled} {
		t.Run(fidelity, func(t *testing.T) {
			factory, err := interval.FactoryFor(fidelity)
			if err != nil {
				t.Fatal(err)
			}
			run := func() ([]byte, []amp.Event) {
				cores := [2]*cpu.Config{cpu.IntCoreConfig(), cpu.FPCoreConfig()}
				t0 := amp.NewThread(0, workload.MustByName("fpstress"), 21, 0)
				t1 := amp.NewThread(1, workload.MustByName("intstress"), 22, 1<<40)
				var events []amp.Event
				sys := amp.MustSystem(cores, [2]*amp.Thread{t0, t1},
					sched.NewProposed(sched.DefaultProposedConfig()),
					amp.Config{SwapOverheadCycles: 500},
					amp.WithEngine(factory),
					amp.WithObserver(amp.ObserverFunc(func(e amp.Event) {
						events = append(events, e)
					})))
				res := sys.MustRun(150_000)
				blob, err := json.Marshal(res)
				if err != nil {
					t.Fatal(err)
				}
				return blob, events
			}
			blobA, eventsA := run()
			blobB, eventsB := run()
			if !bytes.Equal(blobA, blobB) {
				t.Errorf("identical-seed %s results differ:\n  A: %s\n  B: %s", fidelity, blobA, blobB)
			}
			if !reflect.DeepEqual(eventsA, eventsB) {
				t.Errorf("identical-seed %s event streams differ: %d vs %d events",
					fidelity, len(eventsA), len(eventsB))
			}
		})
	}
}

// TestSeededTraceIsByteIdentical records the same benchmark twice from
// the same seed and requires bit-equal trace files (header, frames and
// CRC32 framing included).
func TestSeededTraceIsByteIdentical(t *testing.T) {
	record := func() []byte {
		b := workload.MustByName("gcc")
		gen := workload.NewGenerator(b, 77, 0)
		var buf bytes.Buffer
		if err := trace.RecordBenchmark(&buf, b.Name, b.EffectiveCodeFootprint(), 50_000, gen.Next); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	a, b := record(), record()
	if !bytes.Equal(a, b) {
		t.Errorf("identical-seed traces differ: %d vs %d bytes", len(a), len(b))
	}
}
