package power

import (
	"testing"
	"testing/quick"

	"ampsched/internal/cache"
	"ampsched/internal/cpu"
)

func TestDefaultParamsPositive(t *testing.T) {
	for _, cfg := range []*cpu.Config{cpu.IntCoreConfig(), cpu.FPCoreConfig()} {
		p := DefaultParams(cfg)
		checks := map[string]float64{
			"Fetch": p.Fetch, "BPred": p.BPred, "Rename": p.Rename,
			"ROBWrite": p.ROBWrite, "ROBRead": p.ROBRead,
			"IntISQOp": p.IntISQOp, "FPISQOp": p.FPISQOp,
			"IntRegRead": p.IntRegRead, "FPRegWr": p.FPRegWr,
			"LSQOp": p.LSQOp, "L1Access": p.L1Access, "L2Access": p.L2Access,
			"MemAccess": p.MemAccess, "ClockPerCycle": p.ClockPerCycle,
			"StaticWatts": p.StaticWatts,
		}
		for name, v := range checks {
			if v <= 0 {
				t.Errorf("%s: %s = %g, want positive", cfg.Name, name, v)
			}
		}
		for k := cpu.UnitKind(0); k < cpu.NumUnitKinds; k++ {
			if p.UnitOp[k] <= 0 {
				t.Errorf("%s: unit %s energy %g", cfg.Name, k, p.UnitOp[k])
			}
		}
	}
}

func TestSizeAsymmetry(t *testing.T) {
	pInt := DefaultParams(cpu.IntCoreConfig())
	pFP := DefaultParams(cpu.FPCoreConfig())
	// The INT core's bigger integer register file costs more per
	// access; the FP core's bigger FP register file likewise.
	if pInt.IntRegRead <= pFP.IntRegRead {
		t.Error("INT core int-reg energy should exceed FP core's")
	}
	if pFP.FPRegRead <= pInt.FPRegRead {
		t.Error("FP core fp-reg energy should exceed INT core's")
	}
	// Strong (pipelined) FP units burn more per op than weak ones.
	if pFP.UnitOp[cpu.UFPALU] <= pInt.UnitOp[cpu.UFPALU] {
		t.Error("strong FPALU should cost more energy per op")
	}
	if pInt.UnitOp[cpu.UIntALU] <= pFP.UnitOp[cpu.UIntALU] {
		t.Error("strong IntALU should cost more energy per op")
	}
}

func TestDynamicEnergyMonotonic(t *testing.T) {
	m := NewModel(cpu.IntCoreConfig())
	var a cpu.Activity
	a.Renames = 100
	a.UnitOps[cpu.UIntALU] = 80
	base := m.DynamicEnergyNJ(a, CacheStats{})
	a.UnitOps[cpu.UFPMul] = 10
	more := m.DynamicEnergyNJ(a, CacheStats{})
	if more <= base {
		t.Fatal("adding ops did not increase energy")
	}
	withCaches := m.DynamicEnergyNJ(a, CacheStats{L1D: cache.Stats{Accesses: 50}})
	if withCaches <= more {
		t.Fatal("cache accesses did not increase energy")
	}
}

func TestStaticEnergyScalesWithCycles(t *testing.T) {
	m := NewModel(cpu.IntCoreConfig())
	e1 := m.StaticEnergyNJ(1000)
	e2 := m.StaticEnergyNJ(2000)
	if e1 <= 0 || e2 != 2*e1 {
		t.Fatalf("static energy not linear: %g, %g", e1, e2)
	}
}

func TestWattsRoundTrip(t *testing.T) {
	cfg := cpu.IntCoreConfig()
	m := NewModel(cfg)
	// StaticWatts over N cycles must convert back to StaticWatts.
	cycles := uint64(1_000_000)
	e := m.StaticEnergyNJ(cycles)
	w := m.Watts(e, cycles)
	if diff := w - m.Params().StaticWatts; diff > 1e-9 || diff < -1e-9 {
		t.Fatalf("watts round trip: %g vs %g", w, m.Params().StaticWatts)
	}
	if m.Watts(100, 0) != 0 {
		t.Fatal("zero-cycle watts not 0")
	}
}

func TestIPCPerWatt(t *testing.T) {
	m := NewModel(cpu.IntCoreConfig())
	v, err := m.IPCPerWatt(1000, 2000, 4000)
	if err != nil {
		t.Fatal(err)
	}
	if v <= 0 {
		t.Fatalf("IPC/Watt = %g", v)
	}
	if _, err := m.IPCPerWatt(10, 0, 100); err == nil {
		t.Fatal("zero cycles accepted")
	}
	if _, err := m.IPCPerWatt(10, 100, 0); err == nil {
		t.Fatal("zero energy accepted")
	}
}

func TestEnergyIncludesStatic(t *testing.T) {
	m := NewModel(cpu.IntCoreConfig())
	act := cpu.Activity{Cycles: 500, StallCycles: 500}
	total := m.EnergyNJ(act, CacheStats{})
	static := m.StaticEnergyNJ(1000)
	if total < static {
		t.Fatalf("total %g < static %g", total, static)
	}
}

func TestStalledCoreBurnsLeakageOnly(t *testing.T) {
	m := NewModel(cpu.IntCoreConfig())
	stalled := m.EnergyNJ(cpu.Activity{StallCycles: 1000}, CacheStats{})
	active := m.EnergyNJ(cpu.Activity{Cycles: 1000}, CacheStats{})
	if stalled >= active {
		t.Fatal("stalled cycles should be cheaper than active cycles (no clock energy)")
	}
	if stalled <= 0 {
		t.Fatal("stalled core must still leak")
	}
}

func TestSnapshotCaches(t *testing.T) {
	core := cpu.NewCore(cpu.IntCoreConfig())
	cs := SnapshotCaches(core)
	if cs.L1I.Accesses != 0 || cs.L1D.Accesses != 0 || cs.L2.Accesses != 0 {
		t.Fatal("fresh core has cache accesses")
	}
	core.Hierarchy().ReadData(0x1000)
	cs2 := SnapshotCaches(core)
	if cs2.L1D.Accesses != 1 {
		t.Fatal("snapshot missed access")
	}
	d := cs2.Sub(cs)
	if d.L1D.Accesses != 1 {
		t.Fatal("CacheStats.Sub wrong")
	}
}

func TestNewModelWithParamsNilPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("nil params accepted")
		}
	}()
	NewModelWithParams(cpu.IntCoreConfig(), nil)
}

func TestCustomParamsRespected(t *testing.T) {
	cfg := cpu.IntCoreConfig()
	p := DefaultParams(cfg)
	p.StaticWatts = 123
	m := NewModelWithParams(cfg, p)
	if m.Params().StaticWatts != 123 {
		t.Fatal("custom params ignored")
	}
}

func TestQuickDynamicEnergyNonNegative(t *testing.T) {
	m := NewModel(cpu.FPCoreConfig())
	f := func(renames, alu, l2 uint32) bool {
		var a cpu.Activity
		a.Renames = uint64(renames)
		a.UnitOps[cpu.UIntALU] = uint64(alu)
		cs := CacheStats{L2: cache.Stats{Accesses: uint64(l2)}}
		return m.DynamicEnergyNJ(a, cs) >= 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestQuickEnergyAdditive(t *testing.T) {
	// Energy of the sum of two activity deltas equals the sum of the
	// energies (the model is linear in events).
	m := NewModel(cpu.IntCoreConfig())
	f := func(r1, r2, o1, o2 uint16) bool {
		a1 := cpu.Activity{Renames: uint64(r1)}
		a1.UnitOps[cpu.UFPMul] = uint64(o1)
		a2 := cpu.Activity{Renames: uint64(r2)}
		a2.UnitOps[cpu.UFPMul] = uint64(o2)
		sum := cpu.Activity{Renames: uint64(r1) + uint64(r2)}
		sum.UnitOps[cpu.UFPMul] = uint64(o1) + uint64(o2)
		e := m.DynamicEnergyNJ(a1, CacheStats{}) + m.DynamicEnergyNJ(a2, CacheStats{})
		es := m.DynamicEnergyNJ(sum, CacheStats{})
		diff := e - es
		return diff < 1e-6 && diff > -1e-6
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
