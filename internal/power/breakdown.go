package power

import "ampsched/internal/cpu"

// Category labels one slice of a core's energy in a Breakdown.
type Category int

// Energy categories, Wattch-style.
const (
	CatFrontEnd Category = iota // fetch groups + branch predictor
	CatRenameROB
	CatIssueQueues
	CatRegFiles
	CatLSQ
	CatIntUnits
	CatFPUnits
	CatMemPorts
	CatL1Caches
	CatL2Cache
	CatMemory
	CatClock
	CatStatic
	NumCategories
)

var categoryNames = [NumCategories]string{
	"frontend", "rename+rob", "issue-queues", "regfiles", "lsq",
	"int-units", "fp-units", "mem-ports", "l1-caches", "l2-cache",
	"memory", "clock", "static",
}

// String returns the category's report label.
func (c Category) String() string {
	if int(c) < len(categoryNames) {
		return categoryNames[c]
	}
	return "unknown"
}

// Breakdown is a core's energy split by category, in nanojoules.
type Breakdown [NumCategories]float64

// Total returns the summed energy.
func (b *Breakdown) Total() float64 {
	t := 0.0
	for _, v := range b {
		t += v
	}
	return t
}

// Share returns category c's fraction of the total (0 if empty).
func (b *Breakdown) Share(c Category) float64 {
	t := b.Total()
	if t == 0 {
		return 0
	}
	return b[c] / t
}

// BreakdownFor splits an interval's energy by category. The sum of
// the categories equals EnergyNJ for the same inputs exactly (both
// walk the same terms).
func (m *Model) BreakdownFor(act cpu.Activity, cs CacheStats) Breakdown {
	p := m.params
	var b Breakdown
	b[CatFrontEnd] = float64(act.FetchGroups)*p.Fetch + float64(act.BPredOps)*p.BPred
	b[CatRenameROB] = float64(act.Renames)*p.Rename +
		float64(act.ROBWrites)*p.ROBWrite + float64(act.ROBReads)*p.ROBRead
	b[CatIssueQueues] = float64(act.IntISQWrites+act.IntISQIssues)*p.IntISQOp +
		float64(act.FPISQWrites+act.FPISQIssues)*p.FPISQOp
	b[CatRegFiles] = float64(act.IntRegReads)*p.IntRegRead +
		float64(act.IntRegWrites)*p.IntRegWr +
		float64(act.FPRegReads)*p.FPRegRead +
		float64(act.FPRegWrites)*p.FPRegWr
	b[CatLSQ] = float64(act.LSQWrites+act.LSQSearches) * p.LSQOp
	for k := cpu.UIntALU; k <= cpu.UIntDiv; k++ {
		b[CatIntUnits] += float64(act.UnitOps[k]) * p.UnitOp[k]
	}
	for k := cpu.UFPALU; k <= cpu.UFPDiv; k++ {
		b[CatFPUnits] += float64(act.UnitOps[k]) * p.UnitOp[k]
	}
	b[CatMemPorts] = float64(act.UnitOps[cpu.UMemPort]) * p.UnitOp[cpu.UMemPort]
	b[CatL1Caches] = float64(cs.L1I.Accesses+cs.L1D.Accesses) * p.L1Access
	b[CatL2Cache] = float64(cs.L2.Accesses) * p.L2Access
	b[CatMemory] = float64(cs.L2.Misses+cs.L2.Writebacks) * p.MemAccess
	b[CatClock] = float64(act.Cycles) * p.ClockPerCycle
	b[CatStatic] = m.StaticEnergyNJ(act.Cycles + act.StallCycles)
	return b
}
