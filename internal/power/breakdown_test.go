package power

import (
	"testing"
	"testing/quick"

	"ampsched/internal/cache"
	"ampsched/internal/cpu"
	"ampsched/internal/rng"
	"ampsched/internal/workload"
)

func randomActivity(seed uint64) (cpu.Activity, CacheStats) {
	r := rng.New(seed)
	var a cpu.Activity
	a.Cycles = r.Uint64n(100_000)
	a.StallCycles = r.Uint64n(10_000)
	a.FetchGroups = r.Uint64n(50_000)
	a.BPredOps = r.Uint64n(20_000)
	a.Renames = r.Uint64n(100_000)
	a.ROBWrites = a.Renames
	a.ROBReads = r.Uint64n(100_000)
	a.IntISQWrites = r.Uint64n(50_000)
	a.FPISQWrites = r.Uint64n(50_000)
	a.IntISQIssues = r.Uint64n(50_000)
	a.FPISQIssues = r.Uint64n(50_000)
	a.IntRegReads = r.Uint64n(100_000)
	a.IntRegWrites = r.Uint64n(50_000)
	a.FPRegReads = r.Uint64n(100_000)
	a.FPRegWrites = r.Uint64n(50_000)
	a.LSQWrites = r.Uint64n(30_000)
	a.LSQSearches = r.Uint64n(30_000)
	for k := range a.UnitOps {
		a.UnitOps[k] = r.Uint64n(40_000)
	}
	cs := CacheStats{
		L1I: cache.Stats{Accesses: r.Uint64n(50_000), Misses: r.Uint64n(5_000)},
		L1D: cache.Stats{Accesses: r.Uint64n(50_000), Misses: r.Uint64n(5_000)},
		L2:  cache.Stats{Accesses: r.Uint64n(10_000), Misses: r.Uint64n(2_000), Writebacks: r.Uint64n(1_000)},
	}
	return a, cs
}

func TestBreakdownSumsToEnergy(t *testing.T) {
	for _, cfg := range []*cpu.Config{cpu.IntCoreConfig(), cpu.FPCoreConfig()} {
		m := NewModel(cfg)
		f := func(seed uint64) bool {
			a, cs := randomActivity(seed)
			bd := m.BreakdownFor(a, cs)
			total := m.EnergyNJ(a, cs)
			diff := bd.Total() - total
			return diff < 1e-6 && diff > -1e-6
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
			t.Fatalf("%s: %v", cfg.Name, err)
		}
	}
}

func TestBreakdownSharesSumToOne(t *testing.T) {
	m := NewModel(cpu.IntCoreConfig())
	a, cs := randomActivity(7)
	bd := m.BreakdownFor(a, cs)
	sum := 0.0
	for c := Category(0); c < NumCategories; c++ {
		s := bd.Share(c)
		if s < 0 || s > 1 {
			t.Fatalf("share %s = %g", c, s)
		}
		sum += s
	}
	if sum < 0.999 || sum > 1.001 {
		t.Fatalf("shares sum to %g", sum)
	}
}

func TestBreakdownEmptyIsZero(t *testing.T) {
	var bd Breakdown
	if bd.Total() != 0 || bd.Share(CatClock) != 0 {
		t.Fatal("empty breakdown nonzero")
	}
}

func TestCategoryNames(t *testing.T) {
	seen := map[string]bool{}
	for c := Category(0); c < NumCategories; c++ {
		n := c.String()
		if n == "" || n == "unknown" || seen[n] {
			t.Fatalf("bad category name %q", n)
		}
		seen[n] = true
	}
	if Category(99).String() != "unknown" {
		t.Fatal("out-of-range category name")
	}
}

func TestBreakdownFPWorkloadUsesFPUnits(t *testing.T) {
	// A real FP-heavy run on the FP core must spend visibly more in
	// the FP units than an INT-heavy run does.
	cfg := cpu.FPCoreConfig()
	m := NewModel(cfg)
	run := func(bench string) Breakdown {
		b := workload.MustByName(bench)
		core := cpu.NewCore(cfg)
		gen := workload.NewGenerator(b, 1, 0)
		arch := &cpu.ThreadArch{CodeSize: b.EffectiveCodeFootprint()}
		core.Bind(gen, arch)
		for cycle := uint64(0); arch.Committed < 30_000; cycle++ {
			core.Step(cycle)
		}
		return m.BreakdownFor(core.Activity(), SnapshotCaches(core))
	}
	fp := run("fpstress")
	in := run("intstress")
	if fp.Share(CatFPUnits) <= in.Share(CatFPUnits) {
		t.Fatalf("fpstress FP-unit share %.3f <= intstress %.3f",
			fp.Share(CatFPUnits), in.Share(CatFPUnits))
	}
	if in.Share(CatIntUnits) <= fp.Share(CatIntUnits) {
		t.Fatalf("intstress int-unit share %.3f <= fpstress %.3f",
			in.Share(CatIntUnits), fp.Share(CatIntUnits))
	}
}
