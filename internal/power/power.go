// Package power converts the core model's activity ledger into energy
// and average power, standing in for Wattch + CACTI (§IV).
//
// The model follows Wattch's structure: every microarchitectural event
// costs a fixed dynamic energy derived from the size of the structure
// it touches (CACTI-style size scaling), and every structure leaks a
// static power proportional to its size whether the core is active or
// frozen. Absolute joules are uncalibrated — the paper's metric is
// IPC/Watt *ratios*, which depend only on how energy scales with
// activity and structure size, and that scaling is preserved.
package power

import (
	"fmt"
	"math"

	"ampsched/internal/cache"
	"ampsched/internal/cpu"
)

// EnergyParams are the per-event dynamic energies (nanojoules) and
// per-structure static powers (watts) for one core. Use DefaultParams
// to derive them from a core configuration.
type EnergyParams struct {
	// Dynamic energy per event, nJ.
	Fetch      float64 // per fetch group (IL1 array access is separate)
	BPred      float64
	Rename     float64
	ROBWrite   float64
	ROBRead    float64
	IntISQOp   float64 // insertion or wakeup/select
	FPISQOp    float64
	IntRegRead float64
	IntRegWr   float64
	FPRegRead  float64
	FPRegWr    float64
	LSQOp      float64
	UnitOp     [cpu.NumUnitKinds]float64

	L1Access  float64
	L2Access  float64
	MemAccess float64

	// ClockPerCycle is the clock-tree energy per active cycle, nJ.
	ClockPerCycle float64

	// StaticWatts is the total leakage of the core (applies to active
	// and stalled cycles alike).
	//ampvet:unit watts
	StaticWatts float64
}

// sizeScale returns sqrt(n/ref): CACTI-like sub-linear growth of
// per-access energy with structure size.
func sizeScale(n, ref int) float64 {
	if n <= 0 || ref <= 0 {
		return 1
	}
	return math.Sqrt(float64(n) / float64(ref))
}

// unitEnergy is the per-operation energy of a strong (pipelined,
// full-performance) unit of each kind, nJ.
var unitEnergy = [cpu.NumUnitKinds]float64{
	cpu.UIntALU:  0.06,
	cpu.UIntMul:  0.22,
	cpu.UIntDiv:  0.45,
	cpu.UFPALU:   0.18,
	cpu.UFPMul:   0.26,
	cpu.UFPDiv:   0.55,
	cpu.UMemPort: 0.06,
}

// unitStaticWatts is the leakage of one strong unit instance of each
// kind, watts.
var unitStaticWatts = [cpu.NumUnitKinds]float64{
	cpu.UIntALU:  0.08,
	cpu.UIntMul:  0.12,
	cpu.UIntDiv:  0.10,
	cpu.UFPALU:   0.16,
	cpu.UFPMul:   0.18,
	cpu.UFPDiv:   0.16,
	cpu.UMemPort: 0.05,
}

// weakUnitFactor discounts energy and leakage of non-pipelined (weak,
// smaller) unit implementations relative to the strong ones.
const weakUnitFactor = 0.55

// DefaultParams derives the energy parameters for cfg, scaling each
// structure's per-access energy and leakage by its configured size.
func DefaultParams(cfg *cpu.Config) *EnergyParams {
	p := &EnergyParams{
		Fetch:      0.04,
		BPred:      0.02 * sizeScale(1<<cfg.BranchHistoryBits, 4096),
		Rename:     0.03,
		ROBWrite:   0.04 * sizeScale(cfg.ROBSize, 64),
		ROBRead:    0.03 * sizeScale(cfg.ROBSize, 64),
		IntISQOp:   0.04 * sizeScale(cfg.IntISQ, 16),
		FPISQOp:    0.04 * sizeScale(cfg.FPISQ, 16),
		IntRegRead: 0.015 * sizeScale(cfg.IntRegs, 64),
		IntRegWr:   0.02 * sizeScale(cfg.IntRegs, 64),
		FPRegRead:  0.015 * sizeScale(cfg.FPRegs, 64),
		FPRegWr:    0.02 * sizeScale(cfg.FPRegs, 64),
		LSQOp:      0.04 * sizeScale(cfg.LSQLoads+cfg.LSQStores, 32),

		L1Access:  0.10 * sizeScale(cfg.Caches.L1D.SizeBytes, 4<<10),
		L2Access:  0.50 * sizeScale(cfg.Caches.L2.SizeBytes, 128<<10),
		MemAccess: 4.0,

		ClockPerCycle: 0.25,
	}

	static := 0.60 // base: fetch/decode/misc logic
	static += 0.10 * sizeScale(cfg.ROBSize, 64)
	static += 0.06 * sizeScale(cfg.IntISQ, 16)
	static += 0.06 * sizeScale(cfg.FPISQ, 16)
	static += 0.08 * sizeScale(cfg.IntRegs, 64)
	static += 0.08 * sizeScale(cfg.FPRegs, 64)
	static += 0.05 * sizeScale(cfg.LSQLoads+cfg.LSQStores, 32)
	static += 0.15 * sizeScale(cfg.Caches.L1I.SizeBytes+cfg.Caches.L1D.SizeBytes, 8<<10)
	static += 0.45 * sizeScale(cfg.Caches.L2.SizeBytes, 128<<10)
	for k := cpu.UnitKind(0); k < cpu.NumUnitKinds; k++ {
		u := cfg.Units[k]
		e := unitEnergy[k]
		w := unitStaticWatts[k]
		if !u.Pipelined {
			e *= weakUnitFactor
			w *= weakUnitFactor
		}
		p.UnitOp[k] = e
		static += w * float64(u.Count)
	}
	p.StaticWatts = static
	return p
}

// CacheStats bundles the hierarchy counters for one accounting
// snapshot.
type CacheStats struct {
	L1I, L1D, L2 cache.Stats
}

// Sub returns s - o per level.
func (s CacheStats) Sub(o CacheStats) CacheStats {
	return CacheStats{
		L1I: s.L1I.Sub(o.L1I),
		L1D: s.L1D.Sub(o.L1D),
		L2:  s.L2.Sub(o.L2),
	}
}

// SnapshotCaches reads the hierarchy counters of a core.
func SnapshotCaches(c *cpu.Core) CacheStats {
	h := c.Hierarchy()
	return CacheStats{L1I: h.L1I.Stats(), L1D: h.L1D.Stats(), L2: h.L2.Stats()}
}

// SnapshotEngine is SnapshotCaches for any simulation engine: the
// counters come from the engine's EngineStats snapshot, which analytic
// engines synthesize from calibration rates.
func SnapshotEngine(e cpu.Engine) CacheStats {
	st := e.Stats()
	return CacheStats{L1I: st.L1I, L1D: st.L1D, L2: st.L2}
}

// Model computes energy for a specific core configuration.
type Model struct {
	cfg    *cpu.Config
	params *EnergyParams
}

// NewModel builds a power model for cfg with DefaultParams.
func NewModel(cfg *cpu.Config) *Model {
	return &Model{cfg: cfg, params: DefaultParams(cfg)}
}

// NewModelWithParams builds a power model with explicit parameters
// (for calibration studies and tests).
func NewModelWithParams(cfg *cpu.Config, p *EnergyParams) *Model {
	if p == nil {
		panic("power: nil params")
	}
	return &Model{cfg: cfg, params: p}
}

// Params returns the model's energy parameters.
func (m *Model) Params() *EnergyParams { return m.params }

// DynamicEnergyNJ returns the dynamic energy, in nanojoules, of the
// given activity delta plus cache traffic delta.
//
//ampvet:unit nanojoules
func (m *Model) DynamicEnergyNJ(act cpu.Activity, cs CacheStats) float64 {
	p := m.params
	e := 0.0
	e += float64(act.FetchGroups) * p.Fetch
	e += float64(act.BPredOps) * p.BPred
	e += float64(act.Renames) * p.Rename
	e += float64(act.ROBWrites) * p.ROBWrite
	e += float64(act.ROBReads) * p.ROBRead
	e += float64(act.IntISQWrites+act.IntISQIssues) * p.IntISQOp
	e += float64(act.FPISQWrites+act.FPISQIssues) * p.FPISQOp
	e += float64(act.IntRegReads) * p.IntRegRead
	e += float64(act.IntRegWrites) * p.IntRegWr
	e += float64(act.FPRegReads) * p.FPRegRead
	e += float64(act.FPRegWrites) * p.FPRegWr
	e += float64(act.LSQWrites+act.LSQSearches) * p.LSQOp
	for k := cpu.UnitKind(0); k < cpu.NumUnitKinds; k++ {
		e += float64(act.UnitOps[k]) * p.UnitOp[k]
	}
	e += float64(act.Cycles) * p.ClockPerCycle

	e += float64(cs.L1I.Accesses+cs.L1D.Accesses) * p.L1Access
	e += float64(cs.L2.Accesses) * p.L2Access
	// L2 misses go to memory; writebacks also cost a memory transfer.
	e += float64(cs.L2.Misses+cs.L2.Writebacks) * p.MemAccess
	return e
}

// StaticEnergyNJ returns leakage energy over the given number of
// cycles (active plus stalled).
//
//ampvet:unit nanojoules
//ampvet:unit cycles cycles
func (m *Model) StaticEnergyNJ(cycles uint64) float64 {
	seconds := float64(cycles) / (m.cfg.FreqGHz * 1e9)
	return m.params.StaticWatts * seconds * 1e9
}

// EnergyNJ returns total (dynamic + static) energy for an interval.
// The static portion covers act.Cycles + act.StallCycles.
//
//ampvet:unit nanojoules
func (m *Model) EnergyNJ(act cpu.Activity, cs CacheStats) float64 {
	return m.DynamicEnergyNJ(act, cs) + m.StaticEnergyNJ(act.Cycles+act.StallCycles)
}

// Watts converts an interval's energy (nJ) over cycles into average
// watts.
//
//ampvet:unit watts
//ampvet:unit energyNJ nanojoules
//ampvet:unit cycles cycles
func (m *Model) Watts(energyNJ float64, cycles uint64) float64 {
	if cycles == 0 {
		return 0
	}
	seconds := float64(cycles) / (m.cfg.FreqGHz * 1e9)
	return energyNJ * 1e-9 / seconds
}

// IPCPerWatt computes the paper's metric for an interval: committed
// instructions per cycle divided by average watts.
//
//ampvet:unit committed instructions
//ampvet:unit cycles cycles
//ampvet:unit energyNJ nanojoules
func (m *Model) IPCPerWatt(committed, cycles uint64, energyNJ float64) (float64, error) {
	if cycles == 0 {
		return 0, fmt.Errorf("power: zero-cycle interval")
	}
	w := m.Watts(energyNJ, cycles)
	if w <= 0 {
		return 0, fmt.Errorf("power: non-positive watts %g", w)
	}
	ipc := float64(committed) / float64(cycles)
	return ipc / w, nil
}
