// Package cache models the on-chip memory hierarchy of each core: a
// 4 KB instruction L1, a 4 KB data L1 and a 128 KB unified L2 backed
// by a fixed-latency main memory (paper Table I).
//
// Each cache is set-associative with true-LRU replacement and a
// write-allocate, write-back policy. The model is functional at line
// granularity — it tracks which lines are resident, so thread swaps
// naturally pay cold-start misses on the destination core (§VI-C's
// "warming the caches" overhead) without any special-case modeling.
package cache

import "fmt"

// Config describes one cache level.
type Config struct {
	Name       string
	SizeBytes  int
	LineBytes  int
	Ways       int
	HitLatency int // cycles for a hit at this level
}

// Validate reports the first problem with the configuration.
func (c *Config) Validate() error {
	if c.SizeBytes <= 0 || c.LineBytes <= 0 || c.Ways <= 0 {
		return fmt.Errorf("cache %s: non-positive geometry %+v", c.Name, *c)
	}
	if c.SizeBytes%(c.LineBytes*c.Ways) != 0 {
		return fmt.Errorf("cache %s: size %d not divisible by line*ways %d",
			c.Name, c.SizeBytes, c.LineBytes*c.Ways)
	}
	sets := c.SizeBytes / (c.LineBytes * c.Ways)
	if sets&(sets-1) != 0 {
		return fmt.Errorf("cache %s: set count %d not a power of two", c.Name, sets)
	}
	if c.LineBytes&(c.LineBytes-1) != 0 {
		return fmt.Errorf("cache %s: line size %d not a power of two", c.Name, c.LineBytes)
	}
	if c.HitLatency <= 0 {
		return fmt.Errorf("cache %s: non-positive hit latency %d", c.Name, c.HitLatency)
	}
	return nil
}

// Stats are monotonic access counters; callers snapshot and diff them
// for per-interval accounting.
type Stats struct {
	Accesses   uint64
	Misses     uint64
	Writebacks uint64
}

// MissRate returns misses/accesses, or 0 for an untouched cache.
func (s Stats) MissRate() float64 {
	if s.Accesses == 0 {
		return 0
	}
	return float64(s.Misses) / float64(s.Accesses)
}

// Sub returns s - o component-wise (for interval deltas).
func (s Stats) Sub(o Stats) Stats {
	return Stats{
		Accesses:   s.Accesses - o.Accesses,
		Misses:     s.Misses - o.Misses,
		Writebacks: s.Writebacks - o.Writebacks,
	}
}

// Add returns s + o component-wise (for merging ledgers).
func (s Stats) Add(o Stats) Stats {
	return Stats{
		Accesses:   s.Accesses + o.Accesses,
		Misses:     s.Misses + o.Misses,
		Writebacks: s.Writebacks + o.Writebacks,
	}
}

type line struct {
	tag   uint64
	lru   uint64 // last-use stamp
	valid bool
	dirty bool
}

// Cache is one set-associative cache level.
type Cache struct {
	cfg       Config
	sets      int
	ways      int
	lineShift uint
	setMask   uint64
	lines     []line // sets*ways, way-major within a set
	stamp     uint64
	stats     Stats
}

// New constructs a cache from cfg, panicking on invalid geometry
// (configurations are static program data, not user input).
func New(cfg Config) *Cache {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	sets := cfg.SizeBytes / (cfg.LineBytes * cfg.Ways)
	shift := uint(0)
	for 1<<shift < cfg.LineBytes {
		shift++
	}
	return &Cache{
		cfg:       cfg,
		sets:      sets,
		ways:      cfg.Ways,
		lineShift: shift,
		setMask:   uint64(sets - 1),
		lines:     make([]line, sets*cfg.Ways),
	}
}

// Config returns the cache's configuration.
func (c *Cache) Config() Config { return c.cfg }

// Stats returns the monotonic counters.
func (c *Cache) Stats() Stats { return c.stats }

// Sets returns the number of sets.
func (c *Cache) Sets() int { return c.sets }

// Access looks up addr, allocating the line on a miss. It returns
// true on a hit. write marks the line dirty; evicting a dirty line
// counts a writeback.
func (c *Cache) Access(addr uint64, write bool) bool {
	c.stats.Accesses++
	c.stamp++
	lineAddr := addr >> c.lineShift
	set := int(lineAddr & c.setMask)
	tag := lineAddr >> 0 // full line address as tag (simple, exact)
	base := set * c.ways

	victim := base
	oldest := ^uint64(0)
	for i := base; i < base+c.ways; i++ {
		l := &c.lines[i]
		if l.valid && l.tag == tag {
			l.lru = c.stamp
			if write {
				l.dirty = true
			}
			return true
		}
		if !l.valid {
			victim = i
			oldest = 0
		} else if l.lru < oldest {
			victim = i
			oldest = l.lru
		}
	}

	c.stats.Misses++
	v := &c.lines[victim]
	if v.valid && v.dirty {
		c.stats.Writebacks++
	}
	*v = line{tag: tag, lru: c.stamp, valid: true, dirty: write}
	return false
}

// Install brings addr's line into the cache without touching the
// demand statistics — the prefetch fill path. It returns true if the
// line was already resident. LRU state is updated (a prefetched line
// is "recently used").
func (c *Cache) Install(addr uint64) bool {
	c.stamp++
	lineAddr := addr >> c.lineShift
	set := int(lineAddr & c.setMask)
	base := set * c.ways

	victim := base
	oldest := ^uint64(0)
	for i := base; i < base+c.ways; i++ {
		l := &c.lines[i]
		if l.valid && l.tag == lineAddr {
			l.lru = c.stamp
			return true
		}
		if !l.valid {
			victim = i
			oldest = 0
		} else if l.lru < oldest {
			victim = i
			oldest = l.lru
		}
	}
	v := &c.lines[victim]
	if v.valid && v.dirty {
		c.stats.Writebacks++
	}
	*v = line{tag: lineAddr, lru: c.stamp, valid: true}
	return false
}

// Contains reports whether addr's line is resident without affecting
// LRU state or statistics. Intended for tests and invariant checks.
func (c *Cache) Contains(addr uint64) bool {
	lineAddr := addr >> c.lineShift
	set := int(lineAddr & c.setMask)
	base := set * c.ways
	for i := base; i < base+c.ways; i++ {
		if c.lines[i].valid && c.lines[i].tag == lineAddr {
			return true
		}
	}
	return false
}

// Invalidate clears all lines (and forgets dirtiness) without touching
// the statistics counters.
func (c *Cache) Invalidate() {
	for i := range c.lines {
		c.lines[i] = line{}
	}
}

// Hierarchy is a core-private IL1/DL1 + unified L2 backed by memory.
type Hierarchy struct {
	L1I *Cache
	L1D *Cache
	L2  *Cache

	// MemLatency is the flat main-memory access latency in cycles.
	MemLatency int

	// NextLinePrefetch, when enabled, pulls the sequentially next
	// line into the L2 on every demand L2 access triggered by a data
	// read (a simple one-block-lookahead prefetcher; SESC-era
	// hierarchies offered the same knob). Prefetches are counted in
	// PrefetchIssued and do not affect the demand access's latency.
	NextLinePrefetch bool
	// PrefetchIssued counts prefetches sent to the L2.
	PrefetchIssued uint64
}

// HierarchyConfig bundles the per-level configurations.
type HierarchyConfig struct {
	L1I, L1D, L2 Config
	MemLatency   int
	// NextLinePrefetch enables the L2 one-block-lookahead prefetcher.
	NextLinePrefetch bool
}

// NewHierarchy builds the three levels.
func NewHierarchy(cfg HierarchyConfig) *Hierarchy {
	return &Hierarchy{
		L1I:              New(cfg.L1I),
		L1D:              New(cfg.L1D),
		L2:               New(cfg.L2),
		MemLatency:       cfg.MemLatency,
		NextLinePrefetch: cfg.NextLinePrefetch,
	}
}

// ReadData returns the load-to-use latency for a data read at addr,
// walking L1D -> L2 -> memory.
func (h *Hierarchy) ReadData(addr uint64) int {
	lat := h.L1D.Config().HitLatency
	if h.L1D.Access(addr, false) {
		return lat
	}
	lat += h.L2.Config().HitLatency
	hit := h.L2.Access(addr, false)
	if h.NextLinePrefetch {
		// Fill the next line through the stats-neutral path so demand
		// miss rates stay meaningful.
		if !h.L2.Install(addr + uint64(h.L2.Config().LineBytes)) {
			h.PrefetchIssued++
		}
	}
	if hit {
		return lat
	}
	return lat + h.MemLatency
}

// WriteData performs a data write at addr and returns the latency the
// store pipeline observes (stores retire from a write buffer, so the
// returned latency is only used for occupancy/energy accounting).
func (h *Hierarchy) WriteData(addr uint64) int {
	lat := h.L1D.Config().HitLatency
	if h.L1D.Access(addr, true) {
		return lat
	}
	lat += h.L2.Config().HitLatency
	if h.L2.Access(addr, true) {
		return lat
	}
	return lat + h.MemLatency
}

// FetchInstr returns the latency of an instruction fetch at pc,
// walking L1I -> L2 -> memory.
func (h *Hierarchy) FetchInstr(pc uint64) int {
	lat := h.L1I.Config().HitLatency
	if h.L1I.Access(pc, false) {
		return lat
	}
	lat += h.L2.Config().HitLatency
	if h.L2.Access(pc, false) {
		return lat
	}
	return lat + h.MemLatency
}

// InvalidateAll clears every level (used by tests; thread swaps do NOT
// invalidate — the whole point is that a migrated thread finds cold
// caches on the destination core while its old lines decay naturally).
func (h *Hierarchy) InvalidateAll() {
	h.L1I.Invalidate()
	h.L1D.Invalidate()
	h.L2.Invalidate()
}
