package cache

import (
	"testing"

	"ampsched/internal/rng"
)

func hierWithPrefetch(on bool) *Hierarchy {
	return NewHierarchy(HierarchyConfig{
		L1I:              Config{Name: "IL1", SizeBytes: 4 << 10, LineBytes: 32, Ways: 2, HitLatency: 1},
		L1D:              Config{Name: "DL1", SizeBytes: 1 << 10, LineBytes: 32, Ways: 2, HitLatency: 1},
		L2:               Config{Name: "L2", SizeBytes: 64 << 10, LineBytes: 64, Ways: 8, HitLatency: 10},
		MemLatency:       100,
		NextLinePrefetch: on,
	})
}

func TestPrefetchHidesSequentialMisses(t *testing.T) {
	// Stream reads through a large footprint: with next-line
	// prefetching the L2 miss count for demand reads must drop well
	// below the no-prefetch case.
	sum := func(on bool) (totalLat int, l2Misses uint64, issued uint64) {
		h := hierWithPrefetch(on)
		for pass := 0; pass < 1; pass++ {
			for a := uint64(0); a < 512<<10; a += 32 {
				totalLat += h.ReadData(a)
			}
		}
		return totalLat, h.L2.Stats().Misses, h.PrefetchIssued
	}
	latOff, missOff, issuedOff := sum(false)
	latOn, missOn, issuedOn := sum(true)
	if issuedOff != 0 {
		t.Fatalf("prefetches issued while disabled: %d", issuedOff)
	}
	if issuedOn == 0 {
		t.Fatal("prefetcher never fired")
	}
	// Demand misses: every second 64B line is already resident.
	if missOn*3 > missOff*2 {
		t.Fatalf("prefetch did not reduce L2 misses: %d vs %d", missOn, missOff)
	}
	if latOn >= latOff {
		t.Fatalf("prefetch did not reduce total latency: %d vs %d", latOn, latOff)
	}
}

func TestPrefetchNeutralOnRandom(t *testing.T) {
	// Random accesses over a footprint far beyond the L2: prefetching
	// cannot help (and must not corrupt behavior).
	run := func(on bool) uint64 {
		h := hierWithPrefetch(on)
		r := rng.New(5)
		var lat uint64
		for i := 0; i < 20_000; i++ {
			lat += uint64(h.ReadData(r.Uint64n(64<<20) &^ 7))
		}
		return lat
	}
	off := run(false)
	on := run(true)
	// Within 5%: prefetching random streams is near-useless but must
	// not be catastrophic (it can only displace L2 lines).
	if on > off+off/20 || off > on+on/20 {
		t.Fatalf("prefetch distorted random-access latency: %d vs %d", on, off)
	}
}

func TestPrefetchDoesNotAffectWritesOrFetch(t *testing.T) {
	h := hierWithPrefetch(true)
	h.WriteData(0x123456)
	h.FetchInstr(0x777000)
	if h.PrefetchIssued != 0 {
		t.Fatalf("prefetcher fired on write/fetch paths: %d", h.PrefetchIssued)
	}
}
