package cache

import (
	"testing"
	"testing/quick"

	"ampsched/internal/rng"
)

func smallConfig() Config {
	return Config{Name: "t", SizeBytes: 1024, LineBytes: 32, Ways: 2, HitLatency: 1}
}

func TestConfigValidate(t *testing.T) {
	good := smallConfig()
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	cases := []func(*Config){
		func(c *Config) { c.SizeBytes = 0 },
		func(c *Config) { c.LineBytes = 0 },
		func(c *Config) { c.Ways = 0 },
		func(c *Config) { c.HitLatency = 0 },
		func(c *Config) { c.LineBytes = 48 },             // not power of two
		func(c *Config) { c.SizeBytes = 1000 },           // not divisible
		func(c *Config) { c.SizeBytes = 96; c.Ways = 1 }, // sets=3 not pow2
	}
	for i, mutate := range cases {
		c := smallConfig()
		mutate(&c)
		if err := c.Validate(); err == nil {
			t.Errorf("case %d: invalid config accepted: %+v", i, c)
		}
	}
}

func TestNewPanicsOnInvalid(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("New with invalid config did not panic")
		}
	}()
	New(Config{Name: "bad"})
}

func TestMissThenHit(t *testing.T) {
	c := New(smallConfig())
	if c.Access(0x100, false) {
		t.Fatal("first access hit")
	}
	if !c.Access(0x100, false) {
		t.Fatal("second access missed")
	}
	if !c.Access(0x11f, false) {
		t.Fatal("same-line access missed")
	}
	if c.Access(0x120, false) {
		t.Fatal("next-line access hit")
	}
	st := c.Stats()
	if st.Accesses != 4 || st.Misses != 2 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestLRUEviction(t *testing.T) {
	// 2-way cache: fill one set with 2 lines, touch the first, insert
	// a third; the second (least recently used) must be evicted.
	c := New(smallConfig())
	sets := uint64(c.Sets())
	line := uint64(32)
	stride := sets * line // same set, different tags
	a, b, d := uint64(0), stride, 2*stride
	c.Access(a, false)
	c.Access(b, false)
	c.Access(a, false) // a is now MRU
	c.Access(d, false) // evicts b
	if !c.Contains(a) {
		t.Fatal("a evicted despite being MRU")
	}
	if c.Contains(b) {
		t.Fatal("b survived despite being LRU")
	}
	if !c.Contains(d) {
		t.Fatal("d not inserted")
	}
}

func TestWritebackCounting(t *testing.T) {
	c := New(smallConfig())
	sets := uint64(c.Sets())
	stride := sets * 32
	c.Access(0, true)        // dirty
	c.Access(stride, false)  // clean
	c.Access(2*stride, true) // evicts the dirty line 0 (LRU)
	st := c.Stats()
	if st.Writebacks != 1 {
		t.Fatalf("writebacks = %d, want 1", st.Writebacks)
	}
}

func TestInvalidate(t *testing.T) {
	c := New(smallConfig())
	c.Access(0x40, false)
	if !c.Contains(0x40) {
		t.Fatal("line not resident")
	}
	c.Invalidate()
	if c.Contains(0x40) {
		t.Fatal("line survived Invalidate")
	}
	if c.Stats().Accesses != 1 {
		t.Fatal("Invalidate disturbed statistics")
	}
}

func TestContainsDoesNotPerturb(t *testing.T) {
	c := New(smallConfig())
	c.Access(0x40, false)
	before := c.Stats()
	for i := 0; i < 10; i++ {
		c.Contains(0x40)
		c.Contains(0x9999)
	}
	if c.Stats() != before {
		t.Fatal("Contains changed statistics")
	}
}

func TestStatsSub(t *testing.T) {
	a := Stats{Accesses: 10, Misses: 4, Writebacks: 2}
	b := Stats{Accesses: 6, Misses: 1, Writebacks: 1}
	got := a.Sub(b)
	if got != (Stats{Accesses: 4, Misses: 3, Writebacks: 1}) {
		t.Fatalf("Sub = %+v", got)
	}
}

func TestMissRate(t *testing.T) {
	if (Stats{}).MissRate() != 0 {
		t.Fatal("empty miss rate not 0")
	}
	if (Stats{Accesses: 4, Misses: 1}).MissRate() != 0.25 {
		t.Fatal("miss rate wrong")
	}
}

func TestWorkingSetResidency(t *testing.T) {
	// A working set half the cache size must stop missing after one
	// pass (compulsory misses only).
	c := New(Config{Name: "t", SizeBytes: 4096, LineBytes: 32, Ways: 2, HitLatency: 1})
	for pass := 0; pass < 3; pass++ {
		for a := uint64(0); a < 2048; a += 32 {
			c.Access(a, false)
		}
	}
	st := c.Stats()
	if st.Misses != 2048/32 {
		t.Fatalf("misses = %d, want %d compulsory misses", st.Misses, 2048/32)
	}
}

func TestThrashingWorkingSet(t *testing.T) {
	// A working set much larger than the cache streams: every new
	// line misses on every pass.
	c := New(Config{Name: "t", SizeBytes: 1024, LineBytes: 32, Ways: 2, HitLatency: 1})
	lines := uint64(256)
	for pass := 0; pass < 2; pass++ {
		for i := uint64(0); i < lines; i++ {
			c.Access(i*32, false)
		}
	}
	st := c.Stats()
	if st.Misses != 2*lines {
		t.Fatalf("misses = %d, want %d", st.Misses, 2*lines)
	}
}

func defaultHier() *Hierarchy {
	return NewHierarchy(HierarchyConfig{
		L1I:        Config{Name: "IL1", SizeBytes: 4 << 10, LineBytes: 32, Ways: 2, HitLatency: 1},
		L1D:        Config{Name: "DL1", SizeBytes: 4 << 10, LineBytes: 32, Ways: 2, HitLatency: 1},
		L2:         Config{Name: "L2", SizeBytes: 128 << 10, LineBytes: 64, Ways: 8, HitLatency: 10},
		MemLatency: 100,
	})
}

func TestHierarchyLatencies(t *testing.T) {
	h := defaultHier()
	// Cold: L1 miss + L2 miss + memory.
	if lat := h.ReadData(0x1000); lat != 1+10+100 {
		t.Fatalf("cold read latency = %d", lat)
	}
	// Warm L1.
	if lat := h.ReadData(0x1000); lat != 1 {
		t.Fatalf("warm read latency = %d", lat)
	}
	// L1 eviction but L2 hit: stream enough lines through L1.
	for a := uint64(0x10000); a < 0x10000+8<<10; a += 32 {
		h.ReadData(a)
	}
	if lat := h.ReadData(0x1000); lat != 1+10 {
		t.Fatalf("L2-hit latency = %d", lat)
	}
}

func TestHierarchyFetchInstr(t *testing.T) {
	h := defaultHier()
	if lat := h.FetchInstr(0x4000); lat != 111 {
		t.Fatalf("cold fetch latency = %d", lat)
	}
	if lat := h.FetchInstr(0x4000); lat != 1 {
		t.Fatalf("warm fetch latency = %d", lat)
	}
	// Instruction fetches must not touch the data L1.
	if h.L1D.Stats().Accesses != 0 {
		t.Fatal("FetchInstr touched DL1")
	}
}

func TestHierarchyWrite(t *testing.T) {
	h := defaultHier()
	h.WriteData(0x2000)
	if h.L1D.Stats().Accesses != 1 {
		t.Fatal("write did not access DL1")
	}
	if lat := h.WriteData(0x2000); lat != 1 {
		t.Fatalf("warm write latency = %d", lat)
	}
}

func TestHierarchyInvalidateAll(t *testing.T) {
	h := defaultHier()
	h.ReadData(0x3000)
	h.InvalidateAll()
	if h.L1D.Contains(0x3000) || h.L2.Contains(0x3000) {
		t.Fatal("InvalidateAll left lines")
	}
}

func TestQuickAccessThenContains(t *testing.T) {
	c := New(smallConfig())
	f := func(addr uint64) bool {
		c.Access(addr, false)
		return c.Contains(addr)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestQuickMissesNeverExceedAccesses(t *testing.T) {
	f := func(seed uint64, n uint16) bool {
		c := New(smallConfig())
		r := rng.New(seed)
		for i := 0; i < int(n); i++ {
			c.Access(r.Uint64n(1<<20), r.Bool(0.3))
		}
		st := c.Stats()
		return st.Misses <= st.Accesses && st.Writebacks <= st.Misses
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickOccupancyBounded(t *testing.T) {
	// The number of resident lines can never exceed the capacity.
	cfg := smallConfig()
	capacity := cfg.SizeBytes / cfg.LineBytes
	f := func(seed uint64) bool {
		c := New(cfg)
		r := rng.New(seed)
		addrs := map[uint64]bool{}
		for i := 0; i < 500; i++ {
			a := r.Uint64n(1 << 16)
			c.Access(a, false)
			addrs[a&^31] = true
		}
		resident := 0
		for a := range addrs {
			if c.Contains(a) {
				resident++
			}
		}
		return resident <= capacity
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}
