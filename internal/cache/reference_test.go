package cache

import (
	"testing"
	"testing/quick"

	"ampsched/internal/rng"
)

// refCache is an executable specification of a set-associative LRU
// cache, written with maps and linear scans for obviousness rather
// than speed. The production Cache must agree with it exactly.
type refCache struct {
	lineBytes uint64
	sets      uint64
	ways      int
	// per set: slice of line addresses in LRU order (front = LRU).
	data  map[uint64][]uint64
	dirty map[uint64]bool
}

func newRefCache(cfg Config) *refCache {
	return &refCache{
		lineBytes: uint64(cfg.LineBytes),
		sets:      uint64(cfg.SizeBytes / (cfg.LineBytes * cfg.Ways)),
		ways:      cfg.Ways,
		data:      map[uint64][]uint64{},
		dirty:     map[uint64]bool{},
	}
}

func (r *refCache) access(addr uint64, write bool) (hit, writeback bool) {
	lineAddr := addr / r.lineBytes
	set := lineAddr % r.sets
	lines := r.data[set]
	for i, l := range lines {
		if l == lineAddr {
			// Move to MRU position.
			lines = append(append(append([]uint64{}, lines[:i]...), lines[i+1:]...), lineAddr)
			r.data[set] = lines
			if write {
				r.dirty[lineAddr] = true
			}
			return true, false
		}
	}
	// Miss: evict LRU if full.
	if len(lines) == r.ways {
		victim := lines[0]
		lines = lines[1:]
		if r.dirty[victim] {
			writeback = true
		}
		delete(r.dirty, victim)
	}
	lines = append(lines, lineAddr)
	r.data[set] = lines
	if write {
		r.dirty[lineAddr] = true
	}
	return false, writeback
}

// TestCacheMatchesReferenceModel drives random access sequences
// through the production cache and the executable specification and
// demands identical hit/miss/writeback behavior on every access.
func TestCacheMatchesReferenceModel(t *testing.T) {
	cfgs := []Config{
		{Name: "a", SizeBytes: 1024, LineBytes: 32, Ways: 2, HitLatency: 1},
		{Name: "b", SizeBytes: 4096, LineBytes: 64, Ways: 4, HitLatency: 1},
		{Name: "c", SizeBytes: 512, LineBytes: 16, Ways: 1, HitLatency: 1}, // direct-mapped
		{Name: "d", SizeBytes: 2048, LineBytes: 32, Ways: 8, HitLatency: 1},
	}
	f := func(seed uint64) bool {
		r := rng.New(seed)
		cfg := cfgs[r.Intn(len(cfgs))]
		c := New(cfg)
		ref := newRefCache(cfg)
		// Skewed address distribution so hits actually happen.
		hot := r.Uint64n(1 << 14)
		for i := 0; i < 3000; i++ {
			var addr uint64
			if r.Bool(0.5) {
				addr = hot + r.Uint64n(512)
			} else {
				addr = r.Uint64n(1 << 16)
			}
			write := r.Bool(0.3)
			wbBefore := c.Stats().Writebacks
			hit := c.Access(addr, write)
			gotWB := c.Stats().Writebacks - wbBefore
			wantHit, wantWB := ref.access(addr, write)
			if hit != wantHit {
				t.Logf("seed %d access %d addr %#x: hit %v want %v", seed, i, addr, hit, wantHit)
				return false
			}
			if (gotWB == 1) != wantWB {
				t.Logf("seed %d access %d addr %#x: writeback %d want %v", seed, i, addr, gotWB, wantWB)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// TestInstallMatchesReferenceResidency checks the prefetch-fill path
// against the reference: after Install, the line is resident and MRU.
func TestInstallMatchesReferenceResidency(t *testing.T) {
	cfg := Config{Name: "i", SizeBytes: 1024, LineBytes: 32, Ways: 2, HitLatency: 1}
	c := New(cfg)
	ref := newRefCache(cfg)
	r := rng.New(9)
	for i := 0; i < 2000; i++ {
		addr := r.Uint64n(1 << 13)
		if r.Bool(0.3) {
			c.Install(addr)
			ref.access(addr, false) // Install behaves like a clean read fill
		} else {
			hit := c.Access(addr, false)
			wantHit, _ := ref.access(addr, false)
			if hit != wantHit {
				t.Fatalf("step %d addr %#x: hit %v want %v", i, addr, hit, wantHit)
			}
		}
	}
}
