package manycore

import (
	"testing"

	"ampsched/internal/cpu"
	"ampsched/internal/workload"
)

// quad returns a 2-INT + 2-FP core set.
func quad() []*cpu.Config {
	return []*cpu.Config{
		cpu.IntCoreConfig(), cpu.IntCoreConfig(),
		cpu.FPCoreConfig(), cpu.FPCoreConfig(),
	}
}

func benches(t *testing.T, names ...string) []*workload.Benchmark {
	t.Helper()
	out := make([]*workload.Benchmark, len(names))
	for i, n := range names {
		b, err := workload.ByName(n)
		if err != nil {
			t.Fatal(err)
		}
		out[i] = b
	}
	return out
}

func seeds(n int, base uint64) []uint64 {
	s := make([]uint64, n)
	for i := range s {
		s[i] = base + uint64(i)
	}
	return s
}

func TestNewSystemValidation(t *testing.T) {
	if _, err := NewSystem(quad()[:1], nil, nil, nil, Config{}); err == nil {
		t.Fatal("single core accepted")
	}
	if _, err := NewSystem(quad(), benches(t, "gcc"), seeds(4, 1), nil, Config{}); err == nil {
		t.Fatal("mismatched benchmark count accepted")
	}
}

func TestStaticRun(t *testing.T) {
	sys, err := NewSystem(quad(),
		benches(t, "intstress", "gcc", "fpstress", "equake"), seeds(4, 10),
		Static{}, Config{})
	if err != nil {
		t.Fatal(err)
	}
	res := sys.MustRun(60_000)
	if res.Reassigns != 0 {
		t.Fatalf("static reassigned %d times", res.Reassigns)
	}
	if len(res.Threads) != 4 {
		t.Fatalf("thread results: %d", len(res.Threads))
	}
	for i, tr := range res.Threads {
		if tr.IPCPerWatt <= 0 {
			t.Fatalf("thread %d IPC/Watt %g", i, tr.IPCPerWatt)
		}
	}
	if res.GeomeanIPCW() <= 0 {
		t.Fatal("geomean non-positive")
	}
}

func TestRotatePermutes(t *testing.T) {
	sys, err := NewSystem(quad(),
		benches(t, "intstress", "gcc", "fpstress", "equake"), seeds(4, 20),
		NewRotate(20_000), Config{ReassignOverheadCycles: 100})
	if err != nil {
		t.Fatal(err)
	}
	res := sys.MustRun(80_000)
	if res.Reassigns == 0 {
		t.Fatal("rotate never fired")
	}
	// The binding is always a valid permutation.
	seen := map[int]bool{}
	for c := 0; c < sys.NumCores(); c++ {
		th := sys.ThreadOnCore(c)
		if seen[th] {
			t.Fatalf("thread %d bound twice", th)
		}
		seen[th] = true
		if sys.CoreOfThread(th) != c {
			t.Fatal("CoreOfThread inconsistent")
		}
	}
}

func TestRotateZeroPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("zero interval accepted")
		}
	}()
	NewRotate(0)
}

func TestRankConfigValidation(t *testing.T) {
	good := DefaultRankConfig()
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := DefaultRankConfig()
	bad.WindowSize = 0
	if err := bad.Validate(); err == nil {
		t.Fatal("zero window accepted")
	}
	bad = DefaultRankConfig()
	bad.HistoryDepth = 0
	if err := bad.Validate(); err == nil {
		t.Fatal("zero depth accepted")
	}
	bad = DefaultRankConfig()
	bad.MinScoreGap = -1
	if err := bad.Validate(); err == nil {
		t.Fatal("negative gap accepted")
	}
}

func TestRankFixesMisplacedQuad(t *testing.T) {
	// Deliberately inverted placement: FP-heavy threads on the INT
	// cores and INT-heavy on the FP cores. Rank must reassign so the
	// INT cores run the INT-heavy threads.
	rank := NewRank(DefaultRankConfig())
	sys, err := NewSystem(quad(),
		benches(t, "fpstress", "equake", "intstress", "bitcount"), seeds(4, 30),
		rank, Config{})
	if err != nil {
		t.Fatal(err)
	}
	res := sys.MustRun(150_000)
	if res.Reassigns == 0 {
		t.Fatal("rank never reassigned a fully inverted placement")
	}
	// Threads 2 (intstress) and 3 (bitcount) must own cores 0 and 1.
	onInt := map[int]bool{sys.ThreadOnCore(0): true, sys.ThreadOnCore(1): true}
	if !onInt[2] || !onInt[3] {
		t.Fatalf("INT cores run threads %v, want {2,3}", onInt)
	}
}

func TestRankStableWhenWellPlaced(t *testing.T) {
	rank := NewRank(DefaultRankConfig())
	sys, err := NewSystem(quad(),
		benches(t, "intstress", "bitcount", "fpstress", "equake"), seeds(4, 40),
		rank, Config{})
	if err != nil {
		t.Fatal(err)
	}
	res := sys.MustRun(150_000)
	if res.Reassigns != 0 {
		t.Fatalf("rank churned %d times on a well-placed quad", res.Reassigns)
	}
}

func TestRankBeatsStaticOnInvertedQuad(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	names := []string{"fpstress", "equake", "intstress", "bitcount"}
	run := func(s Scheduler) Result {
		sys, err := NewSystem(quad(), benches(t, names...), seeds(4, 50), s, Config{})
		if err != nil {
			t.Fatal(err)
		}
		return sys.MustRun(250_000)
	}
	static := run(Static{})
	rank := run(NewRank(DefaultRankConfig()))
	if rank.GeomeanIPCW() <= static.GeomeanIPCW()*1.05 {
		t.Fatalf("rank (%.4f) not clearly above misplaced static (%.4f)",
			rank.GeomeanIPCW(), static.GeomeanIPCW())
	}
}

func TestRankRejectsInvalidPermutationGracefully(t *testing.T) {
	// A scheduler returning garbage must be ignored, not crash.
	bad := schedulerFunc(func(v View) []int { return []int{0, 0, 1, 2} })
	sys, err := NewSystem(quad(),
		benches(t, "gcc", "mcf", "equake", "apsi"), seeds(4, 60),
		bad, Config{})
	if err != nil {
		t.Fatal(err)
	}
	res := sys.MustRun(30_000)
	if res.Reassigns != 0 {
		t.Fatal("invalid permutation applied")
	}
}

// schedulerFunc adapts a func to Scheduler.
type schedulerFunc func(v View) []int

func (schedulerFunc) Name() string        { return "func" }
func (schedulerFunc) Reset(View)          {}
func (f schedulerFunc) Tick(v View) []int { return f(v) }

func TestDeterministicRuns(t *testing.T) {
	run := func() Result {
		sys, err := NewSystem(quad(),
			benches(t, "gcc", "apsi", "fpstress", "CRC32"), seeds(4, 70),
			NewRank(DefaultRankConfig()), Config{})
		if err != nil {
			t.Fatal(err)
		}
		return sys.MustRun(80_000)
	}
	a, b := run(), run()
	if a.Cycles != b.Cycles || a.Reassigns != b.Reassigns {
		t.Fatalf("nondeterministic: %d/%d vs %d/%d", a.Cycles, a.Reassigns, b.Cycles, b.Reassigns)
	}
	for i := range a.Threads {
		if a.Threads[i].EnergyNJ != b.Threads[i].EnergyNJ {
			t.Fatalf("thread %d energy differs", i)
		}
	}
}

func TestEightCoreScales(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	cfgs := []*cpu.Config{
		cpu.IntCoreConfig(), cpu.IntCoreConfig(), cpu.IntCoreConfig(), cpu.IntCoreConfig(),
		cpu.FPCoreConfig(), cpu.FPCoreConfig(), cpu.FPCoreConfig(), cpu.FPCoreConfig(),
	}
	names := []string{"fpstress", "equake", "swim", "ammp", "intstress", "bitcount", "sha", "CRC32"}
	rank := NewRank(DefaultRankConfig())
	sys, err := NewSystem(cfgs, benches(t, names...), seeds(8, 80), rank, Config{})
	if err != nil {
		t.Fatal(err)
	}
	res := sys.MustRun(100_000)
	if res.Reassigns == 0 {
		t.Fatal("rank never reassigned an 8-core inverted placement")
	}
	// All four INT cores must hold INT-flavored threads (4..7).
	for c := 0; c < 4; c++ {
		if sys.ThreadOnCore(c) < 4 {
			t.Fatalf("INT core %d still runs FP thread %d", c, sys.ThreadOnCore(c))
		}
	}
}
