package manycore

import (
	"testing"

	"ampsched/internal/amp"
	"ampsched/internal/cpu"
	"ampsched/internal/workload"
)

// quadCores returns the canonical 2-INT (pool 0) + 2-FP (pool 1)
// machine.
func quadCores() []CoreSpec {
	return []CoreSpec{
		{Config: cpu.IntCoreConfig(), Pool: 0},
		{Config: cpu.IntCoreConfig(), Pool: 0},
		{Config: cpu.FPCoreConfig(), Pool: 1},
		{Config: cpu.FPCoreConfig(), Pool: 1},
	}
}

// specs builds ThreadSpecs for the named benchmarks with consecutive
// seeds.
func specs(t *testing.T, base uint64, names ...string) []ThreadSpec {
	t.Helper()
	out := make([]ThreadSpec, len(names))
	for i, n := range names {
		b, err := workload.ByName(n)
		if err != nil {
			t.Fatal(err)
		}
		out[i] = ThreadSpec{Bench: b, Seed: base + uint64(i)}
	}
	return out
}

func TestNewValidation(t *testing.T) {
	ts := specs(t, 1, "gcc")
	if _, err := New(nil, ts, nil, Config{}); err == nil {
		t.Fatal("zero cores accepted")
	}
	if _, err := New(quadCores(), nil, nil, Config{}); err == nil {
		t.Fatal("zero threads accepted")
	}
	if _, err := New([]CoreSpec{{Config: nil}}, ts, nil, Config{}); err == nil {
		t.Fatal("nil core config accepted")
	}
	if _, err := New([]CoreSpec{{Config: cpu.IntCoreConfig(), Pool: MaxPools}}, ts, nil, Config{}); err == nil {
		t.Fatal("out-of-range pool accepted")
	}
	if _, err := New(quadCores(), []ThreadSpec{{Bench: nil}}, nil, Config{}); err == nil {
		t.Fatal("nil benchmark accepted")
	}
}

func TestStaticRun(t *testing.T) {
	sys, err := New(quadCores(),
		specs(t, 10, "intstress", "gcc", "fpstress", "equake"),
		Static{}, Config{})
	if err != nil {
		t.Fatal(err)
	}
	res := sys.MustRun(60_000)
	if res.Reassigns != 0 {
		t.Fatalf("static reassigned %d times", res.Reassigns)
	}
	if len(res.Threads) != 4 {
		t.Fatalf("thread results: %d", len(res.Threads))
	}
	for i, tr := range res.Threads {
		if tr.IPCPerWatt <= 0 {
			t.Fatalf("thread %d IPC/Watt %g", i, tr.IPCPerWatt)
		}
	}
	if res.GeomeanIPCW() <= 0 {
		t.Fatal("geomean non-positive")
	}
	if res.WeightedIPCW() <= 0 {
		t.Fatal("weighted IPC/Watt non-positive")
	}
}

func TestInitialPlacementRespectsAffinity(t *testing.T) {
	ts := specs(t, 5, "gcc", "equake", "mcf")
	ts[0].Affinity = 1 << 1 // FP pool only
	sys, err := New(quadCores(), ts, nil, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if c := sys.CoreOfThread(0); c != 2 {
		t.Fatalf("FP-only thread placed on core %d, want 2", c)
	}
	// Greedy fill: threads 1 and 2 get cores 0 and 1.
	if sys.ThreadOnCore(0) != 1 || sys.ThreadOnCore(1) != 2 {
		t.Fatalf("greedy placement got %d,%d", sys.ThreadOnCore(0), sys.ThreadOnCore(1))
	}
}

func TestParkedThreadsArePowerGated(t *testing.T) {
	// 2 cores, 4 threads, no scheduler: the two surplus threads stay
	// parked, commit nothing, and draw no power.
	cores := quadCores()[:2]
	sys, err := New(cores, specs(t, 7, "gcc", "mcf", "equake", "apsi"), nil, Config{})
	if err != nil {
		t.Fatal(err)
	}
	res, err := sys.RunCycles(50_000)
	if err != nil {
		t.Fatal(err)
	}
	for i := 2; i < 4; i++ {
		if res.Threads[i].Committed != 0 || res.Threads[i].EnergyNJ != 0 {
			t.Fatalf("parked thread %d committed %d, energy %g",
				i, res.Threads[i].Committed, res.Threads[i].EnergyNJ)
		}
	}
	if res.WeightedIPCW() <= 0 {
		t.Fatal("bound threads produced nothing")
	}
	if res.GeomeanIPCW() != 0 {
		t.Fatal("geomean should be unusable with parked threads")
	}
}

func TestRotatePermutes(t *testing.T) {
	sys, err := New(quadCores(),
		specs(t, 20, "intstress", "gcc", "fpstress", "equake"),
		NewRotate(20_000), Config{ReassignOverheadCycles: 100})
	if err != nil {
		t.Fatal(err)
	}
	res := sys.MustRun(80_000)
	if res.Reassigns == 0 {
		t.Fatal("rotate never fired")
	}
	// The binding stays consistent: each bound thread on one core.
	for c := 0; c < sys.NumCores(); c++ {
		th := sys.ThreadOnCore(c)
		if th >= 0 && sys.CoreOfThread(th) != c {
			t.Fatal("CoreOfThread inconsistent with ThreadOnCore")
		}
	}
}

func TestRotateTimeShares(t *testing.T) {
	// 2 cores, 5 threads: rotation must eventually give every thread
	// core time.
	cores := quadCores()[:2]
	sys, err := New(cores, specs(t, 31, "gcc", "mcf", "equake", "apsi", "CRC32"),
		NewRotate(5_000), Config{ReassignOverheadCycles: 50})
	if err != nil {
		t.Fatal(err)
	}
	res, err := sys.RunCycles(120_000)
	if err != nil {
		t.Fatal(err)
	}
	for i, tr := range res.Threads {
		if tr.Committed == 0 {
			t.Fatalf("thread %d starved under rotation", i)
		}
	}
}

func TestRotateZeroPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("zero interval accepted")
		}
	}()
	NewRotate(0)
}

func TestRankConfigValidation(t *testing.T) {
	good := DefaultRankConfig()
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := DefaultRankConfig()
	bad.Quantum = 0
	if err := bad.Validate(); err == nil {
		t.Fatal("zero quantum accepted")
	}
	bad = DefaultRankConfig()
	bad.HistoryDepth = 0
	if err := bad.Validate(); err == nil {
		t.Fatal("zero depth accepted")
	}
	bad = DefaultRankConfig()
	bad.MinScoreGap = -1
	if err := bad.Validate(); err == nil {
		t.Fatal("negative gap accepted")
	}
}

func TestRankFixesMisplacedQuad(t *testing.T) {
	// Deliberately inverted placement: FP-heavy threads on the INT
	// cores and INT-heavy on the FP cores. Rank must reassign so the
	// INT cores run the INT-heavy threads.
	rank := NewRank(DefaultRankConfig())
	sys, err := New(quadCores(),
		specs(t, 30, "fpstress", "equake", "intstress", "bitcount"),
		rank, Config{})
	if err != nil {
		t.Fatal(err)
	}
	res := sys.MustRun(150_000)
	if res.Reassigns == 0 {
		t.Fatal("rank never reassigned a fully inverted placement")
	}
	// Threads 2 (intstress) and 3 (bitcount) must own cores 0 and 1.
	onInt := map[int]bool{sys.ThreadOnCore(0): true, sys.ThreadOnCore(1): true}
	if !onInt[2] || !onInt[3] {
		t.Fatalf("INT cores run threads %v, want {2,3}", onInt)
	}
}

func TestRankStableWhenWellPlaced(t *testing.T) {
	rank := NewRank(DefaultRankConfig())
	sys, err := New(quadCores(),
		specs(t, 40, "intstress", "bitcount", "fpstress", "equake"),
		rank, Config{})
	if err != nil {
		t.Fatal(err)
	}
	res := sys.MustRun(150_000)
	if res.Reassigns != 0 {
		t.Fatalf("rank churned %d times on a well-placed quad", res.Reassigns)
	}
}

func TestRankBeatsStaticOnInvertedQuad(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	names := []string{"fpstress", "equake", "intstress", "bitcount"}
	run := func(s amp.MoveScheduler) Result {
		sys, err := New(quadCores(), specs(t, 50, names...), s, Config{})
		if err != nil {
			t.Fatal(err)
		}
		return sys.MustRun(250_000)
	}
	static := run(Static{})
	rank := run(NewRank(DefaultRankConfig()))
	if rank.GeomeanIPCW() <= static.GeomeanIPCW()*1.05 {
		t.Fatalf("rank (%.4f) not clearly above misplaced static (%.4f)",
			rank.GeomeanIPCW(), static.GeomeanIPCW())
	}
}

func TestRankTimeSharesBacklog(t *testing.T) {
	// 4 cores, 6 threads: the two parked threads must get core time
	// through the round-robin sharing rule.
	cfg := DefaultRankConfig()
	cfg.ShareEpochs = 2
	sys, err := New(quadCores(),
		specs(t, 55, "intstress", "bitcount", "fpstress", "equake", "gcc", "swim"),
		NewRank(cfg), Config{})
	if err != nil {
		t.Fatal(err)
	}
	res, err := sys.RunCycles(200_000)
	if err != nil {
		t.Fatal(err)
	}
	for i, tr := range res.Threads {
		if tr.Committed == 0 {
			t.Fatalf("thread %d starved (committed 0)", i)
		}
	}
}

func TestDeterministicRuns(t *testing.T) {
	run := func() Result {
		sys, err := New(quadCores(),
			specs(t, 70, "gcc", "apsi", "fpstress", "CRC32"),
			NewRank(DefaultRankConfig()), Config{})
		if err != nil {
			t.Fatal(err)
		}
		return sys.MustRun(80_000)
	}
	a, b := run(), run()
	if a.Cycles != b.Cycles || a.Reassigns != b.Reassigns {
		t.Fatalf("nondeterministic: %d/%d vs %d/%d", a.Cycles, a.Reassigns, b.Cycles, b.Reassigns)
	}
	for i := range a.Threads {
		if a.Threads[i].EnergyNJ != b.Threads[i].EnergyNJ {
			t.Fatalf("thread %d energy differs", i)
		}
	}
}

func TestEightCoreScales(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	cores := []CoreSpec{
		{Config: cpu.IntCoreConfig(), Pool: 0}, {Config: cpu.IntCoreConfig(), Pool: 0},
		{Config: cpu.IntCoreConfig(), Pool: 0}, {Config: cpu.IntCoreConfig(), Pool: 0},
		{Config: cpu.FPCoreConfig(), Pool: 1}, {Config: cpu.FPCoreConfig(), Pool: 1},
		{Config: cpu.FPCoreConfig(), Pool: 1}, {Config: cpu.FPCoreConfig(), Pool: 1},
	}
	names := []string{"fpstress", "equake", "swim", "ammp", "intstress", "bitcount", "sha", "CRC32"}
	rank := NewRank(DefaultRankConfig())
	sys, err := New(cores, specs(t, 80, names...), rank, Config{})
	if err != nil {
		t.Fatal(err)
	}
	res := sys.MustRun(100_000)
	if res.Reassigns == 0 {
		t.Fatal("rank never reassigned an 8-core inverted placement")
	}
	// All four INT cores must hold INT-flavored threads (4..7).
	for c := 0; c < 4; c++ {
		if sys.ThreadOnCore(c) < 4 {
			t.Fatalf("INT core %d still runs FP thread %d", c, sys.ThreadOnCore(c))
		}
	}
}

func TestInvalidBatchRejectedWhole(t *testing.T) {
	// A scheduler emitting a duplicate-core batch must be ignored as a
	// unit and counted, not partially applied.
	bad := moveFunc(func(v amp.View) []amp.Move {
		if v.Cycle() == 0 {
			return nil
		}
		return []amp.Move{{Thread: 0, Core: 1}, {Thread: 1, Core: 1}}
	})
	sys, err := New(quadCores(), specs(t, 60, "gcc", "mcf", "equake", "apsi"),
		bad, Config{})
	if err != nil {
		t.Fatal(err)
	}
	res := sys.MustRun(30_000)
	if res.Reassigns != 0 {
		t.Fatal("invalid batch applied")
	}
	if res.InvalidBatches == 0 {
		t.Fatal("invalid batches not counted")
	}
	if sys.ThreadOnCore(1) != 1 {
		t.Fatal("binding disturbed by invalid batch")
	}
}

func TestAffinityViolatingMoveRejected(t *testing.T) {
	ts := specs(t, 65, "gcc", "mcf", "equake", "apsi")
	ts[0].Affinity = 1 << 0 // INT pool only
	bad := moveFunc(func(v amp.View) []amp.Move {
		if v.Cycle() == 0 {
			return nil
		}
		return []amp.Move{{Thread: 0, Core: 2}} // FP pool: violates affinity
	})
	sys, err := New(quadCores(), ts, bad, Config{})
	if err != nil {
		t.Fatal(err)
	}
	res := sys.MustRun(30_000)
	if res.Reassigns != 0 {
		t.Fatal("affinity-violating move applied")
	}
	if res.InvalidBatches == 0 {
		t.Fatal("violation not counted")
	}
}

// moveFunc adapts a func to amp.MoveScheduler.
type moveFunc func(v amp.View) []amp.Move

func (moveFunc) Name() string                 { return "func" }
func (moveFunc) Reset(amp.View)               {}
func (f moveFunc) Tick(v amp.View) []amp.Move { return f(v) }
