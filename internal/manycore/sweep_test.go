package manycore

// The N×M sweep: every policy across core and thread counts, subtests
// running in parallel so `go test -race` exercises concurrent systems
// sharing nothing. Interval fidelity keeps the sweep fast.

import (
	"fmt"
	"testing"

	"ampsched/internal/cpu"
	"ampsched/internal/interval"
)

func TestNxMSweep(t *testing.T) {
	names := []string{"gcc", "mcf", "equake", "apsi", "intstress", "fpstress", "sha", "swim", "CRC32"}
	for _, n := range []int{1, 2, 4} {
		ms := []int{1, 2*n + 1}
		if n > 1 {
			ms = append(ms, n)
		}
		for _, m := range ms {
			policies := reproPolicies()
			for _, policy := range []string{"static", "rotate", "rank", "hpe", "bigsmall", "twophase"} {
				factory := policies[policy]
				n, m := n, m
				t.Run(fmt.Sprintf("%s/n%d/m%d", policy, n, m), func(t *testing.T) {
					t.Parallel()
					cores := make([]CoreSpec, n)
					for c := 0; c < n; c++ {
						if c%2 == 0 {
							cores[c] = CoreSpec{Config: cpu.IntCoreConfig(), Pool: 0}
						} else {
							cores[c] = CoreSpec{Config: cpu.FPCoreConfig(), Pool: 1}
						}
					}
					ts := make([]ThreadSpec, m)
					for i := 0; i < m; i++ {
						sp := specs(t, uint64(200+i), names[i%len(names)])
						ts[i] = sp[0]
					}
					sys, err := New(cores, ts, factory(), Config{},
						WithEngine(interval.Factory()))
					if err != nil {
						t.Fatal(err)
					}
					res, err := sys.RunCycles(80_000)
					if err != nil {
						t.Fatalf("n=%d m=%d: %v", n, m, err)
					}
					if res.InvalidBatches != 0 {
						t.Fatalf("policy emitted %d invalid batches", res.InvalidBatches)
					}
					if res.WeightedIPCW() <= 0 {
						t.Fatal("no throughput")
					}
				})
			}
		}
	}
}
