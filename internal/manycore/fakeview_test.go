package manycore

// A controllable amp.View for policy unit tests: commit and energy
// counters are set by hand, so promotion/demotion thresholds can be
// exercised exactly, without picking benchmarks whose IPC happens to
// land on the right side of a threshold.

import (
	"testing"

	"ampsched/internal/amp"
	"ampsched/internal/cache"
	"ampsched/internal/cpu"
)

type fakeView struct {
	cycle   uint64
	cfgs    []*cpu.Config
	pools   []int
	binding []int
	coreOf  []int
	aff     []uint64
	arch    []cpu.ThreadArch
	energy  []float64
}

// newFakeView builds an n-core, m-thread view; thread i starts on core
// i (parked when i >= n) and every thread may use every pool.
func newFakeView(cfgs []*cpu.Config, pools []int, m int) *fakeView {
	n := len(cfgs)
	f := &fakeView{
		cfgs: cfgs, pools: pools,
		binding: make([]int, n),
		coreOf:  make([]int, m),
		aff:     make([]uint64, m),
		arch:    make([]cpu.ThreadArch, m),
		energy:  make([]float64, m),
	}
	for c := range f.binding {
		f.binding[c] = -1
	}
	for t := 0; t < m; t++ {
		f.aff[t] = amp.AllPools
		f.coreOf[t] = amp.ParkCore
		if t < n {
			f.binding[t] = t
			f.coreOf[t] = t
		}
	}
	return f
}

func (f *fakeView) Cycle() uint64                { return f.cycle }
func (f *fakeView) ThreadOnCore(c int) int       { return f.binding[c] }
func (f *fakeView) CoreOfThread(t int) int       { return f.coreOf[t] }
func (f *fakeView) Arch(t int) *cpu.ThreadArch   { return &f.arch[t] }
func (f *fakeView) ThreadEnergyNJ(t int) float64 { return f.energy[t] }
func (f *fakeView) LastSwapCycle() uint64        { return 0 }
func (f *fakeView) SwapFailures() uint64         { return 0 }
func (f *fakeView) CoreConfig(c int) *cpu.Config { return f.cfgs[c] }
func (f *fakeView) L2Stats(int) cache.Stats      { return cache.Stats{} }
func (f *fakeView) FreqGHz() float64             { return 1.0 }
func (f *fakeView) NumCores() int                { return len(f.cfgs) }
func (f *fakeView) NumThreads() int              { return len(f.arch) }
func (f *fakeView) AffinityMask(t int) uint64    { return f.aff[t] }
func (f *fakeView) CorePool(c int) int           { return f.pools[c] }

var _ amp.View = (*fakeView)(nil)

// validate fails the test if the batch would be rejected by
// System.applyMoves: out-of-range indexes, duplicate threads or cores,
// or affinity violations.
func (f *fakeView) validate(t *testing.T, mv []amp.Move) {
	t.Helper()
	threads := map[int]bool{}
	cores := map[int]bool{}
	for _, m := range mv {
		if m.Thread < 0 || m.Thread >= len(f.arch) {
			t.Fatalf("move names thread %d of %d", m.Thread, len(f.arch))
		}
		if m.Core != amp.ParkCore && (m.Core < 0 || m.Core >= len(f.cfgs)) {
			t.Fatalf("move names core %d of %d", m.Core, len(f.cfgs))
		}
		if threads[m.Thread] {
			t.Fatalf("thread %d relocated twice in one batch", m.Thread)
		}
		threads[m.Thread] = true
		if m.Core >= 0 {
			if cores[m.Core] {
				t.Fatalf("core %d targeted twice in one batch", m.Core)
			}
			cores[m.Core] = true
			if f.aff[m.Thread]&(1<<uint(f.pools[m.Core])) == 0 {
				t.Fatalf("move violates thread %d affinity", m.Thread)
			}
		}
	}
}

// apply replays a valid batch with System.applyMoves semantics
// (vacate sources, then place, implicitly parking displaced threads).
func (f *fakeView) apply(mv []amp.Move) {
	for _, m := range mv {
		if c := f.coreOf[m.Thread]; c >= 0 {
			f.binding[c] = -1
		}
		f.coreOf[m.Thread] = amp.ParkCore
	}
	for _, m := range mv {
		if m.Core < 0 {
			continue
		}
		if u := f.binding[m.Core]; u >= 0 {
			f.coreOf[u] = amp.ParkCore
		}
		f.binding[m.Core] = m.Thread
		f.coreOf[m.Thread] = m.Core
	}
}

// step advances one quantum, crediting each thread's commit delta and
// a proportional energy charge, then ticks the scheduler and applies
// whatever it emits.
func (f *fakeView) step(t *testing.T, s amp.MoveScheduler, quantum uint64, commits []uint64) []amp.Move {
	t.Helper()
	for th, d := range commits {
		if f.coreOf[th] < 0 {
			continue // parked threads commit nothing
		}
		f.arch[th].Committed += d
		f.arch[th].CommittedByClass[0] += d
		f.energy[th] += float64(quantum) * 2 // flat power draw
	}
	f.cycle += quantum
	mv := s.Tick(f)
	f.validate(t, mv)
	f.apply(mv)
	return mv
}

func TestBigSmallConfigValidation(t *testing.T) {
	good := DefaultBigSmallConfig()
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := DefaultBigSmallConfig()
	bad.Quantum = 0
	if err := bad.Validate(); err == nil {
		t.Fatal("zero quantum accepted")
	}
	bad = DefaultBigSmallConfig()
	bad.DemoteIPC = bad.PromoteIPC + 1
	if err := bad.Validate(); err == nil {
		t.Fatal("inverted thresholds accepted")
	}
	bad = DefaultBigSmallConfig()
	bad.MinResidency = 0
	if err := bad.Validate(); err == nil {
		t.Fatal("zero residency accepted")
	}
}

func TestBigSmallPromotesAndDemotes(t *testing.T) {
	// Core 0 big (pool 0), core 1 small (pool 1); t0 starts big and
	// stalls, t1 starts small and streams.
	cfg := DefaultBigSmallConfig()
	cfg.MinResidency = 1
	bs := NewBigSmall(cfg)
	f := newFakeView(
		[]*cpu.Config{cpu.IntCoreConfig(), cpu.FPCoreConfig()},
		[]int{0, 1}, 2)
	bs.Reset(f)

	q := cfg.Quantum
	// IPC(t0) = 0.1 < DemoteIPC, IPC(t1) = 1.0 >= PromoteIPC.
	mv := f.step(t, bs, q, []uint64{q / 10, q})
	if len(mv) == 0 {
		t.Fatal("no moves on a clear promote/demote epoch")
	}
	if f.binding[0] != 1 {
		t.Fatalf("big core runs thread %d, want promoted thread 1", f.binding[0])
	}
	if f.coreOf[0] != amp.ParkCore {
		t.Fatalf("demoted thread 0 on core %d, want parked", f.coreOf[0])
	}

	// Next epoch the idle small core picks the parked thread back up.
	f.step(t, bs, q, []uint64{0, q})
	if f.binding[1] != 0 {
		t.Fatalf("small core runs %d, want backlogged thread 0", f.binding[1])
	}
}

func TestBigSmallDisplacementNeedsGap(t *testing.T) {
	cfg := DefaultBigSmallConfig()
	cfg.MinResidency = 1
	cfg.SwapGap = 0.3
	bs := NewBigSmall(cfg)
	f := newFakeView(
		[]*cpu.Config{cpu.IntCoreConfig(), cpu.FPCoreConfig()},
		[]int{0, 1}, 2)
	bs.Reset(f)

	q := cfg.Quantum
	// Incumbent t0 healthy at 0.9; candidate t1 at 1.0: above
	// PromoteIPC but inside the gap — no displacement.
	f.step(t, bs, q, []uint64{q * 9 / 10, q})
	if f.binding[0] != 0 {
		t.Fatal("incumbent displaced without clearing the gap")
	}
	// Candidate pulls clearly ahead: 0.9 + 0.3 <= 1.3 displaces.
	mv := f.step(t, bs, q, []uint64{q * 9 / 10, q * 13 / 10})
	if len(mv) == 0 || f.binding[0] != 1 {
		t.Fatalf("candidate 1 did not displace incumbent (big core runs %d)", f.binding[0])
	}
	// The displaced incumbent swaps down to the small core, it does
	// not park.
	if f.coreOf[0] != 1 {
		t.Fatalf("displaced incumbent on core %d, want small core 1", f.coreOf[0])
	}
}

func TestBigSmallRespectsAffinity(t *testing.T) {
	cfg := DefaultBigSmallConfig()
	cfg.MinResidency = 1
	bs := NewBigSmall(cfg)
	f := newFakeView(
		[]*cpu.Config{cpu.IntCoreConfig(), cpu.FPCoreConfig()},
		[]int{0, 1}, 2)
	f.aff[1] = 1 << 1 // small pool only: never promotable
	bs.Reset(f)

	q := cfg.Quantum
	for i := 0; i < 5; i++ {
		f.step(t, bs, q, []uint64{q / 2, q})
	}
	if f.coreOf[1] == 0 {
		t.Fatal("small-only thread promoted to the big pool")
	}
}
