package manycore

import (
	"fmt"

	"ampsched/internal/amp"
	"ampsched/internal/cpu"
	"ampsched/internal/workload"
)

// View is the read-only state the deprecated permutation Scheduler
// observes. *System still implements it.
//
// Deprecated: write schedulers against amp.View, which adds thread
// counts, pools and affinity masks.
type View interface {
	NumCores() int
	Cycle() uint64
	ThreadOnCore(core int) int
	CoreOfThread(thread int) int
	Arch(thread int) *cpu.ThreadArch
	CoreConfig(core int) *cpu.Config
	// LastReassignCycle returns when the last reassignment's stall
	// window ended (0 if none).
	LastReassignCycle() uint64
}

// Scheduler is the original N-core scheduling interface: Tick returns
// nil for "no change" or a full permutation newBinding[core] = thread.
// Permutations cannot express parked threads, so the interface only
// works on N==M systems.
//
// Deprecated: implement amp.MoveScheduler (Tick returning []amp.Move)
// instead; wrap existing implementations with Legacy. The interface
// remains accepted for one release via the Legacy adapter.
type Scheduler interface {
	Name() string
	Reset(v View)
	Tick(v View) []int
}

// legacyAdapter lifts a permutation Scheduler into the Move API,
// diffing each returned permutation against the current binding.
type legacyAdapter struct {
	inner Scheduler
	buf   []amp.Move
	seen  []bool
}

// Legacy adapts a deprecated permutation Scheduler to the unified
// amp.MoveScheduler interface. Invalid permutations (wrong length,
// repeated or out-of-range threads) are dropped, preserving the old
// contract that the system ignores them. The adapter only drives
// manycore systems: Reset and Tick panic on a view that does not
// implement the legacy View interface.
func Legacy(s Scheduler) amp.MoveScheduler {
	if s == nil {
		return nil
	}
	return &legacyAdapter{inner: s}
}

// legacyView narrows an amp.View to the deprecated View.
func legacyView(v amp.View) View {
	lv, ok := v.(View)
	if !ok {
		panic(fmt.Sprintf("manycore: Legacy adapter needs a manycore view, got %T", v))
	}
	return lv
}

// Name implements amp.MoveScheduler.
func (l *legacyAdapter) Name() string { return l.inner.Name() }

// Reset implements amp.MoveScheduler.
func (l *legacyAdapter) Reset(v amp.View) { l.inner.Reset(legacyView(v)) }

// Tick implements amp.MoveScheduler. The common path — the inner
// scheduler's own gate returning nil — allocates nothing.
//
//ampvet:hotpath
func (l *legacyAdapter) Tick(v amp.View) []amp.Move {
	nb := l.inner.Tick(legacyView(v))
	if nb == nil {
		return nil
	}
	return l.diff(v, nb)
}

// diff validates a returned permutation and converts it to moves. It
// runs only when the inner scheduler proposes a change.
func (l *legacyAdapter) diff(v amp.View, nb []int) []amp.Move {
	n := v.NumCores()
	if len(nb) != n {
		return nil
	}
	if cap(l.seen) < n {
		l.seen = make([]bool, n)
	}
	seen := l.seen[:n]
	for i := range seen {
		seen[i] = false
	}
	for _, t := range nb {
		if t < 0 || t >= n || seen[t] {
			return nil // not a permutation; old contract: ignore
		}
		seen[t] = true
	}
	l.buf = l.buf[:0]
	for c, t := range nb {
		if t != v.ThreadOnCore(c) {
			l.buf = append(l.buf, amp.Move{Thread: t, Core: c})
		}
	}
	return l.buf
}

var _ amp.MoveScheduler = (*legacyAdapter)(nil)

// NewSystem builds an N-core, N-thread system from parallel slices;
// thread i starts on core i. Cores are pooled by configuration name
// in order of first appearance, so the canonical INT/FP mix becomes
// pools 0 and 1.
//
// Deprecated: use New, which separates core pools from thread
// affinity and supports M != N. NewSystem remains for one release as
// a thin wrapper.
func NewSystem(coreCfgs []*cpu.Config, benches []*workload.Benchmark, seeds []uint64,
	sched Scheduler, cfg Config) (*System, error) {
	n := len(coreCfgs)
	if n < 2 {
		return nil, fmt.Errorf("manycore: need at least 2 cores, got %d", n)
	}
	if len(benches) != n || len(seeds) != n {
		return nil, fmt.Errorf("manycore: %d cores but %d benchmarks / %d seeds",
			n, len(benches), len(seeds))
	}
	cores := make([]CoreSpec, n)
	poolByName := map[string]int{}
	for c, cc := range coreCfgs {
		if cc == nil {
			return nil, fmt.Errorf("manycore: core %d has nil config", c)
		}
		pool, ok := poolByName[cc.Name]
		if !ok {
			pool = len(poolByName)
			poolByName[cc.Name] = pool
		}
		cores[c] = CoreSpec{Config: cc, Pool: pool}
	}
	threads := make([]ThreadSpec, n)
	for t := range threads {
		threads[t] = ThreadSpec{Bench: benches[t], Seed: seeds[t]}
	}
	return New(cores, threads, Legacy(sched), cfg)
}
