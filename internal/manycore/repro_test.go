package manycore

// Seeded byte-identity reproducibility: every manycore policy must
// produce a byte-for-byte identical Result when re-run with the same
// seeds — the property the ampserve result cache and the nxm
// experiment depend on.

import (
	"fmt"
	"testing"

	"ampsched/internal/amp"
	"ampsched/internal/interval"
)

// compositionRatio is a deterministic stand-in for the profiled HPE
// estimator: INT-heavy mixes favor the INT core.
type compositionRatio struct{}

func (compositionRatio) Name() string { return "composition" }
func (compositionRatio) RatioIntOverFP(intPct, fpPct float64) float64 {
	return 1 + (intPct-fpPct)/200
}

func reproPolicies() map[string]func() amp.MoveScheduler {
	return map[string]func() amp.MoveScheduler{
		"static":   func() amp.MoveScheduler { return Static{} },
		"rotate":   func() amp.MoveScheduler { return NewRotate(20_000) },
		"rank":     func() amp.MoveScheduler { return NewRank(DefaultRankConfig()) },
		"hpe":      func() amp.MoveScheduler { return NewHPERank(compositionRatio{}, DefaultRankConfig()) },
		"bigsmall": func() amp.MoveScheduler { return NewBigSmall(DefaultBigSmallConfig()) },
		"twophase": func() amp.MoveScheduler { return NewTwoPhase(DefaultTwoPhaseConfig()) },
	}
}

func TestPolicyByteIdentity(t *testing.T) {
	names := []string{"gcc", "mcf", "equake", "apsi", "intstress", "fpstress"}
	for _, policy := range []string{"static", "rotate", "rank", "hpe", "bigsmall", "twophase"} {
		factory := reproPolicies()[policy]
		t.Run(policy, func(t *testing.T) {
			run := func() string {
				sys, err := New(quadCores(), specs(t, 100, names...), factory(),
					Config{}, WithEngine(interval.Factory()))
				if err != nil {
					t.Fatal(err)
				}
				res, err := sys.RunCycles(150_000)
				if err != nil {
					t.Fatal(err)
				}
				return fmt.Sprintf("%+v", res)
			}
			a, b := run(), run()
			if a != b {
				t.Fatalf("%s not byte-identical across reruns:\n%s\nvs\n%s", policy, a, b)
			}
		})
	}
}
