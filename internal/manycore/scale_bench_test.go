package manycore

// Scheduler-loop scale benchmarks: the committed BENCH_manycore.json
// numbers gate the "incremental decision loop" property. The gate
// benchmark shows an off-quantum Tick is O(1) at any machine size;
// the epoch benchmarks show per-quantum cost at hundreds of cores ×
// thousands of threads stays dominated by the O(threads) observation
// pass, not an O(threads×cores) placement rescan (64x512 → 256x2048
// grows the n×m product 16×; epoch time must track the ~4× thread
// growth, not the product).

import (
	"fmt"
	"testing"

	"ampsched/internal/amp"
	"ampsched/internal/cpu"
)

const benchQuantum = 10_000

// newBenchView builds an n-core (alternating INT/FP pools), m-thread
// synthetic view; like the policy unit tests it drives schedulers
// without simulation engines, so the benchmark isolates decision-loop
// cost.
func newBenchView(n, m int) *fakeView {
	cfgs := make([]*cpu.Config, n)
	pools := make([]int, n)
	for c := 0; c < n; c++ {
		if c%2 == 0 {
			cfgs[c] = cpu.IntCoreConfig()
		} else {
			cfgs[c] = cpu.FPCoreConfig()
			pools[c] = 1
		}
	}
	return newFakeView(cfgs, pools, m)
}

// epochStep advances one quantum: credit every bound thread's commit
// and energy counters with a varied, deterministic workload shape,
// then tick and apply.
func epochStep(f *fakeView, s amp.MoveScheduler) {
	for th := range f.arch {
		if f.coreOf[th] < 0 {
			continue
		}
		d := uint64(benchQuantum/2) + uint64(th%7)*benchQuantum/16
		f.arch[th].Committed += d
		if th%3 == 0 {
			f.arch[th].CommittedByClass[1] += d
		} else {
			f.arch[th].CommittedByClass[0] += d
		}
		f.energy[th] += float64(benchQuantum) * 2
	}
	f.cycle += benchQuantum
	f.apply(s.Tick(f))
}

func benchPolicies() map[string]func() amp.MoveScheduler {
	return map[string]func() amp.MoveScheduler{
		"rank":     func() amp.MoveScheduler { return NewRank(DefaultRankConfig()) },
		"bigsmall": func() amp.MoveScheduler { return NewBigSmall(DefaultBigSmallConfig()) },
		"twophase": func() amp.MoveScheduler { return NewTwoPhase(DefaultTwoPhaseConfig()) },
	}
}

// BenchmarkManycoreTickGate measures the off-quantum fast path: the
// cycle never reaches a decision boundary, so every Tick must return
// immediately regardless of machine size.
func BenchmarkManycoreTickGate(b *testing.B) {
	for _, sz := range []struct{ n, m int }{{64, 512}, {256, 2048}} {
		for _, policy := range []string{"rank", "bigsmall", "twophase"} {
			s := benchPolicies()[policy]()
			f := newBenchView(sz.n, sz.m)
			s.Reset(f)
			epochStep(f, s) // settle one epoch so state is warm
			b.Run(fmt.Sprintf("%s/%dx%d", policy, sz.n, sz.m), func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					if mv := s.Tick(f); mv != nil {
						b.Fatal("gate emitted moves without a quantum boundary")
					}
				}
			})
		}
	}
}

// BenchmarkManycoreEpoch measures one full decision quantum (observe,
// rank, place, apply) at scale.
func BenchmarkManycoreEpoch(b *testing.B) {
	for _, sz := range []struct{ n, m int }{{64, 512}, {256, 2048}} {
		for _, policy := range []string{"rank", "bigsmall", "twophase"} {
			b.Run(fmt.Sprintf("%s/%dx%d", policy, sz.n, sz.m), func(b *testing.B) {
				s := benchPolicies()[policy]()
				f := newBenchView(sz.n, sz.m)
				s.Reset(f)
				for i := 0; i < 8; i++ {
					epochStep(f, s) // settle into steady state
				}
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					epochStep(f, s)
				}
			})
		}
	}
}
