package manycore

import (
	"ampsched/internal/amp"
	"ampsched/internal/cpu"
	"ampsched/internal/telemetry"
)

// Option customizes a System at construction, mirroring the amp
// package's instrumentation surface so pair-level call sites port to
// N×M without relearning anything.
type Option func(*System)

// WithObserver installs an event observer. Multiple WithObserver (and
// WithTelemetry) options compose: every observer sees every event.
func WithObserver(o amp.Observer) Option {
	return func(s *System) {
		if o == nil {
			return
		}
		s.obs = amp.MultiObserver(s.obs, o)
	}
}

// WithFaultPlan routes every move batch through the injector
// (typically a *fault.Plan): a batch may be dropped (FailedReassigns
// advances, the binding is unchanged) or delayed (per-core overhead
// multiplied).
func WithFaultPlan(inj amp.SwapInjector) Option {
	return func(s *System) {
		if inj != nil {
			s.injector = inj
		}
	}
}

// WithEngine selects the simulation fidelity: New builds every core
// with f instead of the default cpu.DetailedFactory. A nil f keeps
// the default, so call sites can pass a possibly-unset factory
// unconditionally. The option takes precedence over the deprecated
// Config.Engine field.
func WithEngine(f cpu.EngineFactory) Option {
	return func(s *System) {
		if f != nil {
			s.engineFactory = f
		}
	}
}

// WithTelemetry publishes the system's metrics into t: the manycore.*
// counters (reassigns, moves, failed/invalid batches) and run-end
// gauges (cycles, committed, energy). A nil t is ignored, keeping the
// call site unconditional.
func WithTelemetry(t *telemetry.Telemetry) Option {
	return func(s *System) {
		if t == nil {
			return
		}
		s.tel = newTelemetryHook(t)
	}
}

// telemetryHook owns the manycore.* metrics. All methods are nil-safe
// so the disabled path costs one comparison.
type telemetryHook struct {
	t         *telemetry.Telemetry
	reassigns *telemetry.Counter
	moves     *telemetry.Counter
	failed    *telemetry.Counter
	invalid   *telemetry.Counter
}

func newTelemetryHook(t *telemetry.Telemetry) *telemetryHook {
	return &telemetryHook{
		t:         t,
		reassigns: t.Counter("manycore.reassigns"),
		moves:     t.Counter("manycore.moves"),
		failed:    t.Counter("manycore.failed_reassigns"),
		invalid:   t.Counter("manycore.invalid_batches"),
	}
}

// reassign records one applied batch of n moves.
//
//ampvet:hotpath
func (h *telemetryHook) reassign(n int) {
	if h == nil {
		return
	}
	h.reassigns.Inc()
	h.moves.Add(uint64(n))
}

// failedInc records one injector-dropped batch.
//
//ampvet:hotpath
func (h *telemetryHook) failedInc() {
	if h == nil {
		return
	}
	h.failed.Inc()
}

// invalidInc records one malformed batch.
//
//ampvet:hotpath
func (h *telemetryHook) invalidInc() {
	if h == nil {
		return
	}
	h.invalid.Inc()
}

// flushRunEnd publishes the run-end gauges.
func (h *telemetryHook) flushRunEnd(s *System) {
	if h == nil {
		return
	}
	h.t.Gauge("manycore.cycles").Set(float64(s.cycle))
	h.t.Gauge("manycore.cores").Set(float64(len(s.cores)))
	h.t.Gauge("manycore.threads").Set(float64(len(s.threads)))
	var committed uint64
	var energy float64
	for _, t := range s.threads {
		committed += t.Arch.Committed
		energy += t.EnergyNJ
	}
	h.t.Gauge("manycore.committed").Set(float64(committed))
	h.t.Gauge("manycore.energy_nj").Set(energy)
}
