package manycore

import (
	"fmt"

	"ampsched/internal/amp"
	"ampsched/internal/isa"
)

// Estimator predicts, for a thread with the observed instruction
// composition, the ratio of the IPC/Watt it would achieve on the INT
// core to the IPC/Watt it would achieve on the FP core. It is the
// same contract as sched.Estimator (duplicated here to keep the
// dependency arrow pointing at amp only); the profilegen matrix and
// regression estimators satisfy both.
type Estimator interface {
	Name() string
	RatioIntOverFP(intPct, fpPct float64) float64
}

// RankConfig parameterizes the generalized proposed scheme.
type RankConfig struct {
	// Quantum is the decision period in cycles. Observation windows
	// close at epoch boundaries, the N×M analogue of the paper's
	// 1000-instruction commit windows.
	Quantum uint64
	// HistoryDepth: consecutive epochs that must agree on a thread's
	// new flavor class before it flips (the many-core analogue of the
	// §VI-B majority vote).
	HistoryDepth int
	// MinScoreGap is the deadband around the neutral score: a thread
	// is reclassified only when its score leaves ±MinScoreGap/2
	// (hysteresis against churn), in percentage points.
	MinScoreGap float64
	// ShareEpochs: a bound thread that has held its core for this many
	// epochs is preempted in favor of a parked thread of the core's
	// flavor, round-robin time sharing for M > N. 0 means
	// HistoryDepth.
	ShareEpochs int
}

// DefaultRankConfig mirrors the dual-core operating point.
func DefaultRankConfig() RankConfig {
	return RankConfig{Quantum: 10_000, HistoryDepth: 5, MinScoreGap: 10, ShareEpochs: 5}
}

// Validate reports the first configuration problem.
func (c *RankConfig) Validate() error {
	if c.Quantum == 0 {
		return fmt.Errorf("manycore: rank: zero Quantum")
	}
	if c.HistoryDepth <= 0 {
		return fmt.Errorf("manycore: rank: non-positive HistoryDepth")
	}
	if c.MinScoreGap < 0 {
		return fmt.Errorf("manycore: rank: negative MinScoreGap")
	}
	if c.ShareEpochs < 0 {
		return fmt.Errorf("manycore: rank: negative ShareEpochs")
	}
	return nil
}

// rankMinWindow is the committed-instruction floor under which an
// epoch's observation is carried over instead of closed (too little
// signal to reclassify).
const rankMinWindow = 500

// Flavor classes. Rank reduces the machine to the paper's two-flavor
// world: INT-named cores against everything else.
const (
	classInt = 0
	classFP  = 1
)

// Rank is the scalable generalization of the paper's scheme: instead
// of pairwise swap rules (which do not compose beyond two cores), each
// bound thread gets an affinity score from its committed windows,
// hysteresis classifies it INT or FP, misclassified occupants are
// exchanged pairwise, and parked threads round-robin through the cores
// of their class. Sampling is never needed — exactly the paper's
// argument against Becchi-style schedulers at §II. All bookkeeping is
// incremental: the per-tick gate is O(1) and an epoch costs
// O(cores + threads), never O(threads × cores).
type Rank struct {
	cfg   RankConfig
	name  string
	score func(intPct, fpPct float64) float64

	next    uint64
	applied uint64

	// Per-thread state.
	class      []int8
	streak     []int32
	resid      []int32
	lastCommit []uint64
	lastClass  [][isa.NumClasses]uint64

	// Intrusive doubly-linked rings of parked threads, one per flavor
	// class, reconciled against the view each epoch.
	ringNext []int32
	ringPrev []int32
	ringOf   []int8 // -1 when not enqueued
	ringHead [2]int32
	ringTail [2]int32

	// Per-core topology, fixed at Reset.
	flavor   []int8
	poolMask [2]uint64

	// Per-epoch scratch.
	buf         []amp.Move
	coreTouched []bool
	wantInt     []int32 // FP cores whose occupant is INT-classified
	wantFP      []int32 // INT cores whose occupant is FP-classified
}

// NewRank builds the composition-scored scheduler (score = %INT −
// %FP, the paper's affinity signal).
func NewRank(cfg RankConfig) *Rank {
	r := newRank(cfg, "rank")
	r.score = func(intPct, fpPct float64) float64 { return intPct - fpPct }
	return r
}

// NewHPERank builds the HPE variant: the same allocation machinery,
// classifying threads by an offline-profiled IPC/Watt ratio estimator
// instead of the raw composition score. The score is the predicted
// INT-over-FP gain in percent, so MinScoreGap keeps its meaning.
func NewHPERank(est Estimator, cfg RankConfig) *Rank {
	if est == nil {
		panic("manycore: rank: nil estimator")
	}
	r := newRank(cfg, "hpe")
	r.score = func(intPct, fpPct float64) float64 {
		return 100 * (est.RatioIntOverFP(intPct, fpPct) - 1)
	}
	return r
}

func newRank(cfg RankConfig, name string) *Rank {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	if cfg.ShareEpochs == 0 {
		cfg.ShareEpochs = cfg.HistoryDepth
	}
	return &Rank{cfg: cfg, name: name}
}

// Name implements amp.MoveScheduler.
func (r *Rank) Name() string { return r.name }

// Applied returns how many decision epochs emitted moves.
func (r *Rank) Applied() uint64 { return r.applied }

// Reset implements amp.MoveScheduler.
func (r *Rank) Reset(v amp.View) {
	n, m := v.NumCores(), v.NumThreads()
	r.next = v.Cycle() + r.cfg.Quantum
	r.applied = 0

	r.class = make([]int8, m)
	r.streak = make([]int32, m)
	r.resid = make([]int32, m)
	r.lastCommit = make([]uint64, m)
	r.lastClass = make([][isa.NumClasses]uint64, m)
	r.ringNext = make([]int32, m)
	r.ringPrev = make([]int32, m)
	r.ringOf = make([]int8, m)
	r.ringHead = [2]int32{-1, -1}
	r.ringTail = [2]int32{-1, -1}
	r.flavor = make([]int8, n)
	r.poolMask = [2]uint64{}
	r.coreTouched = make([]bool, n)

	for c := 0; c < n; c++ {
		f := int8(classFP)
		if v.CoreConfig(c).Name == "INT" {
			f = classInt
		}
		r.flavor[c] = f
		r.poolMask[f] |= 1 << uint(v.CorePool(c))
	}
	for t := 0; t < m; t++ {
		arch := v.Arch(t)
		arch.Sync()
		r.lastCommit[t] = arch.Committed
		r.lastClass[t] = arch.CommittedByClass
		r.ringOf[t] = -1
		if c := v.CoreOfThread(t); c >= 0 {
			// A bound thread starts in its core's class: no movement
			// before the first observed evidence.
			r.class[t] = r.flavor[c]
		} else {
			// Parked threads alternate classes so both flavors start
			// with a backlog, adjusted to a class they may run in.
			r.class[t] = int8(t & 1)
			if v.AffinityMask(t)&r.poolMask[r.class[t]] == 0 {
				r.class[t] = 1 - r.class[t]
			}
		}
	}
}

// --- ring operations -------------------------------------------------

func (r *Rank) ringPush(f int8, t int32) {
	r.ringOf[t] = f
	r.ringPrev[t] = r.ringTail[f]
	r.ringNext[t] = -1
	if r.ringTail[f] >= 0 {
		r.ringNext[r.ringTail[f]] = t
	} else {
		r.ringHead[f] = t
	}
	r.ringTail[f] = t
}

func (r *Rank) ringRemove(t int32) {
	f := r.ringOf[t]
	if f < 0 {
		return
	}
	if p := r.ringPrev[t]; p >= 0 {
		r.ringNext[p] = r.ringNext[t]
	} else {
		r.ringHead[f] = r.ringNext[t]
	}
	if nx := r.ringNext[t]; nx >= 0 {
		r.ringPrev[nx] = r.ringPrev[t]
	} else {
		r.ringTail[f] = r.ringPrev[t]
	}
	r.ringOf[t] = -1
}

// ringPopFor removes and returns the first thread of flavor ring f
// whose affinity allows core c's pool, or -1.
func (r *Rank) ringPopFor(v amp.View, f int8, c int) int32 {
	pool := uint64(1) << uint(v.CorePool(c))
	for t := r.ringHead[f]; t >= 0; t = r.ringNext[t] {
		if v.AffinityMask(int(t))&pool != 0 {
			r.ringRemove(t)
			return t
		}
	}
	return -1
}

// --------------------------------------------------------------------

// observe closes the epoch's committed window for core c's occupant
// and advances its classification hysteresis.
func (r *Rank) observe(v amp.View, t int) {
	arch := v.Arch(t)
	committed := arch.Committed - r.lastCommit[t]
	if committed < rankMinWindow {
		return // carry the window over
	}
	arch.Sync()
	var intN, fpN uint64
	for cl := isa.Class(0); cl < isa.NumClasses; cl++ {
		d := arch.CommittedByClass[cl] - r.lastClass[t][cl]
		if cl.IsInt() {
			intN += d
		} else if cl.IsFP() {
			fpN += d
		}
	}
	r.lastCommit[t] = arch.Committed
	r.lastClass[t] = arch.CommittedByClass

	score := r.score(100*float64(intN)/float64(committed), 100*float64(fpN)/float64(committed))
	want := r.class[t]
	if score >= r.cfg.MinScoreGap/2 {
		want = classInt
	} else if score <= -r.cfg.MinScoreGap/2 {
		want = classFP
	}
	if want != r.class[t] {
		r.streak[t]++
		if int(r.streak[t]) >= r.cfg.HistoryDepth {
			r.class[t] = want
			r.streak[t] = 0
		}
	} else {
		r.streak[t] = 0
	}
}

// grant emits the move that places thread t on core c.
func (r *Rank) grant(t int32, c int) {
	r.buf = append(r.buf, amp.Move{Thread: int(t), Core: c})
	r.coreTouched[c] = true
	r.resid[t] = 0
}

// Tick implements amp.MoveScheduler; the per-cycle gate is O(1) and
// allocation-free.
//
//ampvet:hotpath
func (r *Rank) Tick(v amp.View) []amp.Move {
	if v.Cycle() < r.next {
		return nil
	}
	return r.epoch(v)
}

// epoch runs one decision epoch: O(cores) observation + O(threads)
// park reconciliation + O(moves) allocation, never O(threads × cores).
// It fires at Quantum rate; its scratch slices are reused, so the
// steady state allocates nothing.
func (r *Rank) epoch(v amp.View) []amp.Move {
	r.next = v.Cycle() + r.cfg.Quantum
	n, m := v.NumCores(), v.NumThreads()
	r.buf = r.buf[:0]
	for c := 0; c < n; c++ {
		r.coreTouched[c] = false
	}

	// 1. Observe and reclassify bound threads.
	for c := 0; c < n; c++ {
		if t := v.ThreadOnCore(c); t >= 0 {
			r.resid[t]++
			r.observe(v, t)
		}
	}

	// 2. Reconcile the parked rings against reality: a failed or
	// partially-applied batch cannot strand a thread outside the
	// rings, because membership is recomputed from the view.
	for t := 0; t < m; t++ {
		if v.CoreOfThread(t) == amp.ParkCore {
			if r.ringOf[t] < 0 {
				f := r.class[t]
				if v.AffinityMask(t)&r.poolMask[f] == 0 {
					f = 1 - f
				}
				r.ringPush(f, int32(t))
			}
		} else if r.ringOf[t] >= 0 {
			r.ringRemove(int32(t))
		}
	}

	// 3. Idle cores take waiting work: own flavor first, then the
	// other ring (work conservation beats flavor matching).
	for c := 0; c < n; c++ {
		if v.ThreadOnCore(c) >= 0 {
			continue
		}
		f := r.flavor[c]
		t := r.ringPopFor(v, f, c)
		if t < 0 {
			t = r.ringPopFor(v, 1-f, c)
		}
		if t >= 0 {
			r.grant(t, c)
		}
	}

	// 4. Pair misclassified occupants and exchange them: the N-core
	// generalization of the paper's swap.
	r.wantInt = r.wantInt[:0]
	r.wantFP = r.wantFP[:0]
	for c := 0; c < n; c++ {
		t := v.ThreadOnCore(c)
		if t < 0 || r.coreTouched[c] {
			continue
		}
		if cl := r.class[t]; cl != r.flavor[c] {
			if cl == classInt {
				r.wantInt = append(r.wantInt, int32(c))
			} else {
				r.wantFP = append(r.wantFP, int32(c))
			}
		}
	}
	k := len(r.wantInt)
	if len(r.wantFP) < k {
		k = len(r.wantFP)
	}
	for i := 0; i < k; i++ {
		cA, cB := int(r.wantInt[i]), int(r.wantFP[i])
		tA, tB := int32(v.ThreadOnCore(cA)), int32(v.ThreadOnCore(cB))
		if v.AffinityMask(int(tA))&(1<<uint(v.CorePool(cB))) == 0 ||
			v.AffinityMask(int(tB))&(1<<uint(v.CorePool(cA))) == 0 {
			continue
		}
		r.grant(tA, cB)
		r.grant(tB, cA)
	}
	// Unpaired misfits: hand the core to a parked thread of the
	// core's own flavor; the misfit parks and queues for its class.
	for i := k; i < len(r.wantInt); i++ {
		c := int(r.wantInt[i])
		if t := r.ringPopFor(v, r.flavor[c], c); t >= 0 {
			r.grant(t, c)
		}
	}
	for i := k; i < len(r.wantFP); i++ {
		c := int(r.wantFP[i])
		if t := r.ringPopFor(v, r.flavor[c], c); t >= 0 {
			r.grant(t, c)
		}
	}

	// 5. Round-robin time sharing: long-resident occupants yield to
	// waiting threads of the core's flavor.
	for c := 0; c < n; c++ {
		t := v.ThreadOnCore(c)
		if t < 0 || r.coreTouched[c] {
			continue
		}
		if int(r.resid[t]) < r.cfg.ShareEpochs {
			continue
		}
		if t2 := r.ringPopFor(v, r.flavor[c], c); t2 >= 0 {
			r.grant(t2, c)
		}
	}

	if len(r.buf) == 0 {
		return nil
	}
	r.applied++
	return r.buf
}

var _ amp.MoveScheduler = (*Rank)(nil)
