package manycore

import (
	"fmt"

	"ampsched/internal/amp"
	"ampsched/internal/isa"
)

// TwoPhaseConfig parameterizes the hypervisor-style proportional
// allocator.
type TwoPhaseConfig struct {
	// Quantum is one scheduling slice in cycles; the allocation is
	// recomputed every Slices quanta (one epoch).
	Quantum uint64
	// Slices is each core's capacity per epoch (load is measured in
	// slices; 100% = Slices).
	Slices int
	// Estimator, when non-nil, routes threads to the flavor pool their
	// composition favors (the HPE predictor feeding phase 1); nil
	// falls back to pure load balancing.
	Estimator Estimator
}

// DefaultTwoPhaseConfig returns the reference operating point.
func DefaultTwoPhaseConfig() TwoPhaseConfig {
	return TwoPhaseConfig{Quantum: 10_000, Slices: 4}
}

// Validate reports the first configuration problem.
func (c *TwoPhaseConfig) Validate() error {
	if c.Quantum == 0 {
		return fmt.Errorf("manycore: twophase: zero Quantum")
	}
	if c.Slices <= 0 {
		return fmt.Errorf("manycore: twophase: non-positive Slices")
	}
	return nil
}

// Requirement clamp bounds: a thread always deserves a sliver of a
// core and never more than a handful of cores' worth of efficiency.
const (
	twoPhaseMinReq = 0.05
	twoPhaseMaxReq = 4.0
)

// TwoPhase is the two-phase proportional allocator: phase 1 greedily
// hands out core slices in virtual-time order — each pop grants the
// most-starved thread one slice on the most suitable core whose load
// is below 100% — and phase 2 matches the granted slices into a
// per-slice schedule that minimizes context switches by keeping each
// thread's slices contiguous on one core. Requirements (predicted
// IPC/Watt, optionally refined by the HPE estimator) set the
// proportional share: a thread's virtual time advances by 1/req per
// granted slice, so efficient threads earn more slices per epoch.
//
// The invariant the property test pins down: no core is ever
// allocated more than Slices slices per epoch — load never exceeds
// 100%.
type TwoPhase struct {
	cfg TwoPhaseConfig

	nextTick  uint64
	slice     int // current slice index within the epoch
	applied   uint64
	haveAlloc bool

	// Per-thread persistent state.
	vt         []float64 // virtual time (stride scheduling)
	req        []float64 // requirement: predicted IPC/Watt, clamped
	lastCommit []uint64
	lastClass  [][isa.NumClasses]uint64
	lastEnergy []float64
	runnable   []bool
	prefInt    []bool // estimator says the INT flavor suits the thread

	// Topology, fixed at Reset.
	poolIsInt []bool // per pool: majority flavor
	poolOf    []int  // per core

	// Per-epoch allocation.
	load     []int   // load[core] in slices; never exceeds cfg.Slices
	slotCore []int32 // thread's core this epoch, -1 if none
	slots    []int32 // slices granted to the thread this epoch
	sched    []int32 // sched[c*Slices+s] = thread, -1 idle

	// Heap of runnable threads ordered by (vt, id).
	heap []int32

	// Per-tick scratch.
	buf       []amp.Move
	moveEpoch uint32
	moveMark  []uint32
}

// NewTwoPhase builds the allocator.
func NewTwoPhase(cfg TwoPhaseConfig) *TwoPhase {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	return &TwoPhase{cfg: cfg}
}

// Name implements amp.MoveScheduler.
func (p *TwoPhase) Name() string { return "twophase" }

// Applied returns how many epochs recomputed a non-empty allocation.
func (p *TwoPhase) Applied() uint64 { return p.applied }

// CoreLoads returns the current epoch's per-core load in slices
// (property tests assert it never exceeds Slices).
func (p *TwoPhase) CoreLoads() []int {
	out := make([]int, len(p.load))
	copy(out, p.load)
	return out
}

// Slices returns the configured per-core capacity.
func (p *TwoPhase) Slices() int { return p.cfg.Slices }

// Reset implements amp.MoveScheduler.
func (p *TwoPhase) Reset(v amp.View) {
	n, m := v.NumCores(), v.NumThreads()
	p.nextTick = v.Cycle() + p.cfg.Quantum
	p.slice = 0
	p.applied = 0
	p.haveAlloc = false

	p.vt = make([]float64, m)
	p.req = make([]float64, m)
	p.lastCommit = make([]uint64, m)
	p.lastClass = make([][isa.NumClasses]uint64, m)
	p.lastEnergy = make([]float64, m)
	p.runnable = make([]bool, m)
	p.prefInt = make([]bool, m)
	p.poolOf = make([]int, n)
	p.load = make([]int, n)
	p.slotCore = make([]int32, m)
	p.slots = make([]int32, m)
	p.sched = make([]int32, n*p.cfg.Slices)
	p.moveMark = make([]uint32, m)
	p.moveEpoch = 0

	maxPool := 0
	for c := 0; c < n; c++ {
		p.poolOf[c] = v.CorePool(c)
		if p.poolOf[c] > maxPool {
			maxPool = p.poolOf[c]
		}
	}
	intCount := make([]int, maxPool+1)
	total := make([]int, maxPool+1)
	for c := 0; c < n; c++ {
		total[p.poolOf[c]]++
		if v.CoreConfig(c).Name == "INT" {
			intCount[p.poolOf[c]]++
		}
	}
	p.poolIsInt = make([]bool, maxPool+1)
	for pl := range p.poolIsInt {
		p.poolIsInt[pl] = total[pl] > 0 && 2*intCount[pl] >= total[pl]
	}

	var allowAll uint64
	for pl := 0; pl <= maxPool; pl++ {
		if total[pl] > 0 {
			allowAll |= 1 << uint(pl)
		}
	}
	for t := 0; t < m; t++ {
		arch := v.Arch(t)
		arch.Sync()
		p.lastCommit[t] = arch.Committed
		p.lastClass[t] = arch.CommittedByClass
		p.lastEnergy[t] = v.ThreadEnergyNJ(t)
		p.req[t] = 1
		p.runnable[t] = v.AffinityMask(t)&allowAll != 0
	}
}

// --- virtual-time heap ----------------------------------------------

func (p *TwoPhase) heapLess(a, b int32) bool {
	if p.vt[a] != p.vt[b] {
		return p.vt[a] < p.vt[b]
	}
	return a < b
}

func (p *TwoPhase) heapUp(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if !p.heapLess(p.heap[i], p.heap[parent]) {
			break
		}
		p.heap[i], p.heap[parent] = p.heap[parent], p.heap[i]
		i = parent
	}
}

func (p *TwoPhase) heapDown(i int) {
	for {
		l, r := 2*i+1, 2*i+2
		small := i
		if l < len(p.heap) && p.heapLess(p.heap[l], p.heap[small]) {
			small = l
		}
		if r < len(p.heap) && p.heapLess(p.heap[r], p.heap[small]) {
			small = r
		}
		if small == i {
			return
		}
		p.heap[i], p.heap[small] = p.heap[small], p.heap[i]
		i = small
	}
}

func (p *TwoPhase) heapPop() int32 {
	t := p.heap[0]
	last := len(p.heap) - 1
	p.heap[0] = p.heap[last]
	p.heap = p.heap[:last]
	if last > 0 {
		p.heapDown(0)
	}
	return t
}

func (p *TwoPhase) heapPush(t int32) {
	p.heap = append(p.heap, t)
	p.heapUp(len(p.heap) - 1)
}

// --------------------------------------------------------------------

// observe refreshes requirements from the closing epoch.
func (p *TwoPhase) observe(v amp.View, epochCycles uint64) {
	n := v.NumCores()
	for c := 0; c < n; c++ {
		t := v.ThreadOnCore(c)
		if t < 0 {
			continue
		}
		arch := v.Arch(t)
		committed := arch.Committed - p.lastCommit[t]
		energy := v.ThreadEnergyNJ(t) - p.lastEnergy[t]
		if committed == 0 || energy <= 0 {
			continue
		}
		arch.Sync()
		var intN, fpN uint64
		for cl := isa.Class(0); cl < isa.NumClasses; cl++ {
			d := arch.CommittedByClass[cl] - p.lastClass[t][cl]
			if cl.IsInt() {
				intN += d
			} else if cl.IsFP() {
				fpN += d
			}
		}
		p.lastCommit[t] = arch.Committed
		p.lastClass[t] = arch.CommittedByClass
		p.lastEnergy[t] = v.ThreadEnergyNJ(t)

		ipc := float64(committed) / float64(epochCycles)
		seconds := float64(epochCycles) / (v.FreqGHz() * 1e9)
		watts := energy * 1e-9 / seconds
		ipcw := ipc / watts
		ratio := 1.0
		if p.cfg.Estimator != nil {
			intPct := 100 * float64(intN) / float64(committed)
			fpPct := 100 * float64(fpN) / float64(committed)
			ratio = p.cfg.Estimator.RatioIntOverFP(intPct, fpPct)
		}
		p.prefInt[t] = ratio >= 1
		// Requirement: the thread's predicted IPC/Watt on its favored
		// flavor — what one slice of the right core is worth to the
		// system.
		req := ipcw
		if ratio > 1 {
			req = ipcw * ratio
		}
		if req < twoPhaseMinReq {
			req = twoPhaseMinReq
		}
		if req > twoPhaseMaxReq {
			req = twoPhaseMaxReq
		}
		p.req[t] = req
	}
}

// pickCore selects the core for thread t's first slice of the epoch:
// the least-loaded compatible core with load < Slices, preferring the
// flavor pools the estimator favors for t.
func (p *TwoPhase) pickCore(v amp.View, t int32) int {
	n := v.NumCores()
	aff := v.AffinityMask(int(t))
	best, bestLoad := -1, p.cfg.Slices
	bestPref := false
	for c := 0; c < n; c++ {
		pl := p.poolOf[c]
		if aff&(1<<uint(pl)) == 0 || p.load[c] >= p.cfg.Slices {
			continue
		}
		pref := p.cfg.Estimator == nil || p.poolIsInt[pl] == p.prefInt[t]
		// Preferred-pool cores win over non-preferred ones at any
		// load; within a preference tier, least load wins, lowest
		// index breaking ties.
		if best < 0 || (pref && !bestPref) || (pref == bestPref && p.load[c] < bestLoad) {
			best, bestLoad, bestPref = c, p.load[c], pref
		}
	}
	return best
}

// allocate runs the two phases for a new epoch.
func (p *TwoPhase) allocate(v amp.View) {
	n, m := v.NumCores(), v.NumThreads()
	capacity := n * p.cfg.Slices

	// Normalize virtual times so they never drift into float trouble.
	minVT := 0.0
	first := true
	for t := 0; t < m; t++ {
		if !p.runnable[t] {
			continue
		}
		if first || p.vt[t] < minVT {
			minVT, first = p.vt[t], false
		}
	}
	p.heap = p.heap[:0]
	for t := 0; t < m; t++ {
		if !p.runnable[t] {
			continue
		}
		p.vt[t] -= minVT
		p.heapPush(int32(t))
	}
	for c := 0; c < n; c++ {
		p.load[c] = 0
	}
	for t := 0; t < m; t++ {
		p.slotCore[t] = -1
		p.slots[t] = 0
	}

	// Phase 1: proportional greedy. Each pop grants one slice; a
	// thread's slices stay on one core (cheap phase 2, warm caches),
	// so a thread whose core fills up — or who already owns a full
	// epoch — leaves the heap until next epoch.
	granted := 0
	for granted < capacity && len(p.heap) > 0 {
		t := p.heapPop()
		var c int
		if p.slotCore[t] >= 0 {
			if int(p.slots[t]) >= p.cfg.Slices {
				continue // already owns a whole core's epoch
			}
			c = int(p.slotCore[t])
			if p.load[c] >= p.cfg.Slices {
				continue // its core is full; wait for next epoch
			}
		} else {
			c = p.pickCore(v, t)
			if c < 0 {
				continue // nothing compatible has spare capacity
			}
			p.slotCore[t] = int32(c)
		}
		p.load[c]++
		p.slots[t]++
		granted++
		p.vt[t] += 1 / p.req[t]
		p.heapPush(t)
	}

	// Phase 2: slice matching. Slices are handed out contiguously per
	// core in thread-id order, so each core context-switches at most
	// (threads-1) times per epoch.
	for i := range p.sched {
		p.sched[i] = -1
	}
	fill := make([]int, n)
	for t := 0; t < m; t++ {
		c := p.slotCore[t]
		if c < 0 {
			continue
		}
		base := int(c) * p.cfg.Slices
		for s := int32(0); s < p.slots[t]; s++ {
			p.sched[base+fill[c]] = int32(t)
			fill[c]++
		}
	}
	p.haveAlloc = true
	if granted > 0 {
		p.applied++
	}
}

// Tick implements amp.MoveScheduler; the per-cycle gate is O(1) and
// allocation-free.
//
//ampvet:hotpath
func (p *TwoPhase) Tick(v amp.View) []amp.Move {
	if v.Cycle() < p.nextTick {
		return nil
	}
	return p.sliceTick(v)
}

// sliceTick advances one scheduling slice. Epoch boundaries cost
// O(threads·log threads + cores·slices); intermediate slice boundaries
// cost O(cores). It fires at Quantum rate with reused scratch.
func (p *TwoPhase) sliceTick(v amp.View) []amp.Move {
	p.nextTick = v.Cycle() + p.cfg.Quantum

	if !p.haveAlloc || p.slice >= p.cfg.Slices-1 {
		// Epoch boundary: close the observation window, reallocate,
		// restart at slice 0.
		if p.haveAlloc {
			p.observe(v, uint64(p.cfg.Slices)*p.cfg.Quantum)
		}
		p.allocate(v)
		p.slice = 0
	} else {
		p.slice++
	}

	// Emit the moves that realize this slice's schedule.
	n := len(p.load)
	p.buf = p.buf[:0]
	p.moveEpoch++
	for c := 0; c < n; c++ {
		target := p.sched[c*p.cfg.Slices+p.slice]
		if target >= 0 && int(target) != v.ThreadOnCore(c) {
			p.buf = append(p.buf, amp.Move{Thread: int(target), Core: c})
			p.moveMark[target] = p.moveEpoch
		}
	}
	// Park occupants of cores idle this slice, unless the batch
	// already relocates them (a duplicate thread would invalidate the
	// whole batch).
	for c := 0; c < n; c++ {
		target := p.sched[c*p.cfg.Slices+p.slice]
		if target >= 0 {
			continue
		}
		if o := v.ThreadOnCore(c); o >= 0 && p.moveMark[o] != p.moveEpoch {
			p.buf = append(p.buf, amp.Move{Thread: o, Core: amp.ParkCore})
			p.moveMark[o] = p.moveEpoch
		}
	}
	if len(p.buf) == 0 {
		return nil
	}
	return p.buf
}

var _ amp.MoveScheduler = (*TwoPhase)(nil)
