// Package manycore generalizes the paper's dual-core system to N
// asymmetric cores and M threads (§VIII: "The methodology described
// here for an INT and FP cores can be followed for other types of
// asymmetric cores"; §II criticizes sampling-based schedulers as "not
// scalable to an AMP with many different cores").
//
// The package reuses the core model, power model and workloads of the
// dual-core reproduction; only the assignment machinery generalizes.
// Cores are grouped into pools (flavors: INT vs FP, big vs small) and
// threads carry affinity masks constraining which pools they may use.
// A scheduler implementing the unified amp.MoveScheduler interface
// observes the system through amp.View and returns batches of
// amp.Move relocations; the system applies each batch with the usual
// squash-and-stall reconfiguration cost, charged per affected core —
// unaffected cores keep executing, which is what makes fine-grained
// scheduling affordable at hundreds of cores.
//
// With M > N the machine time-shares: threads not bound to any core
// are parked (amp.ParkCore) — they keep their architectural state but
// commit nothing and draw no power until a later move places them.
package manycore

import (
	"context"
	"fmt"
	"math"

	"ampsched/internal/amp"
	"ampsched/internal/cache"
	"ampsched/internal/cpu"
	"ampsched/internal/power"
	"ampsched/internal/workload"
)

// MaxPools bounds pool indexes: affinity masks are 64-bit.
const MaxPools = 64

// CoreSpec describes one core of the machine.
type CoreSpec struct {
	// Config is the core's microarchitecture and power model.
	Config *cpu.Config
	// Pool is the flavor group the core belongs to (bit Pool of a
	// thread's affinity mask gates placement). Must be in [0, MaxPools).
	Pool int
}

// ThreadSpec describes one software thread.
type ThreadSpec struct {
	Bench *workload.Benchmark
	Seed  uint64
	// Affinity is the pool bit mask: bit p set means the thread may
	// run on cores of pool p. Zero means unconstrained (amp.AllPools).
	Affinity uint64
}

// Config holds system-level knobs.
type Config struct {
	// ReassignOverheadCycles freezes each core affected by a move
	// batch while the change is applied (pipeline squash + state
	// transfer). 0 means amp.DefaultSwapOverheadCycles.
	ReassignOverheadCycles uint64
	// WatchdogCycles is the progress-check period: a run that commits
	// nothing for this long aborts with a *amp.WedgedError. 0 means
	// amp.DefaultWatchdogCycles.
	WatchdogCycles uint64
	// CycleBudget bounds one run call's total cycles (0 = unlimited).
	CycleBudget uint64
	// Engine builds each core's simulation engine; nil selects the
	// cycle-accurate cpu.DetailedFactory.
	//
	// Deprecated: pass WithEngine to New instead. The field remains
	// functional for one release; the option takes precedence.
	Engine cpu.EngineFactory
}

// withDefaults resolves the zero-value knobs.
func (c Config) withDefaults() Config {
	if c.ReassignOverheadCycles == 0 {
		c.ReassignOverheadCycles = amp.DefaultSwapOverheadCycles
	}
	if c.WatchdogCycles == 0 {
		c.WatchdogCycles = amp.DefaultWatchdogCycles
	}
	return c
}

// System is an N-core, M-thread asymmetric multicore.
type System struct {
	cores    []cpu.Engine
	models   []*power.Model
	pools    []int
	threads  []*amp.Thread
	affinity []uint64
	binding  []int // binding[core] = thread, -1 when idle
	coreOf   []int // coreOf[thread] = core, amp.ParkCore when parked
	sched    amp.MoveScheduler
	cfg      Config

	// engineFactory builds the engines (WithEngine or the deprecated
	// Config.Engine); nil means cpu.DetailedFactory.
	engineFactory cpu.EngineFactory
	injector      amp.SwapInjector
	obs           amp.Observer
	tel           *telemetryHook

	cycle        uint64 //ampvet:unit cycles
	stride       uint64
	reassigns    uint64 // applied move batches
	moves        uint64 // individual relocations applied
	failed       uint64 // batches dropped by the fault injector
	invalid      uint64 // malformed batches ignored
	lastReassign uint64
	stallUntil   []uint64 // per-core frozen-window end

	lastAct   []cpu.Activity
	lastCache []power.CacheStats

	// Scratch state for applyMoves: epoch-stamped marks avoid O(N+M)
	// clears per batch, so batch validation is O(len(batch)).
	markEpoch  uint64
	threadMark []uint64
	coreMark   []uint64
	batch      []amp.Move
	touched    []int
}

// New builds an N-core, M-thread system. Initial placement is greedy
// and deterministic: thread i binds to the lowest-indexed free core
// whose pool its affinity mask allows; threads left over start parked.
// sched may be nil (the initial assignment is kept). Zero-valued
// Config knobs take their documented defaults. Instrumentation is
// attached with functional options: WithObserver, WithFaultPlan,
// WithEngine, WithTelemetry.
func New(cores []CoreSpec, threads []ThreadSpec, sched amp.MoveScheduler, cfg Config, opts ...Option) (*System, error) {
	n, m := len(cores), len(threads)
	if n < 1 {
		return nil, fmt.Errorf("manycore: need at least 1 core, got %d", n)
	}
	if m < 1 {
		return nil, fmt.Errorf("manycore: need at least 1 thread, got %d", m)
	}
	cfg = cfg.withDefaults()
	s := &System{
		cores:      make([]cpu.Engine, n),
		models:     make([]*power.Model, n),
		pools:      make([]int, n),
		threads:    make([]*amp.Thread, m),
		affinity:   make([]uint64, m),
		binding:    make([]int, n),
		coreOf:     make([]int, m),
		sched:      sched,
		cfg:        cfg,
		stallUntil: make([]uint64, n),
		lastAct:    make([]cpu.Activity, n),
		lastCache:  make([]power.CacheStats, n),
		threadMark: make([]uint64, m),
		coreMark:   make([]uint64, n),
	}
	s.engineFactory = cfg.Engine
	for _, opt := range opts {
		if opt != nil {
			opt(s)
		}
	}
	factory := s.engineFactory
	if factory == nil {
		factory = cpu.DetailedFactory
	}
	s.stride = 1
	for c, spec := range cores {
		if spec.Config == nil {
			return nil, fmt.Errorf("manycore: core %d has nil Config", c)
		}
		if spec.Pool < 0 || spec.Pool >= MaxPools {
			return nil, fmt.Errorf("manycore: core %d pool %d outside [0,%d)", c, spec.Pool, MaxPools)
		}
		eng, err := factory(spec.Config)
		if err != nil {
			return nil, fmt.Errorf("manycore: engine for core %d: %w", c, err)
		}
		s.cores[c] = eng
		if st := eng.Stride(); st > s.stride {
			s.stride = st
		}
		s.models[c] = power.NewModel(spec.Config)
		s.pools[c] = spec.Pool
		s.binding[c] = -1
	}
	for t, spec := range threads {
		if spec.Bench == nil {
			return nil, fmt.Errorf("manycore: thread %d has nil Bench", t)
		}
		aff := spec.Affinity
		if aff == 0 {
			aff = amp.AllPools
		}
		s.affinity[t] = aff
		// Spread each thread's address space far apart.
		s.threads[t] = amp.NewThread(t, spec.Bench, spec.Seed, uint64(t)<<41)
		s.coreOf[t] = amp.ParkCore
	}
	for t := 0; t < m; t++ {
		for c := 0; c < n; c++ {
			if s.binding[c] < 0 && s.affinity[t]&(1<<uint(s.pools[c])) != 0 {
				s.bind(c, t)
				break
			}
		}
	}
	if sched != nil {
		sched.Reset(s)
	}
	return s, nil
}

// bind attaches thread t to core c (which must be free).
func (s *System) bind(c, t int) {
	s.binding[c] = t
	s.coreOf[t] = c
	s.cores[c].Bind(s.threads[t].Gen, &s.threads[t].Arch)
}

// --- amp.View -------------------------------------------------------

// NumCores implements amp.View.
func (s *System) NumCores() int { return len(s.cores) }

// NumThreads implements amp.View.
func (s *System) NumThreads() int { return len(s.threads) }

// Cycle implements amp.View.
func (s *System) Cycle() uint64 { return s.cycle }

// ThreadOnCore implements amp.View (-1 when the core is idle).
func (s *System) ThreadOnCore(core int) int { return s.binding[core] }

// CoreOfThread implements amp.View (amp.ParkCore when parked).
func (s *System) CoreOfThread(thread int) int { return s.coreOf[thread] }

// Arch implements amp.View.
func (s *System) Arch(thread int) *cpu.ThreadArch { return &s.threads[thread].Arch }

// ThreadEnergyNJ implements amp.View.
func (s *System) ThreadEnergyNJ(thread int) float64 {
	if c := s.coreOf[thread]; c >= 0 {
		s.flushCoreEnergy(c)
	}
	return s.threads[thread].EnergyNJ
}

// LastSwapCycle implements amp.View: the cycle the last move batch's
// stall window ended (0 if none).
func (s *System) LastSwapCycle() uint64 { return s.lastReassign }

// LastReassignCycle is the historical name of LastSwapCycle.
func (s *System) LastReassignCycle() uint64 { return s.lastReassign }

// SwapFailures implements amp.View: move batches the fault injector
// dropped.
func (s *System) SwapFailures() uint64 { return s.failed }

// CoreConfig implements amp.View.
func (s *System) CoreConfig(core int) *cpu.Config { return s.cores[core].Config() }

// L2Stats implements amp.View.
func (s *System) L2Stats(core int) cache.Stats { return s.cores[core].Stats().L2 }

// FreqGHz implements amp.View.
//
//ampvet:unit cycles_per_second
func (s *System) FreqGHz() float64 { return s.cores[0].Config().FreqGHz }

// AffinityMask implements amp.View.
func (s *System) AffinityMask(thread int) uint64 { return s.affinity[thread] }

// CorePool implements amp.View.
func (s *System) CorePool(core int) int { return s.pools[core] }

// --------------------------------------------------------------------

// Reassigns returns the number of move batches applied.
func (s *System) Reassigns() uint64 { return s.reassigns }

// Moves returns the number of individual thread relocations applied.
func (s *System) Moves() uint64 { return s.moves }

// InvalidBatches returns the number of malformed move batches ignored.
func (s *System) InvalidBatches() uint64 { return s.invalid }

// Core exposes a core for tests. It returns nil when the system runs
// at a non-detailed fidelity; use Engine for the generic handle.
func (s *System) Core(i int) *cpu.Core {
	c, _ := s.cores[i].(*cpu.Core)
	return c
}

// Engine exposes core i's simulation engine.
func (s *System) Engine(i int) cpu.Engine { return s.cores[i] }

// Thread exposes a thread.
func (s *System) Thread(i int) *amp.Thread { return s.threads[i] }

// emit publishes an event if an observer is installed.
//
//ampvet:hotpath
func (s *System) emit(e amp.Event) {
	if s.obs == nil {
		return
	}
	if len(s.binding) >= 2 {
		e.ThreadOnCore = [2]int{s.binding[0], s.binding[1]}
	}
	s.obs.Event(e)
}

// flushCoreEnergy attributes core c's un-attributed energy to its
// current occupant. Idle cores are power-gated: they accumulate no
// activity, so there is nothing to attribute.
func (s *System) flushCoreEnergy(c int) {
	t := s.binding[c]
	if t < 0 {
		return
	}
	st := s.cores[c].Stats()
	act := st.Act
	cs := power.CacheStats{L1I: st.L1I, L1D: st.L1D, L2: st.L2}
	e := s.models[c].EnergyNJ(act.Sub(s.lastAct[c]), cs.Sub(s.lastCache[c]))
	s.threads[t].EnergyNJ += e
	s.lastAct[c] = act
	s.lastCache[c] = cs
}

func (s *System) flushEnergy() {
	for c := range s.cores {
		s.flushCoreEnergy(c)
	}
}

// nextEpoch advances the scratch-mark epoch.
func (s *System) nextEpoch() uint64 {
	s.markEpoch++
	return s.markEpoch
}

// applyMoves validates and applies one scheduler move batch. A batch
// is rejected whole — counted in InvalidBatches, nothing applied — if
// any move names an out-of-range thread or core, relocates the same
// thread twice, targets the same core twice, or violates the thread's
// affinity mask. No-op moves (thread already where the move puts it)
// are dropped; a batch reduced to nothing costs nothing. The fault
// injector is consulted once per effective batch. The occupant of a
// targeted core that is not itself relocated by the batch is
// implicitly parked. Each affected core — move sources and targets —
// freezes for the configured overhead; untouched cores keep running.
//
//ampvet:hotpath
func (s *System) applyMoves(mv []amp.Move) bool {
	n, m := len(s.cores), len(s.threads)
	epoch := s.nextEpoch()
	s.batch = s.batch[:0]
	for i := range mv {
		mov := mv[i]
		if mov.Thread < 0 || mov.Thread >= m {
			return s.rejectBatch()
		}
		if mov.Core != amp.ParkCore && (mov.Core < 0 || mov.Core >= n) {
			return s.rejectBatch()
		}
		if s.threadMark[mov.Thread] == epoch {
			return s.rejectBatch()
		}
		s.threadMark[mov.Thread] = epoch
		if mov.Core >= 0 {
			if s.coreMark[mov.Core] == epoch {
				return s.rejectBatch()
			}
			s.coreMark[mov.Core] = epoch
			if s.affinity[mov.Thread]&(1<<uint(s.pools[mov.Core])) == 0 {
				return s.rejectBatch()
			}
		}
		if s.coreOf[mov.Thread] == mov.Core {
			continue // no-op
		}
		//ampvet:allow hotpathalloc reused scratch; capacity stabilizes after the first batch
		s.batch = append(s.batch, mov)
	}
	if len(s.batch) == 0 {
		return false
	}

	factor := 1.0
	if s.injector != nil {
		out := s.injector.SwapOutcome(s.cycle)
		if out.Fail {
			s.failed++
			s.tel.failedInc()
			s.emit(amp.Event{Kind: amp.EventSwapFailed, Cycle: s.cycle})
			return false
		}
		if out.OverheadFactor > 0 {
			factor = out.OverheadFactor
		}
	}

	// Affected cores: every move source and target, deduplicated with
	// a fresh mark epoch.
	epoch = s.nextEpoch()
	s.touched = s.touched[:0]
	for i := range s.batch {
		mov := s.batch[i]
		if c := s.coreOf[mov.Thread]; c >= 0 && s.coreMark[c] != epoch {
			s.coreMark[c] = epoch
			//ampvet:allow hotpathalloc reused scratch; capacity stabilizes after the first batch
			s.touched = append(s.touched, c)
		}
		if c := mov.Core; c >= 0 && s.coreMark[c] != epoch {
			s.coreMark[c] = epoch
			//ampvet:allow hotpathalloc reused scratch; capacity stabilizes after the first batch
			s.touched = append(s.touched, c)
		}
	}

	// Attribute energy under the old binding, then detach every
	// affected core.
	for _, c := range s.touched {
		s.flushCoreEnergy(c)
		if s.binding[c] >= 0 {
			s.cores[c].Unbind()
		}
	}

	// Pass 1: vacate the sources of every relocated thread. After this
	// pass, any thread still bound to a targeted core was not moved by
	// the batch — it is implicitly parked by pass 2.
	for i := range s.batch {
		t := s.batch[i].Thread
		if c := s.coreOf[t]; c >= 0 {
			s.binding[c] = -1
		}
		s.coreOf[t] = amp.ParkCore
	}
	// Pass 2: place.
	for i := range s.batch {
		mov := s.batch[i]
		if mov.Core < 0 {
			continue // explicit park, already done in pass 1
		}
		if u := s.binding[mov.Core]; u >= 0 {
			s.coreOf[u] = amp.ParkCore // implicit park
		}
		s.binding[mov.Core] = mov.Thread
		s.coreOf[mov.Thread] = mov.Core
	}
	for _, c := range s.touched {
		if t := s.binding[c]; t >= 0 {
			s.cores[c].Bind(s.threads[t].Gen, &s.threads[t].Arch)
		}
	}

	overhead := s.cfg.ReassignOverheadCycles
	if factor != 1 {
		overhead = uint64(float64(overhead) * factor)
	}
	// The batch lands at the end of cycle s.cycle (which already
	// executed), so each affected core's frozen window is
	// [cycle+1, cycle+overhead]; like amp, reassignments are dated from
	// completion so interval-based rules measure execution time.
	until := s.cycle + 1 + overhead
	for _, c := range s.touched {
		s.stallUntil[c] = until
	}
	s.lastReassign = until
	s.reassigns++
	s.moves += uint64(len(s.batch))
	s.tel.reassign(len(s.batch))
	s.emit(amp.Event{Kind: amp.EventReassign, Cycle: s.cycle, Overhead: overhead, Delayed: factor != 1})
	return true
}

// rejectBatch counts one malformed batch and applies nothing.
func (s *System) rejectBatch() bool {
	s.invalid++
	s.tel.invalidInc()
	return false
}

// ThreadResult mirrors amp.ThreadResult for M threads.
type ThreadResult struct {
	Name       string
	Committed  uint64  //ampvet:unit instructions
	EnergyNJ   float64 //ampvet:unit nanojoules
	IPC        float64 //ampvet:unit ipc
	Watts      float64 //ampvet:unit watts
	IPCPerWatt float64 //ampvet:unit ipc_per_watt
}

// Result summarizes a completed run.
type Result struct {
	Scheduler string
	Cycles    uint64 //ampvet:unit cycles
	// Reassigns counts applied move batches; Moves counts the
	// individual relocations inside them.
	Reassigns uint64
	Moves     uint64
	// FailedReassigns counts batches the fault injector dropped;
	// InvalidBatches counts malformed batches the system ignored.
	FailedReassigns uint64
	InvalidBatches  uint64
	Threads         []ThreadResult
}

// GeomeanIPCW returns the geometric mean of per-thread IPC/Watt. It
// is 0 if any thread has non-positive IPC/Watt, which makes it
// unusable for time-shared runs where some threads never got a core;
// those use WeightedIPCW.
func (r *Result) GeomeanIPCW() float64 {
	prod := 1.0
	for _, t := range r.Threads {
		if t.IPCPerWatt <= 0 {
			return 0
		}
		prod *= t.IPCPerWatt
	}
	// n-th root.
	n := float64(len(r.Threads))
	return math.Pow(prod, 1/n)
}

// WeightedIPCW returns system throughput per watt: total committed
// instructions per cycle divided by total average power. Unlike the
// geomean it is well-defined when some threads were parked for the
// whole run.
func (r *Result) WeightedIPCW() float64 {
	var ipc, watts float64
	for _, t := range r.Threads {
		ipc += t.IPC
		watts += t.Watts
	}
	if watts <= 0 {
		return 0
	}
	return ipc / watts
}

// Run advances until any thread commits limit instructions; see
// RunContext.
//
//ampvet:allow ctxcheck Run is the documented context-free variant of RunContext; Background is its contract
func (s *System) Run(limit uint64) (Result, error) {
	return s.RunContext(context.Background(), limit)
}

// MustRun is Run for callers that treat a wedged system as a bug.
func (s *System) MustRun(limit uint64) Result {
	res, err := s.Run(limit)
	if err != nil {
		panic(err)
	}
	return res
}

// RunContext advances until any thread commits limit instructions.
// When no thread makes commit progress for a full watchdog window, or
// the cycle budget is exhausted, the run aborts with the state so far
// plus a *amp.WedgedError (match with errors.Is(err, amp.ErrWedged)).
// Canceling ctx stops the run at the next check point with the
// partial Result and ctx.Err().
func (s *System) RunContext(ctx context.Context, limit uint64) (Result, error) {
	return s.run(ctx, limit, 0)
}

// RunCycles advances the system for a fixed horizon of cycles; see
// RunCyclesContext.
//
//ampvet:allow ctxcheck RunCycles is the documented context-free variant of RunCyclesContext; Background is its contract
func (s *System) RunCycles(cycles uint64) (Result, error) {
	return s.RunCyclesContext(context.Background(), cycles)
}

// RunCyclesContext advances the system for a fixed horizon of cycles
// — the natural stopping rule for time-shared N×M runs, where
// "until any thread finishes" would reward parking everything but one
// thread. Watchdog, budget and cancellation behave as in RunContext.
func (s *System) RunCyclesContext(ctx context.Context, cycles uint64) (Result, error) {
	return s.run(ctx, 0, s.cycle+cycles)
}

// ctxCheckMask throttles the context poll as in amp.RunContext.
const ctxCheckMask = 1<<12 - 1

// run is the shared loop: limit > 0 stops when any thread commits
// limit instructions; horizon > 0 stops at that absolute cycle.
//
//ampvet:hotpath
func (s *System) run(ctx context.Context, limit, horizon uint64) (Result, error) {
	startCycle := s.cycle
	watchCycle := s.cycle
	watchLast := s.totalCommitted()
	done := ctx.Done()
	s.emit(amp.Event{Kind: amp.EventRunStart, Cycle: s.cycle})

	//ampvet:allow hotpathalloc finish is built once per run, not per cycle
	finish := func(res Result, err error) (Result, error) {
		s.emit(amp.Event{Kind: amp.EventRunEnd, Cycle: s.cycle})
		s.tel.flushRunEnd(s)
		return res, err
	}

	for {
		if limit > 0 && s.anyCommitted(limit) {
			break
		}
		if horizon > 0 && s.cycle >= horizon {
			break
		}
		// Stride loop as in amp.System: detailed engines run with
		// n == 1, analytic engines batch whole windows. Cores share no
		// architectural state, so running them window-sequentially is
		// equivalent to cycle-interleaving. Idle cores are power-gated
		// and skipped entirely; a core inside a reassignment's frozen
		// window burns stall (leakage) cycles instead of executing.
		n := s.stride
		for c := range s.cores {
			if s.binding[c] < 0 {
				continue
			}
			if su := s.stallUntil[c]; s.cycle < su {
				if k := su - s.cycle; k < n {
					s.cores[c].StallCycles(k)
					s.cores[c].Run(s.cycle+k, n-k)
				} else {
					s.cores[c].StallCycles(n)
				}
			} else {
				s.cores[c].Run(s.cycle, n)
			}
		}
		if s.sched != nil {
			if mv := s.sched.Tick(s); len(mv) != 0 {
				s.applyMoves(mv)
			}
		}
		s.cycle += n

		if done != nil && s.cycle&ctxCheckMask < n {
			select {
			case <-done:
				s.emit(amp.Event{Kind: amp.EventCanceled, Cycle: s.cycle})
				return finish(s.result(), ctx.Err())
			default:
			}
		}
		if s.cfg.CycleBudget > 0 && s.cycle-startCycle >= s.cfg.CycleBudget {
			werr := &amp.WedgedError{
				Cycle: s.cycle, Window: s.cfg.CycleBudget,
				Reason: "cycle budget exhausted", Detail: s.stateDump(),
			}
			s.emit(amp.Event{Kind: amp.EventWedged, Cycle: s.cycle, Reason: werr.Reason})
			return finish(s.result(), werr)
		}
		if s.cycle-watchCycle >= s.cfg.WatchdogCycles {
			total := s.totalCommitted()
			if total == watchLast {
				werr := &amp.WedgedError{
					Cycle: s.cycle, Window: s.cfg.WatchdogCycles,
					Reason: "no commit progress", Detail: s.stateDump(),
				}
				s.emit(amp.Event{Kind: amp.EventWedged, Cycle: s.cycle, Reason: werr.Reason})
				return finish(s.result(), werr)
			}
			watchLast = total
			watchCycle = s.cycle
			s.emit(amp.Event{Kind: amp.EventWatchdogReset, Cycle: s.cycle})
		}
	}
	return finish(s.result(), nil)
}

// anyCommitted reports whether any thread reached the commit limit.
//
//ampvet:hotpath
func (s *System) anyCommitted(limit uint64) bool {
	for _, t := range s.threads {
		if t.Arch.Committed >= limit {
			return true
		}
	}
	return false
}

// totalCommitted sums commits across threads (watchdog progress).
//
//ampvet:hotpath
func (s *System) totalCommitted() uint64 {
	var total uint64
	for _, t := range s.threads {
		total += t.Arch.Committed
	}
	return total
}

// stateDump renders the wedge-relevant state for WedgedError.Detail.
func (s *System) stateDump() string {
	bound := 0
	for _, t := range s.binding {
		if t >= 0 {
			bound++
		}
	}
	return fmt.Sprintf("manycore: %d cores (%d bound), %d threads, total committed %d",
		len(s.cores), bound, len(s.threads), s.totalCommitted())
}

// result snapshots the run's outcome at the current cycle.
func (s *System) result() Result {
	s.flushEnergy()
	res := Result{
		Cycles: s.cycle, Reassigns: s.reassigns, Moves: s.moves,
		FailedReassigns: s.failed, InvalidBatches: s.invalid,
		Scheduler: "static",
	}
	if s.sched != nil {
		res.Scheduler = s.sched.Name()
	}
	freq := s.FreqGHz()
	seconds := float64(s.cycle) / (freq * 1e9)
	for _, t := range s.threads {
		tr := ThreadResult{Name: t.Name, Committed: t.Arch.Committed, EnergyNJ: t.EnergyNJ}
		if s.cycle > 0 {
			tr.IPC = float64(t.Arch.Committed) / float64(s.cycle)
		}
		if seconds > 0 {
			tr.Watts = t.EnergyNJ * 1e-9 / seconds
		}
		if tr.Watts > 0 {
			tr.IPCPerWatt = tr.IPC / tr.Watts
		}
		res.Threads = append(res.Threads, tr)
	}
	return res
}

var _ amp.View = (*System)(nil)
