// Package manycore generalizes the paper's dual-core system to N
// asymmetric cores and N threads (§VIII: "The methodology described
// here for an INT and FP cores can be followed for other types of
// asymmetric cores"; §II criticizes sampling-based schedulers as "not
// scalable to an AMP with many different cores").
//
// The package reuses the core model, power model and workloads of the
// dual-core reproduction; only the assignment machinery generalizes:
// a scheduler observes all threads' committed-window compositions and
// proposes a new thread-to-core permutation, which the system applies
// with the usual squash-and-stall reconfiguration cost.
package manycore

import (
	"fmt"
	"math"

	"ampsched/internal/amp"
	"ampsched/internal/cpu"
	"ampsched/internal/power"
	"ampsched/internal/workload"
)

// View is the read-only system state a Scheduler observes.
type View interface {
	NumCores() int
	Cycle() uint64
	ThreadOnCore(core int) int
	CoreOfThread(thread int) int
	Arch(thread int) *cpu.ThreadArch
	CoreConfig(core int) *cpu.Config
	// LastReassignCycle returns when the last reassignment's stall
	// window ended (0 if none).
	LastReassignCycle() uint64
}

// Scheduler proposes thread-to-core assignments. Tick returns nil for
// "no change" or a full permutation newBinding[core] = thread.
type Scheduler interface {
	Name() string
	Reset(v View)
	Tick(v View) []int
}

// Config holds system-level knobs.
type Config struct {
	// ReassignOverheadCycles freezes all cores while an assignment
	// change is applied (pipeline squash + state transfer).
	ReassignOverheadCycles uint64
	// Engine builds each core's simulation engine; nil selects the
	// cycle-accurate cpu.DetailedFactory.
	Engine cpu.EngineFactory
}

// System is an N-core, N-thread asymmetric multicore.
type System struct {
	cores   []cpu.Engine
	models  []*power.Model
	threads []*amp.Thread
	binding []int // binding[core] = thread
	sched   Scheduler
	cfg     Config

	cycle        uint64
	stride       uint64 // max engine stride; 1 for detailed fidelity
	reassigns    uint64
	lastReassign uint64
	stallUntil   uint64

	lastAct   []cpu.Activity
	lastCache []power.CacheStats
}

// NewSystem builds an N-core system; thread i starts on core i.
func NewSystem(coreCfgs []*cpu.Config, benches []*workload.Benchmark, seeds []uint64,
	sched Scheduler, cfg Config) (*System, error) {
	n := len(coreCfgs)
	if n < 2 {
		return nil, fmt.Errorf("manycore: need at least 2 cores, got %d", n)
	}
	if len(benches) != n || len(seeds) != n {
		return nil, fmt.Errorf("manycore: %d cores but %d benchmarks / %d seeds",
			n, len(benches), len(seeds))
	}
	if cfg.ReassignOverheadCycles == 0 {
		cfg.ReassignOverheadCycles = amp.DefaultSwapOverheadCycles
	}
	factory := cfg.Engine
	if factory == nil {
		factory = cpu.DetailedFactory
	}
	s := &System{
		cores:     make([]cpu.Engine, n),
		models:    make([]*power.Model, n),
		threads:   make([]*amp.Thread, n),
		binding:   make([]int, n),
		sched:     sched,
		cfg:       cfg,
		lastAct:   make([]cpu.Activity, n),
		lastCache: make([]power.CacheStats, n),
	}
	s.stride = 1
	for i := 0; i < n; i++ {
		eng, err := factory(coreCfgs[i])
		if err != nil {
			return nil, fmt.Errorf("manycore: engine for core %d: %w", i, err)
		}
		s.cores[i] = eng
		if st := eng.Stride(); st > s.stride {
			s.stride = st
		}
		s.models[i] = power.NewModel(coreCfgs[i])
		// Spread each thread's address space far apart.
		s.threads[i] = amp.NewThread(i, benches[i], seeds[i], uint64(i)<<41)
		s.binding[i] = i
		s.cores[i].Bind(s.threads[i].Gen, &s.threads[i].Arch)
	}
	if sched != nil {
		sched.Reset(s)
	}
	return s, nil
}

// --- View -----------------------------------------------------------

// NumCores implements View.
func (s *System) NumCores() int { return len(s.cores) }

// Cycle implements View.
func (s *System) Cycle() uint64 { return s.cycle }

// ThreadOnCore implements View.
func (s *System) ThreadOnCore(core int) int { return s.binding[core] }

// CoreOfThread implements View.
func (s *System) CoreOfThread(thread int) int {
	for c, t := range s.binding {
		if t == thread {
			return c
		}
	}
	return -1
}

// Arch implements View.
func (s *System) Arch(thread int) *cpu.ThreadArch { return &s.threads[thread].Arch }

// CoreConfig implements View.
func (s *System) CoreConfig(core int) *cpu.Config { return s.cores[core].Config() }

// LastReassignCycle implements View.
func (s *System) LastReassignCycle() uint64 { return s.lastReassign }

// ---------------------------------------------------------------------

// Reassigns returns the number of assignment changes applied.
func (s *System) Reassigns() uint64 { return s.reassigns }

// Core exposes a core for tests. It returns nil when the system runs
// at a non-detailed fidelity; use Engine for the generic handle.
func (s *System) Core(i int) *cpu.Core {
	c, _ := s.cores[i].(*cpu.Core)
	return c
}

// Engine exposes core i's simulation engine.
func (s *System) Engine(i int) cpu.Engine { return s.cores[i] }

// validPermutation checks that newBinding is a permutation of threads.
func (s *System) validPermutation(newBinding []int) bool {
	if len(newBinding) != len(s.binding) {
		return false
	}
	seen := make([]bool, len(s.binding))
	for _, t := range newBinding {
		if t < 0 || t >= len(seen) || seen[t] {
			return false
		}
		seen[t] = true
	}
	return true
}

func (s *System) flushEnergy() {
	for c := range s.cores {
		st := s.cores[c].Stats()
		act := st.Act
		cs := power.CacheStats{L1I: st.L1I, L1D: st.L1D, L2: st.L2}
		e := s.models[c].EnergyNJ(act.Sub(s.lastAct[c]), cs.Sub(s.lastCache[c]))
		s.threads[s.binding[c]].EnergyNJ += e
		s.lastAct[c] = act
		s.lastCache[c] = cs
	}
}

// reassign applies a new permutation with the configured overhead.
func (s *System) reassign(newBinding []int) {
	s.flushEnergy()
	for c := range s.cores {
		s.cores[c].Unbind()
	}
	copy(s.binding, newBinding)
	for c := range s.cores {
		t := s.threads[s.binding[c]]
		s.cores[c].Bind(t.Gen, &t.Arch)
	}
	s.reassigns++
	s.stallUntil = s.cycle + 1 + s.cfg.ReassignOverheadCycles
	s.lastReassign = s.stallUntil
}

// ThreadResult mirrors amp.ThreadResult for N threads.
type ThreadResult struct {
	Name       string
	Committed  uint64
	EnergyNJ   float64
	IPC        float64
	Watts      float64
	IPCPerWatt float64
}

// Result summarizes a completed run.
type Result struct {
	Scheduler string
	Cycles    uint64
	Reassigns uint64
	Threads   []ThreadResult
}

// GeomeanIPCW returns the geometric mean of per-thread IPC/Watt.
func (r *Result) GeomeanIPCW() float64 {
	prod := 1.0
	for _, t := range r.Threads {
		if t.IPCPerWatt <= 0 {
			return 0
		}
		prod *= t.IPCPerWatt
	}
	// n-th root.
	n := float64(len(r.Threads))
	return math.Pow(prod, 1/n)
}

// Run advances until any thread commits limit instructions. When no
// thread makes commit progress for a full watchdog window the system
// is wedged: Run returns the state so far plus a *amp.WedgedError
// (match with errors.Is(err, amp.ErrWedged)).
func (s *System) Run(limit uint64) (Result, error) {
	watchLast := uint64(0)
	watchCycle := s.cycle
	for {
		finished := false
		for _, t := range s.threads {
			if t.Arch.Committed >= limit {
				finished = true
				break
			}
		}
		if finished {
			break
		}
		// Stride loop as in amp.System: detailed engines run with
		// n == 1 (bit-exact with the old per-cycle loop), analytic
		// engines batch whole windows. Cores share no architectural
		// state, so running them window-sequentially is equivalent to
		// cycle-interleaving.
		n := s.stride
		if s.cycle < s.stallUntil {
			if remain := s.stallUntil - s.cycle; remain < n {
				n = remain
			}
			for _, c := range s.cores {
				c.StallCycles(n)
			}
		} else {
			for _, c := range s.cores {
				c.Run(s.cycle, n)
			}
			if s.sched != nil {
				if nb := s.sched.Tick(s); nb != nil && s.validPermutation(nb) && !samePerm(nb, s.binding) {
					s.reassign(nb)
				}
			}
		}
		s.cycle += n

		if s.cycle-watchCycle >= amp.DefaultWatchdogCycles {
			var total uint64
			for _, t := range s.threads {
				total += t.Arch.Committed
			}
			if total == watchLast {
				return s.result(), &amp.WedgedError{
					Cycle:  s.cycle,
					Reason: "no commit progress",
					Detail: fmt.Sprintf("manycore: %d threads, total committed %d", len(s.threads), total),
				}
			}
			watchLast = total
			watchCycle = s.cycle
		}
	}
	return s.result(), nil
}

// MustRun is Run for callers that treat a wedged system as a bug.
func (s *System) MustRun(limit uint64) Result {
	res, err := s.Run(limit)
	if err != nil {
		panic(err)
	}
	return res
}

// result snapshots the run's outcome at the current cycle.
func (s *System) result() Result {
	s.flushEnergy()
	res := Result{Cycles: s.cycle, Reassigns: s.reassigns, Scheduler: "static"}
	if s.sched != nil {
		res.Scheduler = s.sched.Name()
	}
	freq := s.cores[0].Config().FreqGHz
	seconds := float64(s.cycle) / (freq * 1e9)
	for _, t := range s.threads {
		tr := ThreadResult{Name: t.Name, Committed: t.Arch.Committed, EnergyNJ: t.EnergyNJ}
		if s.cycle > 0 {
			tr.IPC = float64(t.Arch.Committed) / float64(s.cycle)
		}
		if seconds > 0 {
			tr.Watts = t.EnergyNJ * 1e-9 / seconds
		}
		if tr.Watts > 0 {
			tr.IPCPerWatt = tr.IPC / tr.Watts
		}
		res.Threads = append(res.Threads, tr)
	}
	return res
}

func samePerm(a, b []int) bool {
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
