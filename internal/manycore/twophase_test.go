package manycore

import (
	"testing"

	"ampsched/internal/cpu"
)

func TestTwoPhaseConfigValidation(t *testing.T) {
	good := DefaultTwoPhaseConfig()
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := DefaultTwoPhaseConfig()
	bad.Quantum = 0
	if err := bad.Validate(); err == nil {
		t.Fatal("zero quantum accepted")
	}
	bad = DefaultTwoPhaseConfig()
	bad.Slices = 0
	if err := bad.Validate(); err == nil {
		t.Fatal("zero slices accepted")
	}
}

// fixedRatio is an Estimator with a constant prediction.
type fixedRatio struct{ r float64 }

func (fixedRatio) Name() string                          { return "fixed" }
func (f fixedRatio) RatioIntOverFP(_, _ float64) float64 { return f.r }

// xorshift is a tiny deterministic generator for the property test
// (math/rand is banned from simulation-core packages).
type xorshift uint64

func (x *xorshift) next() uint64 {
	v := uint64(*x)
	v ^= v << 13
	v ^= v >> 7
	v ^= v << 17
	*x = xorshift(v)
	return v
}

// TestTwoPhaseNeverOverloadsACore is the allocator's core property:
// across topologies, affinity patterns and commit traces, no core is
// ever granted more than Slices slices per epoch (load <= 100%).
func TestTwoPhaseNeverOverloadsACore(t *testing.T) {
	combos := []struct {
		n, m, slices int
		est          Estimator
	}{
		{1, 1, 1, nil},
		{1, 4, 2, nil},
		{2, 3, 2, nil},
		{3, 8, 4, fixedRatio{1.5}},
		{4, 4, 4, nil},
		{5, 13, 3, fixedRatio{0.5}},
		{8, 2, 2, nil},
	}
	for _, cb := range combos {
		cfgs := make([]*cpu.Config, cb.n)
		pools := make([]int, cb.n)
		for c := 0; c < cb.n; c++ {
			if c%2 == 0 {
				cfgs[c] = cpu.IntCoreConfig()
			} else {
				cfgs[c] = cpu.FPCoreConfig()
				pools[c] = 1
			}
		}
		f := newFakeView(cfgs, pools, cb.m)
		for th := 0; th < cb.m; th++ {
			switch {
			case th%4 == 0:
				f.aff[th] = 1 << 0
			case th%4 == 1 && cb.n > 1:
				f.aff[th] = 1 << 1
			}
		}
		cfg := TwoPhaseConfig{Quantum: 1_000, Slices: cb.slices, Estimator: cb.est}
		p := NewTwoPhase(cfg)
		p.Reset(f)

		rng := xorshift(0x9E3779B97F4A7C15 ^ uint64(cb.n*1000+cb.m))
		commits := make([]uint64, cb.m)
		for tick := 0; tick < 60; tick++ {
			for th := range commits {
				commits[th] = rng.next() % (2 * cfg.Quantum)
			}
			f.step(t, p, cfg.Quantum, commits)
			for c, load := range p.CoreLoads() {
				if load > p.Slices() {
					t.Fatalf("n=%d m=%d slices=%d: core %d load %d > %d",
						cb.n, cb.m, cb.slices, c, load, p.Slices())
				}
			}
		}
	}
}

func TestTwoPhaseSharesCapacityProportionally(t *testing.T) {
	// Single core, 2 slices, two threads: both must be scheduled within
	// an epoch or two — nobody starves under proportional allocation.
	f := newFakeView([]*cpu.Config{cpu.IntCoreConfig()}, []int{0}, 2)
	cfg := TwoPhaseConfig{Quantum: 1_000, Slices: 2}
	p := NewTwoPhase(cfg)
	p.Reset(f)

	ran := [2]bool{}
	commits := []uint64{800, 900}
	for tick := 0; tick < 12; tick++ {
		f.step(t, p, cfg.Quantum, commits)
		if b := f.binding[0]; b >= 0 {
			ran[b] = true
		}
	}
	if !ran[0] || !ran[1] {
		t.Fatalf("threads scheduled: %v, want both", ran)
	}
}

func TestTwoPhaseIntegration(t *testing.T) {
	// 4 cores x 6 threads end to end on the real system.
	sys, err := New(quadCores(),
		specs(t, 90, "gcc", "mcf", "equake", "apsi", "intstress", "fpstress"),
		NewTwoPhase(DefaultTwoPhaseConfig()), Config{})
	if err != nil {
		t.Fatal(err)
	}
	res, err := sys.RunCycles(300_000)
	if err != nil {
		t.Fatal(err)
	}
	if res.Reassigns == 0 {
		t.Fatal("twophase never moved anything on an oversubscribed machine")
	}
	if res.InvalidBatches != 0 {
		t.Fatalf("twophase emitted %d invalid batches", res.InvalidBatches)
	}
	for i, tr := range res.Threads {
		if tr.Committed == 0 {
			t.Fatalf("thread %d starved", i)
		}
	}
	if res.WeightedIPCW() <= 0 {
		t.Fatal("weighted IPC/Watt non-positive")
	}
}
