package manycore

import (
	"ampsched/internal/amp"
)

// Static keeps the initial assignment.
type Static struct{}

// Name implements amp.MoveScheduler.
func (Static) Name() string { return "static" }

// Reset implements amp.MoveScheduler.
func (Static) Reset(amp.View) {}

// Tick implements amp.MoveScheduler.
func (Static) Tick(amp.View) []amp.Move { return nil }

// Rotate is the many-core Round Robin: every Interval cycles the
// thread-to-core assignment advances by one position over the whole
// thread set, so with M > N every thread periodically gets a core —
// the blind-fairness baseline of the N×M comparison. A move is
// emitted only when it respects the thread's affinity mask and
// changes the binding; the batch lives in a reused scratch slice, so
// a decision allocates nothing after the first.
type Rotate struct {
	Interval uint64
	next     uint64
	offset   int
	buf      []amp.Move
}

// NewRotate builds the rotation policy.
func NewRotate(interval uint64) *Rotate {
	if interval == 0 {
		panic("manycore: zero rotate interval")
	}
	return &Rotate{Interval: interval}
}

// Name implements amp.MoveScheduler.
func (r *Rotate) Name() string { return "rotate" }

// Reset implements amp.MoveScheduler.
func (r *Rotate) Reset(v amp.View) {
	r.next = v.Cycle() + r.Interval
	r.offset = 0
	r.buf = r.buf[:0]
}

// Tick implements amp.MoveScheduler; the per-cycle gate is O(1) and
// allocation-free.
//
//ampvet:hotpath
func (r *Rotate) Tick(v amp.View) []amp.Move {
	if v.Cycle() < r.next {
		return nil
	}
	return r.epoch(v)
}

// epoch computes one rotation. Core c's target is thread
// (c + offset) mod M; on the classic N==M all-pools machine this
// reproduces the original shift-by-one rotation. It runs at Interval
// rate, and the batch lives in a reused scratch slice whose capacity
// stabilizes after the first rotation.
func (r *Rotate) epoch(v amp.View) []amp.Move {
	r.next = v.Cycle() + r.Interval
	n, m := v.NumCores(), v.NumThreads()
	if n > m {
		n = m // surplus cores stay idle; duplicate targets are invalid
	}
	r.offset++
	if r.offset >= m {
		r.offset = 0
	}
	r.buf = r.buf[:0]
	for c := 0; c < n; c++ {
		t := (c + r.offset) % m
		if t == v.ThreadOnCore(c) {
			continue
		}
		if v.AffinityMask(t)&(1<<uint(v.CorePool(c))) == 0 {
			continue
		}
		r.buf = append(r.buf, amp.Move{Thread: t, Core: c})
	}
	return r.buf
}

var _ amp.MoveScheduler = (*Rotate)(nil)
var _ amp.MoveScheduler = Static{}
