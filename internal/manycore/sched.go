package manycore

import (
	"fmt"
	"sort"

	"ampsched/internal/isa"
)

// Static keeps the initial assignment.
type Static struct{}

// Name implements Scheduler.
func (Static) Name() string { return "static" }

// Reset implements Scheduler.
func (Static) Reset(View) {}

// Tick implements Scheduler.
func (Static) Tick(View) []int { return nil }

// Rotate is the many-core Round Robin: every Interval cycles the
// assignment rotates by one core.
type Rotate struct {
	Interval uint64
	next     uint64
}

// NewRotate builds the rotation policy.
func NewRotate(interval uint64) *Rotate {
	if interval == 0 {
		panic("manycore: zero rotate interval")
	}
	return &Rotate{Interval: interval}
}

// Name implements Scheduler.
func (r *Rotate) Name() string { return "rotate" }

// Reset implements Scheduler.
func (r *Rotate) Reset(v View) { r.next = v.Cycle() + r.Interval }

// Tick implements Scheduler.
func (r *Rotate) Tick(v View) []int {
	if v.Cycle() < r.next {
		return nil
	}
	r.next = v.Cycle() + r.Interval
	n := v.NumCores()
	nb := make([]int, n)
	for c := 0; c < n; c++ {
		nb[c] = v.ThreadOnCore((c + 1) % n)
	}
	return nb
}

// RankConfig parameterizes the generalized proposed scheme.
type RankConfig struct {
	// WindowSize in committed instructions per thread (paper: 1000).
	WindowSize uint64
	// HistoryDepth: consecutive epochs that must agree on a new
	// assignment before it is applied (the many-core analogue of the
	// §VI-B majority vote).
	HistoryDepth int
	// MinScoreGap: a thread displaces another from an INT core slot
	// only if its affinity score exceeds the incumbent's by this many
	// percentage points (hysteresis against churn).
	MinScoreGap float64
}

// DefaultRankConfig mirrors the dual-core operating point.
func DefaultRankConfig() RankConfig {
	return RankConfig{WindowSize: 1000, HistoryDepth: 5, MinScoreGap: 10}
}

// Validate reports the first configuration problem.
func (c *RankConfig) Validate() error {
	if c.WindowSize == 0 {
		return fmt.Errorf("manycore: rank: zero WindowSize")
	}
	if c.HistoryDepth <= 0 {
		return fmt.Errorf("manycore: rank: non-positive HistoryDepth")
	}
	if c.MinScoreGap < 0 {
		return fmt.Errorf("manycore: rank: negative MinScoreGap")
	}
	return nil
}

// Rank is the scalable generalization of the paper's scheme: instead
// of pairwise swap rules (which do not compose beyond two cores), each
// thread gets an affinity score %INT − %FP from its latest committed
// window, threads are ranked, and the top-k scores take the k INT
// cores. Sampling is never needed — exactly the paper's argument
// against Becchi-style schedulers at §II.
type Rank struct {
	cfg RankConfig

	lastCommit []uint64
	lastClass  [][isa.NumClasses]uint64
	nextEdge   []uint64
	score      []float64
	haveScore  []bool

	intCores []int // indexes of INT-flavored cores
	fpCores  []int

	pending []int // proposed assignment awaiting confirmation
	agree   int
	applied uint64
}

// NewRank builds the scheduler.
func NewRank(cfg RankConfig) *Rank {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	return &Rank{cfg: cfg}
}

// Name implements Scheduler.
func (r *Rank) Name() string { return "rank" }

// Applied returns how many reassignments the policy issued.
func (r *Rank) Applied() uint64 { return r.applied }

// Reset implements Scheduler.
func (r *Rank) Reset(v View) {
	n := v.NumCores()
	r.lastCommit = make([]uint64, n)
	r.lastClass = make([][isa.NumClasses]uint64, n)
	r.nextEdge = make([]uint64, n)
	r.score = make([]float64, n)
	r.haveScore = make([]bool, n)
	r.intCores = r.intCores[:0]
	r.fpCores = r.fpCores[:0]
	for c := 0; c < n; c++ {
		if v.CoreConfig(c).Name == "INT" {
			r.intCores = append(r.intCores, c)
		} else {
			r.fpCores = append(r.fpCores, c)
		}
	}
	for t := 0; t < n; t++ {
		arch := v.Arch(t)
		r.lastCommit[t] = arch.Committed
		r.lastClass[t] = arch.CommittedByClass
		r.nextEdge[t] = arch.Committed + r.cfg.WindowSize
	}
	r.pending = nil
	r.agree = 0
	r.applied = 0
}

// observe closes committed windows, updating affinity scores; returns
// true if any window closed.
func (r *Rank) observe(v View) bool {
	closed := false
	for t := range r.score {
		arch := v.Arch(t)
		if arch.Committed < r.nextEdge[t] {
			continue
		}
		committed := arch.Committed - r.lastCommit[t]
		var intN, fpN uint64
		for c := isa.Class(0); c < isa.NumClasses; c++ {
			d := arch.CommittedByClass[c] - r.lastClass[t][c]
			if c.IsInt() {
				intN += d
			} else if c.IsFP() {
				fpN += d
			}
		}
		if committed > 0 {
			r.score[t] = 100 * (float64(intN) - float64(fpN)) / float64(committed)
			r.haveScore[t] = true
		}
		r.lastCommit[t] = arch.Committed
		r.lastClass[t] = arch.CommittedByClass
		r.nextEdge[t] = arch.Committed + r.cfg.WindowSize
		closed = true
	}
	return closed
}

// ideal computes the rank-and-place assignment. The INT-core set
// starts as the current occupants; each outside challenger replaces
// the weakest member only if its affinity score beats that member's
// by MinScoreGap (hysteresis against churn). The set size is
// invariant, so the result is always a valid permutation.
func (r *Rank) ideal(v View) []int {
	n := len(r.score)

	inSet := make([]bool, n)
	target := make([]int, 0, len(r.intCores))
	for _, c := range r.intCores {
		t := v.ThreadOnCore(c)
		target = append(target, t)
		inSet[t] = true
	}

	// Challengers in descending score order (stable by thread id).
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool { return r.score[order[a]] > r.score[order[b]] })

	for _, t := range order {
		if inSet[t] {
			continue
		}
		weakest := 0
		for i := 1; i < len(target); i++ {
			if r.score[target[i]] < r.score[target[weakest]] {
				weakest = i
			}
		}
		if r.score[t] >= r.score[target[weakest]]+r.cfg.MinScoreGap {
			inSet[target[weakest]] = false
			target[weakest] = t
			inSet[t] = true
		}
	}

	// Place with minimal movement: threads already on the correct
	// side keep their cores (reassigning intstress from INT core 0 to
	// INT core 1 would be pure churn); only side-switchers move into
	// the freed slots, in descending score order.
	nb := make([]int, n)
	for i := range nb {
		nb[i] = -1
	}
	var freeInt, freeFP []int
	for _, c := range r.intCores {
		if t := v.ThreadOnCore(c); inSet[t] {
			nb[c] = t
		} else {
			freeInt = append(freeInt, c)
		}
	}
	for _, c := range r.fpCores {
		if t := v.ThreadOnCore(c); !inSet[t] {
			nb[c] = t
		} else {
			freeFP = append(freeFP, c)
		}
	}
	placed := make([]bool, n)
	for _, t := range nb {
		if t >= 0 {
			placed[t] = true
		}
	}
	for _, t := range order {
		if placed[t] {
			continue
		}
		if inSet[t] {
			nb[freeInt[0]] = t
			freeInt = freeInt[1:]
		} else {
			nb[freeFP[0]] = t
			freeFP = freeFP[1:]
		}
	}
	return nb
}

// Tick implements Scheduler: on each window close, compute the ideal
// assignment; apply it after HistoryDepth consecutive agreeing epochs.
func (r *Rank) Tick(v View) []int {
	if !r.observe(v) {
		return nil
	}
	for _, ok := range r.haveScore {
		if !ok {
			return nil
		}
	}
	nb := r.ideal(v)
	cur := make([]int, v.NumCores())
	for c := range cur {
		cur[c] = v.ThreadOnCore(c)
	}
	if samePerm(nb, cur) {
		r.pending = nil
		r.agree = 0
		return nil
	}
	if r.pending != nil && samePerm(nb, r.pending) {
		r.agree++
	} else {
		r.pending = append([]int(nil), nb...)
		r.agree = 1
	}
	if r.agree < r.cfg.HistoryDepth {
		return nil
	}
	r.pending = nil
	r.agree = 0
	r.applied++
	return nb
}

var _ Scheduler = (*Rank)(nil)
var _ Scheduler = (*Rotate)(nil)
var _ Scheduler = Static{}
