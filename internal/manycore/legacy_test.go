package manycore

// Designated regression tests for the deprecated permutation Scheduler
// API: they pin down that the Legacy adapter and the NewSystem wrapper
// keep the old contract until the shims are removed. New code must use
// New + amp.MoveScheduler.

import (
	"testing"

	"ampsched/internal/cpu"
	"ampsched/internal/workload"
)

// quadConfigs returns the old-style parallel config slice.
func quadConfigs() []*cpu.Config {
	return []*cpu.Config{
		cpu.IntCoreConfig(), cpu.IntCoreConfig(),
		cpu.FPCoreConfig(), cpu.FPCoreConfig(),
	}
}

func legacyBenches(t *testing.T, names ...string) []*workload.Benchmark {
	t.Helper()
	out := make([]*workload.Benchmark, len(names))
	for i, n := range names {
		b, err := workload.ByName(n)
		if err != nil {
			t.Fatal(err)
		}
		out[i] = b
	}
	return out
}

func legacySeeds(n int, base uint64) []uint64 {
	s := make([]uint64, n)
	for i := range s {
		s[i] = base + uint64(i)
	}
	return s
}

func TestNewSystemValidation(t *testing.T) {
	if _, err := NewSystem(quadConfigs()[:1], nil, nil, nil, Config{}); err == nil {
		t.Fatal("single core accepted")
	}
	if _, err := NewSystem(quadConfigs(), legacyBenches(t, "gcc"), legacySeeds(4, 1), nil, Config{}); err == nil {
		t.Fatal("mismatched benchmark count accepted")
	}
}

func TestNewSystemPoolsByConfigName(t *testing.T) {
	sys, err := NewSystem(quadConfigs(),
		legacyBenches(t, "gcc", "mcf", "equake", "apsi"), legacySeeds(4, 5),
		nil, Config{})
	if err != nil {
		t.Fatal(err)
	}
	// INT cores become pool 0, FP cores pool 1, by first appearance.
	want := []int{0, 0, 1, 1}
	for c, p := range want {
		if sys.CorePool(c) != p {
			t.Fatalf("core %d pool %d, want %d", c, sys.CorePool(c), p)
		}
	}
	// Thread i starts on core i, as the old constructor guaranteed.
	for c := 0; c < 4; c++ {
		if sys.ThreadOnCore(c) != c {
			t.Fatalf("core %d runs thread %d, want %d", c, sys.ThreadOnCore(c), c)
		}
	}
}

// schedulerFunc adapts a func to the deprecated permutation Scheduler.
type schedulerFunc func(v View) []int

func (schedulerFunc) Name() string        { return "func" }
func (schedulerFunc) Reset(View)          {}
func (f schedulerFunc) Tick(v View) []int { return f(v) }

func TestLegacyRejectsInvalidPermutationGracefully(t *testing.T) {
	// A scheduler returning garbage must be ignored, not crash.
	bad := schedulerFunc(func(v View) []int { return []int{0, 0, 1, 2} })
	sys, err := NewSystem(quadConfigs(),
		legacyBenches(t, "gcc", "mcf", "equake", "apsi"), legacySeeds(4, 60),
		bad, Config{})
	if err != nil {
		t.Fatal(err)
	}
	res := sys.MustRun(30_000)
	if res.Reassigns != 0 {
		t.Fatal("invalid permutation applied")
	}
}

func TestLegacyPermutationApplies(t *testing.T) {
	// A one-shot reversal permutation must be applied exactly once.
	fired := false
	rev := schedulerFunc(func(v View) []int {
		if fired || v.Cycle() < 10_000 {
			return nil
		}
		fired = true
		return []int{3, 2, 1, 0}
	})
	sys, err := NewSystem(quadConfigs(),
		legacyBenches(t, "gcc", "mcf", "equake", "apsi"), legacySeeds(4, 61),
		rev, Config{})
	if err != nil {
		t.Fatal(err)
	}
	res := sys.MustRun(40_000)
	if res.Reassigns != 1 {
		t.Fatalf("reassigns %d, want 1", res.Reassigns)
	}
	for c := 0; c < 4; c++ {
		if sys.ThreadOnCore(c) != 3-c {
			t.Fatalf("core %d runs thread %d, want %d", c, sys.ThreadOnCore(c), 3-c)
		}
	}
}

func TestLegacyNilScheduler(t *testing.T) {
	if Legacy(nil) != nil {
		t.Fatal("Legacy(nil) must be nil")
	}
}
