package manycore

import (
	"fmt"
	"sort"

	"ampsched/internal/amp"
)

// BigSmallConfig parameterizes the big/small pool policy.
type BigSmallConfig struct {
	// BigPool is the pool index of the big cores; every other pool is
	// small.
	BigPool int
	// Quantum is the decision period in cycles.
	Quantum uint64
	// PromoteIPC: a small-core thread whose epoch IPC reaches this is
	// a promotion candidate (demonstrated ILP/progress).
	PromoteIPC float64
	// DemoteIPC: a big-core thread whose epoch IPC falls below this is
	// demoted (it stalls too much to earn the big core).
	DemoteIPC float64
	// MinResidency: epochs a thread must hold a big core before it can
	// be demoted or displaced (anti-thrash).
	MinResidency int
	// SwapGap: a candidate displaces a big-core incumbent only when
	// its IPC exceeds the incumbent's by this much.
	SwapGap float64
}

// DefaultBigSmallConfig returns a conservative operating point.
func DefaultBigSmallConfig() BigSmallConfig {
	return BigSmallConfig{
		BigPool:      0,
		Quantum:      10_000,
		PromoteIPC:   0.8,
		DemoteIPC:    0.3,
		MinResidency: 3,
		SwapGap:      0.15,
	}
}

// Validate reports the first configuration problem.
func (c *BigSmallConfig) Validate() error {
	if c.Quantum == 0 {
		return fmt.Errorf("manycore: bigsmall: zero Quantum")
	}
	if c.BigPool < 0 || c.BigPool >= MaxPools {
		return fmt.Errorf("manycore: bigsmall: BigPool %d outside [0,%d)", c.BigPool, MaxPools)
	}
	if c.PromoteIPC <= 0 || c.DemoteIPC < 0 {
		return fmt.Errorf("manycore: bigsmall: non-positive PromoteIPC or negative DemoteIPC")
	}
	if c.DemoteIPC > c.PromoteIPC {
		return fmt.Errorf("manycore: bigsmall: DemoteIPC %g above PromoteIPC %g",
			c.DemoteIPC, c.PromoteIPC)
	}
	if c.MinResidency <= 0 {
		return fmt.Errorf("manycore: bigsmall: non-positive MinResidency")
	}
	if c.SwapGap < 0 {
		return fmt.Errorf("manycore: bigsmall: negative SwapGap")
	}
	return nil
}

// BigSmall is the Sniper-style big/small scheduler: threads start on
// (or queue for) the small cores, earn promotion to the big pool by
// demonstrated per-epoch IPC, and are demoted when they stall. Small
// cores round-robin through the parked backlog so every thread keeps
// making progress; big cores are a meritocracy with hysteresis
// (MinResidency + SwapGap) against ping-ponging.
type BigSmall struct {
	cfg BigSmallConfig

	next    uint64
	applied uint64

	// Per-thread state.
	ipc        []float64
	haveIPC    []bool
	resid      []int32
	lastCommit []uint64

	// Parked FIFO ring (intrusive, reconciled per epoch).
	ringNext []int32
	ringPrev []int32
	inRing   []bool
	ringHead int32
	ringTail int32

	bigCores   []int32
	smallCores []int32

	// Per-epoch scratch.
	buf         []amp.Move
	coreTouched []bool
	cands       []bsEntry // promotion candidates, best first
	incumbents  []bsEntry // big occupants, weakest first
}

// bsEntry pairs a thread with the core it currently occupies for the
// epoch's promotion ranking.
type bsEntry struct {
	ipc    float64
	thread int32
	core   int32
}

// NewBigSmall builds the scheduler.
func NewBigSmall(cfg BigSmallConfig) *BigSmall {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	return &BigSmall{cfg: cfg}
}

// Name implements amp.MoveScheduler.
func (b *BigSmall) Name() string { return "bigsmall" }

// Applied returns how many decision epochs emitted moves.
func (b *BigSmall) Applied() uint64 { return b.applied }

// Reset implements amp.MoveScheduler.
func (b *BigSmall) Reset(v amp.View) {
	n, m := v.NumCores(), v.NumThreads()
	b.next = v.Cycle() + b.cfg.Quantum
	b.applied = 0
	b.ipc = make([]float64, m)
	b.haveIPC = make([]bool, m)
	b.resid = make([]int32, m)
	b.lastCommit = make([]uint64, m)
	b.ringNext = make([]int32, m)
	b.ringPrev = make([]int32, m)
	b.inRing = make([]bool, m)
	b.ringHead, b.ringTail = -1, -1
	b.bigCores = b.bigCores[:0]
	b.smallCores = b.smallCores[:0]
	b.coreTouched = make([]bool, n)
	for c := 0; c < n; c++ {
		if v.CorePool(c) == b.cfg.BigPool {
			b.bigCores = append(b.bigCores, int32(c))
		} else {
			b.smallCores = append(b.smallCores, int32(c))
		}
	}
	for t := 0; t < m; t++ {
		b.lastCommit[t] = v.Arch(t).Committed
	}
}

func (b *BigSmall) ringPush(t int32) {
	b.inRing[t] = true
	b.ringPrev[t] = b.ringTail
	b.ringNext[t] = -1
	if b.ringTail >= 0 {
		b.ringNext[b.ringTail] = t
	} else {
		b.ringHead = t
	}
	b.ringTail = t
}

func (b *BigSmall) ringRemove(t int32) {
	if !b.inRing[t] {
		return
	}
	if p := b.ringPrev[t]; p >= 0 {
		b.ringNext[p] = b.ringNext[t]
	} else {
		b.ringHead = b.ringNext[t]
	}
	if nx := b.ringNext[t]; nx >= 0 {
		b.ringPrev[nx] = b.ringPrev[t]
	} else {
		b.ringTail = b.ringPrev[t]
	}
	b.inRing[t] = false
}

// ringPopFor removes and returns the first parked thread allowed on
// core c, or -1.
func (b *BigSmall) ringPopFor(v amp.View, c int) int32 {
	pool := uint64(1) << uint(v.CorePool(c))
	for t := b.ringHead; t >= 0; t = b.ringNext[t] {
		if v.AffinityMask(int(t))&pool != 0 {
			b.ringRemove(t)
			return t
		}
	}
	return -1
}

// grant emits the move that places thread t on core c.
func (b *BigSmall) grant(t int32, c int) {
	b.buf = append(b.buf, amp.Move{Thread: int(t), Core: c})
	b.coreTouched[c] = true
	b.resid[t] = 0
}

// mayUseBig reports whether thread t's affinity allows the big pool.
func (b *BigSmall) mayUseBig(v amp.View, t int32) bool {
	return v.AffinityMask(int(t))&(1<<uint(b.cfg.BigPool)) != 0
}

// Tick implements amp.MoveScheduler; the per-cycle gate is O(1) and
// allocation-free.
//
//ampvet:hotpath
func (b *BigSmall) Tick(v amp.View) []amp.Move {
	if v.Cycle() < b.next {
		return nil
	}
	return b.epoch(v)
}

// epoch runs one decision epoch: O(cores·log cores + threads) —
// candidate and incumbent rankings over the cores, park reconciliation
// over the threads — never O(threads × cores). It fires at Quantum
// rate with reused scratch slices.
func (b *BigSmall) epoch(v amp.View) []amp.Move {
	b.next = v.Cycle() + b.cfg.Quantum
	n, m := v.NumCores(), v.NumThreads()
	b.buf = b.buf[:0]
	for c := 0; c < n; c++ {
		b.coreTouched[c] = false
	}

	// 1. Observe: per-epoch IPC of every bound thread.
	for c := 0; c < n; c++ {
		t := v.ThreadOnCore(c)
		if t < 0 {
			continue
		}
		b.resid[t]++
		arch := v.Arch(t)
		b.ipc[t] = float64(arch.Committed-b.lastCommit[t]) / float64(b.cfg.Quantum)
		b.haveIPC[t] = true
		b.lastCommit[t] = arch.Committed
	}

	// 2. Reconcile the parked ring against the view.
	for t := 0; t < m; t++ {
		if v.CoreOfThread(t) == amp.ParkCore {
			if !b.inRing[t] {
				b.ringPush(int32(t))
			}
		} else if b.inRing[t] {
			b.ringRemove(int32(t))
		}
	}

	// 3. Demote stalling big-core threads: they park (rejoining the
	// small-core backlog) and free their big core for promotion.
	for _, c := range b.bigCores {
		t := v.ThreadOnCore(int(c))
		if t < 0 || b.coreTouched[c] {
			continue
		}
		if int(b.resid[t]) >= b.cfg.MinResidency && b.haveIPC[t] && b.ipc[t] < b.cfg.DemoteIPC {
			b.buf = append(b.buf, amp.Move{Thread: t, Core: amp.ParkCore})
			b.coreTouched[c] = true
		}
	}

	// 4. Rank promotion candidates (small-core threads that earned
	// it, best IPC first) and big incumbents (weakest first).
	b.cands = b.cands[:0]
	for _, c := range b.smallCores {
		t := v.ThreadOnCore(int(c))
		if t < 0 || b.coreTouched[c] {
			continue
		}
		if b.haveIPC[t] && b.ipc[t] >= b.cfg.PromoteIPC && b.mayUseBig(v, int32(t)) {
			b.cands = append(b.cands, bsEntry{ipc: b.ipc[t], thread: int32(t), core: c})
		}
	}
	sort.Slice(b.cands, func(i, j int) bool {
		if b.cands[i].ipc != b.cands[j].ipc {
			return b.cands[i].ipc > b.cands[j].ipc
		}
		return b.cands[i].thread < b.cands[j].thread
	})

	// Free big slots first (idle cores and the ones demotion vacated).
	ci := 0
	for _, c := range b.bigCores {
		if ci >= len(b.cands) {
			break
		}
		if v.ThreadOnCore(int(c)) >= 0 && !b.coreTouched[c] {
			continue
		}
		if v.ThreadOnCore(int(c)) >= 0 && b.coreTouched[c] {
			// Vacated by a demotion this epoch: the park move frees
			// it, and the promotion below lands in the same batch.
			cand := b.cands[ci]
			ci++
			b.grant(cand.thread, int(c))
			continue
		}
		cand := b.cands[ci]
		ci++
		b.grant(cand.thread, int(c))
	}

	// Then displacement: remaining candidates swap with clearly
	// weaker incumbents.
	if ci < len(b.cands) {
		b.incumbents = b.incumbents[:0]
		for _, c := range b.bigCores {
			t := v.ThreadOnCore(int(c))
			if t < 0 || b.coreTouched[c] || !b.haveIPC[t] {
				continue
			}
			if int(b.resid[t]) < b.cfg.MinResidency {
				continue
			}
			b.incumbents = append(b.incumbents, bsEntry{ipc: b.ipc[t], thread: int32(t), core: c})
		}
		sort.Slice(b.incumbents, func(i, j int) bool {
			if b.incumbents[i].ipc != b.incumbents[j].ipc {
				return b.incumbents[i].ipc < b.incumbents[j].ipc
			}
			return b.incumbents[i].thread < b.incumbents[j].thread
		})
		for ii := 0; ci < len(b.cands) && ii < len(b.incumbents); ii++ {
			cand, inc := b.cands[ci], b.incumbents[ii]
			if cand.ipc < inc.ipc+b.cfg.SwapGap {
				break // ranked lists: no later pair can clear the gap
			}
			if v.AffinityMask(int(inc.thread))&(1<<uint(v.CorePool(int(cand.core)))) == 0 {
				continue
			}
			ci++
			b.grant(cand.thread, int(inc.core))
			b.grant(inc.thread, int(cand.core))
		}
	}

	// 5. Work conservation: a big core left idle (no promotion
	// candidate claimed it) still takes waiting work rather than
	// burning a slot — the backlog beats the meritocracy when the
	// alternative is an empty core.
	for _, c := range b.bigCores {
		if v.ThreadOnCore(int(c)) >= 0 || b.coreTouched[c] {
			continue
		}
		if t2 := b.ringPopFor(v, int(c)); t2 >= 0 {
			b.grant(t2, int(c))
		}
	}

	// 6. Fill idle small cores and round-robin the backlog.
	for _, c := range b.smallCores {
		t := v.ThreadOnCore(int(c))
		if b.coreTouched[c] {
			continue
		}
		if t < 0 {
			if t2 := b.ringPopFor(v, int(c)); t2 >= 0 {
				b.grant(t2, int(c))
			}
			continue
		}
		if int(b.resid[t]) >= b.cfg.MinResidency {
			if t2 := b.ringPopFor(v, int(c)); t2 >= 0 {
				b.grant(t2, int(c))
			}
		}
	}

	if len(b.buf) == 0 {
		return nil
	}
	b.applied++
	return b.buf
}

var _ amp.MoveScheduler = (*BigSmall)(nil)
