package interval_test

import (
	"math"
	"testing"

	"ampsched/internal/amp"
	"ampsched/internal/cpu"
	"ampsched/internal/interval"
	"ampsched/internal/workload"
)

// ipcTolerance is the documented cross-engine accuracy contract: the
// interval engine's solo IPC stays within 25% of the detailed core on
// every benchmark and both core flavors. Measured headroom (150k
// instructions, seed 7): worst case ~20% (ffti on the INT core),
// median ~1.5%.
const ipcTolerance = 0.25

// parityBand is the IPC/Watt ratio band treated as "no preference":
// when the detailed INT/FP ratio is within ±5% of 1, the interval
// engine is not required to reproduce the sign.
const parityBand = 0.05

// TestIntervalMatchesDetailed is the cross-engine equivalence suite:
// for every one of the 37 benchmarks, on both core configurations, the
// interval engine's solo IPC must land within ipcTolerance of the
// detailed core, and the sign of the INT-vs-FP IPC/Watt ordering (the
// quantity every scheduler in this repo ranks on) must agree outside
// the parity band.
func TestIntervalMatchesDetailed(t *testing.T) {
	if testing.Short() {
		t.Skip("cross-engine equivalence sweep is minutes of detailed simulation")
	}
	const limit = 150_000
	intCfg, fpCfg := cpu.IntCoreConfig(), cpu.FPCoreConfig()
	for _, b := range workload.All() {
		b := b
		t.Run(b.Name, func(t *testing.T) {
			t.Parallel()
			dInt := amp.SoloRun(intCfg, b, 7, limit, 0)
			dFP := amp.SoloRun(fpCfg, b, 7, limit, 0)
			iInt := amp.SoloRunEngine(interval.Factory(), intCfg, b, 7, limit, 0)
			iFP := amp.SoloRunEngine(interval.Factory(), fpCfg, b, 7, limit, 0)

			for _, c := range []struct {
				core     string
				det, ivl amp.SoloResult
			}{{"INT", dInt, iInt}, {"FP", dFP, iFP}} {
				if c.det.IPC <= 0 || c.ivl.IPC <= 0 {
					t.Fatalf("%s core: non-positive IPC (detailed %.3f, interval %.3f)",
						c.core, c.det.IPC, c.ivl.IPC)
				}
				if relErr := math.Abs(c.ivl.IPC-c.det.IPC) / c.det.IPC; relErr > ipcTolerance {
					t.Errorf("%s core IPC: detailed %.3f vs interval %.3f (%.0f%% > %.0f%% tolerance)",
						c.core, c.det.IPC, c.ivl.IPC, 100*relErr, 100*ipcTolerance)
				}
			}

			detRatio := dInt.IPCPerWatt / dFP.IPCPerWatt
			ivlRatio := iInt.IPCPerWatt / iFP.IPCPerWatt
			switch {
			case detRatio > 1+parityBand && ivlRatio < 1:
				t.Errorf("ordering flip: detailed prefers INT (ratio %.3f) but interval prefers FP (ratio %.3f)",
					detRatio, ivlRatio)
			case detRatio < 1-parityBand && ivlRatio > 1:
				t.Errorf("ordering flip: detailed prefers FP (ratio %.3f) but interval prefers INT (ratio %.3f)",
					detRatio, ivlRatio)
			}
		})
	}
}

// TestSampledBetweenEngines sanity-checks the two-tier engine on a
// couple of benchmarks: its IPC must land in the same tolerance band
// around detailed (it is mostly interval time with detailed warm-ups).
func TestSampledBetweenEngines(t *testing.T) {
	if testing.Short() {
		t.Skip("sampled equivalence check runs detailed warm-up windows")
	}
	const limit = 150_000
	intCfg := cpu.IntCoreConfig()
	for _, name := range []string{"gcc", "fpstress", "intstress"} {
		b := workload.MustByName(name)
		det := amp.SoloRun(intCfg, b, 7, limit, 0)
		smp := amp.SoloRunEngine(interval.SampledFactory(), intCfg, b, 7, limit, 0)
		if relErr := math.Abs(smp.IPC-det.IPC) / det.IPC; relErr > ipcTolerance {
			t.Errorf("%s: sampled IPC %.3f vs detailed %.3f (%.0f%% > %.0f%%)",
				name, smp.IPC, det.IPC, 100*relErr, 100*ipcTolerance)
		}
	}
}
