package interval

import (
	"testing"

	"ampsched/internal/cpu"
	"ampsched/internal/isa"
	"ampsched/internal/workload"
)

// TestCalibrationDeterministicAndCached pins the calibration contract:
// Calibrate is a pure function of (config, units, benchmark), and
// calibrationFor memoizes it so one process calibrates each key once.
func TestCalibrationDeterministicAndCached(t *testing.T) {
	cfg := cpu.IntCoreConfig()
	bench := workload.MustByName("gcc")

	a := Calibrate(cfg, cfg.Units, bench)
	b := Calibrate(cfg, cfg.Units, bench)
	if a.MeasuredIPC != b.MeasuredIPC || a.Correction != b.Correction || a.Committed != b.Committed {
		t.Fatalf("repeated calibrations differ: %+v vs %+v", a, b)
	}
	if len(a.PhaseIPC) != len(bench.Phases) {
		t.Fatalf("want %d phase IPCs, got %d", len(bench.Phases), len(a.PhaseIPC))
	}
	for p, ipc := range a.PhaseIPC {
		if ipc != b.PhaseIPC[p] {
			t.Fatalf("phase %d IPC differs: %g vs %g", p, ipc, b.PhaseIPC[p])
		}
		if ipc <= 0 {
			t.Fatalf("phase %d IPC not positive: %g", p, ipc)
		}
	}

	c1 := calibrationFor(cfg, cfg.Units, bench)
	c2 := calibrationFor(cfg, cfg.Units, bench)
	if c1 != c2 {
		t.Fatal("calibrationFor did not return the cached *Calibration")
	}
}

// TestSkipMatchesNext verifies the generator fast-forward the interval
// engine relies on: Skip(n) must leave the phase bookkeeping exactly
// where n Next calls would.
func TestSkipMatchesNext(t *testing.T) {
	bench := workload.MustByName("apsi") // 3 phases
	for _, n := range []uint64{1, 999, 10_000, 300_000} {
		stepped := workload.NewGenerator(bench, 5, 0)
		var in isa.Instruction
		for i := uint64(0); i < n; i++ {
			stepped.Next(&in)
		}
		skipped := workload.NewGenerator(bench, 5, 0)
		skipped.Skip(n)

		sp, sr := stepped.PhasePos()
		kp, kr := skipped.PhasePos()
		if sp != kp || sr != kr {
			t.Fatalf("n=%d: Next-walked generator at phase %d (rem %d), Skip at phase %d (rem %d)",
				n, sp, sr, kp, kr)
		}
	}
}

// TestEngineClassSumMatchesCommitted runs the interval engine for many
// windows and checks the per-class commit ledger: each class count is
// a floored accumulator, so the class sum may trail Committed by at
// most one residual fraction per class.
func TestEngineClassSumMatchesCommitted(t *testing.T) {
	cfg := cpu.IntCoreConfig()
	bench := workload.MustByName("gcc")
	eng := New(cfg)
	gen := workload.NewGenerator(bench, 9, 0)
	arch := &cpu.ThreadArch{CodeBase: 1 << 36, CodeSize: bench.EffectiveCodeFootprint()}
	eng.Bind(gen, arch)
	var now uint64
	for arch.Committed < 200_000 {
		eng.Run(now, eng.Stride())
		now += eng.Stride()
	}
	arch.Sync() // the engine attributes classes lazily; readers sync first
	var classSum uint64
	for c := 0; c < int(isa.NumClasses); c++ {
		classSum += arch.CommittedByClass[c]
	}
	if classSum > arch.Committed {
		t.Fatalf("class sum %d exceeds committed %d", classSum, arch.Committed)
	}
	if arch.Committed-classSum >= uint64(isa.NumClasses) {
		t.Fatalf("class sum %d trails committed %d by more than the %d residual fractions",
			classSum, arch.Committed, isa.NumClasses)
	}
	if st := eng.Stats(); st.Committed != arch.Committed {
		t.Fatalf("engine committed %d != arch committed %d", st.Committed, arch.Committed)
	}
}

// TestEngineStatsLedger checks that the synthesized Activity and cache
// ledgers stay consistent: cycles tracked exactly, counters monotone
// across snapshots, and the per-instruction rates roughly preserved.
func TestEngineStatsLedger(t *testing.T) {
	cfg := cpu.FPCoreConfig()
	bench := workload.MustByName("equake")
	eng := New(cfg)
	gen := workload.NewGenerator(bench, 3, 0)
	arch := &cpu.ThreadArch{CodeBase: 1 << 36, CodeSize: bench.EffectiveCodeFootprint()}
	eng.Bind(gen, arch)

	var now uint64
	var prev cpu.EngineStats
	for i := 0; i < 50; i++ {
		eng.Run(now, DefaultStride)
		now += DefaultStride
		st := eng.Stats()
		if st.Act.Cycles != now {
			t.Fatalf("active cycles %d != %d windows run", st.Act.Cycles, now)
		}
		if st.Act.ROBWrites < prev.Act.ROBWrites || st.L1D.Accesses < prev.L1D.Accesses ||
			st.L2.Misses < prev.L2.Misses || st.Committed < prev.Committed {
			t.Fatalf("counters went backwards between snapshots: %+v -> %+v", prev, st)
		}
		prev = st
	}
	eng.StallCycles(100)
	if st := eng.Stats(); st.Act.StallCycles != 100 {
		t.Fatalf("stall cycles %d, want 100", st.Act.StallCycles)
	}
}

// TestEngineReconfigureContract pins the morph-path rules: Reconfigure
// refuses while bound, and accepts (changing the calibration key) when
// unbound.
func TestEngineReconfigureContract(t *testing.T) {
	cfg := cpu.IntCoreConfig()
	bench := workload.MustByName("gcc")
	eng := New(cfg)
	gen := workload.NewGenerator(bench, 1, 0)
	arch := &cpu.ThreadArch{CodeBase: 1 << 36, CodeSize: bench.EffectiveCodeFootprint()}
	eng.Bind(gen, arch)
	if err := eng.Reconfigure(cpu.MorphStrongUnits()); err == nil {
		t.Fatal("Reconfigure while bound must fail")
	}
	eng.Unbind()
	if err := eng.Reconfigure(cpu.MorphStrongUnits()); err != nil {
		t.Fatalf("Reconfigure while unbound: %v", err)
	}
}
