package interval

import (
	"fmt"

	"ampsched/internal/cpu"
)

// FidelitySampled labels the two-tier engine.
const FidelitySampled = "sampled"

// Sampled-engine schedule: each period opens with a detailed warm-up
// window (real caches, predictor and pipeline back in play) and
// fast-forwards the rest with the interval model. The defaults detail
// 20k of every 8M cycles (0.25%): one warm-up per two paper-scale
// coarse scheduling intervals (the HPE/RR context switch is 4M
// cycles), on top of the warm-up every Bind already forces after a
// swap — so a swapping run re-anchors at least as often as it swaps.
// The duty cycle is the fig7full wall-clock knob — at 0.25% the
// 80-pair x 500M sweep fits the paper-scale budget on one CPU.
const (
	DefaultDetailCycles = 20_000
	DefaultPeriodCycles = 8_000_000
)

// Sampled is the two-tier cpu.Engine: a detailed core and an interval
// engine over the same configuration, multiplexed on a fixed cycle
// schedule. Binding always starts a detailed window — after a thread
// swap the warm-up is exactly what re-measures the cold-cache cost.
// The detailed core's caches and predictor persist across interval
// gaps, so each warm-up resumes from plausibly aged state rather than
// from scratch.
type Sampled struct {
	det *cpu.Core
	ivl *Engine

	src  cpu.InstrSource
	arch *cpu.ThreadArch

	detailCycles uint64
	periodCycles uint64
	pos          uint64 // position within the current period
}

var _ cpu.Engine = (*Sampled)(nil)

// NewSampled builds a sampled engine with the given schedule
// (detailCycles of warm-up opening every periodCycles).
func NewSampled(cfg *cpu.Config, detailCycles, periodCycles uint64) *Sampled {
	if detailCycles == 0 || periodCycles <= detailCycles {
		panic(fmt.Sprintf("interval: sampled schedule needs 0 < detail (%d) < period (%d)",
			detailCycles, periodCycles))
	}
	return &Sampled{
		det:          cpu.NewCore(cfg),
		ivl:          New(cfg),
		detailCycles: detailCycles,
		periodCycles: periodCycles,
	}
}

// SampledFactory returns the cpu.EngineFactory for the sampled engine
// with the default schedule.
func SampledFactory() cpu.EngineFactory {
	return func(cfg *cpu.Config) (cpu.Engine, error) {
		return NewSampled(cfg, DefaultDetailCycles, DefaultPeriodCycles), nil
	}
}

// Config implements cpu.Engine.
func (s *Sampled) Config() *cpu.Config { return s.det.Config() }

// Fidelity implements cpu.Engine.
func (s *Sampled) Fidelity() string { return FidelitySampled }

// Stride implements cpu.Engine: the interval stride; detailed warm-up
// windows are run in stride-sized chunks, which is equivalent cycle by
// cycle because the two cores of a system share no state.
func (s *Sampled) Stride() uint64 { return s.ivl.Stride() }

// Bound implements cpu.Engine.
func (s *Sampled) Bound() bool { return s.arch != nil }

// Arch implements cpu.Engine.
func (s *Sampled) Arch() *cpu.ThreadArch { return s.arch }

// InFlight implements cpu.Engine.
func (s *Sampled) InFlight() int { return s.det.InFlight() + s.ivl.InFlight() }

// Bind implements cpu.Engine: the thread starts in a detailed warm-up
// window.
func (s *Sampled) Bind(src cpu.InstrSource, arch *cpu.ThreadArch) {
	if s.arch != nil {
		panic(fmt.Sprintf("interval: %s: Bind with thread already bound", s.Config().Name))
	}
	s.src = src
	s.arch = arch
	s.pos = 0
	s.det.Bind(src, arch)
}

// Unbind implements cpu.Engine.
func (s *Sampled) Unbind() uint64 {
	if s.arch == nil {
		return 0
	}
	squashed := s.det.Unbind() + s.ivl.Unbind()
	s.src = nil
	s.arch = nil
	return squashed
}

// StallCycles implements cpu.Engine; the charge lands on whichever
// tier is active (Stats sums both ledgers, so placement only affects
// per-tier attribution).
//
//ampvet:hotpath
func (s *Sampled) StallCycles(n uint64) {
	if s.pos < s.detailCycles {
		s.det.StallCycles(n)
	} else {
		s.ivl.StallCycles(n)
	}
}

// Run implements cpu.Engine, splitting the window at tier boundaries
// and handing each piece to the active tier. Tier switches use the
// same unbind/bind protocol as a thread swap, so the detailed pipeline
// drains (squashing its in-flight work) before fast-forwarding.
//
//ampvet:hotpath
func (s *Sampled) Run(now, cycles uint64) {
	if s.arch == nil {
		return
	}
	for cycles > 0 {
		var step uint64
		if s.pos < s.detailCycles {
			if !s.det.Bound() {
				s.ivl.Unbind()
				s.det.Bind(s.src, s.arch)
			}
			step = s.detailCycles - s.pos
			if step > cycles {
				step = cycles
			}
			s.det.Run(now, step)
		} else {
			if !s.ivl.Bound() {
				s.det.Unbind()
				s.ivl.Bind(s.src, s.arch)
			}
			step = s.periodCycles - s.pos
			if step > cycles {
				step = cycles
			}
			s.ivl.Run(now, step)
		}
		now += step
		cycles -= step
		s.pos += step
		if s.pos == s.periodCycles {
			s.pos = 0
		}
	}
}

// Stats implements cpu.Engine: the merged ledgers of both tiers.
func (s *Sampled) Stats() cpu.EngineStats {
	return s.det.Stats().Add(s.ivl.Stats())
}

// Reconfigure implements cpu.Engine, forwarding to both tiers.
func (s *Sampled) Reconfigure(units [cpu.NumUnitKinds]cpu.UnitSpec) error {
	if s.arch != nil {
		return fmt.Errorf("interval: %s: Reconfigure with a bound thread", s.Config().Name)
	}
	if err := s.det.Reconfigure(units); err != nil {
		return err
	}
	return s.ivl.Reconfigure(units)
}
