package interval

import (
	"fmt"

	"ampsched/internal/cpu"
)

// FidelitySampled labels the two-tier engine.
const FidelitySampled = "sampled"

// Sampled-engine schedule: each period opens with a detailed window
// (real caches, predictor and pipeline back in play) and fast-forwards
// the rest with the interval model. Two window lengths exist: the
// full warm-up (DefaultDetailCycles) runs the first time a thread
// lands on a core, when the detailed core's caches hold nothing of the
// thread; the shorter re-anchor (DefaultReanchorCycles) runs at every
// scheduled period wrap, where the caches still hold the thread's aged
// state from the previous window and the job is only to re-measure IPC
// drift, not to rebuild locality. The period keeps one re-anchor per
// two paper-scale coarse scheduling intervals (the HPE/RR context
// switch is 4M cycles). The detailed duty cycle is the fig7full
// wall-clock knob: re-anchors dominate low-IPC pairs (a 500M-
// instruction run can span billions of cycles), so the re-anchor
// length, not the warm-up length, sets the sweep's wall time.
const (
	DefaultDetailCycles   = 20_000
	DefaultReanchorCycles = 5_000
	DefaultPeriodCycles   = 8_000_000
)

// Sampled is the two-tier cpu.Engine: a detailed core and an interval
// engine over the same configuration, multiplexed on a fixed cycle
// schedule. Binding always starts a detailed window — after a thread
// swap the warm-up is exactly what re-measures the cold-cache cost.
// The detailed core's caches and predictor persist across interval
// gaps, so each warm-up resumes from plausibly aged state rather than
// from scratch.
type Sampled struct {
	det *cpu.Core
	ivl *Engine

	src  cpu.InstrSource
	arch *cpu.ThreadArch

	detailCycles   uint64
	reanchorCycles uint64
	periodCycles   uint64
	pos            uint64 // position within the current period
	warmLen        uint64 // this period's detailed span: detailCycles on a cold bind, reanchorCycles after a scheduled wrap

	// warmed memoizes, per thread (ledger identity), that a full
	// detailed warm-up window has completed on this core during this
	// run: a later re-bind of the same thread — the swap ping-pong
	// case — resumes in the interval tier instead of re-running the
	// warm-up, because the detailed core's caches and predictor
	// already hold that thread's aged state from the previous bind.
	// Scheduled period-wrap warm-ups are unaffected, and Reconfigure
	// invalidates the memo (a morphed core is a different machine).
	warmed []*cpu.ThreadArch
}

var _ cpu.Engine = (*Sampled)(nil)

// NewSampled builds a sampled engine with the given schedule
// (detailCycles of warm-up opening every periodCycles).
func NewSampled(cfg *cpu.Config, detailCycles, periodCycles uint64) *Sampled {
	if detailCycles == 0 || periodCycles <= detailCycles {
		panic(fmt.Sprintf("interval: sampled schedule needs 0 < detail (%d) < period (%d)",
			detailCycles, periodCycles))
	}
	return &Sampled{
		det:            cpu.NewCore(cfg),
		ivl:            New(cfg),
		detailCycles:   detailCycles,
		reanchorCycles: detailCycles,
		periodCycles:   periodCycles,
	}
}

// SetReanchorCycles shortens the detailed window run at scheduled
// period wraps (the first window of a cold thread always runs the full
// detailCycles). NewSampled defaults the re-anchor to the full warm-up
// length.
func (s *Sampled) SetReanchorCycles(n uint64) {
	if n == 0 || n > s.detailCycles {
		panic(fmt.Sprintf("interval: re-anchor window %d outside (0, detail %d]", n, s.detailCycles))
	}
	s.reanchorCycles = n
}

// SampledFactory returns the cpu.EngineFactory for the sampled engine
// with the default schedule.
func SampledFactory() cpu.EngineFactory {
	return func(cfg *cpu.Config) (cpu.Engine, error) {
		s := NewSampled(cfg, DefaultDetailCycles, DefaultPeriodCycles)
		s.SetReanchorCycles(DefaultReanchorCycles)
		return s, nil
	}
}

// Config implements cpu.Engine.
func (s *Sampled) Config() *cpu.Config { return s.det.Config() }

// Fidelity implements cpu.Engine.
func (s *Sampled) Fidelity() string { return FidelitySampled }

// Stride implements cpu.Engine: the interval stride; detailed warm-up
// windows are run in stride-sized chunks, which is equivalent cycle by
// cycle because the two cores of a system share no state.
func (s *Sampled) Stride() uint64 { return s.ivl.Stride() }

// Bound implements cpu.Engine.
func (s *Sampled) Bound() bool { return s.arch != nil }

// Arch implements cpu.Engine.
func (s *Sampled) Arch() *cpu.ThreadArch { return s.arch }

// InFlight implements cpu.Engine.
func (s *Sampled) InFlight() int { return s.det.InFlight() + s.ivl.InFlight() }

// Bind implements cpu.Engine: a thread not yet warmed on this core
// starts in a detailed warm-up window; a re-bound thread that already
// completed one resumes in the interval tier at the top of its
// fast-forward span.
func (s *Sampled) Bind(src cpu.InstrSource, arch *cpu.ThreadArch) {
	if s.arch != nil {
		panic(fmt.Sprintf("interval: %s: Bind with thread already bound", s.Config().Name))
	}
	s.src = src
	s.arch = arch
	if s.isWarmed(arch) {
		// Resume at the top of the fast-forward span: the period wrap
		// arrives exactly when it would have had the warm-up run.
		s.pos = s.detailCycles
		s.warmLen = s.detailCycles
		s.ivl.Bind(src, arch)
		return
	}
	s.pos = 0
	s.warmLen = s.detailCycles
	s.det.Bind(src, arch)
}

// isWarmed reports whether arch completed a full warm-up this run.
func (s *Sampled) isWarmed(arch *cpu.ThreadArch) bool {
	for _, w := range s.warmed {
		if w == arch {
			return true
		}
	}
	return false
}

// markWarmed records a completed warm-up window for the bound thread.
func (s *Sampled) markWarmed(arch *cpu.ThreadArch) {
	if !s.isWarmed(arch) {
		s.warmed = append(s.warmed, arch)
	}
}

// Unbind implements cpu.Engine.
func (s *Sampled) Unbind() uint64 {
	if s.arch == nil {
		return 0
	}
	squashed := s.det.Unbind() + s.ivl.Unbind()
	s.src = nil
	s.arch = nil
	return squashed
}

// StallCycles implements cpu.Engine; the charge lands on whichever
// tier is active (Stats sums both ledgers, so placement only affects
// per-tier attribution).
//
//ampvet:hotpath
func (s *Sampled) StallCycles(n uint64) {
	if s.pos < s.warmLen {
		s.det.StallCycles(n)
	} else {
		s.ivl.StallCycles(n)
	}
}

// Run implements cpu.Engine, splitting the window at tier boundaries
// and handing each piece to the active tier. Tier switches use the
// same unbind/bind protocol as a thread swap, so the detailed pipeline
// drains (squashing its in-flight work) before fast-forwarding.
//
//ampvet:hotpath
func (s *Sampled) Run(now, cycles uint64) {
	if s.arch == nil {
		return
	}
	for cycles > 0 {
		var step uint64
		if s.pos < s.warmLen {
			if !s.det.Bound() {
				s.ivl.Unbind()
				s.det.Bind(s.src, s.arch)
			}
			step = s.warmLen - s.pos
			if step > cycles {
				step = cycles
			}
			s.det.Run(now, step)
			if s.pos+step == s.warmLen {
				s.markWarmed(s.arch)
			}
		} else {
			if !s.ivl.Bound() {
				s.det.Unbind()
				s.ivl.Bind(s.src, s.arch)
			}
			step = s.periodCycles - s.pos
			if step > cycles {
				step = cycles
			}
			s.ivl.Run(now, step)
		}
		now += step
		cycles -= step
		s.pos += step
		if s.pos == s.periodCycles {
			// Scheduled re-anchor: the detailed core's caches still hold
			// this thread's aged state, so the wrap's detailed span is
			// the shorter re-anchor window.
			s.pos = 0
			s.warmLen = s.reanchorCycles
		}
	}
}

// Stats implements cpu.Engine: the merged ledgers of both tiers.
func (s *Sampled) Stats() cpu.EngineStats {
	return s.det.Stats().Add(s.ivl.Stats())
}

// Reconfigure implements cpu.Engine, forwarding to both tiers.
func (s *Sampled) Reconfigure(units [cpu.NumUnitKinds]cpu.UnitSpec) error {
	if s.arch != nil {
		return fmt.Errorf("interval: %s: Reconfigure with a bound thread", s.Config().Name)
	}
	if err := s.det.Reconfigure(units); err != nil {
		return err
	}
	// A reconfigured core is a different machine: every memoized
	// warm-up is stale.
	s.warmed = s.warmed[:0]
	return s.ivl.Reconfigure(units)
}
