// Package interval implements the fast analytic simulation engines
// behind the cpu.Engine seam: a calibrated mechanistic interval model
// ("interval") that advances a thread whole scheduling windows at a
// time, and a two-tier sampled engine ("sampled") that interleaves
// detailed warm-up windows with interval fast-forward.
//
// The interval engine never synthesizes individual instructions: it
// reads each phase's statistical description straight from the
// workload generator, computes a per-phase IPC with the mechanistic
// model in model.go, anchors it to a short detailed-mode run of the
// same (core config, benchmark) pair (calibrate.go), and then Skip()s
// the generator across whole windows. Per-window cost is a handful of
// float operations, which is what buys the paper-scale experiment
// (fig7full: 80 pairs x 500M instructions) its minutes-not-hours
// runtime. Determinism is preserved end to end: no clocks, no random
// draws, and a calibration store keyed by pure inputs.
package interval

import (
	"fmt"

	"ampsched/internal/cpu"
	"ampsched/internal/isa"
	"ampsched/internal/workload"
)

// DefaultStride is the cycle batch the interval engine asks the AMP
// loop for. At 128 cycles and a hard IPC ceiling of 4 this is at most
// ~512 instructions per window — under the 1000-instruction scheduler
// windows, so monitor-visible committed counters advance smoothly
// enough for every policy, while halving the per-window loop overhead
// relative to a 64-cycle stride (the fig7full budget is set by this
// constant times the per-window cost).
const DefaultStride = 128

// FidelityInterval labels the analytic engine.
const FidelityInterval = "interval"

// Engine is the calibrated interval-model implementation of
// cpu.Engine.
type Engine struct {
	cfg   *cpu.Config
	units [cpu.NumUnitKinds]cpu.UnitSpec

	gen  *workload.Generator
	arch *cpu.ThreadArch
	cal  *Calibration

	activeCycles uint64 //ampvet:unit cycles
	stallCycles  uint64 //ampvet:unit cycles
	committed    uint64 //ampvet:unit instructions
	sinceBind    uint64 //ampvet:unit cycles

	fracCommit float64
	classFrac  [isa.NumClasses]float64

	// acc holds the event-rate ledger of all *previous* binds; the
	// current bind's share is cal.Rates[i]*sinceBind, computed lazily
	// in Stats (rates are constant while bound, so accumulating them
	// per window would only add nRates multiply-adds to the hot path).
	acc rateVec
}

var _ cpu.Engine = (*Engine)(nil)

// New builds an interval engine for cfg. The configuration is
// validated and must not change afterwards.
func New(cfg *cpu.Config) *Engine {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	return &Engine{cfg: cfg, units: cfg.Units}
}

// Factory returns the cpu.EngineFactory for the interval engine.
func Factory() cpu.EngineFactory {
	return func(cfg *cpu.Config) (cpu.Engine, error) { return New(cfg), nil }
}

// FactoryFor maps a -fidelity flag value to its engine factory.
// The empty string means detailed.
func FactoryFor(fidelity string) (cpu.EngineFactory, error) {
	switch fidelity {
	case "", cpu.FidelityDetailed:
		return cpu.DetailedFactory, nil
	case FidelityInterval:
		return Factory(), nil
	case FidelitySampled:
		return SampledFactory(), nil
	default:
		return nil, fmt.Errorf("interval: unknown fidelity %q (want detailed, interval or sampled)", fidelity)
	}
}

// Config implements cpu.Engine.
func (e *Engine) Config() *cpu.Config { return e.cfg }

// Fidelity implements cpu.Engine.
func (e *Engine) Fidelity() string { return FidelityInterval }

// Stride implements cpu.Engine.
func (e *Engine) Stride() uint64 { return DefaultStride }

// Bound implements cpu.Engine.
func (e *Engine) Bound() bool { return e.arch != nil }

// Arch implements cpu.Engine.
func (e *Engine) Arch() *cpu.ThreadArch { return e.arch }

// InFlight implements cpu.Engine: the analytic engine commits
// instantly, nothing is ever in flight.
func (e *Engine) InFlight() int { return 0 }

// Bind attaches a thread. The source must be a *workload.Generator —
// the model reads phase descriptions, not instructions; trace-driven
// sources need the detailed engine.
func (e *Engine) Bind(src cpu.InstrSource, arch *cpu.ThreadArch) {
	if e.arch != nil {
		panic(fmt.Sprintf("interval: %s: Bind with thread already bound", e.cfg.Name))
	}
	gen, ok := src.(*workload.Generator)
	if !ok {
		panic(fmt.Sprintf("interval: %s: source %T is not a *workload.Generator (trace sources require -fidelity detailed)", e.cfg.Name, src))
	}
	if arch.CodeSize == 0 {
		panic("interval: Bind with zero CodeSize")
	}
	e.gen = gen
	e.arch = arch
	e.cal = calibrationFor(e.cfg, e.units, gen.Benchmark())
	e.sinceBind = 0
	e.fracCommit = 0
	e.classFrac = [isa.NumClasses]float64{}
}

// Unbind detaches the thread, folding the bind's event-rate share
// into the ledger. The analytic engine holds no in-flight work, so
// nothing is squashed.
func (e *Engine) Unbind() uint64 {
	if e.arch == nil {
		return 0
	}
	sb := float64(e.sinceBind)
	for i := 0; i < nRates; i++ {
		e.acc[i] += e.cal.Rates[i] * sb
	}
	e.sinceBind = 0
	e.gen = nil
	e.arch = nil
	e.cal = nil
	return 0
}

// StallCycles implements cpu.Engine.
//
//ampvet:hotpath
func (e *Engine) StallCycles(n uint64) { e.stallCycles += n }

// Run advances the engine by a window of cycles: the current phase's
// calibrated IPC (cold-start adjusted) converts cycles to committed
// instructions, with the fractional remainder carried across windows.
//
//ampvet:hotpath
func (e *Engine) Run(now, cycles uint64) {
	_ = now
	if e.arch == nil {
		return
	}
	e.activeCycles += cycles
	phase, _ := e.gen.PhasePos()
	ipc := e.cal.PhaseIPC[phase] * coldFactor(e.sinceBind)
	e.fracCommit += ipc * float64(cycles)
	k := uint64(e.fracCommit)
	if k == 0 {
		return
	}
	e.fracCommit -= float64(k)
	e.commitBatch(k)
}

// commitBatch retires k instructions, attributing them to phases by
// walking the generator (Skip crosses phase boundaries exactly as Next
// would) and to classes by each phase's mix with fractional
// accumulators (per-class drift is bounded by one instruction each).
//
//ampvet:hotpath
func (e *Engine) commitBatch(k uint64) {
	for k > 0 {
		phase, rem := e.gen.PhasePos()
		m := k
		if m > rem {
			m = rem
		}
		mf := float64(m)
		mix := &e.gen.Benchmark().Phases[phase].Mix
		for c := 0; c < int(isa.NumClasses); c++ {
			e.classFrac[c] += mix[c] * mf
			whole := uint64(e.classFrac[c])
			e.classFrac[c] -= float64(whole)
			e.arch.CommittedByClass[c] += whole
		}
		e.gen.Skip(m)
		e.arch.Committed += m
		e.arch.NextSeq += m
		e.committed += m
		e.sinceBind += m
		k -= m
	}
}

// Stats implements cpu.Engine: cycle counters are exact, event and
// cache counters are the accumulated calibration rates floored to
// integers (monotonic, so interval deltas work — the current bind's
// share grows with sinceBind and is folded into acc at Unbind).
func (e *Engine) Stats() cpu.EngineStats {
	acc := e.acc
	if e.arch != nil {
		sb := float64(e.sinceBind)
		for i := 0; i < nRates; i++ {
			acc[i] += e.cal.Rates[i] * sb
		}
	}
	act, l1i, l1d, l2 := materialize(&acc)
	act.Cycles = e.activeCycles
	act.StallCycles = e.stallCycles
	return cpu.EngineStats{Act: act, Committed: e.committed, L1I: l1i, L1D: l1d, L2: l2}
}

// Reconfigure implements cpu.Engine (core morphing): subsequent binds
// calibrate against the new unit set.
func (e *Engine) Reconfigure(units [cpu.NumUnitKinds]cpu.UnitSpec) error {
	if e.arch != nil {
		return fmt.Errorf("interval: %s: Reconfigure with a bound thread", e.cfg.Name)
	}
	for k := cpu.UnitKind(0); k < cpu.NumUnitKinds; k++ {
		if units[k].Count <= 0 || units[k].Latency <= 0 {
			return fmt.Errorf("interval: %s: invalid unit %s in reconfiguration: %+v",
				e.cfg.Name, k, units[k])
		}
	}
	e.units = units
	return nil
}
