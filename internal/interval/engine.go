// Package interval implements the fast analytic simulation engines
// behind the cpu.Engine seam: a calibrated mechanistic interval model
// ("interval") that advances a thread whole scheduling windows at a
// time, and a two-tier sampled engine ("sampled") that interleaves
// detailed warm-up windows with interval fast-forward.
//
// The interval engine never synthesizes individual instructions: it
// reads each phase's statistical description straight from the
// workload generator, computes a per-phase IPC with the mechanistic
// model in model.go, anchors it to a short detailed-mode run of the
// same (core config, benchmark) pair (calibrate.go), and then Skip()s
// the generator across whole windows. Per-window cost is a handful of
// float operations, which is what buys the paper-scale experiment
// (fig7full: 80 pairs x 500M instructions) its minutes-not-hours
// runtime. Determinism is preserved end to end: no clocks, no random
// draws, and a calibration store keyed by pure inputs.
package interval

import (
	"fmt"

	"ampsched/internal/cpu"
	"ampsched/internal/isa"
	"ampsched/internal/workload"
)

// DefaultStride is the cycle batch the interval engine asks the AMP
// loop for. At 128 cycles and a hard IPC ceiling of 4 this is at most
// ~512 instructions per window — under the 1000-instruction scheduler
// windows, so monitor-visible committed counters advance smoothly
// enough for every policy, while halving the per-window loop overhead
// relative to a 64-cycle stride (the fig7full budget is set by this
// constant times the per-window cost).
const DefaultStride = 128

// FidelityInterval labels the analytic engine.
const FidelityInterval = "interval"

// Engine is the calibrated interval-model implementation of
// cpu.Engine.
type Engine struct {
	cfg   *cpu.Config
	units [cpu.NumUnitKinds]cpu.UnitSpec

	gen  *workload.Generator
	arch *cpu.ThreadArch
	cal  *Calibration

	activeCycles uint64 //ampvet:unit cycles
	stallCycles  uint64 //ampvet:unit cycles
	committed    uint64 //ampvet:unit instructions
	sinceBind    uint64 //ampvet:unit cycles

	// Mirror of the generator's phase position, so the hot path never
	// has to call back into the generator: phase/phaseRem track what
	// gen.PhasePos() would return, and pendingSkip is the generator
	// advance deferred until the next phase boundary (or Unbind) —
	// nothing outside the engine reads the generator while it is bound.
	phase       int
	phaseRem    uint64 //ampvet:unit instructions
	pendingSkip uint64 //ampvet:unit instructions

	// Per-class attribution is deferred the same way: phaseN counts
	// instructions committed in the current phase segment that have not
	// yet been attributed to CommittedByClass; syncClasses materializes
	// them at phase boundaries, Unbind, Stats, and on demand through
	// the arch's SyncClasses hook (installed at Bind) when a scheduler
	// or monitor reads the class counters mid-phase.
	phaseN uint64 //ampvet:unit instructions
	curIPC float64
	syncFn func()

	fracCommit float64
	classFrac  [isa.NumClasses]float64

	// acc holds the event-rate ledger of all *previous* binds; the
	// current bind's share is cal.Rates[i]*sinceBind, computed lazily
	// in Stats (rates are constant while bound, so accumulating them
	// per window would only add nRates multiply-adds to the hot path).
	acc rateVec
}

var _ cpu.Engine = (*Engine)(nil)

// New builds an interval engine for cfg. The configuration is
// validated and must not change afterwards.
func New(cfg *cpu.Config) *Engine {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	e := &Engine{cfg: cfg, units: cfg.Units}
	e.syncFn = e.syncClasses
	return e
}

// Factory returns the cpu.EngineFactory for the interval engine.
func Factory() cpu.EngineFactory {
	return func(cfg *cpu.Config) (cpu.Engine, error) { return New(cfg), nil }
}

// FactoryFor maps a -fidelity flag value to its engine factory.
// The empty string means detailed.
func FactoryFor(fidelity string) (cpu.EngineFactory, error) {
	switch fidelity {
	case "", cpu.FidelityDetailed:
		return cpu.DetailedFactory, nil
	case FidelityInterval:
		return Factory(), nil
	case FidelitySampled:
		return SampledFactory(), nil
	default:
		return nil, fmt.Errorf("interval: unknown fidelity %q (want detailed, interval or sampled)", fidelity)
	}
}

// Config implements cpu.Engine.
func (e *Engine) Config() *cpu.Config { return e.cfg }

// Fidelity implements cpu.Engine.
func (e *Engine) Fidelity() string { return FidelityInterval }

// Stride implements cpu.Engine.
func (e *Engine) Stride() uint64 { return DefaultStride }

// Bound implements cpu.Engine.
func (e *Engine) Bound() bool { return e.arch != nil }

// Arch implements cpu.Engine.
func (e *Engine) Arch() *cpu.ThreadArch { return e.arch }

// InFlight implements cpu.Engine: the analytic engine commits
// instantly, nothing is ever in flight.
func (e *Engine) InFlight() int { return 0 }

// Bind attaches a thread. The source must be a *workload.Generator —
// the model reads phase descriptions, not instructions; trace-driven
// sources need the detailed engine.
func (e *Engine) Bind(src cpu.InstrSource, arch *cpu.ThreadArch) {
	if e.arch != nil {
		panic(fmt.Sprintf("interval: %s: Bind with thread already bound", e.cfg.Name))
	}
	gen, ok := src.(*workload.Generator)
	if !ok {
		panic(fmt.Sprintf("interval: %s: source %T is not a *workload.Generator (trace sources require -fidelity detailed)", e.cfg.Name, src))
	}
	if arch.CodeSize == 0 {
		panic("interval: Bind with zero CodeSize")
	}
	e.gen = gen
	e.arch = arch
	e.cal = calibrationFor(e.cfg, e.units, gen.Benchmark())
	e.sinceBind = 0
	e.fracCommit = 0
	e.classFrac = [isa.NumClasses]float64{}
	e.phase, e.phaseRem = gen.PhasePos()
	e.pendingSkip = 0
	e.phaseN = 0
	e.curIPC = e.cal.PhaseIPC[e.phase]
	arch.SyncClasses = e.syncFn
}

// Unbind detaches the thread, folding the bind's event-rate share
// into the ledger. The analytic engine holds no in-flight work, so
// nothing is squashed.
func (e *Engine) Unbind() uint64 {
	if e.arch == nil {
		return 0
	}
	e.syncClasses()
	e.arch.SyncClasses = nil
	if e.pendingSkip > 0 {
		e.gen.Skip(e.pendingSkip)
		e.pendingSkip = 0
	}
	sb := float64(e.sinceBind)
	for i := 0; i < nRates; i++ {
		e.acc[i] += e.cal.Rates[i] * sb
	}
	e.sinceBind = 0
	e.gen = nil
	e.arch = nil
	e.cal = nil
	return 0
}

// ResetState implements cpu.StateResetter: it clears the accumulated
// cycle, commit and event-rate ledgers, so a pooled engine's next run
// is bit-identical to one on a freshly constructed engine (everything
// else is re-derived at Bind). The engine must be unbound.
func (e *Engine) ResetState() {
	if e.arch != nil {
		panic(fmt.Sprintf("interval: %s: ResetState with a bound thread", e.cfg.Name))
	}
	e.activeCycles = 0
	e.stallCycles = 0
	e.committed = 0
	e.acc = rateVec{}
}

// StallCycles implements cpu.Engine.
//
//ampvet:hotpath
func (e *Engine) StallCycles(n uint64) { e.stallCycles += n }

// Run advances the engine by a window of cycles: the current phase's
// calibrated IPC (cold-start adjusted) converts cycles to committed
// instructions, with the fractional remainder carried across windows.
//
//ampvet:hotpath
func (e *Engine) Run(now, cycles uint64) {
	_ = now
	if e.arch == nil {
		return
	}
	e.activeCycles += cycles
	ipc := e.curIPC
	if e.sinceBind < rampInstr {
		ipc *= coldFactor(e.sinceBind)
	}
	e.fracCommit += ipc * float64(cycles)
	k := uint64(e.fracCommit)
	if k == 0 {
		return
	}
	e.fracCommit -= float64(k)
	if k < e.phaseRem {
		// Common case: the whole batch lands inside the current phase.
		// Class attribution and the generator advance are deferred
		// (phaseN / pendingSkip); only the counters the AMP loop and
		// the window monitors poll every stride are updated eagerly.
		e.arch.Committed += k
		e.arch.NextSeq += k
		e.committed += k
		e.sinceBind += k
		e.phaseN += k
		e.pendingSkip += k
		e.phaseRem -= k
		return
	}
	e.commitBatch(k)
}

// commitBatch retires k instructions across one or more phase
// boundaries, materializing the deferred class attribution under each
// phase's mix before advancing (syncClasses), and batching the
// generator advance into pendingSkip — Skip crosses into the next
// phase exactly as per-chunk calls would.
//
//ampvet:hotpath
func (e *Engine) commitBatch(k uint64) {
	arch := e.arch
	for k > 0 {
		m := k
		if m > e.phaseRem {
			m = e.phaseRem
		}
		arch.Committed += m
		arch.NextSeq += m
		e.committed += m
		e.sinceBind += m
		e.phaseN += m
		e.pendingSkip += m
		e.phaseRem -= m
		if e.phaseRem == 0 {
			e.syncClasses()
			e.gen.Skip(e.pendingSkip)
			e.pendingSkip = 0
			e.phase, e.phaseRem = e.gen.PhasePos()
			e.curIPC = e.cal.PhaseIPC[e.phase]
		}
		k -= m
	}
}

// syncClasses materializes the deferred per-class attribution of the
// current phase segment: phaseN instructions are split by the phase's
// nonzero mix entries with fractional accumulators (per-class drift is
// bounded by one instruction each). Called at phase boundaries and
// Unbind, and through ThreadArch.Sync whenever a scheduler or monitor
// reads CommittedByClass mid-phase.
func (e *Engine) syncClasses() {
	if e.phaseN == 0 {
		return
	}
	mf := float64(e.phaseN)
	e.phaseN = 0
	arch := e.arch
	for _, cs := range e.cal.classes[e.phase] {
		f := e.classFrac[cs.cls] + cs.frac*mf
		whole := uint64(f)
		e.classFrac[cs.cls] = f - float64(whole)
		arch.CommittedByClass[cs.cls] += whole
	}
}

// Stats implements cpu.Engine: cycle counters are exact, event and
// cache counters are the accumulated calibration rates floored to
// integers (monotonic, so interval deltas work — the current bind's
// share grows with sinceBind and is folded into acc at Unbind).
func (e *Engine) Stats() cpu.EngineStats {
	acc := e.acc
	if e.arch != nil {
		sb := float64(e.sinceBind)
		for i := 0; i < nRates; i++ {
			acc[i] += e.cal.Rates[i] * sb
		}
	}
	act, l1i, l1d, l2 := materialize(&acc)
	act.Cycles = e.activeCycles
	act.StallCycles = e.stallCycles
	return cpu.EngineStats{Act: act, Committed: e.committed, L1I: l1i, L1D: l1d, L2: l2}
}

// Reconfigure implements cpu.Engine (core morphing): subsequent binds
// calibrate against the new unit set.
func (e *Engine) Reconfigure(units [cpu.NumUnitKinds]cpu.UnitSpec) error {
	if e.arch != nil {
		return fmt.Errorf("interval: %s: Reconfigure with a bound thread", e.cfg.Name)
	}
	for k := cpu.UnitKind(0); k < cpu.NumUnitKinds; k++ {
		if units[k].Count <= 0 || units[k].Latency <= 0 {
			return fmt.Errorf("interval: %s: invalid unit %s in reconfiguration: %+v",
				e.cfg.Name, k, units[k])
		}
	}
	e.units = units
	return nil
}
