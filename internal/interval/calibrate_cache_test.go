package interval

import (
	"fmt"
	"testing"

	"ampsched/internal/cpu"
	"ampsched/internal/telemetry"
	"ampsched/internal/workload"
)

// resetCalCacheForTest empties the process-global calibration cache
// and restores the default budget; the returned function undoes the
// telemetry hookup.
func resetCalCacheForTest(t *testing.T, tel *telemetry.Telemetry) {
	t.Helper()
	calMu.Lock()
	calCache = map[calKey]*calEntry{}
	calBytes = 0
	calBudget = DefaultCalCacheBytes
	calMu.Unlock()
	SetTelemetry(tel)
	t.Cleanup(func() {
		SetTelemetry(nil)
		calMu.Lock()
		calCache = map[calKey]*calEntry{}
		calBytes = 0
		calBudget = DefaultCalCacheBytes
		calMu.Unlock()
	})
}

// TestCalCacheBoundedLRU pins the cache's contract: hits and misses
// are counted, the byte budget evicts approximately-LRU, and a touched
// entry survives eviction of a staler one.
func TestCalCacheBoundedLRU(t *testing.T) {
	tel := telemetry.New()
	resetCalCacheForTest(t, tel)

	base := cpu.IntCoreConfig()
	bench := workload.MustByName("gcc")
	cfgN := func(i int) *cpu.Config {
		c := *base
		c.Name = fmt.Sprintf("%s-calcache-%d", base.Name, i)
		return &c
	}

	// Two entries fit the budget; a third must evict the stalest.
	one := calibrationFor(cfgN(0), base.Units, bench)
	SetCalibrationCacheBudget(2*calSize(one) + calSize(one)/2)
	calibrationFor(cfgN(1), base.Units, bench)
	if got := tel.Counter("interval.calibrations").Value(); got != 2 {
		t.Fatalf("calibrations = %d, want 2", got)
	}
	if got := tel.Counter("interval.cal_cache_hits").Value(); got != 0 {
		t.Fatalf("premature hits: %d", got)
	}

	// Touch entry 0 so entry 1 is the LRU victim.
	calibrationFor(cfgN(0), base.Units, bench)
	if got := tel.Counter("interval.cal_cache_hits").Value(); got != 1 {
		t.Fatalf("cal_cache_hits = %d, want 1", got)
	}

	calibrationFor(cfgN(2), base.Units, bench) // evicts entry 1
	calMu.RLock()
	n, bytes, budget := len(calCache), calBytes, calBudget
	_, has0 := calCache[calKey{cfg: *cfgN(0), units: base.Units, bench: bench.Name}]
	_, has1 := calCache[calKey{cfg: *cfgN(1), units: base.Units, bench: bench.Name}]
	calMu.RUnlock()
	if bytes > budget {
		t.Fatalf("cache over budget: %d > %d", bytes, budget)
	}
	if n != 2 || !has0 || has1 {
		t.Fatalf("eviction picked the wrong victim: n=%d has0=%v has1=%v", n, has0, has1)
	}

	// The evicted key recalibrates (a miss, not a hit).
	calibrationFor(cfgN(1), base.Units, bench)
	if got := tel.Counter("interval.calibrations").Value(); got != 4 {
		t.Fatalf("calibrations = %d, want 4", got)
	}

	// A budget smaller than any entry still keeps the newest.
	SetCalibrationCacheBudget(1)
	calMu.RLock()
	n = len(calCache)
	calMu.RUnlock()
	if n != 1 {
		t.Fatalf("tiny budget kept %d entries, want 1", n)
	}
}
