package interval

// Batched interval simulation: many pair runs advanced through one
// interleaved pass. The analytic engine's per-window work is a handful
// of loads from shared, content-addressed tables — the calibration's
// PhaseIPC/classes vectors and the benchmark's phase descriptions —
// and those tables are shared by every run simulating the same (core
// config, benchmark) key. Driving many runs a chunk of windows at a
// time keeps the shared tables and the per-run working sets resident
// in cache across the whole batch, instead of each run streaming them
// through alone; it is also the seam the server's job batching and the
// experiments sweep feed (they group runs with a common core digest
// and fidelity into one pass).
//
// The runner is deliberately fidelity-agnostic: it drives anything
// that exposes the resumable-run surface (implemented by
// *amp.Stepper), and interleaving is invisible to results because the
// runs share no mutable state — a batched run is bit-identical to the
// same run driven alone, which the cross-path identity tests pin.

// PairStepper is the resumable-run surface a batch pass drives: Step
// advances the run by at most the given number of stride-windows and
// reports completion. *amp.Stepper implements it.
type PairStepper interface {
	Step(windows int) bool
}

// DefaultBatchWindows is the per-run chunk of an interleaved pass:
// large enough to amortize the round-robin switch, small enough that a
// batch's working set rotates through cache many times per run
// (~512k cycles at the interval engine's 128-cycle stride).
const DefaultBatchWindows = 4096

// BatchRunner drives a set of resumable runs to completion in
// round-robin chunks.
//
// A zero BatchRunner is ready to use (chunk defaults applied at Run).
// The runner is not safe for concurrent use; parallel sweeps use one
// per worker.
type BatchRunner struct {
	// Windows is the per-run chunk of one round-robin turn
	// (0 = DefaultBatchWindows).
	Windows int

	steppers []PairStepper
}

// NewBatchRunner returns a runner advancing each run by windows
// stride-windows per turn (0 = DefaultBatchWindows).
func NewBatchRunner(windows int) *BatchRunner {
	return &BatchRunner{Windows: windows}
}

// Add enqueues runs for the next Run call.
func (b *BatchRunner) Add(steppers ...PairStepper) {
	b.steppers = append(b.steppers, steppers...)
}

// Len returns the number of runs currently enqueued.
func (b *BatchRunner) Len() int { return len(b.steppers) }

// Run drives every enqueued run to completion, interleaving them in
// chunks, and clears the queue (the stepper slice is retained for
// reuse). Completed runs drop out of the rotation; each survivor is
// stepped once per round, so no run can starve another.
func (b *BatchRunner) Run() {
	windows := b.Windows
	if windows <= 0 {
		windows = DefaultBatchWindows
	}
	live := b.steppers
	for len(live) > 0 {
		w := 0
		for _, st := range live {
			if !st.Step(windows) {
				live[w] = st
				w++
			}
		}
		live = live[:w]
	}
	for i := range b.steppers {
		b.steppers[i] = nil
	}
	b.steppers = b.steppers[:0]
}
