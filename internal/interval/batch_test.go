package interval

import "testing"

// fakeStepper finishes after a fixed number of Step calls and records
// the chunk sizes it was handed.
type fakeStepper struct {
	turnsLeft int
	calls     int
	windows   []int
}

func (f *fakeStepper) Step(windows int) bool {
	f.calls++
	f.windows = append(f.windows, windows)
	f.turnsLeft--
	return f.turnsLeft <= 0
}

func TestBatchRunnerDrivesAllToCompletion(t *testing.T) {
	br := NewBatchRunner(16)
	steppers := []*fakeStepper{{turnsLeft: 1}, {turnsLeft: 5}, {turnsLeft: 3}}
	for _, st := range steppers {
		br.Add(st)
	}
	if br.Len() != len(steppers) {
		t.Fatalf("Len = %d, want %d", br.Len(), len(steppers))
	}
	br.Run()
	for i, st := range steppers {
		if st.turnsLeft > 0 {
			t.Errorf("stepper %d not driven to completion (%d turns left)", i, st.turnsLeft)
		}
		if st.calls != cap(st.windows) && st.calls != len(st.windows) {
			t.Errorf("stepper %d bookkeeping inconsistent", i)
		}
		for _, w := range st.windows {
			if w != 16 {
				t.Errorf("stepper %d got chunk %d, want 16", i, w)
			}
		}
	}
	// Fairness: a finished run drops out, survivors get exactly one
	// turn per round — so the longest run's call count equals its turn
	// count, not a multiple of it.
	if steppers[1].calls != 5 || steppers[0].calls != 1 || steppers[2].calls != 3 {
		t.Errorf("round-robin call counts: %d/%d/%d, want 1/5/3",
			steppers[0].calls, steppers[1].calls, steppers[2].calls)
	}
	if br.Len() != 0 {
		t.Fatalf("queue not cleared after Run: %d", br.Len())
	}
}

func TestBatchRunnerDefaultWindows(t *testing.T) {
	var br BatchRunner // zero value usable
	st := &fakeStepper{turnsLeft: 2}
	br.Add(st)
	br.Run()
	for _, w := range st.windows {
		if w != DefaultBatchWindows {
			t.Fatalf("chunk %d, want DefaultBatchWindows (%d)", w, DefaultBatchWindows)
		}
	}
}

func TestBatchRunnerEmptyRun(t *testing.T) {
	var br BatchRunner
	br.Run() // must not hang or panic
	if br.Len() != 0 {
		t.Fatal("phantom steppers")
	}
}
