package interval

import (
	"testing"

	"ampsched/internal/cpu"
	"ampsched/internal/workload"
)

// TestSampledWarmupMemoized pins the per-(thread, core) warm-up memo:
// the first bind of a thread runs a detailed warm-up window, a
// re-bind of the same thread after a completed warm-up resumes in the
// interval tier, and the memo is invalidated by Reconfigure, scoped
// per thread, and not set by an interrupted warm-up.
func TestSampledWarmupMemoized(t *testing.T) {
	cfg := cpu.IntCoreConfig()
	s := NewSampled(cfg, 1_000, 100_000)
	bench := workload.MustByName("gcc")
	genA := workload.NewGenerator(bench, 1, 0)
	archA := &cpu.ThreadArch{CodeBase: 1 << 36, CodeSize: bench.EffectiveCodeFootprint()}

	s.Bind(genA, archA)
	if !s.det.Bound() || s.pos != 0 {
		t.Fatal("first bind must start a detailed warm-up")
	}
	s.Run(0, 5_000) // completes the warm-up, crosses into interval
	s.Unbind()

	s.Bind(genA, archA)
	if s.pos != s.detailCycles || !s.ivl.Bound() {
		t.Fatalf("re-bind of a warmed thread must skip the warm-up (pos %d, ivl bound %v)",
			s.pos, s.ivl.Bound())
	}
	s.Run(5_000, 1_000)
	s.Unbind()

	// A different thread on the same core still warms up.
	genB := workload.NewGenerator(bench, 2, 1<<20)
	archB := &cpu.ThreadArch{CodeBase: 1<<36 + 1<<20, CodeSize: bench.EffectiveCodeFootprint()}
	s.Bind(genB, archB)
	if s.pos != 0 || !s.det.Bound() {
		t.Fatal("unwarmed thread must run a warm-up")
	}
	// An interrupted warm-up must not memoize.
	s.Run(0, 10)
	s.Unbind()
	s.Bind(genB, archB)
	if s.pos != 0 || !s.det.Bound() {
		t.Fatal("interrupted warm-up must not count as warmed")
	}
	s.Run(0, 5_000)
	s.Unbind()

	// The scheduled period-wrap warm-up is unaffected by the memo: a
	// warmed thread crossing a period boundary re-enters the detailed
	// tier.
	s.Bind(genA, archA)
	s.Run(0, s.periodCycles-s.pos+10)
	if !s.det.Bound() {
		t.Fatal("period wrap must re-enter the detailed tier even for a warmed thread")
	}
	s.Unbind()

	// Reconfigure invalidates every memoized warm-up.
	if err := s.Reconfigure(cfg.Units); err != nil {
		t.Fatal(err)
	}
	s.Bind(genA, archA)
	if s.pos != 0 || !s.det.Bound() {
		t.Fatal("Reconfigure must invalidate the warm-up memo")
	}
	s.Unbind()
}
