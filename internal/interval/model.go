package interval

import (
	"ampsched/internal/cpu"
	"ampsched/internal/isa"
	"ampsched/internal/workload"
)

// The mechanistic model: per-phase steady-state IPC from first
// principles, in the style of interval analysis (Eyerman et al.). The
// base IPC is the tightest of three throughput bounds — pipeline
// width, functional-unit contention from the Table II unit sets, and
// the dependence-limited ILP of the phase — and miss events (branch
// mispredictions, instruction-cache misses, data misses at L2 and
// memory) add their penalties to the CPI, with an ROB-occupancy MLP
// correction overlapping independent memory misses. Absolute accuracy
// comes from the per-(config, benchmark) calibration in calibrate.go;
// the model's job is to rank phases and respond monotonically to the
// parameters the two core flavors differ in.

// minIPC floors the modeled IPC so pathological phases cannot stall a
// run (the detailed core always makes some progress too).
const minIPC = 0.02

// unitForClass mirrors cpu's class-to-unit mapping: loads and stores
// occupy the memory port, branches resolve on the integer ALU.
func unitForClass(c isa.Class) cpu.UnitKind {
	switch c {
	case isa.Load, isa.Store:
		return cpu.UMemPort
	case isa.Branch:
		return cpu.UIntALU
	default:
		return cpu.UnitKind(c)
	}
}

// missRateFor estimates the fraction of data accesses that miss a
// cache of capacity size bytes with the phase's access pattern: the
// sequential fraction misses once per line crossed, the random
// fraction misses whenever the working set exceeds capacity (LRU on a
// uniform-random stream keeps roughly size/ws of the set resident).
func missRateFor(p *workload.Phase, size uint64, lineBytes int) float64 {
	stride := p.Stride
	if stride == 0 {
		stride = 8
	}
	seqMiss := float64(stride) / float64(lineBytes)
	if seqMiss > 1 {
		seqMiss = 1
	}
	randMiss := 0.0
	if p.WorkingSet > size {
		randMiss = 1 - float64(size)/float64(p.WorkingSet)
	}
	m := p.SeqFrac*seqMiss + (1-p.SeqFrac)*randMiss
	if p.WorkingSet > size && m < seqMiss {
		// A thrashing working set also evicts the sequential stream.
		m = seqMiss
	}
	const compulsory = 0.002
	if m < compulsory {
		m = compulsory
	}
	return m
}

// modelPhaseIPC computes the uncalibrated steady-state IPC of one
// phase on a core described by cfg with the effective unit set units.
//
//ampvet:unit ipc
func modelPhaseIPC(cfg *cpu.Config, units *[cpu.NumUnitKinds]cpu.UnitSpec, p *workload.Phase, codeSize uint64) float64 {
	mix := &p.Mix

	// Bound 1: pipeline width.
	width := float64(cfg.DispatchWidth)
	for _, w := range []int{cfg.FetchWidth, cfg.IssueWidth, cfg.CommitWidth} {
		if float64(w) < width {
			width = float64(w)
		}
	}

	// Bound 2: functional-unit contention. Per kind, the sustainable
	// ops/cycle is Count for pipelined units and Count/Latency for
	// blocking ones; the class mix determines demand per instruction.
	var demand [cpu.NumUnitKinds]float64
	for c := isa.Class(0); c < isa.NumClasses; c++ {
		demand[unitForClass(c)] += mix[c]
	}
	fuLimit := width
	for k := cpu.UnitKind(0); k < cpu.NumUnitKinds; k++ {
		if demand[k] <= 0 {
			continue
		}
		u := units[k]
		capacity := float64(u.Count)
		if !u.Pipelined {
			capacity /= float64(u.Latency)
		}
		if lim := capacity / demand[k]; lim < fuLimit {
			fuLimit = lim
		}
	}

	// Bound 3: dependence-limited ILP. With producers a geometric mean
	// distance D back and an average execution latency L, a chain of N
	// instructions has critical path ~ N*L/D, i.e. IPC ~ D/L.
	avgLat := 0.0
	for c := isa.Class(0); c < isa.NumClasses; c++ {
		if mix[c] <= 0 {
			continue
		}
		lat := float64(units[unitForClass(c)].Latency)
		if c == isa.Load {
			lat += float64(cfg.Caches.L1D.HitLatency)
		}
		avgLat += mix[c] * lat
	}
	if avgLat < 1 {
		avgLat = 1
	}
	ilpLimit := p.MeanDepDist / avgLat
	if ilpLimit < 0.1 {
		ilpLimit = 0.1
	}

	base := width
	if fuLimit < base {
		base = fuLimit
	}
	if ilpLimit < base {
		base = ilpLimit
	}
	cpi := 1 / base

	// Miss events. Branch mispredictions: resolve-to-refetch penalty
	// per mispredicted branch.
	cpi += mix[isa.Branch] * (1 - p.BranchPredictability) * float64(cfg.MispredictPenalty)

	// Instruction cache: a footprint larger than the IL1 misses on the
	// non-resident fraction, one line per FetchWidth instructions.
	il1 := uint64(cfg.Caches.L1I.SizeBytes)
	if codeSize > il1 {
		missFrac := 1 - float64(il1)/float64(codeSize)
		cpi += missFrac * float64(cfg.Caches.L2.HitLatency) / float64(cfg.FetchWidth)
	}

	// Data cache: L1D misses pay the L2 latency (half-hidden by the
	// out-of-order window), L2 misses pay memory divided by the
	// memory-level parallelism the ROB can expose.
	memFrac := mix.MemFrac()
	if memFrac > 0 {
		missL1 := missRateFor(p, uint64(cfg.Caches.L1D.SizeBytes), cfg.Caches.L1D.LineBytes)
		missL2 := missRateFor(p, uint64(cfg.Caches.L2.SizeBytes), cfg.Caches.L2.LineBytes)
		if missL2 > missL1 {
			missL2 = missL1
		}
		cpi += memFrac * missL1 * float64(cfg.Caches.L2.HitLatency) * 0.5

		// ROB-occupancy MLP correction: of the ROBSize in-flight
		// instructions, memFrac*missL2 are independent memory misses
		// (the generator draws addresses independently), overlapping up
		// to the load-queue depth.
		mlp := float64(cfg.ROBSize) * memFrac * missL2
		if mlp < 1 {
			mlp = 1
		}
		if max := float64(cfg.LSQLoads); mlp > max {
			mlp = max
		}
		cpi += memFrac * missL2 * float64(cfg.Caches.MemLatency) / mlp
	}

	ipc := 1 / cpi
	if ipc < minIPC {
		ipc = minIPC
	}
	if ipc > width {
		ipc = width
	}
	return ipc
}

// Cold-start ramp: a freshly bound thread finds cold caches and an
// untrained predictor; its effective IPC ramps linearly from
// coldStartFactor to 1 over rampInstr committed instructions. The
// calibration walk applies the identical ramp so the correction factor
// absorbs its absolute effect.
const (
	rampInstr       = 20_000
	coldStartFactor = 0.75
)

func coldFactor(sinceBind uint64) float64 {
	if sinceBind >= rampInstr {
		return 1
	}
	return coldStartFactor + (1-coldStartFactor)*float64(sinceBind)/rampInstr
}
