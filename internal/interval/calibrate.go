package interval

import (
	"sync"
	"sync/atomic"

	"ampsched/internal/cache"
	"ampsched/internal/cpu"
	"ampsched/internal/isa"
	"ampsched/internal/telemetry"
	"ampsched/internal/workload"
)

// Calibration anchors the analytic model to the detailed core: a short
// detailed-mode solo run of the benchmark on the exact core
// configuration measures the achieved IPC and the per-committed-
// instruction event rates (every Activity counter and cache counter
// the power model charges). The model's per-phase IPCs are scaled by
// Correction so their run aggregate reproduces MeasuredIPC, and the
// event rates let the interval engine synthesize an Activity ledger
// whose energy-per-instruction matches detailed mode.
//
// Calibration is a pure function of (core config, effective units,
// benchmark): the run uses a fixed seed and instruction budget, so the
// stored result is deterministic no matter which goroutine computes it
// first, and repeated runs in one process reuse the cached value.
type Calibration struct {
	// MeasuredIPC is the detailed run's aggregate IPC.
	MeasuredIPC float64
	// ModelIPC is the uncalibrated model aggregate over the same
	// instruction span (cold-start ramp included).
	ModelIPC float64
	// Correction = MeasuredIPC / ModelIPC.
	Correction float64
	// PhaseIPC is the calibrated steady-state IPC per benchmark phase:
	// the directly measured per-phase IPC where the calibration run
	// observed the phase for at least calMinPhaseInstr instructions,
	// and Correction * modelPhaseIPC otherwise.
	PhaseIPC []float64
	// Committed is the calibration run's instruction count.
	Committed uint64
	// Rates are the per-committed-instruction event rates.
	Rates rateVec

	// classes[p] lists phase p's nonzero mix classes with their
	// fractions so the commit loop touches only classes the phase can
	// issue. Skipping a zero-mix class is float-exact: the original
	// all-classes loop added mix[c]*mf == 0 to an accumulator that was
	// already < 1, committing nothing.
	classes [][]classShare
}

// classShare pairs an instruction class index with its mix fraction.
type classShare struct {
	cls  int
	frac float64
}

// activeClasses precomputes the per-phase nonzero-class lists.
func activeClasses(bench *workload.Benchmark) [][]classShare {
	classes := make([][]classShare, len(bench.Phases))
	for p := range bench.Phases {
		mix := &bench.Phases[p].Mix
		for c := 0; c < int(isa.NumClasses); c++ {
			if mix[c] != 0 {
				classes[p] = append(classes[p], classShare{cls: c, frac: mix[c]})
			}
		}
	}
	return classes
}

// calInstr is the calibration run's minimum instruction budget; the
// actual budget stretches to one full pass over the benchmark's phase
// cycle (plus the cold-start ramp) so every phase gets a directly
// measured IPC, capped at calMaxInstr.
const calInstr = 60_000

// calMaxInstr bounds the calibration run so a single calibration stays
// well under a second of wall time.
const calMaxInstr = 500_000

// calMinPhaseInstr is the least per-phase coverage that earns a phase
// a directly measured IPC instead of the corrected model value.
const calMinPhaseInstr = 5_000

// calCycleCap aborts a calibration run that stops committing
// (defensive; the detailed core always makes progress on valid
// workloads). Sized for calMaxInstr at the model's floor IPC.
const calCycleCap = 16_000_000

// calSeed is the fixed workload seed of every calibration run, making
// Calibration a pure function of (config, units, benchmark).
const calSeed = 1

// rateVec is the flattened per-instruction rate vector: the Activity
// counters the interval engine must synthesize (cycle counters
// excluded — the engine tracks those exactly) plus the three cache
// levels' counters.
type rateVec [nRates]float64

// rateVec layout.
const (
	rFetchGroups = iota
	rFetchedOps
	rBPredOps
	rRenames
	rROBWrites
	rROBReads
	rIntISQWrites
	rFPISQWrites
	rIntISQIssues
	rFPISQIssues
	rIntRegReads
	rIntRegWrites
	rFPRegReads
	rFPRegWrites
	rLSQWrites
	rLSQSearches
	rUnitOps // 7 consecutive slots, one per cpu.UnitKind
)

const (
	rL1IAccesses = rUnitOps + int(cpu.NumUnitKinds) + iota
	rL1IMisses
	rL1IWritebacks
	rL1DAccesses
	rL1DMisses
	rL1DWritebacks
	rL2Accesses
	rL2Misses
	rL2Writebacks
	nRates
)

// ratesFrom converts a calibration run's totals into per-instruction
// rates.
func ratesFrom(act cpu.Activity, l1i, l1d, l2 cache.Stats, committed uint64) rateVec {
	var r rateVec
	if committed == 0 {
		return r
	}
	inv := 1 / float64(committed)
	r[rFetchGroups] = float64(act.FetchGroups) * inv
	r[rFetchedOps] = float64(act.FetchedOps) * inv
	r[rBPredOps] = float64(act.BPredOps) * inv
	r[rRenames] = float64(act.Renames) * inv
	r[rROBWrites] = float64(act.ROBWrites) * inv
	r[rROBReads] = float64(act.ROBReads) * inv
	r[rIntISQWrites] = float64(act.IntISQWrites) * inv
	r[rFPISQWrites] = float64(act.FPISQWrites) * inv
	r[rIntISQIssues] = float64(act.IntISQIssues) * inv
	r[rFPISQIssues] = float64(act.FPISQIssues) * inv
	r[rIntRegReads] = float64(act.IntRegReads) * inv
	r[rIntRegWrites] = float64(act.IntRegWrites) * inv
	r[rFPRegReads] = float64(act.FPRegReads) * inv
	r[rFPRegWrites] = float64(act.FPRegWrites) * inv
	r[rLSQWrites] = float64(act.LSQWrites) * inv
	r[rLSQSearches] = float64(act.LSQSearches) * inv
	for k := 0; k < int(cpu.NumUnitKinds); k++ {
		r[rUnitOps+k] = float64(act.UnitOps[k]) * inv
	}
	r[rL1IAccesses] = float64(l1i.Accesses) * inv
	r[rL1IMisses] = float64(l1i.Misses) * inv
	r[rL1IWritebacks] = float64(l1i.Writebacks) * inv
	r[rL1DAccesses] = float64(l1d.Accesses) * inv
	r[rL1DMisses] = float64(l1d.Misses) * inv
	r[rL1DWritebacks] = float64(l1d.Writebacks) * inv
	r[rL2Accesses] = float64(l2.Accesses) * inv
	r[rL2Misses] = float64(l2.Misses) * inv
	r[rL2Writebacks] = float64(l2.Writebacks) * inv
	return r
}

// materialize converts an accumulated (monotonically growing) rate
// vector into integer counters. Flooring a monotone float is monotone,
// so successive Stats snapshots diff cleanly.
func materialize(acc *rateVec) (act cpu.Activity, l1i, l1d, l2 cache.Stats) {
	act.FetchGroups = uint64(acc[rFetchGroups])
	act.FetchedOps = uint64(acc[rFetchedOps])
	act.BPredOps = uint64(acc[rBPredOps])
	act.Renames = uint64(acc[rRenames])
	act.ROBWrites = uint64(acc[rROBWrites])
	act.ROBReads = uint64(acc[rROBReads])
	act.IntISQWrites = uint64(acc[rIntISQWrites])
	act.FPISQWrites = uint64(acc[rFPISQWrites])
	act.IntISQIssues = uint64(acc[rIntISQIssues])
	act.FPISQIssues = uint64(acc[rFPISQIssues])
	act.IntRegReads = uint64(acc[rIntRegReads])
	act.IntRegWrites = uint64(acc[rIntRegWrites])
	act.FPRegReads = uint64(acc[rFPRegReads])
	act.FPRegWrites = uint64(acc[rFPRegWrites])
	act.LSQWrites = uint64(acc[rLSQWrites])
	act.LSQSearches = uint64(acc[rLSQSearches])
	for k := 0; k < int(cpu.NumUnitKinds); k++ {
		act.UnitOps[k] = uint64(acc[rUnitOps+k])
	}
	l1i = cache.Stats{Accesses: uint64(acc[rL1IAccesses]), Misses: uint64(acc[rL1IMisses]), Writebacks: uint64(acc[rL1IWritebacks])}
	l1d = cache.Stats{Accesses: uint64(acc[rL1DAccesses]), Misses: uint64(acc[rL1DMisses]), Writebacks: uint64(acc[rL1DWritebacks])}
	l2 = cache.Stats{Accesses: uint64(acc[rL2Accesses]), Misses: uint64(acc[rL2Misses]), Writebacks: uint64(acc[rL2Writebacks])}
	return act, l1i, l1d, l2
}

// calKey identifies one calibration: the full core configuration (by
// value — Config is comparable), the effective unit set (which morphing
// changes independently of the config), and the benchmark name.
type calKey struct {
	cfg   cpu.Config
	units [cpu.NumUnitKinds]cpu.UnitSpec
	bench string
}

// DefaultCalCacheBytes is the calibration cache's default byte budget:
// hundreds of entries — every (core, benchmark) combination a dual-core
// sweep can produce fits with room to spare — while a long-lived
// ampserve process cycling through morphed unit sets and client core
// configurations stays bounded instead of growing per distinct key.
const DefaultCalCacheBytes = 1 << 20

// calEntryOverhead approximates one cache entry's fixed footprint: the
// Calibration struct (rateVec included), the map slot and the key copy
// (a cpu.Config by value).
const calEntryOverhead = 1024

// calEntry is one cached calibration with its recency stamp. The stamp
// is atomic so cache hits stay on the read lock — eviction order is
// approximate LRU, which is all a correctness-free cache needs.
type calEntry struct {
	cal     *Calibration
	size    uint64 // approximate footprint in bytes
	lastUse atomic.Uint64
}

var (
	calMu     sync.RWMutex
	calCache  = map[calKey]*calEntry{}
	calBytes  uint64 // sum of resident entry sizes in bytes
	calBudget uint64 = DefaultCalCacheBytes
	calClock  atomic.Uint64
	calTel    atomic.Pointer[telemetry.Telemetry]
)

// SetTelemetry wires the package's calibration counters — the
// "interval.calibrations" detailed-run count and
// "interval.cal_cache_hits" — to t (nil detaches them). Safe to call
// concurrently with running engines.
func SetTelemetry(t *telemetry.Telemetry) { calTel.Store(t) }

// SetCalibrationCacheBudget replaces the calibration cache's byte
// budget (0 restores DefaultCalCacheBytes), evicting oldest-first
// down to the new bound.
func SetCalibrationCacheBudget(bytes uint64) {
	if bytes == 0 {
		bytes = DefaultCalCacheBytes
	}
	calMu.Lock()
	calBudget = bytes
	calEvictLocked()
	calMu.Unlock()
}

// calSize estimates one calibration's cache footprint.
func calSize(c *Calibration) uint64 {
	s := uint64(calEntryOverhead) + 8*uint64(len(c.PhaseIPC))
	for _, cs := range c.classes {
		s += 24 + 16*uint64(len(cs))
	}
	return s
}

// calEvictLocked drops approximately-least-recently-used entries until
// the cache fits its budget, always keeping the newest entry so an
// oversized budget cannot thrash a single working calibration.
func calEvictLocked() {
	for calBytes > calBudget && len(calCache) > 1 {
		var (
			oldestKey calKey
			oldest    *calEntry
		)
		// Map order only breaks recency-stamp ties between eviction
		// victims; a re-calibrated entry is bit-identical to the
		// evicted one, so results never see the order.
		for k, e := range calCache { //ampvet:allow determinism eviction-order ties cannot reach results; calibration is a pure function of its key
			if oldest == nil || e.lastUse.Load() < oldest.lastUse.Load() {
				oldestKey, oldest = k, e
			}
		}
		delete(calCache, oldestKey)
		calBytes -= oldest.size
	}
}

// calibrationFor returns the (cached) calibration for running bench on
// a core with configuration cfg and effective units. Hits touch only
// the read lock (the recency stamp is atomic); misses run the detailed
// calibration outside any lock and may evict older entries on insert.
func calibrationFor(cfg *cpu.Config, units [cpu.NumUnitKinds]cpu.UnitSpec, bench *workload.Benchmark) *Calibration {
	key := calKey{cfg: *cfg, units: units, bench: bench.Name}
	calMu.RLock()
	e := calCache[key]
	calMu.RUnlock()
	tel := calTel.Load()
	if e != nil {
		e.lastUse.Store(calClock.Add(1))
		tel.Counter("interval.cal_cache_hits").Inc()
		return e.cal
	}
	cal := Calibrate(cfg, units, bench)
	tel.Counter("interval.calibrations").Inc()
	calMu.Lock()
	if prior := calCache[key]; prior != nil {
		prior.lastUse.Store(calClock.Add(1))
		cal = prior.cal // another goroutine computed the identical result
	} else {
		e := &calEntry{cal: cal, size: calSize(cal)}
		e.lastUse.Store(calClock.Add(1))
		calCache[key] = e
		calBytes += e.size
		calEvictLocked()
	}
	calMu.Unlock()
	return cal
}

// Calibrate runs bench for calInstr instructions on a detailed core
// built from cfg (with the effective unit set installed) and derives
// the calibration. Exported for tests and the DESIGN.md numbers.
func Calibrate(cfg *cpu.Config, units [cpu.NumUnitKinds]cpu.UnitSpec, bench *workload.Benchmark) *Calibration {
	core := cpu.NewCore(cfg)
	if units != cfg.Units {
		if err := core.Reconfigure(units); err != nil {
			panic(err)
		}
	}
	gen := workload.NewGenerator(bench, calSeed, 0)
	arch := &cpu.ThreadArch{CodeBase: 1 << 36, CodeSize: bench.EffectiveCodeFootprint()}
	core.Bind(gen, arch)

	// Budget: one full pass over the phase cycle past the cold-start
	// ramp, so each phase's IPC can be measured rather than modeled.
	var cycleLen uint64
	for p := range bench.Phases {
		cycleLen += bench.Phases[p].Length
	}
	target := uint64(calInstr)
	if t := cycleLen + rampInstr; t > target {
		target = t
	}
	if target > calMaxInstr {
		target = calMaxInstr
	}

	// Per-phase attribution: cycles and commits land on the phase the
	// generator is currently fetching from. The in-flight window smears
	// the boundaries by a few hundred instructions, which the
	// calMinPhaseInstr floor absorbs; the ramp-up span is excluded so
	// the run-time cold factor is not double-counted.
	phaseCycles := make([]float64, len(bench.Phases))
	phaseCommit := make([]uint64, len(bench.Phases))
	var cycle, lastCommit uint64
	for arch.Committed < target && cycle < calCycleCap {
		p, _ := gen.PhasePos()
		core.Step(cycle)
		cycle++
		if arch.Committed >= rampInstr {
			phaseCycles[p]++
			phaseCommit[p] += arch.Committed - lastCommit
		}
		lastCommit = arch.Committed
	}
	st := core.Stats()

	cal := &Calibration{
		Committed: arch.Committed,
		Rates:     ratesFrom(st.Act, st.L1I, st.L1D, st.L2, arch.Committed),
		PhaseIPC:  make([]float64, len(bench.Phases)),
		classes:   activeClasses(bench),
	}
	if cycle > 0 {
		cal.MeasuredIPC = float64(arch.Committed) / float64(cycle)
	}

	// Uncalibrated model aggregate over the same instruction span: walk
	// the phases the run covered (from phase 0, as the generator does),
	// applying the cold-start ramp, and harmonically aggregate.
	raw := make([]float64, len(bench.Phases))
	for p := range bench.Phases {
		raw[p] = modelPhaseIPC(cfg, &units, &bench.Phases[p], bench.EffectiveCodeFootprint())
	}
	var (
		cycleSum float64
		done     uint64
		phase    int
		rem      = bench.Phases[0].Length
	)
	for done < cal.Committed {
		chunk := cal.Committed - done
		if chunk > rem {
			chunk = rem
		}
		if chunk > 1024 {
			chunk = 1024
		}
		cycleSum += float64(chunk) / (raw[phase] * coldFactor(done))
		done += chunk
		rem -= chunk
		if rem == 0 {
			phase++
			if phase >= len(bench.Phases) {
				phase = 0
			}
			rem = bench.Phases[phase].Length
		}
	}
	if cycleSum > 0 {
		cal.ModelIPC = float64(cal.Committed) / cycleSum
	}
	cal.Correction = 1
	if cal.ModelIPC > 0 && cal.MeasuredIPC > 0 {
		cal.Correction = cal.MeasuredIPC / cal.ModelIPC
	}
	for p := range raw {
		if phaseCommit[p] >= calMinPhaseInstr && phaseCycles[p] > 0 {
			cal.PhaseIPC[p] = float64(phaseCommit[p]) / phaseCycles[p]
		} else {
			cal.PhaseIPC[p] = cal.Correction * raw[p]
		}
	}
	return cal
}
