// Differential re-simulation: the content-addressed cache's near-hit
// tier. A full hit needs a byte-identical KeySpec; the near-hit tier
// also serves misses whose spec differs from a cached result by
// exactly one independent knob, when the simulation's structure proves
// the knob cannot have changed the bytes:
//
//   - fault seed, at zero fault rate: the fault plan is only built
//     when FaultRate > 0, so FaultSeed is dead configuration and any
//     two values produce identical runs;
//   - swap overhead, when the cached neighbor executed zero swaps
//     under all three schedulers: the overhead is charged per executed
//     swap and the schedulers never read it, so a zero-swap run is
//     identical under any overhead.
//
// The adapted result reuses everything — profile matrix, phase
// ledgers, the runs themselves — and recomputes only the dependent
// stage, which for these knobs is just the result's own cache key.
// Knobs that invalidate deeper stages reuse shallower artifacts
// instead: a swap-overhead or fault-rate delta re-runs the pairs on a
// Runner derived from the neighbor's (shared §V profile, counted on
// "server.profile_shares"), and any delta reuses the process-global
// interval calibration ledgers ("interval.cal_cache_hits"). A workload
// seed delta has no near tier at all: profiling consumes the seed, so
// every downstream stage is dependent.
//
// Near hits count on "server.cache_near_hits" and insert the adapted
// bytes under the new key, so the family's next miss is a full hit.
package server

import (
	"encoding/json"
)

// nearKnob names the one KeySpec field a near neighbor differs in.
type nearKnob string

const (
	knobFaultSeed    nearKnob = "fault_seed"
	knobSwapOverhead nearKnob = "swap_overhead"
)

// nearFamily digests spec with knob normalized out: two specs in the
// same family differ at most in that knob.
func nearFamily(spec KeySpec, knob nearKnob) string {
	switch knob {
	case knobFaultSeed:
		spec.FaultSeed = 0
	case knobSwapOverhead:
		spec.SwapOverhead = 0
	}
	return string(knob) + ":" + CacheKey(spec)
}

// registerNear indexes a served pair result under its near-hit
// families so later single-knob neighbors can find it.
func (s *Server) registerNear(spec KeySpec, key string) {
	if spec.Topology != "" {
		return // nxm units have no near tier
	}
	s.nearMu.Lock()
	if spec.FaultRate == 0 {
		s.nearIndex[nearFamily(spec, knobFaultSeed)] = key
	}
	s.nearIndex[nearFamily(spec, knobSwapOverhead)] = key
	s.nearMu.Unlock()
}

// tryNearHit serves a cache miss from a single-knob neighbor when the
// reuse is provably byte-safe (see the package comment above). The
// returned bytes are the neighbor's result re-keyed to the missing
// spec; the caller's cache fill makes the adaptation durable.
func (s *Server) tryNearHit(spec KeySpec, key string) ([]byte, bool) {
	if spec.Topology != "" {
		return nil, false
	}
	for _, knob := range []nearKnob{knobFaultSeed, knobSwapOverhead} {
		if knob == knobFaultSeed && spec.FaultRate != 0 {
			continue // FaultSeed is live configuration under fault injection
		}
		s.nearMu.Lock()
		neighbor, ok := s.nearIndex[nearFamily(spec, knob)]
		s.nearMu.Unlock()
		if !ok || neighbor == key {
			continue
		}
		data, ok := s.cache.Get(neighbor)
		if !ok {
			continue // evicted since indexed; fall through to compute
		}
		var r PairResult
		if err := json.Unmarshal(data, &r); err != nil || r.Failed {
			continue // never adapt corrupt or degraded neighbors
		}
		if knob == knobSwapOverhead &&
			(r.Proposed.Swaps != 0 || r.HPE.Swaps != 0 || r.RR.Swaps != 0) {
			continue // executed swaps were charged the neighbor's overhead
		}
		r.Key = key
		adapted, err := json.Marshal(r)
		if err != nil {
			continue
		}
		s.cacheNearHits.Inc()
		return adapted, true
	}
	return nil, false
}
