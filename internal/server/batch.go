// Pair batching: the server-side feeder of the interleaved batch
// engine. Queue workers running jobs against the same Runner — the
// grouping that guarantees identical core digest, options and
// fidelity, since runners are deduplicated on exactly those — hand
// their pair computations to a shared pairBatcher instead of running
// them one at a time. The batcher coalesces requests across jobs (and
// across one job's own in-flight window) and executes each group as a
// single experiments.RunPairsBatch interleaved pass, which shares
// calibration tables and pooled systems across every run in the
// group. Results are byte-identical to the pair-at-a-time path — the
// batch engine's cross-path identity suite pins that — so batching is
// invisible to the cache and the API.
package server

import (
	"context"
	"sync"
	"time"

	"ampsched/internal/amp"
	"ampsched/internal/experiments"
	"ampsched/internal/telemetry"
)

// defaultBatchPairs is the flush high-water mark in pairs (three
// scheduler runs each), matching the sweep's own chunk size.
const defaultBatchPairs = 8

// defaultBatchLinger is how long the first request in an empty batch
// waits for companions before flushing anyway. Two milliseconds is
// invisible next to a simulation run but long enough for a job's
// in-flight window (launched together) to land in one group.
const defaultBatchLinger = 2 * time.Millisecond

// pairResp is one request's share of a finished batch.
type pairResp struct {
	proposed, hpe, rr amp.Result
	err               error
}

// pairReq is one queued pair-compute request.
type pairReq struct {
	idx  int
	pair experiments.Pair
	resp chan pairResp // buffered; the flusher never blocks on delivery
}

// pairBatcher coalesces pair-compute requests against one shared
// Runner. Requests accumulate until the group reaches maxPairs or the
// linger timer fires, then flush as one interleaved pass.
type pairBatcher struct {
	runner   *experiments.Runner
	ctx      context.Context // server lifetime, NOT any one job's: a shared batch must not die with one requester
	maxPairs int
	linger   time.Duration

	batches *telemetry.Counter
	pairs   *telemetry.Counter

	mu    sync.Mutex
	reqs  []*pairReq
	timer *time.Timer
}

func newPairBatcher(ctx context.Context, runner *experiments.Runner, linger time.Duration, tel *telemetry.Telemetry) *pairBatcher {
	if linger <= 0 {
		linger = defaultBatchLinger
	}
	return &pairBatcher{
		runner:   runner,
		ctx:      ctx,
		maxPairs: defaultBatchPairs,
		linger:   linger,
		batches:  tel.Counter("server.pair_batches"),
		pairs:    tel.Counter("server.batched_pairs"),
	}
}

// run submits one pair's three-scheduler comparison and blocks until
// its batch completes or ctx ends. An abandoned request (ctx canceled
// while waiting) still computes with its batch; only the caller stops
// listening.
func (b *pairBatcher) run(ctx context.Context, i int, p experiments.Pair) (proposed, hpe, rr amp.Result, err error) {
	req := &pairReq{idx: i, pair: p, resp: make(chan pairResp, 1)}
	b.mu.Lock()
	b.reqs = append(b.reqs, req)
	var full []*pairReq
	if len(b.reqs) >= b.maxPairs {
		full = b.take()
	} else if len(b.reqs) == 1 {
		// The linger timer bounds how long a lone request waits for
		// batchmates; it schedules RPC-level work and never touches
		// simulation state.
		b.timer = time.AfterFunc(b.linger, b.flushLinger) //ampvet:allow determinism batching latency only; results are byte-identical on every path
	}
	b.mu.Unlock()
	if full != nil {
		b.flush(full)
	}
	select {
	case r := <-req.resp:
		return r.proposed, r.hpe, r.rr, r.err
	case <-ctx.Done():
		return amp.Result{}, amp.Result{}, amp.Result{}, ctx.Err()
	}
}

// take claims the pending group and disarms the linger timer; callers
// hold b.mu.
func (b *pairBatcher) take() []*pairReq {
	reqs := b.reqs
	b.reqs = nil
	if b.timer != nil {
		b.timer.Stop()
		b.timer = nil
	}
	return reqs
}

// flushLinger is the timer path; a group already flushed at the
// high-water mark leaves nothing to take.
func (b *pairBatcher) flushLinger() {
	b.mu.Lock()
	reqs := b.take()
	b.mu.Unlock()
	b.flush(reqs)
}

// flush executes one group as a single interleaved pass and delivers
// each request's three results. Runs fail independently inside the
// pass, so one wedged pair degrades only its own request.
func (b *pairBatcher) flush(reqs []*pairReq) {
	if len(reqs) == 0 {
		return
	}
	m, merr := b.runner.Matrix()
	if merr != nil {
		for _, rq := range reqs {
			rq.resp <- pairResp{err: merr}
		}
		return
	}
	runs := make([]experiments.PairRun, 0, 3*len(reqs))
	for _, rq := range reqs {
		runs = append(runs,
			experiments.PairRun{Index: rq.idx, Pair: rq.pair, Factory: b.runner.ProposedFactory()},
			experiments.PairRun{Index: rq.idx, Pair: rq.pair, Factory: b.runner.HPEFactory(m)},
			experiments.PairRun{Index: rq.idx, Pair: rq.pair, Factory: b.runner.RRFactory(1)},
		)
	}
	results, errs := b.runner.RunPairsBatch(b.ctx, runs)
	b.batches.Inc()
	b.pairs.Add(uint64(len(reqs)))
	for k, rq := range reqs {
		resp := pairResp{
			proposed: results[3*k],
			hpe:      results[3*k+1],
			rr:       results[3*k+2],
		}
		for _, e := range errs[3*k : 3*k+3] {
			if e != nil {
				resp.err = e
				break
			}
		}
		rq.resp <- resp
	}
}

// batcherFor returns the shared batcher for runner, or nil when
// batching does not apply (disabled by config, or the runner's options
// are not batchable — wrong fidelity, fault injection on).
func (s *Server) batcherFor(runner *experiments.Runner) *pairBatcher {
	if s.cfg.BatchLinger < 0 || !runner.Batchable() {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	b, ok := s.batchers[runner]
	if !ok {
		b = newPairBatcher(s.batchCtx, runner, s.cfg.BatchLinger, s.tel)
		s.batchers[runner] = b
	}
	return b
}

// computePairBatched is computePair routed through the shared batcher:
// same three runs, same comparison record, produced by the interleaved
// pass instead of three solo calls.
func (s *Server) computePairBatched(ctx context.Context, b *pairBatcher, i int, p experiments.Pair, key string) ([]byte, error) {
	proposed, hpe, rr, err := b.run(ctx, i, p)
	if err != nil {
		return nil, err
	}
	return marshalPairResult(i, p, key, proposed, hpe, rr)
}
