package server

import (
	"bytes"
	"encoding/json"
	"net/http"
	"reflect"
	"testing"
)

// TestBatchedResultsIdenticalToSerial pins the server-level cross-path
// contract: a job served through the pair batcher (interleaved
// RunPairsBatch groups) returns byte-identical results to the same job
// on a batching-disabled server, and the batch counters prove which
// path ran.
func TestBatchedResultsIdenticalToSerial(t *testing.T) {
	batched := newTestService(t, nil)
	serial := newTestService(t, func(cfg *Config) { cfg.BatchLinger = -1 })

	spec := JobSpec{Pairs: 6}
	fb := batched.waitDone(t, batched.postJob(t, spec).ID)
	fs := serial.waitDone(t, serial.postJob(t, spec).ID)
	if fb.State != "done" || fs.State != "done" {
		t.Fatalf("states %q/%q, want done/done", fb.State, fs.State)
	}
	if len(fb.Results) != 6 || len(fs.Results) != 6 {
		t.Fatalf("results %d/%d, want 6/6", len(fb.Results), len(fs.Results))
	}
	for i := range fb.Results {
		if !reflect.DeepEqual(fb.Results[i], fs.Results[i]) {
			t.Fatalf("pair %d diverges across paths:\nbatched: %+v\nserial:  %+v",
				i, fb.Results[i], fs.Results[i])
		}
	}
	if got := batched.tel.Counter("server.pair_batches").Value(); got == 0 {
		t.Fatal("batched server ran no pair batches")
	}
	if got := batched.tel.Counter("server.batched_pairs").Value(); got != 6 {
		t.Fatalf("server.batched_pairs = %d, want 6", got)
	}
	if got := serial.tel.Counter("server.pair_batches").Value(); got != 0 {
		t.Fatalf("serial server ran %d pair batches, want 0", got)
	}
}

// TestSubmitManyAtomicGroup exercises the array form of POST /v1/jobs:
// the group is accepted atomically through one queue batch, every
// member completes, and an oversized group bounces whole.
func TestSubmitManyAtomicGroup(t *testing.T) {
	s := newTestService(t, nil)

	specs := []JobSpec{
		{PairNames: [][2]string{{"gcc", "swim"}}},
		{PairNames: [][2]string{{"gcc", "art"}}},
	}
	body, err := json.Marshal(specs)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(s.ts.URL+"/v1/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("POST batch = %d, want 202", resp.StatusCode)
	}
	var statuses []JobStatus
	if err := json.NewDecoder(resp.Body).Decode(&statuses); err != nil {
		t.Fatal(err)
	}
	if len(statuses) != 2 {
		t.Fatalf("accepted %d jobs, want 2", len(statuses))
	}
	for _, st := range statuses {
		final := s.waitDone(t, st.ID)
		if final.State != "done" || len(final.Results) != 1 {
			t.Fatalf("job %s: state %q, %d results", st.ID, final.State, len(final.Results))
		}
	}
	if got := s.tel.Counter("jobqueue.batches").Value(); got != 1 {
		t.Fatalf("jobqueue.batches = %d, want 1", got)
	}

	// A group larger than the whole queue is refused atomically: no
	// member is enqueued or registered.
	before := s.tel.Counter("server.jobs_submitted").Value()
	big := make([]JobSpec, 40) // Capacity is 16
	for i := range big {
		big[i] = JobSpec{PairNames: [][2]string{{"gcc", "swim"}}}
	}
	body, _ = json.Marshal(big)
	resp2, err := http.Post(s.ts.URL+"/v1/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	if resp2.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("oversized batch = %d, want 429", resp2.StatusCode)
	}
	if got := s.tel.Counter("server.jobs_submitted").Value(); got != before {
		t.Fatalf("jobs_submitted moved %d -> %d on a rejected batch", before, got)
	}
}

// TestNearHitFaultSeedDelta pins the differential re-simulation tier
// end to end: at zero fault rate the fault seed is dead configuration,
// so a job differing from a cached result only in FaultSeed is served
// as a near hit — and the adapted result is identical to what a cold
// full recompute produces.
func TestNearHitFaultSeedDelta(t *testing.T) {
	s := newTestService(t, nil)

	base := JobSpec{PairNames: [][2]string{{"gcc", "swim"}}, FaultSeed: 1}
	delta := JobSpec{PairNames: [][2]string{{"gcc", "swim"}}, FaultSeed: 2}

	f1 := s.waitDone(t, s.postJob(t, base).ID)
	if f1.State != "done" {
		t.Fatalf("base job state %q (err %q)", f1.State, f1.Error)
	}
	f2 := s.waitDone(t, s.postJob(t, delta).ID)
	if f2.State != "done" {
		t.Fatalf("delta job state %q (err %q)", f2.State, f2.Error)
	}
	if got := s.tel.Counter("server.cache_near_hits").Value(); got != 1 {
		t.Fatalf("server.cache_near_hits = %d, want 1", got)
	}
	// The single-knob delta also shares the base runner's profile
	// instead of re-profiling.
	if got := s.tel.Counter("server.profile_shares").Value(); got != 1 {
		t.Fatalf("server.profile_shares = %d, want 1", got)
	}
	if f1.Results[0].Key == f2.Results[0].Key {
		t.Fatal("fault-seed delta produced the same cache key; near-hit tier untested")
	}

	// Equivalence: a cold server recomputing the delta spec in full
	// must produce exactly the near-hit's bytes.
	cold := newTestService(t, nil)
	fc := cold.waitDone(t, cold.postJob(t, delta).ID)
	if fc.State != "done" {
		t.Fatalf("cold job state %q (err %q)", fc.State, fc.Error)
	}
	if cold.tel.Counter("server.cache_near_hits").Value() != 0 {
		t.Fatal("cold server took a near hit; equivalence check is vacuous")
	}
	got, want := f2.Results[0], fc.Results[0]
	got.Cached, want.Cached = false, false
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("near-hit result diverges from full recompute:\nnear: %+v\nfull: %+v", got, want)
	}
}

// TestNearHitSwapOverheadGuard pins both sides of the swap-overhead
// rule at the unit level: a zero-swap neighbor adapts verbatim, a
// neighbor that executed swaps never does.
func TestNearHitSwapOverheadGuard(t *testing.T) {
	s := newTestService(t, nil)
	srv := s.srv

	mk := func(overhead uint64) KeySpec {
		return KeySpec{
			Version: keySchemaVersion, CoreDigest: srv.coreDigest,
			BenchA: "gcc", BenchB: "swim", Seed: 7,
			InstrLimit: 1000, ContextSwitch: 100, SwapOverhead: overhead,
			ProfileLimit: 1000, Fidelity: "interval",
		}
	}
	put := func(spec KeySpec, swaps uint64) string {
		key := CacheKey(spec)
		r := PairResult{Pair: "gcc+swim", Key: key}
		r.Proposed.Swaps = swaps
		data, err := json.Marshal(r)
		if err != nil {
			t.Fatal(err)
		}
		srv.cache.Put(key, data)
		srv.registerNear(spec, key)
		return key
	}

	// Zero-swap neighbor at overhead 500: an overhead-900 miss adapts.
	put(mk(500), 0)
	adaptedKey := CacheKey(mk(900))
	data, ok := srv.tryNearHit(mk(900), adaptedKey)
	if !ok {
		t.Fatal("zero-swap overhead delta did not near-hit")
	}
	var r PairResult
	if err := json.Unmarshal(data, &r); err != nil {
		t.Fatal(err)
	}
	if r.Key != adaptedKey {
		t.Fatalf("adapted result keeps old key %s", r.Key)
	}
	if got := s.tel.Counter("server.cache_near_hits").Value(); got != 1 {
		t.Fatalf("server.cache_near_hits = %d, want 1", got)
	}

	// A neighbor that executed swaps was charged its own overhead: the
	// delta must recompute.
	spec := mk(500)
	spec.BenchB = "art" // separate family
	spec2 := spec
	spec2.SwapOverhead = 900
	put(spec, 3)
	if _, ok := srv.tryNearHit(spec2, CacheKey(spec2)); ok {
		t.Fatal("swap-executing neighbor adapted verbatim; overhead change is not byte-safe")
	}

	// Same-key probe never self-adapts.
	if _, ok := srv.tryNearHit(mk(500), CacheKey(mk(500))); ok {
		t.Fatal("spec near-hit itself")
	}
}
