package server

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"ampsched/internal/experiments"
	"ampsched/internal/jobqueue"
	"ampsched/internal/telemetry"
)

// testOptions are scaled for test speed: the detailed profiling pass
// is tiny, and pair runs use the interval engine.
func testOptions() experiments.Options {
	o := experiments.DefaultOptions()
	o.InstrLimit = 40_000
	o.ContextSwitch = 10_000
	o.ProfileInstrLimit = 30_000
	o.Fidelity = "interval"
	return o
}

type testService struct {
	srv *Server
	ts  *httptest.Server
	tel *telemetry.Telemetry
}

func newTestService(t *testing.T, mutate func(*Config)) *testService {
	t.Helper()
	tel := telemetry.New()
	cfg := Config{
		BaseOptions: testOptions(),
		Queue:       jobqueue.Config{Workers: 4, Capacity: 16},
		Cache:       CacheConfig{ByteBudget: 1 << 20},
		Telemetry:   tel,
	}
	if mutate != nil {
		mutate(&cfg)
	}
	srv, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(func() {
		ts.Close()
		if err := srv.Close(); err != nil {
			t.Errorf("closing server: %v", err)
		}
	})
	return &testService{srv: srv, ts: ts, tel: tel}
}

func (s *testService) postJob(t *testing.T, spec JobSpec) JobStatus {
	t.Helper()
	st, code := s.tryPostJob(t, spec)
	if code != http.StatusAccepted {
		t.Fatalf("POST /v1/jobs = %d, want 202", code)
	}
	return st
}

func (s *testService) tryPostJob(t *testing.T, spec JobSpec) (JobStatus, int) {
	t.Helper()
	body, err := json.Marshal(spec)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(s.ts.URL+"/v1/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st JobStatus
	if resp.StatusCode == http.StatusAccepted {
		if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
			t.Fatal(err)
		}
	}
	return st, resp.StatusCode
}

func (s *testService) getStatus(t *testing.T, id string) JobStatus {
	t.Helper()
	resp, err := http.Get(s.ts.URL + "/v1/jobs/" + id)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /v1/jobs/%s = %d, want 200", id, resp.StatusCode)
	}
	var st JobStatus
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	return st
}

func (s *testService) waitDone(t *testing.T, id string) JobStatus {
	t.Helper()
	deadline := time.Now().Add(60 * time.Second)
	for time.Now().Before(deadline) {
		st := s.getStatus(t, id)
		switch st.State {
		case "done", "failed", "canceled":
			return st
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("job %s did not finish in time", id)
	return JobStatus{}
}

func TestSubmitStatusAndResults(t *testing.T) {
	s := newTestService(t, nil)
	st := s.postJob(t, JobSpec{Pairs: 2})
	if st.ID == "" || st.State == "" {
		t.Fatalf("submit response missing id/state: %+v", st)
	}
	final := s.waitDone(t, st.ID)
	if final.State != "done" {
		t.Fatalf("job state %q (err %q), want done", final.State, final.Error)
	}
	if final.Completed != 2 || len(final.Results) != 2 {
		t.Fatalf("completed %d results %d, want 2/2", final.Completed, len(final.Results))
	}
	for _, r := range final.Results {
		if r.Failed {
			t.Fatalf("pair %s degraded: %s", r.Pair, r.Err)
		}
		if r.Proposed.IPCPerWatt[0] <= 0 || r.Proposed.IPCPerWatt[1] <= 0 {
			t.Fatalf("pair %s has non-positive IPC/Watt", r.Pair)
		}
		if r.Key == "" {
			t.Fatalf("pair %s missing cache key", r.Pair)
		}
	}
}

func TestExplicitPairNames(t *testing.T) {
	s := newTestService(t, nil)
	st := s.postJob(t, JobSpec{PairNames: [][2]string{{"gcc", "swim"}}})
	final := s.waitDone(t, st.ID)
	if final.State != "done" || len(final.Results) != 1 {
		t.Fatalf("state %q, %d results", final.State, len(final.Results))
	}
	if final.Results[0].Pair != "gcc+swim" {
		t.Fatalf("pair %q, want gcc+swim", final.Results[0].Pair)
	}
}

func TestUnknownJobAndBenchmark404(t *testing.T) {
	s := newTestService(t, nil)
	resp, err := http.Get(s.ts.URL + "/v1/jobs/999")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown job status %d, want 404", resp.StatusCode)
	}
	if _, code := s.tryPostJob(t, JobSpec{PairNames: [][2]string{{"nope", "swim"}}}); code != http.StatusBadRequest {
		t.Fatalf("unknown benchmark status %d, want 400", code)
	}
	resp, err = http.Get(s.ts.URL + "/v1/results/deadbeef")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown result status %d, want 404", resp.StatusCode)
	}
}

func TestStreamDeliversOutcomesAndTerminalLine(t *testing.T) {
	s := newTestService(t, nil)
	st := s.postJob(t, JobSpec{Pairs: 3})
	resp, err := http.Get(s.ts.URL + "/v1/jobs/" + st.ID + "/stream")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("stream content type %q", ct)
	}
	sc := bufio.NewScanner(resp.Body)
	var pairLines int
	var sawDone bool
	for sc.Scan() {
		line := sc.Bytes()
		var probe struct {
			Done bool   `json:"done"`
			Pair string `json:"pair"`
		}
		if err := json.Unmarshal(line, &probe); err != nil {
			t.Fatalf("bad NDJSON line %q: %v", line, err)
		}
		if probe.Done {
			sawDone = true
			break
		}
		if probe.Pair == "" {
			t.Fatalf("pair line without pair label: %q", line)
		}
		pairLines++
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if pairLines != 3 || !sawDone {
		t.Fatalf("streamed %d pair lines, done=%v; want 3 and a terminal line", pairLines, sawDone)
	}
}

func TestResultEndpointServesCachedRecord(t *testing.T) {
	s := newTestService(t, nil)
	st := s.postJob(t, JobSpec{Pairs: 1})
	final := s.waitDone(t, st.ID)
	if final.State != "done" {
		t.Fatalf("state %q", final.State)
	}
	key := final.Results[0].Key
	resp, err := http.Get(s.ts.URL + "/v1/results/" + key)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /v1/results/%s = %d", key, resp.StatusCode)
	}
	var r PairResult
	if err := json.NewDecoder(resp.Body).Decode(&r); err != nil {
		t.Fatal(err)
	}
	if r.Pair != final.Results[0].Pair {
		t.Fatalf("cached record pair %q, want %q", r.Pair, final.Results[0].Pair)
	}
}

func TestCancelRunningJob(t *testing.T) {
	s := newTestService(t, func(cfg *Config) {
		// Big detailed runs: slow enough to cancel mid-flight.
		opt := testOptions()
		opt.InstrLimit = 200_000_000
		opt.Fidelity = "detailed"
		cfg.BaseOptions = opt
	})
	st := s.postJob(t, JobSpec{Pairs: 4})
	req, err := http.NewRequest(http.MethodDelete, s.ts.URL+"/v1/jobs/"+st.ID, nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("DELETE = %d, want 202", resp.StatusCode)
	}
	final := s.waitDone(t, st.ID)
	if final.State != "canceled" {
		t.Fatalf("state %q, want canceled", final.State)
	}
}

func TestQueueFullReturns429(t *testing.T) {
	s := newTestService(t, func(cfg *Config) {
		opt := testOptions()
		opt.InstrLimit = 200_000_000
		opt.Fidelity = "detailed"
		cfg.BaseOptions = opt
		cfg.Queue = jobqueue.Config{Workers: 1, Capacity: 1}
	})
	// One job occupies the worker (eventually), one fills the pending
	// slot; keep submitting until the queue sheds load.
	deadline := time.Now().Add(30 * time.Second)
	var got429 bool
	for !got429 && time.Now().Before(deadline) {
		_, code := s.tryPostJob(t, JobSpec{Pairs: 2})
		switch code {
		case http.StatusTooManyRequests:
			got429 = true
		case http.StatusAccepted:
		default:
			t.Fatalf("unexpected status %d", code)
		}
	}
	if !got429 {
		t.Fatal("queue never returned 429 under overload")
	}
	if rejected := s.tel.Counter("server.jobs_rejected").Value(); rejected == 0 {
		t.Fatal("jobs_rejected counter not incremented")
	}
}

// TestConcurrentIdenticalJobsSingleflight is the acceptance-criteria
// test: two identical jobs submitted concurrently run each simulation
// once — the second is served from the cache/flight — demonstrated by
// the telemetry cache counters.
func TestConcurrentIdenticalJobsSingleflight(t *testing.T) {
	s := newTestService(t, nil)
	spec := JobSpec{Pairs: 2, Seed: 21}

	var wg sync.WaitGroup
	ids := make([]string, 2)
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			st := s.postJob(t, spec)
			ids[i] = st.ID
		}(i)
	}
	wg.Wait()

	finals := make([]JobStatus, 2)
	for i, id := range ids {
		finals[i] = s.waitDone(t, id)
		if finals[i].State != "done" {
			t.Fatalf("job %s state %q (err %q)", id, finals[i].State, finals[i].Error)
		}
	}

	// The simulations ran once: misses count unique pair computations,
	// hits cover the duplicate job's pairs (resident or joined flight).
	misses := s.tel.Counter("server.cache_misses").Value()
	hits := s.tel.Counter("server.cache_hits").Value()
	if misses != 2 {
		t.Fatalf("cache_misses = %d, want 2 (each pair simulated once)", misses)
	}
	if hits != 2 {
		t.Fatalf("cache_hits = %d, want 2 (duplicate job served from cache)", hits)
	}
	totalHits := finals[0].CacheHits + finals[1].CacheHits
	if totalHits != 2 {
		t.Fatalf("job cache hits %d, want 2", totalHits)
	}
	// Identical inputs, identical bytes: the two jobs' results match.
	for i := range finals[0].Results {
		a, b := finals[0].Results[i], finals[1].Results[i]
		a.Cached, b.Cached = false, false
		aj, _ := json.Marshal(a)
		bj, _ := json.Marshal(b)
		if !bytes.Equal(aj, bj) {
			t.Fatalf("pair %d diverged between identical jobs:\n%s\n%s", i, aj, bj)
		}
	}
}

// TestSequentialResubmitServedFromCache covers the warm-cache path:
// a repeat of a finished job does no simulation work at all.
func TestSequentialResubmitServedFromCache(t *testing.T) {
	s := newTestService(t, nil)
	spec := JobSpec{Pairs: 2, Seed: 33}
	first := s.waitDone(t, s.postJob(t, spec).ID)
	if first.State != "done" {
		t.Fatalf("first job %q", first.State)
	}
	missesBefore := s.tel.Counter("server.cache_misses").Value()
	second := s.waitDone(t, s.postJob(t, spec).ID)
	if second.State != "done" {
		t.Fatalf("second job %q", second.State)
	}
	if second.CacheHits != 2 {
		t.Fatalf("resubmit cache hits %d, want 2", second.CacheHits)
	}
	if misses := s.tel.Counter("server.cache_misses").Value(); misses != missesBefore {
		t.Fatalf("resubmit recomputed: misses %d -> %d", missesBefore, misses)
	}
	for _, r := range second.Results {
		if !r.Cached {
			t.Fatalf("pair %s not marked cached", r.Pair)
		}
	}
}

func TestHealthzReadyzAndMetrics(t *testing.T) {
	s := newTestService(t, nil)
	for _, path := range []string{"/healthz", "/readyz", "/metrics"} {
		resp, err := http.Get(s.ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s = %d", path, resp.StatusCode)
		}
	}
	// /metrics carries the server counters.
	resp, err := http.Get(s.ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var snap struct {
		Metrics []struct {
			Name string `json:"name"`
		} `json:"metrics"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		t.Fatal(err)
	}
	var names []string
	for _, m := range snap.Metrics {
		names = append(names, m.Name)
	}
	joined := strings.Join(names, ",")
	for _, want := range []string{"server.http_requests", "jobqueue.depth"} {
		if !strings.Contains(joined, want) {
			t.Fatalf("/metrics missing %s (have %s)", want, joined)
		}
	}
}

func TestPersistenceAcrossRestart(t *testing.T) {
	dir := t.TempDir()
	spec := JobSpec{Pairs: 2, Seed: 44}

	s1 := newTestService(t, func(cfg *Config) { cfg.Cache.Dir = dir })
	first := s1.waitDone(t, s1.postJob(t, spec).ID)
	if first.State != "done" {
		t.Fatalf("first job %q", first.State)
	}
	if err := s1.srv.Drain(context.Background()); err != nil {
		t.Fatal(err)
	}

	// A "restarted" server loads the saved sweeps and serves the same
	// job without simulating.
	s2 := newTestService(t, func(cfg *Config) { cfg.Cache.Dir = dir })
	if err := s2.srv.Cache().Load(); err != nil {
		t.Fatal(err)
	}
	second := s2.waitDone(t, s2.postJob(t, spec).ID)
	if second.State != "done" {
		t.Fatalf("restarted job %q", second.State)
	}
	if second.CacheHits != 2 {
		t.Fatalf("restarted server cache hits %d, want 2", second.CacheHits)
	}
	if misses := s2.tel.Counter("server.cache_misses").Value(); misses != 0 {
		t.Fatalf("restarted server recomputed %d pairs", misses)
	}
}

func TestMaxPairsPerJobRejected(t *testing.T) {
	s := newTestService(t, func(cfg *Config) { cfg.MaxPairsPerJob = 3 })
	if _, code := s.tryPostJob(t, JobSpec{Pairs: 4}); code != http.StatusBadRequest {
		t.Fatalf("oversized job status %d, want 400", code)
	}
}
