package server

import (
	"fmt"
	"sync"
	"time"

	"ampsched/internal/experiments"
	"ampsched/internal/jobqueue"
	"ampsched/internal/workload"
)

// JobSpec is the POST /v1/jobs request body: a pair sweep (Pairs
// random pairs drawn from Seed) or an explicit pair list, each pair
// simulated under the paper's three schedulers (proposed, HPE, Round
// Robin) and compared. Zero fields inherit the server's base options.
type JobSpec struct {
	// Pairs asks for this many random pairs (ignored when PairNames is
	// set).
	Pairs int `json:"pairs,omitempty"`
	// PairNames lists explicit benchmark pairs, e.g. [["gcc","swim"]].
	PairNames [][2]string `json:"pair_names,omitempty"`
	// Seed overrides the base RNG seed (0 = inherit).
	Seed uint64 `json:"seed,omitempty"`
	// InstrLimit overrides the per-run instruction limit (0 = inherit).
	InstrLimit uint64 `json:"instr_limit,omitempty"`
	// ContextSwitch overrides the coarse decision interval (0 = inherit).
	ContextSwitch uint64 `json:"context_switch,omitempty"`
	// SwapOverhead overrides the reconfiguration cost (0 = inherit).
	SwapOverhead uint64 `json:"swap_overhead,omitempty"`
	// Fidelity selects the engine: detailed | interval | sampled
	// ("" = inherit).
	Fidelity string `json:"fidelity,omitempty"`
	// FaultRate overrides the fault-injection rate (nil = inherit; an
	// explicit 0 turns injection off for this job).
	FaultRate *float64 `json:"fault_rate,omitempty"`
	// FaultSeed overrides the fault-plan seed (0 = inherit). At zero
	// fault rate the seed is dead configuration — jobs differing only
	// in it are served from the cache's near-hit tier.
	FaultSeed uint64 `json:"fault_seed,omitempty"`
	// NXM switches the job from a pair sweep to the nxm manycore
	// scaling sweep: one result per core count, each comparing every
	// N×M policy. Pairs/PairNames are ignored when set.
	NXM *NXMJobSpec `json:"nxm,omitempty"`
	// Priority orders queued jobs (higher first).
	Priority int `json:"priority,omitempty"`
	// TimeoutMS bounds the whole job's run time (0 = none).
	TimeoutMS int64 `json:"timeout_ms,omitempty"`
}

// NXMJobSpec parameterizes an nxm scaling job. Zero fields inherit
// the server's base options, which in turn default to the experiment's
// canonical sweep (4/16/64/256 cores, 8 threads/core, 200k cycles,
// 10k-cycle quantum, interval fidelity).
type NXMJobSpec struct {
	// Cores lists the machine sizes to sweep.
	Cores []int `json:"cores,omitempty"`
	// ThreadsPerCore oversubscribes each machine.
	ThreadsPerCore int `json:"threads_per_core,omitempty"`
	// Cycles is the fixed per-run cycle horizon.
	Cycles uint64 `json:"cycles,omitempty"`
	// Quantum is the scheduler decision quantum in cycles.
	Quantum uint64 `json:"quantum,omitempty"`
}

// resolvePairs expands the spec into the concrete pair list.
func (sp *JobSpec) resolvePairs(opt experiments.Options) ([]experiments.Pair, error) {
	if len(sp.PairNames) > 0 {
		pairs := make([]experiments.Pair, 0, len(sp.PairNames))
		for _, names := range sp.PairNames {
			a, err := workload.ByName(names[0])
			if err != nil {
				return nil, err
			}
			b, err := workload.ByName(names[1])
			if err != nil {
				return nil, err
			}
			pairs = append(pairs, experiments.Pair{A: a, B: b})
		}
		return pairs, nil
	}
	n := sp.Pairs
	if n <= 0 {
		return nil, fmt.Errorf("server: job needs pairs > 0 or pair_names")
	}
	return experiments.RandomPairs(n, opt.Seed), nil
}

// SchedResult is one scheduler's outcome on one pair.
type SchedResult struct {
	Cycles     uint64     `json:"cycles"`
	Swaps      uint64     `json:"swaps"`
	IPCPerWatt [2]float64 `json:"ipc_per_watt"`
	Committed  [2]uint64  `json:"committed"`
}

// PairResult is one pair's comparison record — the unit the cache
// stores and the stream endpoint emits.
type PairResult struct {
	Index int    `json:"index"`
	Pair  string `json:"pair"`
	Key   string `json:"key"`

	Proposed SchedResult `json:"proposed"`
	HPE      SchedResult `json:"hpe"`
	RR       SchedResult `json:"rr"`

	// WeightedVsHPEPct / WeightedVsRRPct are the paper's Fig. 7/8
	// per-pair weighted IPC/Watt improvements of the proposed scheme.
	WeightedVsHPEPct float64 `json:"weighted_vs_hpe_pct"`
	WeightedVsRRPct  float64 `json:"weighted_vs_rr_pct"`
	GeoVsHPEPct      float64 `json:"geo_vs_hpe_pct"`
	GeoVsRRPct       float64 `json:"geo_vs_rr_pct"`

	// NXM carries the result of one nxm scaling rung; the dual-core
	// scheduler fields above are zero when it is set.
	NXM *experiments.NXMUnit `json:"nxm,omitempty"`

	// Failed marks a degraded pair (wedged or panicking simulation);
	// Err carries the reason and the numeric fields are unusable.
	Failed bool   `json:"failed,omitempty"`
	Err    string `json:"error,omitempty"`

	// Cached reports whether this record was served from the result
	// cache (set per response, not persisted).
	Cached bool `json:"cached,omitempty"`
}

// JobStatus is the GET /v1/jobs/{id} response body.
type JobStatus struct {
	ID        string       `json:"id"`
	State     string       `json:"state"`
	Pairs     int          `json:"pairs"`
	Completed int          `json:"completed"`
	Failed    int          `json:"failed"`
	CacheHits int          `json:"cache_hits"`
	Recovered bool         `json:"recovered,omitempty"`
	Error     string       `json:"error,omitempty"`
	Results   []PairResult `json:"results,omitempty"`
}

// jobEntry is the server-side record of one submitted job.
type jobEntry struct {
	id   string
	spec JobSpec

	// recovered marks a job re-enqueued (or re-registered) from the
	// journal after a restart.
	recovered bool

	mu        sync.Mutex
	state     jobqueue.State
	results   []PairResult
	cacheHits int
	failed    int
	errMsg    string
	notify    chan struct{} // closed and replaced on every mutation

	created time.Time
	qjob    *jobqueue.Job
}

func newJobEntry(id string, spec JobSpec) *jobEntry {
	return &jobEntry{
		id:      id,
		spec:    spec,
		state:   jobqueue.StatePending,
		notify:  make(chan struct{}),
		created: time.Now(), //ampvet:allow determinism job timestamps feed status APIs, never results
	}
}

// wake closes the current notify channel so streamers re-check state.
// Must be called with j.mu held.
func (j *jobEntry) wake() {
	close(j.notify)
	j.notify = make(chan struct{})
}

// appendResult records one completed pair and wakes streamers.
func (j *jobEntry) appendResult(r PairResult) {
	j.mu.Lock()
	defer j.mu.Unlock()
	j.results = append(j.results, r)
	if r.Cached {
		j.cacheHits++
	}
	if r.Failed {
		j.failed++
	}
	j.wake()
}

// setState transitions the job and wakes streamers. The first
// terminal state wins: later transitions (a cancel racing completion,
// or vice versa) are refused and reported false.
func (j *jobEntry) setState(s jobqueue.State, errMsg string) bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	if terminal(j.state) {
		return false
	}
	j.state = s
	if errMsg != "" {
		j.errMsg = errMsg
	}
	j.wake()
	return true
}

// terminal reports whether s is a final state.
func terminal(s jobqueue.State) bool {
	return s == jobqueue.StateDone || s == jobqueue.StateFailed || s == jobqueue.StateCanceled
}

// status snapshots the job for the API. includeResults controls the
// potentially large Results array.
func (j *jobEntry) status(includeResults bool) JobStatus {
	j.mu.Lock()
	defer j.mu.Unlock()
	st := JobStatus{
		ID:        j.id,
		State:     j.state.String(),
		Pairs:     j.pairCountLocked(),
		Completed: len(j.results),
		Failed:    j.failed,
		CacheHits: j.cacheHits,
		Recovered: j.recovered,
		Error:     j.errMsg,
	}
	if includeResults {
		st.Results = append([]PairResult(nil), j.results...)
	}
	return st
}

// pairCountLocked derives the expected result count from the spec:
// rungs for an nxm job, pairs otherwise.
func (j *jobEntry) pairCountLocked() int {
	if j.spec.NXM != nil {
		if n := len(j.spec.NXM.Cores); n > 0 {
			return n
		}
		return len(experiments.ResolveNXM(experiments.Options{}).Cores)
	}
	if len(j.spec.PairNames) > 0 {
		return len(j.spec.PairNames)
	}
	return j.spec.Pairs
}
