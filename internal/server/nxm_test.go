package server

import (
	"encoding/json"
	"fmt"
	"strings"
	"testing"

	"ampsched/internal/experiments"
)

// nxmSpec is a tiny two-rung sweep sized for test speed.
func nxmSpec() JobSpec {
	return JobSpec{NXM: &NXMJobSpec{
		Cores:          []int{2, 4},
		ThreadsPerCore: 2,
		Cycles:         20_000,
		Quantum:        5_000,
	}}
}

func TestNXMJobEndToEnd(t *testing.T) {
	s := newTestService(t, nil)
	st := s.postJob(t, nxmSpec())
	final := s.waitDone(t, st.ID)
	if final.State != "done" {
		t.Fatalf("job state %q (err %q), want done", final.State, final.Error)
	}
	if final.Completed != 2 || len(final.Results) != 2 {
		t.Fatalf("completed %d results %d, want 2/2", final.Completed, len(final.Results))
	}
	wantLabels := []string{"nxm:2x4", "nxm:4x8"}
	for i, r := range final.Results {
		if r.Failed {
			t.Fatalf("rung %s degraded: %s", r.Pair, r.Err)
		}
		if r.Pair != wantLabels[i] {
			t.Fatalf("rung %d label %q, want %q", i, r.Pair, wantLabels[i])
		}
		if r.NXM == nil {
			t.Fatalf("rung %s missing nxm payload", r.Pair)
		}
		if r.Key == "" {
			t.Fatalf("rung %s missing cache key", r.Pair)
		}
		for _, name := range experiments.NXMPolicyNames() {
			if r.NXM.Weighted[name] <= 0 {
				t.Fatalf("rung %s policy %s weighted IPC/Watt %g, want > 0",
					r.Pair, name, r.NXM.Weighted[name])
			}
		}
	}
}

// TestNXMJobByteIdenticalAcrossServers is the acceptance criterion
// end-to-end: two independent server instances (separate caches,
// separate profiling passes) must serve byte-identical nxm payloads
// for the same spec.
func TestNXMJobByteIdenticalAcrossServers(t *testing.T) {
	run := func() []string {
		s := newTestService(t, nil)
		st := s.postJob(t, nxmSpec())
		final := s.waitDone(t, st.ID)
		if final.State != "done" {
			t.Fatalf("job state %q (err %q), want done", final.State, final.Error)
		}
		var out []string
		for _, r := range final.Results {
			b, err := json.Marshal(r.NXM)
			if err != nil {
				t.Fatal(err)
			}
			out = append(out, r.Key+" "+string(b))
		}
		return out
	}
	a, b := run(), run()
	if fmt.Sprint(a) != fmt.Sprint(b) {
		t.Fatalf("nxm results differ across servers:\n%v\nvs\n%v", a, b)
	}
}

func TestNXMJobCachedOnResubmit(t *testing.T) {
	s := newTestService(t, nil)
	first := s.waitDone(t, s.postJob(t, nxmSpec()).ID)
	if first.State != "done" {
		t.Fatalf("first job state %q", first.State)
	}
	second := s.waitDone(t, s.postJob(t, nxmSpec()).ID)
	if second.State != "done" {
		t.Fatalf("second job state %q", second.State)
	}
	if second.CacheHits != 2 {
		t.Fatalf("resubmit cache hits %d, want 2", second.CacheHits)
	}
	for i := range second.Results {
		if second.Results[i].Key != first.Results[i].Key {
			t.Fatalf("rung %d key changed across resubmits", i)
		}
	}
}

func TestNXMKeySpec(t *testing.T) {
	opt := testOptions()
	base := nxmKeySpec("digest", opt, 64)
	if base.Topology == "" || base.PairIndex != 64 {
		t.Fatalf("nxm key spec incomplete: %+v", base)
	}
	// Identity: same inputs, same key.
	if CacheKey(base) != CacheKey(nxmKeySpec("digest", opt, 64)) {
		t.Fatal("identical nxm specs hash differently")
	}
	// Sensitivity: topology knobs and seed all move the key.
	for name, mutate := range map[string]func(*experiments.Options){
		"seed":    func(o *experiments.Options) { o.Seed++ },
		"threads": func(o *experiments.Options) { o.NXMThreadsPerCore = 3 },
		"cycles":  func(o *experiments.Options) { o.NXMCycles = 77_000 },
		"quantum": func(o *experiments.Options) { o.NXMQuantum = 9_000 },
	} {
		m := opt
		mutate(&m)
		if CacheKey(nxmKeySpec("digest", m, 64)) == CacheKey(base) {
			t.Fatalf("key insensitive to %s", name)
		}
	}
	if CacheKey(nxmKeySpec("digest", opt, 128)) == CacheKey(base) {
		t.Fatal("key insensitive to core count")
	}
	// Knobs the sweep does not read must not move the key.
	m := opt
	m.InstrLimit = 999_999
	m.ContextSwitch = 123_456
	if CacheKey(nxmKeySpec("digest", m, 64)) != CacheKey(base) {
		t.Fatal("key sensitive to pair-only knobs")
	}
}

// TestPairKeyUnchangedByTopologyField guards cache compatibility: the
// new omitempty Topology field must not appear in marshaled pair key
// specs, so every pre-existing pair cache entry keeps its address.
func TestPairKeyUnchangedByTopologyField(t *testing.T) {
	opt := testOptions()
	pairs := experiments.RandomPairs(1, opt.Seed)
	spec := pairKeySpec("digest", opt, 0, pairs[0])
	b, err := json.Marshal(spec)
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(string(b), "topology") {
		t.Fatalf("pair key spec leaks topology field: %s", b)
	}
}
