package server

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"

	"ampsched/internal/telemetry"
)

func mustCache(t *testing.T, cfg CacheConfig) *Cache {
	t.Helper()
	c, err := NewCache(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestCacheHitMiss(t *testing.T) {
	tel := telemetry.New()
	c := mustCache(t, CacheConfig{ByteBudget: 1 << 20, Telemetry: tel})
	if _, ok := c.Get("a"); ok {
		t.Fatal("hit on empty cache")
	}
	c.Put("a", []byte("alpha"))
	got, ok := c.Get("a")
	if !ok || !bytes.Equal(got, []byte("alpha")) {
		t.Fatalf("Get = %q, %v", got, ok)
	}
	if hits := tel.Counter("server.cache_hits").Value(); hits != 1 {
		t.Fatalf("cache_hits = %d, want 1", hits)
	}
	if misses := tel.Counter("server.cache_misses").Value(); misses != 1 {
		t.Fatalf("cache_misses = %d, want 1", misses)
	}
}

func TestCacheEvictionUnderByteBudget(t *testing.T) {
	tel := telemetry.New()
	c := mustCache(t, CacheConfig{ByteBudget: 30, Telemetry: tel})
	// Three 10-byte entries fill the budget exactly.
	for _, k := range []string{"a", "b", "c"} {
		c.Put(k, []byte("0123456789"))
	}
	if n, b := c.Len(), c.Bytes(); n != 3 || b != 30 {
		t.Fatalf("len=%d bytes=%d, want 3/30", n, b)
	}
	// Touch "a" so "b" is the LRU victim.
	if _, ok := c.Get("a"); !ok {
		t.Fatal("lost entry a")
	}
	c.Put("d", []byte("0123456789"))
	if _, ok := c.Peek("b"); ok {
		t.Fatal("LRU entry b survived past the byte budget")
	}
	for _, k := range []string{"a", "c", "d"} {
		if _, ok := c.Peek(k); !ok {
			t.Fatalf("entry %s wrongly evicted", k)
		}
	}
	if ev := tel.Counter("server.cache_evictions").Value(); ev != 1 {
		t.Fatalf("cache_evictions = %d, want 1", ev)
	}
	if b := c.Bytes(); b != 30 {
		t.Fatalf("bytes = %d, want 30", b)
	}
}

func TestCacheOversizedValueAdmittedAlone(t *testing.T) {
	c := mustCache(t, CacheConfig{ByteBudget: 8})
	c.Put("big", make([]byte, 64))
	if _, ok := c.Peek("big"); !ok {
		t.Fatal("oversized value not admitted")
	}
	c.Put("big2", make([]byte, 64))
	if _, ok := c.Peek("big"); ok {
		t.Fatal("first oversized value not evicted by second")
	}
	if n := c.Len(); n != 1 {
		t.Fatalf("len = %d, want 1", n)
	}
}

func TestCacheSingleflightCollapse(t *testing.T) {
	tel := telemetry.New()
	c := mustCache(t, CacheConfig{ByteBudget: 1 << 20, Telemetry: tel})
	var computes atomic.Int64
	gate := make(chan struct{})
	compute := func() ([]byte, error) {
		computes.Add(1)
		<-gate
		return []byte("result"), nil
	}
	const callers = 8
	var wg sync.WaitGroup
	hits := make([]bool, callers)
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			data, hit, err := c.Do(context.Background(), "k", compute)
			if err != nil {
				t.Errorf("caller %d: %v", i, err)
				return
			}
			if !bytes.Equal(data, []byte("result")) {
				t.Errorf("caller %d got %q", i, data)
			}
			hits[i] = hit
		}(i)
	}
	// Let every caller reach the flight before releasing the compute.
	for tel.Counter("server.cache_joined").Value() < callers-1 {
	}
	close(gate)
	wg.Wait()
	if got := computes.Load(); got != 1 {
		t.Fatalf("compute ran %d times, want 1 (singleflight)", got)
	}
	var hitCount int
	for _, h := range hits {
		if h {
			hitCount++
		}
	}
	if hitCount != callers-1 {
		t.Fatalf("%d callers saw hit=true, want %d (all but the computer)", hitCount, callers-1)
	}
	if joined := tel.Counter("server.cache_joined").Value(); joined != callers-1 {
		t.Fatalf("cache_joined = %d, want %d", joined, callers-1)
	}
}

func TestCacheDoErrorNotCached(t *testing.T) {
	c := mustCache(t, CacheConfig{ByteBudget: 1 << 20})
	boom := errors.New("boom")
	if _, _, err := c.Do(context.Background(), "k", func() ([]byte, error) {
		return nil, boom
	}); !errors.Is(err, boom) {
		t.Fatalf("error %v, want boom", err)
	}
	if _, ok := c.Peek("k"); ok {
		t.Fatal("failed compute was cached")
	}
	// A later Do must re-run the computation.
	data, hit, err := c.Do(context.Background(), "k", func() ([]byte, error) {
		return []byte("ok"), nil
	})
	if err != nil || hit || !bytes.Equal(data, []byte("ok")) {
		t.Fatalf("retry Do = %q, hit=%v, err=%v", data, hit, err)
	}
}

func TestCacheDiskRoundTrip(t *testing.T) {
	dir := t.TempDir()
	c := mustCache(t, CacheConfig{ByteBudget: 1 << 20, Dir: dir})
	for i := 0; i < 5; i++ {
		c.Put(fmt.Sprintf("%04x", i), []byte(fmt.Sprintf("value-%d", i)))
	}
	if err := c.Save(); err != nil {
		t.Fatal(err)
	}
	// Saving again writes nothing new (all entries clean) and is
	// error-free.
	if err := c.Save(); err != nil {
		t.Fatal(err)
	}

	c2 := mustCache(t, CacheConfig{ByteBudget: 1 << 20, Dir: dir})
	if err := c2.Load(); err != nil {
		t.Fatal(err)
	}
	if n := c2.Len(); n != 5 {
		t.Fatalf("reloaded %d entries, want 5", n)
	}
	for i := 0; i < 5; i++ {
		data, ok := c2.Peek(fmt.Sprintf("%04x", i))
		if !ok || !bytes.Equal(data, []byte(fmt.Sprintf("value-%d", i))) {
			t.Fatalf("entry %d: %q, %v", i, data, ok)
		}
	}
}

func TestCacheLoadRespectsBudget(t *testing.T) {
	dir := t.TempDir()
	c := mustCache(t, CacheConfig{ByteBudget: 1 << 20, Dir: dir})
	for i := 0; i < 10; i++ {
		c.Put(fmt.Sprintf("%04x", i), make([]byte, 10))
	}
	if err := c.Save(); err != nil {
		t.Fatal(err)
	}
	small := mustCache(t, CacheConfig{ByteBudget: 35, Dir: dir})
	if err := small.Load(); err != nil {
		t.Fatal(err)
	}
	if n := small.Len(); n != 3 {
		t.Fatalf("budget-bound load kept %d entries, want 3", n)
	}
}

func TestCacheLoadMissingDirIsCold(t *testing.T) {
	c := mustCache(t, CacheConfig{Dir: t.TempDir() + "/nonexistent"})
	if err := c.Load(); err != nil {
		t.Fatalf("missing dir: %v", err)
	}
	if c.Len() != 0 {
		t.Fatal("cold cache not empty")
	}
}

func TestCacheKeyDeterminismAndSensitivity(t *testing.T) {
	spec := KeySpec{Version: 1, BenchA: "gcc", BenchB: "swim", Seed: 7,
		InstrLimit: 1000, ContextSwitch: 100, SwapOverhead: 10, Fidelity: "interval"}
	k1 := CacheKey(spec)
	k2 := CacheKey(spec)
	if k1 != k2 {
		t.Fatal("identical specs hashed differently")
	}
	if len(k1) != 64 {
		t.Fatalf("key %q is not hex SHA-256", k1)
	}
	fields := []func(*KeySpec){
		func(s *KeySpec) { s.Version++ },
		func(s *KeySpec) { s.BenchA = "mcf" },
		func(s *KeySpec) { s.BenchB = "art" },
		func(s *KeySpec) { s.PairIndex++ },
		func(s *KeySpec) { s.Seed++ },
		func(s *KeySpec) { s.InstrLimit++ },
		func(s *KeySpec) { s.ContextSwitch++ },
		func(s *KeySpec) { s.SwapOverhead++ },
		func(s *KeySpec) { s.ProfileLimit++ },
		func(s *KeySpec) { s.CycleBudget++ },
		func(s *KeySpec) { s.Fidelity = "sampled" },
		func(s *KeySpec) { s.FaultRate = 0.5 },
		func(s *KeySpec) { s.FaultSeed++ },
		func(s *KeySpec) { s.CoreDigest = "deadbeef" },
	}
	seen := map[string]int{k1: -1}
	for i, mutate := range fields {
		s := spec
		mutate(&s)
		k := CacheKey(s)
		if prev, dup := seen[k]; dup {
			t.Fatalf("field mutation %d collides with %d: key not sensitive to that field", i, prev)
		}
		seen[k] = i
	}
}
