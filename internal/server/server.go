// Package server turns the simulator into a long-running
// simulation-as-a-service daemon (cmd/ampserve): an HTTP/JSON API over
// a bounded priority job queue (internal/jobqueue), a content-
// addressed result cache with singleflight deduplication and optional
// disk persistence, and NDJSON streaming of per-pair outcomes as they
// complete.
//
// Endpoints:
//
//	POST   /v1/jobs           submit a pair sweep or explicit pair list
//	GET    /v1/jobs/{id}      job status (+results when done)
//	GET    /v1/jobs/{id}/stream  NDJSON per-pair outcomes, live
//	DELETE /v1/jobs/{id}      cancel
//	GET    /v1/results/{key}  one cached pair record by content address
//	GET    /healthz           liveness
//	GET    /readyz            readiness (503 while draining)
//	GET    /metrics           telemetry registry snapshot
//
// Expensive shared state — the §V profiling pass and the Fig. 3/4
// estimators — is computed once per distinct option set and shared
// across every job (experiments.Runner's lazy accessors are
// concurrency-safe), so a warm server answers repeat sweeps from the
// cache and serves new ones without re-profiling.
package server

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"ampsched/internal/amp"
	"ampsched/internal/cpu"
	"ampsched/internal/experiments"
	"ampsched/internal/fault"
	"ampsched/internal/interval"
	"ampsched/internal/jobqueue"
	"ampsched/internal/metrics"
	"ampsched/internal/telemetry"
	"ampsched/internal/wal"
)

// Config assembles a Server.
type Config struct {
	// BaseOptions are the experiment defaults a JobSpec inherits from
	// and overrides; zero value means experiments.DefaultOptions.
	BaseOptions experiments.Options
	// MaxPairsPerJob rejects oversized sweeps (0 = 400).
	MaxPairsPerJob int
	// Queue sizes the work queue (Telemetry and Retryable are wired by
	// New; MaxRetries defaults to 2).
	Queue jobqueue.Config
	// Cache sizes the result cache (Telemetry is wired by New).
	Cache CacheConfig
	// JournalDir, when non-empty, enables the durable job journal:
	// submissions are fsynced to a WAL before they are acknowledged and
	// Recover replays it after a crash. Empty disables journaling.
	JournalDir string
	// Admission tunes overload protection (load shedding and the
	// per-fidelity circuit breaker).
	Admission AdmissionConfig
	// Chaos, when non-nil, injects service-level faults (disk errors,
	// torn writes, slow I/O, worker stalls, panics) into the journal,
	// cache and job execution — the chaos harness's hook.
	Chaos *fault.ServicePlan
	// BatchLinger tunes the pair batcher: how long a pair computation
	// waits for companions before its batch flushes (0 = 2ms). A
	// negative value disables batching entirely — every pair runs
	// pair-at-a-time, the identity tests' reference path.
	BatchLinger time.Duration
	// FlushEvery, when positive, runs a background durability flusher
	// that persists dirty cache entries and fsyncs the journal on that
	// cadence (completion already flushes; this bounds the exposure of
	// pairs computed by a job that never finishes).
	FlushEvery time.Duration
	// Telemetry receives server, queue and simulation metrics; nil
	// disables them (the /metrics endpoint then serves an empty
	// registry).
	Telemetry *telemetry.Telemetry
	// JobIDSpace namespaces minted job ids (fleet mode): when set, ids
	// become "<8 hex of sha256(space)>-<n>" instead of bare "<n>", so
	// nodes minting ids concurrently never collide and a status poll
	// for a forwarded job can never be confused with a local one.
	JobIDSpace string
}

// Server is the simulation service. Create with New, expose Handler,
// and stop with Drain (graceful) or Close (immediate).
type Server struct {
	cfg       Config
	tel       *telemetry.Telemetry
	cache     *Cache
	queue     *jobqueue.Queue
	journal   *wal.Log
	admission *admission
	chaos     *fault.ServicePlan

	baseOpt    experiments.Options
	coreDigest string

	mu       sync.Mutex
	jobs     map[string]*jobEntry
	runners  map[string]*experiments.Runner
	batchers map[*experiments.Runner]*pairBatcher

	// remote / publish are the fleet hooks (SetCluster, fleet.go):
	// consulted on pair cache misses and fed locally computed records.
	// Guarded by mu — journal recovery can start jobs before the
	// cluster layer is wired.
	remote  RemoteLookup
	publish ResultPublish

	// batchCtx bounds shared batch execution to the server's lifetime
	// (a batch serves requests from many jobs, so no single job's
	// context may cancel it); Close cancels it.
	batchCtx    context.Context
	batchCancel context.CancelFunc

	// nearIndex maps near-hit families (KeySpec digests with one knob
	// normalized out) to a cached key in that family; see resim.go.
	nearMu    sync.Mutex
	nearIndex map[string]string

	idPrefix string // from Config.JobIDSpace; "" in single-node mode
	nextID   atomic.Uint64
	draining atomic.Bool

	flushStop chan struct{}
	flushDone chan struct{}
	stopOnce  sync.Once

	jobsSubmitted     *telemetry.Counter
	jobsCompleted     *telemetry.Counter
	jobsFailed        *telemetry.Counter
	jobsCanceled      *telemetry.Counter
	jobsRejected      *telemetry.Counter
	jobsRecovered     *telemetry.Counter
	checkpointResumes *telemetry.Counter
	cacheNearHits     *telemetry.Counter
	profileShares     *telemetry.Counter
	journalErrors     *telemetry.Counter
	pairsServed       *telemetry.Counter
	jobLatencyUS      *telemetry.Histogram
	httpRequests      *telemetry.Counter
}

// New builds a Server and starts its worker pool.
func New(cfg Config) (*Server, error) {
	baseOpt := cfg.BaseOptions
	if baseOpt.InstrLimit == 0 {
		// Zero-valued options: the caller wants the defaults. (Options
		// holds a slice now, so it is no longer comparable and any
		// valid configuration has a positive instruction limit.)
		baseOpt = experiments.DefaultOptions()
	}
	if baseOpt.Pairs <= 0 {
		baseOpt.Pairs = 1
	}
	if err := baseOpt.Validate(); err != nil {
		return nil, fmt.Errorf("server: base options: %w", err)
	}
	if cfg.MaxPairsPerJob == 0 {
		cfg.MaxPairsPerJob = 400
	}

	qcfg := cfg.Queue
	qcfg.Telemetry = cfg.Telemetry
	if qcfg.MaxRetries == 0 {
		qcfg.MaxRetries = 2
	}
	// A wedged simulation is the service's canonical transient failure:
	// the fault-injection layer can wedge a run that a retry (same
	// seeds, but a fresh system) may complete under a different
	// interleaving of queue load. An injected chaos panic is transient
	// by construction. Everything else is deterministic and not worth
	// re-running.
	if qcfg.Retryable == nil {
		qcfg.Retryable = func(err error) bool {
			return errors.Is(err, amp.ErrWedged) || errors.Is(err, fault.ErrInjectedPanic)
		}
	}
	queue, err := jobqueue.New(qcfg)
	if err != nil {
		return nil, err
	}

	ccfg := cfg.Cache
	ccfg.Telemetry = cfg.Telemetry
	if cfg.Chaos != nil && ccfg.WriteFile == nil {
		ccfg.WriteFile = cfg.Chaos.WriteFile
	}
	if ccfg.Validate == nil {
		// Every entry the server persists is a JSON PairResult; a
		// truncated or garbled file fails this and is quarantined on
		// load instead of poisoning lookups.
		ccfg.Validate = json.Valid
	}
	cache, err := NewCache(ccfg)
	if err != nil {
		queue.Close()
		return nil, err
	}

	var journal *wal.Log
	if cfg.JournalDir != "" {
		wopts := wal.Options{}
		if cfg.Chaos != nil {
			wopts.WriteHook = cfg.Chaos.WALWriteHook()
		}
		journal, err = wal.Open(cfg.JournalDir, wopts)
		if err != nil {
			queue.Close()
			return nil, fmt.Errorf("server: opening job journal: %w", err)
		}
	}

	tel := cfg.Telemetry
	s := &Server{
		cfg:        cfg,
		tel:        tel,
		cache:      cache,
		queue:      queue,
		journal:    journal,
		admission:  newAdmission(cfg.Admission, tel),
		chaos:      cfg.Chaos,
		baseOpt:    baseOpt,
		jobs:       make(map[string]*jobEntry),
		runners:    make(map[string]*experiments.Runner),
		batchers:   make(map[*experiments.Runner]*pairBatcher),
		nearIndex:  make(map[string]string),
		coreDigest: CoreDigest(cpu.IntCoreConfig(), cpu.FPCoreConfig()),
		idPrefix:   jobIDPrefix(cfg.JobIDSpace),

		jobsSubmitted:     tel.Counter("server.jobs_submitted"),
		jobsCompleted:     tel.Counter("server.jobs_completed"),
		jobsFailed:        tel.Counter("server.jobs_failed"),
		jobsCanceled:      tel.Counter("server.jobs_canceled"),
		jobsRejected:      tel.Counter("server.jobs_rejected"),
		jobsRecovered:     tel.Counter("server.jobs_recovered"),
		checkpointResumes: tel.Counter("server.checkpoint_resumes"),
		cacheNearHits:     tel.Counter("server.cache_near_hits"),
		profileShares:     tel.Counter("server.profile_shares"),
		journalErrors:     tel.Counter("server.journal_errors"),
		pairsServed:       tel.Counter("server.pairs_served"),
		jobLatencyUS:      tel.Histogram("server.job_latency_us"),
		httpRequests:      tel.Counter("server.http_requests"),
	}
	// Batches outlive any one job's context (a shared flush must not
	// die with the job that filled it), so they run under a
	// server-lifetime context canceled in Close.
	s.batchCtx, s.batchCancel = context.WithCancel(context.Background()) //ampvet:allow ctxcheck server-lifetime root for cross-job batches, canceled in Close
	// The interval engine's process-global calibration ledger reports
	// through the same registry ("interval.calibrations",
	// "interval.cal_cache_hits"): its cross-run reuse is one of the
	// differential re-simulation tiers, so the server surfaces it.
	interval.SetTelemetry(tel)
	if cfg.Chaos != nil {
		cfg.Chaos.SetTelemetry(tel)
	}
	if cfg.FlushEvery > 0 {
		s.flushStop = make(chan struct{})
		s.flushDone = make(chan struct{})
		go s.flushLoop(cfg.FlushEvery)
	}
	return s, nil
}

// flushLoop is the background durability flusher: on each tick it
// persists dirty cache entries and fsyncs the journal, bounding how
// much completed-but-unflushed work one crash can lose.
func (s *Server) flushLoop(every time.Duration) {
	defer close(s.flushDone)
	t := time.NewTicker(every) //ampvet:allow determinism durability flush cadence is inherently wall-clock
	defer t.Stop()
	for {
		select {
		case <-s.flushStop:
			return
		case <-t.C:
			if err := s.cache.Save(); err != nil {
				s.journalErrors.Inc()
			}
			if s.journal != nil {
				if err := s.journal.Sync(); err != nil && !errors.Is(err, wal.ErrClosed) {
					s.journalErrors.Inc()
				}
			}
		}
	}
}

// stopFlusher stops the background flusher (idempotent).
func (s *Server) stopFlusher() {
	s.stopOnce.Do(func() {
		if s.flushStop != nil {
			close(s.flushStop)
			<-s.flushDone
		}
	})
}

// Cache exposes the result cache (tests, warm-up, persistence).
func (s *Server) Cache() *Cache { return s.cache }

// Queue exposes the work queue (tests, stats).
func (s *Server) Queue() *jobqueue.Queue { return s.queue }

// optionsFor resolves a spec against the base options.
func (s *Server) optionsFor(sp JobSpec) (experiments.Options, error) {
	opt := s.baseOpt
	if sp.Seed != 0 {
		opt.Seed = sp.Seed
	}
	if sp.InstrLimit != 0 {
		opt.InstrLimit = sp.InstrLimit
	}
	if sp.ContextSwitch != 0 {
		opt.ContextSwitch = sp.ContextSwitch
	}
	if sp.SwapOverhead != 0 {
		opt.SwapOverhead = sp.SwapOverhead
	}
	if sp.Fidelity != "" {
		opt.Fidelity = sp.Fidelity
	}
	if sp.FaultRate != nil {
		opt.FaultRate = *sp.FaultRate
	}
	if sp.FaultSeed != 0 {
		opt.FaultSeed = sp.FaultSeed
	}
	if sp.NXM != nil {
		if len(sp.NXM.Cores) > 0 {
			opt.NXMCores = sp.NXM.Cores
		}
		if sp.NXM.ThreadsPerCore > 0 {
			opt.NXMThreadsPerCore = sp.NXM.ThreadsPerCore
		}
		if sp.NXM.Cycles > 0 {
			opt.NXMCycles = sp.NXM.Cycles
		}
		if sp.NXM.Quantum > 0 {
			opt.NXMQuantum = sp.NXM.Quantum
		}
	}
	// Pair execution never uses Options.Pairs/Parallelism; normalize
	// them so runners dedupe on what actually matters.
	opt.Pairs = 1
	opt.Parallelism = 1
	if err := opt.Validate(); err != nil {
		return opt, err
	}
	return opt, nil
}

// runnerFor returns the shared Runner for opt, creating it on first
// use. Runners hold the profiled matrices/surfaces, so all jobs with
// the same options share one profiling pass. A new option set whose
// profiling inputs match an existing runner's — a single-knob delta in
// swap overhead, fault rate/seed, instruction limit, cycle budget or
// fidelity — derives from it instead of re-profiling: the §V profile
// is the expensive upstream stage differential re-simulation reuses
// (counted on "server.profile_shares"); only the dependent pair runs
// are recomputed. The derivation is lazy, so the submit path never
// blocks on a profiling pass.
func (s *Server) runnerFor(opt experiments.Options) (*experiments.Runner, error) {
	b, err := json.Marshal(opt)
	if err != nil {
		return nil, fmt.Errorf("server: hashing options: %w", err)
	}
	key := string(b)
	s.mu.Lock()
	defer s.mu.Unlock()
	if r, ok := s.runners[key]; ok {
		return r, nil
	}
	// Any base whose profiling inputs match yields byte-identical
	// artifacts (profiling is a pure function of them), so which match
	// map order surfaces first cannot reach results.
	for _, base := range s.runners { //ampvet:allow determinism all SharesProfile matches carry byte-identical profiling artifacts
		if base.SharesProfile(opt) {
			r := base.Derived(opt)
			s.profileShares.Inc()
			s.runners[key] = r
			return r, nil
		}
	}
	r, err := experiments.NewRunner(opt)
	if err != nil {
		return nil, err
	}
	r.Telemetry = s.tel
	s.runners[key] = r
	return r, nil
}

// Submit validates and enqueues a job, returning its entry. Maps to
// POST /v1/jobs; also the programmatic entry point for tests. When
// journaling is on, the submission is fsynced to the journal before
// Submit returns — an acknowledged job survives a crash.
func (s *Server) Submit(sp JobSpec) (*jobEntry, error) {
	return s.submit(sp, "", false)
}

// submit is Submit with an optional preserved id (journal recovery
// re-enqueues under the original id).
func (s *Server) submit(sp JobSpec, id string, recovered bool) (*jobEntry, error) {
	if s.draining.Load() {
		s.jobsRejected.Inc()
		return nil, jobqueue.ErrClosed
	}
	opt, err := s.optionsFor(sp)
	if err != nil {
		return nil, err
	}
	var pairs []experiments.Pair
	var rungs []int
	if sp.NXM != nil {
		rungs = experiments.ResolveNXM(opt).Cores
	} else {
		pairs, err = sp.resolvePairs(opt)
		if err != nil {
			return nil, err
		}
	}
	units := len(pairs) + len(rungs)
	if units > s.cfg.MaxPairsPerJob {
		return nil, fmt.Errorf("server: %d pairs exceeds per-job limit %d", units, s.cfg.MaxPairsPerJob)
	}
	cost := jobCost(opt.Fidelity, units)
	if !recovered { // recovered jobs were admitted before the crash
		if err := s.admission.admit(opt.Fidelity, cost, s.queue.Stats()); err != nil {
			s.jobsRejected.Inc()
			return nil, err
		}
	}
	runner, err := s.runnerFor(opt)
	if err != nil {
		return nil, err
	}

	if id == "" {
		id = s.idPrefix + strconv.FormatUint(s.nextID.Add(1), 10)
	}
	j := newJobEntry(id, sp)
	j.recovered = recovered
	task := func(ctx context.Context) error {
		if sp.NXM != nil {
			return s.runNXMJob(ctx, j, runner, opt, rungs)
		}
		return s.runJob(ctx, j, runner, opt, pairs)
	}
	qjob, err := s.queue.TrySubmit(task, jobqueue.SubmitOptions{
		Priority: sp.Priority,
		Deadline: time.Duration(sp.TimeoutMS) * time.Millisecond,
		Cost:     cost,
	})
	if err != nil {
		s.jobsRejected.Inc()
		return nil, err
	}
	if err := s.ackJob(j, qjob, sp); err != nil {
		return nil, err
	}
	return j, nil
}

// ackJob finishes a successful enqueue: journals the submission (a job
// is only acknowledged once it is durable), installs the queue-state
// backstop, and registers the entry. On a journal failure the queued
// job is canceled and the submission refused.
func (s *Server) ackJob(j *jobEntry, qjob *jobqueue.Job, sp JobSpec) error {
	j.qjob = qjob
	// Acknowledged implies journaled: the submit record is durable
	// before the caller (and so the HTTP 202) sees the job. A journal
	// that cannot be written refuses the job rather than accepting
	// work it might forget.
	if err := s.appendJournal(recSubmit, submitRecord{ID: j.id, Spec: sp}); err != nil {
		qjob.Cancel()
		s.jobsRejected.Inc()
		s.journalErrors.Inc()
		return err
	}
	// A job the queue settles without ever running its task (canceled
	// or aborted while pending) has nothing else to settle its entry —
	// mirror the queue's terminal state as a backstop.
	go func() {
		<-qjob.Done()
		switch qjob.State() {
		case jobqueue.StateCanceled:
			if j.setState(jobqueue.StateCanceled, "canceled before start") {
				s.journalTerminal(j.id, jobqueue.StateCanceled, "canceled before start")
				s.jobsCanceled.Inc()
			}
		case jobqueue.StateFailed:
			if qerr := qjob.Err(); qerr != nil && j.setState(jobqueue.StateFailed, qerr.Error()) {
				s.journalTerminal(j.id, jobqueue.StateFailed, qerr.Error())
				s.jobsFailed.Inc()
			}
		}
	}()
	s.mu.Lock()
	s.jobs[j.id] = j
	s.mu.Unlock()
	s.jobsSubmitted.Inc()
	return nil
}

// SubmitMany validates and enqueues a group of jobs atomically: either
// every spec is accepted — one jobqueue.TrySubmitBatch, so the group
// lands adjacently and either fits whole or bounces whole — or none
// is. Group members typically share fidelity and options; their pair
// computations then run against one shared Runner, where the pair
// batcher coalesces them into interleaved batch passes. Maps to
// POST /v1/jobs with a JSON array body.
func (s *Server) SubmitMany(specs []JobSpec) ([]*jobEntry, error) {
	if len(specs) == 0 {
		return nil, fmt.Errorf("server: empty job batch")
	}
	if s.draining.Load() {
		s.jobsRejected.Add(uint64(len(specs)))
		return nil, jobqueue.ErrClosed
	}
	type prepared struct {
		sp     JobSpec
		opt    experiments.Options
		pairs  []experiments.Pair
		rungs  []int
		cost   float64
		runner *experiments.Runner
	}
	preps := make([]*prepared, len(specs))
	for k, sp := range specs {
		opt, err := s.optionsFor(sp)
		if err != nil {
			return nil, fmt.Errorf("server: batch spec %d: %w", k, err)
		}
		pr := &prepared{sp: sp, opt: opt}
		if sp.NXM != nil {
			pr.rungs = experiments.ResolveNXM(opt).Cores
		} else {
			if pr.pairs, err = sp.resolvePairs(opt); err != nil {
				return nil, fmt.Errorf("server: batch spec %d: %w", k, err)
			}
		}
		units := len(pr.pairs) + len(pr.rungs)
		if units > s.cfg.MaxPairsPerJob {
			return nil, fmt.Errorf("server: batch spec %d: %d pairs exceeds per-job limit %d",
				k, units, s.cfg.MaxPairsPerJob)
		}
		pr.cost = jobCost(opt.Fidelity, units)
		if err := s.admission.admit(opt.Fidelity, pr.cost, s.queue.Stats()); err != nil {
			s.jobsRejected.Add(uint64(len(specs)))
			return nil, fmt.Errorf("server: batch spec %d: %w", k, err)
		}
		if pr.runner, err = s.runnerFor(opt); err != nil {
			return nil, err
		}
		preps[k] = pr
	}

	entries := make([]*jobEntry, len(specs))
	tasks := make([]jobqueue.BatchTask, len(specs))
	for k, pr := range preps {
		pr := pr
		id := s.idPrefix + strconv.FormatUint(s.nextID.Add(1), 10)
		j := newJobEntry(id, pr.sp)
		entries[k] = j
		task := func(ctx context.Context) error {
			if pr.sp.NXM != nil {
				return s.runNXMJob(ctx, j, pr.runner, pr.opt, pr.rungs)
			}
			return s.runJob(ctx, j, pr.runner, pr.opt, pr.pairs)
		}
		tasks[k] = jobqueue.BatchTask{
			Task: task,
			Opts: jobqueue.SubmitOptions{
				Priority: pr.sp.Priority,
				Deadline: time.Duration(pr.sp.TimeoutMS) * time.Millisecond,
				Cost:     pr.cost,
			},
		}
	}
	qjobs, err := s.queue.TrySubmitBatch(tasks)
	if err != nil {
		s.jobsRejected.Add(uint64(len(specs)))
		return nil, err
	}
	// Acknowledgment is per job: a journal failure refuses (and
	// cancels) only the job whose record could not be written — the
	// enqueue was atomic, durability is individual.
	var firstErr error
	for k, j := range entries {
		if err := s.ackJob(j, qjobs[k], specs[k]); err != nil && firstErr == nil {
			firstErr = fmt.Errorf("server: batch spec %d: %w", k, err)
		}
	}
	if firstErr != nil {
		return entries, firstErr
	}
	return entries, nil
}

// job looks up a submitted job by id.
func (s *Server) job(id string) (*jobEntry, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	return j, ok
}

// runJob executes one job's pairs in order, serving each from the
// cache when possible and appending outcomes as they complete. It is
// the queue task: its error classifies retry (wedged) vs terminal.
func (s *Server) runJob(ctx context.Context, j *jobEntry, runner *experiments.Runner, opt experiments.Options, pairs []experiments.Pair) error {
	start := time.Now() //ampvet:allow determinism job latency measurement is inherently wall-clock
	if !j.setState(jobqueue.StateRunning, "") {
		return nil // canceled before the worker picked it up
	}
	if s.chaos != nil {
		s.chaos.MaybeStall()
		s.chaos.MaybePanic() // recovered by the queue into a retryable job error
	}
	// Best-effort start record (no fsync urgency: a lost start only
	// means recovery re-runs from the submit record, which it would
	// anyway).
	if err := s.appendJournal(recStart, idRecord{ID: j.id}); err != nil {
		s.journalErrors.Inc()
	}
	// Force the shared profiling pass and estimator build before the
	// per-pair loop so every pair's timing excludes it; concurrent
	// jobs collapse onto one computation (Runner is concurrency-safe).
	if _, err := runner.Matrix(); err != nil {
		s.finishJob(j, start, err)
		return err
	}

	// Pairs are served through a bounded in-flight window: up to
	// `window` pair computations run concurrently (so one job's pairs
	// co-batch in the shared pairBatcher, and with other jobs'), while
	// outcomes are emitted strictly in pair order — append order is the
	// streaming API's contract. Non-batchable runners keep a window of
	// one, which is exactly the old serial loop.
	window := 1
	if s.batcherFor(runner) != nil {
		window = defaultBatchPairs
	}
	type pairServe struct {
		key    string
		data   []byte
		cached bool
		err    error
	}
	serves := make([]pairServe, len(pairs))
	ready := make([]chan struct{}, len(pairs))
	for i := range ready {
		ready[i] = make(chan struct{})
	}
	sem := make(chan struct{}, window)
	go func() {
		for i, p := range pairs {
			sem <- struct{}{}
			go func(i int, p experiments.Pair) {
				defer func() { <-sem }()
				defer close(ready[i])
				if cerr := ctx.Err(); cerr != nil {
					serves[i] = pairServe{err: cerr}
					return
				}
				spec := pairKeySpec(s.coreDigest, opt, i, p)
				key := CacheKey(spec)
				data, cached, err := s.cache.Do(ctx, key, func() ([]byte, error) {
					if adapted, ok := s.tryNearHit(spec, key); ok {
						return adapted, nil
					}
					// Remote lookup before local compute: a fleet peer
					// may already hold (or be computing, via a steal
					// claim) this record. Byte-identity across nodes
					// makes the source indistinguishable.
					remote, publish := s.clusterHooks()
					if remote != nil {
						if rdata, ok := remote(ctx, key); ok {
							return rdata, nil
						}
					}
					var cdata []byte
					var cerr error
					if b := s.batcherFor(runner); b != nil {
						cdata, cerr = s.computePairBatched(ctx, b, i, p, key)
					} else {
						cdata, cerr = s.computePair(ctx, runner, i, p, key)
					}
					if cerr == nil && publish != nil {
						publish(key, cdata)
					}
					return cdata, cerr
				})
				if err == nil {
					s.registerNear(spec, key)
				}
				serves[i] = pairServe{key: key, data: data, cached: cached, err: err}
			}(i, p)
		}
	}()

	var firstWedge error
	for i, p := range pairs {
		<-ready[i]
		key, data, cached, err := serves[i].key, serves[i].data, serves[i].cached, serves[i].err
		if err != nil {
			if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
				s.finishJob(j, start, err)
				return err
			}
			// Degraded pair: record and continue, like Sweep.
			s.admission.record(opt.Fidelity, errors.Is(err, amp.ErrWedged))
			if firstWedge == nil && errors.Is(err, amp.ErrWedged) {
				firstWedge = err
			}
			j.appendResult(PairResult{
				Index: i, Pair: p.Label(), Key: key,
				Failed: true, Err: err.Error(),
			})
			s.pairsServed.Inc()
			continue
		}
		if !cached { // cache hits say nothing about engine health
			s.admission.record(opt.Fidelity, false)
		}
		var r PairResult
		if err := json.Unmarshal(data, &r); err != nil {
			s.finishJob(j, start, fmt.Errorf("server: corrupt cache entry %s: %w", key, err))
			return nil // corrupt entry is not retryable
		}
		r.Cached = cached
		j.appendResult(r)
		s.pairsServed.Inc()
	}

	// Mirror Sweep's contract: a job only fails when no pair finished.
	st := j.status(false)
	if st.Completed > 0 && st.Failed == st.Completed && firstWedge != nil {
		err := fmt.Errorf("server: all %d pairs degraded: %w", st.Completed, firstWedge)
		s.finishJob(j, start, err)
		return err
	}
	if j.recovered && st.CacheHits > 0 {
		// A re-enqueued job that found pre-crash pairs in the cache is a
		// checkpointed resume: only the missing tail was re-simulated.
		s.checkpointResumes.Inc()
	}
	s.finishJob(j, start, nil)
	return nil
}

// computePair runs one pair under the three schedulers and marshals
// the comparison record. A wedged or panicking run surfaces as an
// error (never cached).
func (s *Server) computePair(ctx context.Context, runner *experiments.Runner, i int, p experiments.Pair, key string) ([]byte, error) {
	proposed, err := runner.RunPairContext(ctx, i, p, runner.ProposedFactory())
	if err != nil {
		return nil, err
	}
	m, err := runner.Matrix()
	if err != nil {
		return nil, err
	}
	hpe, err := runner.RunPairContext(ctx, i, p, runner.HPEFactory(m))
	if err != nil {
		return nil, err
	}
	rr, err := runner.RunPairContext(ctx, i, p, runner.RRFactory(1))
	if err != nil {
		return nil, err
	}
	return marshalPairResult(i, p, key, proposed, hpe, rr)
}

// marshalPairResult builds the canonical comparison record from one
// pair's three runs — the single encoding behind both the
// pair-at-a-time and batched compute paths, so the cache bytes cannot
// depend on which path produced them.
func marshalPairResult(i int, p experiments.Pair, key string, proposed, hpe, rr amp.Result) ([]byte, error) {
	vsHPE, err := metrics.Compare(proposed, hpe)
	if err != nil {
		return nil, err
	}
	vsRR, err := metrics.Compare(proposed, rr)
	if err != nil {
		return nil, err
	}
	r := PairResult{
		Index:            i,
		Pair:             p.Label(),
		Key:              key,
		Proposed:         schedResult(proposed),
		HPE:              schedResult(hpe),
		RR:               schedResult(rr),
		WeightedVsHPEPct: vsHPE.WeightedPct,
		WeightedVsRRPct:  vsRR.WeightedPct,
		GeoVsHPEPct:      vsHPE.GeoPct,
		GeoVsRRPct:       vsRR.GeoPct,
	}
	return json.Marshal(r)
}

// runNXMJob executes an nxm scaling job: one cached unit per core
// count, each comparing every N×M policy on one machine. Mirrors
// runJob's degraded-unit and cancellation contracts.
func (s *Server) runNXMJob(ctx context.Context, j *jobEntry, runner *experiments.Runner, opt experiments.Options, rungs []int) error {
	start := time.Now() //ampvet:allow determinism job latency measurement is inherently wall-clock
	if !j.setState(jobqueue.StateRunning, "") {
		return nil // canceled before the worker picked it up
	}
	if s.chaos != nil {
		s.chaos.MaybeStall()
		s.chaos.MaybePanic() // recovered by the queue into a retryable job error
	}
	if err := s.appendJournal(recStart, idRecord{ID: j.id}); err != nil {
		s.journalErrors.Inc()
	}
	// The HPE rank and two-phase policies consume the profiled ratio
	// matrix; force it before the rung loop, like runJob does.
	if _, err := runner.Matrix(); err != nil {
		s.finishJob(j, start, err)
		return err
	}

	p := experiments.ResolveNXM(opt)
	var firstWedge error
	for i, n := range rungs {
		if cerr := ctx.Err(); cerr != nil {
			s.finishJob(j, start, cerr)
			return cerr
		}
		spec := nxmKeySpec(s.coreDigest, opt, n)
		key := CacheKey(spec)
		label := fmt.Sprintf("nxm:%dx%d", n, n*p.ThreadsPerCore)
		data, cached, err := s.cache.Do(ctx, key, func() ([]byte, error) {
			return s.computeNXMUnit(ctx, runner, i, n, label, key)
		})
		if err != nil {
			if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
				s.finishJob(j, start, err)
				return err
			}
			s.admission.record(opt.Fidelity, errors.Is(err, amp.ErrWedged))
			if firstWedge == nil && errors.Is(err, amp.ErrWedged) {
				firstWedge = err
			}
			j.appendResult(PairResult{
				Index: i, Pair: label, Key: key,
				Failed: true, Err: err.Error(),
			})
			s.pairsServed.Inc()
			continue
		}
		if !cached {
			s.admission.record(opt.Fidelity, false)
		}
		var r PairResult
		if err := json.Unmarshal(data, &r); err != nil {
			s.finishJob(j, start, fmt.Errorf("server: corrupt cache entry %s: %w", key, err))
			return nil // corrupt entry is not retryable
		}
		// Rung position is job-local (unlike pairs, it is not part of
		// the key, so jobs listing the same core count share entries).
		r.Index = i
		r.Cached = cached
		j.appendResult(r)
		s.pairsServed.Inc()
	}

	st := j.status(false)
	if st.Completed > 0 && st.Failed == st.Completed && firstWedge != nil {
		err := fmt.Errorf("server: all %d nxm rungs degraded: %w", st.Completed, firstWedge)
		s.finishJob(j, start, err)
		return err
	}
	if j.recovered && st.CacheHits > 0 {
		s.checkpointResumes.Inc()
	}
	s.finishJob(j, start, nil)
	return nil
}

// computeNXMUnit runs one nxm rung and marshals its record.
func (s *Server) computeNXMUnit(ctx context.Context, runner *experiments.Runner, i, n int, label, key string) ([]byte, error) {
	unit, err := experiments.RunNXMUnitContext(ctx, runner, n)
	if err != nil {
		return nil, err
	}
	r := PairResult{
		Index: i,
		Pair:  label,
		Key:   key,
		NXM:   &unit,
	}
	return json.Marshal(r)
}

// schedResult compresses an amp.Result for the wire.
func schedResult(res amp.Result) SchedResult {
	return SchedResult{
		Cycles: res.Cycles,
		Swaps:  res.Swaps,
		IPCPerWatt: [2]float64{
			res.Threads[0].IPCPerWatt, res.Threads[1].IPCPerWatt,
		},
		Committed: [2]uint64{
			res.Threads[0].Committed, res.Threads[1].Committed,
		},
	}
}

// finishJob settles the job entry's terminal state and counters (the
// first terminal transition wins, so a racing cancel is not counted
// twice). A successful job's results are flushed to disk before its
// done record is journaled — a job the journal calls done has durable
// result bytes, so recovery never re-registers a done job whose
// results a client could no longer fetch.
func (s *Server) finishJob(j *jobEntry, start time.Time, err error) {
	s.jobLatencyUS.Observe(uint64(time.Since(start).Microseconds())) //ampvet:allow determinism job latency measurement is inherently wall-clock
	switch {
	case err == nil:
		if j.setState(jobqueue.StateDone, "") {
			s.flushCacheRetry()
			s.journalTerminal(j.id, jobqueue.StateDone, "")
			s.jobsCompleted.Inc()
		}
	case errors.Is(err, context.Canceled), errors.Is(err, context.DeadlineExceeded):
		if j.setState(jobqueue.StateCanceled, err.Error()) {
			s.journalTerminal(j.id, jobqueue.StateCanceled, err.Error())
			s.jobsCanceled.Inc()
		}
	default:
		if j.setState(jobqueue.StateFailed, err.Error()) {
			s.journalTerminal(j.id, jobqueue.StateFailed, err.Error())
			s.jobsFailed.Inc()
		}
	}
}

// flushCacheRetry persists dirty cache entries, retrying so injected
// disk faults converge (each retry only rewrites what is still
// dirty). Persistent failure is counted, not fatal: the entry stays
// dirty for the next flush.
func (s *Server) flushCacheRetry() {
	var err error
	for attempt := 0; attempt < journalAppendRetries; attempt++ {
		if err = s.cache.Save(); err == nil {
			return
		}
	}
	if err != nil {
		s.journalErrors.Inc()
	}
}

// Drain gracefully stops the service: refuse new jobs, let the queue
// finish (or, past ctx, cancel) the backlog, then persist the cache.
// Completed pair outcomes are never lost: they are already appended to
// their job entries and resident in the cache, which Save flushes.
func (s *Server) Drain(ctx context.Context) error {
	s.draining.Store(true)
	qerr := s.queue.Drain(ctx)
	s.stopFlusher()
	if err := s.cache.Save(); err != nil {
		if qerr == nil {
			qerr = err
		}
	}
	if s.journal != nil {
		if err := s.journal.Close(); err != nil && qerr == nil {
			qerr = err
		}
	}
	return qerr
}

// Close cancels everything immediately (still persists the cache and
// closes the journal).
func (s *Server) Close() error {
	s.draining.Store(true)
	s.batchCancel() // in-flight shared batches end at their next cancellation check
	s.queue.Close()
	s.stopFlusher()
	err := s.cache.Save()
	if s.journal != nil {
		if jerr := s.journal.Close(); jerr != nil && err == nil {
			err = jerr
		}
	}
	return err
}

// Handler returns the service mux, including the telemetry /metrics
// endpoint.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/jobs", s.handleSubmit)
	mux.HandleFunc("GET /v1/jobs/{id}", s.handleStatus)
	mux.HandleFunc("GET /v1/jobs/{id}/stream", s.handleStream)
	mux.HandleFunc("DELETE /v1/jobs/{id}", s.handleCancel)
	mux.HandleFunc("GET /v1/results/{key}", s.handleResult)
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("GET /readyz", func(w http.ResponseWriter, r *http.Request) {
		if s.draining.Load() {
			http.Error(w, "draining", http.StatusServiceUnavailable)
			return
		}
		if s.admission.shedding(s.queue.Stats()) {
			http.Error(w, "shedding: backlog cost over admission bound", http.StatusServiceUnavailable)
			return
		}
		if open := s.admission.openBreakers(); len(open) > 0 {
			// Still ready — other fidelities serve — but degraded; report
			// which breakers refuse traffic so probes and operators see it.
			fmt.Fprintf(w, "ready (degraded: breaker open for %v)\n", open)
			return
		}
		fmt.Fprintln(w, "ready")
	})
	mux.Handle("GET /metrics", telemetry.Handler(s.tel.Registry()))
	return countRequests(s.httpRequests, mux)
}

// countRequests wraps the mux with the request counter.
func countRequests(c *telemetry.Counter, next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		c.Inc()
		next.ServeHTTP(w, r)
	})
}

// apiError writes a JSON error body with the given status.
func apiError(w http.ResponseWriter, status int, err error) {
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(map[string]string{"error": err.Error()})
}

// handleSubmit implements POST /v1/jobs.
// handleSubmit accepts one JobSpec object, or a JSON array of specs
// for atomic group submission (all accepted or all refused; the group
// enqueues adjacently so its pairs co-batch).
func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	body, err := io.ReadAll(r.Body)
	if err != nil {
		apiError(w, http.StatusBadRequest, fmt.Errorf("reading job spec: %w", err))
		return
	}
	trimmed := bytes.TrimLeft(body, " \t\r\n")
	batch := len(trimmed) > 0 && trimmed[0] == '['

	var entries []*jobEntry
	if batch {
		var specs []JobSpec
		if err := json.Unmarshal(body, &specs); err != nil {
			apiError(w, http.StatusBadRequest, fmt.Errorf("decoding job spec batch: %w", err))
			return
		}
		entries, err = s.SubmitMany(specs)
	} else {
		var sp JobSpec
		if err := json.Unmarshal(body, &sp); err != nil {
			apiError(w, http.StatusBadRequest, fmt.Errorf("decoding job spec: %w", err))
			return
		}
		var j *jobEntry
		j, err = s.Submit(sp)
		entries = []*jobEntry{j}
	}
	var oe *OverloadError
	switch {
	case err == nil:
	case errors.As(err, &oe):
		retryAfter := int(oe.RetryAfter/time.Second) + 1
		w.Header().Set("Retry-After", strconv.Itoa(retryAfter))
		if errors.Is(err, ErrBreakerOpen) {
			apiError(w, http.StatusServiceUnavailable, err)
		} else {
			apiError(w, http.StatusTooManyRequests, err)
		}
		return
	case errors.Is(err, jobqueue.ErrQueueFull):
		w.Header().Set("Retry-After", "1")
		apiError(w, http.StatusTooManyRequests, err)
		return
	case errors.Is(err, jobqueue.ErrClosed):
		apiError(w, http.StatusServiceUnavailable, err)
		return
	default:
		apiError(w, http.StatusBadRequest, err)
		return
	}
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	w.WriteHeader(http.StatusAccepted)
	if batch {
		statuses := make([]JobStatus, len(entries))
		for i, j := range entries {
			statuses[i] = j.status(false)
		}
		_ = json.NewEncoder(w).Encode(statuses)
		return
	}
	_ = json.NewEncoder(w).Encode(entries[0].status(false))
}

// handleStatus implements GET /v1/jobs/{id}.
func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	j, ok := s.job(r.PathValue("id"))
	if !ok {
		apiError(w, http.StatusNotFound, fmt.Errorf("unknown job %q", r.PathValue("id")))
		return
	}
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	_ = json.NewEncoder(w).Encode(j.status(true))
}

// handleCancel implements DELETE /v1/jobs/{id}.
func (s *Server) handleCancel(w http.ResponseWriter, r *http.Request) {
	j, ok := s.job(r.PathValue("id"))
	if !ok {
		apiError(w, http.StatusNotFound, fmt.Errorf("unknown job %q", r.PathValue("id")))
		return
	}
	j.qjob.Cancel()
	if j.setState(jobqueue.StateCanceled, "canceled by client") {
		s.journalTerminal(j.id, jobqueue.StateCanceled, "canceled by client")
		s.jobsCanceled.Inc()
	}
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	w.WriteHeader(http.StatusAccepted)
	_ = json.NewEncoder(w).Encode(j.status(false))
}

// handleResult implements GET /v1/results/{key}.
func (s *Server) handleResult(w http.ResponseWriter, r *http.Request) {
	key := r.PathValue("key")
	data, ok := s.cache.Peek(key)
	if !ok {
		apiError(w, http.StatusNotFound, fmt.Errorf("no cached result %q", key))
		return
	}
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	_, _ = w.Write(data)
}

// handleStream implements GET /v1/jobs/{id}/stream: NDJSON, one
// PairResult per line as each completes, then a terminal status line
// {"done":true,...}. The stream follows a live job and replays a
// finished one.
func (s *Server) handleStream(w http.ResponseWriter, r *http.Request) {
	j, ok := s.job(r.PathValue("id"))
	if !ok {
		apiError(w, http.StatusNotFound, fmt.Errorf("unknown job %q", r.PathValue("id")))
		return
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	flusher, _ := w.(http.Flusher)
	enc := json.NewEncoder(w)
	sent := 0
	for {
		j.mu.Lock()
		for sent >= len(j.results) && !terminal(j.state) {
			ch := j.notify
			j.mu.Unlock()
			select {
			case <-ch:
			case <-r.Context().Done():
				return
			}
			j.mu.Lock()
		}
		batch := append([]PairResult(nil), j.results[sent:]...)
		state := j.state
		errMsg := j.errMsg
		j.mu.Unlock()

		for _, pr := range batch {
			if err := enc.Encode(pr); err != nil {
				return
			}
			sent++
		}
		if flusher != nil {
			flusher.Flush()
		}
		if terminal(state) {
			final := struct {
				Done  bool   `json:"done"`
				State string `json:"state"`
				Error string `json:"error,omitempty"`
			}{Done: true, State: state.String(), Error: errMsg}
			_ = enc.Encode(final)
			if flusher != nil {
				flusher.Flush()
			}
			return
		}
	}
}
