// Package server turns the simulator into a long-running
// simulation-as-a-service daemon (cmd/ampserve): an HTTP/JSON API over
// a bounded priority job queue (internal/jobqueue), a content-
// addressed result cache with singleflight deduplication and optional
// disk persistence, and NDJSON streaming of per-pair outcomes as they
// complete.
//
// Endpoints:
//
//	POST   /v1/jobs           submit a pair sweep or explicit pair list
//	GET    /v1/jobs/{id}      job status (+results when done)
//	GET    /v1/jobs/{id}/stream  NDJSON per-pair outcomes, live
//	DELETE /v1/jobs/{id}      cancel
//	GET    /v1/results/{key}  one cached pair record by content address
//	GET    /healthz           liveness
//	GET    /readyz            readiness (503 while draining)
//	GET    /metrics           telemetry registry snapshot
//
// Expensive shared state — the §V profiling pass and the Fig. 3/4
// estimators — is computed once per distinct option set and shared
// across every job (experiments.Runner's lazy accessors are
// concurrency-safe), so a warm server answers repeat sweeps from the
// cache and serves new ones without re-profiling.
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"ampsched/internal/amp"
	"ampsched/internal/cpu"
	"ampsched/internal/experiments"
	"ampsched/internal/jobqueue"
	"ampsched/internal/metrics"
	"ampsched/internal/telemetry"
)

// Config assembles a Server.
type Config struct {
	// BaseOptions are the experiment defaults a JobSpec inherits from
	// and overrides; zero value means experiments.DefaultOptions.
	BaseOptions experiments.Options
	// MaxPairsPerJob rejects oversized sweeps (0 = 400).
	MaxPairsPerJob int
	// Queue sizes the work queue (Telemetry and Retryable are wired by
	// New; MaxRetries defaults to 2).
	Queue jobqueue.Config
	// Cache sizes the result cache (Telemetry is wired by New).
	Cache CacheConfig
	// Telemetry receives server, queue and simulation metrics; nil
	// disables them (the /metrics endpoint then serves an empty
	// registry).
	Telemetry *telemetry.Telemetry
}

// Server is the simulation service. Create with New, expose Handler,
// and stop with Drain (graceful) or Close (immediate).
type Server struct {
	cfg   Config
	tel   *telemetry.Telemetry
	cache *Cache
	queue *jobqueue.Queue

	baseOpt    experiments.Options
	coreDigest string

	mu      sync.Mutex
	jobs    map[string]*jobEntry
	runners map[string]*experiments.Runner

	nextID   atomic.Uint64
	draining atomic.Bool

	jobsSubmitted *telemetry.Counter
	jobsCompleted *telemetry.Counter
	jobsFailed    *telemetry.Counter
	jobsCanceled  *telemetry.Counter
	jobsRejected  *telemetry.Counter
	pairsServed   *telemetry.Counter
	jobLatencyUS  *telemetry.Histogram
	httpRequests  *telemetry.Counter
}

// New builds a Server and starts its worker pool.
func New(cfg Config) (*Server, error) {
	baseOpt := cfg.BaseOptions
	if baseOpt == (experiments.Options{}) {
		baseOpt = experiments.DefaultOptions()
	}
	if baseOpt.Pairs <= 0 {
		baseOpt.Pairs = 1
	}
	if err := baseOpt.Validate(); err != nil {
		return nil, fmt.Errorf("server: base options: %w", err)
	}
	if cfg.MaxPairsPerJob == 0 {
		cfg.MaxPairsPerJob = 400
	}

	qcfg := cfg.Queue
	qcfg.Telemetry = cfg.Telemetry
	if qcfg.MaxRetries == 0 {
		qcfg.MaxRetries = 2
	}
	// A wedged simulation is the service's canonical transient failure:
	// the fault-injection layer can wedge a run that a retry (same
	// seeds, but a fresh system) may complete under a different
	// interleaving of queue load. Everything else is deterministic and
	// not worth re-running.
	if qcfg.Retryable == nil {
		qcfg.Retryable = func(err error) bool { return errors.Is(err, amp.ErrWedged) }
	}
	queue, err := jobqueue.New(qcfg)
	if err != nil {
		return nil, err
	}

	ccfg := cfg.Cache
	ccfg.Telemetry = cfg.Telemetry
	cache, err := NewCache(ccfg)
	if err != nil {
		queue.Close()
		return nil, err
	}

	tel := cfg.Telemetry
	s := &Server{
		cfg:        cfg,
		tel:        tel,
		cache:      cache,
		queue:      queue,
		baseOpt:    baseOpt,
		jobs:       make(map[string]*jobEntry),
		runners:    make(map[string]*experiments.Runner),
		coreDigest: CoreDigest(cpu.IntCoreConfig(), cpu.FPCoreConfig()),

		jobsSubmitted: tel.Counter("server.jobs_submitted"),
		jobsCompleted: tel.Counter("server.jobs_completed"),
		jobsFailed:    tel.Counter("server.jobs_failed"),
		jobsCanceled:  tel.Counter("server.jobs_canceled"),
		jobsRejected:  tel.Counter("server.jobs_rejected"),
		pairsServed:   tel.Counter("server.pairs_served"),
		jobLatencyUS:  tel.Histogram("server.job_latency_us"),
		httpRequests:  tel.Counter("server.http_requests"),
	}
	return s, nil
}

// Cache exposes the result cache (tests, warm-up, persistence).
func (s *Server) Cache() *Cache { return s.cache }

// Queue exposes the work queue (tests, stats).
func (s *Server) Queue() *jobqueue.Queue { return s.queue }

// optionsFor resolves a spec against the base options.
func (s *Server) optionsFor(sp JobSpec) (experiments.Options, error) {
	opt := s.baseOpt
	if sp.Seed != 0 {
		opt.Seed = sp.Seed
	}
	if sp.InstrLimit != 0 {
		opt.InstrLimit = sp.InstrLimit
	}
	if sp.ContextSwitch != 0 {
		opt.ContextSwitch = sp.ContextSwitch
	}
	if sp.SwapOverhead != 0 {
		opt.SwapOverhead = sp.SwapOverhead
	}
	if sp.Fidelity != "" {
		opt.Fidelity = sp.Fidelity
	}
	// Pair execution never uses Options.Pairs/Parallelism; normalize
	// them so runners dedupe on what actually matters.
	opt.Pairs = 1
	opt.Parallelism = 1
	if err := opt.Validate(); err != nil {
		return opt, err
	}
	return opt, nil
}

// runnerFor returns the shared Runner for opt, creating it on first
// use. Runners hold the profiled matrices/surfaces, so all jobs with
// the same options share one profiling pass.
func (s *Server) runnerFor(opt experiments.Options) (*experiments.Runner, error) {
	b, err := json.Marshal(opt)
	if err != nil {
		return nil, fmt.Errorf("server: hashing options: %w", err)
	}
	key := string(b)
	s.mu.Lock()
	defer s.mu.Unlock()
	if r, ok := s.runners[key]; ok {
		return r, nil
	}
	r, err := experiments.NewRunner(opt)
	if err != nil {
		return nil, err
	}
	r.Telemetry = s.tel
	s.runners[key] = r
	return r, nil
}

// Submit validates and enqueues a job, returning its entry. Maps to
// POST /v1/jobs; also the programmatic entry point for tests.
func (s *Server) Submit(sp JobSpec) (*jobEntry, error) {
	if s.draining.Load() {
		s.jobsRejected.Inc()
		return nil, jobqueue.ErrClosed
	}
	opt, err := s.optionsFor(sp)
	if err != nil {
		return nil, err
	}
	pairs, err := sp.resolvePairs(opt)
	if err != nil {
		return nil, err
	}
	if len(pairs) > s.cfg.MaxPairsPerJob {
		return nil, fmt.Errorf("server: %d pairs exceeds per-job limit %d", len(pairs), s.cfg.MaxPairsPerJob)
	}
	runner, err := s.runnerFor(opt)
	if err != nil {
		return nil, err
	}

	id := strconv.FormatUint(s.nextID.Add(1), 10)
	j := newJobEntry(id, sp)
	task := func(ctx context.Context) error {
		return s.runJob(ctx, j, runner, opt, pairs)
	}
	qjob, err := s.queue.TrySubmit(task, jobqueue.SubmitOptions{
		Priority: sp.Priority,
		Deadline: time.Duration(sp.TimeoutMS) * time.Millisecond,
	})
	if err != nil {
		s.jobsRejected.Inc()
		return nil, err
	}
	j.qjob = qjob
	// A job the queue settles without ever running its task (canceled
	// or aborted while pending) has nothing else to settle its entry —
	// mirror the queue's terminal state as a backstop.
	go func() {
		<-qjob.Done()
		switch qjob.State() {
		case jobqueue.StateCanceled:
			if j.setState(jobqueue.StateCanceled, "canceled before start") {
				s.jobsCanceled.Inc()
			}
		case jobqueue.StateFailed:
			if qerr := qjob.Err(); qerr != nil && j.setState(jobqueue.StateFailed, qerr.Error()) {
				s.jobsFailed.Inc()
			}
		}
	}()
	s.mu.Lock()
	s.jobs[id] = j
	s.mu.Unlock()
	s.jobsSubmitted.Inc()
	return j, nil
}

// job looks up a submitted job by id.
func (s *Server) job(id string) (*jobEntry, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	return j, ok
}

// runJob executes one job's pairs in order, serving each from the
// cache when possible and appending outcomes as they complete. It is
// the queue task: its error classifies retry (wedged) vs terminal.
func (s *Server) runJob(ctx context.Context, j *jobEntry, runner *experiments.Runner, opt experiments.Options, pairs []experiments.Pair) error {
	start := time.Now() //ampvet:allow determinism job latency measurement is inherently wall-clock
	if !j.setState(jobqueue.StateRunning, "") {
		return nil // canceled before the worker picked it up
	}
	// Force the shared profiling pass and estimator build before the
	// per-pair loop so every pair's timing excludes it; concurrent
	// jobs collapse onto one computation (Runner is concurrency-safe).
	if _, err := runner.Matrix(); err != nil {
		s.finishJob(j, start, err)
		return err
	}

	var firstWedge error
	for i, p := range pairs {
		if cerr := ctx.Err(); cerr != nil {
			s.finishJob(j, start, cerr)
			return cerr
		}
		spec := pairKeySpec(s.coreDigest, opt, i, p)
		key := CacheKey(spec)
		data, cached, err := s.cache.Do(ctx, key, func() ([]byte, error) {
			return s.computePair(ctx, runner, i, p, key)
		})
		if err != nil {
			if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
				s.finishJob(j, start, err)
				return err
			}
			// Degraded pair: record and continue, like Sweep.
			if firstWedge == nil && errors.Is(err, amp.ErrWedged) {
				firstWedge = err
			}
			j.appendResult(PairResult{
				Index: i, Pair: p.Label(), Key: key,
				Failed: true, Err: err.Error(),
			})
			s.pairsServed.Inc()
			continue
		}
		var r PairResult
		if err := json.Unmarshal(data, &r); err != nil {
			s.finishJob(j, start, fmt.Errorf("server: corrupt cache entry %s: %w", key, err))
			return nil // corrupt entry is not retryable
		}
		r.Cached = cached
		j.appendResult(r)
		s.pairsServed.Inc()
	}

	// Mirror Sweep's contract: a job only fails when no pair finished.
	st := j.status(false)
	if st.Completed > 0 && st.Failed == st.Completed && firstWedge != nil {
		err := fmt.Errorf("server: all %d pairs degraded: %w", st.Completed, firstWedge)
		s.finishJob(j, start, err)
		return err
	}
	s.finishJob(j, start, nil)
	return nil
}

// computePair runs one pair under the three schedulers and marshals
// the comparison record. A wedged or panicking run surfaces as an
// error (never cached).
func (s *Server) computePair(ctx context.Context, runner *experiments.Runner, i int, p experiments.Pair, key string) ([]byte, error) {
	proposed, err := runner.RunPairContext(ctx, i, p, runner.ProposedFactory())
	if err != nil {
		return nil, err
	}
	m, err := runner.Matrix()
	if err != nil {
		return nil, err
	}
	hpe, err := runner.RunPairContext(ctx, i, p, runner.HPEFactory(m))
	if err != nil {
		return nil, err
	}
	rr, err := runner.RunPairContext(ctx, i, p, runner.RRFactory(1))
	if err != nil {
		return nil, err
	}
	vsHPE, err := metrics.Compare(proposed, hpe)
	if err != nil {
		return nil, err
	}
	vsRR, err := metrics.Compare(proposed, rr)
	if err != nil {
		return nil, err
	}
	r := PairResult{
		Index:            i,
		Pair:             p.Label(),
		Key:              key,
		Proposed:         schedResult(proposed),
		HPE:              schedResult(hpe),
		RR:               schedResult(rr),
		WeightedVsHPEPct: vsHPE.WeightedPct,
		WeightedVsRRPct:  vsRR.WeightedPct,
		GeoVsHPEPct:      vsHPE.GeoPct,
		GeoVsRRPct:       vsRR.GeoPct,
	}
	return json.Marshal(r)
}

// schedResult compresses an amp.Result for the wire.
func schedResult(res amp.Result) SchedResult {
	return SchedResult{
		Cycles: res.Cycles,
		Swaps:  res.Swaps,
		IPCPerWatt: [2]float64{
			res.Threads[0].IPCPerWatt, res.Threads[1].IPCPerWatt,
		},
		Committed: [2]uint64{
			res.Threads[0].Committed, res.Threads[1].Committed,
		},
	}
}

// finishJob settles the job entry's terminal state and counters (the
// first terminal transition wins, so a racing cancel is not counted
// twice).
func (s *Server) finishJob(j *jobEntry, start time.Time, err error) {
	s.jobLatencyUS.Observe(uint64(time.Since(start).Microseconds())) //ampvet:allow determinism job latency measurement is inherently wall-clock
	switch {
	case err == nil:
		if j.setState(jobqueue.StateDone, "") {
			s.jobsCompleted.Inc()
		}
	case errors.Is(err, context.Canceled), errors.Is(err, context.DeadlineExceeded):
		if j.setState(jobqueue.StateCanceled, err.Error()) {
			s.jobsCanceled.Inc()
		}
	default:
		if j.setState(jobqueue.StateFailed, err.Error()) {
			s.jobsFailed.Inc()
		}
	}
}

// Drain gracefully stops the service: refuse new jobs, let the queue
// finish (or, past ctx, cancel) the backlog, then persist the cache.
// Completed pair outcomes are never lost: they are already appended to
// their job entries and resident in the cache, which Save flushes.
func (s *Server) Drain(ctx context.Context) error {
	s.draining.Store(true)
	qerr := s.queue.Drain(ctx)
	if err := s.cache.Save(); err != nil {
		if qerr == nil {
			qerr = err
		}
	}
	return qerr
}

// Close cancels everything immediately (still persists the cache).
func (s *Server) Close() error {
	s.draining.Store(true)
	s.queue.Close()
	return s.cache.Save()
}

// Handler returns the service mux, including the telemetry /metrics
// endpoint.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/jobs", s.handleSubmit)
	mux.HandleFunc("GET /v1/jobs/{id}", s.handleStatus)
	mux.HandleFunc("GET /v1/jobs/{id}/stream", s.handleStream)
	mux.HandleFunc("DELETE /v1/jobs/{id}", s.handleCancel)
	mux.HandleFunc("GET /v1/results/{key}", s.handleResult)
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("GET /readyz", func(w http.ResponseWriter, r *http.Request) {
		if s.draining.Load() {
			http.Error(w, "draining", http.StatusServiceUnavailable)
			return
		}
		fmt.Fprintln(w, "ready")
	})
	mux.Handle("GET /metrics", telemetry.Handler(s.tel.Registry()))
	return countRequests(s.httpRequests, mux)
}

// countRequests wraps the mux with the request counter.
func countRequests(c *telemetry.Counter, next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		c.Inc()
		next.ServeHTTP(w, r)
	})
}

// apiError writes a JSON error body with the given status.
func apiError(w http.ResponseWriter, status int, err error) {
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(map[string]string{"error": err.Error()})
}

// handleSubmit implements POST /v1/jobs.
func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var sp JobSpec
	if err := json.NewDecoder(r.Body).Decode(&sp); err != nil {
		apiError(w, http.StatusBadRequest, fmt.Errorf("decoding job spec: %w", err))
		return
	}
	j, err := s.Submit(sp)
	switch {
	case err == nil:
	case errors.Is(err, jobqueue.ErrQueueFull):
		w.Header().Set("Retry-After", "1")
		apiError(w, http.StatusTooManyRequests, err)
		return
	case errors.Is(err, jobqueue.ErrClosed):
		apiError(w, http.StatusServiceUnavailable, err)
		return
	default:
		apiError(w, http.StatusBadRequest, err)
		return
	}
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	w.WriteHeader(http.StatusAccepted)
	_ = json.NewEncoder(w).Encode(j.status(false))
}

// handleStatus implements GET /v1/jobs/{id}.
func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	j, ok := s.job(r.PathValue("id"))
	if !ok {
		apiError(w, http.StatusNotFound, fmt.Errorf("unknown job %q", r.PathValue("id")))
		return
	}
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	_ = json.NewEncoder(w).Encode(j.status(true))
}

// handleCancel implements DELETE /v1/jobs/{id}.
func (s *Server) handleCancel(w http.ResponseWriter, r *http.Request) {
	j, ok := s.job(r.PathValue("id"))
	if !ok {
		apiError(w, http.StatusNotFound, fmt.Errorf("unknown job %q", r.PathValue("id")))
		return
	}
	j.qjob.Cancel()
	if j.setState(jobqueue.StateCanceled, "canceled by client") {
		s.jobsCanceled.Inc()
	}
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	w.WriteHeader(http.StatusAccepted)
	_ = json.NewEncoder(w).Encode(j.status(false))
}

// handleResult implements GET /v1/results/{key}.
func (s *Server) handleResult(w http.ResponseWriter, r *http.Request) {
	key := r.PathValue("key")
	data, ok := s.cache.Peek(key)
	if !ok {
		apiError(w, http.StatusNotFound, fmt.Errorf("no cached result %q", key))
		return
	}
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	_, _ = w.Write(data)
}

// handleStream implements GET /v1/jobs/{id}/stream: NDJSON, one
// PairResult per line as each completes, then a terminal status line
// {"done":true,...}. The stream follows a live job and replays a
// finished one.
func (s *Server) handleStream(w http.ResponseWriter, r *http.Request) {
	j, ok := s.job(r.PathValue("id"))
	if !ok {
		apiError(w, http.StatusNotFound, fmt.Errorf("unknown job %q", r.PathValue("id")))
		return
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	flusher, _ := w.(http.Flusher)
	enc := json.NewEncoder(w)
	sent := 0
	for {
		j.mu.Lock()
		for sent >= len(j.results) && !terminal(j.state) {
			ch := j.notify
			j.mu.Unlock()
			select {
			case <-ch:
			case <-r.Context().Done():
				return
			}
			j.mu.Lock()
		}
		batch := append([]PairResult(nil), j.results[sent:]...)
		state := j.state
		errMsg := j.errMsg
		j.mu.Unlock()

		for _, pr := range batch {
			if err := enc.Encode(pr); err != nil {
				return
			}
			sent++
		}
		if flusher != nil {
			flusher.Flush()
		}
		if terminal(state) {
			final := struct {
				Done  bool   `json:"done"`
				State string `json:"state"`
				Error string `json:"error,omitempty"`
			}{Done: true, State: state.String(), Error: errMsg}
			_ = enc.Encode(final)
			if flusher != nil {
				flusher.Flush()
			}
			return
		}
	}
}
