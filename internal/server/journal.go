package server

import (
	"encoding/json"
	"fmt"
	"strconv"
	"strings"

	"ampsched/internal/jobqueue"
	"ampsched/internal/wal"
)

// The durable job journal. When Config.JournalDir is set, every job
// transition is appended to a write-ahead log (internal/wal) so a
// crashed server can be restarted without losing acknowledged work:
//
//   - submit is journaled (append + fsync) before POST /v1/jobs
//     returns 202 — acknowledged implies journaled;
//   - terminal states (done / failed / canceled) are journaled after
//     the result cache has been flushed, so a job the journal calls
//     done has durable result bytes;
//   - Recover replays the journal, re-registers terminal jobs, and
//     re-enqueues every job that never reached a terminal record.
//     Re-enqueued jobs are idempotent: each pair is content-addressed
//     (KeySpec), so pairs that finished before the crash are served
//     from the persisted cache, not re-simulated.
//
// A torn append (crash or injected fault mid-frame) follows the WAL's
// contract: the writer retries with a fresh frame and replay resyncs
// past the garbage, so at most duplicate records appear — never a
// half-applied state, because replay folds records by job id with
// terminal-wins semantics.

// Journal record types.
const (
	recSubmit byte = 1 // payload: submitRecord
	recStart  byte = 2 // payload: idRecord
	recDone   byte = 3 // payload: idRecord
	recFail   byte = 4 // payload: failRecord
	recCancel byte = 5 // payload: idRecord
)

type submitRecord struct {
	ID   string  `json:"id"`
	Spec JobSpec `json:"spec"`
}

type idRecord struct {
	ID string `json:"id"`
}

type failRecord struct {
	ID    string `json:"id"`
	Error string `json:"error,omitempty"`
}

// journalAppendRetries bounds the torn-write retry loop. Each retry
// writes a complete fresh frame; replay CRC-skips any torn prefix.
const journalAppendRetries = 8

// appendJournal appends one record, retrying torn/refused writes, then
// fsyncs. A nil journal (journaling disabled) is a no-op.
func (s *Server) appendJournal(typ byte, payload any) error {
	if s.journal == nil {
		return nil
	}
	data, err := json.Marshal(payload)
	if err != nil {
		return fmt.Errorf("server: marshaling journal record: %w", err)
	}
	rec := wal.Record{Type: typ, Data: data}
	for attempt := 1; ; attempt++ {
		if err = s.journal.Append(rec); err == nil {
			break
		}
		if attempt >= journalAppendRetries {
			return fmt.Errorf("server: journal append failed after %d attempts: %w", attempt, err)
		}
	}
	for attempt := 1; ; attempt++ {
		if err = s.journal.Sync(); err == nil {
			return nil
		}
		if attempt >= journalAppendRetries {
			return fmt.Errorf("server: journal sync failed after %d attempts: %w", attempt, err)
		}
	}
}

// journalTerminal records a job's terminal state. Best-effort beyond
// the retry loop: a lost terminal record only means the job re-runs
// (idempotently) after a crash, never that work is lost.
func (s *Server) journalTerminal(id string, state jobqueue.State, errMsg string) {
	var err error
	switch state {
	case jobqueue.StateDone:
		err = s.appendJournal(recDone, idRecord{ID: id})
	case jobqueue.StateFailed:
		err = s.appendJournal(recFail, failRecord{ID: id, Error: errMsg})
	case jobqueue.StateCanceled:
		err = s.appendJournal(recCancel, idRecord{ID: id})
	}
	if err != nil {
		s.journalErrors.Inc()
	}
}

// RecoveryStats summarizes one Recover pass.
type RecoveryStats struct {
	// Jobs is the number of distinct job ids seen in the journal.
	Jobs int
	// Requeued counts non-terminal jobs re-enqueued for execution.
	Requeued int
	// Terminal counts jobs re-registered in their final state.
	Terminal int
	// Replay carries the WAL-level damage accounting (dropped records,
	// quarantined segments).
	Replay wal.ReplayStats
}

// recoveredJob folds a job's journal records.
type recoveredJob struct {
	spec     JobSpec
	hasSpec  bool
	state    jobqueue.State
	terminal bool
	errMsg   string
	order    int
}

// Recover replays the job journal and restores server state: jobs
// with a terminal record come back queryable in that state; jobs
// without one are re-enqueued (counted by server.jobs_recovered).
// Corrupt journal segments are quarantined by the WAL layer, never
// fatal. Call once, after Cache().Load() and before serving traffic.
func (s *Server) Recover() (RecoveryStats, error) {
	var stats RecoveryStats
	if s.journal == nil {
		return stats, nil
	}
	jobs := make(map[string]*recoveredJob)
	get := func(id string) *recoveredJob {
		rj, ok := jobs[id]
		if !ok {
			rj = &recoveredJob{state: jobqueue.StatePending, order: len(jobs)}
			jobs[id] = rj
		}
		return rj
	}
	replay, err := wal.Replay(s.journal.Dir(), func(r wal.Record) error {
		switch r.Type {
		case recSubmit:
			var sr submitRecord
			if err := json.Unmarshal(r.Data, &sr); err != nil || sr.ID == "" {
				return nil // damaged payload: skip, like a CRC miss
			}
			rj := get(sr.ID)
			rj.spec, rj.hasSpec = sr.Spec, true
		case recStart:
			var ir idRecord
			if err := json.Unmarshal(r.Data, &ir); err != nil || ir.ID == "" {
				return nil
			}
			if rj := get(ir.ID); !rj.terminal {
				rj.state = jobqueue.StateRunning
			}
		case recDone:
			var ir idRecord
			if err := json.Unmarshal(r.Data, &ir); err != nil || ir.ID == "" {
				return nil
			}
			rj := get(ir.ID)
			rj.state, rj.terminal = jobqueue.StateDone, true
		case recFail:
			var fr failRecord
			if err := json.Unmarshal(r.Data, &fr); err != nil || fr.ID == "" {
				return nil
			}
			rj := get(fr.ID)
			rj.state, rj.terminal, rj.errMsg = jobqueue.StateFailed, true, fr.Error
		case recCancel:
			var ir idRecord
			if err := json.Unmarshal(r.Data, &ir); err != nil || ir.ID == "" {
				return nil
			}
			rj := get(ir.ID)
			rj.state, rj.terminal = jobqueue.StateCanceled, true
		}
		return nil
	})
	if err != nil {
		return stats, fmt.Errorf("server: replaying job journal: %w", err)
	}
	stats.Replay = replay
	stats.Jobs = len(jobs)

	// Resume the id sequence past everything journaled, so new jobs
	// never collide with recovered ones. Fleet-mode ids carry this
	// node's namespace prefix; ids from another namespace (a journal
	// dir reused across identities) cannot collide with minted ids
	// anyway, so they are skipped.
	var maxID uint64
	for id := range jobs { //ampvet:allow determinism max over ids is order-independent
		if s.idPrefix != "" && !strings.HasPrefix(id, s.idPrefix) {
			continue
		}
		seq := strings.TrimPrefix(id, s.idPrefix)
		if n, perr := strconv.ParseUint(seq, 10, 64); perr == nil && n > maxID {
			maxID = n
		}
	}
	for cur := s.nextID.Load(); cur < maxID && !s.nextID.CompareAndSwap(cur, maxID); cur = s.nextID.Load() {
	}

	// Re-register and re-enqueue in journal order so recovered traffic
	// keeps its original arrival order.
	ids := make([]string, 0, len(jobs))
	for id := range jobs { //ampvet:allow determinism ids are sorted by journal order below
		ids = append(ids, id)
	}
	sortByOrder(ids, jobs)
	for _, id := range ids {
		rj := jobs[id]
		if rj.terminal {
			j := newJobEntry(id, rj.spec)
			j.recovered = true
			j.setState(rj.state, rj.errMsg)
			s.mu.Lock()
			s.jobs[id] = j
			s.mu.Unlock()
			stats.Terminal++
			continue
		}
		if !rj.hasSpec {
			// A start record whose submit record was lost to corruption:
			// nothing to re-run.
			continue
		}
		if _, err := s.submit(rj.spec, id, true); err != nil {
			// Spec no longer valid (options drifted) or queue refused:
			// register the job failed rather than losing it silently.
			j := newJobEntry(id, rj.spec)
			j.recovered = true
			j.setState(jobqueue.StateFailed, fmt.Sprintf("recovery resubmit: %v", err))
			s.mu.Lock()
			s.jobs[id] = j
			s.mu.Unlock()
			stats.Terminal++
			continue
		}
		stats.Requeued++
		s.jobsRecovered.Inc()
	}
	return stats, nil
}

// sortByOrder sorts ids by their first appearance in the journal.
func sortByOrder(ids []string, jobs map[string]*recoveredJob) {
	for i := 1; i < len(ids); i++ {
		for j := i; j > 0 && jobs[ids[j]].order < jobs[ids[j-1]].order; j-- {
			ids[j], ids[j-1] = ids[j-1], ids[j]
		}
	}
}
