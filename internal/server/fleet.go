// Fleet seams: the narrow surface internal/cluster builds on. The
// cluster layer wraps a Server without reaching into its internals —
// it installs two hooks on the pair compute path (SetCluster) and
// drives jobs through a handful of exported accessors. Everything
// here preserves the server's core invariant: cache bytes are a pure
// function of the KeySpec, so a record fetched from a peer, returned
// by a stealer, or computed locally is byte-identical.
package server

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"sort"

	"ampsched/internal/jobqueue"
)

// jobIDPrefix derives the minted-id namespace from Config.JobIDSpace:
// "" stays "" (bare sequential ids, the single-node format), anything
// else becomes an 8-hex-char digest plus "-". Hashing keeps node
// addresses — colons, dots — out of URL path segments while two
// distinct nodes still get distinct prefixes.
func jobIDPrefix(space string) string {
	if space == "" {
		return ""
	}
	sum := sha256.Sum256([]byte(space))
	return hex.EncodeToString(sum[:4]) + "-"
}

// RemoteLookup is consulted on a pair cache miss before local
// compute: given the pair's content address it may return the record
// bytes obtained elsewhere (a peer's cache, or a work-stealing claim
// being fulfilled). Returning ok=false falls through to local
// compute. It runs inside the cache's singleflight, so concurrent
// requests for one key cost one lookup.
type RemoteLookup func(ctx context.Context, key string) ([]byte, bool)

// ResultPublish receives every locally simulated pair record (never
// cache hits or remote fetches) so the cluster layer can replicate it
// to the key's rendezvous owner. It must not block: the compute path
// holds the cache singleflight for this key while it runs.
type ResultPublish func(key string, data []byte)

// SetCluster installs (or, with nils, removes) the fleet hooks.
// Safe to call while jobs are running — journal recovery re-enqueues
// jobs before cmd/ampserve can wire the cluster, so the hooks are
// read under the server lock at each pair.
func (s *Server) SetCluster(remote RemoteLookup, publish ResultPublish) {
	s.mu.Lock()
	s.remote = remote
	s.publish = publish
	s.mu.Unlock()
}

// clusterHooks snapshots the installed hooks.
func (s *Server) clusterHooks() (RemoteLookup, ResultPublish) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.remote, s.publish
}

// Draining reports whether the server has stopped accepting jobs —
// surfaced to peers through the cluster health endpoint so stealers
// skip a node that is shutting down.
func (s *Server) Draining() bool { return s.draining.Load() }

// SubmitSpec is Submit for callers outside the package (the cluster
// layer's work-stealing executor): it enqueues sp and returns the new
// job's id.
func (s *Server) SubmitSpec(sp JobSpec) (string, error) {
	j, err := s.Submit(sp)
	if err != nil {
		return "", err
	}
	return j.id, nil
}

// Status returns the API status of a submitted job, with results.
func (s *Server) Status(id string) (JobStatus, bool) {
	j, ok := s.job(id)
	if !ok {
		return JobStatus{}, false
	}
	return j.status(true), true
}

// WaitJob blocks until job id reaches a terminal state or ctx ends,
// returning the job's final status (with results).
func (s *Server) WaitJob(ctx context.Context, id string) (JobStatus, error) {
	j, ok := s.job(id)
	if !ok {
		return JobStatus{}, fmt.Errorf("server: unknown job %q", id)
	}
	for {
		j.mu.Lock()
		done := terminal(j.state)
		ch := j.notify
		j.mu.Unlock()
		if done {
			return j.status(true), nil
		}
		select {
		case <-ch:
		case <-ctx.Done():
			return JobStatus{}, ctx.Err()
		}
	}
}

// PairKeys resolves a pair job spec to its content addresses in pair
// order — the identity a stealer needs to return records to the
// owner's cache. NXM jobs have no pair keys here (they are not
// stealable; their units are machine-wide, not per-pair).
func (s *Server) PairKeys(sp JobSpec) ([]string, error) {
	if sp.NXM != nil {
		return nil, fmt.Errorf("server: nxm jobs have no pair keys")
	}
	opt, err := s.optionsFor(sp)
	if err != nil {
		return nil, err
	}
	pairs, err := sp.resolvePairs(opt)
	if err != nil {
		return nil, err
	}
	keys := make([]string, len(pairs))
	for i, p := range pairs {
		keys[i] = CacheKey(pairKeySpec(s.coreDigest, opt, i, p))
	}
	return keys, nil
}

// StealableJob describes one pending pair job a peer may claim: the
// spec to re-run, the content addresses its results must land under,
// and the queue's cost estimate (jobqueue cost accounting, so
// stealers can weigh a claim like admission control does).
type StealableJob struct {
	ID   string
	Spec JobSpec
	Keys []string
	Cost float64
}

// StealableJobs lists still-pending pair jobs in steal order:
// least-urgent first (lowest priority, then newest submission), so
// claims take from the back of the priority queue and the owner keeps
// the jobs it will reach soonest. NXM jobs are excluded.
func (s *Server) StealableJobs(max int) []StealableJob {
	if max <= 0 {
		return nil
	}
	s.mu.Lock()
	entries := make([]*jobEntry, 0, len(s.jobs))
	for _, j := range s.jobs { //ampvet:allow determinism entries are sorted below before any observable effect
		entries = append(entries, j)
	}
	s.mu.Unlock()
	sort.Slice(entries, func(a, b int) bool {
		ja, jb := entries[a], entries[b]
		pa, pb := ja.spec.Priority, jb.spec.Priority
		if pa != pb {
			return pa < pb
		}
		return ja.qjob.ID() > jb.qjob.ID()
	})
	var out []StealableJob
	for _, j := range entries {
		if len(out) == max {
			break
		}
		if j.spec.NXM != nil || j.qjob == nil || j.qjob.State() != jobqueue.StatePending {
			continue
		}
		keys, err := s.PairKeys(j.spec)
		if err != nil {
			continue
		}
		out = append(out, StealableJob{ID: j.id, Spec: j.spec, Keys: keys, Cost: j.qjob.Cost()})
	}
	return out
}
