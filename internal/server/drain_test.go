package server

import (
	"context"
	"net/http"
	"testing"
	"time"
)

// TestDrainFinishesInFlightJobs is the graceful-shutdown acceptance
// test: with several sweep jobs in flight, Drain must let them finish,
// lose no completed pair outcomes, flip /readyz to 503, and reject new
// submissions — the SIGTERM path of cmd/ampserve.
func TestDrainFinishesInFlightJobs(t *testing.T) {
	dir := t.TempDir()
	s := newTestService(t, func(cfg *Config) {
		cfg.Queue.Workers = 4
		cfg.Queue.Capacity = 16
		cfg.Cache.Dir = dir
	})

	// Distinct seeds so every job simulates its own pairs (no cache
	// shortcuts hiding lost work).
	const jobs = 4
	ids := make([]string, jobs)
	for i := range ids {
		ids[i] = s.postJob(t, JobSpec{Pairs: 2, Seed: uint64(100 + i)}).ID
	}

	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	if err := s.srv.Drain(ctx); err != nil {
		t.Fatalf("drain: %v", err)
	}

	// Every job ran to completion with all its outcomes intact.
	for _, id := range ids {
		st := s.getStatus(t, id)
		if st.State != "done" {
			t.Fatalf("job %s drained in state %q (err %q), want done", id, st.State, st.Error)
		}
		if st.Completed != 2 || len(st.Results) != 2 {
			t.Fatalf("job %s lost outcomes: completed %d, results %d", id, st.Completed, len(st.Results))
		}
	}

	// The drained server is not ready and refuses new work.
	resp, err := http.Get(s.ts.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("/readyz after drain = %d, want 503", resp.StatusCode)
	}
	if _, code := s.tryPostJob(t, JobSpec{Pairs: 1}); code != http.StatusServiceUnavailable {
		t.Fatalf("submit after drain = %d, want 503", code)
	}

	// Drain persisted the cache: every completed pair is on disk.
	reload := mustCache(t, CacheConfig{ByteBudget: 1 << 20, Dir: dir})
	if err := reload.Load(); err != nil {
		t.Fatal(err)
	}
	if n := reload.Len(); n != jobs*2 {
		t.Fatalf("persisted %d pair records, want %d", n, jobs*2)
	}
}

// TestDrainDeadlineCancelsStragglers: a drain past its context cancels
// what is left instead of hanging, and already-completed work is kept.
func TestDrainDeadlineCancelsStragglers(t *testing.T) {
	s := newTestService(t, func(cfg *Config) {
		opt := testOptions()
		opt.InstrLimit = 500_000_000
		opt.Fidelity = "detailed"
		cfg.BaseOptions = opt
		cfg.Queue.Workers = 1
		cfg.Queue.Capacity = 8
	})
	id := s.postJob(t, JobSpec{Pairs: 4}).ID

	ctx, cancel := context.WithTimeout(context.Background(), 100*time.Millisecond)
	defer cancel()
	if err := s.srv.Drain(ctx); err == nil {
		t.Fatal("drain with expired deadline reported success on a straggler")
	}
	st := s.waitDone(t, id)
	if st.State != "canceled" {
		t.Fatalf("straggler state %q, want canceled", st.State)
	}
}
