// Content-addressed result keys. A simulation's outcome is a pure
// function of (benchmark pair, core configurations, scheduler suite,
// fidelity, seeds, swap overhead, run lengths) — the determinism the
// ampvet suite enforces — so a canonical hash of those inputs is a
// complete identity for the result: same key, same bytes, forever.
// The cache, the /v1/results API and cross-restart persistence all
// address results by this key.
package server

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"

	"ampsched/internal/cpu"
	"ampsched/internal/experiments"
)

// keySchemaVersion invalidates every cached result when the simulation
// or result encoding changes incompatibly. Bump on any change to the
// simulator's observable output for identical inputs.
const keySchemaVersion = 1

// KeySpec is the canonical identity of one pair run under the
// three-scheduler comparison suite. Field order is fixed (struct
// order) and encoding/json emits struct fields in declaration order,
// so the marshaled bytes are canonical.
type KeySpec struct {
	Version       int     `json:"v"`
	CoreDigest    string  `json:"cores"`
	BenchA        string  `json:"bench_a"`
	BenchB        string  `json:"bench_b"`
	PairIndex     int     `json:"pair_index"`
	Seed          uint64  `json:"seed"`
	InstrLimit    uint64  `json:"instr_limit"`
	ContextSwitch uint64  `json:"context_switch"`
	SwapOverhead  uint64  `json:"swap_overhead"`
	ProfileLimit  uint64  `json:"profile_limit"`
	CycleBudget   uint64  `json:"cycle_budget"`
	Fidelity      string  `json:"fidelity"`
	FaultRate     float64 `json:"fault_rate"`
	FaultSeed     uint64  `json:"fault_seed"`
	// Topology identifies an N×M machine for nxm scaling units; empty
	// for dual-core pair runs, so their marshaled keys (and therefore
	// every pre-existing cache entry) are unchanged.
	Topology string `json:"topology,omitempty"`
}

// CacheKey hashes the spec into its content address (hex SHA-256,
// filename- and URL-safe).
func CacheKey(spec KeySpec) string {
	b, err := json.Marshal(spec)
	if err != nil {
		// KeySpec is plain data; Marshal cannot fail. Keep the
		// invariant loud instead of silently colliding keys.
		panic(fmt.Sprintf("server: marshaling KeySpec: %v", err))
	}
	sum := sha256.Sum256(b)
	return hex.EncodeToString(sum[:])
}

// CoreDigest canonically hashes the two core configurations so a
// change to Table I/II parameters changes every result key.
func CoreDigest(intCfg, fpCfg *cpu.Config) string {
	b, err := json.Marshal([2]*cpu.Config{intCfg, fpCfg})
	if err != nil {
		panic(fmt.Sprintf("server: marshaling core configs: %v", err))
	}
	sum := sha256.Sum256(b)
	return hex.EncodeToString(sum[:8]) // 64 bits is plenty for a version tag
}

// pairKeySpec builds the KeySpec for pair index i of a job resolved
// against the runner's options.
func pairKeySpec(coreDigest string, opt experiments.Options, i int, p experiments.Pair) KeySpec {
	return KeySpec{
		Version:       keySchemaVersion,
		CoreDigest:    coreDigest,
		BenchA:        p.A.Name,
		BenchB:        p.B.Name,
		PairIndex:     i,
		Seed:          opt.Seed,
		InstrLimit:    opt.InstrLimit,
		ContextSwitch: opt.ContextSwitch,
		SwapOverhead:  opt.SwapOverhead,
		ProfileLimit:  opt.ProfileInstrLimit,
		CycleBudget:   opt.CycleBudget,
		Fidelity:      canonicalFidelity(opt.Fidelity),
		FaultRate:     opt.FaultRate,
		FaultSeed:     opt.FaultSeed,
	}
}

// nxmKeySpec builds the KeySpec for the n-core rung of an nxm job.
// The pair-only fields stay zero; PairIndex doubles as the core count
// and Topology pins the full machine shape. Knobs the nxm sweep does
// not read (InstrLimit, ContextSwitch, fault plan) are excluded so
// jobs differing only in them share rungs.
func nxmKeySpec(coreDigest string, opt experiments.Options, n int) KeySpec {
	p := experiments.ResolveNXM(opt)
	return KeySpec{
		Version:      keySchemaVersion,
		CoreDigest:   coreDigest,
		BenchA:       "nxm",
		PairIndex:    n,
		Seed:         opt.Seed,
		SwapOverhead: opt.SwapOverhead,
		ProfileLimit: opt.ProfileInstrLimit,
		CycleBudget:  opt.CycleBudget,
		Fidelity:     p.Fidelity,
		Topology:     fmt.Sprintf("%dx%d/q%d/h%d", n, n*p.ThreadsPerCore, p.Quantum, p.Cycles),
	}
}

// canonicalFidelity maps the default empty fidelity to its explicit
// name so "" and "detailed" share cache entries.
func canonicalFidelity(f string) string {
	if f == "" {
		return "detailed"
	}
	return f
}
