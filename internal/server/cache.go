package server

import (
	"container/list"
	"context"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"

	"ampsched/internal/telemetry"
)

// Cache is the content-addressed result store: an LRU map under a
// byte budget, with singleflight deduplication (concurrent identical
// requests compute once and share the bytes) and optional disk
// persistence (Save/Load) so a restarted server reuses prior sweeps.
//
// Values are immutable byte slices addressed by CacheKey output;
// callers must not mutate what Get/Do return.
//
// Telemetry (under "server."): cache_hits, cache_misses,
// cache_joined (singleflight collapses), cache_evictions counters and
// the cache_bytes / cache_entries gauges.
type Cache struct {
	budget    int64
	dir       string
	writeFile func(name string, data []byte, perm os.FileMode) error
	validate  func(data []byte) bool

	mu      sync.Mutex
	ll      *list.List // front = most recently used
	items   map[string]*list.Element
	used    int64
	dirty   map[string]bool // keys not yet persisted
	flights map[string]*flight

	hits      *telemetry.Counter
	misses    *telemetry.Counter
	joined    *telemetry.Counter
	evictions *telemetry.Counter
	corrupt   *telemetry.Counter
	bytes     *telemetry.Gauge
	entries   *telemetry.Gauge
}

// centry is one resident cache entry.
type centry struct {
	key  string
	data []byte
}

// flight is one in-progress computation other callers can join.
type flight struct {
	done chan struct{}
	data []byte
	err  error
}

// CacheConfig sizes a Cache.
type CacheConfig struct {
	// ByteBudget caps resident value bytes; 0 means 64 MiB.
	ByteBudget int64
	// Dir, when non-empty, enables disk persistence: Load reads prior
	// entries from it, Save writes new ones (one file per key).
	Dir string
	// WriteFile overrides the persistence write primitive (nil =
	// os.WriteFile) — the chaos harness's disk-fault seam. The tmp+
	// rename protocol around it means a torn or refused write never
	// corrupts a promoted entry.
	WriteFile func(name string, data []byte, perm os.FileMode) error
	// Validate, when non-nil, checks a loaded entry's content; entries
	// it rejects are quarantined like unreadable ones. The server wires
	// json.Valid here (every entry it stores is a JSON PairResult, so a
	// truncated file from a crash is detectable).
	Validate func(data []byte) bool
	// Telemetry receives cache metrics; nil disables them.
	Telemetry *telemetry.Telemetry
}

// NewCache builds an empty cache (call Load to warm it from disk).
func NewCache(cfg CacheConfig) (*Cache, error) {
	if cfg.ByteBudget < 0 {
		return nil, fmt.Errorf("server: negative cache byte budget")
	}
	if cfg.ByteBudget == 0 {
		cfg.ByteBudget = 64 << 20
	}
	if cfg.WriteFile == nil {
		cfg.WriteFile = os.WriteFile
	}
	tel := cfg.Telemetry
	return &Cache{
		budget:    cfg.ByteBudget,
		dir:       cfg.Dir,
		writeFile: cfg.WriteFile,
		validate:  cfg.Validate,
		ll:        list.New(),
		items:     make(map[string]*list.Element),
		dirty:     make(map[string]bool),
		flights:   make(map[string]*flight),
		hits:      tel.Counter("server.cache_hits"),
		misses:    tel.Counter("server.cache_misses"),
		joined:    tel.Counter("server.cache_joined"),
		evictions: tel.Counter("server.cache_evictions"),
		corrupt:   tel.Counter("server.cache_corrupt"),
		bytes:     tel.Gauge("server.cache_bytes"),
		entries:   tel.Gauge("server.cache_entries"),
	}, nil
}

// Get returns the cached bytes for key, refreshing its recency.
func (c *Cache) Get(key string) ([]byte, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[key]
	if !ok {
		c.misses.Inc()
		return nil, false
	}
	c.ll.MoveToFront(el)
	c.hits.Inc()
	return el.Value.(*centry).data, true
}

// Peek is Get without touching recency or hit/miss counters — for
// introspection endpoints.
func (c *Cache) Peek(key string) ([]byte, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[key]
	if !ok {
		return nil, false
	}
	return el.Value.(*centry).data, true
}

// Put inserts (or refreshes) key with data, evicting LRU entries past
// the byte budget. Values larger than the whole budget are admitted
// alone (the cache holds at least the latest result).
func (c *Cache) Put(key string, data []byte) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.put(key, data)
}

// put is Put under c.mu.
func (c *Cache) put(key string, data []byte) {
	if el, ok := c.items[key]; ok {
		e := el.Value.(*centry)
		c.used += int64(len(data)) - int64(len(e.data))
		e.data = data
		c.ll.MoveToFront(el)
	} else {
		c.items[key] = c.ll.PushFront(&centry{key: key, data: data})
		c.used += int64(len(data))
		c.dirty[key] = true
	}
	for c.used > c.budget && c.ll.Len() > 1 {
		back := c.ll.Back()
		e := back.Value.(*centry)
		c.ll.Remove(back)
		delete(c.items, e.key)
		c.used -= int64(len(e.data))
		delete(c.dirty, e.key) // unsaved evictee is simply recomputed later
		c.evictions.Inc()
	}
	c.bytes.Set(float64(c.used))
	c.entries.Set(float64(c.ll.Len()))
}

// Do returns the bytes for key, computing them at most once across
// concurrent callers: a resident entry is a hit; a caller that finds
// an in-flight computation joins it (counted as cache_joined and, on
// success, a hit — the simulation ran once); otherwise the caller
// computes, populates the cache, and returns hit=false.
//
// ctx bounds only this caller's wait on a joined flight — the
// computation itself belongs to the caller that started it.
func (c *Cache) Do(ctx context.Context, key string, compute func() ([]byte, error)) (data []byte, hit bool, err error) {
	c.mu.Lock()
	if el, ok := c.items[key]; ok {
		c.ll.MoveToFront(el)
		c.hits.Inc()
		data = el.Value.(*centry).data
		c.mu.Unlock()
		return data, true, nil
	}
	if f, ok := c.flights[key]; ok {
		c.joined.Inc()
		c.mu.Unlock()
		select {
		case <-f.done:
		case <-ctx.Done():
			return nil, false, ctx.Err()
		}
		if f.err != nil {
			return nil, false, f.err
		}
		c.hits.Inc()
		return f.data, true, nil
	}
	f := &flight{done: make(chan struct{})}
	c.flights[key] = f
	c.misses.Inc()
	c.mu.Unlock()

	f.data, f.err = compute()
	c.mu.Lock()
	delete(c.flights, key)
	if f.err == nil {
		c.put(key, f.data)
	}
	c.mu.Unlock()
	close(f.done)
	return f.data, false, f.err
}

// Len returns the resident entry count.
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}

// Bytes returns the resident value bytes.
func (c *Cache) Bytes() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.used
}

// Save persists every not-yet-saved resident entry to the cache
// directory, one "<key>.json" file per entry (the key is hex, so the
// name is safe). A cache without a directory saves nothing. Partial
// failures leave the remaining entries dirty and return the first
// error.
func (c *Cache) Save() error {
	if c.dir == "" {
		return nil
	}
	if err := os.MkdirAll(c.dir, 0o755); err != nil {
		return fmt.Errorf("server: cache dir: %w", err)
	}
	c.mu.Lock()
	keys := make([]string, 0, len(c.dirty))
	for k := range c.dirty { //ampvet:allow determinism keys are sorted below before any observable effect
		keys = append(keys, k)
	}
	sort.Strings(keys)
	entries := make(map[string][]byte, len(keys))
	for _, k := range keys {
		if el, ok := c.items[k]; ok {
			entries[k] = el.Value.(*centry).data
		}
	}
	c.mu.Unlock()

	var first error
	for _, k := range keys {
		data, ok := entries[k]
		if !ok {
			continue
		}
		path := filepath.Join(c.dir, k+".json")
		tmp := path + ".tmp"
		err := c.writeFile(tmp, data, 0o644)
		if err == nil {
			err = os.Rename(tmp, path)
		} else {
			os.Remove(tmp) // a torn tmp file must never linger
		}
		if err != nil {
			if first == nil {
				first = fmt.Errorf("server: persisting cache entry %s: %w", k, err)
			}
			continue
		}
		c.mu.Lock()
		delete(c.dirty, k)
		c.mu.Unlock()
	}
	return first
}

// Load reads previously saved entries from the cache directory into
// memory (up to the byte budget; files load in name order, so which
// survive a crowded budget is deterministic). Loaded entries are
// clean — Save will not rewrite them. Missing directory is not an
// error: a first run simply starts cold.
//
// A corrupt or truncated entry — unreadable, or not the valid JSON
// every entry is written as — is quarantined: renamed to
// "<name>.corrupt", counted in server.cache_corrupt, and skipped. One
// damaged file (a torn write from a crash mid-Save) must not cost the
// rest of the cache, and its key simply recomputes on next use.
func (c *Cache) Load() error {
	if c.dir == "" {
		return nil
	}
	des, err := os.ReadDir(c.dir)
	if err != nil {
		if os.IsNotExist(err) {
			return nil
		}
		return fmt.Errorf("server: reading cache dir: %w", err)
	}
	for _, de := range des {
		name := de.Name()
		if de.IsDir() || !strings.HasSuffix(name, ".json") {
			continue
		}
		key := strings.TrimSuffix(name, ".json")
		path := filepath.Join(c.dir, name)
		data, err := os.ReadFile(path)
		if err != nil || (c.validate != nil && !c.validate(data)) {
			c.quarantine(path)
			continue
		}
		c.mu.Lock()
		if _, ok := c.items[key]; !ok && c.used+int64(len(data)) <= c.budget {
			c.items[key] = c.ll.PushFront(&centry{key: key, data: data})
			c.used += int64(len(data))
		}
		c.bytes.Set(float64(c.used))
		c.entries.Set(float64(c.ll.Len()))
		c.mu.Unlock()
	}
	return nil
}

// quarantine renames a damaged cache file out of the load path
// (best-effort: an unrenamable file is just skipped again next boot).
func (c *Cache) quarantine(path string) {
	c.corrupt.Inc()
	_ = os.Rename(path, path+".corrupt")
}
