package server

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"ampsched/internal/jobqueue"
	"ampsched/internal/telemetry"
)

// Overload protection. Two mechanisms gate Submit:
//
//   - Cost-based load shedding: each job carries an estimated cost
//     (pairs x a fidelity weight — a detailed pair costs ~100x an
//     interval pair). When the queue's backlog cost plus the new job
//     would exceed AdmissionConfig.MaxPendingCost, the job is shed
//     with HTTP 429 and a Retry-After sized to the backlog. Shedding
//     by cost catches the failure mode a depth limit misses: a few
//     detailed-fidelity sweeps can out-weigh hundreds of interval
//     jobs.
//
//   - A per-fidelity circuit breaker: when the recent wedge rate for
//     one fidelity crosses BreakerTripRate, that fidelity is refused
//     (HTTP 503 + Retry-After) for BreakerCooldown, then a half-open
//     probe decides between closing and re-tripping. Fidelities trip
//     independently — a pathological detailed-engine workload must not
//     take interval traffic down with it.

// ErrShed marks a job refused by cost-based load shedding.
var ErrShed = errors.New("server: overloaded, job shed")

// ErrBreakerOpen marks a job refused by a tripped circuit breaker.
var ErrBreakerOpen = errors.New("server: circuit breaker open")

// OverloadError wraps ErrShed/ErrBreakerOpen with the retry hint the
// HTTP layer turns into a Retry-After header.
type OverloadError struct {
	Err        error
	RetryAfter time.Duration
}

func (e *OverloadError) Error() string { return e.Err.Error() }
func (e *OverloadError) Unwrap() error { return e.Err }

// AdmissionConfig tunes overload protection. The zero value disables
// load shedding and enables the breaker with defaults.
type AdmissionConfig struct {
	// MaxPendingCost sheds submissions that would push the queue's
	// estimated backlog cost past this bound; 0 disables shedding.
	MaxPendingCost float64
	// RetryAfter is the shed retry hint (0 = 1s).
	RetryAfter time.Duration
	// BreakerWindow is the per-fidelity outcome window (0 = 20; < 0
	// disables the breaker).
	BreakerWindow int
	// BreakerTripRate is the wedge fraction, over a full window, that
	// trips the breaker (0 = 0.5).
	BreakerTripRate float64
	// BreakerCooldown is how long a tripped breaker refuses jobs
	// before probing half-open (0 = 5s).
	BreakerCooldown time.Duration
}

// fidelityCostWeight scales a pair's admission cost by engine expense
// (calibrated roughly to relative simulated-instruction throughput).
func fidelityCostWeight(fidelity string) float64 {
	switch fidelity {
	case "detailed":
		return 100
	case "sampled":
		return 10
	default: // interval
		return 1
	}
}

// jobCost estimates one job's expense in weighted pairs.
func jobCost(fidelity string, pairs int) float64 {
	return float64(pairs) * fidelityCostWeight(fidelity)
}

// breakerState is a circuit breaker's position.
type breakerState int

const (
	breakerClosed breakerState = iota
	breakerOpen
	breakerHalfOpen
)

// breaker is one fidelity's circuit breaker.
type breaker struct {
	window   []bool // ring: true = wedged outcome
	idx      int
	filled   int
	wedged   int
	state    breakerState
	openedAt time.Time
}

// admission is the server's overload-protection state.
type admission struct {
	cfg AdmissionConfig

	mu       sync.Mutex
	breakers map[string]*breaker

	shed  *telemetry.Counter
	trips *telemetry.Counter
}

func newAdmission(cfg AdmissionConfig, tel *telemetry.Telemetry) *admission {
	if cfg.RetryAfter == 0 {
		cfg.RetryAfter = time.Second
	}
	if cfg.BreakerWindow == 0 {
		cfg.BreakerWindow = 20
	}
	if cfg.BreakerTripRate == 0 {
		cfg.BreakerTripRate = 0.5
	}
	if cfg.BreakerCooldown == 0 {
		cfg.BreakerCooldown = 5 * time.Second
	}
	return &admission{
		cfg:      cfg,
		breakers: make(map[string]*breaker),
		shed:     tel.Counter("server.jobs_shed"),
		trips:    tel.Counter("server.breaker_trips"),
	}
}

// admit gates one submission of the given cost, against the queue's
// current backlog. It returns an *OverloadError wrapping ErrShed or
// ErrBreakerOpen when the job must be refused.
func (a *admission) admit(fidelity string, cost float64, qs jobqueue.Stats) error {
	a.mu.Lock()
	defer a.mu.Unlock()
	if b, ok := a.breakers[fidelity]; ok && b.state != breakerClosed {
		elapsed := time.Since(b.openedAt) //ampvet:allow determinism breaker cooldown is inherently wall-clock
		if b.state == breakerOpen {
			if elapsed < a.cfg.BreakerCooldown {
				a.shed.Inc()
				return &OverloadError{
					Err:        fmt.Errorf("%w for fidelity %q", ErrBreakerOpen, fidelity),
					RetryAfter: a.cfg.BreakerCooldown - elapsed,
				}
			}
			b.state = breakerHalfOpen // cooldown over: admit probes
		}
	}
	if a.cfg.MaxPendingCost > 0 && qs.PendingCost+qs.RunningCost+cost > a.cfg.MaxPendingCost {
		a.shed.Inc()
		return &OverloadError{
			Err: fmt.Errorf("%w: backlog cost %.0f + job cost %.0f exceeds %.0f",
				ErrShed, qs.PendingCost+qs.RunningCost, cost, a.cfg.MaxPendingCost),
			RetryAfter: a.cfg.RetryAfter,
		}
	}
	return nil
}

// record feeds one computed pair outcome into fidelity's breaker.
func (a *admission) record(fidelity string, wedged bool) {
	if a.cfg.BreakerWindow < 0 {
		return
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	b, ok := a.breakers[fidelity]
	if !ok {
		b = &breaker{window: make([]bool, a.cfg.BreakerWindow)}
		a.breakers[fidelity] = b
	}
	switch b.state {
	case breakerHalfOpen:
		if wedged {
			// The probe failed: re-open for a fresh cooldown.
			b.state = breakerOpen
			b.openedAt = time.Now() //ampvet:allow determinism breaker cooldown is inherently wall-clock
			a.trips.Inc()
		} else {
			// The probe succeeded: close and forget the bad window.
			b.state = breakerClosed
			b.idx, b.filled, b.wedged = 0, 0, 0
			for i := range b.window {
				b.window[i] = false
			}
		}
	case breakerClosed:
		if b.window[b.idx] {
			b.wedged--
		}
		b.window[b.idx] = wedged
		if wedged {
			b.wedged++
		}
		b.idx = (b.idx + 1) % len(b.window)
		if b.filled < len(b.window) {
			b.filled++
		}
		if b.filled == len(b.window) &&
			float64(b.wedged) >= a.cfg.BreakerTripRate*float64(len(b.window)) {
			b.state = breakerOpen
			b.openedAt = time.Now() //ampvet:allow determinism breaker cooldown is inherently wall-clock
			a.trips.Inc()
		}
	case breakerOpen:
		// In-flight jobs admitted before the trip still report; their
		// outcomes are irrelevant until the half-open probe.
	}
}

// openBreakers lists fidelities currently refusing traffic (sorted, so
// readyz output is stable).
func (a *admission) openBreakers() []string {
	a.mu.Lock()
	defer a.mu.Unlock()
	var open []string
	for fid, b := range a.breakers { //ampvet:allow determinism sorted before return
		if b.state == breakerOpen {
			open = append(open, fid)
		}
	}
	sort.Strings(open)
	return open
}

// shedding reports whether a zero-cost submission would currently be
// refused — i.e. the backlog alone is past the bound (readyz signal).
func (a *admission) shedding(qs jobqueue.Stats) bool {
	return a.cfg.MaxPendingCost > 0 && qs.PendingCost+qs.RunningCost > a.cfg.MaxPendingCost
}
