package server

import (
	"context"
	"fmt"
	"testing"
)

// BenchmarkServerCacheKey measures the content-address hash on the hot
// submission path (one hash per pair per job).
func BenchmarkServerCacheKey(b *testing.B) {
	spec := KeySpec{
		Version:       keySchemaVersion,
		CoreDigest:    "0011223344556677",
		BenchA:        "gcc",
		BenchB:        "swim",
		PairIndex:     7,
		Seed:          42,
		InstrLimit:    250_000_000,
		ContextSwitch: 2_500_000,
		SwapOverhead:  1000,
		ProfileLimit:  50_000_000,
		Fidelity:      "interval",
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		spec.PairIndex = i
		if CacheKey(spec) == "" {
			b.Fatal("empty key")
		}
	}
}

// BenchmarkServerCacheHit measures the resident-entry fast path of
// Cache.Do — what a warm server pays per pair on a repeat sweep.
func BenchmarkServerCacheHit(b *testing.B) {
	c := mustCacheB(b, CacheConfig{ByteBudget: 1 << 20})
	keys := make([]string, 64)
	for i := range keys {
		keys[i] = fmt.Sprintf("%016x", i)
		c.Put(keys[i], []byte("cached pair record"))
	}
	ctx := context.Background()
	compute := func() ([]byte, error) { return nil, fmt.Errorf("must not compute") }
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, hit, err := c.Do(ctx, keys[i%len(keys)], compute)
		if err != nil || !hit {
			b.Fatalf("hit=%v err=%v", hit, err)
		}
	}
}

func mustCacheB(b *testing.B, cfg CacheConfig) *Cache {
	b.Helper()
	c, err := NewCache(cfg)
	if err != nil {
		b.Fatal(err)
	}
	return c
}
