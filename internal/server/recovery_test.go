package server

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"ampsched/internal/jobqueue"
	"ampsched/internal/telemetry"
	"ampsched/internal/wal"
)

// writeJournal hand-writes journal records into dir, standing in for
// the state a kill -9'd server leaves behind (no terminal record for
// in-flight jobs).
func writeJournal(t *testing.T, dir string, recs ...wal.Record) {
	t.Helper()
	l, err := wal.Open(dir, wal.Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range recs {
		if err := l.Append(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
}

func rec(t *testing.T, typ byte, payload any) wal.Record {
	t.Helper()
	data, err := json.Marshal(payload)
	if err != nil {
		t.Fatal(err)
	}
	return wal.Record{Type: typ, Data: data}
}

// TestJournalRecoveryRequeuesIncompleteJobs: a journal holding one
// finished job and one that never reached a terminal record. Recovery
// re-registers the first and re-runs the second to completion.
func TestJournalRecoveryRequeuesIncompleteJobs(t *testing.T) {
	jdir := t.TempDir()
	spec := JobSpec{Pairs: 2, Seed: 44}
	writeJournal(t, jdir,
		rec(t, recSubmit, submitRecord{ID: "7", Spec: spec}),
		rec(t, recStart, idRecord{ID: "7"}), // crashed mid-run
		rec(t, recSubmit, submitRecord{ID: "9", Spec: spec}),
		rec(t, recDone, idRecord{ID: "9"}),
	)

	s := newTestService(t, func(cfg *Config) { cfg.JournalDir = jdir })
	stats, err := s.srv.Recover()
	if err != nil {
		t.Fatal(err)
	}
	if stats.Jobs != 2 || stats.Requeued != 1 || stats.Terminal != 1 {
		t.Fatalf("RecoveryStats = %+v, want 2 jobs, 1 requeued, 1 terminal", stats)
	}
	if got := s.tel.Counter("server.jobs_recovered").Value(); got != 1 {
		t.Fatalf("jobs_recovered = %d, want 1", got)
	}

	// The finished job is queryable in its final state.
	done := s.getStatus(t, "9")
	if done.State != "done" || !done.Recovered {
		t.Fatalf("job 9 = %+v, want recovered done", done)
	}
	// The interrupted job re-runs to completion under its original id.
	st := s.waitDone(t, "7")
	if st.State != "done" || !st.Recovered || st.Completed != 2 {
		t.Fatalf("job 7 = %+v, want recovered done with 2 pairs", st)
	}
	// New ids continue past the recovered ones.
	if id := s.postJob(t, spec).ID; id != "10" {
		t.Fatalf("next id after recovery = %s, want 10", id)
	}
}

// TestRecoveryResumesFromCheckpointedCache: the crash-safety core. A
// first server completes a sweep and persists its cache; a journal
// says the same job never finished. The recovered job is served
// entirely from the persisted pairs — zero re-simulation — and counts
// as a checkpointed resume.
func TestRecoveryResumesFromCheckpointedCache(t *testing.T) {
	cdir, jdir := t.TempDir(), t.TempDir()
	spec := JobSpec{Pairs: 2, Seed: 44}

	s1 := newTestService(t, func(cfg *Config) { cfg.Cache.Dir = cdir })
	if st := s1.waitDone(t, s1.postJob(t, spec).ID); st.State != "done" {
		t.Fatalf("first run %q", st.State)
	}
	if err := s1.srv.Drain(context.Background()); err != nil {
		t.Fatal(err)
	}

	writeJournal(t, jdir, rec(t, recSubmit, submitRecord{ID: "3", Spec: spec}))

	s2 := newTestService(t, func(cfg *Config) {
		cfg.Cache.Dir = cdir
		cfg.JournalDir = jdir
	})
	if err := s2.srv.Cache().Load(); err != nil {
		t.Fatal(err)
	}
	stats, err := s2.srv.Recover()
	if err != nil {
		t.Fatal(err)
	}
	if stats.Requeued != 1 {
		t.Fatalf("RecoveryStats = %+v, want 1 requeued", stats)
	}
	st := s2.waitDone(t, "3")
	if st.State != "done" || st.CacheHits != 2 {
		t.Fatalf("recovered job = %+v, want done with 2 cache hits", st)
	}
	if misses := s2.tel.Counter("server.cache_misses").Value(); misses != 0 {
		t.Fatalf("recovered job re-simulated %d pairs", misses)
	}
	if got := s2.tel.Counter("server.checkpoint_resumes").Value(); got != 1 {
		t.Fatalf("checkpoint_resumes = %d, want 1", got)
	}
}

// TestRecoveryQuarantinesCorruptJournalSegment: a garbage segment must
// not fail boot; intact records still recover.
func TestRecoveryQuarantinesCorruptJournalSegment(t *testing.T) {
	jdir := t.TempDir()
	writeJournal(t, jdir,
		rec(t, recSubmit, submitRecord{ID: "1", Spec: JobSpec{Pairs: 1, Seed: 5}}),
		rec(t, recDone, idRecord{ID: "1"}),
	)
	if err := os.WriteFile(filepath.Join(jdir, "journal-00000005.wal"), []byte("not a journal"), 0o644); err != nil {
		t.Fatal(err)
	}

	s := newTestService(t, func(cfg *Config) { cfg.JournalDir = jdir })
	stats, err := s.srv.Recover()
	if err != nil {
		t.Fatal(err)
	}
	if stats.Replay.SegmentsQuarantined != 1 || stats.Terminal != 1 {
		t.Fatalf("RecoveryStats = %+v, want 1 quarantined segment and 1 terminal job", stats)
	}
	if st := s.getStatus(t, "1"); st.State != "done" {
		t.Fatalf("job 1 state %q, want done", st.State)
	}
}

// TestAcknowledgedImpliesJournaled: a submission the journal cannot
// record is refused, never silently accepted.
func TestAcknowledgedImpliesJournaled(t *testing.T) {
	jdir := t.TempDir()
	s := newTestService(t, func(cfg *Config) { cfg.JournalDir = jdir })

	// A successful submit leaves a durable submit record.
	id := s.postJob(t, JobSpec{Pairs: 1, Seed: 5}).ID
	s.waitDone(t, id)
	found := false
	if _, err := wal.Replay(jdir, func(r wal.Record) error {
		if r.Type == recSubmit {
			var sr submitRecord
			if json.Unmarshal(r.Data, &sr) == nil && sr.ID == id {
				found = true
			}
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if !found {
		t.Fatalf("no journal submit record for acknowledged job %s", id)
	}
}

func TestAdmissionShedsByCostWithRetryAfter(t *testing.T) {
	s := newTestService(t, func(cfg *Config) {
		cfg.Admission.MaxPendingCost = 1 // one interval pair
	})
	// 2 interval pairs cost 2 > 1: shed before it reaches the queue.
	resp, err := http.Post(s.ts.URL+"/v1/jobs", "application/json",
		strings.NewReader(`{"pairs": 2, "seed": 44}`))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("shed status %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("shed response missing Retry-After")
	}
	if got := s.tel.Counter("server.jobs_shed").Value(); got != 1 {
		t.Fatalf("jobs_shed = %d, want 1", got)
	}
	if _, err := s.srv.Submit(JobSpec{Pairs: 2, Seed: 44}); !errors.Is(err, ErrShed) {
		t.Fatalf("Submit error %v, want ErrShed", err)
	}
	// A job within the cost bound is admitted.
	if st := s.waitDone(t, s.postJob(t, JobSpec{Pairs: 1, Seed: 5}).ID); st.State != "done" {
		t.Fatalf("affordable job %q", st.State)
	}
}

// TestBreakerTripsPerFidelity exercises the circuit breaker state
// machine directly: trip on a wedge-heavy window, refuse that fidelity
// only, half-open after cooldown, close on a good probe.
func TestBreakerTripsPerFidelity(t *testing.T) {
	tel := telemetry.New()
	a := newAdmission(AdmissionConfig{
		BreakerWindow:   4,
		BreakerTripRate: 0.5,
		BreakerCooldown: 30 * time.Millisecond,
	}, tel)
	qs := jobqueue.Stats{}

	for i := 0; i < 4; i++ {
		a.record("detailed", true)
	}
	if got := tel.Counter("server.breaker_trips").Value(); got != 1 {
		t.Fatalf("breaker_trips = %d, want 1", got)
	}
	err := a.admit("detailed", 1, qs)
	if !errors.Is(err, ErrBreakerOpen) {
		t.Fatalf("tripped fidelity admitted: %v", err)
	}
	var oe *OverloadError
	if !errors.As(err, &oe) || oe.RetryAfter <= 0 {
		t.Fatalf("breaker refusal %v lacks a positive RetryAfter", err)
	}
	if err := a.admit("interval", 1, qs); err != nil {
		t.Fatalf("healthy fidelity refused: %v", err)
	}
	if open := a.openBreakers(); len(open) != 1 || open[0] != "detailed" {
		t.Fatalf("openBreakers = %v, want [detailed]", open)
	}

	time.Sleep(40 * time.Millisecond)
	if err := a.admit("detailed", 1, qs); err != nil {
		t.Fatalf("half-open probe refused: %v", err)
	}
	a.record("detailed", false) // probe succeeded: breaker closes
	if open := a.openBreakers(); len(open) != 0 {
		t.Fatalf("openBreakers after good probe = %v, want none", open)
	}
	for i := 0; i < 3; i++ { // window was reset: 3 wedges of 4 do not trip
		a.record("detailed", true)
	}
	if err := a.admit("detailed", 1, qs); err != nil {
		t.Fatalf("closed breaker refused: %v", err)
	}
}

func TestCacheLoadQuarantinesCorruptEntry(t *testing.T) {
	dir := t.TempDir()
	tel := telemetry.New()
	c, err := NewCache(CacheConfig{Dir: dir, Validate: json.Valid, Telemetry: tel})
	if err != nil {
		t.Fatal(err)
	}
	c.Put("aaaa", []byte(`{"ok":true}`))
	if err := c.Save(); err != nil {
		t.Fatal(err)
	}
	// A truncated entry, as a torn write would leave it.
	bad := filepath.Join(dir, "bbbb.json")
	if err := os.WriteFile(bad, []byte(`{"truncat`), 0o644); err != nil {
		t.Fatal(err)
	}

	c2, err := NewCache(CacheConfig{Dir: dir, Validate: json.Valid, Telemetry: tel})
	if err != nil {
		t.Fatal(err)
	}
	if err := c2.Load(); err != nil {
		t.Fatalf("Load with corrupt entry errored: %v", err)
	}
	if c2.Len() != 1 {
		t.Fatalf("loaded %d entries, want 1 (corrupt one skipped)", c2.Len())
	}
	if _, ok := c2.Peek("aaaa"); !ok {
		t.Fatal("intact entry lost")
	}
	if got := tel.Counter("server.cache_corrupt").Value(); got != 1 {
		t.Fatalf("cache_corrupt = %d, want 1", got)
	}
	if _, err := os.Stat(bad + ".corrupt"); err != nil {
		t.Fatalf("corrupt entry not quarantined: %v", err)
	}
	// Reload: the quarantined file no longer matches *.json, so the
	// second boot is clean.
	c3, err := NewCache(CacheConfig{Dir: dir, Validate: json.Valid})
	if err != nil {
		t.Fatal(err)
	}
	if err := c3.Load(); err != nil || c3.Len() != 1 {
		t.Fatalf("reload after quarantine: %v, %d entries", err, c3.Len())
	}
}

// TestCancelDuringDrainRacesJournalReplay drives the race the chaos
// harness cares about: clients canceling jobs while the server drains,
// journal records landing concurrently, then a second server replaying
// that journal. Run under -race; correctness here is "no torn state":
// every job the journal knows resolves to exactly one terminal state
// after recovery.
func TestCancelDuringDrainRacesJournalReplay(t *testing.T) {
	jdir := t.TempDir()
	s1 := newTestService(t, func(cfg *Config) {
		cfg.JournalDir = jdir
		cfg.Queue = jobqueue.Config{Workers: 2, Capacity: 32}
	})
	var entries []*jobEntry
	for i := 0; i < 8; i++ {
		j, err := s1.srv.Submit(JobSpec{Pairs: 1, Seed: uint64(40 + i)})
		if err != nil {
			t.Fatal(err)
		}
		entries = append(entries, j)
	}
	var wg sync.WaitGroup
	for i, j := range entries {
		if i%2 == 0 {
			continue
		}
		wg.Add(1)
		go func(j *jobEntry) {
			defer wg.Done()
			j.qjob.Cancel()
			if j.setState(jobqueue.StateCanceled, "canceled by client") {
				s1.srv.journalTerminal(j.id, jobqueue.StateCanceled, "canceled by client")
			}
		}(j)
	}
	drainErr := make(chan error, 1)
	go func() { drainErr <- s1.srv.Drain(context.Background()) }()
	wg.Wait()
	if err := <-drainErr; err != nil {
		t.Fatal(err)
	}

	s2 := newTestService(t, func(cfg *Config) { cfg.JournalDir = jdir })
	stats, err := s2.srv.Recover()
	if err != nil {
		t.Fatal(err)
	}
	if stats.Jobs != len(entries) {
		t.Fatalf("recovered %d journaled jobs, want %d", stats.Jobs, len(entries))
	}
	// Every journaled job resolves to one terminal state — re-run if the
	// drain race left it without a terminal record.
	for _, j := range entries {
		st := s2.waitDone(t, j.id)
		switch st.State {
		case "done", "canceled", "failed":
		default:
			t.Fatalf("job %s in state %q after recovery", j.id, st.State)
		}
	}
}
