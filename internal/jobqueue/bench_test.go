package jobqueue

import (
	"context"
	"testing"
)

// BenchmarkQueueSubmitComplete measures the full submit→run→settle
// round trip for a no-op task — the queue's fixed overhead per job.
func BenchmarkQueueSubmitComplete(b *testing.B) {
	q, err := New(Config{Workers: 4, Capacity: 64})
	if err != nil {
		b.Fatal(err)
	}
	defer q.Close()
	task := func(ctx context.Context) error { return nil }
	ctx := context.Background()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		j, err := q.Submit(ctx, task, SubmitOptions{})
		if err != nil {
			b.Fatal(err)
		}
		if err := j.Wait(ctx); err != nil {
			b.Fatal(err)
		}
	}
}
