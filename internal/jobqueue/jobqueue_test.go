package jobqueue

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"ampsched/internal/telemetry"
)

func newTestQueue(t *testing.T, cfg Config) *Queue {
	t.Helper()
	q, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(q.Close)
	return q
}

func TestSubmitAndComplete(t *testing.T) {
	tel := telemetry.New()
	q := newTestQueue(t, Config{Workers: 2, Capacity: 16, Telemetry: tel})
	var ran atomic.Int64
	var jobs []*Job
	for i := 0; i < 10; i++ {
		j, err := q.TrySubmit(func(ctx context.Context) error {
			ran.Add(1)
			return nil
		}, SubmitOptions{})
		if err != nil {
			t.Fatal(err)
		}
		jobs = append(jobs, j)
	}
	for _, j := range jobs {
		if err := j.Wait(context.Background()); err != nil {
			t.Fatal(err)
		}
		if s := j.State(); s != StateDone {
			t.Fatalf("state %v, want done", s)
		}
	}
	if got := ran.Load(); got != 10 {
		t.Fatalf("ran %d tasks, want 10", got)
	}
	if got := tel.Counter("jobqueue.completed").Value(); got != 10 {
		t.Fatalf("completed counter %d, want 10", got)
	}
}

func TestPriorityOrdering(t *testing.T) {
	q := newTestQueue(t, Config{Workers: 1, Capacity: 16})

	// Block the single worker so submissions pile up in the heap.
	release := make(chan struct{})
	blocker, err := q.TrySubmit(func(ctx context.Context) error {
		<-release
		return nil
	}, SubmitOptions{})
	if err != nil {
		t.Fatal(err)
	}
	// Wait for the blocker to actually occupy the worker.
	for q.Stats().Running == 0 {
		time.Sleep(time.Millisecond)
	}

	var mu sync.Mutex
	var order []int
	var jobs []*Job
	for _, prio := range []int{0, 5, 1, 5, 9} {
		prio := prio
		j, err := q.TrySubmit(func(ctx context.Context) error {
			mu.Lock()
			order = append(order, prio)
			mu.Unlock()
			return nil
		}, SubmitOptions{Priority: prio})
		if err != nil {
			t.Fatal(err)
		}
		jobs = append(jobs, j)
	}
	close(release)
	if err := blocker.Wait(context.Background()); err != nil {
		t.Fatal(err)
	}
	for _, j := range jobs {
		if err := j.Wait(context.Background()); err != nil {
			t.Fatal(err)
		}
	}
	want := []int{9, 5, 5, 1, 0}
	mu.Lock()
	defer mu.Unlock()
	for i, p := range want {
		if order[i] != p {
			t.Fatalf("execution order %v, want %v (priority desc, FIFO ties)", order, want)
		}
	}
}

func TestQueueFullBackpressure(t *testing.T) {
	tel := telemetry.New()
	q := newTestQueue(t, Config{Workers: 1, Capacity: 2, Telemetry: tel})

	release := make(chan struct{})
	defer close(release)
	if _, err := q.TrySubmit(func(ctx context.Context) error {
		select {
		case <-release:
		case <-ctx.Done():
		}
		return nil
	}, SubmitOptions{}); err != nil {
		t.Fatal(err)
	}
	for q.Stats().Running == 0 {
		time.Sleep(time.Millisecond)
	}
	// Fill the pending heap to the high-water mark.
	for i := 0; i < 2; i++ {
		if _, err := q.TrySubmit(func(ctx context.Context) error { return nil }, SubmitOptions{}); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := q.TrySubmit(func(ctx context.Context) error { return nil }, SubmitOptions{}); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("error %v, want ErrQueueFull", err)
	}
	if got := tel.Counter("jobqueue.rejected").Value(); got != 1 {
		t.Fatalf("rejected counter %d, want 1", got)
	}

	// A blocking Submit with a canceled context surfaces the context
	// error instead of waiting forever.
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	if _, err := q.Submit(ctx, func(ctx context.Context) error { return nil }, SubmitOptions{}); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("blocked Submit error %v, want deadline exceeded", err)
	}
}

func TestCancelPendingJobNeverRuns(t *testing.T) {
	q := newTestQueue(t, Config{Workers: 1, Capacity: 8})
	release := make(chan struct{})
	defer close(release)
	if _, err := q.TrySubmit(func(ctx context.Context) error {
		select {
		case <-release:
		case <-ctx.Done():
		}
		return nil
	}, SubmitOptions{}); err != nil {
		t.Fatal(err)
	}
	for q.Stats().Running == 0 {
		time.Sleep(time.Millisecond)
	}
	var ran atomic.Bool
	j, err := q.TrySubmit(func(ctx context.Context) error {
		ran.Store(true)
		return nil
	}, SubmitOptions{})
	if err != nil {
		t.Fatal(err)
	}
	j.Cancel()
	if err := j.Wait(context.Background()); !errors.Is(err, context.Canceled) {
		t.Fatalf("error %v, want canceled", err)
	}
	if j.State() != StateCanceled {
		t.Fatalf("state %v, want canceled", j.State())
	}
	if ran.Load() {
		t.Fatal("canceled pending job still ran")
	}
}

func TestCancelRunningJob(t *testing.T) {
	q := newTestQueue(t, Config{Workers: 1})
	started := make(chan struct{})
	j, err := q.TrySubmit(func(ctx context.Context) error {
		close(started)
		<-ctx.Done()
		return ctx.Err()
	}, SubmitOptions{})
	if err != nil {
		t.Fatal(err)
	}
	<-started
	j.Cancel()
	if err := j.Wait(context.Background()); !errors.Is(err, context.Canceled) {
		t.Fatalf("error %v, want canceled", err)
	}
}

var errFlaky = errors.New("flaky")

func TestRetryWithBackoff(t *testing.T) {
	tel := telemetry.New()
	q := newTestQueue(t, Config{
		Workers:    1,
		MaxRetries: 3,
		Backoff:    time.Millisecond,
		Retryable:  func(err error) bool { return errors.Is(err, errFlaky) },
		Telemetry:  tel,
	})
	var calls atomic.Int64
	j, err := q.TrySubmit(func(ctx context.Context) error {
		if calls.Add(1) < 3 {
			return errFlaky
		}
		return nil
	}, SubmitOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if err := j.Wait(context.Background()); err != nil {
		t.Fatalf("job failed after retries: %v", err)
	}
	if got := calls.Load(); got != 3 {
		t.Fatalf("task ran %d times, want 3", got)
	}
	if got := tel.Counter("jobqueue.retries").Value(); got != 2 {
		t.Fatalf("retries counter %d, want 2", got)
	}
	if got := j.Attempts(); got != 3 {
		t.Fatalf("Attempts() = %d, want 3", got)
	}
}

func TestRetryExhaustionFails(t *testing.T) {
	q := newTestQueue(t, Config{
		Workers:    1,
		MaxRetries: 2,
		Backoff:    time.Millisecond,
		Retryable:  func(err error) bool { return errors.Is(err, errFlaky) },
	})
	var calls atomic.Int64
	j, err := q.TrySubmit(func(ctx context.Context) error {
		calls.Add(1)
		return errFlaky
	}, SubmitOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if err := j.Wait(context.Background()); !errors.Is(err, errFlaky) {
		t.Fatalf("error %v, want errFlaky", err)
	}
	if j.State() != StateFailed {
		t.Fatalf("state %v, want failed", j.State())
	}
	if got := calls.Load(); got != 3 { // 1 try + 2 retries
		t.Fatalf("task ran %d times, want 3", got)
	}
}

func TestNonRetryableFailsImmediately(t *testing.T) {
	q := newTestQueue(t, Config{
		Workers:    1,
		MaxRetries: 5,
		Backoff:    time.Millisecond,
		Retryable:  func(err error) bool { return errors.Is(err, errFlaky) },
	})
	boom := errors.New("boom")
	var calls atomic.Int64
	j, err := q.TrySubmit(func(ctx context.Context) error {
		calls.Add(1)
		return boom
	}, SubmitOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if err := j.Wait(context.Background()); !errors.Is(err, boom) {
		t.Fatalf("error %v, want boom", err)
	}
	if got := calls.Load(); got != 1 {
		t.Fatalf("task ran %d times, want 1", got)
	}
}

func TestJobDeadline(t *testing.T) {
	q := newTestQueue(t, Config{Workers: 1})
	j, err := q.TrySubmit(func(ctx context.Context) error {
		<-ctx.Done()
		return ctx.Err()
	}, SubmitOptions{Deadline: 20 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	if err := j.Wait(context.Background()); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("error %v, want deadline exceeded", err)
	}
	if j.State() != StateFailed {
		t.Fatalf("state %v, want failed", j.State())
	}
}

func TestDrainFinishesBacklog(t *testing.T) {
	q, err := New(Config{Workers: 2, Capacity: 32})
	if err != nil {
		t.Fatal(err)
	}
	var ran atomic.Int64
	for i := 0; i < 12; i++ {
		if _, err := q.TrySubmit(func(ctx context.Context) error {
			time.Sleep(time.Millisecond)
			ran.Add(1)
			return nil
		}, SubmitOptions{}); err != nil {
			t.Fatal(err)
		}
	}
	if err := q.Drain(context.Background()); err != nil {
		t.Fatal(err)
	}
	if got := ran.Load(); got != 12 {
		t.Fatalf("drain finished %d jobs, want 12", got)
	}
	if _, err := q.TrySubmit(func(ctx context.Context) error { return nil }, SubmitOptions{}); !errors.Is(err, ErrClosed) {
		t.Fatalf("post-drain submit error %v, want ErrClosed", err)
	}
}

func TestDrainTimeoutCancelsStragglers(t *testing.T) {
	q, err := New(Config{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	j, err := q.TrySubmit(func(ctx context.Context) error {
		<-ctx.Done() // never finishes voluntarily
		return ctx.Err()
	}, SubmitOptions{})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()
	if err := q.Drain(ctx); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("drain error %v, want deadline exceeded", err)
	}
	if err := j.Wait(context.Background()); !errors.Is(err, context.Canceled) {
		t.Fatalf("straggler error %v, want canceled", err)
	}
}
