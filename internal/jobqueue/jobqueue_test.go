package jobqueue

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"ampsched/internal/telemetry"
)

func newTestQueue(t *testing.T, cfg Config) *Queue {
	t.Helper()
	q, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(q.Close)
	return q
}

func TestSubmitAndComplete(t *testing.T) {
	tel := telemetry.New()
	q := newTestQueue(t, Config{Workers: 2, Capacity: 16, Telemetry: tel})
	var ran atomic.Int64
	var jobs []*Job
	for i := 0; i < 10; i++ {
		j, err := q.TrySubmit(func(ctx context.Context) error {
			ran.Add(1)
			return nil
		}, SubmitOptions{})
		if err != nil {
			t.Fatal(err)
		}
		jobs = append(jobs, j)
	}
	for _, j := range jobs {
		if err := j.Wait(context.Background()); err != nil {
			t.Fatal(err)
		}
		if s := j.State(); s != StateDone {
			t.Fatalf("state %v, want done", s)
		}
	}
	if got := ran.Load(); got != 10 {
		t.Fatalf("ran %d tasks, want 10", got)
	}
	if got := tel.Counter("jobqueue.completed").Value(); got != 10 {
		t.Fatalf("completed counter %d, want 10", got)
	}
}

func TestPriorityOrdering(t *testing.T) {
	q := newTestQueue(t, Config{Workers: 1, Capacity: 16})

	// Block the single worker so submissions pile up in the heap.
	release := make(chan struct{})
	blocker, err := q.TrySubmit(func(ctx context.Context) error {
		<-release
		return nil
	}, SubmitOptions{})
	if err != nil {
		t.Fatal(err)
	}
	// Wait for the blocker to actually occupy the worker.
	for q.Stats().Running == 0 {
		time.Sleep(time.Millisecond)
	}

	var mu sync.Mutex
	var order []int
	var jobs []*Job
	for _, prio := range []int{0, 5, 1, 5, 9} {
		prio := prio
		j, err := q.TrySubmit(func(ctx context.Context) error {
			mu.Lock()
			order = append(order, prio)
			mu.Unlock()
			return nil
		}, SubmitOptions{Priority: prio})
		if err != nil {
			t.Fatal(err)
		}
		jobs = append(jobs, j)
	}
	close(release)
	if err := blocker.Wait(context.Background()); err != nil {
		t.Fatal(err)
	}
	for _, j := range jobs {
		if err := j.Wait(context.Background()); err != nil {
			t.Fatal(err)
		}
	}
	want := []int{9, 5, 5, 1, 0}
	mu.Lock()
	defer mu.Unlock()
	for i, p := range want {
		if order[i] != p {
			t.Fatalf("execution order %v, want %v (priority desc, FIFO ties)", order, want)
		}
	}
}

func TestQueueFullBackpressure(t *testing.T) {
	tel := telemetry.New()
	q := newTestQueue(t, Config{Workers: 1, Capacity: 2, Telemetry: tel})

	release := make(chan struct{})
	defer close(release)
	if _, err := q.TrySubmit(func(ctx context.Context) error {
		select {
		case <-release:
		case <-ctx.Done():
		}
		return nil
	}, SubmitOptions{}); err != nil {
		t.Fatal(err)
	}
	for q.Stats().Running == 0 {
		time.Sleep(time.Millisecond)
	}
	// Fill the pending heap to the high-water mark.
	for i := 0; i < 2; i++ {
		if _, err := q.TrySubmit(func(ctx context.Context) error { return nil }, SubmitOptions{}); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := q.TrySubmit(func(ctx context.Context) error { return nil }, SubmitOptions{}); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("error %v, want ErrQueueFull", err)
	}
	if got := tel.Counter("jobqueue.rejected").Value(); got != 1 {
		t.Fatalf("rejected counter %d, want 1", got)
	}

	// A blocking Submit with a canceled context surfaces the context
	// error instead of waiting forever.
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	if _, err := q.Submit(ctx, func(ctx context.Context) error { return nil }, SubmitOptions{}); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("blocked Submit error %v, want deadline exceeded", err)
	}
}

func TestCancelPendingJobNeverRuns(t *testing.T) {
	q := newTestQueue(t, Config{Workers: 1, Capacity: 8})
	release := make(chan struct{})
	defer close(release)
	if _, err := q.TrySubmit(func(ctx context.Context) error {
		select {
		case <-release:
		case <-ctx.Done():
		}
		return nil
	}, SubmitOptions{}); err != nil {
		t.Fatal(err)
	}
	for q.Stats().Running == 0 {
		time.Sleep(time.Millisecond)
	}
	var ran atomic.Bool
	j, err := q.TrySubmit(func(ctx context.Context) error {
		ran.Store(true)
		return nil
	}, SubmitOptions{})
	if err != nil {
		t.Fatal(err)
	}
	j.Cancel()
	if err := j.Wait(context.Background()); !errors.Is(err, context.Canceled) {
		t.Fatalf("error %v, want canceled", err)
	}
	if j.State() != StateCanceled {
		t.Fatalf("state %v, want canceled", j.State())
	}
	if ran.Load() {
		t.Fatal("canceled pending job still ran")
	}
}

func TestCancelRunningJob(t *testing.T) {
	q := newTestQueue(t, Config{Workers: 1})
	started := make(chan struct{})
	j, err := q.TrySubmit(func(ctx context.Context) error {
		close(started)
		<-ctx.Done()
		return ctx.Err()
	}, SubmitOptions{})
	if err != nil {
		t.Fatal(err)
	}
	<-started
	j.Cancel()
	if err := j.Wait(context.Background()); !errors.Is(err, context.Canceled) {
		t.Fatalf("error %v, want canceled", err)
	}
}

var errFlaky = errors.New("flaky")

func TestRetryWithBackoff(t *testing.T) {
	tel := telemetry.New()
	q := newTestQueue(t, Config{
		Workers:    1,
		MaxRetries: 3,
		Backoff:    time.Millisecond,
		Retryable:  func(err error) bool { return errors.Is(err, errFlaky) },
		Telemetry:  tel,
	})
	var calls atomic.Int64
	j, err := q.TrySubmit(func(ctx context.Context) error {
		if calls.Add(1) < 3 {
			return errFlaky
		}
		return nil
	}, SubmitOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if err := j.Wait(context.Background()); err != nil {
		t.Fatalf("job failed after retries: %v", err)
	}
	if got := calls.Load(); got != 3 {
		t.Fatalf("task ran %d times, want 3", got)
	}
	if got := tel.Counter("jobqueue.retries").Value(); got != 2 {
		t.Fatalf("retries counter %d, want 2", got)
	}
	if got := j.Attempts(); got != 3 {
		t.Fatalf("Attempts() = %d, want 3", got)
	}
}

func TestRetryExhaustionFails(t *testing.T) {
	q := newTestQueue(t, Config{
		Workers:    1,
		MaxRetries: 2,
		Backoff:    time.Millisecond,
		Retryable:  func(err error) bool { return errors.Is(err, errFlaky) },
	})
	var calls atomic.Int64
	j, err := q.TrySubmit(func(ctx context.Context) error {
		calls.Add(1)
		return errFlaky
	}, SubmitOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if err := j.Wait(context.Background()); !errors.Is(err, errFlaky) {
		t.Fatalf("error %v, want errFlaky", err)
	}
	if j.State() != StateFailed {
		t.Fatalf("state %v, want failed", j.State())
	}
	if got := calls.Load(); got != 3 { // 1 try + 2 retries
		t.Fatalf("task ran %d times, want 3", got)
	}
}

func TestNonRetryableFailsImmediately(t *testing.T) {
	q := newTestQueue(t, Config{
		Workers:    1,
		MaxRetries: 5,
		Backoff:    time.Millisecond,
		Retryable:  func(err error) bool { return errors.Is(err, errFlaky) },
	})
	boom := errors.New("boom")
	var calls atomic.Int64
	j, err := q.TrySubmit(func(ctx context.Context) error {
		calls.Add(1)
		return boom
	}, SubmitOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if err := j.Wait(context.Background()); !errors.Is(err, boom) {
		t.Fatalf("error %v, want boom", err)
	}
	if got := calls.Load(); got != 1 {
		t.Fatalf("task ran %d times, want 1", got)
	}
}

func TestJobDeadline(t *testing.T) {
	q := newTestQueue(t, Config{Workers: 1})
	j, err := q.TrySubmit(func(ctx context.Context) error {
		<-ctx.Done()
		return ctx.Err()
	}, SubmitOptions{Deadline: 20 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	if err := j.Wait(context.Background()); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("error %v, want deadline exceeded", err)
	}
	if j.State() != StateFailed {
		t.Fatalf("state %v, want failed", j.State())
	}
}

func TestDrainFinishesBacklog(t *testing.T) {
	q, err := New(Config{Workers: 2, Capacity: 32})
	if err != nil {
		t.Fatal(err)
	}
	var ran atomic.Int64
	for i := 0; i < 12; i++ {
		if _, err := q.TrySubmit(func(ctx context.Context) error {
			time.Sleep(time.Millisecond)
			ran.Add(1)
			return nil
		}, SubmitOptions{}); err != nil {
			t.Fatal(err)
		}
	}
	if err := q.Drain(context.Background()); err != nil {
		t.Fatal(err)
	}
	if got := ran.Load(); got != 12 {
		t.Fatalf("drain finished %d jobs, want 12", got)
	}
	if _, err := q.TrySubmit(func(ctx context.Context) error { return nil }, SubmitOptions{}); !errors.Is(err, ErrClosed) {
		t.Fatalf("post-drain submit error %v, want ErrClosed", err)
	}
}

func TestDrainTimeoutCancelsStragglers(t *testing.T) {
	q, err := New(Config{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	j, err := q.TrySubmit(func(ctx context.Context) error {
		<-ctx.Done() // never finishes voluntarily
		return ctx.Err()
	}, SubmitOptions{})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()
	if err := q.Drain(ctx); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("drain error %v, want deadline exceeded", err)
	}
	if err := j.Wait(context.Background()); !errors.Is(err, context.Canceled) {
		t.Fatalf("straggler error %v, want canceled", err)
	}
}

// TestBackoffCappedByDeadline: a job with a short deadline and a long
// configured backoff must fail close to its deadline, not sleep the
// full exponential schedule first.
func TestBackoffCappedByDeadline(t *testing.T) {
	fail := errors.New("transient")
	q := newTestQueue(t, Config{
		Workers:    1,
		MaxRetries: 3,
		Backoff:    10 * time.Second, // would dwarf the deadline uncapped
		Retryable:  func(error) bool { return true },
	})
	start := time.Now()
	j, err := q.TrySubmit(func(ctx context.Context) error { return fail }, SubmitOptions{
		Deadline: 150 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	werr := j.Wait(context.Background())
	elapsed := time.Since(start)
	if werr == nil {
		t.Fatal("job succeeded, want failure")
	}
	if elapsed > 2*time.Second {
		t.Fatalf("job took %v; backoff was not capped by the deadline", elapsed)
	}
}

func TestRetryBackoffShiftOverflowClamped(t *testing.T) {
	q := newTestQueue(t, Config{Workers: 1, Backoff: time.Millisecond})
	for _, attempt := range []int{1, 5, 70, 1 << 20} {
		got := q.retryBackoff(context.Background(), attempt)
		if got <= 0 || got > maxBackoff {
			t.Errorf("retryBackoff(attempt=%d) = %v, want (0, %v]", attempt, got, maxBackoff)
		}
	}
	if got := q.retryBackoff(context.Background(), 3); got != 4*time.Millisecond {
		t.Errorf("retryBackoff(attempt=3) = %v, want 4ms", got)
	}
}

// TestTaskPanicRecovered: a panicking task fails its job (or retries,
// when the classifier says so) instead of killing the worker.
func TestTaskPanicRecovered(t *testing.T) {
	tel := telemetry.New()
	boom := errors.New("boom")
	q := newTestQueue(t, Config{
		Workers:    1,
		MaxRetries: 2,
		Backoff:    time.Millisecond,
		Retryable:  func(err error) bool { return errors.Is(err, boom) },
		Telemetry:  tel,
	})
	var calls atomic.Int64
	j, err := q.TrySubmit(func(ctx context.Context) error {
		if calls.Add(1) == 1 {
			panic(boom)
		}
		return nil
	}, SubmitOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if werr := j.Wait(context.Background()); werr != nil {
		t.Fatalf("job failed despite retry after panic: %v", werr)
	}
	if got := calls.Load(); got != 2 {
		t.Fatalf("task ran %d times, want 2 (panic then retry)", got)
	}
	if got := tel.Counter("jobqueue.panics").Value(); got != 1 {
		t.Fatalf("panics counter = %d, want 1", got)
	}

	// A panic the classifier rejects fails the job; the worker survives
	// to run the next one.
	j2, err := q.TrySubmit(func(ctx context.Context) error { panic("unclassified") }, SubmitOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if werr := j2.Wait(context.Background()); werr == nil {
		t.Fatal("unclassified panic did not fail the job")
	} else if j2.State() != StateFailed {
		t.Fatalf("state %v, want failed", j2.State())
	}
	j3, err := q.TrySubmit(func(ctx context.Context) error { return nil }, SubmitOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if werr := j3.Wait(context.Background()); werr != nil {
		t.Fatalf("worker did not survive the panic: %v", werr)
	}
}

// TestCostAccounting tracks PendingCost/RunningCost through the job
// lifecycle: pile jobs behind a blocked worker, then release.
func TestCostAccounting(t *testing.T) {
	tel := telemetry.New()
	q := newTestQueue(t, Config{Workers: 1, Capacity: 16, Telemetry: tel})
	release := make(chan struct{})
	blocker, err := q.TrySubmit(func(ctx context.Context) error {
		<-release
		return nil
	}, SubmitOptions{Cost: 5})
	if err != nil {
		t.Fatal(err)
	}
	// Let the blocker start so its cost moves pending -> running.
	deadline := time.After(5 * time.Second)
	for blocker.State() != StateRunning {
		select {
		case <-deadline:
			t.Fatal("blocker never started")
		default:
			time.Sleep(time.Millisecond)
		}
	}
	var jobs []*Job
	for i := 0; i < 3; i++ {
		j, err := q.TrySubmit(func(ctx context.Context) error { return nil }, SubmitOptions{Cost: 10})
		if err != nil {
			t.Fatal(err)
		}
		jobs = append(jobs, j)
	}
	st := q.Stats()
	if st.PendingCost != 30 || st.RunningCost != 5 {
		t.Fatalf("Stats = %+v, want PendingCost 30 RunningCost 5", st)
	}
	if got := tel.Gauge("jobqueue.pending_cost").Value(); got != 30 {
		t.Fatalf("pending_cost gauge = %v, want 30", got)
	}

	// Cancel one pending job: its cost leaves the backlog.
	jobs[2].Cancel()
	if st := q.Stats(); st.PendingCost != 20 {
		t.Fatalf("PendingCost after cancel = %v, want 20", st.PendingCost)
	}

	close(release)
	for _, j := range append(jobs[:2], blocker) {
		j.Wait(context.Background())
	}
	if st := q.Stats(); st.PendingCost != 0 || st.RunningCost != 0 {
		t.Fatalf("Stats after drain = %+v, want zero costs", st)
	}
}

// TestTrySubmitBatchAtomic pins the batch contract: a group that fits
// is accepted whole with contiguous IDs and runs adjacently (one
// "jobqueue.batches" tick, one "jobqueue.submitted" tick per job),
// and a group that does not fit is rejected whole — no partial
// enqueue.
func TestTrySubmitBatchAtomic(t *testing.T) {
	tel := telemetry.New()
	q := newTestQueue(t, Config{Workers: 1, Capacity: 4, Telemetry: tel})

	// Block the worker so pending occupancy is under test control;
	// wait for pickup so the blocker itself is out of the heap.
	release := make(chan struct{})
	started := make(chan struct{})
	blocker, err := q.TrySubmit(func(ctx context.Context) error {
		close(started)
		<-release
		return nil
	}, SubmitOptions{})
	if err != nil {
		t.Fatal(err)
	}
	<-started

	var ran atomic.Int64
	task := func(ctx context.Context) error { ran.Add(1); return nil }

	jobs, err := q.TrySubmitBatch([]BatchTask{{Task: task, Opts: SubmitOptions{Priority: 3}}, {Task: task, Opts: SubmitOptions{Priority: 3}}, {Task: task, Opts: SubmitOptions{Priority: 3}}})
	if err != nil {
		t.Fatal(err)
	}
	if len(jobs) != 3 {
		t.Fatalf("accepted %d jobs, want 3", len(jobs))
	}
	for i := 1; i < len(jobs); i++ {
		if jobs[i].ID() != jobs[i-1].ID()+1 {
			t.Fatalf("batch IDs not contiguous: %d after %d", jobs[i].ID(), jobs[i-1].ID())
		}
	}

	// 3 pending + 1 more would cross Capacity=4: the whole group
	// bounces and nothing of it lands in the heap.
	if _, err := q.TrySubmitBatch([]BatchTask{{Task: task}, {Task: task}}); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("overfull batch: err = %v, want ErrQueueFull", err)
	}
	if got := q.Stats().Pending; got != 3 {
		t.Fatalf("pending after rejected batch = %d, want 3 (partial enqueue?)", got)
	}

	// A single-slot batch still fits exactly at the high-water mark.
	one, err := q.TrySubmitBatch([]BatchTask{{Task: task}})
	if err != nil {
		t.Fatal(err)
	}

	close(release)
	for _, j := range append(jobs, one...) {
		if err := j.Wait(context.Background()); err != nil {
			t.Fatal(err)
		}
	}
	if err := blocker.Wait(context.Background()); err != nil {
		t.Fatal(err)
	}
	if got := ran.Load(); got != 4 {
		t.Fatalf("ran %d batch tasks, want 4", got)
	}
	if got := tel.Counter("jobqueue.batches").Value(); got != 2 {
		t.Fatalf("jobqueue.batches = %d, want 2", got)
	}
	if got := tel.Counter("jobqueue.submitted").Value(); got != 5 {
		t.Fatalf("jobqueue.submitted = %d, want 5 (blocker + 4 batch jobs)", got)
	}

	// Closed queue refuses batches outright.
	q.Close()
	if _, err := q.TrySubmitBatch([]BatchTask{{Task: task}}); !errors.Is(err, ErrClosed) {
		t.Fatalf("closed queue: err = %v, want ErrClosed", err)
	}
}

// TestTrySubmitBatchValidation rejects empty groups and nil members
// before touching the queue.
func TestTrySubmitBatchValidation(t *testing.T) {
	q := newTestQueue(t, Config{Workers: 1, Capacity: 4})
	if _, err := q.TrySubmitBatch(nil); err == nil {
		t.Fatal("empty batch accepted")
	}
	task := func(ctx context.Context) error { return nil }
	if _, err := q.TrySubmitBatch([]BatchTask{{Task: task}, {}}); err == nil {
		t.Fatal("batch with nil task accepted")
	}
	if got := q.Stats().Pending; got != 0 {
		t.Fatalf("pending = %d after rejected batches, want 0", got)
	}
}

// TestTrySubmitBatchOversized pins the degenerate rejection: a batch
// larger than Capacity bounces even against an empty queue (it can
// never fit, so blocking or partial admission would both be wrong),
// counts every member on "jobqueue.rejected", and leaves the queue
// usable for a batch that exactly fills it.
func TestTrySubmitBatchOversized(t *testing.T) {
	tel := telemetry.New()
	const capacity = 4
	q := newTestQueue(t, Config{Workers: 1, Capacity: capacity, Telemetry: tel})

	// Park the worker so admitted jobs stay pending and countable.
	release := make(chan struct{})
	started := make(chan struct{})
	blocker, err := q.TrySubmit(func(ctx context.Context) error {
		close(started)
		<-release
		return nil
	}, SubmitOptions{})
	if err != nil {
		t.Fatal(err)
	}
	<-started

	task := func(ctx context.Context) error { return nil }
	over := make([]BatchTask, capacity+1)
	for i := range over {
		over[i] = BatchTask{Task: task}
	}
	if _, err := q.TrySubmitBatch(over); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("oversized batch on empty queue: err = %v, want ErrQueueFull", err)
	}
	if got := q.Stats().Pending; got != 0 {
		t.Fatalf("pending after oversized bounce = %d, want 0 (partial enqueue?)", got)
	}
	if got := tel.Counter("jobqueue.rejected").Value(); got != capacity+1 {
		t.Fatalf("jobqueue.rejected = %d, want %d (every member of the bounced batch)", got, capacity+1)
	}

	// Exactly Capacity still fits: the bounce above must not have
	// consumed slots, ids, or wedged the lock.
	full, err := q.TrySubmitBatch(over[:capacity])
	if err != nil {
		t.Fatalf("capacity-sized batch after bounce: %v", err)
	}
	close(release)
	for _, j := range append(full, blocker) {
		if err := j.Wait(context.Background()); err != nil {
			t.Fatal(err)
		}
	}
}

// TestTrySubmitBatchConcurrentWithSingles hammers TrySubmitBatch and
// TrySubmit from racing submitters while workers drain, and checks the
// invariants that make the batch path safe to interleave: pending
// occupancy never exceeds Capacity, accepted batches keep contiguous
// ids (the lock is held across the whole group), and every accepted
// job runs exactly once. Run under -race this also exercises the
// submit/reject counter paths for data races.
func TestTrySubmitBatchConcurrentWithSingles(t *testing.T) {
	tel := telemetry.New()
	const capacity = 8
	q := newTestQueue(t, Config{Workers: 2, Capacity: capacity, Telemetry: tel})

	var ran atomic.Int64
	task := func(ctx context.Context) error { ran.Add(1); return nil }

	// Occupancy sampler: Stats() is the public view, so a transient
	// overshoot would be observable by admission control and clients.
	stopSample := make(chan struct{})
	sampleDone := make(chan struct{})
	var overCap atomic.Int64
	go func() {
		defer close(sampleDone)
		for {
			select {
			case <-stopSample:
				return
			default:
				if got := q.Stats().Pending; got > capacity {
					overCap.Store(int64(got))
				}
				time.Sleep(50 * time.Microsecond)
			}
		}
	}()

	const submitters, rounds, batchLen = 4, 60, 3
	var wg sync.WaitGroup
	var accepted atomic.Int64
	jobsCh := make(chan *Job, submitters*rounds*batchLen)
	for g := 0; g < submitters; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < rounds; i++ {
				if g%2 == 0 {
					batch := make([]BatchTask, batchLen)
					for k := range batch {
						batch[k] = BatchTask{Task: task}
					}
					jobs, err := q.TrySubmitBatch(batch)
					if err != nil {
						if !errors.Is(err, ErrQueueFull) {
							t.Errorf("batch submit: %v", err)
						}
						continue
					}
					for k := 1; k < len(jobs); k++ {
						if jobs[k].ID() != jobs[k-1].ID()+1 {
							t.Errorf("batch ids not contiguous under contention: %d after %d", jobs[k].ID(), jobs[k-1].ID())
						}
					}
					accepted.Add(batchLen)
					for _, j := range jobs {
						jobsCh <- j
					}
				} else {
					j, err := q.TrySubmit(task, SubmitOptions{})
					if err != nil {
						if !errors.Is(err, ErrQueueFull) {
							t.Errorf("single submit: %v", err)
						}
						continue
					}
					accepted.Add(1)
					jobsCh <- j
				}
			}
		}(g)
	}
	wg.Wait()
	close(jobsCh)
	for j := range jobsCh {
		if err := j.Wait(context.Background()); err != nil {
			t.Fatal(err)
		}
	}
	close(stopSample)
	<-sampleDone

	if oc := overCap.Load(); oc != 0 {
		t.Errorf("observed %d pending jobs, capacity is %d", oc, capacity)
	}
	if got := ran.Load(); got != accepted.Load() {
		t.Errorf("ran %d tasks, accepted %d — accepted work was lost or duplicated", got, accepted.Load())
	}
	if got := tel.Counter("jobqueue.submitted").Value(); got != uint64(accepted.Load()) {
		t.Errorf("jobqueue.submitted = %d, want %d", got, accepted.Load())
	}
	if st := q.Stats(); st.Pending != 0 || st.Running != 0 {
		t.Errorf("Stats after drain = %+v, want idle", st)
	}
}
