// Package jobqueue is a bounded, priority-aware work queue with a
// fixed worker pool — the execution backbone of the simulation
// service (internal/server, cmd/ampserve).
//
// Design points, in the order a job meets them:
//
//   - Backpressure: the pending heap has a high-water mark. TrySubmit
//     returns ErrQueueFull past it (the server maps that to HTTP 429);
//     Submit blocks until space frees or the caller's context ends.
//   - Priority: pending jobs run highest Priority first; ties break by
//     submission order, so equal-priority traffic is FIFO and the
//     schedule is deterministic for a deterministic arrival order.
//   - Per-job context: every job runs under its own context, canceled
//     by Job.Cancel, by the job's Deadline, or by Close. A job
//     canceled while still pending never starts.
//   - Retry with backoff: a job whose task fails with an error the
//     configured classifier calls retryable (the server classifies
//     wedged simulations, amp.ErrWedged) is re-run after an
//     exponentially growing backoff, up to MaxRetries times.
//   - Drain: stop accepting, then wait for the backlog to finish —
//     the graceful half of SIGTERM handling.
//
// Telemetry (all under "jobqueue."): depth/running gauges; submitted,
// rejected, completed, failed, canceled, retries counters; wait_us and
// run_us histograms.
package jobqueue

import (
	"container/heap"
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"time"

	"ampsched/internal/telemetry"
)

// ErrQueueFull is returned by TrySubmit when the pending backlog is at
// the high-water mark — the caller should shed load (HTTP 429).
var ErrQueueFull = errors.New("jobqueue: queue full")

// ErrClosed is returned by submissions after Drain or Close.
var ErrClosed = errors.New("jobqueue: closed")

// Task is one unit of work. It must honor ctx promptly: cancellation
// is the only way Drain and Close can make progress past a stuck job.
type Task func(ctx context.Context) error

// State is a job's lifecycle position.
type State int32

// Job states. Pending→Running→{Done,Failed}; Canceled can follow
// Pending or Running.
const (
	StatePending State = iota
	StateRunning
	StateDone
	StateFailed
	StateCanceled
)

// String renders the state for status APIs.
func (s State) String() string {
	switch s {
	case StatePending:
		return "pending"
	case StateRunning:
		return "running"
	case StateDone:
		return "done"
	case StateFailed:
		return "failed"
	case StateCanceled:
		return "canceled"
	}
	return fmt.Sprintf("State(%d)", int32(s))
}

// Config sizes a Queue.
type Config struct {
	// Workers is the pool size; 0 means GOMAXPROCS.
	Workers int
	// Capacity is the pending high-water mark; 0 means 4x workers.
	Capacity int
	// MaxRetries bounds re-runs of a retryably failed job (0 = no
	// retries).
	MaxRetries int
	// Backoff is the first retry delay, doubling per attempt up to one
	// minute and never past the job's remaining Deadline; 0 means
	// 10ms. Backoff waits abort immediately on job cancellation.
	Backoff time.Duration
	// Retryable classifies errors worth re-running; nil means nothing
	// retries.
	Retryable func(error) bool
	// Telemetry receives queue metrics; nil disables them.
	Telemetry *telemetry.Telemetry
}

// SubmitOptions tune one job.
type SubmitOptions struct {
	// Priority orders pending jobs (higher first; default 0).
	Priority int
	// Deadline, when positive, bounds the job's total run time
	// (including retries and backoff waits).
	Deadline time.Duration
	// Cost is the caller's estimate of the job's expense in arbitrary
	// units (the server uses simulated pair-instructions). The queue
	// only accounts for it — Stats.PendingCost/RunningCost and the
	// jobqueue.pending_cost gauge — so admission control can shed by
	// backlog cost, not just backlog count.
	Cost float64
}

// Job is a handle on one submitted task.
type Job struct {
	id       uint64
	priority int
	seq      uint64
	task     Task
	deadline time.Duration
	cost     float64

	q        *Queue
	ctx      context.Context
	cancel   context.CancelFunc
	index    int // heap index while pending; -1 otherwise
	attempts int

	mu    sync.Mutex
	state State
	err   error
	done  chan struct{}

	submitted time.Time
}

// ID returns the queue-unique job id.
func (j *Job) ID() uint64 { return j.id }

// Cost returns the submit-time cost estimate (SubmitOptions.Cost) —
// the unit the queue's cost accounting and the cluster layer's
// work-stealing claims are denominated in.
func (j *Job) Cost() float64 { return j.cost }

// State returns the job's current lifecycle state.
func (j *Job) State() State {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.state
}

// Err returns the terminal error (nil while non-terminal or Done).
func (j *Job) Err() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.err
}

// Attempts returns how many times the task has started.
func (j *Job) Attempts() int {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.attempts
}

// Done returns a channel closed when the job reaches a terminal state.
func (j *Job) Done() <-chan struct{} { return j.done }

// Wait blocks until the job is terminal or ctx ends, returning the
// job's terminal error (or ctx's).
func (j *Job) Wait(ctx context.Context) error {
	select {
	case <-j.done:
		return j.Err()
	case <-ctx.Done():
		return ctx.Err()
	}
}

// Cancel stops the job: a pending job is removed from the queue and
// never starts; a running job has its context canceled and finishes
// when its task returns. Cancel is idempotent and safe on terminal
// jobs.
func (j *Job) Cancel() { j.q.cancelJob(j) }

// settle moves the job to a terminal state exactly once.
func (j *Job) settle(s State, err error) bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.state == StateDone || j.state == StateFailed || j.state == StateCanceled {
		return false
	}
	j.state = s
	j.err = err
	close(j.done)
	return true
}

// Queue is the bounded priority work queue. Create with New; a Queue
// must be Closed (or Drained) to stop its workers.
type Queue struct {
	cfg Config

	mu          sync.Mutex
	cond        *sync.Cond
	pending     jobHeap
	active      map[*Job]struct{}
	nextID      uint64
	nextSeq     uint64
	closed      bool
	pendingCost float64
	runningCost float64

	wg sync.WaitGroup

	depth        *telemetry.Gauge
	runningG     *telemetry.Gauge
	pendingCostG *telemetry.Gauge
	submitted    *telemetry.Counter
	batches      *telemetry.Counter
	rejected     *telemetry.Counter
	completed    *telemetry.Counter
	failed       *telemetry.Counter
	canceled     *telemetry.Counter
	retries      *telemetry.Counter
	panicked     *telemetry.Counter
	waitUS       *telemetry.Histogram
	runUS        *telemetry.Histogram
}

// New builds a Queue and starts its workers.
func New(cfg Config) (*Queue, error) {
	if cfg.Workers < 0 || cfg.Capacity < 0 || cfg.MaxRetries < 0 || cfg.Backoff < 0 {
		return nil, fmt.Errorf("jobqueue: negative Config field")
	}
	if cfg.Workers == 0 {
		cfg.Workers = runtime.GOMAXPROCS(0)
	}
	if cfg.Capacity == 0 {
		cfg.Capacity = 4 * cfg.Workers
	}
	if cfg.Backoff == 0 {
		cfg.Backoff = 10 * time.Millisecond
	}
	tel := cfg.Telemetry
	q := &Queue{
		cfg:          cfg,
		depth:        tel.Gauge("jobqueue.depth"),
		runningG:     tel.Gauge("jobqueue.running"),
		pendingCostG: tel.Gauge("jobqueue.pending_cost"),
		submitted:    tel.Counter("jobqueue.submitted"),
		batches:      tel.Counter("jobqueue.batches"),
		rejected:     tel.Counter("jobqueue.rejected"),
		completed:    tel.Counter("jobqueue.completed"),
		failed:       tel.Counter("jobqueue.failed"),
		canceled:     tel.Counter("jobqueue.canceled"),
		retries:      tel.Counter("jobqueue.retries"),
		panicked:     tel.Counter("jobqueue.panics"),
		waitUS:       tel.Histogram("jobqueue.wait_us"),
		runUS:        tel.Histogram("jobqueue.run_us"),
	}
	q.cond = sync.NewCond(&q.mu)
	q.active = make(map[*Job]struct{})
	for w := 0; w < cfg.Workers; w++ {
		q.wg.Add(1)
		go q.worker()
	}
	return q, nil
}

// TrySubmit enqueues task, failing fast with ErrQueueFull at the
// high-water mark and ErrClosed after Drain/Close.
func (q *Queue) TrySubmit(task Task, opts SubmitOptions) (*Job, error) {
	return q.submit(nil, task, opts)
}

// Submit enqueues task, blocking while the queue is full until space
// frees, the queue closes, or ctx ends.
func (q *Queue) Submit(ctx context.Context, task Task, opts SubmitOptions) (*Job, error) {
	return q.submit(ctx, task, opts)
}

// BatchTask pairs one batch member with its submit options.
type BatchTask struct {
	Task Task
	Opts SubmitOptions
}

// TrySubmitBatch enqueues the group atomically: either every task is
// accepted — under one lock acquisition, with contiguous sequence
// numbers so equal-priority members stay adjacent in the priority heap
// and one worker wake-up — or none is (ErrQueueFull when the whole
// group does not fit below the high-water mark, ErrClosed after
// Drain/Close). Accepted groups count once on "jobqueue.batches" and
// per job on "jobqueue.submitted".
func (q *Queue) TrySubmitBatch(tasks []BatchTask) ([]*Job, error) {
	if len(tasks) == 0 {
		return nil, fmt.Errorf("jobqueue: empty batch")
	}
	for _, bt := range tasks {
		if bt.Task == nil {
			return nil, fmt.Errorf("jobqueue: nil task in batch")
		}
	}
	q.mu.Lock()
	if q.closed {
		q.mu.Unlock()
		q.rejected.Add(uint64(len(tasks)))
		return nil, ErrClosed
	}
	if len(q.pending)+len(tasks) > q.cfg.Capacity {
		q.mu.Unlock()
		q.rejected.Add(uint64(len(tasks)))
		return nil, ErrQueueFull
	}
	now := time.Now() //ampvet:allow determinism queue wait-latency measurement is inherently wall-clock
	jobs := make([]*Job, len(tasks))
	for i, bt := range tasks {
		q.nextID++
		q.nextSeq++
		//ampvet:allow ctxcheck jobs deliberately outlive the submitter's ctx; cancellation flows through Job.Cancel and queue shutdown instead
		jctx, cancel := context.WithCancel(context.Background())
		j := &Job{
			id:        q.nextID,
			priority:  bt.Opts.Priority,
			seq:       q.nextSeq,
			task:      bt.Task,
			deadline:  bt.Opts.Deadline,
			cost:      bt.Opts.Cost,
			q:         q,
			ctx:       jctx,
			cancel:    cancel,
			state:     StatePending,
			done:      make(chan struct{}),
			submitted: now,
		}
		heap.Push(&q.pending, j)
		q.pendingCost += j.cost
		jobs[i] = j
	}
	q.depth.Set(float64(len(q.pending)))
	q.pendingCostG.Set(q.pendingCost)
	q.submitted.Add(uint64(len(tasks)))
	q.batches.Inc()
	q.cond.Broadcast()
	q.mu.Unlock()
	return jobs, nil
}

func (q *Queue) submit(ctx context.Context, task Task, opts SubmitOptions) (*Job, error) {
	if task == nil {
		return nil, fmt.Errorf("jobqueue: nil task")
	}
	q.mu.Lock()
	for {
		if q.closed {
			q.mu.Unlock()
			q.rejected.Inc()
			return nil, ErrClosed
		}
		if len(q.pending) < q.cfg.Capacity {
			break
		}
		if ctx == nil { // TrySubmit: shed load
			q.mu.Unlock()
			q.rejected.Inc()
			return nil, ErrQueueFull
		}
		if err := ctx.Err(); err != nil {
			q.mu.Unlock()
			q.rejected.Inc()
			return nil, err
		}
		// Re-check ctx at queue state changes; a canceled waiter is
		// released by the broadcast in dispatch/cancel paths or by the
		// watcher below.
		stop := context.AfterFunc(ctx, func() {
			q.mu.Lock()
			q.cond.Broadcast()
			q.mu.Unlock()
		})
		q.cond.Wait()
		stop()
	}
	q.nextID++
	q.nextSeq++
	//ampvet:allow ctxcheck jobs deliberately outlive the submitter's ctx; cancellation flows through Job.Cancel and queue shutdown instead
	jctx, cancel := context.WithCancel(context.Background())
	j := &Job{
		id:       q.nextID,
		priority: opts.Priority,
		seq:      q.nextSeq,
		task:     task,
		deadline: opts.Deadline,
		cost:     opts.Cost,
		q:        q,
		ctx:      jctx,
		cancel:   cancel,
		state:    StatePending,
		done:     make(chan struct{}),

		submitted: time.Now(), //ampvet:allow determinism queue wait-latency measurement is inherently wall-clock
	}
	heap.Push(&q.pending, j)
	q.pendingCost += j.cost
	q.depth.Set(float64(len(q.pending)))
	q.pendingCostG.Set(q.pendingCost)
	q.submitted.Inc()
	q.cond.Broadcast()
	q.mu.Unlock()
	return j, nil
}

// cancelJob implements Job.Cancel.
func (q *Queue) cancelJob(j *Job) {
	q.mu.Lock()
	if j.index >= 0 { // still pending: remove so it never starts
		heap.Remove(&q.pending, j.index)
		q.pendingCost -= j.cost
		q.depth.Set(float64(len(q.pending)))
		q.pendingCostG.Set(q.pendingCost)
		q.cond.Broadcast()
	}
	q.mu.Unlock()
	j.cancel()
	if j.settle(StateCanceled, context.Canceled) {
		q.canceled.Inc()
	}
}

// worker pops and runs jobs until the queue closes and empties.
func (q *Queue) worker() {
	defer q.wg.Done()
	for {
		q.mu.Lock()
		for len(q.pending) == 0 && !q.closed {
			q.cond.Wait()
		}
		if len(q.pending) == 0 && q.closed {
			q.mu.Unlock()
			return
		}
		j := heap.Pop(&q.pending).(*Job)
		q.pendingCost -= j.cost
		q.runningCost += j.cost
		q.depth.Set(float64(len(q.pending)))
		q.pendingCostG.Set(q.pendingCost)
		q.active[j] = struct{}{}
		q.runningG.Set(float64(len(q.active)))
		q.cond.Broadcast() // space freed: wake blocked Submit callers
		q.mu.Unlock()

		q.run(j)

		q.mu.Lock()
		delete(q.active, j)
		q.runningCost -= j.cost
		q.runningG.Set(float64(len(q.active)))
		q.cond.Broadcast() // Drain waits on the active set emptying
		q.mu.Unlock()
	}
}

// run executes one job, applying deadline, retries and backoff.
func (q *Queue) run(j *Job) {
	j.mu.Lock()
	if j.state != StatePending { // canceled between pop and run
		j.mu.Unlock()
		return
	}
	j.state = StateRunning
	j.mu.Unlock()

	start := time.Now() //ampvet:allow determinism job run-latency measurement is inherently wall-clock
	q.waitUS.Observe(uint64(start.Sub(j.submitted).Microseconds()))

	ctx := j.ctx
	cancelDeadline := func() {}
	if j.deadline > 0 {
		ctx, cancelDeadline = context.WithTimeout(ctx, j.deadline) //ampvet:allow determinism job deadlines are wall-clock by contract
	}
	defer cancelDeadline()

	var err error
	for {
		j.mu.Lock()
		j.attempts++
		attempt := j.attempts
		j.mu.Unlock()
		err = q.runAttempt(ctx, j)
		if err == nil || ctx.Err() != nil {
			break
		}
		if q.cfg.Retryable == nil || !q.cfg.Retryable(err) || attempt > q.cfg.MaxRetries {
			break
		}
		q.retries.Inc()
		backoff := q.retryBackoff(ctx, attempt)
		if backoff <= 0 { // deadline already spent: don't bother retrying
			break
		}
		t := time.NewTimer(backoff) //ampvet:allow determinism retry backoff is inherently wall-clock
		select {
		case <-t.C:
		case <-ctx.Done():
			t.Stop()
			err = ctx.Err()
		}
		if ctx.Err() != nil {
			break
		}
	}
	q.runUS.Observe(uint64(time.Since(start).Microseconds())) //ampvet:allow determinism job run-latency measurement is inherently wall-clock

	switch {
	case err == nil:
		if j.settle(StateDone, nil) {
			q.completed.Inc()
		}
	case errors.Is(err, context.Canceled):
		if j.settle(StateCanceled, err) {
			q.canceled.Inc()
		}
	default:
		if j.settle(StateFailed, err) {
			q.failed.Inc()
		}
	}
	j.cancel() // release the job context's resources
}

// runAttempt runs one task attempt, recovering a panic into an error
// so one exploding job cannot take a worker (and its queue share) down
// with it. A panic carrying an error is wrapped, so classifiers can
// errors.Is through it and decide whether the job retries.
func (q *Queue) runAttempt(ctx context.Context, j *Job) (err error) {
	defer func() {
		if r := recover(); r != nil {
			q.panicked.Inc()
			if rerr, ok := r.(error); ok {
				err = fmt.Errorf("jobqueue: task panic: %w", rerr)
			} else {
				err = fmt.Errorf("jobqueue: task panic: %v", r)
			}
		}
	}()
	return j.task(ctx)
}

// maxBackoff bounds one retry sleep; past it, exponential growth stops.
const maxBackoff = time.Minute

// retryBackoff sizes the sleep before retry number `attempt`, clamping
// the exponential shift against overflow and capping the sleep at the
// job's remaining deadline — sleeping past the deadline would burn the
// whole budget waiting and then fail without the retry it was waiting
// for.
func (q *Queue) retryBackoff(ctx context.Context, attempt int) time.Duration {
	backoff := q.cfg.Backoff
	for i := 1; i < attempt && backoff < maxBackoff; i++ {
		backoff <<= 1
	}
	if backoff > maxBackoff || backoff <= 0 { // <= 0: shift overflowed
		backoff = maxBackoff
	}
	if dl, ok := ctx.Deadline(); ok {
		if rem := time.Until(dl); rem < backoff { //ampvet:allow determinism deadline headroom is inherently wall-clock
			backoff = rem
		}
	}
	return backoff
}

// Drain stops accepting new jobs and waits until every pending and
// running job has finished, or ctx ends — in which case the remaining
// jobs are canceled (pending ones never start) and Drain waits for the
// workers to observe the cancellation before returning ctx's error.
func (q *Queue) Drain(ctx context.Context) error {
	q.mu.Lock()
	q.closed = true
	q.cond.Broadcast()
	q.mu.Unlock()

	stop := context.AfterFunc(ctx, func() {
		q.mu.Lock()
		q.cond.Broadcast()
		q.mu.Unlock()
	})
	defer stop()

	q.mu.Lock()
	for (len(q.pending) > 0 || len(q.active) > 0) && ctx.Err() == nil {
		q.cond.Wait()
	}
	q.mu.Unlock()

	if err := ctx.Err(); err != nil {
		q.abort()
		q.wg.Wait()
		return err
	}
	q.wg.Wait()
	return nil
}

// Close cancels every pending and running job and stops the workers.
// Safe after Drain; returns once the pool has exited.
func (q *Queue) Close() {
	q.mu.Lock()
	q.closed = true
	q.cond.Broadcast()
	q.mu.Unlock()
	q.abort()
	q.wg.Wait()
}

// abort cancels everything still alive: pending jobs are settled
// canceled without starting; running jobs have their contexts
// canceled and are settled by their workers when the task returns.
func (q *Queue) abort() {
	q.mu.Lock()
	var victims []*Job
	for len(q.pending) > 0 {
		victims = append(victims, heap.Pop(&q.pending).(*Job))
	}
	q.pendingCost = 0
	q.depth.Set(0)
	q.pendingCostG.Set(0)
	running := make([]*Job, 0, len(q.active))
	for j := range q.active { //ampvet:allow determinism cancellation fan-out order is unobservable
		running = append(running, j)
	}
	q.cond.Broadcast()
	q.mu.Unlock()
	for _, j := range victims {
		j.cancel()
		if j.settle(StateCanceled, context.Canceled) {
			q.canceled.Inc()
		}
	}
	for _, j := range running {
		j.cancel()
	}
}

// Stats is a point-in-time queue census. PendingCost and RunningCost
// sum the SubmitOptions.Cost of the jobs in each state.
type Stats struct {
	Pending     int
	Running     int
	PendingCost float64
	RunningCost float64
}

// Stats returns the current backlog sizes.
func (q *Queue) Stats() Stats {
	q.mu.Lock()
	defer q.mu.Unlock()
	return Stats{
		Pending:     len(q.pending),
		Running:     len(q.active),
		PendingCost: q.pendingCost,
		RunningCost: q.runningCost,
	}
}

// jobHeap orders pending jobs by (priority desc, seq asc).
type jobHeap []*Job

func (h jobHeap) Len() int { return len(h) }
func (h jobHeap) Less(i, j int) bool {
	if h[i].priority != h[j].priority {
		return h[i].priority > h[j].priority
	}
	return h[i].seq < h[j].seq
}
func (h jobHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}
func (h *jobHeap) Push(x interface{}) {
	j := x.(*Job)
	j.index = len(*h)
	*h = append(*h, j)
}
func (h *jobHeap) Pop() interface{} {
	old := *h
	n := len(old)
	j := old[n-1]
	old[n-1] = nil
	j.index = -1
	*h = old[:n-1]
	return j
}
