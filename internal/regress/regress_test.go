package regress

import (
	"math"
	"testing"

	"ampsched/internal/rng"
)

func TestNumTerms(t *testing.T) {
	// degree 1: 1, x1, x2 -> 3; degree 2: +x1^2, x1x2, x2^2 -> 6.
	if NumTerms(1) != 3 || NumTerms(2) != 6 || NumTerms(3) != 10 {
		t.Fatalf("NumTerms: %d %d %d", NumTerms(1), NumTerms(2), NumTerms(3))
	}
}

func TestFitRecoversKnownPolynomial(t *testing.T) {
	// y = 2 + 0.5 x1 - 0.25 x2 + 0.01 x1 x2
	truth := func(x1, x2 float64) float64 { return 2 + 0.5*x1 - 0.25*x2 + 0.01*x1*x2 }
	var xs1, xs2, ys []float64
	for i := 0.0; i <= 100; i += 10 {
		for f := 0.0; f <= 100; f += 10 {
			xs1 = append(xs1, i)
			xs2 = append(xs2, f)
			ys = append(ys, truth(i, f))
		}
	}
	p, err := Fit(xs1, xs2, ys, 2)
	if err != nil {
		t.Fatal(err)
	}
	for _, pt := range [][2]float64{{0, 0}, {50, 50}, {100, 0}, {33, 66}} {
		got := p.Eval(pt[0], pt[1])
		want := truth(pt[0], pt[1])
		if math.Abs(got-want) > 1e-6 {
			t.Fatalf("Eval(%v) = %g, want %g", pt, got, want)
		}
	}
	if r2 := p.R2(xs1, xs2, ys); r2 < 0.999999 {
		t.Fatalf("R2 = %g for exact data", r2)
	}
}

func TestFitNoisy(t *testing.T) {
	r := rng.New(5)
	truth := func(x1, x2 float64) float64 { return 1 + 0.02*x1 - 0.015*x2 }
	var xs1, xs2, ys []float64
	for i := 0; i < 300; i++ {
		a, b := r.Float64()*100, r.Float64()*100
		xs1 = append(xs1, a)
		xs2 = append(xs2, b)
		ys = append(ys, truth(a, b)+(r.Float64()-0.5)*0.02)
	}
	p, err := Fit(xs1, xs2, ys, 1)
	if err != nil {
		t.Fatal(err)
	}
	if r2 := p.R2(xs1, xs2, ys); r2 < 0.95 {
		t.Fatalf("R2 = %g on low-noise data", r2)
	}
}

func TestFitErrors(t *testing.T) {
	if _, err := Fit([]float64{1}, []float64{1}, []float64{1}, 0); err == nil {
		t.Fatal("degree 0 accepted")
	}
	if _, err := Fit([]float64{1}, []float64{1}, []float64{1}, 7); err == nil {
		t.Fatal("degree 7 accepted")
	}
	if _, err := Fit([]float64{1, 2}, []float64{1}, []float64{1, 2}, 1); err == nil {
		t.Fatal("length mismatch accepted")
	}
	if _, err := Fit([]float64{1, 2}, []float64{1, 2}, []float64{1, 2}, 2); err == nil {
		t.Fatal("underdetermined fit accepted")
	}
}

func TestR2Degenerate(t *testing.T) {
	p := &Poly2D{Degree: 1, Coeffs: []float64{5, 0, 0}}
	// Constant target matched exactly: R2 = 1 by convention.
	if r2 := p.R2([]float64{1, 2}, []float64{3, 4}, []float64{5, 5}); r2 != 1 {
		t.Fatalf("constant exact fit R2 = %g", r2)
	}
	// Constant target mismatched: R2 = 0 by convention.
	if r2 := p.R2([]float64{1, 2}, []float64{3, 4}, []float64{7, 7}); r2 != 0 {
		t.Fatalf("constant miss R2 = %g", r2)
	}
	if (&Poly2D{Degree: 1, Coeffs: []float64{0, 0, 0}}).R2(nil, nil, nil) != 0 {
		t.Fatal("empty R2 not 0")
	}
}

func TestEvalTermOrderMatchesFit(t *testing.T) {
	// Fit y = x1^2 exactly and check a fresh evaluation point.
	var xs1, xs2, ys []float64
	for i := 0.0; i < 12; i++ {
		xs1 = append(xs1, i)
		xs2 = append(xs2, math.Mod(i*7, 11))
		ys = append(ys, i*i)
	}
	p, err := Fit(xs1, xs2, ys, 2)
	if err != nil {
		t.Fatal(err)
	}
	if got := p.Eval(20, 3); math.Abs(got-400) > 1e-5 {
		t.Fatalf("extrapolated Eval = %g, want 400", got)
	}
}
