// Package regress implements the non-linear regression step of §V: a
// 2-D polynomial surface fitted by least squares to the profiled
// (%INT, %FP) -> performance/watt-ratio observations, producing the
// closed-form estimator visualized in the paper's Fig. 4.
package regress

import (
	"fmt"
	"math"

	"ampsched/internal/linalg"
)

// Poly2D is a bivariate polynomial sum_{i+j<=Degree} c[i,j] x1^i x2^j.
type Poly2D struct {
	Degree int
	Coeffs []float64 // ordered by terms() enumeration
}

// terms enumerates the exponent pairs (i, j) with i+j <= degree in a
// fixed order shared by fitting and evaluation.
func terms(degree int) [][2]int {
	var t [][2]int
	for total := 0; total <= degree; total++ {
		for i := total; i >= 0; i-- {
			t = append(t, [2]int{i, total - i})
		}
	}
	return t
}

// NumTerms returns the number of coefficients of a degree-d Poly2D.
func NumTerms(degree int) int { return len(terms(degree)) }

// Eval evaluates the polynomial at (x1, x2).
func (p *Poly2D) Eval(x1, x2 float64) float64 {
	s := 0.0
	for k, e := range terms(p.Degree) {
		s += p.Coeffs[k] * math.Pow(x1, float64(e[0])) * math.Pow(x2, float64(e[1]))
	}
	return s
}

// Fit fits a degree-d polynomial surface to observations (x1, x2, y)
// by ordinary least squares.
func Fit(x1, x2, y []float64, degree int) (*Poly2D, error) {
	if degree < 1 || degree > 6 {
		return nil, fmt.Errorf("regress: unsupported degree %d", degree)
	}
	n := len(y)
	if len(x1) != n || len(x2) != n {
		return nil, fmt.Errorf("regress: length mismatch (%d, %d, %d)", len(x1), len(x2), n)
	}
	tms := terms(degree)
	if n < len(tms) {
		return nil, fmt.Errorf("regress: %d observations for %d terms", n, len(tms))
	}
	design := linalg.NewMatrix(n, len(tms))
	for r := 0; r < n; r++ {
		for c, e := range tms {
			design.Set(r, c, math.Pow(x1[r], float64(e[0]))*math.Pow(x2[r], float64(e[1])))
		}
	}
	coeffs, err := linalg.LeastSquares(design, y)
	if err != nil {
		return nil, fmt.Errorf("regress: %w", err)
	}
	return &Poly2D{Degree: degree, Coeffs: coeffs}, nil
}

// R2 computes the coefficient of determination of the fit on the
// given observations.
func (p *Poly2D) R2(x1, x2, y []float64) float64 {
	if len(y) == 0 {
		return 0
	}
	mean := 0.0
	for _, v := range y {
		mean += v
	}
	mean /= float64(len(y))
	var ssRes, ssTot float64
	for i := range y {
		d := y[i] - p.Eval(x1[i], x2[i])
		ssRes += d * d
		t := y[i] - mean
		ssTot += t * t
	}
	if ssTot == 0 {
		if ssRes == 0 {
			return 1
		}
		return 0
	}
	return 1 - ssRes/ssTot
}
