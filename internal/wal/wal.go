// Package wal is a durable, versioned, CRC32C-framed append-only log —
// the crash-safety substrate of the simulation service. The server
// journals every job lifecycle transition through it (internal/server)
// so a kill -9 loses no acknowledged work: on restart the journal is
// replayed, incomplete jobs are re-enqueued, and completed results are
// served from the content-addressed cache instead of re-simulated.
//
// The framing reuses the trace-v2 idiom (internal/trace): every record
// is prefixed by a two-byte sync marker and carries a CRC32-Castagnoli
// over its type and payload, so corruption — a torn write at kill -9,
// an injected disk fault, a bad sector — is detected at record
// granularity. Replay skips a damaged record and scans forward for the
// next sync marker (skip-and-resync); a segment whose header is
// unreadable is quarantined (renamed *.corrupt) instead of failing
// recovery.
//
// Layout. A log is a directory of segment files
// ("journal-00000001.wal", ...), each opened append-only:
//
//	segment: magic "AMPW" | version u8
//	record:  sync 0xD7 0x4A | type u8 | len uvarint | crc32c u32 LE | payload
//
// The CRC covers type byte and payload. Appends go straight to the
// file descriptor (no userspace buffering) and Sync fsyncs, so a
// record that Append+Sync reported durable is durable.
//
// Torn-write recovery contract: when Append fails partway (disk error,
// injected fault), the segment may end in a torn frame. The caller
// simply calls Append again — the retry appends a fresh complete frame
// after the garbage, and Replay's resync skips the torn bytes. This is
// how the server guarantees acknowledged-implies-journaled under
// injected write faults.
package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
)

// Magic identifies a journal segment.
var Magic = [4]byte{'A', 'M', 'P', 'W'}

// Version of the segment format written by Open.
const Version = 1

// Sync marker bytes (distinct from the trace format's, so a journal
// segment is never mistaken for a trace).
const (
	syncA = 0xD7
	syncB = 0x4A
)

// MaxRecordBytes bounds a declared payload length; larger values mark
// a forged or corrupted frame header. Journal payloads are small JSON
// documents and checkpoint blobs stay well under this.
const MaxRecordBytes = 1 << 20

// crcTable is the Castagnoli polynomial (hardware-accelerated on
// amd64/arm64).
var crcTable = crc32.MakeTable(crc32.Castagnoli)

// ErrClosed is returned by operations on a closed log.
var ErrClosed = errors.New("wal: closed")

// Record is one journal entry: an application-defined type tag and an
// opaque payload.
type Record struct {
	Type byte
	Data []byte
}

// WriteHook intercepts segment writes for fault injection (the chaos
// harness): given the frame about to be written, it returns how many
// bytes to actually write and an error to report. keep < len(p) with a
// non-nil error models a torn write; keep == 0 a failed write; a nil
// hook writes everything. A hook must never report success for a
// partial write — Append trusts a nil error to mean the frame is
// complete.
type WriteHook func(p []byte) (keep int, err error)

// Options tune a Log.
type Options struct {
	// MaxSegmentBytes rotates to a fresh segment past this size
	// (0 = 4 MiB). Rotation bounds the blast radius of quarantine.
	MaxSegmentBytes int64
	// WriteHook, when non-nil, intercepts every segment write (fault
	// injection; see WriteHook).
	WriteHook WriteHook
}

// Log is the append side. Open creates or continues a journal
// directory; Append/Sync/Close must have their errors checked (ampvet
// obserrcheck enforces this) — a dropped error here is a lost job.
// A Log is safe for concurrent use.
type Log struct {
	dir  string
	opts Options

	mu     sync.Mutex
	f      *os.File
	seq    uint64
	size   int64
	closed bool
}

// Open creates dir if needed and opens a fresh segment after the
// highest existing one. Existing segments are never reopened for
// write: a process that died mid-record leaves its torn tail behind,
// and the new segment starts clean.
func Open(dir string, opts Options) (*Log, error) {
	if opts.MaxSegmentBytes == 0 {
		opts.MaxSegmentBytes = 4 << 20
	}
	if opts.MaxSegmentBytes < 64 {
		return nil, fmt.Errorf("wal: segment size %d too small", opts.MaxSegmentBytes)
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("wal: creating %s: %w", dir, err)
	}
	segs, err := Segments(dir)
	if err != nil {
		return nil, err
	}
	var last uint64
	if n := len(segs); n > 0 {
		last = segs[n-1].Seq
	}
	l := &Log{dir: dir, opts: opts, seq: last}
	if err := l.rotate(); err != nil {
		return nil, err
	}
	return l, nil
}

// Dir returns the journal directory.
func (l *Log) Dir() string { return l.dir }

// segmentName renders the file name of segment seq.
func segmentName(seq uint64) string {
	return fmt.Sprintf("journal-%08d.wal", seq)
}

// rotate opens the next segment and writes its header. Callers hold
// the lock (or, in Open, have exclusive access).
func (l *Log) rotate() error {
	if l.f != nil {
		if err := l.f.Close(); err != nil {
			return fmt.Errorf("wal: closing full segment: %w", err)
		}
		l.f = nil
	}
	l.seq++
	path := filepath.Join(l.dir, segmentName(l.seq))
	f, err := os.OpenFile(path, os.O_CREATE|os.O_EXCL|os.O_WRONLY, 0o644)
	if err != nil {
		return fmt.Errorf("wal: creating segment: %w", err)
	}
	hdr := append(append([]byte{}, Magic[:]...), Version)
	if _, err := f.Write(hdr); err != nil {
		f.Close()
		return fmt.Errorf("wal: writing segment header: %w", err)
	}
	l.f = f
	l.size = int64(len(hdr))
	return nil
}

// appendFrame frames rec for the wire.
func appendFrame(b []byte, rec Record) []byte {
	b = append(b, syncA, syncB, rec.Type)
	var tmp [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(tmp[:], uint64(len(rec.Data)))
	b = append(b, tmp[:n]...)
	crc := crc32.Update(crc32.Checksum([]byte{rec.Type}, crcTable), crcTable, rec.Data)
	var crcb [4]byte
	binary.LittleEndian.PutUint32(crcb[:], crc)
	b = append(b, crcb[:]...)
	return append(b, rec.Data...)
}

// Append frames and writes one record. On error the segment may hold a
// torn frame; retrying the Append writes a fresh complete frame after
// it and Replay resyncs past the garbage — so callers that need the
// record durable retry Append, then Sync, then acknowledge.
//
//ampvet:allow lockcheck l.mu IS the WAL serialization contract: frame construction and the file append must be one atomic critical section
func (l *Log) Append(rec Record) error {
	if len(rec.Data) > MaxRecordBytes {
		return fmt.Errorf("wal: record of %d bytes exceeds limit %d", len(rec.Data), MaxRecordBytes)
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return ErrClosed
	}
	if l.size >= l.opts.MaxSegmentBytes {
		if err := l.rotate(); err != nil {
			return err
		}
	}
	frame := appendFrame(nil, rec)
	keep := len(frame)
	var hookErr error
	if l.opts.WriteHook != nil {
		keep, hookErr = l.opts.WriteHook(frame)
		if keep < 0 {
			keep = 0
		}
		if keep > len(frame) {
			keep = len(frame)
		}
	}
	var n int
	var werr error
	if keep > 0 {
		n, werr = l.f.Write(frame[:keep])
	}
	l.size += int64(n)
	if werr != nil {
		return fmt.Errorf("wal: appending record: %w", werr)
	}
	if hookErr != nil {
		return fmt.Errorf("wal: appending record: %w", hookErr)
	}
	if keep < len(frame) {
		// A hook that truncates must also error; guard the contract.
		return fmt.Errorf("wal: torn append (%d of %d bytes)", keep, len(frame))
	}
	return nil
}

// Sync fsyncs the open segment: records appended before a successful
// Sync survive kill -9.
//
//ampvet:allow lockcheck the fsync must not race a concurrent Append or rotate; holding l.mu across it is the durability contract
func (l *Log) Sync() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return ErrClosed
	}
	if err := l.f.Sync(); err != nil {
		return fmt.Errorf("wal: sync: %w", err)
	}
	return nil
}

// Close syncs and closes the open segment. Further operations return
// ErrClosed.
//
//ampvet:allow lockcheck teardown holds l.mu so no Append can interleave with the final sync+close
func (l *Log) Close() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return nil
	}
	l.closed = true
	if err := l.f.Sync(); err != nil {
		l.f.Close()
		return fmt.Errorf("wal: sync on close: %w", err)
	}
	if err := l.f.Close(); err != nil {
		return fmt.Errorf("wal: close: %w", err)
	}
	return nil
}

// SegmentInfo names one journal segment on disk.
type SegmentInfo struct {
	Seq  uint64
	Path string
}

// Segments lists the journal segments of dir in sequence order.
// Quarantined (*.corrupt) files are excluded. A missing directory is
// an empty journal, not an error.
func Segments(dir string) ([]SegmentInfo, error) {
	des, err := os.ReadDir(dir)
	if err != nil {
		if os.IsNotExist(err) {
			return nil, nil
		}
		return nil, fmt.Errorf("wal: reading %s: %w", dir, err)
	}
	var segs []SegmentInfo
	for _, de := range des {
		name := de.Name()
		if de.IsDir() || !strings.HasPrefix(name, "journal-") || !strings.HasSuffix(name, ".wal") {
			continue
		}
		var seq uint64
		if _, err := fmt.Sscanf(name, "journal-%08d.wal", &seq); err != nil || seq == 0 {
			continue
		}
		segs = append(segs, SegmentInfo{Seq: seq, Path: filepath.Join(dir, name)})
	}
	sort.Slice(segs, func(i, j int) bool { return segs[i].Seq < segs[j].Seq })
	return segs, nil
}

// ReplayStats reports what Replay delivered, skipped and quarantined.
type ReplayStats struct {
	Segments            int
	Records             uint64
	RecordsDropped      uint64
	BytesSkipped        uint64
	SegmentsQuarantined int
}

// Degraded reports whether anything was lost or quarantined.
func (s ReplayStats) Degraded() bool {
	return s.RecordsDropped > 0 || s.BytesSkipped > 0 || s.SegmentsQuarantined > 0
}

// Replay reads every segment of dir in order, delivering each intact
// record to fn. Damaged records are skipped with resync; a segment
// whose header is unreadable or wrong is renamed "<name>.corrupt" and
// counted, never fatal. Replay only errors on I/O failure reading the
// directory or when fn returns an error (which aborts the replay).
func Replay(dir string, fn func(Record) error) (ReplayStats, error) {
	var stats ReplayStats
	segs, err := Segments(dir)
	if err != nil {
		return stats, err
	}
	for _, seg := range segs {
		body, err := os.ReadFile(seg.Path)
		if err != nil {
			return stats, fmt.Errorf("wal: reading segment %s: %w", seg.Path, err)
		}
		if len(body) < len(Magic)+1 || [4]byte(body[:4]) != Magic || body[4] != Version {
			if err := quarantine(seg.Path); err != nil {
				return stats, err
			}
			stats.SegmentsQuarantined++
			continue
		}
		stats.Segments++
		segStats, err := replayBody(body[len(Magic)+1:], fn)
		stats.Records += segStats.Records
		stats.RecordsDropped += segStats.RecordsDropped
		stats.BytesSkipped += segStats.BytesSkipped
		if err != nil {
			return stats, err
		}
	}
	return stats, nil
}

// quarantine renames a damaged segment aside so the next boot does not
// trip on it again.
func quarantine(path string) error {
	if err := os.Rename(path, path+".corrupt"); err != nil {
		return fmt.Errorf("wal: quarantining %s: %w", path, err)
	}
	return nil
}

// replayBody scans one segment body, delivering intact records and
// resyncing past damage.
func replayBody(body []byte, fn func(Record) error) (ReplayStats, error) {
	var stats ReplayStats
	pos := 0
	for pos < len(body) {
		if body[pos] != syncA || pos+1 >= len(body) || body[pos+1] != syncB {
			pos++
			stats.BytesSkipped++
			continue
		}
		rec, consumed, err := parseFrame(body[pos:])
		if err != nil {
			// Damaged frame: resync just past the marker so an intact
			// frame hiding in the damaged span is still found.
			stats.RecordsDropped++
			pos += 2
			stats.BytesSkipped += 2
			continue
		}
		if err := fn(rec); err != nil {
			return stats, err
		}
		stats.Records++
		pos += consumed
	}
	return stats, nil
}

// parseFrame decodes one frame starting at the sync marker in data,
// returning the record and total encoded size.
func parseFrame(data []byte) (Record, int, error) {
	pos := 2 // past sync
	if pos >= len(data) {
		return Record{}, 0, io.ErrUnexpectedEOF
	}
	typ := data[pos]
	pos++
	size, n := binary.Uvarint(data[pos:])
	if n <= 0 || size > MaxRecordBytes {
		return Record{}, 0, fmt.Errorf("wal: implausible record length")
	}
	pos += n
	if pos+4+int(size) > len(data) {
		return Record{}, 0, io.ErrUnexpectedEOF
	}
	crc := binary.LittleEndian.Uint32(data[pos:])
	pos += 4
	payload := data[pos : pos+int(size)]
	want := crc32.Update(crc32.Checksum([]byte{typ}, crcTable), crcTable, payload)
	if want != crc {
		return Record{}, 0, fmt.Errorf("wal: record checksum mismatch")
	}
	// Copy out: body is a whole-file read the caller may retain records
	// from, but keeping every payload alive via one backing array would
	// pin the full segment; journal records are small.
	out := make([]byte, len(payload))
	copy(out, payload)
	return Record{Type: typ, Data: out}, pos + int(size), nil
}
