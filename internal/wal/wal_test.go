package wal

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
)

// collect replays dir into a slice.
func collect(t *testing.T, dir string) ([]Record, ReplayStats) {
	t.Helper()
	var recs []Record
	stats, err := Replay(dir, func(r Record) error {
		recs = append(recs, r)
		return nil
	})
	if err != nil {
		t.Fatalf("Replay: %v", err)
	}
	return recs, stats
}

func TestAppendReplayRoundTrip(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	want := []Record{
		{Type: 1, Data: []byte(`{"id":"1"}`)},
		{Type: 2, Data: nil},
		{Type: 3, Data: bytes.Repeat([]byte{0xD7, 0x4A}, 100)}, // sync markers in payload
	}
	for _, r := range want {
		if err := l.Append(r); err != nil {
			t.Fatalf("Append: %v", err)
		}
	}
	if err := l.Sync(); err != nil {
		t.Fatalf("Sync: %v", err)
	}
	if err := l.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	recs, stats := collect(t, dir)
	if stats.Degraded() {
		t.Fatalf("clean log degraded: %+v", stats)
	}
	if len(recs) != len(want) {
		t.Fatalf("replayed %d records, want %d", len(recs), len(want))
	}
	for i, r := range recs {
		if r.Type != want[i].Type || !bytes.Equal(r.Data, want[i].Data) {
			t.Errorf("record %d = %v, want %v", i, r, want[i])
		}
	}
}

func TestReplaySpansSegmentsAndRestarts(t *testing.T) {
	dir := t.TempDir()
	// Tiny segments force rotation; reopening continues the sequence.
	for restart := 0; restart < 3; restart++ {
		l, err := Open(dir, Options{MaxSegmentBytes: 64})
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 10; i++ {
			rec := Record{Type: 1, Data: []byte(fmt.Sprintf("restart-%d-rec-%d", restart, i))}
			if err := l.Append(rec); err != nil {
				t.Fatal(err)
			}
		}
		if err := l.Close(); err != nil {
			t.Fatal(err)
		}
	}
	recs, stats := collect(t, dir)
	if stats.Degraded() {
		t.Fatalf("clean log degraded: %+v", stats)
	}
	if len(recs) != 30 {
		t.Fatalf("replayed %d records, want 30", len(recs))
	}
	if string(recs[29].Data) != "restart-2-rec-9" {
		t.Errorf("last record = %q, want restart-2-rec-9", recs[29].Data)
	}
	segs, err := Segments(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(segs) < 3 {
		t.Errorf("expected rotation to leave >= 3 segments, got %d", len(segs))
	}
}

func TestReplaySkipsCorruptRecordAndResyncs(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if err := l.Append(Record{Type: 1, Data: []byte(fmt.Sprintf("rec-%d", i))}); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	segs, err := Segments(dir)
	if err != nil || len(segs) != 1 {
		t.Fatalf("Segments = %v, %v", segs, err)
	}
	body, err := os.ReadFile(segs[0].Path)
	if err != nil {
		t.Fatal(err)
	}
	// Flip a payload byte of the middle record.
	idx := bytes.Index(body, []byte("rec-2"))
	if idx < 0 {
		t.Fatal("rec-2 not found in segment")
	}
	body[idx+4] ^= 0xFF
	if err := os.WriteFile(segs[0].Path, body, 0o644); err != nil {
		t.Fatal(err)
	}

	recs, stats := collect(t, dir)
	if len(recs) != 4 {
		t.Fatalf("replayed %d records, want 4 (corrupt one dropped)", len(recs))
	}
	for _, r := range recs {
		if string(r.Data) == "rec-2" {
			t.Error("corrupt record delivered")
		}
	}
	if stats.RecordsDropped == 0 || !stats.Degraded() {
		t.Errorf("stats = %+v, want dropped records", stats)
	}
}

func TestReplayQuarantinesCorruptSegment(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Append(Record{Type: 1, Data: []byte("survivor")}); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	// A second "segment" with garbage where the header should be.
	bad := filepath.Join(dir, segmentName(99))
	if err := os.WriteFile(bad, []byte("not a journal"), 0o644); err != nil {
		t.Fatal(err)
	}

	recs, stats := collect(t, dir)
	if len(recs) != 1 || string(recs[0].Data) != "survivor" {
		t.Fatalf("replayed %v, want the one intact record", recs)
	}
	if stats.SegmentsQuarantined != 1 {
		t.Fatalf("stats = %+v, want 1 quarantined segment", stats)
	}
	if _, err := os.Stat(bad + ".corrupt"); err != nil {
		t.Errorf("quarantined segment not renamed: %v", err)
	}
	// A second replay must not trip on the quarantined file.
	recs2, stats2 := collect(t, dir)
	if len(recs2) != 1 || stats2.SegmentsQuarantined != 0 {
		t.Errorf("second replay: recs=%d stats=%+v, want 1 rec, 0 quarantined", len(recs2), stats2)
	}
}

// TestTornWriteRetry exercises the crash-safety contract: a hook tears
// one append; the caller retries; replay delivers exactly one copy of
// every record, resyncing past the torn garbage.
func TestTornWriteRetry(t *testing.T) {
	dir := t.TempDir()
	torn := false
	errTorn := errors.New("injected torn write")
	hook := func(p []byte) (int, error) {
		if !torn {
			torn = true
			return len(p) / 2, errTorn
		}
		return len(p), nil
	}
	l, err := Open(dir, Options{WriteHook: hook})
	if err != nil {
		t.Fatal(err)
	}
	rec := Record{Type: 7, Data: []byte("must survive the tear")}
	err = l.Append(rec)
	if err == nil || !errors.Is(err, errTorn) {
		t.Fatalf("torn Append error = %v, want injected error", err)
	}
	if err := l.Append(rec); err != nil { // the retry
		t.Fatalf("retry Append: %v", err)
	}
	if err := l.Append(Record{Type: 8, Data: []byte("after")}); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	recs, stats := collect(t, dir)
	if len(recs) != 2 {
		t.Fatalf("replayed %d records, want 2 (torn prefix skipped)", len(recs))
	}
	if string(recs[0].Data) != "must survive the tear" || string(recs[1].Data) != "after" {
		t.Errorf("records = %q, %q", recs[0].Data, recs[1].Data)
	}
	if !stats.Degraded() {
		t.Errorf("stats = %+v, want skipped bytes from the torn frame", stats)
	}
}

func TestAppendAfterCloseFails(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	if err := l.Append(Record{Type: 1}); !errors.Is(err, ErrClosed) {
		t.Errorf("Append after Close = %v, want ErrClosed", err)
	}
	if err := l.Sync(); !errors.Is(err, ErrClosed) {
		t.Errorf("Sync after Close = %v, want ErrClosed", err)
	}
	if err := l.Close(); err != nil {
		t.Errorf("second Close = %v, want nil", err)
	}
}

func TestOversizedRecordRejected(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	err = l.Append(Record{Type: 1, Data: make([]byte, MaxRecordBytes+1)})
	if err == nil || !strings.Contains(err.Error(), "exceeds limit") {
		t.Errorf("oversized Append = %v, want limit error", err)
	}
}

// TestConcurrentAppend hammers one log from many goroutines; every
// record must replay intact (frame writes are atomic under the lock).
func TestConcurrentAppend(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{MaxSegmentBytes: 1 << 10})
	if err != nil {
		t.Fatal(err)
	}
	const writers, perWriter = 8, 50
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				rec := Record{Type: byte(w), Data: []byte(fmt.Sprintf("w%d-%d", w, i))}
				if err := l.Append(rec); err != nil {
					t.Errorf("Append: %v", err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	recs, stats := collect(t, dir)
	if stats.Degraded() {
		t.Fatalf("clean concurrent log degraded: %+v", stats)
	}
	if len(recs) != writers*perWriter {
		t.Fatalf("replayed %d records, want %d", len(recs), writers*perWriter)
	}
}

func TestReplayFnErrorAborts(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if err := l.Append(Record{Type: 1, Data: []byte{byte(i)}}); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	boom := errors.New("boom")
	n := 0
	_, err = Replay(dir, func(Record) error {
		n++
		if n == 2 {
			return boom
		}
		return nil
	})
	if !errors.Is(err, boom) {
		t.Errorf("Replay error = %v, want boom", err)
	}
	if n != 2 {
		t.Errorf("fn called %d times, want 2", n)
	}
}
