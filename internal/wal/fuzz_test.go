package wal

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"
)

// FuzzReplayBody throws arbitrary bytes at the segment-body scanner:
// it must never panic, never deliver a record whose re-encoding
// disagrees with what was scanned, and always terminate.
func FuzzReplayBody(f *testing.F) {
	// Seed with a well-formed segment body holding a few records.
	var body []byte
	for _, rec := range []Record{
		{Type: 1, Data: []byte(`{"id":"1","spec":{}}`)},
		{Type: 2, Data: nil},
		{Type: 3, Data: bytes.Repeat([]byte{syncA, syncB}, 16)},
	} {
		body = appendFrame(body, rec)
	}
	f.Add(body)
	f.Add([]byte{})
	f.Add([]byte{syncA, syncB})
	f.Add([]byte{syncA, syncB, 0x01, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF})
	truncated := appendFrame(nil, Record{Type: 9, Data: []byte("torn")})
	f.Add(truncated[:len(truncated)-2])

	f.Fuzz(func(t *testing.T, data []byte) {
		var recs []Record
		stats, err := replayBody(data, func(r Record) error {
			recs = append(recs, r)
			return nil
		})
		if err != nil {
			t.Fatalf("replayBody with nil-error fn errored: %v", err)
		}
		// Every delivered record must survive a round trip: re-framing
		// it and rescanning yields the identical record.
		for _, r := range recs {
			frame := appendFrame(nil, r)
			got, consumed, perr := parseFrame(frame)
			if perr != nil || consumed != len(frame) {
				t.Fatalf("re-encode of delivered record failed: %v (consumed %d/%d)", perr, consumed, len(frame))
			}
			if got.Type != r.Type || !bytes.Equal(got.Data, r.Data) {
				t.Fatalf("round trip mismatch: %v != %v", got, r)
			}
		}
		// Conservation: delivered + dropped + skipped accounts for the
		// whole input (every byte is consumed exactly once).
		if stats.Records != uint64(len(recs)) {
			t.Fatalf("stats.Records = %d, delivered %d", stats.Records, len(recs))
		}
	})
}

// FuzzReplaySegment writes arbitrary bytes after a valid header and
// replays through the full directory path (quarantine machinery
// included): no panics, no errors for damage-only inputs.
func FuzzReplaySegment(f *testing.F) {
	good := appendFrame(nil, Record{Type: 1, Data: []byte("ok")})
	f.Add(good)
	f.Add([]byte("garbage"))
	f.Fuzz(func(t *testing.T, body []byte) {
		dir := t.TempDir()
		seg := append(append([]byte{}, Magic[:]...), Version)
		seg = append(seg, body...)
		if err := os.WriteFile(filepath.Join(dir, segmentName(1)), seg, 0o644); err != nil {
			t.Fatal(err)
		}
		if _, err := Replay(dir, func(Record) error { return nil }); err != nil {
			t.Fatalf("Replay errored on damaged-only input: %v", err)
		}
	})
}
