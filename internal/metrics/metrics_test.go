package metrics

import (
	"math"
	"testing"
	"testing/quick"

	"ampsched/internal/amp"
)

func result(n0, n1 string, ipcw0, ipcw1 float64) amp.Result {
	var r amp.Result
	r.Threads[0] = amp.ThreadResult{Name: n0, IPCPerWatt: ipcw0}
	r.Threads[1] = amp.ThreadResult{Name: n1, IPCPerWatt: ipcw1}
	return r
}

func TestCompareIdentity(t *testing.T) {
	a := result("x", "y", 0.2, 0.3)
	pc, err := Compare(a, a)
	if err != nil {
		t.Fatal(err)
	}
	if pc.WeightedPct != 0 || pc.GeoPct != 0 {
		t.Fatalf("identity comparison nonzero: %+v", pc)
	}
	if pc.Ratios[0] != 1 || pc.Ratios[1] != 1 {
		t.Fatalf("ratios: %v", pc.Ratios)
	}
}

func TestCompareKnown(t *testing.T) {
	scheme := result("x", "y", 0.22, 0.30)
	ref := result("x", "y", 0.20, 0.30)
	pc, err := Compare(scheme, ref)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(pc.Ratios[0]-1.1) > 1e-12 || pc.Ratios[1] != 1 {
		t.Fatalf("ratios: %v", pc.Ratios)
	}
	if math.Abs(pc.WeightedPct-5) > 1e-9 {
		t.Fatalf("weighted = %g, want 5", pc.WeightedPct)
	}
	wantGeo := 100 * (math.Sqrt(1.1) - 1)
	if math.Abs(pc.GeoPct-wantGeo) > 1e-9 {
		t.Fatalf("geo = %g, want %g", pc.GeoPct, wantGeo)
	}
	if pc.Bench != [2]string{"x", "y"} {
		t.Fatalf("bench names: %v", pc.Bench)
	}
}

func TestCompareMismatchedNames(t *testing.T) {
	if _, err := Compare(result("x", "y", 1, 1), result("x", "z", 1, 1)); err == nil {
		t.Fatal("mismatched names accepted")
	}
}

func TestCompareNonPositive(t *testing.T) {
	if _, err := Compare(result("x", "y", 0, 1), result("x", "y", 1, 1)); err == nil {
		t.Fatal("zero IPC/Watt accepted")
	}
	if _, err := Compare(result("x", "y", 1, 1), result("x", "y", 1, -1)); err == nil {
		t.Fatal("negative IPC/Watt accepted")
	}
}

func TestSpeedupHelpers(t *testing.T) {
	r := [2]float64{1.2, 0.8}
	if WeightedSpeedup(r) != 1.0 {
		t.Fatal("weighted wrong")
	}
	if math.Abs(GeometricSpeedup(r)-math.Sqrt(0.96)) > 1e-12 {
		t.Fatal("geometric wrong")
	}
}

func TestGeoPenalizesImbalance(t *testing.T) {
	// Same weighted speedup, different balance: geometric must favor
	// the balanced outcome (the paper's fairness rationale).
	balanced := Compare2(t, 1.1, 1.1)
	skewed := Compare2(t, 1.6, 0.6)
	if WeightedSpeedup(balanced.Ratios) != WeightedSpeedup(skewed.Ratios) {
		t.Fatal("test setup: weighted speedups differ")
	}
	if balanced.GeoPct <= skewed.GeoPct {
		t.Fatalf("geometric did not penalize imbalance: %g vs %g", balanced.GeoPct, skewed.GeoPct)
	}
}

// Compare2 builds a comparison with the given per-thread ratios.
func Compare2(t *testing.T, r0, r1 float64) PairComparison {
	t.Helper()
	pc, err := Compare(result("a", "b", r0, r1), result("a", "b", 1, 1))
	if err != nil {
		t.Fatal(err)
	}
	return pc
}

func TestQuickGeoLEWeighted(t *testing.T) {
	f := func(a, b uint16) bool {
		r0 := float64(a)/1000 + 0.01
		r1 := float64(b)/1000 + 0.01
		pc, err := Compare(result("a", "b", r0, r1), result("a", "b", 1, 1))
		if err != nil {
			return false
		}
		return pc.GeoPct <= pc.WeightedPct+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
