// Package metrics computes the evaluation metrics of §VII: weighted
// and geometric IPC/Watt speedups of one scheduling scheme over a
// reference scheme for a two-thread workload.
//
// For a pair run under scheme A and reference B, each thread's ratio
// is r_i = IPCW_i(A) / IPCW_i(B). The weighted speedup is the
// arithmetic mean of the ratios; the geometric speedup is their
// geometric mean, which penalizes schemes that help one thread at the
// other's expense (the paper's fairness argument).
package metrics

import (
	"fmt"
	"math"

	"ampsched/internal/amp"
)

// PairComparison is the outcome of comparing one scheme against a
// reference on one two-benchmark combination.
type PairComparison struct {
	Bench [2]string
	// Ratios are the per-thread IPC/Watt ratios scheme/reference.
	//ampvet:unit dimensionless
	Ratios [2]float64
	// WeightedPct is 100*(mean(ratios) - 1).
	//ampvet:unit dimensionless
	WeightedPct float64
	// GeoPct is 100*(sqrt(r0*r1) - 1).
	//ampvet:unit dimensionless
	GeoPct float64
}

// Compare derives the paper's improvement metrics from two run
// results over the same workload pair. Thread identity is by index:
// result Threads[i] must be the same benchmark in both runs.
func Compare(scheme, reference amp.Result) (PairComparison, error) {
	var pc PairComparison
	for i := 0; i < 2; i++ {
		if scheme.Threads[i].Name != reference.Threads[i].Name {
			return pc, fmt.Errorf("metrics: thread %d mismatch: %q vs %q",
				i, scheme.Threads[i].Name, reference.Threads[i].Name)
		}
		a := scheme.Threads[i].IPCPerWatt
		b := reference.Threads[i].IPCPerWatt
		if a <= 0 || b <= 0 {
			return pc, fmt.Errorf("metrics: non-positive IPC/Watt for thread %d (%g, %g)", i, a, b)
		}
		pc.Bench[i] = scheme.Threads[i].Name
		pc.Ratios[i] = a / b
	}
	pc.WeightedPct = 100 * ((pc.Ratios[0]+pc.Ratios[1])/2 - 1)
	pc.GeoPct = 100 * (math.Sqrt(pc.Ratios[0]*pc.Ratios[1]) - 1)
	return pc, nil
}

// WeightedSpeedup returns the arithmetic mean of per-thread ratios.
func WeightedSpeedup(ratios [2]float64) float64 {
	return (ratios[0] + ratios[1]) / 2
}

// GeometricSpeedup returns the geometric mean of per-thread ratios.
func GeometricSpeedup(ratios [2]float64) float64 {
	return math.Sqrt(ratios[0] * ratios[1])
}
