package experiments

import (
	"fmt"
	"io"

	"ampsched/internal/amp"
	"ampsched/internal/metrics"
	"ampsched/internal/profilegen"
	"ampsched/internal/report"
	"ampsched/internal/sched"
	"ampsched/internal/stats"
	"ampsched/internal/workload"
)

// RunRules reproduces the §VI-A threshold derivation and compares the
// derived values to the paper's Fig. 5 rules.
func RunRules(r *Runner, w io.Writer) error {
	r.progress("deriving swap rules from per-window best mappings...")
	derived, err := profilegen.DeriveRules(r.IntCfg, r.FPCfg, workload.Representative(),
		r.Opt.ProfileInstrLimit/2, r.Opt.RuleWindow, r.Opt.RulePairs, r.Opt.Seed)
	if err != nil {
		return err
	}
	paper := sched.DefaultProposedConfig()
	t := &report.Table{
		Title:   "Fig. 5 / §VI-A: derived swapping-rule thresholds",
		Headers: []string{"Threshold", "Meaning", "Derived", "Paper"},
		Note: fmt.Sprintf("averaged over %d random pairs, %d windows of %d instructions",
			derived.Pairs, derived.Windows, r.Opt.RuleWindow),
	}
	t.AddRow("IntHigh", "%INT of thread best placed on INT core",
		fmt.Sprintf("%.1f", derived.IntHigh), fmt.Sprintf("%.0f", paper.IntHigh))
	t.AddRow("IntLow", "%INT of thread best placed on FP core",
		fmt.Sprintf("%.1f", derived.IntLow), fmt.Sprintf("%.0f", paper.IntLow))
	t.AddRow("FPHigh", "%FP of thread best placed on FP core",
		fmt.Sprintf("%.1f", derived.FPHigh), fmt.Sprintf("%.0f", paper.FPHigh))
	t.AddRow("FPLow", "%FP of thread best placed on INT core",
		fmt.Sprintf("%.1f", derived.FPLow), fmt.Sprintf("%.0f", paper.FPLow))
	return t.Fprint(w)
}

// RunFig6 reproduces the window-size x history-depth sensitivity sweep
// of Fig. 6: the average weighted IPC/Watt improvement over HPE for
// each (window, history) configuration.
func RunFig6(r *Runner, w io.Writer) error {
	matrix, err := r.Matrix()
	if err != nil {
		return err
	}
	windows := []uint64{500, 1000, 2000}
	depths := []int{5, 10}
	pairs := RandomPairs(r.Opt.SensitivityPairs, r.Opt.Seed+1)

	// HPE reference once per pair.
	hpeRes := make([]amp.Result, len(pairs))
	for i, p := range pairs {
		r.progress("fig6: HPE reference %d/%d %s", i+1, len(pairs), p.Label())
		hpeRes[i], err = r.RunPair(i+10_000, p, r.HPEFactory(matrix))
		if err != nil {
			return err
		}
	}

	t := &report.Table{
		Title:   "Fig. 6: IPC/Watt improvement over HPE by window size and history depth",
		Headers: []string{"Window_History", "avg weighted improvement", "avg geometric improvement"},
		Note:    "paper: 1000_5 is the best configuration, with small spread across the grid",
	}
	type cell struct {
		label    string
		weighted float64
	}
	var best cell
	for _, win := range windows {
		for _, d := range depths {
			var wImp, gImp []float64
			for i, p := range pairs {
				r.progress("fig6: window=%d depth=%d pair %d/%d", win, d, i+1, len(pairs))
				factory := func(opts ...sched.Option) amp.MoveScheduler {
					cfg := sched.DefaultProposedConfig()
					cfg.WindowSize = win
					cfg.HistoryDepth = d
					cfg.ForceInterval = r.Opt.ContextSwitch
					return sched.NewProposed(cfg, opts...)
				}
				res, err := r.RunPair(i+10_000, p, factory)
				if err != nil {
					return err
				}
				cmp, err := metrics.Compare(res, hpeRes[i])
				if err != nil {
					return err
				}
				wImp = append(wImp, cmp.WeightedPct)
				gImp = append(gImp, cmp.GeoPct)
			}
			label := fmt.Sprintf("%d_%d", win, d)
			mw := stats.Mean(wImp)
			t.AddRow(label, report.Pct(mw), report.Pct(stats.Mean(gImp)))
			if best.label == "" || mw > best.weighted {
				best = cell{label, mw}
			}
		}
	}
	t.Note += fmt.Sprintf("; best here: %s (%s)", best.label, report.Pct(best.weighted))
	return t.Fprint(w)
}

// writePairTable renders the Fig. 7/8 style per-pair table: the 10
// worst, 10 middle and 10 best pairs by weighted improvement, plus
// overall means.
func writePairTable(w io.Writer, title string, s *SweepResult, vsRR bool) error {
	idx := s.sortedByWeighted(vsRR)
	pick := func(i int) metrics.PairComparison {
		if vsRR {
			return s.Outcomes[i].VsRR
		}
		return s.Outcomes[i].VsHPE
	}

	t := &report.Table{
		Title:   title,
		Headers: []string{"group", "pair", "weighted", "geometric"},
	}
	groups := []struct {
		name string
		ids  []int
	}{}
	n := len(idx)
	k := 10
	if n < 3*k {
		k = n / 3
	}
	if k > 0 {
		mid := (n - k) / 2
		groups = append(groups,
			struct {
				name string
				ids  []int
			}{"worst", idx[:k]},
			struct {
				name string
				ids  []int
			}{"average", idx[mid : mid+k]},
			struct {
				name string
				ids  []int
			}{"best", idx[n-k:]},
		)
	} else {
		groups = append(groups, struct {
			name string
			ids  []int
		}{"all", idx})
	}
	for _, g := range groups {
		for _, i := range g.ids {
			c := pick(i)
			t.AddRow(g.name, s.Outcomes[i].Pair.Label(), report.Pct(c.WeightedPct), report.Pct(c.GeoPct))
		}
	}

	var wAll, gAll []float64
	degraded := 0
	for i := range s.Outcomes {
		if s.Outcomes[i].Failed {
			continue
		}
		c := pick(i)
		wAll = append(wAll, c.WeightedPct)
		gAll = append(gAll, c.GeoPct)
		if c.WeightedPct < 0 {
			degraded++
		}
	}
	t.Note = fmt.Sprintf("overall mean: weighted %s, geometric %s; %d/%d pairs degraded (%.1f%%)",
		report.Pct(stats.Mean(wAll)), report.Pct(stats.Mean(gAll)),
		degraded, len(wAll), 100*float64(degraded)/float64(len(wAll)))
	if failed := s.Failed(); failed > 0 {
		t.Note += fmt.Sprintf("; %d pair(s) FAILED and excluded:", failed)
		for i := range s.Outcomes {
			if s.Outcomes[i].Failed {
				t.Note += fmt.Sprintf(" %s (%s)", s.Outcomes[i].Pair.Label(), s.Outcomes[i].Err)
			}
		}
	}
	return t.Fprint(w)
}

// RunFig7 reproduces Fig. 7: per-pair improvement of the proposed
// scheme over HPE.
func RunFig7(r *Runner, w io.Writer) error {
	s, err := r.Sweep()
	if err != nil {
		return err
	}
	return writePairTable(w, "Fig. 7: IPC/Watt improvement over the HPE scheme", s, false)
}

// RunFig8 reproduces Fig. 8: per-pair improvement of the proposed
// scheme over Round Robin.
func RunFig8(r *Runner, w io.Writer) error {
	s, err := r.Sweep()
	if err != nil {
		return err
	}
	return writePairTable(w, "Fig. 8: IPC/Watt improvement over Round Robin", s, true)
}

// RunFig9 reproduces Fig. 9: the worst-5 mean, overall mean and best-5
// mean improvements against both reference schemes.
func RunFig9(r *Runner, w io.Writer) error {
	s, err := r.Sweep()
	if err != nil {
		return err
	}
	t := &report.Table{
		Title:   "Fig. 9: worst, average and best case IPC/Watt improvements",
		Headers: []string{"case", "vs HPE (weighted)", "vs Round Robin (weighted)"},
		Note:    "paper shape: small negative worst-5 mean, positive overall, large positive best-5 mean",
	}
	vsHPE := s.WeightedVsHPE()
	vsRR := s.WeightedVsRR()
	t.AddRow("5 worst cases", report.Pct(stats.Mean(stats.BottomK(vsHPE, 5))),
		report.Pct(stats.Mean(stats.BottomK(vsRR, 5))))
	t.AddRow(fmt.Sprintf("average of all %d", len(vsHPE)),
		report.Pct(stats.Mean(vsHPE)), report.Pct(stats.Mean(vsRR)))
	t.AddRow("5 best cases", report.Pct(stats.Mean(stats.TopK(vsHPE, 5))),
		report.Pct(stats.Mean(stats.TopK(vsRR, 5))))

	// Geometric means too (the paper quotes both).
	var gHPE, gRR []float64
	for i := range s.Outcomes {
		if s.Outcomes[i].Failed {
			continue
		}
		gHPE = append(gHPE, s.Outcomes[i].VsHPE.GeoPct)
		gRR = append(gRR, s.Outcomes[i].VsRR.GeoPct)
	}
	t.AddRow("average (geometric)", report.Pct(stats.Mean(gHPE)), report.Pct(stats.Mean(gRR)))

	// 95% bootstrap confidence intervals on the weighted means.
	loH, hiH := stats.BootstrapCI(vsHPE, 0.95, 2000, r.Opt.Seed)
	loR, hiR := stats.BootstrapCI(vsRR, 0.95, 2000, r.Opt.Seed+1)
	t.AddRow("95% CI of the mean",
		fmt.Sprintf("[%+.1f%%, %+.1f%%]", loH, hiH),
		fmt.Sprintf("[%+.1f%%, %+.1f%%]", loR, hiR))
	return t.Fprint(w)
}

// RunOverhead reproduces the §VI-C study: how the average improvement
// over HPE changes as the swap overhead grows from 100 cycles to 1M
// cycles. Both schemes pay the same overhead per swap.
func RunOverhead(r *Runner, w io.Writer) error {
	matrix, err := r.Matrix()
	if err != nil {
		return err
	}
	overheads := []uint64{100, 1_000, 10_000, 100_000, 1_000_000}
	pairs := RandomPairs(r.Opt.SensitivityPairs, r.Opt.Seed+2)
	t := &report.Table{
		Title: "§VI-C: swap-overhead sensitivity",
		Headers: []string{"overhead (cycles)", "proposed vs HPE (weighted)",
			"proposed vs proposed@1000", "avg swaps (proposed)", "avg swaps (HPE)"},
		Note: "paper: the improvement over HPE drops by only ~0.9 percentage points " +
			"from 1000 cycles to 1M cycles; the third column isolates the proposed " +
			"scheme's own degradation",
	}
	// Reference runs of the proposed scheme at the paper-default
	// 1000-cycle overhead, one per pair.
	refs := make([]amp.Result, len(pairs))
	for i, p := range pairs {
		r.progress("overhead ref: pair %d/%d", i+1, len(pairs))
		var err error
		refs[i], err = r.RunPairOverhead(i+20_000, p, r.ProposedFactory(), 1_000)
		if err != nil {
			return err
		}
	}
	for _, oh := range overheads {
		var imps, selfs []float64
		var swP, swH uint64
		for i, p := range pairs {
			r.progress("overhead %d: pair %d/%d", oh, i+1, len(pairs))
			resP, err := r.RunPairOverhead(i+20_000, p, r.ProposedFactory(), oh)
			if err != nil {
				return err
			}
			resH, err := r.RunPairOverhead(i+20_000, p, r.HPEFactory(matrix), oh)
			if err != nil {
				return err
			}
			cmp, err := metrics.Compare(resP, resH)
			if err != nil {
				return err
			}
			self, err := metrics.Compare(resP, refs[i])
			if err != nil {
				return err
			}
			imps = append(imps, cmp.WeightedPct)
			selfs = append(selfs, self.WeightedPct)
			swP += resP.Swaps
			swH += resH.Swaps
		}
		n := uint64(len(pairs))
		t.AddRow(fmt.Sprint(oh), report.Pct(stats.Mean(imps)), report.Pct(stats.Mean(selfs)),
			fmt.Sprintf("%.1f", float64(swP)/float64(n)),
			fmt.Sprintf("%.1f", float64(swH)/float64(n)))
	}
	return t.Fprint(w)
}

// RunDecisions reproduces the §VI-D observation: the proposed scheme
// evaluates a decision point every committed window but swaps at far
// fewer than 1% of them.
func RunDecisions(r *Runner, w io.Writer) error {
	s, err := r.Sweep()
	if err != nil {
		return err
	}
	var points, swaps uint64
	for i := range s.Outcomes {
		if s.Outcomes[i].Failed {
			continue
		}
		points += s.Outcomes[i].Proposed.Sched.DecisionPoints
		swaps += s.Outcomes[i].Proposed.Swaps
	}
	t := &report.Table{
		Title:   "§VI-D: decision points vs swaps (proposed scheme)",
		Headers: []string{"metric", "value"},
		Note:    "paper: swaps happen at much less than 1% of decision points",
	}
	t.AddRow("decision points", fmt.Sprint(points))
	t.AddRow("swaps", fmt.Sprint(swaps))
	if points > 0 {
		t.AddRow("swap fraction", fmt.Sprintf("%.3f%%", 100*float64(swaps)/float64(points)))
	}
	return t.Fprint(w)
}

// RunRRInterval reproduces the §VII Round Robin interval ablation:
// swapping every context switch vs every two context switches.
func RunRRInterval(r *Runner, w io.Writer) error {
	pairs := RandomPairs(r.Opt.SensitivityPairs, r.Opt.Seed+3)
	t := &report.Table{
		Title:   "§VII: Round Robin decision interval (1x vs 2x context switch)",
		Headers: []string{"pair", "RR(1x) weighted vs RR(2x)", "better"},
		Note:    "paper: Round Robin with a 1x (2 ms) interval outperforms 2x",
	}
	var imps []float64
	for i, p := range pairs {
		r.progress("rrinterval: pair %d/%d %s", i+1, len(pairs), p.Label())
		r1, err := r.RunPair(i+30_000, p, r.RRFactory(1))
		if err != nil {
			return err
		}
		r2, err := r.RunPair(i+30_000, p, r.RRFactory(2))
		if err != nil {
			return err
		}
		cmp, err := metrics.Compare(r1, r2)
		if err != nil {
			return err
		}
		imps = append(imps, cmp.WeightedPct)
		better := "1x"
		if cmp.WeightedPct < 0 {
			better = "2x"
		}
		t.AddRow(p.Label(), report.Pct(cmp.WeightedPct), better)
	}
	t.Note += fmt.Sprintf("; mean %s", report.Pct(stats.Mean(imps)))
	return t.Fprint(w)
}
