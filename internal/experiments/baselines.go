package experiments

import (
	"fmt"
	"io"
	"math"

	"ampsched/internal/amp"
	"ampsched/internal/report"
	"ampsched/internal/sched"
)

// SamplingFactory builds the related-work sampling scheduler scaled to
// the runner's coarse decision interval.
func (r *Runner) SamplingFactory() SchedFactory {
	return func(opts ...sched.Option) amp.MoveScheduler {
		cfg := sched.DefaultSamplingConfig()
		cfg.Interval = r.Opt.ContextSwitch
		cfg.SampleLen = r.Opt.ContextSwitch / 16
		if cfg.SampleLen == 0 {
			cfg.SampleLen = 1
		}
		return sched.NewSampling(cfg, opts...)
	}
}

// StaticFactory builds the never-swap baseline; it has no telemetry
// or monitors, so the options are accepted and ignored.
func StaticFactory() SchedFactory {
	return func(...sched.Option) amp.MoveScheduler { return sched.Static{} }
}

// geoIPCW is the pair-level geometric-mean IPC/Watt.
//
//ampvet:unit ipc_per_watt
func geoIPCW(res amp.Result) float64 {
	return math.Sqrt(res.Threads[0].IPCPerWatt * res.Threads[1].IPCPerWatt)
}

// RunBaselines compares every scheduling policy in the repository on a
// common pair set: both static assignments (and their per-pair best,
// an oracle placement), Round Robin, sampling (related work §II), HPE
// with both estimators, the proposed scheme and its §VII extension.
// Scores are geometric-mean IPC/Watt normalized to the best static
// assignment.
func RunBaselines(r *Runner, w io.Writer) error {
	matrix, err := r.Matrix()
	if err != nil {
		return err
	}
	surface, err := r.Surface()
	if err != nil {
		return err
	}
	pairs := RandomPairs(r.Opt.SensitivityPairs, r.Opt.Seed+4)

	type scheme struct {
		name    string
		factory SchedFactory
	}
	schemes := []scheme{
		{"roundrobin", r.RRFactory(1)},
		{"sampling", r.SamplingFactory()},
		{"hpe-matrix", r.HPEFactory(matrix)},
		{"hpe-regression", r.HPEFactory(surface)},
		{"proposed", r.ProposedFactory()},
		{"proposed-ext", r.ProposedExtFactory()},
	}

	t := &report.Table{
		Title: "scheduling policies vs the best static assignment (geomean IPC/Watt, normalized)",
		Headers: append([]string{"pair", "best-static"}, func() []string {
			var h []string
			for _, s := range schemes {
				h = append(h, s.name)
			}
			return h
		}()...),
		Note: "1.000 = the better of the two static placements; dynamic schemes can exceed it on phase-changing pairs",
	}

	sums := make([]float64, len(schemes))
	var bestStaticWins int
	for i, p := range pairs {
		r.progress("baselines: pair %d/%d %s", i+1, len(pairs), p.Label())
		// Both static assignments; the better one is the oracle
		// placement reference.
		asGiven, err := r.RunPair(i+50_000, p, StaticFactory())
		if err != nil {
			return err
		}
		flipped, err := r.RunPair(i+50_000, Pair{A: p.B, B: p.A}, StaticFactory())
		if err != nil {
			return err
		}
		best := geoIPCW(asGiven)
		if g := geoIPCW(flipped); g > best {
			best = g
		}
		row := []string{p.Label(), "1.000"}
		anyBeatsStatic := false
		for si, s := range schemes {
			res, err := r.RunPair(i+50_000, p, s.factory)
			if err != nil {
				return err
			}
			norm := geoIPCW(res) / best
			sums[si] += norm
			if norm > 1 {
				anyBeatsStatic = true
			}
			row = append(row, fmt.Sprintf("%.3f", norm))
		}
		if !anyBeatsStatic {
			bestStaticWins++
		}
		t.AddRow(row...)
	}
	means := []string{"MEAN", "1.000"}
	for _, s := range sums {
		means = append(means, fmt.Sprintf("%.3f", s/float64(len(pairs))))
	}
	t.AddRow(means...)
	t.Note += fmt.Sprintf("; best-static unbeaten on %d/%d pairs", bestStaticWins, len(pairs))
	return t.Fprint(w)
}
