package experiments

import (
	"bytes"
	"context"
	"reflect"
	"testing"

	"ampsched/internal/amp"
	"ampsched/internal/cpu"
	"ampsched/internal/interval"
)

// batchFidelities are the engine fidelities the cross-path identity
// tests pin: the interleaved batch pass must be invisible to results
// at every one of them.
var batchFidelities = []string{cpu.FidelityDetailed, interval.FidelityInterval, interval.FidelitySampled}

// TestRunPairsBatchMatchesPairAtATime is the cross-path identity
// contract: every run of a batch — interleaved in small round-robin
// chunks, with pooled systems reused across runs — is bit-identical
// to the same run driven alone through RunPairContext.
func TestRunPairsBatchMatchesPairAtATime(t *testing.T) {
	for _, fid := range batchFidelities {
		fid := fid
		t.Run(fid, func(t *testing.T) {
			opt := tinyOptions()
			opt.Fidelity = fid
			ref, err := NewRunner(opt)
			if err != nil {
				t.Fatal(err)
			}
			got, err := NewRunner(opt)
			if err != nil {
				t.Fatal(err)
			}
			got.batchWindows = 7 // many interleave turns per run

			pairs := RandomPairs(3, opt.Seed)
			var runs []PairRun
			for i, p := range pairs {
				runs = append(runs,
					PairRun{Index: i, Pair: p, Factory: got.ProposedFactory()},
					PairRun{Index: i, Pair: p, Factory: got.RRFactory(1)})
			}
			// Two batches on the same runner so the second reuses the
			// pooled systems reset in place by the first.
			for round := 0; round < 2; round++ {
				results, errs := got.RunPairsBatch(context.Background(), runs)
				for k, pr := range runs {
					if errs[k] != nil {
						t.Fatalf("round %d run %d: %v", round, k, errs[k])
					}
					want, err := ref.RunPairContext(context.Background(), pr.Index, pr.Pair, pr.Factory)
					if err != nil {
						t.Fatal(err)
					}
					if results[k] != want {
						t.Fatalf("round %d run %d (%s): batched result diverges\n got %+v\nwant %+v",
							round, k, pr.Pair.Label(), results[k], want)
					}
				}
			}
		})
	}
}

// TestRunPairsBatchEventAndTraceIdentity extends the cross-path
// contract from results to the full instrumentation surface: at every
// fidelity, each batched run publishes exactly the event stream — and
// exactly the canonical trace bytes — that the same run publishes when
// driven alone. Recorders are installed through Runner.RunObserver,
// which both paths call once per run in submission order.
func TestRunPairsBatchEventAndTraceIdentity(t *testing.T) {
	for _, fid := range batchFidelities {
		fid := fid
		t.Run(fid, func(t *testing.T) {
			opt := tinyOptions()
			opt.Fidelity = fid
			ref, err := NewRunner(opt)
			if err != nil {
				t.Fatal(err)
			}
			got, err := NewRunner(opt)
			if err != nil {
				t.Fatal(err)
			}
			got.batchWindows = 7 // many interleave turns per run

			record := func(into *[]*amp.EventRecorder) func(int, Pair) amp.Observer {
				return func(int, Pair) amp.Observer {
					rec := &amp.EventRecorder{}
					*into = append(*into, rec)
					return rec
				}
			}
			var gotRecs, refRecs []*amp.EventRecorder
			got.RunObserver = record(&gotRecs)
			ref.RunObserver = record(&refRecs)

			pairs := RandomPairs(2, opt.Seed)
			var runs []PairRun
			for i, p := range pairs {
				runs = append(runs,
					PairRun{Index: i, Pair: p, Factory: got.ProposedFactory()},
					PairRun{Index: i, Pair: p, Factory: got.RRFactory(1)})
			}
			results, errs := got.RunPairsBatch(context.Background(), runs)
			if len(gotRecs) != len(runs) {
				t.Fatalf("batched path created %d recorders for %d runs", len(gotRecs), len(runs))
			}
			for k, pr := range runs {
				if errs[k] != nil {
					t.Fatalf("run %d: %v", k, errs[k])
				}
				want, err := ref.RunPairContext(context.Background(), pr.Index, pr.Pair, pr.Factory)
				if err != nil {
					t.Fatal(err)
				}
				if results[k] != want {
					t.Fatalf("run %d (%s): batched result diverges under observation", k, pr.Pair.Label())
				}
			}
			if len(refRecs) != len(runs) {
				t.Fatalf("reference path created %d recorders for %d runs", len(refRecs), len(runs))
			}
			for k, pr := range runs {
				ge, re := gotRecs[k].Events(), refRecs[k].Events()
				if len(ge) == 0 {
					t.Fatalf("run %d (%s): no events recorded; identity check is vacuous", k, pr.Pair.Label())
				}
				if !reflect.DeepEqual(ge, re) {
					t.Fatalf("run %d (%s): event streams diverge\nbatched: %d events %+v\nserial:  %d events %+v",
						k, pr.Pair.Label(), len(ge), ge, len(re), re)
				}
				if !bytes.Equal(gotRecs[k].TraceBytes(), refRecs[k].TraceBytes()) {
					t.Fatalf("run %d (%s): trace bytes diverge across paths", k, pr.Pair.Label())
				}
			}
		})
	}
}

// TestBatchedSweepMatchesPairAtATime pins the sweep-level contract:
// the chunk-claiming batched sweep produces byte-identical outcomes to
// the pair-at-a-time sweep.
func TestBatchedSweepMatchesPairAtATime(t *testing.T) {
	opt := tinyOptions()
	opt.Fidelity = interval.FidelityInterval
	opt.Pairs = 5
	opt.Parallelism = 2

	ref, err := NewRunner(opt)
	if err != nil {
		t.Fatal(err)
	}
	ref.disableBatch = true
	got, err := NewRunner(opt)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Batchable() {
		t.Fatal("sweep should take the batched path at interval fidelity")
	}
	// Share the profiling artifacts so the comparison only exercises
	// the sweep paths.
	got.profile = ref.Profile()

	want, err := ref.Sweep()
	if err != nil {
		t.Fatal(err)
	}
	have, err := got.Sweep()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(want.Outcomes, have.Outcomes) {
		t.Fatalf("batched sweep diverges from pair-at-a-time sweep")
	}
}

// TestRunPairsBatchFaultFallback checks that fault-injected batches
// fall back to the recoverable pair-at-a-time path and still line up
// with direct runs.
func TestRunPairsBatchFaultFallback(t *testing.T) {
	opt := tinyOptions()
	opt.Fidelity = interval.FidelityInterval
	opt.FaultRate = 0.2
	opt.FaultSeed = 9
	ref, err := NewRunner(opt)
	if err != nil {
		t.Fatal(err)
	}
	got, err := NewRunner(opt)
	if err != nil {
		t.Fatal(err)
	}
	if got.Batchable() {
		t.Fatal("fault-injected sweeps must not batch")
	}
	p := RandomPairs(1, opt.Seed)[0]
	runs := []PairRun{{Index: 0, Pair: p, Factory: got.RRFactory(1)}}
	results, errs := got.RunPairsBatch(context.Background(), runs)
	if errs[0] != nil {
		t.Fatal(errs[0])
	}
	want, err := ref.RunPairContext(context.Background(), 0, p, ref.RRFactory(1))
	if err != nil {
		t.Fatal(err)
	}
	if results[0] != want {
		t.Fatalf("fault fallback diverges:\n got %+v\nwant %+v", results[0], want)
	}
}

// TestRunPairsBatchEmpty covers the trivial edge.
func TestRunPairsBatchEmpty(t *testing.T) {
	r, err := NewRunner(tinyOptions())
	if err != nil {
		t.Fatal(err)
	}
	results, errs := r.RunPairsBatch(context.Background(), nil)
	if len(results) != 0 || len(errs) != 0 {
		t.Fatalf("empty batch returned %d results, %d errs", len(results), len(errs))
	}
}
