// Package experiments regenerates every table and figure of the
// paper's evaluation (§VII and the methodology sections it depends
// on). Each experiment is registered by the paper's figure/table name
// and renders report.Tables; cmd/ampexperiments drives them.
//
// Scale note: the paper runs 500M instructions per workload with a
// 2 ms (4M cycle) context-switch interval. To keep the harness
// laptop-fast while preserving every qualitative relationship, the
// default Options scale run lengths down and scale the coarse-grain
// decision interval with them (the fine:coarse decision-rate ratio
// stays >100x). Paper-scale settings are a flag away; see DESIGN.md §7.
package experiments

import (
	"context"
	"fmt"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"ampsched/internal/amp"
	"ampsched/internal/cpu"
	"ampsched/internal/fault"
	"ampsched/internal/interval"
	"ampsched/internal/metrics"
	"ampsched/internal/monitor"
	"ampsched/internal/profilegen"
	"ampsched/internal/rng"
	"ampsched/internal/sched"
	"ampsched/internal/telemetry"
	"ampsched/internal/workload"
)

// Options control the scale of every experiment.
type Options struct {
	// Pairs is the number of random two-benchmark combinations for
	// the main comparison (paper: 80).
	Pairs int
	// InstrLimit ends a pair run when either thread commits this
	// many instructions (paper: 500M; default scaled down).
	InstrLimit uint64
	// ContextSwitch is the coarse-grain decision interval in cycles:
	// the HPE and Round Robin period and the proposed scheme's forced
	// fairness-swap interval (paper: 4M cycles = 2 ms @ 2 GHz;
	// default scaled down with InstrLimit).
	ContextSwitch uint64
	// SwapOverhead is the reconfiguration cost in cycles (§VI-C).
	SwapOverhead uint64
	// ProfileInstrLimit bounds each profiling solo run (§V step 2).
	ProfileInstrLimit uint64
	// RuleWindow is the §VI-A committed-instruction window.
	RuleWindow uint64
	// RulePairs is the §VI-A random-combination count (paper: 50).
	RulePairs int
	// SensitivityPairs is the per-configuration pair count for the
	// Fig. 6 sweep and the §VI-C overhead sweep.
	SensitivityPairs int
	// Seed makes everything deterministic.
	Seed uint64
	// Parallelism caps the worker pool for the main pair sweep. Each
	// pair's three runs are independent simulations, so parallel
	// execution is deterministic (results are keyed by pair index).
	// 0 means GOMAXPROCS.
	Parallelism int
	// FaultRate, when positive, injects monitor and swap faults at
	// this uniform rate into every pair run (see internal/fault).
	FaultRate float64
	// FaultSeed seeds the fault plans; runs are deterministic in
	// (Seed, FaultSeed, FaultRate).
	FaultSeed uint64
	// CycleBudget, when positive, bounds every pair run's cycle count;
	// a run that exhausts it is reported wedged instead of spinning.
	CycleBudget uint64
	// Fidelity selects the simulation engine for every pair run:
	// "detailed" (default, cycle-accurate), "interval" (calibrated
	// analytic model, ~2 orders of magnitude faster) or "sampled"
	// (detailed warm-up windows + interval fast-forward). Profiling
	// and rule derivation always run detailed — they are the ground
	// truth the schedulers were built against. The nxm sweep treats
	// the empty string as "interval": detailed simulation of hundreds
	// of cores is possible but pointlessly slow for a scaling curve.
	Fidelity string
	// NXMCores are the machine sizes of the nxm scaling sweep.
	NXMCores []int
	// NXMThreadsPerCore oversubscribes each nxm machine: an N-core
	// rung runs N*NXMThreadsPerCore threads.
	NXMThreadsPerCore int
	// NXMCycles is the fixed horizon of one nxm policy run.
	NXMCycles uint64
	// NXMQuantum is the decision quantum handed to every nxm policy.
	NXMQuantum uint64
}

// DefaultOptions returns the scaled-down defaults.
func DefaultOptions() Options {
	return Options{
		Pairs:             80,
		InstrLimit:        1_500_000,
		ContextSwitch:     400_000,
		SwapOverhead:      amp.DefaultSwapOverheadCycles,
		ProfileInstrLimit: 2_500_000,
		RuleWindow:        1000,
		RulePairs:         50,
		SensitivityPairs:  10,
		Seed:              7,
		NXMCores:          []int{4, 16, 64, 256},
		NXMThreadsPerCore: 8,
		NXMCycles:         200_000,
		NXMQuantum:        10_000,
	}
}

// PaperScaleOptions returns the paper's full-size parameters (hours of
// CPU time).
func PaperScaleOptions() Options {
	o := DefaultOptions()
	o.InstrLimit = 500_000_000
	o.ContextSwitch = amp.ContextSwitchCycles
	o.ProfileInstrLimit = 50_000_000
	return o
}

// Validate reports the first problem with the options.
func (o *Options) Validate() error {
	if o.Pairs <= 0 {
		return fmt.Errorf("experiments: Pairs must be positive")
	}
	if o.InstrLimit == 0 || o.ProfileInstrLimit == 0 {
		return fmt.Errorf("experiments: instruction limits must be positive")
	}
	if o.ContextSwitch == 0 {
		return fmt.Errorf("experiments: ContextSwitch must be positive")
	}
	if o.SwapOverhead == 0 {
		return fmt.Errorf("experiments: SwapOverhead must be positive")
	}
	if o.RuleWindow == 0 || o.RulePairs <= 0 || o.SensitivityPairs <= 0 {
		return fmt.Errorf("experiments: rule/sensitivity parameters must be positive")
	}
	if o.FaultRate < 0 || o.FaultRate > 1 {
		return fmt.Errorf("experiments: FaultRate %g outside [0,1]", o.FaultRate)
	}
	if _, err := interval.FactoryFor(o.Fidelity); err != nil {
		return fmt.Errorf("experiments: %w", err)
	}
	// Zero-valued NXM fields mean "use the defaults" (resolved by
	// nxmParams), so pre-NXM Options literals stay valid.
	for _, n := range o.NXMCores {
		if n <= 0 {
			return fmt.Errorf("experiments: NXMCores entry %d must be positive", n)
		}
	}
	if o.NXMThreadsPerCore < 0 {
		return fmt.Errorf("experiments: NXMThreadsPerCore must not be negative")
	}
	return nil
}

// Pair is one two-benchmark combination.
type Pair struct {
	A, B *workload.Benchmark
}

// Label renders "benchA+benchB".
func (p Pair) Label() string { return p.A.Name + "+" + p.B.Name }

// RandomPairs draws n distinct unordered pairs from the full pool,
// deterministically from seed.
func RandomPairs(n int, seed uint64) []Pair {
	pool := workload.All()
	r := rng.New(seed)
	seen := make(map[[2]int]bool)
	var pairs []Pair
	maxPairs := len(pool) * (len(pool) - 1) / 2
	if n > maxPairs {
		n = maxPairs
	}
	for len(pairs) < n {
		a := r.Intn(len(pool))
		b := r.Intn(len(pool) - 1)
		if b >= a {
			b++
		}
		key := [2]int{min(a, b), max(a, b)}
		if seen[key] {
			continue
		}
		seen[key] = true
		pairs = append(pairs, Pair{A: pool[key[0]], B: pool[key[1]]})
	}
	return pairs
}

// SchedFactory builds a fresh scheduler instance for one run. The
// runner supplies the options (telemetry, fault observer factories)
// at each call site; a factory that constructs a scheduler ignoring
// them is still valid.
type SchedFactory func(opts ...sched.Option) amp.MoveScheduler

// Runner caches the expensive shared state (profiling, estimators,
// the main pair sweep) across experiments. The lazy accessors
// (Profile, Matrix, Surface, Sweep) are safe for concurrent first use:
// parallel callers — the server runs many jobs against one shared
// Runner — collapse onto a single computation and share its result.
type Runner struct {
	Opt    Options
	IntCfg *cpu.Config
	FPCfg  *cpu.Config

	// src, when set by Derived, is the Runner whose cached profiling
	// artifacts this one shares; the lazy accessors delegate to it on
	// first use instead of re-collecting.
	src *Runner

	profileOnce sync.Once
	profile     *profilegen.Profile
	matrixOnce  sync.Once
	matrix      *profilegen.RatioMatrix
	matrixErr   error
	surfaceOnce sync.Once
	surface     *profilegen.Surface
	surfaceErr  error
	sweepMu     sync.Mutex
	sweep       *SweepResult

	// optsOnce caches the per-run option slices and the resolved engine
	// factory: they depend only on Opt and Telemetry, so building them
	// per run would put slice and closure allocations on the sweep's
	// hot path.
	optsOnce      sync.Once
	engineFactory cpu.EngineFactory
	optsErr       error
	schedOpts     []sched.Option
	ampOpts       []amp.Option

	// scratch pools per-worker run state (threads and, at poolable
	// fidelities, whole systems) across pairs; see pairScratch.
	scratch sync.Pool
	// batchPool pools per-worker batched-run state; see batchScratch.
	batchPool sync.Pool
	// batchWindows overrides the interleaved pass's per-run chunk
	// (0 = interval.DefaultBatchWindows); tests shrink it to force many
	// round-robin turns.
	batchWindows int
	// disableBatch forces the sweep onto the pair-at-a-time path; the
	// cross-path identity tests use it as the reference side.
	disableBatch bool

	// Progress, if non-nil, receives one-line status updates.
	Progress func(string)

	// RunObserver, if non-nil, supplies one amp event observer per
	// pair run (nil return = that run unobserved). Both the
	// pair-at-a-time and batched paths install it, called once per run
	// in submission order, so the cross-path identity suite can compare
	// event streams. Observed runs never reuse pooled systems — the
	// observer is per-run construction state — making this a
	// test/diagnostics seam, not a hot path.
	RunObserver func(index int, p Pair) amp.Observer

	// Telemetry, if non-nil, receives counters and events from every
	// run the Runner launches: the amp/sched/fault layers plus
	// "experiments.pairs_done"/"experiments.pairs_failed" and the
	// per-run wall-time histogram "experiments.run_wall_us". Safe to
	// share across the parallel sweep.
	Telemetry *telemetry.Telemetry

	// BaseContext, if non-nil, bounds every RunPair/Sweep call that is
	// not handed an explicit context (RunPairContext/SweepContext).
	BaseContext context.Context

	// Checkpoint, if non-nil, snapshots sweep progress (completed pair
	// outcomes, keyed by CheckpointKey(Opt)) so an interrupted sweep
	// resumes from its last save instead of restarting from pair zero.
	// Restored pairs count into "experiments.checkpoint_resumes".
	Checkpoint Checkpointer
	// CheckpointEvery is the save cadence in completed pairs (0 = 8).
	CheckpointEvery int
}

// NewRunner builds a Runner over the paper's two cores.
func NewRunner(opt Options) (*Runner, error) {
	if err := opt.Validate(); err != nil {
		return nil, err
	}
	return &Runner{
		Opt:    opt,
		IntCfg: cpu.IntCoreConfig(),
		FPCfg:  cpu.FPCoreConfig(),
	}, nil
}

func (r *Runner) progress(format string, args ...interface{}) {
	if r.Progress != nil {
		r.Progress(fmt.Sprintf(format, args...))
	}
}

// baseCtx resolves the context used by the context-less entry points.
//
//ampvet:allow ctxcheck Background is the documented fallback when the caller sets no BaseContext
func (r *Runner) baseCtx() context.Context {
	if r.BaseContext != nil {
		return r.BaseContext
	}
	return context.Background()
}

// Profile runs (or returns the cached) §V profiling pass over the nine
// representative benchmarks. Concurrent first callers block on one
// collection and share the result.
func (r *Runner) Profile() *profilegen.Profile {
	r.profileOnce.Do(func() {
		if r.src != nil {
			r.profile = r.src.Profile()
			return
		}
		r.progress("profiling 9 representative benchmarks on both cores...")
		r.profile = profilegen.Collect(r.IntCfg, r.FPCfg, workload.Representative(),
			profilegen.ProfileConfig{
				InstrLimit:   r.Opt.ProfileInstrLimit,
				SampleCycles: r.Opt.ContextSwitch,
				Seed:         r.Opt.Seed,
			})
	})
	return r.profile
}

// Matrix returns the cached ratio-matrix estimator (Fig. 3). The
// first call's outcome — result or error — is sticky and shared by
// every later (or concurrent) caller.
func (r *Runner) Matrix() (*profilegen.RatioMatrix, error) {
	r.matrixOnce.Do(func() {
		if r.src != nil {
			r.matrix, r.matrixErr = r.src.Matrix()
			return
		}
		r.matrix, r.matrixErr = profilegen.BuildRatioMatrix(r.Profile())
	})
	return r.matrix, r.matrixErr
}

// Surface returns the cached regression estimator (Fig. 4). Like
// Matrix, the first outcome is sticky and concurrency-safe.
func (r *Runner) Surface() (*profilegen.Surface, error) {
	r.surfaceOnce.Do(func() {
		if r.src != nil {
			r.surface, r.surfaceErr = r.src.Surface()
			return
		}
		r.surface, r.surfaceErr = profilegen.FitSurface(r.Profile(), 2)
	})
	return r.surface, r.surfaceErr
}

// Derived returns a new Runner over opt that shares this Runner's
// cached §V profiling artifacts. The share is lazy: artifacts are
// forced on the derived Runner's first use, not at derivation time, so
// a server can derive on its submit path without blocking on a
// profiling pass. Runner contains sync state and must not be copied;
// callers that vary one option (the resilience fault sweep, the
// server's differential re-simulation tier) derive instead. opt must
// agree with the base on every profiling input — SharesProfile reports
// that agreement — or the shared artifacts would be wrong for it.
func (r *Runner) Derived(opt Options) *Runner {
	return &Runner{
		Opt:             opt,
		IntCfg:          r.IntCfg,
		FPCfg:           r.FPCfg,
		src:             r,
		Progress:        r.Progress,
		Telemetry:       r.Telemetry,
		BaseContext:     r.BaseContext,
		Checkpoint:      r.Checkpoint,
		CheckpointEvery: r.CheckpointEvery,
	}
}

// SharesProfile reports whether opt would produce byte-identical §V
// profiling artifacts to this Runner's: the profiling pass depends
// only on the workload seed, the sample window (the context-switch
// quantum) and the per-benchmark instruction budget, never on the
// sweep-side knobs (swap overhead, fault rate/seed, instruction limit,
// fidelity). When it returns true, Derived(opt) is sound.
func (r *Runner) SharesProfile(opt Options) bool {
	return opt.Seed == r.Opt.Seed &&
		opt.ContextSwitch == r.Opt.ContextSwitch &&
		opt.ProfileInstrLimit == r.Opt.ProfileInstrLimit
}

// pairSeed derives the workload seeds for pair index i so that the
// same pair sees identical instruction streams under every scheduler.
func (r *Runner) pairSeed(i, thread int) uint64 {
	return r.Opt.Seed*1_000_003 + uint64(i)*64 + uint64(thread)
}

// faultSeed derives a per-run fault-plan seed so the same pair index
// always draws the same fault sequence.
func (r *Runner) faultSeed(i int) uint64 {
	return r.Opt.FaultSeed ^ (uint64(i)*0x9E3779B97F4A7C15 + 0xD1B54A32D192ED03)
}

// runOpts resolves the cached engine factory and option slices shared
// by every run. The slices never carry per-run state (fault plans are
// appended onto copies by the fault path).
func (r *Runner) runOpts() (cpu.EngineFactory, []sched.Option, []amp.Option, error) {
	r.optsOnce.Do(func() {
		r.engineFactory, r.optsErr = interval.FactoryFor(r.Opt.Fidelity)
		if r.optsErr != nil {
			return
		}
		r.ampOpts = []amp.Option{amp.WithEngine(r.engineFactory)}
		if r.Telemetry != nil {
			r.schedOpts = []sched.Option{sched.WithTelemetry(r.Telemetry)}
			r.ampOpts = append(r.ampOpts, amp.WithTelemetry(r.Telemetry))
		}
	})
	return r.engineFactory, r.schedOpts, r.ampOpts, r.optsErr
}

// pairScratch is one worker's reusable run state: two threads (their
// generators re-seeded in place per run) and, once constructed, a
// whole system whose engines are pooled via amp.System.Reset. sys
// stays nil at fidelities whose engines keep persistent state (the
// detailed core); those runs rebuild the system but still reuse the
// threads.
type pairScratch struct {
	threads [2]amp.Thread
	sys     *amp.System
}

// RunPair executes one pair under the scheduler made by factory. A
// wedged run (watchdog or cycle budget) or a panicking scheduler comes
// back as an error, never as a crash.
func (r *Runner) RunPair(i int, p Pair, factory SchedFactory) (amp.Result, error) {
	return r.runPair(r.baseCtx(), i, p, factory, r.Opt.SwapOverhead)
}

// RunPairContext is RunPair bounded by ctx: a canceled context stops
// the simulation at the next check point and surfaces ctx's error
// (wrapped; errors.Is-matchable) with the partial result.
func (r *Runner) RunPairContext(ctx context.Context, i int, p Pair, factory SchedFactory) (amp.Result, error) {
	return r.runPair(ctx, i, p, factory, r.Opt.SwapOverhead)
}

// RunPairOverhead is RunPair with an explicit swap overhead (§VI-C).
func (r *Runner) RunPairOverhead(i int, p Pair, factory SchedFactory, overhead uint64) (amp.Result, error) {
	return r.runPair(r.baseCtx(), i, p, factory, overhead)
}

// runPair is the single execution path behind every RunPair variant.
// The run is wired to the runner's telemetry and — when fault
// injection is on — given a per-index deterministic fault plan via the
// option API.
//
// Run state is pooled: the two threads are always reused (generators
// re-seeded in place), and at fidelities whose engines implement
// cpu.StateResetter the whole system is too (amp.System.Reset). Both
// resets are bit-identical to fresh construction, so pooling is
// invisible to results — including under the parallel sweep, where
// pool reuse order is scheduling-dependent.
func (r *Runner) runPair(ctx context.Context, i int, p Pair, factory SchedFactory, overhead uint64) (res amp.Result, err error) {
	start := time.Now() //ampvet:allow determinism wall-time only feeds the pair-duration histogram, never results
	defer func() {
		if rec := recover(); rec != nil {
			err = fmt.Errorf("experiments: pair %s panicked: %v", p.Label(), rec)
		}
		r.observeRun(p, time.Since(start), err) //ampvet:allow determinism wall-time only feeds the pair-duration histogram, never results
	}()
	_, schedOpts, ampOpts, oerr := r.runOpts()
	if oerr != nil {
		return amp.Result{}, fmt.Errorf("experiments: pair %s: %w", p.Label(), oerr)
	}
	if r.Opt.FaultRate > 0 {
		// Fault plans are per-run state: append them onto copies of the
		// cached option slices. This path allocates freely — fault
		// sweeps are not the hot benchmark.
		plan := fault.MustNew(fault.Uniform(r.Opt.FaultRate, r.faultSeed(i)))
		plan.SetTelemetry(r.Telemetry)
		ampOpts = append(append([]amp.Option{}, ampOpts...), amp.WithFaultPlan(plan))
		var tag uint64
		schedOpts = append(append([]sched.Option{}, schedOpts...),
			sched.WithObserverFactory(func(window uint64) monitor.Observer {
				tag++
				return plan.Observer(monitor.NewWindowTracker(window), tag)
			}))
	}

	observed := false
	if r.RunObserver != nil {
		if o := r.RunObserver(i, p); o != nil {
			ampOpts = append(append([]amp.Option{}, ampOpts...), amp.WithObserver(o))
			observed = true
		}
	}

	sc, _ := r.scratch.Get().(*pairScratch)
	if sc == nil {
		sc = &pairScratch{}
	}
	if sc.sys != nil {
		// Flush the previous run's deferred engine state into the old
		// threads before recycling them (see System.Detach).
		sc.sys.Detach()
	}
	sc.threads[0].Reset(0, p.A, r.pairSeed(i, 0), 0)
	sc.threads[1].Reset(1, p.B, r.pairSeed(i, 1), 1<<40)
	threads := [2]*amp.Thread{&sc.threads[0], &sc.threads[1]}

	var s amp.MoveScheduler
	if factory != nil {
		s = factory(schedOpts...)
	}
	cfg := amp.Config{
		SwapOverheadCycles: overhead,
		CycleBudget:        r.Opt.CycleBudget,
	}
	sys := sc.sys
	if observed {
		// An observed run's system carries per-run construction state
		// (the observer), so it neither reuses the pooled system nor
		// re-enters the pool.
		sys = nil
		sc.sys = nil
	}
	if sys != nil && r.Opt.FaultRate == 0 {
		err = sys.Reset(threads, s, cfg)
	} else {
		// First run on this scratch, or a fault-injected or observed
		// run (its options differ from the pooled system's
		// construction set).
		sys, err = amp.NewSystem([2]*cpu.Config{r.IntCfg, r.FPCfg}, threads, s, cfg, ampOpts...)
	}
	if err != nil {
		return amp.Result{}, fmt.Errorf("experiments: pair %s: %w", p.Label(), err)
	}
	res, err = sys.RunContext(ctx, r.Opt.InstrLimit)
	if r.Opt.FaultRate == 0 && !observed && sys.Poolable() {
		sc.sys = sys
	}
	r.scratch.Put(sc)
	if err != nil {
		return res, fmt.Errorf("experiments: pair %s: %w", p.Label(), err)
	}
	return res, nil
}

// observeRun publishes one run's wall time and outcome.
func (r *Runner) observeRun(p Pair, d time.Duration, err error) {
	t := r.Telemetry
	if t == nil {
		return
	}
	t.Histogram("experiments.run_wall_us").Observe(uint64(d.Microseconds()))
	if t.Eventing() {
		e := telemetry.NewEvent("pair_run")
		e.Pair = p.Label()
		e.Value = d.Seconds()
		if err != nil {
			e.Detail = err.Error()
		}
		t.Emit(e)
	}
}

// ProposedFactory builds the paper's default proposed scheduler with
// the runner's (possibly scaled) forced-swap interval.
func (r *Runner) ProposedFactory() SchedFactory {
	return func(opts ...sched.Option) amp.MoveScheduler {
		cfg := sched.DefaultProposedConfig()
		cfg.ForceInterval = r.Opt.ContextSwitch
		return sched.NewProposed(cfg, opts...)
	}
}

// HPEFactory builds the HPE reference scheduler with the given
// estimator.
func (r *Runner) HPEFactory(est sched.Estimator) SchedFactory {
	return func(opts ...sched.Option) amp.MoveScheduler {
		cfg := sched.DefaultHPEConfig()
		cfg.Interval = r.Opt.ContextSwitch
		return sched.NewHPE(cfg, est, opts...)
	}
}

// RRFactory builds a Round Robin scheduler swapping every multiple
// context-switch intervals.
func (r *Runner) RRFactory(multiple int) SchedFactory {
	return func(opts ...sched.Option) amp.MoveScheduler {
		return sched.NewRoundRobinInterval(uint64(multiple)*r.Opt.ContextSwitch, opts...)
	}
}

// PairOutcome bundles one pair's results under the three schemes. A
// pair whose simulation wedged or panicked is flagged Failed with the
// reason in Err; its numeric fields are whatever was salvaged and must
// not enter aggregates.
type PairOutcome struct {
	Pair     Pair
	Proposed amp.Result
	HPE      amp.Result
	RR       amp.Result

	VsHPE metrics.PairComparison
	VsRR  metrics.PairComparison

	Failed bool
	Err    string
}

// SweepResult is the main §VII dataset.
type SweepResult struct {
	Outcomes []PairOutcome
}

// Failed counts the degraded (excluded) outcomes.
func (s *SweepResult) Failed() int {
	n := 0
	for i := range s.Outcomes {
		if s.Outcomes[i].Failed {
			n++
		}
	}
	return n
}

// Completed returns the outcomes that finished cleanly, in pair order.
func (s *SweepResult) Completed() []PairOutcome {
	out := make([]PairOutcome, 0, len(s.Outcomes))
	for i := range s.Outcomes {
		if !s.Outcomes[i].Failed {
			out = append(out, s.Outcomes[i])
		}
	}
	return out
}

// Sweep runs (or returns the cached) main comparison: every random
// pair under proposed, HPE(matrix) and Round Robin. Pairs execute on
// a worker pool (Options.Parallelism); every simulation is
// independent and seeded per pair, so the result is identical to a
// sequential sweep. A pair whose run wedges or panics becomes a
// degraded outcome (Failed set, reason in Err) — the remaining pairs
// still complete, and Sweep only errors when every pair failed.
func (r *Runner) Sweep() (*SweepResult, error) {
	return r.SweepContext(r.baseCtx())
}

// SweepContext is Sweep bounded by ctx. On cancellation the workers
// stop promptly, unfinished pairs come back as degraded outcomes
// carrying the context error, and the partial SweepResult is returned
// alongside ctx's error without being cached. Concurrent callers
// serialize on one mutex: the first runs the sweep (its workers still
// fan out), later callers block and then return the cached result.
//
//ampvet:allow lockcheck sweepMu is a deliberate singleflight: holding it across the whole sweep (checkpoint load, worker fan-out, flush) is how later callers wait for the cached result
func (r *Runner) SweepContext(ctx context.Context) (*SweepResult, error) {
	r.sweepMu.Lock()
	defer r.sweepMu.Unlock()
	if r.sweep != nil {
		return r.sweep, nil
	}
	matrix, err := r.Matrix()
	if err != nil {
		return nil, err
	}
	pairs := RandomPairs(r.Opt.Pairs, r.Opt.Seed)
	out := &SweepResult{Outcomes: make([]PairOutcome, len(pairs))}
	ckpt := r.newCkptState(pairs, out) // nil when Checkpoint is unset

	workers := r.Opt.Parallelism
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(pairs) {
		workers = len(pairs)
	}

	// Interval-fidelity sweeps claim pair chunks and advance each
	// chunk's runs through one interleaved batch pass; everything else
	// claims single pairs. Either way the per-pair bookkeeping
	// (checkpointing, telemetry, progress) is identical.
	chunk := 1
	if r.Batchable() {
		chunk = sweepBatchPairs
	}
	var (
		wg   sync.WaitGroup
		next atomic.Int64
		done atomic.Int64
	)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			idxs := make([]int, 0, chunk)
			for {
				base := int(next.Add(int64(chunk))) - chunk
				if base >= len(pairs) {
					return
				}
				end := base + chunk
				if end > len(pairs) {
					end = len(pairs)
				}
				idxs = idxs[:0]
				for i := base; i < end; i++ {
					if ckpt.restored(i) {
						// Revived from the checkpoint before workers
						// started; recomputing would waste the resume.
						continue
					}
					if cerr := ctx.Err(); cerr != nil {
						// Don't start new simulations after cancellation;
						// the pair is flagged, not silently zero.
						out.Outcomes[i] = PairOutcome{Pair: pairs[i], Failed: true,
							Err: fmt.Sprintf("experiments: pair %s: %v", pairs[i].Label(), cerr)}
						continue
					}
					idxs = append(idxs, i)
				}
				if len(idxs) > 1 {
					r.runOutcomeBatch(ctx, idxs, pairs, matrix, out.Outcomes)
				} else {
					for _, i := range idxs {
						out.Outcomes[i] = r.runOutcome(ctx, i, pairs[i], matrix)
					}
				}
				for _, i := range idxs {
					r.observeOutcome(&out.Outcomes[i])
					ckpt.complete(i)
					if e := out.Outcomes[i].Err; e != "" {
						r.progress("pair %d/%d DEGRADED (%s): %s", done.Add(1), len(pairs), pairs[i].Label(), e)
					} else {
						r.progress("pair %d/%d done (%s)", done.Add(1), len(pairs), pairs[i].Label())
					}
				}
			}
		}()
	}
	wg.Wait()
	ckpt.flush() // persist pairs done since the last cadenced save,
	// including on the cancellation path below
	if cerr := ctx.Err(); cerr != nil {
		return out, cerr
	}
	if n := out.Failed(); n == len(pairs) {
		return nil, fmt.Errorf("experiments: all %d pairs failed; first: %s", n, out.Outcomes[0].Err)
	}
	r.sweep = out
	return out, nil
}

// observeOutcome publishes one pair outcome's progress counters.
func (r *Runner) observeOutcome(po *PairOutcome) {
	if r.Telemetry == nil {
		return
	}
	if po.Failed {
		r.Telemetry.Counter("experiments.pairs_failed").Inc()
	} else {
		r.Telemetry.Counter("experiments.pairs_done").Inc()
	}
}

// runOutcome executes one pair under the three schemes, downgrading
// any failure to a flagged outcome.
func (r *Runner) runOutcome(ctx context.Context, i int, p Pair, matrix *profilegen.RatioMatrix) PairOutcome {
	po := PairOutcome{Pair: p}
	fail := func(err error) PairOutcome {
		po.Failed = true
		po.Err = err.Error()
		return po
	}
	var err error
	if po.Proposed, err = r.RunPairContext(ctx, i, p, r.ProposedFactory()); err != nil {
		return fail(err)
	}
	if po.HPE, err = r.RunPairContext(ctx, i, p, r.HPEFactory(matrix)); err != nil {
		return fail(err)
	}
	if po.RR, err = r.RunPairContext(ctx, i, p, r.RRFactory(1)); err != nil {
		return fail(err)
	}
	if po.VsHPE, err = metrics.Compare(po.Proposed, po.HPE); err != nil {
		return fail(err)
	}
	if po.VsRR, err = metrics.Compare(po.Proposed, po.RR); err != nil {
		return fail(err)
	}
	return po
}

// WeightedVsHPE extracts the per-pair weighted improvements over HPE,
// excluding degraded pairs.
func (s *SweepResult) WeightedVsHPE() []float64 {
	out := make([]float64, 0, len(s.Outcomes))
	for i := range s.Outcomes {
		if !s.Outcomes[i].Failed {
			out = append(out, s.Outcomes[i].VsHPE.WeightedPct)
		}
	}
	return out
}

// WeightedVsRR extracts the per-pair weighted improvements over RR,
// excluding degraded pairs.
func (s *SweepResult) WeightedVsRR() []float64 {
	out := make([]float64, 0, len(s.Outcomes))
	for i := range s.Outcomes {
		if !s.Outcomes[i].Failed {
			out = append(out, s.Outcomes[i].VsRR.WeightedPct)
		}
	}
	return out
}

// sortedByWeighted returns completed-outcome indexes ascending by the
// chosen weighted improvement; degraded pairs are excluded.
func (s *SweepResult) sortedByWeighted(vsRR bool) []int {
	idx := make([]int, 0, len(s.Outcomes))
	for i := range s.Outcomes {
		if !s.Outcomes[i].Failed {
			idx = append(idx, i)
		}
	}
	sort.Slice(idx, func(a, b int) bool {
		va, vb := s.Outcomes[idx[a]].VsHPE.WeightedPct, s.Outcomes[idx[b]].VsHPE.WeightedPct
		if vsRR {
			va, vb = s.Outcomes[idx[a]].VsRR.WeightedPct, s.Outcomes[idx[b]].VsRR.WeightedPct
		}
		return va < vb
	})
	return idx
}
