// Package experiments regenerates every table and figure of the
// paper's evaluation (§VII and the methodology sections it depends
// on). Each experiment is registered by the paper's figure/table name
// and renders report.Tables; cmd/ampexperiments drives them.
//
// Scale note: the paper runs 500M instructions per workload with a
// 2 ms (4M cycle) context-switch interval. To keep the harness
// laptop-fast while preserving every qualitative relationship, the
// default Options scale run lengths down and scale the coarse-grain
// decision interval with them (the fine:coarse decision-rate ratio
// stays >100x). Paper-scale settings are a flag away; see DESIGN.md §7.
package experiments

import (
	"fmt"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"

	"ampsched/internal/amp"
	"ampsched/internal/cpu"
	"ampsched/internal/metrics"
	"ampsched/internal/profilegen"
	"ampsched/internal/rng"
	"ampsched/internal/sched"
	"ampsched/internal/workload"
)

// Options control the scale of every experiment.
type Options struct {
	// Pairs is the number of random two-benchmark combinations for
	// the main comparison (paper: 80).
	Pairs int
	// InstrLimit ends a pair run when either thread commits this
	// many instructions (paper: 500M; default scaled down).
	InstrLimit uint64
	// ContextSwitch is the coarse-grain decision interval in cycles:
	// the HPE and Round Robin period and the proposed scheme's forced
	// fairness-swap interval (paper: 4M cycles = 2 ms @ 2 GHz;
	// default scaled down with InstrLimit).
	ContextSwitch uint64
	// SwapOverhead is the reconfiguration cost in cycles (§VI-C).
	SwapOverhead uint64
	// ProfileInstrLimit bounds each profiling solo run (§V step 2).
	ProfileInstrLimit uint64
	// RuleWindow is the §VI-A committed-instruction window.
	RuleWindow uint64
	// RulePairs is the §VI-A random-combination count (paper: 50).
	RulePairs int
	// SensitivityPairs is the per-configuration pair count for the
	// Fig. 6 sweep and the §VI-C overhead sweep.
	SensitivityPairs int
	// Seed makes everything deterministic.
	Seed uint64
	// Parallelism caps the worker pool for the main pair sweep. Each
	// pair's three runs are independent simulations, so parallel
	// execution is deterministic (results are keyed by pair index).
	// 0 means GOMAXPROCS.
	Parallelism int
}

// DefaultOptions returns the scaled-down defaults.
func DefaultOptions() Options {
	return Options{
		Pairs:             80,
		InstrLimit:        1_500_000,
		ContextSwitch:     400_000,
		SwapOverhead:      amp.DefaultSwapOverheadCycles,
		ProfileInstrLimit: 2_500_000,
		RuleWindow:        1000,
		RulePairs:         50,
		SensitivityPairs:  10,
		Seed:              7,
	}
}

// PaperScaleOptions returns the paper's full-size parameters (hours of
// CPU time).
func PaperScaleOptions() Options {
	o := DefaultOptions()
	o.InstrLimit = 500_000_000
	o.ContextSwitch = amp.ContextSwitchCycles
	o.ProfileInstrLimit = 50_000_000
	return o
}

// Validate reports the first problem with the options.
func (o *Options) Validate() error {
	if o.Pairs <= 0 {
		return fmt.Errorf("experiments: Pairs must be positive")
	}
	if o.InstrLimit == 0 || o.ProfileInstrLimit == 0 {
		return fmt.Errorf("experiments: instruction limits must be positive")
	}
	if o.ContextSwitch == 0 {
		return fmt.Errorf("experiments: ContextSwitch must be positive")
	}
	if o.SwapOverhead == 0 {
		return fmt.Errorf("experiments: SwapOverhead must be positive")
	}
	if o.RuleWindow == 0 || o.RulePairs <= 0 || o.SensitivityPairs <= 0 {
		return fmt.Errorf("experiments: rule/sensitivity parameters must be positive")
	}
	return nil
}

// Pair is one two-benchmark combination.
type Pair struct {
	A, B *workload.Benchmark
}

// Label renders "benchA+benchB".
func (p Pair) Label() string { return p.A.Name + "+" + p.B.Name }

// RandomPairs draws n distinct unordered pairs from the full pool,
// deterministically from seed.
func RandomPairs(n int, seed uint64) []Pair {
	pool := workload.All()
	r := rng.New(seed)
	seen := make(map[[2]int]bool)
	var pairs []Pair
	maxPairs := len(pool) * (len(pool) - 1) / 2
	if n > maxPairs {
		n = maxPairs
	}
	for len(pairs) < n {
		a := r.Intn(len(pool))
		b := r.Intn(len(pool) - 1)
		if b >= a {
			b++
		}
		key := [2]int{min(a, b), max(a, b)}
		if seen[key] {
			continue
		}
		seen[key] = true
		pairs = append(pairs, Pair{A: pool[key[0]], B: pool[key[1]]})
	}
	return pairs
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// SchedFactory builds a fresh scheduler instance for one run.
type SchedFactory func() amp.Scheduler

// Runner caches the expensive shared state (profiling, estimators,
// the main pair sweep) across experiments.
type Runner struct {
	Opt    Options
	IntCfg *cpu.Config
	FPCfg  *cpu.Config

	profile *profilegen.Profile
	matrix  *profilegen.RatioMatrix
	surface *profilegen.Surface
	sweep   *SweepResult

	// Progress, if non-nil, receives one-line status updates.
	Progress func(string)
}

// NewRunner builds a Runner over the paper's two cores.
func NewRunner(opt Options) (*Runner, error) {
	if err := opt.Validate(); err != nil {
		return nil, err
	}
	return &Runner{
		Opt:    opt,
		IntCfg: cpu.IntCoreConfig(),
		FPCfg:  cpu.FPCoreConfig(),
	}, nil
}

func (r *Runner) progress(format string, args ...interface{}) {
	if r.Progress != nil {
		r.Progress(fmt.Sprintf(format, args...))
	}
}

// Profile runs (or returns the cached) §V profiling pass over the nine
// representative benchmarks.
func (r *Runner) Profile() *profilegen.Profile {
	if r.profile == nil {
		r.progress("profiling 9 representative benchmarks on both cores...")
		r.profile = profilegen.Collect(r.IntCfg, r.FPCfg, workload.Representative(),
			profilegen.ProfileConfig{
				InstrLimit:   r.Opt.ProfileInstrLimit,
				SampleCycles: r.Opt.ContextSwitch,
				Seed:         r.Opt.Seed,
			})
	}
	return r.profile
}

// Matrix returns the cached ratio-matrix estimator (Fig. 3).
func (r *Runner) Matrix() (*profilegen.RatioMatrix, error) {
	if r.matrix == nil {
		m, err := profilegen.BuildRatioMatrix(r.Profile())
		if err != nil {
			return nil, err
		}
		r.matrix = m
	}
	return r.matrix, nil
}

// Surface returns the cached regression estimator (Fig. 4).
func (r *Runner) Surface() (*profilegen.Surface, error) {
	if r.surface == nil {
		s, err := profilegen.FitSurface(r.Profile(), 2)
		if err != nil {
			return nil, err
		}
		r.surface = s
	}
	return r.surface, nil
}

// pairSeed derives the workload seeds for pair index i so that the
// same pair sees identical instruction streams under every scheduler.
func (r *Runner) pairSeed(i, thread int) uint64 {
	return r.Opt.Seed*1_000_003 + uint64(i)*64 + uint64(thread)
}

// RunPair executes one pair under the scheduler made by factory.
func (r *Runner) RunPair(i int, p Pair, factory SchedFactory) amp.Result {
	return r.RunPairOverhead(i, p, factory, r.Opt.SwapOverhead)
}

// RunPairOverhead is RunPair with an explicit swap overhead (§VI-C).
func (r *Runner) RunPairOverhead(i int, p Pair, factory SchedFactory, overhead uint64) amp.Result {
	t0 := amp.NewThread(0, p.A, r.pairSeed(i, 0), 0)
	t1 := amp.NewThread(1, p.B, r.pairSeed(i, 1), 1<<40)
	var s amp.Scheduler
	if factory != nil {
		s = factory()
	}
	sys := amp.NewSystem([2]*cpu.Config{r.IntCfg, r.FPCfg}, [2]*amp.Thread{t0, t1}, s,
		amp.Config{SwapOverheadCycles: overhead})
	return sys.Run(r.Opt.InstrLimit)
}

// ProposedFactory builds the paper's default proposed scheduler with
// the runner's (possibly scaled) forced-swap interval.
func (r *Runner) ProposedFactory() SchedFactory {
	return func() amp.Scheduler {
		cfg := sched.DefaultProposedConfig()
		cfg.ForceInterval = r.Opt.ContextSwitch
		return sched.NewProposed(cfg)
	}
}

// HPEFactory builds the HPE reference scheduler with the given
// estimator.
func (r *Runner) HPEFactory(est sched.Estimator) SchedFactory {
	return func() amp.Scheduler {
		cfg := sched.DefaultHPEConfig()
		cfg.Interval = r.Opt.ContextSwitch
		return sched.NewHPE(cfg, est)
	}
}

// RRFactory builds a Round Robin scheduler swapping every multiple
// context-switch intervals.
func (r *Runner) RRFactory(multiple int) SchedFactory {
	return func() amp.Scheduler {
		return sched.NewRoundRobinInterval(uint64(multiple) * r.Opt.ContextSwitch)
	}
}

// PairOutcome bundles one pair's results under the three schemes.
type PairOutcome struct {
	Pair     Pair
	Proposed amp.Result
	HPE      amp.Result
	RR       amp.Result

	VsHPE metrics.PairComparison
	VsRR  metrics.PairComparison
}

// SweepResult is the main §VII dataset.
type SweepResult struct {
	Outcomes []PairOutcome
}

// Sweep runs (or returns the cached) main comparison: every random
// pair under proposed, HPE(matrix) and Round Robin. Pairs execute on
// a worker pool (Options.Parallelism); every simulation is
// independent and seeded per pair, so the result is identical to a
// sequential sweep.
func (r *Runner) Sweep() (*SweepResult, error) {
	if r.sweep != nil {
		return r.sweep, nil
	}
	matrix, err := r.Matrix()
	if err != nil {
		return nil, err
	}
	pairs := RandomPairs(r.Opt.Pairs, r.Opt.Seed)
	out := &SweepResult{Outcomes: make([]PairOutcome, len(pairs))}

	workers := r.Opt.Parallelism
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(pairs) {
		workers = len(pairs)
	}

	var (
		wg       sync.WaitGroup
		next     atomic.Int64
		done     atomic.Int64
		firstErr atomic.Value
	)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(pairs) || firstErr.Load() != nil {
					return
				}
				p := pairs[i]
				po := PairOutcome{Pair: p}
				po.Proposed = r.RunPair(i, p, r.ProposedFactory())
				po.HPE = r.RunPair(i, p, r.HPEFactory(matrix))
				po.RR = r.RunPair(i, p, r.RRFactory(1))
				var err error
				po.VsHPE, err = metrics.Compare(po.Proposed, po.HPE)
				if err == nil {
					po.VsRR, err = metrics.Compare(po.Proposed, po.RR)
				}
				if err != nil {
					firstErr.CompareAndSwap(nil, fmt.Errorf("pair %s: %w", p.Label(), err))
					return
				}
				out.Outcomes[i] = po
				r.progress("pair %d/%d done (%s)", done.Add(1), len(pairs), p.Label())
			}
		}()
	}
	wg.Wait()
	if e := firstErr.Load(); e != nil {
		return nil, e.(error)
	}
	r.sweep = out
	return out, nil
}

// WeightedVsHPE extracts the per-pair weighted improvements over HPE.
func (s *SweepResult) WeightedVsHPE() []float64 {
	out := make([]float64, len(s.Outcomes))
	for i := range s.Outcomes {
		out[i] = s.Outcomes[i].VsHPE.WeightedPct
	}
	return out
}

// WeightedVsRR extracts the per-pair weighted improvements over RR.
func (s *SweepResult) WeightedVsRR() []float64 {
	out := make([]float64, len(s.Outcomes))
	for i := range s.Outcomes {
		out[i] = s.Outcomes[i].VsRR.WeightedPct
	}
	return out
}

// sortedByWeighted returns outcome indexes ascending by the chosen
// weighted improvement.
func (s *SweepResult) sortedByWeighted(vsRR bool) []int {
	idx := make([]int, len(s.Outcomes))
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool {
		va, vb := s.Outcomes[idx[a]].VsHPE.WeightedPct, s.Outcomes[idx[b]].VsHPE.WeightedPct
		if vsRR {
			va, vb = s.Outcomes[idx[a]].VsRR.WeightedPct, s.Outcomes[idx[b]].VsRR.WeightedPct
		}
		return va < vb
	})
	return idx
}
