package experiments

import (
	"fmt"
	"io"

	"ampsched/internal/cpu"
	"ampsched/internal/power"
	"ampsched/internal/report"
	"ampsched/internal/workload"
)

// RunPowerBreakdown is an analysis table not present in the paper but
// implied by its Wattch methodology: where each core's energy goes for
// representative workloads. It makes the IPC/Watt asymmetry of Fig. 1
// legible — e.g. fpstress on the INT core wastes static+clock energy
// while its FP ops trickle through the weak units.
func RunPowerBreakdown(r *Runner, w io.Writer) error {
	names := []string{"intstress", "fpstress", "gcc", "mcf"}
	headers := []string{"workload", "core", "total nJ/instr"}
	for c := power.Category(0); c < power.NumCategories; c++ {
		headers = append(headers, c.String())
	}
	t := &report.Table{
		Title:   "energy breakdown per core and workload (% of total energy)",
		Headers: headers,
		Note:    "Wattch-style accounting; shares sum to 100%",
	}

	run := func(cfg *cpu.Config, bench *workload.Benchmark) error {
		core := cpu.NewCore(cfg)
		model := power.NewModel(cfg)
		gen := workload.NewGenerator(bench, r.Opt.Seed, 0)
		arch := &cpu.ThreadArch{CodeBase: 1 << 36, CodeSize: bench.EffectiveCodeFootprint()}
		core.Bind(gen, arch)
		limit := r.Opt.ProfileInstrLimit / 4
		if limit == 0 {
			limit = 100_000
		}
		for cycle := uint64(0); arch.Committed < limit; cycle++ {
			core.Step(cycle)
		}
		bd := model.BreakdownFor(core.Activity(), power.SnapshotCaches(core))
		row := []string{bench.Name, cfg.Name,
			fmt.Sprintf("%.2f", bd.Total()/float64(arch.Committed))}
		for c := power.Category(0); c < power.NumCategories; c++ {
			row = append(row, fmt.Sprintf("%.1f%%", 100*bd.Share(c)))
		}
		t.AddRow(row...)
		return nil
	}

	for _, name := range names {
		b, err := workload.ByName(name)
		if err != nil {
			return err
		}
		r.progress("power breakdown: %s", name)
		for _, cfg := range []*cpu.Config{r.IntCfg, r.FPCfg} {
			if err := run(cfg, b); err != nil {
				return err
			}
		}
	}
	return t.Fprint(w)
}
