package experiments

import (
	"fmt"
	"io"

	"ampsched/internal/amp"
	"ampsched/internal/cpu"
	"ampsched/internal/isa"
	"ampsched/internal/metrics"
	"ampsched/internal/report"
	"ampsched/internal/sched"
	"ampsched/internal/stats"
	"ampsched/internal/workload"
)

// ProposedExtFactory builds the §VII-extension scheduler (IPC + LLC
// miss-rate guard) with the runner's forced-swap interval.
func (r *Runner) ProposedExtFactory() SchedFactory {
	return func(opts ...sched.Option) amp.MoveScheduler {
		cfg := sched.DefaultExtendedConfig()
		cfg.Base.ForceInterval = r.Opt.ContextSwitch
		return sched.NewProposedExt(cfg, opts...)
	}
}

// memIntStress is the adversarial workload §VII describes: its
// committed mix is INT-dominated (so the Fig. 5 composition rules see
// a thread that "wants" the INT core) but it is actually bound by
// last-level-cache misses, so migrating it buys nothing and costs the
// swap overhead plus two cold caches. It is not part of the paper's
// 37-benchmark pool; it exists to exercise the extension.
var memIntStress = &workload.Benchmark{
	Name:  "memintstress",
	Suite: "Synthetic",
	Phases: []workload.Phase{{
		Name: "chase",
		Mix: func() isa.Mix {
			m := isa.Mix{isa.IntALU: 54, isa.IntMul: 3, isa.IntDiv: 1,
				isa.Load: 26, isa.Store: 8, isa.Branch: 8}
			m.Normalize()
			return m
		}(),
		Length:               200_000,
		MeanDepDist:          2.5,
		BranchPredictability: 0.95,
		WorkingSet:           8 << 20, // far beyond the 128K L2
		SeqFrac:              0.05,
	}},
}

// extensionPairs puts the memory-bound INT-looking thread on the FP
// core (thread B starts there) next to partners whose composition
// satisfies the "gives up the INT core" side of rule 2(i), so the base
// scheme's composition rules fire a swap that cannot pay off.
func extensionPairs() []Pair {
	partners := []string{"memstress", "equake", "ammp", "fpstress", "swim", "art"}
	var pairs []Pair
	for _, p := range partners {
		pairs = append(pairs, Pair{A: workload.MustByName(p), B: memIntStress})
	}
	// Control pairs where the INT-hungry thread is genuinely
	// compute-bound: the guard must NOT suppress these swaps.
	for _, p := range []string{"fpstress", "equake"} {
		pairs = append(pairs, Pair{A: workload.MustByName(p), B: workload.MustByName("intstress")})
	}
	return pairs
}

// RunExtension evaluates the §VII future-work extension: the proposed
// scheme with a memory-boundedness veto versus the base proposed
// scheme.
func RunExtension(r *Runner, w io.Writer) error {
	pairs := extensionPairs()
	t := &report.Table{
		Title: "§VII extension: proposed + IPC/LLC-miss guard vs base proposed",
		Headers: []string{"pair", "base swaps", "ext swaps", "ext vetoes",
			"ext weighted vs base", "ext geometric vs base"},
	}
	var wImp, gImp []float64
	for i, p := range pairs {
		r.progress("extension: pair %d/%d %s", i+1, len(pairs), p.Label())
		base, err := r.RunPair(i+40_000, p, r.ProposedFactory())
		if err != nil {
			return err
		}
		ext, err := r.RunPair(i+40_000, p, r.ProposedExtFactory())
		if err != nil {
			return err
		}
		cmp, err := metrics.Compare(ext, base)
		if err != nil {
			return err
		}
		wImp = append(wImp, cmp.WeightedPct)
		gImp = append(gImp, cmp.GeoPct)
		t.AddRow(p.Label(),
			fmt.Sprint(base.Swaps), fmt.Sprint(ext.Swaps), fmt.Sprint(ext.Sched.Vetoes),
			report.Pct(cmp.WeightedPct), report.Pct(cmp.GeoPct))
	}
	t.Note = "mean: weighted " + report.Pct(stats.Mean(wImp)) +
		", geometric " + report.Pct(stats.Mean(gImp)) +
		"; the guard suppresses unhelpful swaps of memory-bound threads and leaves compute-bound swaps alone"
	return t.Fprint(w)
}

// compile-time check that the adversarial workload is well-formed.
var _ = func() *cpu.Config {
	if err := memIntStress.Validate(); err != nil {
		panic(err)
	}
	return nil
}()
