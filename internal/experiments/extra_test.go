package experiments

import (
	"strings"
	"testing"
)

// TestAnalysisExperimentsRun smoke-tests the non-figure experiments
// (extension, morph, baselines, power) end to end at tiny scale.
func TestAnalysisExperimentsRun(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	opt := tinyOptions()
	opt.SensitivityPairs = 2
	opt.InstrLimit = 150_000
	r, err := NewRunner(opt)
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"power", "extension", "morph"} {
		e, err := ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		var sb strings.Builder
		if err := e.Run(r, &sb); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if len(sb.String()) < 80 {
			t.Fatalf("%s output suspiciously short:\n%s", name, sb.String())
		}
	}
}

func TestBaselinesExperimentRuns(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	opt := tinyOptions()
	opt.SensitivityPairs = 1
	opt.InstrLimit = 150_000
	r, err := NewRunner(opt)
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := RunBaselines(r, &sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"best-static", "proposed", "sampling", "MEAN"} {
		if !strings.Contains(out, want) {
			t.Errorf("baselines output missing %q", want)
		}
	}
}

func TestExtensionPairsWellFormed(t *testing.T) {
	pairs := extensionPairs()
	if len(pairs) < 6 {
		t.Fatalf("too few extension pairs: %d", len(pairs))
	}
	for _, p := range pairs {
		if err := p.A.Validate(); err != nil {
			t.Errorf("%s: %v", p.A.Name, err)
		}
		if err := p.B.Validate(); err != nil {
			t.Errorf("%s: %v", p.B.Name, err)
		}
	}
}

func TestMorphPairsWellFormed(t *testing.T) {
	pairs := morphPairs()
	if len(pairs) < 6 {
		t.Fatalf("too few morph pairs: %d", len(pairs))
	}
	seen := map[string]bool{}
	for _, p := range pairs {
		if seen[p.Label()] {
			t.Errorf("duplicate morph pair %s", p.Label())
		}
		seen[p.Label()] = true
	}
}

func TestMemIntStressIsAdversarial(t *testing.T) {
	// The §VII adversarial workload must look INT-hungry to the
	// Fig. 5 rules (>= IntHigh) while being memory-dominated.
	m := memIntStress.AverageMix()
	if 100*m.IntFrac() < 55 {
		t.Fatalf("memintstress %%INT %.1f below the IntHigh threshold", 100*m.IntFrac())
	}
	if m.MemFrac() < 0.25 {
		t.Fatalf("memintstress mem fraction %.2f too small to be memory-bound", m.MemFrac())
	}
	if memIntStress.Phases[0].WorkingSet <= 128<<10 {
		t.Fatal("memintstress working set fits in L2")
	}
}

func TestManycoreExperimentRuns(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	opt := tinyOptions()
	opt.InstrLimit = 120_000
	r, err := NewRunner(opt)
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := RunManycore(r, &sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"rank", "rotate", "static", "MEAN"} {
		if !strings.Contains(out, want) {
			t.Errorf("manycore output missing %q", want)
		}
	}
}

func TestPhasesExperimentRuns(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	r, err := NewRunner(tinyOptions())
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := RunPhases(r, &sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "purity") {
		t.Error("phases output missing purity column")
	}
}

func TestCharacterizeExperimentRuns(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	opt := tinyOptions()
	opt.ProfileInstrLimit = 400_000 // /4 floor inside
	r, err := NewRunner(opt)
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := RunCharacterize(r, &sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"intstress", "fpstress", "prefers"} {
		if !strings.Contains(out, want) {
			t.Errorf("characterize output missing %q", want)
		}
	}
}

func TestOracleExperimentRuns(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	opt := tinyOptions()
	opt.SensitivityPairs = 1
	opt.InstrLimit = 120_000
	r, err := NewRunner(opt)
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := RunOracle(r, &sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "clairvoyant") {
		t.Error("oracle output missing clairvoyant label")
	}
}
