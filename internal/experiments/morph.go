package experiments

import (
	"fmt"
	"io"

	"ampsched/internal/amp"
	"ampsched/internal/metrics"
	"ampsched/internal/report"
	"ampsched/internal/sched"
	"ampsched/internal/stats"
	"ampsched/internal/workload"
)

// MorphingFactory builds the [5]-style morphing scheduler with the
// runner's forced-swap interval.
func (r *Runner) MorphingFactory() SchedFactory {
	return func(opts ...sched.Option) amp.MoveScheduler {
		cfg := sched.DefaultMorphConfig()
		cfg.Base.ForceInterval = r.Opt.ContextSwitch
		return sched.NewMorphing(cfg, opts...)
	}
}

// morphPairs mixes the morphing sweet spot (one collapsed thread, one
// hot thread) with ordinary pairs where morphing should stay out of
// the way.
func morphPairs() []Pair {
	combos := [][2]string{
		{"memstress", "fpstress"}, // collapsed + hot FP
		{"memstress", "intstress"},
		{"mcf", "fpstress"},
		{"mcf", "mixstress"},
		{"memstress", "mixstress"},
		{"art", "bitcount"},
		{"fpstress", "intstress"}, // both hot: morphing must abstain
		{"gcc", "equake"},
	}
	var pairs []Pair
	for _, c := range combos {
		pairs = append(pairs, Pair{A: workload.MustByName(c[0]), B: workload.MustByName(c[1])})
	}
	return pairs
}

// RunMorph evaluates the §III design question: how much does the
// morphing hardware of [5] add over the paper's swap-only scheme?
// Positive deltas argue for morphing; near-zero deltas support the
// paper's choice to drop the morphing hardware.
func RunMorph(r *Runner, w io.Writer) error {
	pairs := morphPairs()
	t := &report.Table{
		Title: "§III: swap-only (this paper) vs swap+morph ([5])",
		Headers: []string{"pair", "swaps (swap-only)", "swaps+morphs (morph)",
			"morph weighted vs swap-only", "morph geometric vs swap-only"},
	}
	var wImp, gImp []float64
	for i, p := range pairs {
		r.progress("morph: pair %d/%d %s", i+1, len(pairs), p.Label())
		swapOnly, err := r.RunPair(i+60_000, p, r.ProposedFactory())
		if err != nil {
			return err
		}
		morph, err := r.RunPair(i+60_000, p, r.MorphingFactory())
		if err != nil {
			return err
		}
		cmp, err := metrics.Compare(morph, swapOnly)
		if err != nil {
			return err
		}
		wImp = append(wImp, cmp.WeightedPct)
		gImp = append(gImp, cmp.GeoPct)
		t.AddRow(p.Label(),
			fmt.Sprint(swapOnly.Swaps),
			fmt.Sprintf("%d+%d", morph.Swaps, morph.Morphs),
			report.Pct(cmp.WeightedPct), report.Pct(cmp.GeoPct))
	}
	t.Note = "mean: weighted " + report.Pct(stats.Mean(wImp)) +
		", geometric " + report.Pct(stats.Mean(gImp)) +
		"; the paper drops morphing to avoid its hardware cost — this measures what that choice leaves on the table"
	return t.Fprint(w)
}
