package experiments

import (
	"sync"
	"testing"
)

// concurrencyOptions keeps the concurrency tests fast: the point is
// the synchronization, not the simulated workload.
func concurrencyOptions() Options {
	o := tinyOptions()
	o.Pairs = 2
	o.InstrLimit = 40_000
	o.ContextSwitch = 10_000
	o.ProfileInstrLimit = 30_000
	o.SensitivityPairs = 1
	return o
}

// TestRunnerConcurrentLazyInit hammers the lazy accessors from many
// goroutines on a fresh Runner: under -race this catches any unguarded
// first-use initialization, and every caller must observe the same
// cached pointers (one profiling pass shared by all).
func TestRunnerConcurrentLazyInit(t *testing.T) {
	r, err := NewRunner(concurrencyOptions())
	if err != nil {
		t.Fatal(err)
	}
	const goroutines = 8
	var wg sync.WaitGroup
	profiles := make([]interface{}, goroutines)
	matrices := make([]interface{}, goroutines)
	surfaces := make([]interface{}, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			profiles[g] = r.Profile()
			m, err := r.Matrix()
			if err != nil {
				t.Errorf("goroutine %d: Matrix: %v", g, err)
				return
			}
			matrices[g] = m
			s, err := r.Surface()
			if err != nil {
				t.Errorf("goroutine %d: Surface: %v", g, err)
				return
			}
			surfaces[g] = s
		}(g)
	}
	wg.Wait()
	for g := 1; g < goroutines; g++ {
		if profiles[g] != profiles[0] {
			t.Errorf("goroutine %d got a different profile instance", g)
		}
		if matrices[g] != matrices[0] {
			t.Errorf("goroutine %d got a different matrix instance", g)
		}
		if surfaces[g] != surfaces[0] {
			t.Errorf("goroutine %d got a different surface instance", g)
		}
	}
}

// TestRunnerConcurrentPairRuns runs independent pairs in parallel on a
// shared Runner — the server's execution pattern — and checks each
// result is identical to a sequential rerun (determinism is per pair
// index, independent of interleaving).
func TestRunnerConcurrentPairRuns(t *testing.T) {
	r, err := NewRunner(concurrencyOptions())
	if err != nil {
		t.Fatal(err)
	}
	pairs := RandomPairs(4, r.Opt.Seed)
	type run struct {
		committed [2]uint64
		cycles    uint64
	}
	parallel := make([]run, len(pairs))
	var wg sync.WaitGroup
	for i, p := range pairs {
		wg.Add(1)
		go func(i int, p Pair) {
			defer wg.Done()
			res, err := r.RunPair(i, p, r.ProposedFactory())
			if err != nil {
				t.Errorf("pair %d: %v", i, err)
				return
			}
			parallel[i] = run{
				committed: [2]uint64{res.Threads[0].Committed, res.Threads[1].Committed},
				cycles:    res.Cycles,
			}
		}(i, p)
	}
	wg.Wait()
	for i, p := range pairs {
		res, err := r.RunPair(i, p, r.ProposedFactory())
		if err != nil {
			t.Fatalf("sequential rerun pair %d: %v", i, err)
		}
		if res.Cycles != parallel[i].cycles ||
			res.Threads[0].Committed != parallel[i].committed[0] ||
			res.Threads[1].Committed != parallel[i].committed[1] {
			t.Errorf("pair %d (%s): parallel run diverged from sequential rerun", i, p.Label())
		}
	}
}
