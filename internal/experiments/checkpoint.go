package experiments

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sync"
)

// Sweep checkpointing. A paper-scale sweep is hours of CPU time; a
// crash (or a chaos-harness kill -9) without checkpoints restarts it
// from pair zero. A Runner given a Checkpointer snapshots completed
// pair outcomes every CheckpointEvery completions, keyed by a content
// hash of the options that determine the results — so a restarted
// sweep resumes exactly where it stopped, and a sweep whose options
// changed in any result-affecting way ignores stale snapshots
// entirely.
//
// The snapshot protocol mirrors the repo's other durability layers:
// CRC-framed payloads, tmp+rename atomic writes, and quarantine (a
// corrupt checkpoint is renamed *.corrupt and treated as absent, never
// as an error that blocks the sweep).

// Checkpointer persists sweep snapshots. Implementations must be safe
// for concurrent Save calls with distinct keys; the Runner serializes
// calls for one key.
type Checkpointer interface {
	// Save durably replaces the snapshot for key.
	Save(key string, snap *SweepCheckpoint) error
	// Load returns the snapshot for key, or (nil, nil) when no intact
	// snapshot exists — absence and quarantined corruption look alike.
	Load(key string) (*SweepCheckpoint, error)
}

// CheckpointOutcome is one completed pair in a snapshot. The pair
// label guards against workload-set drift: an outcome only resumes
// onto an index whose pair still carries the same label.
type CheckpointOutcome struct {
	Index   int         `json:"index"`
	Label   string      `json:"label"`
	Outcome PairOutcome `json:"outcome"`
}

// SweepCheckpoint is a partial (or complete) sweep snapshot.
type SweepCheckpoint struct {
	Seed       uint64              `json:"seed"`
	Pairs      int                 `json:"pairs"`
	InstrLimit uint64              `json:"instr_limit"`
	Fidelity   string              `json:"fidelity"`
	Outcomes   []CheckpointOutcome `json:"outcomes"`
}

// matches reports whether the snapshot belongs to opt's result space.
// The checkpoint key already encodes the full options; this is a
// second, cheap guard against key collisions and hand-edited files.
func (s *SweepCheckpoint) matches(opt Options) bool {
	return s.Seed == opt.Seed && s.Pairs == opt.Pairs &&
		s.InstrLimit == opt.InstrLimit && s.Fidelity == opt.Fidelity
}

// CheckpointKey content-addresses an option set: every field that can
// change simulated results is in Options, so its canonical JSON hash
// identifies the sweep the same way the server's KeySpec identifies a
// pair.
func CheckpointKey(opt Options) string {
	b, err := json.Marshal(opt)
	if err != nil {
		// Options is a plain struct; Marshal cannot fail on it.
		panic(fmt.Sprintf("experiments: marshaling options: %v", err))
	}
	sum := sha256.Sum256(b)
	return hex.EncodeToString(sum[:16])
}

var ckptCRCTable = crc32.MakeTable(crc32.Castagnoli)

// checkpointFile is the on-disk wrapper: payload plus its CRC, so a
// torn write from a crash mid-save is detected on load.
type checkpointFile struct {
	CRC     uint32          `json:"crc32c"`
	Payload json.RawMessage `json:"payload"`
}

// DirCheckpointer stores one "<key>.ckpt.json" per sweep in a
// directory, written atomically (tmp+rename) and CRC-verified on
// load. Corrupt files are quarantined as "<name>.corrupt".
type DirCheckpointer struct {
	// Dir is the checkpoint directory (created on first Save).
	Dir string
	// WriteFile overrides the write primitive (nil = os.WriteFile) —
	// the chaos harness's disk-fault seam.
	WriteFile func(name string, data []byte, perm os.FileMode) error
}

// NewDirCheckpointer builds a checkpointer over dir.
func NewDirCheckpointer(dir string) *DirCheckpointer {
	return &DirCheckpointer{Dir: dir}
}

func (d *DirCheckpointer) path(key string) string {
	return filepath.Join(d.Dir, key+".ckpt.json")
}

// Save implements Checkpointer.
func (d *DirCheckpointer) Save(key string, snap *SweepCheckpoint) error {
	payload, err := json.Marshal(snap)
	if err != nil {
		return fmt.Errorf("experiments: marshaling checkpoint: %w", err)
	}
	data, err := json.Marshal(checkpointFile{
		CRC:     crc32.Checksum(payload, ckptCRCTable),
		Payload: payload,
	})
	if err != nil {
		return fmt.Errorf("experiments: framing checkpoint: %w", err)
	}
	if err := os.MkdirAll(d.Dir, 0o755); err != nil {
		return fmt.Errorf("experiments: checkpoint dir: %w", err)
	}
	write := d.WriteFile
	if write == nil {
		write = os.WriteFile
	}
	path := d.path(key)
	tmp := path + ".tmp"
	if err := write(tmp, data, 0o644); err != nil {
		os.Remove(tmp) // a torn tmp file must never linger
		return fmt.Errorf("experiments: writing checkpoint: %w", err)
	}
	if err := os.Rename(tmp, path); err != nil {
		return fmt.Errorf("experiments: promoting checkpoint: %w", err)
	}
	return nil
}

// Load implements Checkpointer. Unreadable, unparsable or CRC-failing
// files are quarantined and reported as absent: a damaged checkpoint
// costs the resume, never the sweep.
func (d *DirCheckpointer) Load(key string) (*SweepCheckpoint, error) {
	path := d.path(key)
	data, err := os.ReadFile(path)
	if err != nil {
		if os.IsNotExist(err) {
			return nil, nil
		}
		d.quarantine(path)
		return nil, nil
	}
	var file checkpointFile
	if json.Unmarshal(data, &file) != nil ||
		crc32.Checksum(file.Payload, ckptCRCTable) != file.CRC {
		d.quarantine(path)
		return nil, nil
	}
	var snap SweepCheckpoint
	if json.Unmarshal(file.Payload, &snap) != nil {
		d.quarantine(path)
		return nil, nil
	}
	return &snap, nil
}

func (d *DirCheckpointer) quarantine(path string) {
	_ = os.Rename(path, path+".corrupt")
}

// defaultCheckpointEvery is the save cadence (in completed pairs) when
// Runner.CheckpointEvery is zero.
const defaultCheckpointEvery = 8

// ckptState carries one sweep's checkpoint bookkeeping. A nil receiver
// (checkpointing disabled) is valid for every method, so SweepContext
// stays unconditional.
type ckptState struct {
	r     *Runner
	key   string
	pairs []Pair
	out   *SweepResult

	mu        sync.Mutex
	done      []bool
	sinceSave int
	every     int

	// saveMu serializes snapshot writes. Snapshots are built under mu
	// (cheap copy) but written outside it, so a slow disk stalls at
	// most the one goroutine doing the save — never the sweep workers
	// calling complete() on other pairs.
	saveMu sync.Mutex
}

// newCkptState loads any prior snapshot for the runner's options and
// restores its outcomes into out. It reports how the sweep resumes via
// the progress hook and the "experiments.checkpoint_resumes" counter.
func (r *Runner) newCkptState(pairs []Pair, out *SweepResult) *ckptState {
	if r.Checkpoint == nil {
		return nil
	}
	c := &ckptState{
		r:     r,
		key:   CheckpointKey(r.Opt),
		pairs: pairs,
		out:   out,
		done:  make([]bool, len(pairs)),
		every: r.CheckpointEvery,
	}
	if c.every <= 0 {
		c.every = defaultCheckpointEvery
	}
	snap, err := r.Checkpoint.Load(c.key)
	if err != nil {
		r.progress("checkpoint load failed (starting fresh): %v", err)
		return c
	}
	if snap == nil || !snap.matches(r.Opt) {
		return c
	}
	restored := 0
	for _, co := range snap.Outcomes {
		i := co.Index
		if i < 0 || i >= len(pairs) || c.done[i] || co.Outcome.Failed {
			continue
		}
		if co.Label != pairs[i].Label() {
			// Workload-set drift: the snapshot's pair i is no longer
			// our pair i. Recompute rather than mislabel.
			continue
		}
		out.Outcomes[i] = co.Outcome
		out.Outcomes[i].Pair = pairs[i]
		c.done[i] = true
		restored++
	}
	if restored > 0 {
		if r.Telemetry != nil {
			r.Telemetry.Counter("experiments.checkpoint_resumes").Add(uint64(restored))
		}
		r.progress("resumed %d/%d pairs from checkpoint %s", restored, len(pairs), c.key)
	}
	return c
}

// restored reports whether pair i was revived from the snapshot and
// must not be recomputed.
func (c *ckptState) restored(i int) bool {
	if c == nil {
		return false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.done[i]
}

// complete records a freshly computed pair and saves a snapshot every
// `every` completions. Degraded outcomes are tracked but never saved,
// so a resume retries them. The snapshot is copied out under mu and
// written to disk outside it: parallel workers completing other pairs
// must never queue behind checkpoint I/O.
func (c *ckptState) complete(i int) {
	if c == nil {
		return
	}
	c.mu.Lock()
	c.done[i] = true
	c.sinceSave++
	var snap *SweepCheckpoint
	if c.sinceSave >= c.every {
		snap = c.snapshotLocked()
		c.sinceSave = 0
	}
	c.mu.Unlock()
	c.save(snap)
}

// flush persists any completions since the last cadenced save — the
// end-of-sweep (or cancellation) final snapshot.
func (c *ckptState) flush() {
	if c == nil {
		return
	}
	c.mu.Lock()
	var snap *SweepCheckpoint
	if c.sinceSave > 0 {
		snap = c.snapshotLocked()
		c.sinceSave = 0
	}
	c.mu.Unlock()
	c.save(snap)
}

// snapshotLocked copies every completed, non-degraded outcome into a
// fresh SweepCheckpoint. Must be called with mu held. The Pair field
// is zeroed in the copy: the snapshot re-derives pairs from (Seed,
// Pairs) on load, and the label guards identity.
func (c *ckptState) snapshotLocked() *SweepCheckpoint {
	snap := &SweepCheckpoint{
		Seed:       c.r.Opt.Seed,
		Pairs:      c.r.Opt.Pairs,
		InstrLimit: c.r.Opt.InstrLimit,
		Fidelity:   c.r.Opt.Fidelity,
	}
	for i, ok := range c.done {
		if !ok || c.out.Outcomes[i].Failed {
			continue
		}
		oc := c.out.Outcomes[i]
		oc.Pair = Pair{}
		snap.Outcomes = append(snap.Outcomes, CheckpointOutcome{
			Index:   i,
			Label:   c.pairs[i].Label(),
			Outcome: oc,
		})
	}
	return snap
}

// save writes one snapshot, serialized by saveMu so concurrent
// cadence hits cannot interleave writes out of order. Save failures
// degrade the resume, never the sweep: the failed state is folded back
// into sinceSave so a later completion (or flush) retries.
func (c *ckptState) save(snap *SweepCheckpoint) {
	if snap == nil {
		return
	}
	c.saveMu.Lock()
	defer c.saveMu.Unlock()
	//ampvet:allow lockcheck saveMu exists to serialize checkpoint I/O; holding it across the write is its whole job, and sweep workers never touch it
	if err := c.r.Checkpoint.Save(c.key, snap); err != nil {
		c.r.progress("checkpoint save failed: %v", err)
		c.mu.Lock()
		c.sinceSave += c.every
		c.mu.Unlock()
	}
}
