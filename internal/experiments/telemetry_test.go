package experiments

import (
	"context"
	"errors"
	"testing"

	"ampsched/internal/telemetry"
)

func TestSweepResultEdgeCases(t *testing.T) {
	empty := &SweepResult{}
	if empty.Failed() != 0 {
		t.Error("empty sweep reports failures")
	}
	if got := empty.Completed(); len(got) != 0 {
		t.Errorf("empty sweep completed %d outcomes", len(got))
	}

	all := &SweepResult{Outcomes: []PairOutcome{
		{Failed: true, Err: "a"},
		{Failed: true, Err: "b"},
	}}
	if all.Failed() != 2 || len(all.Completed()) != 0 {
		t.Errorf("all-failed sweep: Failed=%d Completed=%d", all.Failed(), len(all.Completed()))
	}
	if len(all.WeightedVsHPE()) != 0 || len(all.WeightedVsRR()) != 0 {
		t.Error("aggregates include failed outcomes")
	}

	// A mixed sweep preserves pair order among the completed outcomes.
	pairs := RandomPairs(3, 1)
	mixed := &SweepResult{Outcomes: []PairOutcome{
		{Pair: pairs[0]},
		{Pair: pairs[1], Failed: true, Err: "wedged"},
		{Pair: pairs[2]},
	}}
	if mixed.Failed() != 1 {
		t.Errorf("Failed = %d, want 1", mixed.Failed())
	}
	done := mixed.Completed()
	if len(done) != 2 || done[0].Pair != pairs[0] || done[1].Pair != pairs[2] {
		t.Errorf("Completed out of order: %v", done)
	}
}

func TestRunPairContextCancel(t *testing.T) {
	r, err := NewRunner(tinyOptions())
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	p := RandomPairs(1, 3)[0]
	_, err = r.RunPairContext(ctx, 0, p, r.RRFactory(1))
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

func TestSweepContextCancelReturnsPartialUncached(t *testing.T) {
	r, err := NewRunner(tinyOptions())
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel() // before the sweep: every pair must come back flagged
	sw, err := r.SweepContext(ctx)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if sw == nil || len(sw.Outcomes) == 0 {
		t.Fatal("no partial result returned")
	}
	for i := range sw.Outcomes {
		if !sw.Outcomes[i].Failed || sw.Outcomes[i].Err == "" {
			t.Fatalf("outcome %d not flagged after cancellation: %+v", i, sw.Outcomes[i])
		}
	}
	// The canceled sweep must not be cached: a later uncanceled Sweep
	// runs for real and succeeds.
	clean, err := r.Sweep()
	if err != nil {
		t.Fatal(err)
	}
	if clean.Failed() == len(clean.Outcomes) {
		t.Fatal("post-cancel Sweep still degraded")
	}
}

func TestRunnerTelemetryCounters(t *testing.T) {
	opt := tinyOptions()
	opt.Pairs = 2
	opt.FaultRate = 0.3
	opt.FaultSeed = 5
	r, err := NewRunner(opt)
	if err != nil {
		t.Fatal(err)
	}
	tel := telemetry.New()
	r.Telemetry = tel
	sw, err := r.Sweep()
	if err != nil {
		t.Fatal(err)
	}
	reg := tel.Registry()
	done := reg.Counter("experiments.pairs_done").Value()
	failed := reg.Counter("experiments.pairs_failed").Value()
	if int(done) != len(sw.Completed()) || int(failed) != sw.Failed() {
		t.Errorf("pairs_done/failed = %d/%d, want %d/%d",
			done, failed, len(sw.Completed()), sw.Failed())
	}
	// Three runs per outcome land in the wall-time histogram.
	if h := reg.Histogram("experiments.run_wall_us"); h.Count() != uint64(3*len(sw.Outcomes)) {
		t.Errorf("run_wall_us count = %d, want %d", h.Count(), 3*len(sw.Outcomes))
	}
	// The lower layers published through the same Telemetry.
	if reg.Counter("amp.runs").Value() == 0 {
		t.Error("amp layer silent")
	}
	if reg.Counter("sched.proposed.windows").Value() == 0 {
		t.Error("sched layer silent")
	}
	// With a 30% uniform fault rate something must have been injected.
	var injected uint64
	for _, name := range []string{
		"fault.samples_dropped", "fault.samples_stale",
		"fault.samples_noised", "fault.swaps_failed", "fault.swaps_delayed",
	} {
		injected += reg.Counter(name).Value()
	}
	if injected == 0 {
		t.Error("fault layer silent at 30% rate")
	}
}
