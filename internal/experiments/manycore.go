package experiments

import (
	"fmt"
	"io"

	"ampsched/internal/amp"
	"ampsched/internal/cpu"
	"ampsched/internal/manycore"
	"ampsched/internal/report"
	"ampsched/internal/stats"
	"ampsched/internal/workload"
)

// quadSets are 4-thread workload mixes for the 2-INT + 2-FP quad-core
// generalization of §VIII.
var quadSets = [][4]string{
	{"fpstress", "equake", "intstress", "bitcount"}, // fully inverted start
	{"intstress", "fpstress", "sha", "swim"},        // half inverted
	{"gcc", "apsi", "CRC32", "ammp"},                // mixed flavors
	{"mixstress", "mcf", "fft", "blowfish"},         // phases + memory-bound
	{"bitcount", "sha", "CRC32", "blowfish"},        // all-INT (nothing to fix)
}

// RunManycore evaluates the §VIII generalization: a quad-core
// (2 INT + 2 FP) AMP under the scalable rank-and-place scheduler vs
// rotation and static assignment. Scores are geomean IPC/Watt over the
// four threads, normalized to static.
func RunManycore(r *Runner, w io.Writer) error {
	cores := []manycore.CoreSpec{
		{Config: cpu.IntCoreConfig(), Pool: 0}, {Config: cpu.IntCoreConfig(), Pool: 0},
		{Config: cpu.FPCoreConfig(), Pool: 1}, {Config: cpu.FPCoreConfig(), Pool: 1},
	}
	t := &report.Table{
		Title:   "§VIII generalization: quad-core (2 INT + 2 FP), geomean IPC/Watt normalized to static",
		Headers: []string{"threads", "static", "rotate", "rank", "rank reassigns"},
		Note:    "rank-and-place scales the composition rules beyond two cores without sampling",
	}
	limit := r.Opt.InstrLimit / 2
	if limit == 0 {
		limit = 200_000
	}
	var rankScores, rotScores []float64
	for i, set := range quadSets {
		r.progress("manycore: set %d/%d %v", i+1, len(quadSets), set)
		threads := make([]manycore.ThreadSpec, 4)
		for j, n := range set {
			b, err := workload.ByName(n)
			if err != nil {
				return err
			}
			threads[j] = manycore.ThreadSpec{Bench: b, Seed: r.Opt.Seed*4096 + uint64(i*8+j)}
		}

		run := func(s amp.MoveScheduler) (manycore.Result, error) {
			sys, err := manycore.New(cores, threads, s, manycore.Config{
				ReassignOverheadCycles: r.Opt.SwapOverhead,
			})
			if err != nil {
				return manycore.Result{}, err
			}
			return sys.Run(limit)
		}
		static, err := run(manycore.Static{})
		if err != nil {
			return fmt.Errorf("manycore set %v static: %w", set, err)
		}
		rotate, err := run(manycore.NewRotate(r.Opt.ContextSwitch))
		if err != nil {
			return fmt.Errorf("manycore set %v rotate: %w", set, err)
		}
		rank, err := run(manycore.NewRank(manycore.DefaultRankConfig()))
		if err != nil {
			return fmt.Errorf("manycore set %v rank: %w", set, err)
		}

		base := static.GeomeanIPCW()
		rankScores = append(rankScores, rank.GeomeanIPCW()/base)
		rotScores = append(rotScores, rotate.GeomeanIPCW()/base)
		t.AddRow(fmt.Sprintf("%v", set), "1.000",
			fmt.Sprintf("%.3f", rotate.GeomeanIPCW()/base),
			fmt.Sprintf("%.3f", rank.GeomeanIPCW()/base),
			fmt.Sprint(rank.Reassigns))
	}
	t.AddRow("MEAN", "1.000",
		fmt.Sprintf("%.3f", stats.Mean(rotScores)),
		fmt.Sprintf("%.3f", stats.Mean(rankScores)), "")
	return t.Fprint(w)
}
