package experiments

import (
	"strings"
	"testing"

	"ampsched/internal/sched"
)

// tinyOptions keeps end-to-end tests fast while still exercising every
// code path.
func tinyOptions() Options {
	return Options{
		Pairs:             3,
		InstrLimit:        200_000,
		ContextSwitch:     60_000,
		SwapOverhead:      500,
		ProfileInstrLimit: 250_000,
		RuleWindow:        1000,
		RulePairs:         5,
		SensitivityPairs:  2,
		Seed:              11,
	}
}

func TestOptionsValidate(t *testing.T) {
	def := DefaultOptions()
	if err := def.Validate(); err != nil {
		t.Fatal(err)
	}
	paper := PaperScaleOptions()
	if err := paper.Validate(); err != nil {
		t.Fatal(err)
	}
	bads := []func(*Options){
		func(o *Options) { o.Pairs = 0 },
		func(o *Options) { o.InstrLimit = 0 },
		func(o *Options) { o.ContextSwitch = 0 },
		func(o *Options) { o.SwapOverhead = 0 },
		func(o *Options) { o.RuleWindow = 0 },
		func(o *Options) { o.RulePairs = 0 },
		func(o *Options) { o.SensitivityPairs = 0 },
	}
	for i, mutate := range bads {
		o := DefaultOptions()
		mutate(&o)
		if err := o.Validate(); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
}

func TestRandomPairsDistinctDeterministic(t *testing.T) {
	a := RandomPairs(20, 5)
	b := RandomPairs(20, 5)
	if len(a) != 20 {
		t.Fatalf("got %d pairs", len(a))
	}
	seen := map[string]bool{}
	for i := range a {
		if a[i].Label() != b[i].Label() {
			t.Fatal("pair selection nondeterministic")
		}
		if a[i].A.Name == a[i].B.Name {
			t.Fatalf("self-pair %s", a[i].Label())
		}
		if seen[a[i].Label()] {
			t.Fatalf("duplicate pair %s", a[i].Label())
		}
		seen[a[i].Label()] = true
	}
	c := RandomPairs(20, 6)
	diff := 0
	for i := range c {
		if c[i].Label() != a[i].Label() {
			diff++
		}
	}
	if diff == 0 {
		t.Fatal("different seeds produced identical pair lists")
	}
}

func TestRandomPairsClamped(t *testing.T) {
	p := RandomPairs(1_000_000, 1)
	if len(p) != 37*36/2 {
		t.Fatalf("got %d pairs, want all %d", len(p), 37*36/2)
	}
}

func TestByNameAndAll(t *testing.T) {
	names := map[string]bool{}
	for _, e := range All() {
		if names[e.Name] {
			t.Fatalf("duplicate experiment %s", e.Name)
		}
		names[e.Name] = true
		if e.Run == nil || e.Desc == "" {
			t.Fatalf("experiment %s incomplete", e.Name)
		}
	}
	for _, want := range []string{"tables", "fig1", "fig3", "fig4", "rules",
		"fig6", "fig7", "fig8", "fig9", "overhead", "decisions", "rrinterval", "extension"} {
		if !names[want] {
			t.Errorf("missing experiment %s", want)
		}
	}
	if _, err := ByName("nope"); err == nil {
		t.Fatal("unknown experiment accepted")
	}
}

func TestNewRunnerValidates(t *testing.T) {
	bad := DefaultOptions()
	bad.Pairs = 0
	if _, err := NewRunner(bad); err == nil {
		t.Fatal("invalid options accepted")
	}
}

func TestRunTables(t *testing.T) {
	r, err := NewRunner(tinyOptions())
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := RunTables(r, &sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"Table I", "Table II", "ROB", "FPALU", "INT", "FP"} {
		if !strings.Contains(out, want) {
			t.Errorf("tables output missing %q", want)
		}
	}
}

func TestProfileCachedAndEstimators(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	r, err := NewRunner(tinyOptions())
	if err != nil {
		t.Fatal(err)
	}
	p1 := r.Profile()
	p2 := r.Profile()
	if p1 != p2 {
		t.Fatal("profile not cached")
	}
	m, err := r.Matrix()
	if err != nil {
		t.Fatal(err)
	}
	s, err := r.Surface()
	if err != nil {
		t.Fatal(err)
	}
	var _ sched.Estimator = m
	var _ sched.Estimator = s
	// Qualitative agreement between the two estimators.
	if m.RatioIntOverFP(90, 2) < 1 {
		t.Errorf("matrix INT-heavy ratio %.2f < 1", m.RatioIntOverFP(90, 2))
	}
	if s.RatioIntOverFP(2, 80) > s.RatioIntOverFP(90, 2) {
		t.Error("surface shape inverted")
	}
}

func TestSweepAndFigs(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	r, err := NewRunner(tinyOptions())
	if err != nil {
		t.Fatal(err)
	}
	sw, err := r.Sweep()
	if err != nil {
		t.Fatal(err)
	}
	if len(sw.Outcomes) != 3 {
		t.Fatalf("outcomes = %d", len(sw.Outcomes))
	}
	sw2, err := r.Sweep()
	if err != nil || sw2 != sw {
		t.Fatal("sweep not cached")
	}
	for _, o := range sw.Outcomes {
		for i := 0; i < 2; i++ {
			if o.Proposed.Threads[i].IPCPerWatt <= 0 ||
				o.HPE.Threads[i].IPCPerWatt <= 0 ||
				o.RR.Threads[i].IPCPerWatt <= 0 {
				t.Fatalf("non-positive IPC/Watt in pair %s", o.Pair.Label())
			}
		}
	}
	// Render all the sweep-based figures.
	for _, name := range []string{"fig7", "fig8", "fig9", "decisions"} {
		e, err := ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		var sb strings.Builder
		if err := e.Run(r, &sb); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if len(sb.String()) < 50 {
			t.Fatalf("%s output suspiciously short", name)
		}
	}
}

func TestFig1Runs(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	opt := tinyOptions()
	opt.ProfileInstrLimit = 120_000
	r, err := NewRunner(opt)
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := RunFig1(r, &sb); err != nil {
		t.Fatal(err)
	}
	for _, name := range fig1Workloads {
		if !strings.Contains(sb.String(), name) {
			t.Errorf("fig1 missing %s", name)
		}
	}
}

func TestRunPairDeterministic(t *testing.T) {
	r, err := NewRunner(tinyOptions())
	if err != nil {
		t.Fatal(err)
	}
	pairs := RandomPairs(1, 3)
	res1, err := r.RunPair(0, pairs[0], r.RRFactory(1))
	if err != nil {
		t.Fatal(err)
	}
	res2, err := r.RunPair(0, pairs[0], r.RRFactory(1))
	if err != nil {
		t.Fatal(err)
	}
	if res1.Cycles != res2.Cycles || res1.Swaps != res2.Swaps {
		t.Fatal("RunPair nondeterministic")
	}
	if res1.Threads[0].Name != pairs[0].A.Name {
		t.Fatal("thread identity wrong")
	}
}

func TestProgressCallback(t *testing.T) {
	r, err := NewRunner(tinyOptions())
	if err != nil {
		t.Fatal(err)
	}
	var lines []string
	r.Progress = func(s string) { lines = append(lines, s) }
	r.progress("hello %d", 42)
	if len(lines) != 1 || lines[0] != "hello 42" {
		t.Fatalf("progress lines: %v", lines)
	}
}

func TestPairLabel(t *testing.T) {
	p := RandomPairs(1, 9)[0]
	if !strings.Contains(p.Label(), "+") {
		t.Fatalf("label %q", p.Label())
	}
}
