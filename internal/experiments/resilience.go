package experiments

import (
	"fmt"
	"io"

	"ampsched/internal/report"
	"ampsched/internal/stats"
)

// resilienceRates are the injected uniform fault rates swept by the
// robustness experiment. Rate 0 is the clean reference each scheme is
// normalized against.
var resilienceRates = []float64{0, 0.02, 0.05, 0.10, 0.20}

// RunResilience measures graceful degradation: mean geometric IPC/Watt
// of the proposed scheme, HPE and Round Robin on a common pair set as
// the internal/fault injection rate rises. Faults perturb the monitor
// samples every scheduler reads and drop or delay the swaps it
// requests; a robust policy should lose performance-per-watt smoothly
// rather than wedge or collapse. The whole sweep is deterministic in
// (Seed, FaultSeed): identical options reproduce the table bit for
// bit.
func RunResilience(r *Runner, w io.Writer) error {
	matrix, err := r.Matrix()
	if err != nil {
		return err
	}
	pairs := RandomPairs(r.Opt.SensitivityPairs, r.Opt.Seed+2)
	schemes := []struct {
		name    string
		factory func(rr *Runner) SchedFactory
	}{
		{"proposed", func(rr *Runner) SchedFactory { return rr.ProposedFactory() }},
		{"HPE", func(rr *Runner) SchedFactory { return rr.HPEFactory(matrix) }},
		{"RR", func(rr *Runner) SchedFactory { return rr.RRFactory(1) }},
	}

	t := &report.Table{
		Title: "robustness: mean geometric IPC/Watt vs injected fault rate, normalized to fault-free",
		Headers: []string{"fault rate", "proposed", "HPE", "RR",
			"proposed failed swaps", "degraded runs"},
		Note: "faults drop/perturb monitor windows and fail/delay requested swaps (internal/fault); schedulers retry with backoff",
	}

	base := make([]float64, len(schemes))
	for _, rate := range resilienceRates {
		// A derived runner shares the cached profile/matrix but gets its
		// own fault rate; the per-pair fault seeds stay fixed so every
		// rate sees the same underlying draw sequence.
		opt := r.Opt
		opt.FaultRate = rate
		rr := r.Derived(opt)

		row := []string{fmt.Sprintf("%.2f", rate)}
		degraded := 0
		var failedSwaps uint64
		for si, s := range schemes {
			factory := s.factory(rr)
			var scores []float64
			for i, p := range pairs {
				r.progress("resilience: rate=%.2f %s pair %d/%d", rate, s.name, i+1, len(pairs))
				res, err := rr.RunPair(i+80_000, p, factory)
				if err != nil {
					degraded++
					continue
				}
				scores = append(scores, geoIPCW(res))
				if s.name == "proposed" {
					failedSwaps += res.FailedSwaps
				}
			}
			if len(scores) == 0 {
				row = append(row, "lost")
				continue
			}
			mean := stats.Mean(scores)
			if rate == 0 {
				base[si] = mean
			}
			if base[si] > 0 {
				row = append(row, fmt.Sprintf("%.3f", mean/base[si]))
			} else {
				row = append(row, "-")
			}
		}
		row = append(row, fmt.Sprint(failedSwaps), fmt.Sprint(degraded))
		t.AddRow(row...)
	}
	return t.Fprint(w)
}
