package experiments

import (
	"fmt"
	"io"
	"runtime"
	"sync"
	"sync/atomic"

	"ampsched/internal/amp"
	"ampsched/internal/report"
	"ampsched/internal/workload"
)

// RunCharacterize is the appendix table behind Fig. 1: every one of
// the 37 workload models run solo on both cores, with IPC, watts,
// IPC/Watt and the resulting core preference. Runs execute on a
// worker pool (each solo run is independent).
func RunCharacterize(r *Runner, w io.Writer) error {
	pool := workload.All()
	limit := r.Opt.ProfileInstrLimit / 4
	if limit < 100_000 {
		limit = 100_000
	}

	type row struct {
		name            string
		flavor          string
		ipcInt, ipcFP   float64
		wInt, wFP       float64
		ipcwInt, ipcwFP float64
	}
	rows := make([]row, len(pool))

	workers := r.Opt.Parallelism
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(pool) {
		workers = len(pool)
	}
	ctx := r.baseCtx()
	var (
		wg   sync.WaitGroup
		next atomic.Int64
	)
	for wk := 0; wk < workers; wk++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				// Bail out before starting the next multi-hundred-
				// thousand-instruction solo run once the runner's
				// context is canceled; previously the pool ignored
				// cancellation and ran the full suite regardless.
				if ctx.Err() != nil {
					return
				}
				i := int(next.Add(1)) - 1
				if i >= len(pool) {
					return
				}
				b := pool[i]
				ri := amp.SoloRun(r.IntCfg, b, r.Opt.Seed, limit, 0)
				rf := amp.SoloRun(r.FPCfg, b, r.Opt.Seed, limit, 0)
				rows[i] = row{
					name: b.Name, flavor: b.Flavor(),
					ipcInt: ri.IPC, ipcFP: rf.IPC,
					wInt: ri.Watts, wFP: rf.Watts,
					ipcwInt: ri.IPCPerWatt, ipcwFP: rf.IPCPerWatt,
				}
				r.progress("characterize: %s done", b.Name)
			}
		}()
	}
	wg.Wait()
	if cerr := ctx.Err(); cerr != nil {
		return cerr
	}

	t := &report.Table{
		Title: fmt.Sprintf("full-suite characterization (%d instructions solo per core)", limit),
		Headers: []string{"benchmark", "flavor", "IPC(INT)", "IPC(FP)",
			"IPC/W(INT)", "IPC/W(FP)", "ratio INT/FP", "prefers"},
	}
	agree, total := 0, 0
	for _, rw := range rows {
		ratio := 0.0
		if rw.ipcwFP > 0 {
			ratio = rw.ipcwInt / rw.ipcwFP
		}
		prefers := "~either"
		if ratio > 1.05 {
			prefers = "INT"
		} else if ratio < 0.95 {
			prefers = "FP"
		}
		// Does the measured preference agree with the declared flavor?
		if rw.flavor == "INT" || rw.flavor == "FP" {
			total++
			if prefers == rw.flavor || prefers == "~either" {
				agree++
			}
		}
		t.AddRow(rw.name, rw.flavor,
			report.F3(rw.ipcInt), report.F3(rw.ipcFP),
			report.F4(rw.ipcwInt), report.F4(rw.ipcwFP),
			fmt.Sprintf("%.2f", ratio), prefers)
	}
	t.Note = fmt.Sprintf("measured preference consistent with declared flavor for %d/%d flavored benchmarks", agree, total)
	return t.Fprint(w)
}
