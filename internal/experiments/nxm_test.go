package experiments

import (
	"fmt"
	"strings"
	"testing"
)

// nxmTestOptions are sized so the whole nxm test file stays in
// seconds: a tiny profile pass and a 2-core, 8-thread machine.
func nxmTestOptions() Options {
	o := DefaultOptions()
	o.ProfileInstrLimit = 300_000
	o.NXMCores = []int{2}
	o.NXMThreadsPerCore = 4
	o.NXMCycles = 40_000
	o.NXMQuantum = 8_000
	return o
}

// TestNXMUnitDeterministic re-runs one rung from two independent
// Runners (separate profiling passes included) and demands a
// byte-identical result — the property the ampserve cache keys on.
func TestNXMUnitDeterministic(t *testing.T) {
	run := func() string {
		r, err := NewRunner(nxmTestOptions())
		if err != nil {
			t.Fatal(err)
		}
		u, err := RunNXMUnit(r, 2)
		if err != nil {
			t.Fatal(err)
		}
		return fmt.Sprintf("cores=%d threads=%d cycles=%d %.17g %.17g %.17g %.17g %.17g %.17g %v",
			u.Cores, u.Threads, u.Cycles,
			u.Weighted["static"], u.Weighted["rotate"], u.Weighted["rank"],
			u.Weighted["hpe"], u.Weighted["bigsmall"], u.Weighted["twophase"],
			u.Reassigns)
	}
	a, b := run(), run()
	if a != b {
		t.Fatalf("nxm unit not byte-identical across reruns:\n%s\nvs\n%s", a, b)
	}
}

func TestRunNXMRendersEveryRung(t *testing.T) {
	o := nxmTestOptions()
	o.NXMCores = []int{3, 2} // unsorted on purpose
	r, err := NewRunner(o)
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := RunNXM(r, &sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"nxm scaling", "rotate", "twophase", "\n2 ", "\n3 "} {
		if !strings.Contains(out, want) {
			t.Fatalf("nxm table missing %q:\n%s", want, out)
		}
	}
}

func TestNXMUnitRejectsBadCoreCount(t *testing.T) {
	r, err := NewRunner(nxmTestOptions())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := RunNXMUnit(r, 0); err == nil {
		t.Fatal("core count 0 accepted")
	}
}
