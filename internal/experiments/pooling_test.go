package experiments

import (
	"context"
	"testing"

	"ampsched/internal/interval"
)

// TestPooledRunMatchesFresh pins the pooling bit-identity contract:
// a run on a recycled system (threads reset in place, engines pooled
// via amp.System.Reset) is identical to the same run on a freshly
// constructed one. The pooled side deliberately runs a different
// scheduler first so the recycled engines carry a previous run's
// terminal state — the regression this guards against was exactly
// there (deferred generator advance flushed into a recycled thread,
// shifting class attribution by an instruction).
func TestPooledRunMatchesFresh(t *testing.T) {
	opt := tinyOptions()
	opt.Fidelity = interval.FidelityInterval
	pairs := RandomPairs(3, opt.Seed)
	for idx, p := range pairs {
		fr, err := NewRunner(opt)
		if err != nil {
			t.Fatal(err)
		}
		want, err := fr.RunPairContext(context.Background(), idx, p, fr.RRFactory(1))
		if err != nil {
			t.Fatal(err)
		}

		pr, err := NewRunner(opt)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := pr.RunPairContext(context.Background(), idx, p, pr.ProposedFactory()); err != nil {
			t.Fatal(err)
		}
		got, err := pr.RunPairContext(context.Background(), idx, p, pr.RRFactory(1))
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Errorf("pair %d (%s): pooled run diverges from fresh\n got %+v\nwant %+v",
				idx, p.Label(), got, want)
		}
	}
}
