package experiments

import (
	"bytes"
	"errors"
	"sort"
	"strings"
	"testing"

	"ampsched/internal/amp"
	"ampsched/internal/sched"
)

// panicSched blows up on its first decision, simulating a buggy
// scheduler plugin.
type panicSched struct{}

func (panicSched) Name() string               { return "panic" }
func (panicSched) Reset(v amp.View)           {}
func (panicSched) Tick(v amp.View) []amp.Move { panic("scheduler bug") }

func TestRunPairRecoversPanic(t *testing.T) {
	r, err := NewRunner(tinyOptions())
	if err != nil {
		t.Fatal(err)
	}
	p := RandomPairs(1, 3)[0]
	_, err = r.RunPair(0, p, func(...sched.Option) amp.MoveScheduler { return panicSched{} })
	if err == nil {
		t.Fatal("panicking scheduler did not surface as an error")
	}
	if !strings.Contains(err.Error(), "panicked") {
		t.Fatalf("unexpected error: %v", err)
	}
}

func TestRunPairCycleBudgetWedges(t *testing.T) {
	opt := tinyOptions()
	opt.CycleBudget = 10_000 // far below what 200k instructions need
	r, err := NewRunner(opt)
	if err != nil {
		t.Fatal(err)
	}
	p := RandomPairs(1, 3)[0]
	_, err = r.RunPair(0, p, r.RRFactory(1))
	if err == nil {
		t.Fatal("budget-starved run did not error")
	}
	var we *amp.WedgedError
	if !errors.As(err, &we) {
		t.Fatalf("error is not a WedgedError: %v", err)
	}
}

// TestSweepDegradedPairStillCompletes drives one pair of the sweep
// into the cycle-budget watchdog and checks the others still finish
// with the wedged pair flagged, not the whole sweep aborted.
func TestSweepDegradedPairStillCompletes(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	r1, err := NewRunner(tinyOptions())
	if err != nil {
		t.Fatal(err)
	}
	clean, err := r1.Sweep()
	if err != nil {
		t.Fatal(err)
	}
	// Per-pair worst-case cycle count over the three schemes.
	need := make([]uint64, len(clean.Outcomes))
	for i, o := range clean.Outcomes {
		for _, res := range []amp.Result{o.Proposed, o.HPE, o.RR} {
			if res.Cycles > need[i] {
				need[i] = res.Cycles
			}
		}
	}
	sorted := append([]uint64{}, need...)
	sort.Slice(sorted, func(a, b int) bool { return sorted[a] < sorted[b] })
	lo, hi := sorted[0], sorted[len(sorted)-1]
	if lo == hi {
		t.Skip("all pairs need identical cycle counts; cannot split with a budget")
	}
	opt := tinyOptions()
	opt.CycleBudget = (lo + hi) / 2

	r2, err := NewRunner(opt)
	if err != nil {
		t.Fatal(err)
	}
	sw, err := r2.Sweep()
	if err != nil {
		t.Fatalf("sweep aborted instead of degrading: %v", err)
	}
	failed := sw.Failed()
	if failed == 0 || failed == len(sw.Outcomes) {
		t.Fatalf("expected a partial failure, got %d/%d", failed, len(sw.Outcomes))
	}
	for _, o := range sw.Outcomes {
		if o.Failed && o.Err == "" {
			t.Fatal("degraded outcome missing its reason")
		}
	}
	if got := len(sw.Completed()); got != len(sw.Outcomes)-failed {
		t.Fatalf("Completed() = %d, want %d", got, len(sw.Outcomes)-failed)
	}
	// Aggregation helpers must exclude the degraded pairs.
	if len(sw.WeightedVsHPE()) != len(sw.Outcomes)-failed {
		t.Fatal("WeightedVsHPE includes degraded pairs")
	}
}

// TestResilienceDeterministic renders the resilience table twice and
// requires byte-identical output: the whole fault-injection stack is
// a pure function of (Seed, FaultSeed).
func TestResilienceDeterministic(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	opt := tinyOptions()
	opt.SensitivityPairs = 2
	opt.InstrLimit = 120_000
	opt.FaultSeed = 99
	r, err := NewRunner(opt)
	if err != nil {
		t.Fatal(err)
	}
	var b1, b2 bytes.Buffer
	if err := RunResilience(r, &b1); err != nil {
		t.Fatal(err)
	}
	if err := RunResilience(r, &b2); err != nil {
		t.Fatal(err)
	}
	if b1.Len() == 0 {
		t.Fatal("empty table")
	}
	if !bytes.Equal(b1.Bytes(), b2.Bytes()) {
		t.Fatalf("resilience table not deterministic:\n%s\nvs\n%s", b1.String(), b2.String())
	}
}
