package experiments

import (
	"fmt"
	"io"

	"ampsched/internal/amp"
	"ampsched/internal/metrics"
	"ampsched/internal/report"
	"ampsched/internal/sched"
	"ampsched/internal/stats"
)

// RunOracle compares the online schemes against a clairvoyant
// profile-driven scheduler (exhaustive per-window solo profiles, no
// knowledge of migration costs). Negative numbers mean the online
// scheme left headroom; positive numbers mean the clairvoyant's
// cost-blind swapping hurt it — evidence that fine-grained online
// monitoring plus hysteresis (the paper's design) is hard to beat
// even with perfect foresight of workload behavior.
func RunOracle(r *Runner, w io.Writer) error {
	matrix, err := r.Matrix()
	if err != nil {
		return err
	}
	pairs := RandomPairs(r.Opt.SensitivityPairs, r.Opt.Seed+5)
	t := &report.Table{
		Title:   "clairvoyant comparison: profile-driven best-mapping scheduler (cost-blind)",
		Headers: []string{"pair", "clairvoyant swaps", "proposed vs clairvoyant", "hpe vs clairvoyant"},
		Note:    "negative = headroom the online scheme left; positive = the clairvoyant's cost-blind swaps backfired",
	}
	var propGap, hpeGap []float64
	for i, p := range pairs {
		r.progress("oracle: pair %d/%d %s", i+1, len(pairs), p.Label())
		oracle, err := sched.OracleProfile(r.IntCfg, r.FPCfg, p.A, p.B,
			r.pairSeed(i+70_000, 0), r.pairSeed(i+70_000, 1),
			r.Opt.InstrLimit, r.Opt.RuleWindow*10)
		if err != nil {
			return err
		}
		resO, err := r.RunPair(i+70_000, p, func(...sched.Option) amp.MoveScheduler { return oracle })
		if err != nil {
			return err
		}
		resP, err := r.RunPair(i+70_000, p, r.ProposedFactory())
		if err != nil {
			return err
		}
		resH, err := r.RunPair(i+70_000, p, r.HPEFactory(matrix))
		if err != nil {
			return err
		}

		cmpP, err := metrics.Compare(resP, resO)
		if err != nil {
			return err
		}
		cmpH, err := metrics.Compare(resH, resO)
		if err != nil {
			return err
		}
		propGap = append(propGap, cmpP.WeightedPct)
		hpeGap = append(hpeGap, cmpH.WeightedPct)
		t.AddRow(p.Label(), fmt.Sprint(resO.Swaps),
			report.Pct(cmpP.WeightedPct), report.Pct(cmpH.WeightedPct))
	}
	t.Note += fmt.Sprintf("; mean: proposed %s, hpe %s vs clairvoyant",
		report.Pct(stats.Mean(propGap)), report.Pct(stats.Mean(hpeGap)))
	return t.Fprint(w)
}
