package experiments

import (
	"errors"
	"os"
	"strings"
	"sync"
	"testing"
	"time"

	"ampsched/internal/telemetry"
)

func TestCheckpointKeyStableAndOptionSensitive(t *testing.T) {
	a, b := tinyOptions(), tinyOptions()
	if CheckpointKey(a) != CheckpointKey(b) {
		t.Fatal("identical options hashed differently")
	}
	b.Seed++
	if CheckpointKey(a) == CheckpointKey(b) {
		t.Fatal("seed change did not change the checkpoint key")
	}
}

func TestDirCheckpointerRoundTrip(t *testing.T) {
	d := NewDirCheckpointer(t.TempDir())
	if snap, err := d.Load("absent"); err != nil || snap != nil {
		t.Fatalf("Load(absent) = %v, %v; want nil, nil", snap, err)
	}
	in := &SweepCheckpoint{
		Seed: 11, Pairs: 3, InstrLimit: 200_000, Fidelity: "interval",
		Outcomes: []CheckpointOutcome{{Index: 1, Label: "gcc|swim"}},
	}
	if err := d.Save("k1", in); err != nil {
		t.Fatal(err)
	}
	out, err := d.Load("k1")
	if err != nil {
		t.Fatal(err)
	}
	if out == nil || out.Seed != 11 || len(out.Outcomes) != 1 ||
		out.Outcomes[0].Label != "gcc|swim" {
		t.Fatalf("round trip mangled snapshot: %+v", out)
	}
	// Save replaces, not appends.
	in.Outcomes = nil
	if err := d.Save("k1", in); err != nil {
		t.Fatal(err)
	}
	if out, _ = d.Load("k1"); len(out.Outcomes) != 0 {
		t.Fatalf("second Save did not replace: %+v", out)
	}
}

func TestDirCheckpointerQuarantinesCorrupt(t *testing.T) {
	dir := t.TempDir()
	d := NewDirCheckpointer(dir)
	if err := d.Save("k", &SweepCheckpoint{Seed: 1, Pairs: 2}); err != nil {
		t.Fatal(err)
	}
	path := d.path("k")
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Flip a payload byte: the JSON stays parsable, the CRC does not match.
	corrupted := []byte(strings.Replace(string(data), `"seed":1`, `"seed":7`, 1))
	if string(corrupted) == string(data) {
		t.Fatal("corruption edit did not apply")
	}
	if err := os.WriteFile(path, corrupted, 0o644); err != nil {
		t.Fatal(err)
	}
	snap, err := d.Load("k")
	if err != nil || snap != nil {
		t.Fatalf("Load(corrupt) = %v, %v; want nil, nil", snap, err)
	}
	if _, err := os.Stat(path + ".corrupt"); err != nil {
		t.Error("corrupt checkpoint not quarantined")
	}
	if _, err := os.Stat(path); !os.IsNotExist(err) {
		t.Error("corrupt checkpoint still in place")
	}
	// Quarantine means absent: a fresh Save starts over cleanly.
	if err := d.Save("k", &SweepCheckpoint{Seed: 1, Pairs: 2}); err != nil {
		t.Fatal(err)
	}
	if snap, _ := d.Load("k"); snap == nil || snap.Seed != 1 {
		t.Fatalf("re-save after quarantine failed: %+v", snap)
	}
}

func TestCkptStateRestoreFilters(t *testing.T) {
	opt := tinyOptions()
	d := NewDirCheckpointer(t.TempDir())
	pairs := RandomPairs(opt.Pairs, opt.Seed)
	snap := &SweepCheckpoint{
		Seed: opt.Seed, Pairs: opt.Pairs,
		InstrLimit: opt.InstrLimit, Fidelity: opt.Fidelity,
		Outcomes: []CheckpointOutcome{
			{Index: 0, Label: pairs[0].Label()},                                     // restorable
			{Index: 1, Label: "bogus|pair"},                                         // label drift
			{Index: 2, Label: pairs[2].Label(), Outcome: PairOutcome{Failed: true}}, // degraded
			{Index: 99, Label: "out|of-range"},
		},
	}
	if err := d.Save(CheckpointKey(opt), snap); err != nil {
		t.Fatal(err)
	}
	r, err := NewRunner(opt)
	if err != nil {
		t.Fatal(err)
	}
	r.Checkpoint = d
	tel := telemetry.New()
	r.Telemetry = tel
	out := &SweepResult{Outcomes: make([]PairOutcome, len(pairs))}
	c := r.newCkptState(pairs, out)
	want := []bool{true, false, false}
	for i, w := range want {
		if c.restored(i) != w {
			t.Errorf("restored(%d) = %v, want %v", i, c.restored(i), w)
		}
	}
	if got := tel.Registry().Counter("experiments.checkpoint_resumes").Value(); got != 1 {
		t.Errorf("checkpoint_resumes = %d, want 1", got)
	}
	if out.Outcomes[0].Pair.A == nil {
		t.Error("restored outcome did not get its canonical Pair back")
	}

	// A snapshot whose identity fields disagree with the options is
	// ignored wholesale, even under the right key.
	snap.Seed = opt.Seed + 1
	if err := d.Save(CheckpointKey(opt), snap); err != nil {
		t.Fatal(err)
	}
	c2 := r.newCkptState(pairs, &SweepResult{Outcomes: make([]PairOutcome, len(pairs))})
	if c2.restored(0) {
		t.Error("mismatched snapshot was restored")
	}
}

// memCkpt is an in-memory Checkpointer that counts saves.
type memCkpt struct {
	mu    sync.Mutex
	saves int
	snaps map[string]*SweepCheckpoint
}

func (m *memCkpt) Save(key string, snap *SweepCheckpoint) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.snaps == nil {
		m.snaps = map[string]*SweepCheckpoint{}
	}
	cp := *snap
	cp.Outcomes = append([]CheckpointOutcome(nil), snap.Outcomes...)
	m.snaps[key] = &cp
	m.saves++
	return nil
}

func (m *memCkpt) Load(key string) (*SweepCheckpoint, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.snaps[key], nil
}

func TestSweepCheckpointsAndResumes(t *testing.T) {
	opt := tinyOptions()
	opt.Parallelism = 1

	run := func(ck Checkpointer) (*SweepResult, *telemetry.Telemetry) {
		t.Helper()
		r, err := NewRunner(opt)
		if err != nil {
			t.Fatal(err)
		}
		r.Checkpoint = ck
		r.CheckpointEvery = 2
		tel := telemetry.New()
		r.Telemetry = tel
		sw, err := r.Sweep()
		if err != nil {
			t.Fatal(err)
		}
		return sw, tel
	}

	ck := &memCkpt{}
	first, tel1 := run(ck)
	if n := tel1.Registry().Counter("experiments.checkpoint_resumes").Value(); n != 0 {
		t.Fatalf("fresh sweep resumed %d pairs", n)
	}
	// 3 pairs at cadence 2: one cadenced save plus the final flush.
	if ck.saves != 2 {
		t.Errorf("saves = %d, want 2", ck.saves)
	}
	snap := ck.snaps[CheckpointKey(opt)]
	if snap == nil || len(snap.Outcomes) != len(first.Outcomes) {
		t.Fatalf("final snapshot incomplete: %+v", snap)
	}

	// A second runner over the same options resumes every pair without
	// simulating anything.
	second, tel2 := run(ck)
	reg := tel2.Registry()
	if n := reg.Counter("experiments.checkpoint_resumes").Value(); int(n) != len(first.Outcomes) {
		t.Errorf("checkpoint_resumes = %d, want %d", n, len(first.Outcomes))
	}
	if n := reg.Counter("experiments.pairs_done").Value(); n != 0 {
		t.Errorf("resumed sweep recomputed %d pairs", n)
	}
	for i := range first.Outcomes {
		a, b := &first.Outcomes[i], &second.Outcomes[i]
		if a.Pair.Label() != b.Pair.Label() ||
			a.Proposed.Cycles != b.Proposed.Cycles ||
			a.VsHPE.WeightedPct != b.VsHPE.WeightedPct {
			t.Errorf("pair %d diverged after resume: %+v vs %+v", i, a, b)
		}
	}

	// A partial snapshot resumes what it has and computes the rest.
	partial := &memCkpt{}
	cut := *ck.snaps[CheckpointKey(opt)]
	cut.Outcomes = cut.Outcomes[:1]
	if err := partial.Save(CheckpointKey(opt), &cut); err != nil {
		t.Fatal(err)
	}
	third, tel3 := run(partial)
	reg = tel3.Registry()
	if n := reg.Counter("experiments.checkpoint_resumes").Value(); n != 1 {
		t.Errorf("partial resume restored %d pairs, want 1", n)
	}
	if n := reg.Counter("experiments.pairs_done").Value(); int(n) != len(first.Outcomes)-1 {
		t.Errorf("partial resume computed %d pairs, want %d", n, len(first.Outcomes)-1)
	}
	for i := range first.Outcomes {
		if first.Outcomes[i].Proposed.Cycles != third.Outcomes[i].Proposed.Cycles {
			t.Errorf("pair %d diverged after partial resume", i)
		}
	}
}

// blockingCkpt is a Checkpointer whose Save parks until released — the
// "slow disk" for the stall regression test below.
type blockingCkpt struct {
	entered chan struct{} // closed on first Save entry
	release chan struct{} // Save returns when this closes
	once    sync.Once
}

func (b *blockingCkpt) Save(string, *SweepCheckpoint) error {
	b.once.Do(func() { close(b.entered) })
	<-b.release
	return nil
}

func (b *blockingCkpt) Load(string) (*SweepCheckpoint, error) { return nil, nil }

// TestCompleteDoesNotStallBehindSlowSave pins the lockcheck-driven
// split of ckptState's bookkeeping mutex from its save mutex:
// checkpoint I/O happens outside c.mu, so workers recording other
// completions (and the restored() fast path) never queue behind a slow
// disk. Before the split, complete() held c.mu across
// Checkpointer.Save and everything below parked until the save
// returned.
func TestCompleteDoesNotStallBehindSlowSave(t *testing.T) {
	opt := tinyOptions()
	r, err := NewRunner(opt)
	if err != nil {
		t.Fatal(err)
	}
	ck := &blockingCkpt{entered: make(chan struct{}), release: make(chan struct{})}
	r.Checkpoint = ck
	pairs := RandomPairs(opt.Pairs, opt.Seed)
	out := &SweepResult{Outcomes: make([]PairOutcome, len(pairs))}
	c := r.newCkptState(pairs, out)
	c.every = 2

	c.complete(0) // below cadence: no save
	saveDone := make(chan struct{})
	go func() {
		c.complete(1) // cadence hit: parks inside Save
		close(saveDone)
	}()
	<-ck.entered

	// With the save still in flight, bookkeeping must proceed.
	ok := make(chan struct{})
	go func() {
		c.complete(2) // below cadence again after the reset
		if !c.restored(0) || !c.restored(2) {
			t.Error("completions lost while a save was in flight")
		}
		close(ok)
	}()
	select {
	case <-ok:
	case <-time.After(5 * time.Second):
		t.Fatal("complete()/restored() blocked behind checkpoint I/O")
	}
	close(ck.release)
	<-saveDone
}

// failingCkpt fails its first Save and counts attempts.
type failingCkpt struct {
	mu    sync.Mutex
	calls int
}

func (f *failingCkpt) Save(string, *SweepCheckpoint) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.calls++
	if f.calls == 1 {
		return errors.New("disk full")
	}
	return nil
}

func (f *failingCkpt) Load(string) (*SweepCheckpoint, error) { return nil, nil }

// TestSaveFailureRetriedByFlush pins the failure path of the same
// refactor: a failed save folds its cadence credit back into
// sinceSave, so the end-of-sweep flush retries it.
func TestSaveFailureRetriedByFlush(t *testing.T) {
	opt := tinyOptions()
	r, err := NewRunner(opt)
	if err != nil {
		t.Fatal(err)
	}
	ck := &failingCkpt{}
	r.Checkpoint = ck
	pairs := RandomPairs(opt.Pairs, opt.Seed)
	out := &SweepResult{Outcomes: make([]PairOutcome, len(pairs))}
	c := r.newCkptState(pairs, out)
	c.every = 1

	c.complete(0) // cadence hit: save fails, credit folded back
	c.flush()     // retries the lost snapshot
	if ck.calls != 2 {
		t.Fatalf("Save called %d times, want 2 (failure + flush retry)", ck.calls)
	}
}
