package experiments

import (
	"fmt"
	"io"
	"sort"

	"ampsched/internal/cpu"
	"ampsched/internal/phase"
	"ampsched/internal/report"
	"ampsched/internal/workload"
)

// sortedKeys returns m's keys in ascending order, for deterministic
// iteration (map range order is randomized and would leak into the
// reported phase mapping).
func sortedKeys[V any](m map[int]V) []int {
	keys := make([]int, 0, len(m))
	for k := range m { //ampvet:allow determinism keys are sorted before use
		keys = append(keys, k)
	}
	sort.Ints(keys)
	return keys
}

// RunPhases is an analysis experiment for the paper's foundational
// assumption (§I, [6]): programs move through detectable phases, some
// shorter than the 2 ms scheduling quantum. It runs benchmarks
// through a core with the online Sherwood-style classifier attached
// to the commit stage and scores the classification against the
// workload generator's ground-truth phase index.
func RunPhases(r *Runner, w io.Writer) error {
	names := []string{"mixstress", "apsi", "gcc", "ffti", "sha", "swim"}
	t := &report.Table{
		Title: "phase detection (Sherwood-style online classifier at commit)",
		Headers: []string{"workload", "true phases", "detected", "transitions",
			"intervals", "purity"},
		Note: "purity = fraction of intervals whose detected phase maps to the correct ground-truth phase",
	}

	limit := r.Opt.InstrLimit / 2
	if limit < 200_000 {
		limit = 200_000
	}
	cfg := phase.DefaultConfig()

	for _, name := range names {
		b, err := workload.ByName(name)
		if err != nil {
			return err
		}
		r.progress("phases: %s", name)
		det := phase.NewDetector(cfg)
		core := cpu.NewCore(cpu.IntCoreConfig())
		core.SetCommitHook(det.Hook())
		gen := workload.NewGenerator(b, r.Opt.Seed, 0)
		arch := &cpu.ThreadArch{CodeBase: 1 << 36, CodeSize: b.EffectiveCodeFootprint()}
		core.Bind(gen, arch)

		// Ground truth: the generator's phase index sampled when each
		// detector interval closes (the in-flight skew of ~ROB size is
		// negligible at 10k-instruction intervals).
		var truth []int
		seen := uint64(0)
		for cycle := uint64(0); arch.Committed < limit; cycle++ {
			core.Step(cycle)
			for seen < det.Intervals() {
				truth = append(truth, gen.PhaseIndex())
				seen++
			}
		}

		hist := det.History()
		n := len(hist)
		if len(truth) < n {
			n = len(truth)
		}
		// Majority-vote mapping detected-id -> true phase.
		counts := map[int]map[int]int{}
		for i := 0; i < n; i++ {
			m := counts[hist[i].Phase]
			if m == nil {
				m = map[int]int{}
				counts[hist[i].Phase] = m
			}
			m[truth[i]]++
		}
		// Resolve each detected id to the lowest-numbered true phase
		// among the ties, iterating in sorted order so the mapping —
		// and the purity column below — is identical across runs.
		mapping := map[int]int{}
		for _, id := range sortedKeys(counts) {
			best, bestN := -1, -1
			for _, tp := range sortedKeys(counts[id]) {
				if c := counts[id][tp]; c > bestN {
					best, bestN = tp, c
				}
			}
			mapping[id] = best
		}
		correct := 0
		for i := 0; i < n; i++ {
			if mapping[hist[i].Phase] == truth[i] {
				correct++
			}
		}
		purity := 0.0
		if n > 0 {
			purity = float64(correct) / float64(n)
		}

		t.AddRow(name, fmt.Sprint(len(b.Phases)), fmt.Sprint(det.Phases()),
			fmt.Sprint(det.Changes()), fmt.Sprint(det.Intervals()),
			fmt.Sprintf("%.2f", purity))
	}
	return t.Fprint(w)
}
