package experiments

import (
	"fmt"
	"io"
	"math"

	"ampsched/internal/amp"
	"ampsched/internal/cpu"
	"ampsched/internal/profilegen"
	"ampsched/internal/report"
	"ampsched/internal/workload"
)

// Experiment is one regenerable paper artifact.
type Experiment struct {
	Name string // paper reference: "fig1", "fig7", "tables", ...
	Desc string
	Run  func(r *Runner, w io.Writer) error
}

// All returns the experiments in paper order.
func All() []Experiment {
	return []Experiment{
		{"tables", "Tables I & II: core configurations", RunTables},
		{"fig1", "Fig. 1: performance/watt of representative workloads on each core", RunFig1},
		{"fig3", "Fig. 3: HPE IPC/Watt ratio matrix", RunFig3},
		{"fig4", "Fig. 4: regression surface for the performance/watt ratio", RunFig4},
		{"rules", "Fig. 5 / §VI-A: derived swapping-rule thresholds", RunRules},
		{"fig6", "Fig. 6: window-size / history-depth sensitivity", RunFig6},
		{"fig7", "Fig. 7: IPC/Watt improvement over HPE per workload pair", RunFig7},
		{"fig7full", "Fig. 7 at paper scale: 80 pairs x 500M instructions (use -fidelity sampled)", RunFig7Full},
		{"fig8", "Fig. 8: IPC/Watt improvement over Round Robin per workload pair", RunFig8},
		{"fig9", "Fig. 9: worst/average/best IPC/Watt improvements", RunFig9},
		{"overhead", "§VI-C: swap-overhead sensitivity", RunOverhead},
		{"decisions", "§VI-D: decision points vs actual swaps", RunDecisions},
		{"rrinterval", "§VII: Round Robin decision-interval ablation", RunRRInterval},
		{"extension", "§VII future work: IPC + LLC-miss-rate guard on the swapping rules", RunExtension},
		{"baselines", "all policies vs the best static assignment (incl. related-work sampling)", RunBaselines},
		{"power", "analysis: Wattch-style per-structure energy breakdown on both cores", RunPowerBreakdown},
		{"morph", "§III: swap-only (this paper) vs swap+morph ([5])", RunMorph},
		{"manycore", "§VIII: quad-core generalization (rank-and-place vs rotate vs static)", RunManycore},
		{"nxm", "scaling: weighted IPC/Watt vs core count (4/16/64/256) for all N×M policies", RunNXM},
		{"resilience", "robustness: IPC/Watt degradation vs injected fault rate (proposed/HPE/RR)", RunResilience},
		{"phases", "analysis: online phase classification ([6]) vs generator ground truth", RunPhases},
		{"oracle", "analysis: online schemes vs a clairvoyant (cost-blind) profile scheduler", RunOracle},
		{"characterize", "appendix: all 37 benchmarks solo on both cores", RunCharacterize},
	}
}

// ByName finds an experiment.
func ByName(name string) (Experiment, error) {
	for _, e := range All() {
		if e.Name == name {
			return e, nil
		}
	}
	return Experiment{}, fmt.Errorf("experiments: unknown experiment %q", name)
}

// RunTables prints the two core configurations (paper Tables I, II).
func RunTables(r *Runner, w io.Writer) error {
	t1 := &report.Table{
		Title:   "Table I: selected core configurations",
		Headers: []string{"Parameter", "FP core", "INT core"},
	}
	add := func(name string, f func(*cpu.Config) string) {
		t1.AddRow(name, f(r.FPCfg), f(r.IntCfg))
	}
	add("DL1", func(c *cpu.Config) string { return fmt.Sprintf("%dK", c.Caches.L1D.SizeBytes>>10) })
	add("IL1", func(c *cpu.Config) string { return fmt.Sprintf("%dK", c.Caches.L1I.SizeBytes>>10) })
	add("L2", func(c *cpu.Config) string { return fmt.Sprintf("%dK", c.Caches.L2.SizeBytes>>10) })
	add("LSQ (LD/SD)", func(c *cpu.Config) string { return fmt.Sprintf("%d/%d", c.LSQLoads, c.LSQStores) })
	add("ROB", func(c *cpu.Config) string { return fmt.Sprint(c.ROBSize) })
	add("INTREG", func(c *cpu.Config) string { return fmt.Sprint(c.IntRegs) })
	add("FPREG", func(c *cpu.Config) string { return fmt.Sprint(c.FPRegs) })
	add("INTISQ", func(c *cpu.Config) string { return fmt.Sprint(c.IntISQ) })
	add("FPISQ", func(c *cpu.Config) string { return fmt.Sprint(c.FPISQ) })
	add("Width (F/D/I/C)", func(c *cpu.Config) string {
		return fmt.Sprintf("%d/%d/%d/%d", c.FetchWidth, c.DispatchWidth, c.IssueWidth, c.CommitWidth)
	})
	add("Freq", func(c *cpu.Config) string { return fmt.Sprintf("%.0f GHz", c.FreqGHz) })
	if err := t1.Fprint(w); err != nil {
		return err
	}

	t2 := &report.Table{
		Title:   "Table II: execution unit specifications (cyc=latency, P/NP=pipelined)",
		Headers: []string{"Core", "Unit", "Count", "Latency", "Pipelined"},
	}
	for _, c := range []*cpu.Config{r.FPCfg, r.IntCfg} {
		for k := cpu.UnitKind(0); k < cpu.NumUnitKinds; k++ {
			u := c.Units[k]
			p := "NP"
			if u.Pipelined {
				p = "P"
			}
			t2.AddRow(c.Name, k.String(), fmt.Sprint(u.Count), fmt.Sprintf("%d cyc", u.Latency), p)
		}
	}
	return t2.Fprint(w)
}

// fig1Workloads are the six workloads of the motivating Fig. 1.
var fig1Workloads = []string{"equake", "fpstress", "gcc", "mcf", "CRC32", "intstress"}

// RunFig1 reproduces Fig. 1: IPC/Watt of each workload run solo on
// each core. Core A is the FP core and core B the INT core.
func RunFig1(r *Runner, w io.Writer) error {
	t := &report.Table{
		Title: "Fig. 1: performance-per-watt by core type",
		Headers: []string{"Workload", "IPC(FP)", "W(FP)", "IPC/W core A (FP)",
			"IPC(INT)", "W(INT)", "IPC/W core B (INT)", "better"},
		Note: "expected shape: equake/fpstress prefer core A, CRC32/intstress prefer core B, gcc/mcf near parity",
	}
	for _, name := range fig1Workloads {
		b, err := workload.ByName(name)
		if err != nil {
			return err
		}
		r.progress("fig1: %s", name)
		rf := amp.SoloRun(r.FPCfg, b, r.Opt.Seed, r.Opt.ProfileInstrLimit, 0)
		ri := amp.SoloRun(r.IntCfg, b, r.Opt.Seed, r.Opt.ProfileInstrLimit, 0)
		better := "A (FP)"
		if ri.IPCPerWatt > rf.IPCPerWatt {
			better = "B (INT)"
		}
		if ratio := ri.IPCPerWatt / rf.IPCPerWatt; ratio > 0.95 && ratio < 1.05 {
			better = "~equal"
		}
		t.AddRow(name,
			report.F3(rf.IPC), report.F3(rf.Watts), report.F4(rf.IPCPerWatt),
			report.F3(ri.IPC), report.F3(ri.Watts), report.F4(ri.IPCPerWatt),
			better)
	}
	return t.Fprint(w)
}

// RunFig3 reproduces the example ratio matrix of Fig. 3.
func RunFig3(r *Runner, w io.Writer) error {
	m, err := r.Matrix()
	if err != nil {
		return err
	}
	t := &report.Table{
		Title: "Fig. 3: IPC/Watt ratio matrix (INT core / FP core), rows=%INT bins, cols=%FP bins",
		Note:  "cells marked * are nearest-neighbor filled (no profile samples landed there)",
	}
	t.Headers = append(t.Headers, "INT\\FP")
	for f := 0; f < profilegen.Bins; f++ {
		t.Headers = append(t.Headers, profilegen.BinLabel(f))
	}
	for i := 0; i < profilegen.Bins; i++ {
		row := []string{profilegen.BinLabel(i)}
		for f := 0; f < profilegen.Bins; f++ {
			cell := fmt.Sprintf("%.2f", m.Ratio[i][f])
			if !m.Filled[i][f] {
				cell += "*"
			}
			row = append(row, cell)
		}
		t.AddRow(row...)
	}
	return t.Fprint(w)
}

// RunFig4 reproduces Fig. 4: the fitted regression surface evaluated
// on a grid, plus its fit quality against the populated matrix cells.
func RunFig4(r *Runner, w io.Writer) error {
	s, err := r.Surface()
	if err != nil {
		return err
	}
	m, err := r.Matrix()
	if err != nil {
		return err
	}
	t := &report.Table{
		Title: "Fig. 4: regression surface ratio(%INT, %FP) = IPC/Watt(INT)/IPC/Watt(FP)",
	}
	t.Headers = append(t.Headers, "%INT\\%FP")
	grid := []float64{0, 20, 40, 60, 80, 100}
	for _, f := range grid {
		t.Headers = append(t.Headers, fmt.Sprintf("%.0f", f))
	}
	for _, i := range grid {
		row := []string{fmt.Sprintf("%.0f", i)}
		for _, f := range grid {
			if i+f > 100 {
				row = append(row, "-")
				continue
			}
			row = append(row, fmt.Sprintf("%.2f", s.RatioIntOverFP(i, f)))
		}
		t.AddRow(row...)
	}
	// Fit quality on populated matrix cells.
	var sse, n float64
	for i := 0; i < profilegen.Bins; i++ {
		for f := 0; f < profilegen.Bins; f++ {
			if !m.Filled[i][f] {
				continue
			}
			ci, cf := float64(i)*20+10, float64(f)*20+10
			d := s.RatioIntOverFP(ci, cf) - m.Ratio[i][f]
			sse += d * d
			n++
		}
	}
	if n > 0 {
		t.Note = fmt.Sprintf("RMS error vs %0.f populated matrix cells: %.3f", n, rms(sse, n))
	}
	return t.Fprint(w)
}

func rms(sse, n float64) float64 {
	if n == 0 {
		return 0
	}
	return math.Sqrt(sse / n)
}
