package experiments

import (
	"context"
	"fmt"
	"io"
	"sort"

	"ampsched/internal/amp"
	"ampsched/internal/cpu"
	"ampsched/internal/interval"
	"ampsched/internal/manycore"
	"ampsched/internal/report"
	"ampsched/internal/workload"
)

// The nxm experiment is the ROADMAP's "weighted IPC/Watt vs. core
// count" scaling study: every manycore policy on machines of
// 4/16/64/256 cores (half INT pool 0, half FP pool 1), each
// oversubscribed with NXMThreadsPerCore threads per core, run to a
// fixed cycle horizon so the rungs are comparable. Scores are
// machine-weighted IPC/Watt (total IPC over total Watts) normalized
// to the static baseline of the same rung.

// NXMPolicyNames lists the compared policies in report order.
func NXMPolicyNames() []string {
	return []string{"static", "rotate", "rank", "hpe", "bigsmall", "twophase"}
}

// NXMUnit is one rung of the nxm sweep: one machine size, every
// policy. Weighted holds absolute machine-weighted IPC/Watt per
// policy (normalize to Weighted["static"] for the paper-style curve);
// Reassigns counts each policy's accepted thread relocations.
type NXMUnit struct {
	Cores     int                `json:"cores"`
	Threads   int                `json:"threads"`
	Cycles    uint64             `json:"cycles"`
	Weighted  map[string]float64 `json:"weighted_ipcw"`
	Reassigns map[string]uint64  `json:"reassigns"`
}

// NXMParams are the resolved NXM knobs: zero-valued options filled
// with the sweep defaults. The ampserve key derivation uses them so
// "default" and "explicitly default" jobs share cache entries.
type NXMParams struct {
	Cores          []int
	ThreadsPerCore int
	Cycles         uint64
	Quantum        uint64
	Fidelity       string
}

// ResolveNXM fills zero-valued NXM options with the defaults. The
// empty (or detailed) fidelity resolves to the interval engine: the
// nxm sweep wants a scaling curve, not cycle accuracy, and detailed
// simulation of a 256-core machine is prohibitively slow.
func ResolveNXM(o Options) NXMParams {
	p := NXMParams{
		Cores:          o.NXMCores,
		ThreadsPerCore: o.NXMThreadsPerCore,
		Cycles:         o.NXMCycles,
		Quantum:        o.NXMQuantum,
		Fidelity:       o.Fidelity,
	}
	if len(p.Cores) == 0 {
		p.Cores = []int{4, 16, 64, 256}
	}
	if p.ThreadsPerCore == 0 {
		p.ThreadsPerCore = 8
	}
	if p.Cycles == 0 {
		p.Cycles = 200_000
	}
	if p.Quantum == 0 {
		p.Quantum = 10_000
	}
	if p.Fidelity == "" || p.Fidelity == cpu.FidelityDetailed {
		p.Fidelity = interval.FidelityInterval
	}
	return p
}

// nxmBenchNames is the workload mix cycled across nxm threads: a
// deterministic spread of INT-heavy, FP-heavy, mixed and phased
// benchmarks so promotion, demotion and exchange all have work to do.
// FP-heavy names sit at even indices so the greedy initial placement
// (thread i on core i) puts them on INT cores and vice versa — the
// deliberately inverted start the dual-core experiments also use,
// which the dynamic policies are supposed to fix.
var nxmBenchNames = []string{
	"fpstress", "gcc", "equake", "mcf", "apsi", "intstress",
	"swim", "sha", "ammp", "CRC32", "fft", "bitcount",
	"mixstress", "blowfish",
}

// nxmSchedulers builds one fresh scheduler per policy, all on the same
// decision quantum. The HPE rank and two-phase policies consume the
// Runner's profiled ratio matrix — the same §V artifact the dual-core
// HPE scheduler uses.
func nxmSchedulers(r *Runner, quantum uint64) (map[string]func() (amp.MoveScheduler, error), error) {
	est, err := r.Matrix()
	if err != nil {
		return nil, fmt.Errorf("nxm: HPE estimator: %w", err)
	}
	rankCfg := manycore.DefaultRankConfig()
	rankCfg.Quantum = quantum
	bsCfg := manycore.DefaultBigSmallConfig()
	bsCfg.Quantum = quantum
	tpCfg := manycore.DefaultTwoPhaseConfig()
	tpCfg.Quantum = quantum
	tpCfg.Estimator = est
	return map[string]func() (amp.MoveScheduler, error){
		"static":   func() (amp.MoveScheduler, error) { return manycore.Static{}, nil },
		"rotate":   func() (amp.MoveScheduler, error) { return manycore.NewRotate(quantum), nil },
		"rank":     func() (amp.MoveScheduler, error) { return manycore.NewRank(rankCfg), nil },
		"hpe":      func() (amp.MoveScheduler, error) { return manycore.NewHPERank(est, rankCfg), nil },
		"bigsmall": func() (amp.MoveScheduler, error) { return manycore.NewBigSmall(bsCfg), nil },
		"twophase": func() (amp.MoveScheduler, error) { return manycore.NewTwoPhase(tpCfg), nil },
	}, nil
}

// RunNXMUnit runs every policy on one n-core machine and returns the
// rung. It is the unit the ampserve nxm jobs cache by (seed, topology,
// policy set): one core count, all policies, deterministic in the
// Runner's options.
func RunNXMUnit(r *Runner, n int) (NXMUnit, error) {
	return RunNXMUnitContext(r.baseCtx(), r, n)
}

// RunNXMUnitContext is RunNXMUnit bounded by ctx (job cancellation in
// the ampserve workers).
func RunNXMUnitContext(ctx context.Context, r *Runner, n int) (NXMUnit, error) {
	p := ResolveNXM(r.Opt)
	if n <= 0 {
		return NXMUnit{}, fmt.Errorf("nxm: core count %d must be positive", n)
	}
	engine, err := interval.FactoryFor(p.Fidelity)
	if err != nil {
		return NXMUnit{}, fmt.Errorf("nxm: %w", err)
	}
	factories, err := nxmSchedulers(r, p.Quantum)
	if err != nil {
		return NXMUnit{}, err
	}

	// Topology: even cores INT (pool 0, the "big"/INT flavor), odd
	// cores FP (pool 1). A 1-core machine is a single INT core.
	cores := make([]manycore.CoreSpec, n)
	for c := 0; c < n; c++ {
		if c%2 == 0 {
			cores[c] = manycore.CoreSpec{Config: cpu.IntCoreConfig(), Pool: 0}
		} else {
			cores[c] = manycore.CoreSpec{Config: cpu.FPCoreConfig(), Pool: 1}
		}
	}
	m := n * p.ThreadsPerCore
	threads := make([]manycore.ThreadSpec, m)
	for i := 0; i < m; i++ {
		b, err := workload.ByName(nxmBenchNames[i%len(nxmBenchNames)])
		if err != nil {
			return NXMUnit{}, err
		}
		threads[i] = manycore.ThreadSpec{
			Bench: b,
			Seed:  r.Opt.Seed*1_000_003 + uint64(n)*65_537 + uint64(i),
		}
	}

	unit := NXMUnit{
		Cores:     n,
		Threads:   m,
		Cycles:    p.Cycles,
		Weighted:  make(map[string]float64, len(factories)),
		Reassigns: make(map[string]uint64, len(factories)),
	}
	for _, name := range NXMPolicyNames() {
		r.progress("nxm: %d cores x %d threads: %s", n, m, name)
		s, err := factories[name]()
		if err != nil {
			return NXMUnit{}, err
		}
		sys, err := manycore.New(cores, threads, s, manycore.Config{
			ReassignOverheadCycles: r.Opt.SwapOverhead,
			CycleBudget:            r.Opt.CycleBudget,
		}, manycore.WithEngine(engine), manycore.WithTelemetry(r.Telemetry))
		if err != nil {
			return NXMUnit{}, fmt.Errorf("nxm %d cores %s: %w", n, name, err)
		}
		res, err := sys.RunCyclesContext(ctx, p.Cycles)
		if err != nil {
			return NXMUnit{}, fmt.Errorf("nxm %d cores %s: %w", n, name, err)
		}
		unit.Weighted[name] = res.WeightedIPCW()
		unit.Reassigns[name] = res.Reassigns
	}
	return unit, nil
}

// RunNXM renders the scaling table: weighted IPC/Watt vs. core count
// for every policy, normalized per rung to static.
func RunNXM(r *Runner, w io.Writer) error {
	p := ResolveNXM(r.Opt)
	sizes := append([]int(nil), p.Cores...)
	sort.Ints(sizes)

	t := &report.Table{
		Title: fmt.Sprintf("nxm scaling: machine-weighted IPC/Watt normalized to static (%d threads/core, %s fidelity)",
			p.ThreadsPerCore, p.Fidelity),
		Headers: append([]string{"cores", "threads"}, NXMPolicyNames()...),
		Note:    "static column shows the absolute baseline; every other cell is its rung's ratio to static",
	}
	for _, n := range sizes {
		unit, err := RunNXMUnit(r, n)
		if err != nil {
			return err
		}
		base := unit.Weighted["static"]
		row := []string{fmt.Sprint(unit.Cores), fmt.Sprint(unit.Threads)}
		for _, name := range NXMPolicyNames() {
			if name == "static" {
				row = append(row, fmt.Sprintf("%.4f abs", base))
				continue
			}
			if base <= 0 {
				row = append(row, "n/a")
				continue
			}
			row = append(row, fmt.Sprintf("%.3f", unit.Weighted[name]/base))
		}
		t.AddRow(row...)
	}
	return t.Fprint(w)
}
