package experiments

import (
	"context"
	"fmt"
	"time"

	"ampsched/internal/amp"
	"ampsched/internal/cpu"
	"ampsched/internal/interval"
	"ampsched/internal/metrics"
	"ampsched/internal/profilegen"
	"ampsched/internal/sched"
)

// Batched pair execution: the submission path that feeds
// interval.BatchRunner. Many pair runs — each an independent
// (threads, system, scheduler) triple — are advanced through one
// interleaved pass, so runs that share calibration and phase tables
// keep them cache-resident across the whole batch. The sweep feeds it
// chunks of pairs at the interval fidelity, and the server groups
// compatible queued jobs (same core digest and fidelity) into batches
// on the same entry point.
//
// Interleaving is invisible to results: runs share no mutable state,
// so a batched run is bit-identical to the same run driven alone
// (TestBatchedSweepMatchesPairAtATime pins this at every fidelity).

// PairRun names one scheduler run of one pair inside a batch.
type PairRun struct {
	// Index is the pair's sweep index; it seeds the workloads, so the
	// same (Index, Pair) always sees identical instruction streams.
	Index int
	Pair  Pair
	// Factory builds the run's scheduler (nil = static assignment).
	Factory SchedFactory
}

// sweepBatchPairs is the pair-chunk one sweep worker claims per turn
// when the batched path is on (3 runs per pair, so 24 interleaved
// systems per batch).
const sweepBatchPairs = 8

// Batchable reports whether runs should be claimed in pair chunks and
// fed through RunPairsBatch's interleaved pass — the sweep and the
// server's pair batcher both gate on it. Interval-fidelity runs are
// the ones that win from table sharing AND pool whole systems (zero
// construction per run); fault-injected sweeps always run
// pair-at-a-time (per-run plans, and the fault path's per-run
// wall-time histogram is load-bearing for its tests).
func (r *Runner) Batchable() bool {
	return !r.disableBatch && r.Opt.FaultRate == 0 && r.Opt.Fidelity == interval.FidelityInterval
}

// batchRun is one run's reusable state inside a worker's batch
// scratch. The stepper is a value so re-arming it per run allocates
// nothing.
type batchRun struct {
	threads [2]amp.Thread
	sys     *amp.System
	st      amp.Stepper
	active  bool
	// observed marks a run built with a per-run event observer
	// (Runner.RunObserver); its system is dropped after the batch
	// instead of re-entering the pool.
	observed bool
}

// batchScratch is one worker's reusable batched-run state, pooled on
// Runner.batchPool.
type batchScratch struct {
	runs []*batchRun
	br   interval.BatchRunner
}

// grow makes sure the scratch holds at least n runs.
func (sc *batchScratch) grow(n int) {
	for len(sc.runs) < n {
		sc.runs = append(sc.runs, &batchRun{})
	}
}

// RunPairsBatch executes the given pair runs in one interleaved pass
// and returns their results aligned by position (results[i] and
// errs[i] belong to runs[i]). Each run fails independently: a wedged
// or canceled run reports its error without disturbing the others,
// and a panicking scheduler degrades the whole call to the
// pair-at-a-time path, whose per-run recovery isolates the failure.
// Fault-injected runs (Options.FaultRate > 0) carry per-run plans and
// always take the pair-at-a-time path.
func (r *Runner) RunPairsBatch(ctx context.Context, runs []PairRun) ([]amp.Result, []error) {
	results := make([]amp.Result, len(runs))
	errs := make([]error, len(runs))
	if len(runs) == 0 {
		return results, errs
	}
	_, schedOpts, ampOpts, oerr := r.runOpts()
	if oerr == nil && r.Opt.FaultRate == 0 && r.tryRunBatch(ctx, runs, results, errs, schedOpts, ampOpts) {
		return results, errs
	}
	for i, pr := range runs {
		results[i], errs[i] = r.runPair(ctx, pr.Index, pr.Pair, pr.Factory, r.Opt.SwapOverhead)
	}
	return results, errs
}

// tryRunBatch is the interleaved fast path of RunPairsBatch. It
// reports false if any run panicked, in which case the caller replays
// the batch pair-at-a-time; results/errs may be partially filled and
// are fully overwritten by the replay.
func (r *Runner) tryRunBatch(ctx context.Context, runs []PairRun, results []amp.Result, errs []error, schedOpts []sched.Option, ampOpts []amp.Option) (ok bool) {
	start := time.Now() //ampvet:allow determinism wall-time only feeds the pair-duration histogram, never results
	defer func() {
		if rec := recover(); rec != nil {
			ok = false
		}
	}()
	sc, _ := r.batchPool.Get().(*batchScratch)
	if sc == nil {
		sc = &batchScratch{}
	}
	sc.grow(len(runs))
	sc.br.Windows = r.batchWindows
	cfg := amp.Config{
		SwapOverheadCycles: r.Opt.SwapOverhead,
		CycleBudget:        r.Opt.CycleBudget,
	}
	for i, pr := range runs {
		b := sc.runs[i]
		b.active = false
		b.observed = false
		if b.sys != nil {
			// Flush the previous run's deferred engine state into the
			// old threads before recycling them (see System.Detach).
			b.sys.Detach()
		}
		b.threads[0].Reset(0, pr.Pair.A, r.pairSeed(pr.Index, 0), 0)
		b.threads[1].Reset(1, pr.Pair.B, r.pairSeed(pr.Index, 1), 1<<40)
		threads := [2]*amp.Thread{&b.threads[0], &b.threads[1]}
		var s amp.MoveScheduler
		if pr.Factory != nil {
			s = pr.Factory(schedOpts...)
		}
		runAmpOpts := ampOpts
		if r.RunObserver != nil {
			if o := r.RunObserver(pr.Index, pr.Pair); o != nil {
				runAmpOpts = append(append([]amp.Option{}, ampOpts...), amp.WithObserver(o))
				b.observed = true
			}
		}
		var err error
		if b.sys != nil && b.sys.Poolable() && !b.observed {
			err = b.sys.Reset(threads, s, cfg)
		} else {
			b.sys, err = amp.NewSystem([2]*cpu.Config{r.IntCfg, r.FPCfg}, threads, s, cfg, runAmpOpts...)
		}
		if err != nil {
			errs[i] = fmt.Errorf("experiments: pair %s: %w", pr.Pair.Label(), err)
			continue
		}
		b.st.Reset(b.sys, ctx, r.Opt.InstrLimit)
		b.active = true
		sc.br.Add(&b.st)
	}
	sc.br.Run()
	// Per-run wall time cannot be attributed inside an interleaved
	// pass; the histogram gets each run's share of the batch instead.
	share := time.Since(start) / time.Duration(len(runs)) //ampvet:allow determinism wall-time only feeds the pair-duration histogram, never results
	for i, pr := range runs {
		b := sc.runs[i]
		if !b.active {
			r.observeRun(pr.Pair, share, errs[i])
			continue
		}
		results[i], errs[i] = b.st.Result()
		if errs[i] != nil {
			errs[i] = fmt.Errorf("experiments: pair %s: %w", pr.Pair.Label(), errs[i])
		}
		r.observeRun(pr.Pair, share, errs[i])
		b.active = false
		if b.observed {
			b.sys = nil
			b.observed = false
		}
	}
	r.batchPool.Put(sc)
	return true
}

// runOutcomeBatch is runOutcome over a chunk of sweep pairs: all the
// chunk's runs (three schedulers per pair) advance through one
// interleaved pass, then each pair's comparisons are computed exactly
// as the pair-at-a-time path would.
func (r *Runner) runOutcomeBatch(ctx context.Context, idxs []int, pairs []Pair, matrix *profilegen.RatioMatrix, out []PairOutcome) {
	proposed, hpe, rr := r.ProposedFactory(), r.HPEFactory(matrix), r.RRFactory(1)
	runs := make([]PairRun, 0, 3*len(idxs))
	for _, i := range idxs {
		p := pairs[i]
		runs = append(runs,
			PairRun{Index: i, Pair: p, Factory: proposed},
			PairRun{Index: i, Pair: p, Factory: hpe},
			PairRun{Index: i, Pair: p, Factory: rr})
	}
	results, errs := r.RunPairsBatch(ctx, runs)
	for k, i := range idxs {
		po := PairOutcome{Pair: pairs[i]}
		fail := func(err error) {
			po.Failed = true
			po.Err = err.Error()
		}
		po.Proposed, po.HPE, po.RR = results[3*k], results[3*k+1], results[3*k+2]
		switch {
		case errs[3*k] != nil:
			fail(errs[3*k])
		case errs[3*k+1] != nil:
			fail(errs[3*k+1])
		case errs[3*k+2] != nil:
			fail(errs[3*k+2])
		default:
			var err error
			if po.VsHPE, err = metrics.Compare(po.Proposed, po.HPE); err != nil {
				fail(err)
			} else if po.VsRR, err = metrics.Compare(po.Proposed, po.RR); err != nil {
				fail(err)
			}
		}
		out[i] = po
	}
}
