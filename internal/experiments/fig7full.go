package experiments

import (
	"fmt"
	"io"

	"ampsched/internal/amp"
	"ampsched/internal/cpu"
	"ampsched/internal/report"
	"ampsched/internal/stats"
)

// RunFig7Full is the Fig. 7 comparison at the paper's actual scale: 80
// random pairs, 500M committed instructions per run, 4M-cycle (2 ms)
// context-switch interval. At detailed fidelity this is hours of CPU
// time; the interval and sampled engines bring it down to minutes,
// which is what they exist for. Profiling and the ratio matrix are
// shared with the scaled runner — the estimators the schedulers use
// do not change with run length.
func RunFig7Full(r *Runner, w io.Writer) error {
	opt := r.Opt
	opt.Pairs = 80
	opt.InstrLimit = 500_000_000
	opt.ContextSwitch = amp.ContextSwitchCycles
	if opt.Fidelity == "" || opt.Fidelity == cpu.FidelityDetailed {
		fmt.Fprintln(w, "note: fig7full at detailed fidelity simulates 8e10 instructions"+
			" (hours); pass -fidelity sampled or -fidelity interval for minutes")
	}

	// Derived runner so the full-scale sweep does not evict the scaled
	// sweep other experiments share; the profiling pass (always
	// detailed, always at the scaled sample interval) is reused.
	full := r.Derived(opt)
	full.Checkpoint = nil
	full.CheckpointEvery = 0
	s, err := full.Sweep()
	if err != nil {
		return err
	}
	if err := writePairTable(w,
		"Fig. 7 (paper scale): IPC/Watt improvement over the HPE scheme", s, false); err != nil {
		return err
	}

	vsHPE := s.WeightedVsHPE()
	vsRR := s.WeightedVsRR()
	degraded := 0
	for _, v := range vsHPE {
		if v < 0 {
			degraded++
		}
	}
	t := &report.Table{
		Title:   "fig7full summary (Fig. 9 shape at paper scale)",
		Headers: []string{"case", "vs HPE (weighted)", "vs Round Robin (weighted)"},
		Note: fmt.Sprintf("fidelity=%s; paper shape: proposed > HPE > RR on average, "+
			"<10%% of pairs degraded vs HPE (here: %d/%d)",
			fidelityLabel(opt.Fidelity), degraded, len(vsHPE)),
	}
	t.AddRow("5 worst cases", report.Pct(stats.Mean(stats.BottomK(vsHPE, 5))),
		report.Pct(stats.Mean(stats.BottomK(vsRR, 5))))
	t.AddRow(fmt.Sprintf("average of all %d", len(vsHPE)),
		report.Pct(stats.Mean(vsHPE)), report.Pct(stats.Mean(vsRR)))
	t.AddRow("5 best cases", report.Pct(stats.Mean(stats.TopK(vsHPE, 5))),
		report.Pct(stats.Mean(stats.TopK(vsRR, 5))))
	return t.Fprint(w)
}

// fidelityLabel normalizes the empty default for display.
func fidelityLabel(f string) string {
	if f == "" {
		return cpu.FidelityDetailed
	}
	return f
}
