// Package workload synthesizes the dynamic instruction streams the
// simulator executes.
//
// The paper runs 37 benchmarks (SPEC CPU2000, MiBench, MediaBench and
// synthetic stress kernels) on the SESC simulator. Those binaries,
// inputs and the simulator are not available here, so this package
// provides the closest synthetic equivalent: each benchmark is modeled
// as a deterministic phase machine. A phase fixes the statistical
// properties the schedulers and the pipeline model can observe —
// instruction-class mix, instruction-level parallelism (dependency
// distance distribution), branch predictability, working-set size and
// spatial locality. Phase changes reproduce the time-varying behaviour
// (§I, [6]) that motivates fine-grained scheduling: several benchmarks
// deliberately change flavor on a scale shorter than the 2 ms
// context-switch interval used by the HPE and Round Robin schemes.
//
// Generation is fully deterministic given a seed, so whole experiments
// are reproducible.
package workload

import (
	"fmt"

	"ampsched/internal/isa"
	"ampsched/internal/rng"
)

// Phase describes one statistically-stationary region of a benchmark.
type Phase struct {
	// Name labels the phase in reports ("loop1", "fpkernel", ...).
	Name string

	// Mix is the instruction-class distribution sampled per
	// instruction. It must sum to 1 (Benchmark.Validate checks).
	Mix isa.Mix

	// Length is the number of dynamic instructions in the phase
	// before the benchmark advances to the next phase.
	Length uint64

	// MeanDepDist is the mean of the geometric distribution from
	// which producer distances are drawn. Small values (2-4) mean
	// serial, dependence-bound code; large values (12+) mean high
	// ILP.
	MeanDepDist float64

	// BranchPredictability in [0.5, 1.0] is the asymptotic accuracy
	// a correlating predictor can reach on this phase's branches.
	BranchPredictability float64

	// WorkingSet is the size in bytes of the phase's data footprint.
	// Footprints larger than a cache level produce misses at that
	// level.
	WorkingSet uint64

	// SeqFrac in [0, 1] is the fraction of memory accesses that walk
	// the working set sequentially (with Stride); the remainder are
	// uniform random within the working set.
	SeqFrac float64

	// Stride is the byte step of sequential accesses (0 defaults
	// to 8).
	Stride uint64
}

// Benchmark is a named sequence of phases. When the last phase ends
// the generator wraps to the first (programs in the paper run until an
// instruction budget is reached, not until natural termination).
type Benchmark struct {
	Name   string
	Suite  string // "SPEC", "MiBench", "MediaBench", "Synthetic"
	Phases []Phase

	// CodeFootprint is the static code size in bytes, used to drive
	// the instruction-cache model (taken branches jump within it).
	// Zero defaults to 2 KB — a small kernel resident in the 4 KB IL1.
	CodeFootprint uint64

	// Notes documents the provenance of the model: what the real
	// program does and which of its documented properties shaped the
	// phases above.
	Notes string
}

// DefaultCodeFootprint is used when a benchmark does not specify one.
const DefaultCodeFootprint = 2 << 10

// EffectiveCodeFootprint returns the code footprint with the default
// applied.
func (b *Benchmark) EffectiveCodeFootprint() uint64 {
	if b.CodeFootprint == 0 {
		return DefaultCodeFootprint
	}
	return b.CodeFootprint
}

// Validate reports the first structural problem with the benchmark
// definition, or nil.
func (b *Benchmark) Validate() error {
	if b.Name == "" {
		return fmt.Errorf("workload: benchmark with empty name")
	}
	if len(b.Phases) == 0 {
		return fmt.Errorf("workload: %s has no phases", b.Name)
	}
	for i := range b.Phases {
		p := &b.Phases[i]
		if err := p.Mix.Validate(); err != nil {
			return fmt.Errorf("workload: %s phase %d (%s): %w", b.Name, i, p.Name, err)
		}
		if p.Length == 0 {
			return fmt.Errorf("workload: %s phase %d (%s): zero length", b.Name, i, p.Name)
		}
		if p.BranchPredictability < 0.5 || p.BranchPredictability > 1.0 {
			return fmt.Errorf("workload: %s phase %d (%s): predictability %g outside [0.5,1]",
				b.Name, i, p.Name, p.BranchPredictability)
		}
		if p.WorkingSet == 0 {
			return fmt.Errorf("workload: %s phase %d (%s): zero working set", b.Name, i, p.Name)
		}
		if p.SeqFrac < 0 || p.SeqFrac > 1 {
			return fmt.Errorf("workload: %s phase %d (%s): SeqFrac %g outside [0,1]",
				b.Name, i, p.Name, p.SeqFrac)
		}
		if p.MeanDepDist < 1 {
			return fmt.Errorf("workload: %s phase %d (%s): MeanDepDist %g < 1",
				b.Name, i, p.Name, p.MeanDepDist)
		}
	}
	return nil
}

// TotalPhaseLength returns the number of instructions in one pass over
// all phases.
func (b *Benchmark) TotalPhaseLength() uint64 {
	var n uint64
	for i := range b.Phases {
		n += b.Phases[i].Length
	}
	return n
}

// AverageMix returns the phase-length-weighted average instruction
// mix of the benchmark.
func (b *Benchmark) AverageMix() isa.Mix {
	var m isa.Mix
	total := float64(b.TotalPhaseLength())
	if total == 0 {
		return m
	}
	for i := range b.Phases {
		w := float64(b.Phases[i].Length) / total
		for c := range m {
			m[c] += w * b.Phases[i].Mix[c]
		}
	}
	return m
}

// Flavor classifies the benchmark by its average mix the way the paper
// groups workloads: "INT" (INT-intensive), "FP" (FP-intensive) or
// "MIX".
func (b *Benchmark) Flavor() string {
	m := b.AverageMix()
	intF, fpF := m.IntFrac(), m.FPFrac()
	switch {
	case fpF >= 0.15 && intF >= 0.25:
		return "MIX"
	case fpF >= 0.15:
		return "FP"
	default:
		return "INT"
	}
}

// branchSites is the number of distinct synthetic branch PCs per
// phase. Enough for a gshare predictor to exercise aliasing without
// making warmup dominate short runs.
const branchSites = 64

// Generator streams the dynamic instructions of one benchmark.
// It is not safe for concurrent use; each simulated thread owns one.
type Generator struct {
	bench *Benchmark
	rand  *rng.Source

	// addrBase offsets all data addresses so that two threads never
	// alias in a cache by accident.
	addrBase uint64

	phaseIdx  int
	remaining uint64
	cum       [isa.NumClasses]float64
	seqPtr    uint64
	stride    uint64
	wsMask    uint64 // working set rounded up to power of two minus 1
	ws        uint64
	siteBias  [branchSites]float64
	branchPCs [branchSites]uint64

	emitted uint64
}

// NewGenerator returns a generator for bench with its own random
// stream derived from seed. addrBase should differ between the two
// simulated threads (e.g. 0 and 1<<40).
func NewGenerator(bench *Benchmark, seed uint64, addrBase uint64) *Generator {
	g := &Generator{}
	g.Reset(bench, seed, addrBase)
	return g
}

// Reset re-initializes the generator in place to the exact state
// NewGenerator(bench, seed, addrBase) produces, reusing the random
// source. The pooled pair sweep relies on a reset generator being
// bit-identical to a fresh one.
func (g *Generator) Reset(bench *Benchmark, seed uint64, addrBase uint64) {
	if err := bench.Validate(); err != nil {
		panic(err)
	}
	r := g.rand
	if r == nil {
		r = rng.New(seed)
	} else {
		r.Seed(seed)
	}
	*g = Generator{
		bench:    bench,
		rand:     r,
		addrBase: addrBase,
		phaseIdx: -1,
	}
	g.nextPhase()
}

// Benchmark returns the benchmark this generator streams.
func (g *Generator) Benchmark() *Benchmark { return g.bench }

// Emitted returns the number of instructions generated so far.
func (g *Generator) Emitted() uint64 { return g.emitted }

// PhaseIndex returns the index of the phase currently being emitted.
func (g *Generator) PhaseIndex() int { return g.phaseIdx }

// PhasePos returns the phase the NEXT instruction belongs to and how
// many instructions remain in it (including that one). It normalizes
// the lazy phase advance Next performs, so callers that plan whole
// phases at a time (the interval engine) see a non-zero remainder.
func (g *Generator) PhasePos() (phase int, remaining uint64) {
	if g.remaining == 0 {
		g.nextPhase()
	}
	return g.phaseIdx, g.remaining
}

// Skip advances the generator by n instructions without synthesizing
// them, walking phase boundaries exactly as n calls to Next would.
// nextPhase draws nothing from the random stream, so skipping is O(
// phases crossed); the per-instruction random draws are simply never
// made. Runs that mix Skip and Next are still fully deterministic in
// (seed, call sequence), which is the contract the interval engine
// needs — it is NOT the same stream a pure-Next run would see.
func (g *Generator) Skip(n uint64) {
	for n > 0 {
		if g.remaining == 0 {
			g.nextPhase()
		}
		step := g.remaining
		if step > n {
			step = n
		}
		g.remaining -= step
		g.emitted += step
		n -= step
	}
}

func (g *Generator) nextPhase() {
	g.phaseIdx++
	if g.phaseIdx >= len(g.bench.Phases) {
		g.phaseIdx = 0
	}
	p := &g.bench.Phases[g.phaseIdx]
	g.remaining = p.Length

	// Cumulative distribution for class sampling.
	var c float64
	for i := 0; i < int(isa.NumClasses); i++ {
		c += p.Mix[i]
		g.cum[i] = c
	}
	g.cum[isa.NumClasses-1] = 1.0 // absorb rounding

	g.stride = p.Stride
	if g.stride == 0 {
		g.stride = 8
	}
	// Round the working set up to a power of two for cheap masking.
	g.ws = p.WorkingSet
	sz := uint64(64)
	for sz < g.ws {
		sz <<= 1
	}
	g.wsMask = sz - 1
	g.seqPtr = 0

	// Per-site branch bias: each site is strongly biased toward one
	// direction with probability equal to the phase's predictability,
	// so a learned predictor converges to that accuracy.
	pr := p.BranchPredictability
	for i := range g.siteBias {
		if i%2 == 0 {
			g.siteBias[i] = pr
		} else {
			g.siteBias[i] = 1 - pr
		}
		// Synthetic branch PCs: spread across the phase's "code".
		g.branchPCs[i] = (uint64(g.phaseIdx)<<20 | uint64(i)<<4) + 0x400000
	}
}

func (g *Generator) sampleClass() isa.Class {
	u := g.rand.Float64()
	for i := 0; i < int(isa.NumClasses); i++ {
		if u < g.cum[i] {
			return isa.Class(i)
		}
	}
	return isa.Branch
}

// Next fills in with the next dynamic instruction.
func (g *Generator) Next(in *isa.Instruction) {
	if g.remaining == 0 {
		g.nextPhase()
	}
	p := &g.bench.Phases[g.phaseIdx]
	in.Reset()
	in.Class = g.sampleClass()

	// Dependences: two producers with geometric distances. A distance
	// of 0 (no dependence) happens for a fraction of operands to model
	// immediates and loop-invariant values.
	if g.rand.Bool(0.9) {
		in.Dep1 = int32(g.rand.Geometric(p.MeanDepDist))
	}
	if g.rand.Bool(0.5) {
		in.Dep2 = int32(g.rand.Geometric(p.MeanDepDist * 2))
	}

	switch {
	case in.Class.IsMem():
		var off uint64
		if g.rand.Bool(p.SeqFrac) {
			g.seqPtr = (g.seqPtr + g.stride) & g.wsMask
			for g.seqPtr >= g.ws { // stay within the true working set
				g.seqPtr = 0
			}
			off = g.seqPtr
		} else {
			off = g.rand.Uint64n(g.ws) &^ 7 // 8-byte aligned random
		}
		in.Addr = g.addrBase + off
	case in.Class == isa.Branch:
		site := g.rand.Intn(branchSites)
		in.Addr = g.branchPCs[site]
		in.Taken = g.rand.Bool(g.siteBias[site])
	}

	g.remaining--
	g.emitted++
}
