package workload

import (
	"testing"

	"ampsched/internal/isa"
)

// TestNonPowerOfTwoWorkingSet verifies addresses stay inside a working
// set that is not a power of two (the generator masks to the next
// power of two and then clamps).
func TestNonPowerOfTwoWorkingSet(t *testing.T) {
	b := &Benchmark{
		Name:  "odd-ws",
		Suite: "Synthetic",
		Phases: []Phase{{
			Name: "p", Mix: mix(20, 0, 0, 0, 0, 0, 50, 20, 10),
			Length: 10_000, MeanDepDist: 3, BranchPredictability: 0.9,
			WorkingSet: 96 << 10, // 96 KB: not a power of two
			SeqFrac:    0.5,
		}},
	}
	if err := b.Validate(); err != nil {
		t.Fatal(err)
	}
	g := NewGenerator(b, 1, 0)
	var in isa.Instruction
	for i := 0; i < 50_000; i++ {
		g.Next(&in)
		if in.Class.IsMem() && in.Addr >= 96<<10 {
			t.Fatalf("address %#x outside 96K working set", in.Addr)
		}
	}
}

// TestStrideOverride verifies a custom stride drives the sequential
// pointer.
func TestStrideOverride(t *testing.T) {
	b := &Benchmark{
		Name:  "strided",
		Suite: "Synthetic",
		Phases: []Phase{{
			Name: "p", Mix: mix(0, 0, 0, 0, 0, 0, 100, 0, 0),
			Length: 1000, MeanDepDist: 1, BranchPredictability: 0.9,
			WorkingSet: 1 << 16, SeqFrac: 1.0, Stride: 64,
		}},
	}
	g := NewGenerator(b, 2, 0)
	var in isa.Instruction
	var prev uint64
	sawStride := 0
	for i := 0; i < 200; i++ {
		g.Next(&in)
		if i > 0 && in.Addr == prev+64 {
			sawStride++
		}
		prev = in.Addr
	}
	if sawStride < 150 {
		t.Fatalf("only %d/199 accesses advanced by the 64-byte stride", sawStride)
	}
}

// TestTinyWorkingSetWraps ensures the sequential pointer wraps inside
// very small working sets without escaping.
func TestTinyWorkingSetWraps(t *testing.T) {
	b := &Benchmark{
		Name:  "tiny-ws",
		Suite: "Synthetic",
		Phases: []Phase{{
			Name: "p", Mix: mix(0, 0, 0, 0, 0, 0, 100, 0, 0),
			Length: 1000, MeanDepDist: 1, BranchPredictability: 0.9,
			WorkingSet: 100, SeqFrac: 1.0, Stride: 16,
		}},
	}
	g := NewGenerator(b, 3, 0)
	var in isa.Instruction
	for i := 0; i < 5_000; i++ {
		g.Next(&in)
		if in.Addr >= 100 {
			t.Fatalf("address %d escaped the 100-byte working set", in.Addr)
		}
	}
}

// TestBranchPCStableWithinPhase confirms branch sites repeat (so real
// predictors can learn them) and change across phases.
func TestBranchPCStableWithinPhase(t *testing.T) {
	b := MustByName("mixstress")
	g := NewGenerator(b, 4, 0)
	var in isa.Instruction
	phase0Sites := map[uint64]bool{}
	for g.PhaseIndex() == 0 {
		g.Next(&in)
		if in.Class == isa.Branch {
			phase0Sites[in.Addr] = true
		}
	}
	if len(phase0Sites) == 0 || len(phase0Sites) > branchSites {
		t.Fatalf("phase 0 used %d branch sites, want 1..%d", len(phase0Sites), branchSites)
	}
	phase1New := 0
	for g.PhaseIndex() == 1 {
		g.Next(&in)
		if in.Class == isa.Branch && !phase0Sites[in.Addr] {
			phase1New++
		}
	}
	if phase1New == 0 {
		t.Fatal("phase 1 reused all of phase 0's branch sites; phases should have distinct code")
	}
}
