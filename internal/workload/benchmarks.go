package workload

import (
	"fmt"
	"sort"

	"ampsched/internal/isa"
)

// mix builds a normalized instruction mix from per-class weights in
// the order IntALU, IntMul, IntDiv, FPALU, FPMul, FPDiv, Load, Store,
// Branch.
func mix(ia, im, id, fa, fm, fd, ld, st, br float64) isa.Mix {
	m := isa.Mix{ia, im, id, fa, fm, fd, ld, st, br}
	m.Normalize()
	return m
}

// Working-set size shorthand. DL1 is 4 KB and L2 is 128 KB, so:
// wsTiny fits DL1, wsSmall mostly fits DL1, wsMed fits L2, wsLarge and
// wsHuge spill past L2 into memory.
const (
	wsTiny  = 2 << 10
	wsSmall = 8 << 10
	wsMed   = 96 << 10
	wsLarge = 512 << 10
	wsHuge  = 4 << 20
)

// suite is the 37-benchmark pool of §IV: 15 SPEC-like, 14 MiBench-like,
// 1 MediaBench-like and 7 synthetic kernels. Each named model follows
// the documented character of the original program (INT vs FP
// intensity, memory-boundedness, branchiness, phase behaviour); see
// DESIGN.md §2 for why this substitution preserves the scheduling
// behaviour under study.
var suite = []*Benchmark{
	// ------------------------------------------------- SPEC-like (15)
	{
		Name: "gcc", CodeFootprint: 48 << 10, Suite: "SPEC",
		Notes: "GNU C compiler (SPEC 176.gcc): pointer-rich integer code, large static code footprint, branchy front end; phases follow parse -> RTL optimization -> register allocation, with working sets growing past the L2 in the RTL pass.",
		Phases: []Phase{
			{Name: "parse", Mix: mix(38, 2, 0.5, 0, 0, 0, 22, 12, 25.5), Length: 150_000,
				MeanDepDist: 4, BranchPredictability: 0.88, WorkingSet: wsMed, SeqFrac: 0.35},
			{Name: "rtl", Mix: mix(42, 3, 0.5, 0, 0, 0, 20, 12, 22.5), Length: 125_000,
				MeanDepDist: 5, BranchPredictability: 0.90, WorkingSet: wsLarge, SeqFrac: 0.30},
			{Name: "regalloc", Mix: mix(40, 2, 0, 0, 0, 0, 24, 14, 20), Length: 100_000,
				MeanDepDist: 4, BranchPredictability: 0.86, WorkingSet: wsMed, SeqFrac: 0.25},
		},
	},
	{
		Name: "mcf", Suite: "SPEC",
		Notes: "SPEC 181.mcf network-simplex solver: the canonical memory-bound integer code — pointer chasing over multi-megabyte arc arrays, minimal ILP, near-random access; neither core flavor helps it much (Fig. 1).",
		Phases: []Phase{
			{Name: "simplex", Mix: mix(30, 1, 0.5, 0, 0, 0, 34, 10, 24.5), Length: 225_000,
				MeanDepDist: 3, BranchPredictability: 0.90, WorkingSet: wsHuge, SeqFrac: 0.05},
			{Name: "refresh", Mix: mix(28, 1, 0, 0, 0, 0, 38, 12, 21), Length: 150_000,
				MeanDepDist: 3, BranchPredictability: 0.88, WorkingSet: wsHuge, SeqFrac: 0.10},
		},
	},
	{
		Name: "equake", Suite: "SPEC",
		Notes: "SPEC 183.equake seismic wave simulation: sparse matrix-vector FP kernels with moderate ILP; modeled FP-dominant with enough datapath pressure to expose the FP core's pipelined units.",
		Phases: []Phase{
			{Name: "smvp", Mix: mix(8, 1, 0, 28, 25, 1, 22, 9, 6), Length: 200_000,
				MeanDepDist: 11, BranchPredictability: 0.97, WorkingSet: wsSmall, SeqFrac: 0.75},
			{Name: "time_step", Mix: mix(10, 1, 0, 28, 22, 2, 22, 10, 6), Length: 125_000,
				MeanDepDist: 10, BranchPredictability: 0.96, WorkingSet: wsMed, SeqFrac: 0.80},
		},
	},
	{
		Name: "ammp", Suite: "SPEC",
		Notes: "SPEC 188.ammp molecular dynamics: FP force computation (mmfv) alternating with integer-ish neighbor-list rebuilds over a large footprint.",
		Phases: []Phase{
			{Name: "mmfv", Mix: mix(10, 1, 0, 28, 24, 3, 22, 7, 5), Length: 175_000,
				MeanDepDist: 9, BranchPredictability: 0.95, WorkingSet: wsMed, SeqFrac: 0.55},
			{Name: "neighbor", Mix: mix(22, 2, 0, 12, 8, 1, 30, 10, 15), Length: 75_000,
				MeanDepDist: 5, BranchPredictability: 0.92, WorkingSet: wsHuge, SeqFrac: 0.20},
		},
	},
	{
		// apsi alternates INT-ish setup with FP kernels on a scale
		// shorter than the 2 ms interval — a "reasonable mix" program
		// in the paper's taxonomy.
		Name: "apsi", Suite: "SPEC",
		Notes: "SPEC 301.apsi meteorology code: a classic phase program — integer setup, FFT-based FP solver and advection alternate on sub-quantum scales; one of the paper's 'reasonable mix' profiling nine.",
		Phases: []Phase{
			{Name: "setup", Mix: mix(38, 3, 1, 6, 4, 0, 22, 12, 14), Length: 87_500,
				MeanDepDist: 5, BranchPredictability: 0.92, WorkingSet: wsMed, SeqFrac: 0.50},
			{Name: "fft_z", Mix: mix(10, 1, 0, 24, 22, 2, 26, 9, 6), Length: 112_500,
				MeanDepDist: 9, BranchPredictability: 0.97, WorkingSet: wsMed, SeqFrac: 0.75},
			{Name: "advect", Mix: mix(16, 2, 0, 20, 16, 1, 26, 11, 8), Length: 87_500,
				MeanDepDist: 7, BranchPredictability: 0.95, WorkingSet: wsLarge, SeqFrac: 0.60},
		},
	},
	{
		Name: "swim", Suite: "SPEC",
		Notes: "SPEC 171.swim shallow-water stencils: long streaming FP loops, near-perfect branches, working set far beyond the L2 — bandwidth-shaped, so its core preference is muted.",
		Phases: []Phase{
			{Name: "calc1", Mix: mix(6, 1, 0, 26, 24, 1, 28, 10, 4), Length: 225_000,
				MeanDepDist: 12, BranchPredictability: 0.99, WorkingSet: wsHuge, SeqFrac: 0.90},
			{Name: "calc2", Mix: mix(6, 1, 0, 28, 22, 1, 28, 10, 4), Length: 225_000,
				MeanDepDist: 12, BranchPredictability: 0.99, WorkingSet: wsHuge, SeqFrac: 0.90},
		},
	},
	{
		Name: "art", Suite: "SPEC",
		Notes: "SPEC 179.art neural-network image recognition: FP match/train passes over large arrays with mediocre locality.",
		Phases: []Phase{
			{Name: "match", Mix: mix(10, 1, 0, 24, 18, 1, 32, 8, 6), Length: 175_000,
				MeanDepDist: 6, BranchPredictability: 0.95, WorkingSet: wsHuge, SeqFrac: 0.55},
			{Name: "train", Mix: mix(12, 1, 0, 22, 16, 2, 32, 9, 6), Length: 125_000,
				MeanDepDist: 6, BranchPredictability: 0.94, WorkingSet: wsHuge, SeqFrac: 0.50},
		},
	},
	{
		Name: "bzip2", CodeFootprint: 8 << 10, Suite: "SPEC",
		Notes: "SPEC 256.bzip2: integer compression with branchy Huffman coding and a block-sort phase with poor locality.",
		Phases: []Phase{
			{Name: "compress", Mix: mix(42, 2, 0.5, 0, 0, 0, 22, 12, 21.5), Length: 175_000,
				MeanDepDist: 4, BranchPredictability: 0.89, WorkingSet: wsLarge, SeqFrac: 0.40},
			{Name: "sort", Mix: mix(38, 1, 0, 0, 0, 0, 26, 12, 23), Length: 125_000,
				MeanDepDist: 3.5, BranchPredictability: 0.85, WorkingSet: wsLarge, SeqFrac: 0.20},
		},
	},
	{
		Name: "gzip", Suite: "SPEC",
		Notes: "SPEC 164.gzip: LZ77 deflate with hash-chain lookups (small working set) and a branchier Huffman stage.",
		Phases: []Phase{
			{Name: "deflate", Mix: mix(44, 1, 0, 0, 0, 0, 24, 11, 20), Length: 150_000,
				MeanDepDist: 4, BranchPredictability: 0.90, WorkingSet: wsMed, SeqFrac: 0.55},
			{Name: "huffman", Mix: mix(40, 1, 0, 0, 0, 0, 24, 10, 25), Length: 100_000,
				MeanDepDist: 3.5, BranchPredictability: 0.87, WorkingSet: wsSmall, SeqFrac: 0.45},
		},
	},
	{
		Name: "vpr", CodeFootprint: 16 << 10, Suite: "SPEC",
		Notes: "SPEC 175.vpr FPGA place & route: integer with a sprinkle of FP cost functions, low ILP, large netlist footprint.",
		Phases: []Phase{
			{Name: "place", Mix: mix(34, 3, 1, 6, 4, 1, 24, 10, 17), Length: 150_000,
				MeanDepDist: 4.5, BranchPredictability: 0.88, WorkingSet: wsLarge, SeqFrac: 0.25},
			{Name: "route", Mix: mix(36, 2, 0.5, 3, 2, 0.5, 26, 10, 20), Length: 125_000,
				MeanDepDist: 4, BranchPredictability: 0.86, WorkingSet: wsLarge, SeqFrac: 0.20},
		},
	},
	{
		Name: "parser", CodeFootprint: 16 << 10, Suite: "SPEC",
		Notes: "SPEC 197.parser link-grammar English parser: dictionary lookups and linked structures, branchy and pointer-bound.",
		Phases: []Phase{
			{Name: "tokenize", Mix: mix(40, 1, 0, 0, 0, 0, 24, 10, 25), Length: 100_000,
				MeanDepDist: 3.5, BranchPredictability: 0.87, WorkingSet: wsMed, SeqFrac: 0.40},
			{Name: "link", Mix: mix(36, 1, 0.5, 0, 0, 0, 28, 11, 23.5), Length: 150_000,
				MeanDepDist: 3.5, BranchPredictability: 0.85, WorkingSet: wsLarge, SeqFrac: 0.15},
		},
	},
	{
		Name: "twolf", CodeFootprint: 16 << 10, Suite: "SPEC",
		Notes: "SPEC 300.twolf standard-cell placement via simulated annealing: a single long integer phase with random-ish accesses and occasional FP cost math.",
		Phases: []Phase{
			{Name: "anneal", Mix: mix(36, 4, 1, 4, 3, 1, 26, 9, 16), Length: 200_000,
				MeanDepDist: 4, BranchPredictability: 0.88, WorkingSet: wsLarge, SeqFrac: 0.20},
		},
	},
	{
		Name: "applu", Suite: "SPEC",
		Notes: "SPEC 173.applu LU solver on structured grids: high-ILP streaming FP (jacld/blts sweeps) over a huge footprint.",
		Phases: []Phase{
			{Name: "jacld", Mix: mix(8, 1, 0, 26, 22, 3, 26, 10, 4), Length: 200_000,
				MeanDepDist: 11, BranchPredictability: 0.99, WorkingSet: wsHuge, SeqFrac: 0.85},
			{Name: "blts", Mix: mix(8, 1, 0, 28, 20, 4, 26, 9, 4), Length: 175_000,
				MeanDepDist: 10, BranchPredictability: 0.98, WorkingSet: wsHuge, SeqFrac: 0.80},
		},
	},
	{
		Name: "mgrid", Suite: "SPEC",
		Notes: "SPEC 172.mgrid multigrid solver: the most regular FP streaming code in the suite; one long resid phase.",
		Phases: []Phase{
			{Name: "resid", Mix: mix(6, 1, 0, 30, 24, 1, 26, 8, 4), Length: 250_000,
				MeanDepDist: 13, BranchPredictability: 0.99, WorkingSet: wsHuge, SeqFrac: 0.92},
		},
	},
	{
		Name: "mesa", CodeFootprint: 24 << 10, Suite: "SPEC",
		Notes: "SPEC 177.mesa software OpenGL: mixed vertex-transform FP and integer rasterization with a large code footprint.",
		Phases: []Phase{
			{Name: "vertex", Mix: mix(18, 3, 0, 18, 16, 2, 22, 12, 9), Length: 112_500,
				MeanDepDist: 7, BranchPredictability: 0.94, WorkingSet: wsMed, SeqFrac: 0.60},
			{Name: "raster", Mix: mix(28, 4, 0, 10, 8, 1, 24, 14, 11), Length: 112_500,
				MeanDepDist: 6, BranchPredictability: 0.92, WorkingSet: wsMed, SeqFrac: 0.70},
		},
	},

	// ---------------------------------------------- MiBench-like (14)
	{
		Name: "bitcount", Suite: "MiBench",
		Notes: "MiBench bitcount: tiny-footprint integer ALU kernel (bit tricks over an array); the paper's INT-intensive profiling representative.",
		Phases: []Phase{
			{Name: "count", Mix: mix(66, 2, 0, 0, 0, 0, 12, 4, 16), Length: 125_000,
				MeanDepDist: 5, BranchPredictability: 0.95, WorkingSet: wsTiny, SeqFrac: 0.80},
		},
	},
	{
		Name: "sha", Suite: "MiBench",
		Notes: "MiBench SHA-1: serial integer rounds with perfectly predictable loop control; dependence-bound.",
		Phases: []Phase{
			{Name: "rounds", Mix: mix(62, 3, 0, 0, 0, 0, 16, 9, 10), Length: 150_000,
				MeanDepDist: 3, BranchPredictability: 0.98, WorkingSet: wsTiny, SeqFrac: 0.85},
		},
	},
	{
		Name: "CRC32", Suite: "MiBench",
		Notes: "MiBench CRC32: byte-at-a-time table CRC — a tight predictable integer loop streaming its input; a Fig. 1 INT-core workload.",
		Phases: []Phase{
			{Name: "crc", Mix: mix(58, 0, 0, 0, 0, 0, 26, 2, 14), Length: 175_000,
				MeanDepDist: 2.5, BranchPredictability: 0.99, WorkingSet: wsSmall, SeqFrac: 0.95},
		},
	},
	{
		Name: "adpcm_enc", Suite: "MiBench",
		Notes: "MiBench ADPCM encoder: fixed-point DSP with short dependence chains and a small state footprint.",
		Phases: []Phase{
			{Name: "encode", Mix: mix(52, 4, 1, 0, 0, 0, 18, 10, 15), Length: 125_000,
				MeanDepDist: 3, BranchPredictability: 0.91, WorkingSet: wsTiny, SeqFrac: 0.95},
		},
	},
	{
		Name: "adpcm_dec", Suite: "MiBench",
		Notes: "MiBench ADPCM decoder: like the encoder, slightly lighter control.",
		Phases: []Phase{
			{Name: "decode", Mix: mix(54, 3, 0.5, 0, 0, 0, 17, 11, 14.5), Length: 125_000,
				MeanDepDist: 3, BranchPredictability: 0.92, WorkingSet: wsTiny, SeqFrac: 0.95},
		},
	},
	{
		Name: "dijkstra", Suite: "MiBench",
		Notes: "MiBench dijkstra: adjacency-matrix shortest paths — integer, pointer-ish access with poor locality at our cache sizes.",
		Phases: []Phase{
			{Name: "relax", Mix: mix(38, 1, 0, 0, 0, 0, 30, 8, 23), Length: 125_000,
				MeanDepDist: 3, BranchPredictability: 0.88, WorkingSet: wsMed, SeqFrac: 0.15},
		},
	},
	{
		Name: "patricia", Suite: "MiBench",
		Notes: "MiBench patricia trie routing-table lookups: pointer chasing with unpredictable branches.",
		Phases: []Phase{
			{Name: "lookup", Mix: mix(36, 0, 0, 0, 0, 0, 32, 8, 24), Length: 112_500,
				MeanDepDist: 2.5, BranchPredictability: 0.84, WorkingSet: wsMed, SeqFrac: 0.10},
		},
	},
	{
		Name: "qsort", Suite: "MiBench",
		Notes: "MiBench qsort: comparison sort — very branchy (50/50 compares modeled at 0.80 predictability) with partition-local access.",
		Phases: []Phase{
			{Name: "partition", Mix: mix(36, 1, 0, 2, 1, 0, 28, 10, 22), Length: 125_000,
				MeanDepDist: 3.5, BranchPredictability: 0.80, WorkingSet: wsMed, SeqFrac: 0.30},
		},
	},
	{
		Name: "susan", Suite: "MiBench",
		Notes: "MiBench susan image smoothing/corners: integer multiply-heavy pixel kernels with row-sequential access.",
		Phases: []Phase{
			{Name: "edges", Mix: mix(40, 8, 1, 3, 2, 0, 26, 8, 12), Length: 125_000,
				MeanDepDist: 6, BranchPredictability: 0.93, WorkingSet: wsMed, SeqFrac: 0.75},
			{Name: "corners", Mix: mix(44, 6, 0, 2, 1, 0, 26, 8, 13), Length: 87_500,
				MeanDepDist: 5, BranchPredictability: 0.92, WorkingSet: wsMed, SeqFrac: 0.70},
		},
	},
	{
		Name: "blowfish", Suite: "MiBench",
		Notes: "MiBench blowfish: Feistel cipher — serial integer rounds over tiny S-box state, perfectly predictable.",
		Phases: []Phase{
			{Name: "feistel", Mix: mix(58, 2, 0, 0, 0, 0, 22, 8, 10), Length: 150_000,
				MeanDepDist: 2.8, BranchPredictability: 0.99, WorkingSet: wsTiny, SeqFrac: 0.60},
		},
	},
	{
		Name: "rijndael", Suite: "MiBench",
		Notes: "MiBench rijndael (AES): table-lookup rounds; slightly bigger working set than blowfish, same character.",
		Phases: []Phase{
			{Name: "rounds", Mix: mix(54, 2, 0, 0, 0, 0, 28, 8, 8), Length: 150_000,
				MeanDepDist: 3.2, BranchPredictability: 0.99, WorkingSet: wsSmall, SeqFrac: 0.40},
		},
	},
	{
		Name: "stringsearch", Suite: "MiBench",
		Notes: "MiBench stringsearch: Boyer-Moore-ish scanning — branchy, load-heavy, tiny compute.",
		Phases: []Phase{
			{Name: "search", Mix: mix(40, 0, 0, 0, 0, 0, 28, 4, 28), Length: 100_000,
				MeanDepDist: 3, BranchPredictability: 0.82, WorkingSet: wsSmall, SeqFrac: 0.65},
		},
	},
	{
		Name: "fft", Suite: "MiBench",
		Notes: "MiBench FFT: radix-2 butterflies — balanced FP add/multiply with strided access; the forward transform.",
		Phases: []Phase{
			{Name: "butterfly", Mix: mix(14, 2, 0, 22, 24, 1, 22, 10, 5), Length: 125_000,
				MeanDepDist: 8, BranchPredictability: 0.97, WorkingSet: wsMed, SeqFrac: 0.55},
		},
	},
	{
		// ffti interleaves bit-reversal/index bookkeeping (INT) with
		// inverse-butterfly FP kernels — a "reasonable mix" program.
		Name: "ffti", Suite: "MiBench",
		Notes: "MiBench inverse FFT: bit-reversal bookkeeping (integer) alternating with inverse butterflies (FP) — a 'reasonable mix' profiling representative whose flavor flips inside a 2 ms quantum.",
		Phases: []Phase{
			{Name: "bitrev", Mix: mix(46, 4, 0, 2, 2, 0, 24, 10, 12), Length: 62_500,
				MeanDepDist: 4, BranchPredictability: 0.92, WorkingSet: wsMed, SeqFrac: 0.30},
			{Name: "ibutterfly", Mix: mix(12, 2, 0, 24, 22, 1, 22, 11, 6), Length: 100_000,
				MeanDepDist: 8, BranchPredictability: 0.97, WorkingSet: wsMed, SeqFrac: 0.55},
		},
	},

	// -------------------------------------------- MediaBench-like (1)
	{
		Name: "mpeg2_dec", CodeFootprint: 12 << 10, Suite: "MediaBench",
		Notes: "MediaBench MPEG-2 decoder: IDCT blocks (integer/FP multiply mix) alternating with motion compensation (integer, memory-heavy).",
		Phases: []Phase{
			{Name: "idct", Mix: mix(26, 10, 0, 10, 12, 0, 22, 12, 8), Length: 87_500,
				MeanDepDist: 6, BranchPredictability: 0.95, WorkingSet: wsMed, SeqFrac: 0.70},
			{Name: "motion", Mix: mix(38, 6, 0, 2, 2, 0, 26, 14, 12), Length: 112_500,
				MeanDepDist: 5, BranchPredictability: 0.93, WorkingSet: wsLarge, SeqFrac: 0.60},
		},
	},

	// ------------------------------------------------- Synthetic (7)
	{
		Name: "intstress", Suite: "Synthetic",
		Notes: "Synthetic: near-pure integer ALU/multiply pressure with high ILP and a tiny footprint — the Fig. 1 INT extreme.",
		Phases: []Phase{
			{Name: "alu", Mix: mix(72, 8, 2, 0, 0, 0, 8, 4, 6), Length: 125_000,
				MeanDepDist: 6, BranchPredictability: 0.98, WorkingSet: wsTiny, SeqFrac: 0.90},
		},
	},
	{
		Name: "fpstress", Suite: "Synthetic",
		Notes: "Synthetic: near-pure FP add/multiply/divide pressure with high ILP — the Fig. 1 FP extreme.",
		Phases: []Phase{
			{Name: "fpu", Mix: mix(2, 0, 0, 38, 34, 6, 10, 4, 6), Length: 125_000,
				MeanDepDist: 12, BranchPredictability: 0.98, WorkingSet: wsTiny, SeqFrac: 0.90},
		},
	},
	{
		// pi: arctan series — FP div/mul bound inner loop with integer
		// loop control; a classic mixed kernel.
		Name: "pi", Suite: "Synthetic",
		Notes: "Synthetic arctan-series pi: FP divide-bound inner loop under integer loop control; a mixed-profile representative.",
		Phases: []Phase{
			{Name: "series", Mix: mix(28, 4, 1, 18, 14, 8, 14, 6, 7), Length: 100_000,
				MeanDepDist: 4, BranchPredictability: 0.99, WorkingSet: wsTiny, SeqFrac: 0.95},
		},
	},
	{
		Name: "memstress", Suite: "Synthetic",
		Notes: "Synthetic pointer-chase over 4 MB with serial dependences: collapses IPC on any core; the morphing/guard experiments' 'parked thread'.",
		Phases: []Phase{
			{Name: "chase", Mix: mix(20, 0, 0, 0, 0, 0, 46, 22, 12), Length: 125_000,
				MeanDepDist: 2, BranchPredictability: 0.97, WorkingSet: wsHuge, SeqFrac: 0.05},
		},
	},
	{
		Name: "branchstress", Suite: "Synthetic",
		Notes: "Synthetic: 37% branches at 0.70 predictability — a front-end stress test for the misprediction path.",
		Phases: []Phase{
			{Name: "twisty", Mix: mix(40, 1, 0, 0, 0, 0, 16, 6, 37), Length: 100_000,
				MeanDepDist: 3, BranchPredictability: 0.70, WorkingSet: wsSmall, SeqFrac: 0.50},
		},
	},
	{
		// mixstress flips flavor every 150k instructions — well inside
		// a 2 ms interval. It is the adversarial case for coarse-grain
		// scheduling and the showcase for the proposed scheme.
		Name: "mixstress", Suite: "Synthetic",
		Notes: "Synthetic phase flipper: INT-heavy and FP-heavy bursts alternating every ~37k instructions — far inside the 2 ms quantum; the showcase for fine-grained scheduling and the adversary for coarse schemes.",
		Phases: []Phase{
			{Name: "intburst", Mix: mix(64, 8, 1, 1, 1, 0, 10, 5, 10), Length: 37_500,
				MeanDepDist: 5, BranchPredictability: 0.96, WorkingSet: wsTiny, SeqFrac: 0.85},
			{Name: "fpburst", Mix: mix(5, 1, 0, 34, 30, 4, 12, 6, 8), Length: 37_500,
				MeanDepDist: 8, BranchPredictability: 0.97, WorkingSet: wsTiny, SeqFrac: 0.85},
		},
	},
	{
		Name: "dotstress", Suite: "Synthetic",
		Notes: "Synthetic dot-product streams: high-ILP FP multiply-add over a large sequential footprint; bandwidth-friendly due to stride-8 reuse within lines.",
		Phases: []Phase{
			{Name: "dot", Mix: mix(8, 1, 0, 28, 30, 0, 24, 4, 5), Length: 150_000,
				MeanDepDist: 14, BranchPredictability: 0.99, WorkingSet: wsLarge, SeqFrac: 0.98},
		},
	},
}

var byName = func() map[string]*Benchmark {
	m := make(map[string]*Benchmark, len(suite))
	for _, b := range suite {
		if _, dup := m[b.Name]; dup {
			panic("workload: duplicate benchmark name " + b.Name)
		}
		m[b.Name] = b
	}
	return m
}()

// All returns the full 37-benchmark pool, sorted by name for
// deterministic iteration.
func All() []*Benchmark {
	out := make([]*Benchmark, len(suite))
	copy(out, suite)
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// ByName returns the named benchmark or an error listing the problem.
func ByName(name string) (*Benchmark, error) {
	b, ok := byName[name]
	if !ok {
		return nil, fmt.Errorf("workload: unknown benchmark %q", name)
	}
	return b, nil
}

// MustByName is ByName for static names; it panics on unknown names.
func MustByName(name string) *Benchmark {
	b, err := ByName(name)
	if err != nil {
		panic(err)
	}
	return b
}

// Representative returns the nine profiling benchmarks of §V/§VI-A:
// three INT-intensive, three FP-intensive and three with a reasonable
// mix of both.
func Representative() []*Benchmark {
	names := []string{
		"bitcount", "sha", "intstress", // INT intensive
		"fpstress", "equake", "ammp", // FP intensive
		"apsi", "ffti", "pi", // mixed
	}
	out := make([]*Benchmark, len(names))
	for i, n := range names {
		out[i] = MustByName(n)
	}
	return out
}
