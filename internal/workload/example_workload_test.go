package workload_test

import (
	"fmt"

	"ampsched/internal/isa"
	"ampsched/internal/workload"
)

// ExampleByName shows how to look up a benchmark model and inspect
// its declared character.
func ExampleByName() {
	b, err := workload.ByName("mixstress")
	if err != nil {
		panic(err)
	}
	m := b.AverageMix()
	fmt.Printf("%s (%s): flavor %s, %d phases\n", b.Name, b.Suite, b.Flavor(), len(b.Phases))
	fmt.Printf("mixed: %v\n", m.IntFrac() > 0.25 && m.FPFrac() > 0.15)
	// Output:
	// mixstress (Synthetic): flavor MIX, 2 phases
	// mixed: true
}

// ExampleNewGenerator streams a benchmark's instructions.
func ExampleNewGenerator() {
	g := workload.NewGenerator(workload.MustByName("sha"), 42, 0)
	var in isa.Instruction
	classes := map[isa.Class]int{}
	for i := 0; i < 10_000; i++ {
		g.Next(&in)
		classes[in.Class]++
	}
	fmt.Printf("sha is integer-dominated: %v\n", classes[isa.IntALU] > 5_000)
	// Output:
	// sha is integer-dominated: true
}
