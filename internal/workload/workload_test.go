package workload

import (
	"math"
	"testing"
	"testing/quick"

	"ampsched/internal/isa"
)

func TestSuiteComposition(t *testing.T) {
	all := All()
	if len(all) != 37 {
		t.Fatalf("pool has %d benchmarks, want 37", len(all))
	}
	counts := map[string]int{}
	for _, b := range all {
		counts[b.Suite]++
	}
	want := map[string]int{"SPEC": 15, "MiBench": 14, "MediaBench": 1, "Synthetic": 7}
	for suite, n := range want {
		if counts[suite] != n {
			t.Errorf("suite %s has %d benchmarks, want %d", suite, counts[suite], n)
		}
	}
}

func TestAllValidate(t *testing.T) {
	for _, b := range All() {
		if err := b.Validate(); err != nil {
			t.Errorf("%s: %v", b.Name, err)
		}
	}
}

func TestAllHaveProvenanceNotes(t *testing.T) {
	for _, b := range All() {
		if len(b.Notes) < 40 {
			t.Errorf("%s: missing or too-short provenance notes", b.Name)
		}
	}
}

func TestAllSortedAndUnique(t *testing.T) {
	all := All()
	for i := 1; i < len(all); i++ {
		if all[i-1].Name >= all[i].Name {
			t.Fatalf("All() not strictly sorted at %d: %s >= %s", i, all[i-1].Name, all[i].Name)
		}
	}
}

func TestByName(t *testing.T) {
	b, err := ByName("gcc")
	if err != nil || b.Name != "gcc" {
		t.Fatalf("ByName(gcc) = %v, %v", b, err)
	}
	if _, err := ByName("no-such-benchmark"); err == nil {
		t.Fatal("unknown name accepted")
	}
}

func TestMustByNamePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustByName did not panic")
		}
	}()
	MustByName("nope")
}

func TestRepresentativeNine(t *testing.T) {
	reps := Representative()
	if len(reps) != 9 {
		t.Fatalf("got %d representative benchmarks, want 9", len(reps))
	}
	flavors := map[string]int{}
	for _, b := range reps {
		flavors[b.Flavor()]++
	}
	if flavors["INT"] < 3 {
		t.Errorf("want >=3 INT-flavored representatives, got %d", flavors["INT"])
	}
	if flavors["FP"]+flavors["MIX"] < 4 {
		t.Errorf("want FP and mixed representatives, got %v", flavors)
	}
}

func TestAverageMixSumsToOne(t *testing.T) {
	for _, b := range All() {
		m := b.AverageMix()
		if err := m.Validate(); err != nil {
			t.Errorf("%s average mix: %v", b.Name, err)
		}
	}
}

func TestFlavorExamples(t *testing.T) {
	cases := map[string]string{
		"intstress": "INT",
		"bitcount":  "INT",
		"CRC32":     "INT",
		"fpstress":  "FP",
		"equake":    "FP",
		"swim":      "FP",
	}
	for name, want := range cases {
		if got := MustByName(name).Flavor(); got != want {
			t.Errorf("%s flavor = %s, want %s", name, got, want)
		}
	}
}

func TestGeneratorDeterminism(t *testing.T) {
	b := MustByName("gcc")
	g1 := NewGenerator(b, 5, 0)
	g2 := NewGenerator(b, 5, 0)
	var i1, i2 isa.Instruction
	for n := 0; n < 20000; n++ {
		g1.Next(&i1)
		g2.Next(&i2)
		if i1 != i2 {
			t.Fatalf("generators diverged at %d: %+v vs %+v", n, i1, i2)
		}
	}
}

func TestGeneratorSeedsDiffer(t *testing.T) {
	b := MustByName("gcc")
	g1 := NewGenerator(b, 5, 0)
	g2 := NewGenerator(b, 6, 0)
	var i1, i2 isa.Instruction
	same := 0
	for n := 0; n < 1000; n++ {
		g1.Next(&i1)
		g2.Next(&i2)
		if i1 == i2 {
			same++
		}
	}
	if same > 900 {
		t.Fatalf("different seeds produced %d/1000 identical instructions", same)
	}
}

func TestGeneratorMixConvergence(t *testing.T) {
	// Single-phase benchmark: empirical class distribution must
	// converge to the declared mix.
	b := MustByName("intstress")
	g := NewGenerator(b, 9, 0)
	var in isa.Instruction
	counts := [isa.NumClasses]int{}
	const n = 200000
	for i := 0; i < n; i++ {
		g.Next(&in)
		counts[in.Class]++
	}
	want := b.Phases[0].Mix
	for c := isa.Class(0); c < isa.NumClasses; c++ {
		got := float64(counts[c]) / n
		if math.Abs(got-want[c]) > 0.01 {
			t.Errorf("class %s frequency %.3f, declared %.3f", c, got, want[c])
		}
	}
}

func TestGeneratorAddressesInWorkingSet(t *testing.T) {
	const base = 1 << 40
	b := MustByName("CRC32")
	ws := b.Phases[0].WorkingSet
	g := NewGenerator(b, 3, base)
	var in isa.Instruction
	for i := 0; i < 50000; i++ {
		g.Next(&in)
		if in.Class.IsMem() {
			if in.Addr < base || in.Addr >= base+ws {
				t.Fatalf("memory address %#x outside [%#x, %#x)", in.Addr, base, base+ws)
			}
		}
	}
}

func TestGeneratorPhaseAdvance(t *testing.T) {
	b := MustByName("mixstress") // two phases
	g := NewGenerator(b, 1, 0)
	var in isa.Instruction
	if g.PhaseIndex() != 0 {
		t.Fatalf("initial phase %d", g.PhaseIndex())
	}
	for i := uint64(0); i <= b.Phases[0].Length; i++ {
		g.Next(&in)
	}
	if g.PhaseIndex() != 1 {
		t.Fatalf("after phase 0 length, phase index %d", g.PhaseIndex())
	}
	// Wraps back to phase 0.
	for i := uint64(0); i <= b.Phases[1].Length; i++ {
		g.Next(&in)
	}
	if g.PhaseIndex() != 0 {
		t.Fatalf("after full pass, phase index %d", g.PhaseIndex())
	}
}

func TestGeneratorPhaseMixShift(t *testing.T) {
	b := MustByName("mixstress")
	g := NewGenerator(b, 2, 0)
	var in isa.Instruction
	countFP := func(n uint64) float64 {
		fp := 0
		for i := uint64(0); i < n; i++ {
			g.Next(&in)
			if in.Class.IsFP() {
				fp++
			}
		}
		return float64(fp) / float64(n)
	}
	intPhaseFP := countFP(b.Phases[0].Length)
	fpPhaseFP := countFP(b.Phases[1].Length)
	if intPhaseFP > 0.1 {
		t.Errorf("int phase emitted %.2f FP fraction", intPhaseFP)
	}
	if fpPhaseFP < 0.5 {
		t.Errorf("fp phase emitted only %.2f FP fraction", fpPhaseFP)
	}
}

func TestGeneratorBranchBias(t *testing.T) {
	b := MustByName("CRC32") // predictability 0.99
	g := NewGenerator(b, 4, 0)
	var in isa.Instruction
	perSite := map[uint64][2]int{}
	for i := 0; i < 200000; i++ {
		g.Next(&in)
		if in.Class == isa.Branch {
			c := perSite[in.Addr]
			if in.Taken {
				c[0]++
			}
			c[1]++
			perSite[in.Addr] = c
		}
	}
	if len(perSite) == 0 {
		t.Fatal("no branches generated")
	}
	for site, c := range perSite {
		if c[1] < 50 {
			continue
		}
		rate := float64(c[0]) / float64(c[1])
		if rate > 0.05 && rate < 0.95 {
			t.Errorf("site %#x taken rate %.2f; want strongly biased", site, rate)
		}
	}
}

func TestGeneratorDepDistances(t *testing.T) {
	b := MustByName("gcc")
	g := NewGenerator(b, 8, 0)
	var in isa.Instruction
	var sum, n float64
	for i := 0; i < 100000; i++ {
		g.Next(&in)
		if in.Dep1 > 0 {
			sum += float64(in.Dep1)
			n++
		}
		if in.Dep1 < 0 || in.Dep2 < 0 {
			t.Fatalf("negative dependency distance: %+v", in)
		}
	}
	if n == 0 {
		t.Fatal("no dependencies generated")
	}
	mean := sum / n
	if mean < 2 || mean > 10 {
		t.Errorf("mean dep distance %.1f outside plausible range for gcc", mean)
	}
}

func TestValidateCatchesBadPhases(t *testing.T) {
	good := Phase{
		Name: "p", Mix: func() isa.Mix { m := isa.Mix{1}; m.Normalize(); return m }(),
		Length: 100, MeanDepDist: 2, BranchPredictability: 0.9, WorkingSet: 1024, SeqFrac: 0.5,
	}
	cases := []func(*Phase){
		func(p *Phase) { p.Length = 0 },
		func(p *Phase) { p.BranchPredictability = 0.3 },
		func(p *Phase) { p.BranchPredictability = 1.2 },
		func(p *Phase) { p.WorkingSet = 0 },
		func(p *Phase) { p.SeqFrac = -0.1 },
		func(p *Phase) { p.SeqFrac = 1.5 },
		func(p *Phase) { p.MeanDepDist = 0.5 },
		func(p *Phase) { p.Mix = isa.Mix{0.5} },
	}
	for i, mutate := range cases {
		p := good
		mutate(&p)
		b := &Benchmark{Name: "x", Suite: "Synthetic", Phases: []Phase{p}}
		if err := b.Validate(); err == nil {
			t.Errorf("case %d: invalid phase accepted", i)
		}
	}
	if err := (&Benchmark{Name: "", Phases: []Phase{good}}).Validate(); err == nil {
		t.Error("empty name accepted")
	}
	if err := (&Benchmark{Name: "x", Phases: nil}).Validate(); err == nil {
		t.Error("no phases accepted")
	}
}

func TestEffectiveCodeFootprint(t *testing.T) {
	if got := MustByName("bitcount").EffectiveCodeFootprint(); got != DefaultCodeFootprint {
		t.Errorf("default footprint = %d", got)
	}
	if got := MustByName("gcc").EffectiveCodeFootprint(); got != 48<<10 {
		t.Errorf("gcc footprint = %d", got)
	}
}

func TestTotalPhaseLength(t *testing.T) {
	b := MustByName("mixstress")
	var want uint64
	for i := range b.Phases {
		want += b.Phases[i].Length
	}
	if got := b.TotalPhaseLength(); got != want {
		t.Fatalf("TotalPhaseLength = %d, want %d", got, want)
	}
}

func TestQuickGeneratorAddressAligned(t *testing.T) {
	b := MustByName("mcf")
	f := func(seed uint64) bool {
		g := NewGenerator(b, seed, 0)
		var in isa.Instruction
		for i := 0; i < 500; i++ {
			g.Next(&in)
			if in.Class.IsMem() && in.Addr%8 != 0 && in.Addr%uint64(b.Phases[0].Stride|8) != 0 {
				// sequential pointers move by stride (default 8);
				// random addresses are 8-aligned.
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestEmittedCounts(t *testing.T) {
	b := MustByName("pi")
	g := NewGenerator(b, 1, 0)
	var in isa.Instruction
	for i := 0; i < 1234; i++ {
		g.Next(&in)
	}
	if g.Emitted() != 1234 {
		t.Fatalf("Emitted = %d", g.Emitted())
	}
}
