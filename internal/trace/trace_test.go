package trace

import (
	"bytes"
	"strings"
	"testing"
	"testing/quick"

	"ampsched/internal/cpu"
	"ampsched/internal/isa"
	"ampsched/internal/rng"
	"ampsched/internal/workload"
)

func randomInstrs(seed uint64, n int) []isa.Instruction {
	r := rng.New(seed)
	out := make([]isa.Instruction, n)
	for i := range out {
		in := &out[i]
		in.Class = isa.Class(r.Intn(int(isa.NumClasses)))
		if r.Bool(0.6) {
			in.Dep1 = int32(r.Intn(1000) + 1)
		}
		if r.Bool(0.3) {
			in.Dep2 = int32(r.Intn(1000) + 1)
		}
		if in.Class.IsMem() || r.Bool(0.1) {
			in.Addr = r.Uint64n(1 << 40)
		}
		if in.Class == isa.Branch {
			in.Taken = r.Bool(0.5)
		}
	}
	return out
}

func roundTrip(t *testing.T, instrs []isa.Instruction) (Header, []isa.Instruction) {
	t.Helper()
	var buf bytes.Buffer
	w, err := NewWriter(&buf, Header{Name: "t", CodeFootprint: 4096, Count: uint64(len(instrs))})
	if err != nil {
		t.Fatal(err)
	}
	for i := range instrs {
		if err := w.Write(&instrs[i]); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	hdr, got, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	return hdr, got
}

func TestRoundTrip(t *testing.T) {
	instrs := randomInstrs(1, 5000)
	hdr, got := roundTrip(t, instrs)
	if hdr.Name != "t" || hdr.CodeFootprint != 4096 || hdr.Count != 5000 {
		t.Fatalf("header: %+v", hdr)
	}
	for i := range instrs {
		if instrs[i] != got[i] {
			t.Fatalf("record %d: %+v != %+v", i, instrs[i], got[i])
		}
	}
}

func TestQuickRoundTrip(t *testing.T) {
	f := func(seed uint64, nRaw uint8) bool {
		n := int(nRaw)%200 + 1
		instrs := randomInstrs(seed, n)
		_, got := roundTrip(t, instrs)
		for i := range instrs {
			if instrs[i] != got[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestCompactEncoding(t *testing.T) {
	// 10k plain ALU ops should cost ~2 bytes each plus the header.
	instrs := make([]isa.Instruction, 10_000)
	for i := range instrs {
		instrs[i].Class = isa.IntALU
	}
	var buf bytes.Buffer
	w, err := NewWriter(&buf, Header{Name: "alu", CodeFootprint: 1024, Count: 10_000})
	if err != nil {
		t.Fatal(err)
	}
	for i := range instrs {
		if err := w.Write(&instrs[i]); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if buf.Len() > 10_000*2+64 {
		t.Fatalf("encoding too fat: %d bytes for 10k records", buf.Len())
	}
}

func TestWriterValidation(t *testing.T) {
	var buf bytes.Buffer
	if _, err := NewWriter(&buf, Header{Name: "x", CodeFootprint: 1, Count: 0}); err == nil {
		t.Fatal("zero count accepted")
	}
	if _, err := NewWriter(&buf, Header{Name: "x", CodeFootprint: 0, Count: 1}); err == nil {
		t.Fatal("zero footprint accepted")
	}
	if _, err := NewWriter(&buf, Header{Name: strings.Repeat("a", 300), CodeFootprint: 1, Count: 1}); err == nil {
		t.Fatal("overlong name accepted")
	}
}

func TestWriterCountEnforced(t *testing.T) {
	var buf bytes.Buffer
	w, err := NewWriter(&buf, Header{Name: "x", CodeFootprint: 64, Count: 1})
	if err != nil {
		t.Fatal(err)
	}
	in := isa.Instruction{Class: isa.IntALU}
	if err := w.Write(&in); err != nil {
		t.Fatal(err)
	}
	if err := w.Write(&in); err == nil {
		t.Fatal("write beyond count accepted")
	}
}

func TestWriterCloseShort(t *testing.T) {
	var buf bytes.Buffer
	w, err := NewWriter(&buf, Header{Name: "x", CodeFootprint: 64, Count: 2})
	if err != nil {
		t.Fatal(err)
	}
	in := isa.Instruction{Class: isa.IntALU}
	if err := w.Write(&in); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err == nil {
		t.Fatal("short trace accepted at Close")
	}
}

func TestReadRejectsCorruption(t *testing.T) {
	instrs := randomInstrs(2, 100)
	var buf bytes.Buffer
	w, err := NewWriter(&buf, Header{Name: "c", CodeFootprint: 64, Count: 100})
	if err != nil {
		t.Fatal(err)
	}
	for i := range instrs {
		if err := w.Write(&instrs[i]); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	good := buf.Bytes()

	cases := []func([]byte) []byte{
		func(b []byte) []byte { b[0] = 'X'; return b }, // magic
		func(b []byte) []byte { b[4] = 99; return b },  // version
		func(b []byte) []byte { return b[:len(b)/2] },  // truncated
		// First record's class byte: 4 magic + 1 version + 1 namelen +
		// 1 name + 1 footprint varint + 1 count varint = offset 9.
		func(b []byte) []byte { b[9] = byte(isa.NumClasses); return b },
	}
	for i, corrupt := range cases {
		c := append([]byte{}, good...)
		if _, _, err := Read(bytes.NewReader(corrupt(c))); err == nil {
			t.Errorf("corruption case %d accepted", i)
		}
	}
}

func TestSourceWrapsAround(t *testing.T) {
	instrs := randomInstrs(3, 10)
	src := NewSource(Header{Name: "w", CodeFootprint: 64, Count: 10}, instrs)
	var in isa.Instruction
	for i := 0; i < 25; i++ {
		src.Next(&in)
		if in != instrs[i%10] {
			t.Fatalf("replay diverged at %d", i)
		}
	}
	if src.Emitted() != 25 {
		t.Fatalf("emitted = %d", src.Emitted())
	}
}

func TestRecordBenchmarkAndReplayOnCore(t *testing.T) {
	// Capture a synthetic benchmark, replay it into a core, and check
	// the replayed run commits the same instruction mix.
	b := workload.MustByName("pi")
	gen := workload.NewGenerator(b, 9, 0)
	var buf bytes.Buffer
	const n = 20_000
	err := RecordBenchmark(&buf, b.Name, b.EffectiveCodeFootprint(), n, gen.Next)
	if err != nil {
		t.Fatal(err)
	}
	src, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if src.Header().Name != "pi" {
		t.Fatalf("header name %q", src.Header().Name)
	}

	core := cpu.NewCore(cpu.IntCoreConfig())
	arch := &cpu.ThreadArch{CodeSize: src.Header().CodeFootprint}
	core.Bind(src, arch)
	for cycle := uint64(0); arch.Committed < n/2; cycle++ {
		core.Step(cycle)
	}
	if arch.IntPct() < 10 {
		t.Fatalf("replayed pi IntPct %.1f implausible", arch.IntPct())
	}
	if arch.FPPct() < 10 {
		t.Fatalf("replayed pi FPPct %.1f implausible", arch.FPPct())
	}
}

func TestGeneratorVsTraceReplayIdenticalTiming(t *testing.T) {
	// A recorded trace replayed through the same core must produce
	// the exact cycle count of the live generator (determinism across
	// the recording boundary).
	b := workload.MustByName("sha")
	const n = 15_000

	runLive := func() (uint64, uint64) {
		gen := workload.NewGenerator(b, 4, 0)
		core := cpu.NewCore(cpu.IntCoreConfig())
		arch := &cpu.ThreadArch{CodeSize: b.EffectiveCodeFootprint()}
		core.Bind(gen, arch)
		var cycle uint64
		for arch.Committed < n {
			core.Step(cycle)
			cycle++
		}
		return cycle, arch.Committed
	}

	var buf bytes.Buffer
	gen := workload.NewGenerator(b, 4, 0)
	if err := RecordBenchmark(&buf, b.Name, b.EffectiveCodeFootprint(), 2*n, gen.Next); err != nil {
		t.Fatal(err)
	}
	src, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	runTrace := func() (uint64, uint64) {
		core := cpu.NewCore(cpu.IntCoreConfig())
		arch := &cpu.ThreadArch{CodeSize: src.Header().CodeFootprint}
		core.Bind(src, arch)
		var cycle uint64
		for arch.Committed < n {
			core.Step(cycle)
			cycle++
		}
		return cycle, arch.Committed
	}

	liveCycles, liveCommits := runLive()
	traceCycles, traceCommits := runTrace()
	if liveCycles != traceCycles || liveCommits != traceCommits {
		t.Fatalf("trace replay diverged: live %d/%d vs trace %d/%d cycles/commits",
			liveCycles, liveCommits, traceCycles, traceCommits)
	}
}

func TestNewSourcePanicsOnEmpty(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("empty source accepted")
		}
	}()
	NewSource(Header{}, nil)
}
