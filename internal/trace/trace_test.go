package trace

import (
	"bytes"
	"encoding/binary"
	"errors"
	"strings"
	"testing"
	"testing/quick"

	"ampsched/internal/cpu"
	"ampsched/internal/isa"
	"ampsched/internal/rng"
	"ampsched/internal/workload"
)

func randomInstrs(seed uint64, n int) []isa.Instruction {
	r := rng.New(seed)
	out := make([]isa.Instruction, n)
	for i := range out {
		in := &out[i]
		in.Class = isa.Class(r.Intn(int(isa.NumClasses)))
		if r.Bool(0.6) {
			in.Dep1 = int32(r.Intn(1000) + 1)
		}
		if r.Bool(0.3) {
			in.Dep2 = int32(r.Intn(1000) + 1)
		}
		if in.Class.IsMem() || r.Bool(0.1) {
			in.Addr = r.Uint64n(1 << 40)
		}
		if in.Class == isa.Branch {
			in.Taken = r.Bool(0.5)
		}
	}
	return out
}

func roundTrip(t *testing.T, instrs []isa.Instruction) (Header, []isa.Instruction) {
	t.Helper()
	var buf bytes.Buffer
	w, err := NewWriter(&buf, Header{Name: "t", CodeFootprint: 4096, Count: uint64(len(instrs))})
	if err != nil {
		t.Fatal(err)
	}
	for i := range instrs {
		if err := w.Write(&instrs[i]); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	hdr, got, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	return hdr, got
}

func TestRoundTrip(t *testing.T) {
	instrs := randomInstrs(1, 5000)
	hdr, got := roundTrip(t, instrs)
	if hdr.Name != "t" || hdr.CodeFootprint != 4096 || hdr.Count != 5000 {
		t.Fatalf("header: %+v", hdr)
	}
	for i := range instrs {
		if instrs[i] != got[i] {
			t.Fatalf("record %d: %+v != %+v", i, instrs[i], got[i])
		}
	}
}

func TestQuickRoundTrip(t *testing.T) {
	f := func(seed uint64, nRaw uint8) bool {
		n := int(nRaw)%200 + 1
		instrs := randomInstrs(seed, n)
		_, got := roundTrip(t, instrs)
		for i := range instrs {
			if instrs[i] != got[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestCompactEncoding(t *testing.T) {
	// 10k plain ALU ops should cost ~2 bytes each plus the header.
	instrs := make([]isa.Instruction, 10_000)
	for i := range instrs {
		instrs[i].Class = isa.IntALU
	}
	var buf bytes.Buffer
	w, err := NewWriter(&buf, Header{Name: "alu", CodeFootprint: 1024, Count: 10_000})
	if err != nil {
		t.Fatal(err)
	}
	for i := range instrs {
		if err := w.Write(&instrs[i]); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	// ~2 bytes per record plus the stream header and ~10 bytes of
	// frame overhead (sync + counts + CRC) per 1024-record frame.
	if buf.Len() > 10_000*2+64+(10_000/FrameRecords+1)*16 {
		t.Fatalf("encoding too fat: %d bytes for 10k records", buf.Len())
	}
}

func TestWriterValidation(t *testing.T) {
	var buf bytes.Buffer
	if _, err := NewWriter(&buf, Header{Name: "x", CodeFootprint: 1, Count: 0}); err == nil {
		t.Fatal("zero count accepted")
	}
	if _, err := NewWriter(&buf, Header{Name: "x", CodeFootprint: 0, Count: 1}); err == nil {
		t.Fatal("zero footprint accepted")
	}
	if _, err := NewWriter(&buf, Header{Name: strings.Repeat("a", 300), CodeFootprint: 1, Count: 1}); err == nil {
		t.Fatal("overlong name accepted")
	}
}

func TestWriterCountEnforced(t *testing.T) {
	var buf bytes.Buffer
	w, err := NewWriter(&buf, Header{Name: "x", CodeFootprint: 64, Count: 1})
	if err != nil {
		t.Fatal(err)
	}
	in := isa.Instruction{Class: isa.IntALU}
	if err := w.Write(&in); err != nil {
		t.Fatal(err)
	}
	if err := w.Write(&in); err == nil {
		t.Fatal("write beyond count accepted")
	}
}

func TestWriterCloseShort(t *testing.T) {
	var buf bytes.Buffer
	w, err := NewWriter(&buf, Header{Name: "x", CodeFootprint: 64, Count: 2})
	if err != nil {
		t.Fatal(err)
	}
	in := isa.Instruction{Class: isa.IntALU}
	if err := w.Write(&in); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err == nil {
		t.Fatal("short trace accepted at Close")
	}
}

func TestReadRejectsCorruption(t *testing.T) {
	instrs := randomInstrs(2, 100)
	var buf bytes.Buffer
	w, err := NewWriter(&buf, Header{Name: "c", CodeFootprint: 64, Count: 100})
	if err != nil {
		t.Fatal(err)
	}
	for i := range instrs {
		if err := w.Write(&instrs[i]); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	good := buf.Bytes()

	cases := []func([]byte) []byte{
		func(b []byte) []byte { b[0] = 'X'; return b }, // magic
		func(b []byte) []byte { b[4] = 99; return b },  // version
		func(b []byte) []byte { return b[:len(b)/2] },  // truncated
		// First frame's sync marker: 4 magic + 1 version + 1 namelen +
		// 1 name + 1 footprint varint + 1 count varint = offset 9.
		func(b []byte) []byte { b[9] = byte(isa.NumClasses); return b },
		// A payload byte: the frame CRC must catch a single bit flip.
		func(b []byte) []byte { b[len(b)/2] ^= 0x40; return b },
	}
	for i, corrupt := range cases {
		c := append([]byte{}, good...)
		if _, _, err := Read(bytes.NewReader(corrupt(c))); err == nil {
			t.Errorf("corruption case %d accepted", i)
		}
	}
}

func TestSourceWrapsAround(t *testing.T) {
	instrs := randomInstrs(3, 10)
	src, err := NewSource(Header{Name: "w", CodeFootprint: 64, Count: 10}, instrs)
	if err != nil {
		t.Fatal(err)
	}
	var in isa.Instruction
	for i := 0; i < 25; i++ {
		src.Next(&in)
		if in != instrs[i%10] {
			t.Fatalf("replay diverged at %d", i)
		}
	}
	if src.Emitted() != 25 {
		t.Fatalf("emitted = %d", src.Emitted())
	}
}

func TestRecordBenchmarkAndReplayOnCore(t *testing.T) {
	// Capture a synthetic benchmark, replay it into a core, and check
	// the replayed run commits the same instruction mix.
	b := workload.MustByName("pi")
	gen := workload.NewGenerator(b, 9, 0)
	var buf bytes.Buffer
	const n = 20_000
	err := RecordBenchmark(&buf, b.Name, b.EffectiveCodeFootprint(), n, gen.Next)
	if err != nil {
		t.Fatal(err)
	}
	src, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if src.Header().Name != "pi" {
		t.Fatalf("header name %q", src.Header().Name)
	}

	core := cpu.NewCore(cpu.IntCoreConfig())
	arch := &cpu.ThreadArch{CodeSize: src.Header().CodeFootprint}
	core.Bind(src, arch)
	for cycle := uint64(0); arch.Committed < n/2; cycle++ {
		core.Step(cycle)
	}
	if arch.IntPct() < 10 {
		t.Fatalf("replayed pi IntPct %.1f implausible", arch.IntPct())
	}
	if arch.FPPct() < 10 {
		t.Fatalf("replayed pi FPPct %.1f implausible", arch.FPPct())
	}
}

func TestGeneratorVsTraceReplayIdenticalTiming(t *testing.T) {
	// A recorded trace replayed through the same core must produce
	// the exact cycle count of the live generator (determinism across
	// the recording boundary).
	b := workload.MustByName("sha")
	const n = 15_000

	runLive := func() (uint64, uint64) {
		gen := workload.NewGenerator(b, 4, 0)
		core := cpu.NewCore(cpu.IntCoreConfig())
		arch := &cpu.ThreadArch{CodeSize: b.EffectiveCodeFootprint()}
		core.Bind(gen, arch)
		var cycle uint64
		for arch.Committed < n {
			core.Step(cycle)
			cycle++
		}
		return cycle, arch.Committed
	}

	var buf bytes.Buffer
	gen := workload.NewGenerator(b, 4, 0)
	if err := RecordBenchmark(&buf, b.Name, b.EffectiveCodeFootprint(), 2*n, gen.Next); err != nil {
		t.Fatal(err)
	}
	src, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	runTrace := func() (uint64, uint64) {
		core := cpu.NewCore(cpu.IntCoreConfig())
		arch := &cpu.ThreadArch{CodeSize: src.Header().CodeFootprint}
		core.Bind(src, arch)
		var cycle uint64
		for arch.Committed < n {
			core.Step(cycle)
			cycle++
		}
		return cycle, arch.Committed
	}

	liveCycles, liveCommits := runLive()
	traceCycles, traceCommits := runTrace()
	if liveCycles != traceCycles || liveCommits != traceCommits {
		t.Fatalf("trace replay diverged: live %d/%d vs trace %d/%d cycles/commits",
			liveCycles, liveCommits, traceCycles, traceCommits)
	}
}

func TestNewSourceRejectsEmpty(t *testing.T) {
	if _, err := NewSource(Header{}, nil); !errors.Is(err, ErrEmptyTrace) {
		t.Fatalf("empty source: err = %v, want ErrEmptyTrace", err)
	}
}

// writeTrace marshals instrs with the current writer.
func writeTrace(t *testing.T, instrs []isa.Instruction) []byte {
	t.Helper()
	var buf bytes.Buffer
	w, err := NewWriter(&buf, Header{Name: "r", CodeFootprint: 256, Count: uint64(len(instrs))})
	if err != nil {
		t.Fatal(err)
	}
	for i := range instrs {
		if err := w.Write(&instrs[i]); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func TestReadRecoverCleanStream(t *testing.T) {
	instrs := randomInstrs(5, 3000)
	hdr, got, stats, err := ReadRecover(bytes.NewReader(writeTrace(t, instrs)))
	if err != nil {
		t.Fatal(err)
	}
	if stats.Degraded() {
		t.Fatalf("clean stream reported degraded: %+v", stats)
	}
	if hdr.Count != 3000 || len(got) != 3000 {
		t.Fatalf("count %d records %d", hdr.Count, len(got))
	}
	for i := range instrs {
		if instrs[i] != got[i] {
			t.Fatalf("record %d differs", i)
		}
	}
}

func TestReadRecoverSkipsCorruptFrame(t *testing.T) {
	// 3000 records = 3 frames (1024+1024+952). Corrupt a byte in the
	// middle of the second frame: strict Read must fail, ReadRecover
	// must salvage the first and third frames.
	instrs := randomInstrs(6, 3000)
	good := writeTrace(t, instrs)

	// Walk the first frame to find where the second one starts: the
	// stream header (magic, version, name, footprint, count), then each
	// frame is sync(2) + nrec uvarint + payloadLen uvarint + crc(4) +
	// payload.
	var tmp [binary.MaxVarintLen64]byte
	pos := 4 + 1 + 1 + len("r")
	pos += binary.PutUvarint(tmp[:], 256)
	pos += binary.PutUvarint(tmp[:], 3000)
	if good[pos] != syncA || good[pos+1] != syncB {
		t.Fatalf("first frame sync not at offset %d", pos)
	}
	p := pos + 2
	_, n1 := binary.Uvarint(good[p:])
	p += n1
	payloadLen, n2 := binary.Uvarint(good[p:])
	p += n2 + 4
	second := p + int(payloadLen)
	if good[second] != syncA || good[second+1] != syncB {
		t.Fatalf("second frame sync not at offset %d", second)
	}
	bad := append([]byte{}, good...)
	bad[second+20] ^= 0xff // inside the second frame's payload

	if _, _, err := Read(bytes.NewReader(bad)); err == nil {
		t.Fatal("strict Read accepted a corrupt frame")
	}
	hdr, got, stats, err := ReadRecover(bytes.NewReader(bad))
	if err != nil {
		t.Fatalf("recovery failed: %v", err)
	}
	if hdr.Count != 3000 {
		t.Fatalf("header count %d", hdr.Count)
	}
	if !stats.Degraded() || stats.FramesDropped == 0 || stats.RecordsLost == 0 {
		t.Fatalf("loss not reported: %+v", stats)
	}
	if stats.FramesOK != 2 || stats.RecordsLost != 1024 {
		t.Fatalf("expected to lose exactly the damaged frame: %+v", stats)
	}
	// First frame intact...
	for i := 0; i < 1024; i++ {
		if got[i] != instrs[i] {
			t.Fatalf("recovered record %d differs", i)
		}
	}
	// ...and the third frame follows immediately after.
	for i := 1024; i < len(got); i++ {
		if got[i] != instrs[i+1024] {
			t.Fatalf("post-gap record %d did not resync", i)
		}
	}
}

func TestReadRecoverNothingLeft(t *testing.T) {
	instrs := randomInstrs(7, 100) // single frame
	bad := writeTrace(t, instrs)
	bad[len(bad)-5] ^= 0xff // corrupt the only frame
	if _, _, _, err := ReadRecover(bytes.NewReader(bad)); !errors.Is(err, ErrEmptyTrace) {
		t.Fatalf("total loss: err = %v, want ErrEmptyTrace", err)
	}
}

func TestLoadRecover(t *testing.T) {
	instrs := randomInstrs(8, 2100)
	src, stats, err := LoadRecover(bytes.NewReader(writeTrace(t, instrs)))
	if err != nil || stats.Degraded() {
		t.Fatalf("clean LoadRecover: %v %+v", err, stats)
	}
	if src.Len() != 2100 {
		t.Fatalf("Len %d", src.Len())
	}
}

// writeV1 marshals instrs in the legacy unframed format.
func writeV1(t *testing.T, name string, foot uint64, instrs []isa.Instruction) []byte {
	t.Helper()
	var buf bytes.Buffer
	buf.Write(Magic[:])
	buf.WriteByte(1) // legacy version
	buf.WriteByte(byte(len(name)))
	buf.WriteString(name)
	var tmp [10]byte
	buf.Write(tmp[:binary.PutUvarint(tmp[:], foot)])
	buf.Write(tmp[:binary.PutUvarint(tmp[:], uint64(len(instrs)))])
	for i := range instrs {
		buf.Write(appendRecord(nil, &instrs[i]))
	}
	return buf.Bytes()
}

func TestReadLegacyV1(t *testing.T) {
	instrs := randomInstrs(9, 500)
	raw := writeV1(t, "old", 128, instrs)
	hdr, got, err := Read(bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	if hdr.Name != "old" || hdr.Count != 500 {
		t.Fatalf("v1 header: %+v", hdr)
	}
	for i := range instrs {
		if instrs[i] != got[i] {
			t.Fatalf("v1 record %d differs", i)
		}
	}
	// ReadRecover on v1 behaves strictly (no frames to resync on).
	if _, _, stats, err := ReadRecover(bytes.NewReader(raw)); err != nil || stats.Degraded() {
		t.Fatalf("v1 ReadRecover: %v %+v", err, stats)
	}
	truncated := raw[:len(raw)-3]
	if _, _, _, err := ReadRecover(bytes.NewReader(truncated)); err == nil {
		t.Fatal("truncated v1 accepted by ReadRecover")
	}
}
