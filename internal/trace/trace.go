// Package trace records and replays dynamic instruction streams in a
// compact binary format.
//
// The simulator normally synthesizes instructions (internal/workload),
// but a trace file decouples workload generation from simulation: a
// stream can be captured once (from the synthetic generator here, or
// converted from an external pin/qemu-style trace) and replayed
// bit-identically into any core configuration. The format is
// self-describing, versioned, and varint-packed — a typical record is
// 3-6 bytes.
//
// Layout:
//
//	magic "AMPT" | version u8 | name len u8 | name | codeFootprint uvarint | count uvarint
//	count records:
//	  class u8 | flags u8 | [dep1 uvarint] [dep2 uvarint] [addr uvarint] [takenBit in flags]
package trace

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"

	"ampsched/internal/isa"
)

// Magic identifies a trace stream.
var Magic = [4]byte{'A', 'M', 'P', 'T'}

// Version of the on-disk format.
const Version = 1

// record flags.
const (
	flagDep1  = 1 << 0
	flagDep2  = 1 << 1
	flagAddr  = 1 << 2
	flagTaken = 1 << 3
)

// Header describes a trace.
type Header struct {
	Name          string
	CodeFootprint uint64
	Count         uint64
}

// Writer streams instructions to an io.Writer.
type Writer struct {
	w     *bufio.Writer
	count uint64
	max   uint64
	buf   [2 + 3*binary.MaxVarintLen64]byte
}

// NewWriter writes the header for a trace of exactly hdr.Count
// instructions and returns a Writer. Close must be called to flush.
func NewWriter(w io.Writer, hdr Header) (*Writer, error) {
	if hdr.Count == 0 {
		return nil, fmt.Errorf("trace: zero-length trace")
	}
	if len(hdr.Name) > 255 {
		return nil, fmt.Errorf("trace: name too long (%d bytes)", len(hdr.Name))
	}
	if hdr.CodeFootprint == 0 {
		return nil, fmt.Errorf("trace: zero code footprint")
	}
	bw := bufio.NewWriter(w)
	if _, err := bw.Write(Magic[:]); err != nil {
		return nil, err
	}
	if err := bw.WriteByte(Version); err != nil {
		return nil, err
	}
	if err := bw.WriteByte(byte(len(hdr.Name))); err != nil {
		return nil, err
	}
	if _, err := bw.WriteString(hdr.Name); err != nil {
		return nil, err
	}
	var tmp [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(tmp[:], hdr.CodeFootprint)
	if _, err := bw.Write(tmp[:n]); err != nil {
		return nil, err
	}
	n = binary.PutUvarint(tmp[:], hdr.Count)
	if _, err := bw.Write(tmp[:n]); err != nil {
		return nil, err
	}
	return &Writer{w: bw, max: hdr.Count}, nil
}

// Write appends one instruction. It errors once the declared count is
// exceeded.
func (t *Writer) Write(in *isa.Instruction) error {
	if t.count >= t.max {
		return fmt.Errorf("trace: writing beyond the declared count %d", t.max)
	}
	var flags byte
	if in.Dep1 > 0 {
		flags |= flagDep1
	}
	if in.Dep2 > 0 {
		flags |= flagDep2
	}
	if in.Addr != 0 {
		flags |= flagAddr
	}
	if in.Taken {
		flags |= flagTaken
	}
	b := t.buf[:0]
	b = append(b, byte(in.Class), flags)
	var tmp [binary.MaxVarintLen64]byte
	if flags&flagDep1 != 0 {
		n := binary.PutUvarint(tmp[:], uint64(in.Dep1))
		b = append(b, tmp[:n]...)
	}
	if flags&flagDep2 != 0 {
		n := binary.PutUvarint(tmp[:], uint64(in.Dep2))
		b = append(b, tmp[:n]...)
	}
	if flags&flagAddr != 0 {
		n := binary.PutUvarint(tmp[:], in.Addr)
		b = append(b, tmp[:n]...)
	}
	if _, err := t.w.Write(b); err != nil {
		return err
	}
	t.count++
	return nil
}

// Close flushes; it errors if fewer instructions than declared were
// written.
func (t *Writer) Close() error {
	if t.count != t.max {
		return fmt.Errorf("trace: wrote %d of %d declared instructions", t.count, t.max)
	}
	return t.w.Flush()
}

// Read loads a whole trace into memory.
func Read(r io.Reader) (Header, []isa.Instruction, error) {
	br := bufio.NewReader(r)
	var magic [4]byte
	if _, err := io.ReadFull(br, magic[:]); err != nil {
		return Header{}, nil, fmt.Errorf("trace: reading magic: %w", err)
	}
	if magic != Magic {
		return Header{}, nil, fmt.Errorf("trace: bad magic %q", magic[:])
	}
	ver, err := br.ReadByte()
	if err != nil {
		return Header{}, nil, err
	}
	if ver != Version {
		return Header{}, nil, fmt.Errorf("trace: unsupported version %d", ver)
	}
	nameLen, err := br.ReadByte()
	if err != nil {
		return Header{}, nil, err
	}
	name := make([]byte, nameLen)
	if _, err := io.ReadFull(br, name); err != nil {
		return Header{}, nil, err
	}
	foot, err := binary.ReadUvarint(br)
	if err != nil {
		return Header{}, nil, err
	}
	if foot == 0 {
		return Header{}, nil, fmt.Errorf("trace: zero code footprint")
	}
	count, err := binary.ReadUvarint(br)
	if err != nil {
		return Header{}, nil, err
	}
	if count == 0 {
		return Header{}, nil, fmt.Errorf("trace: zero-length trace")
	}
	const sanityMax = 1 << 32
	if count > sanityMax {
		return Header{}, nil, fmt.Errorf("trace: implausible count %d", count)
	}

	hdr := Header{Name: string(name), CodeFootprint: foot, Count: count}
	// Never trust the declared count for allocation: a forged header
	// could demand gigabytes. Grow while the stream actually delivers
	// records; a short stream fails with an EOF error below.
	capHint := count
	if capHint > 1<<20 {
		capHint = 1 << 20
	}
	instrs := make([]isa.Instruction, 0, capHint)
	for i := uint64(0); i < count; i++ {
		instrs = append(instrs, isa.Instruction{})
		in := &instrs[len(instrs)-1]
		cls, err := br.ReadByte()
		if err != nil {
			return Header{}, nil, fmt.Errorf("trace: record %d: %w", i, err)
		}
		if cls >= byte(isa.NumClasses) {
			return Header{}, nil, fmt.Errorf("trace: record %d: invalid class %d", i, cls)
		}
		flags, err := br.ReadByte()
		if err != nil {
			return Header{}, nil, fmt.Errorf("trace: record %d: %w", i, err)
		}
		in.Class = isa.Class(cls)
		in.Taken = flags&flagTaken != 0
		if flags&flagDep1 != 0 {
			v, err := binary.ReadUvarint(br)
			if err != nil {
				return Header{}, nil, fmt.Errorf("trace: record %d dep1: %w", i, err)
			}
			if v > 1<<31 {
				return Header{}, nil, fmt.Errorf("trace: record %d: dep1 %d overflows", i, v)
			}
			in.Dep1 = int32(v)
		}
		if flags&flagDep2 != 0 {
			v, err := binary.ReadUvarint(br)
			if err != nil {
				return Header{}, nil, fmt.Errorf("trace: record %d dep2: %w", i, err)
			}
			if v > 1<<31 {
				return Header{}, nil, fmt.Errorf("trace: record %d: dep2 %d overflows", i, v)
			}
			in.Dep2 = int32(v)
		}
		if flags&flagAddr != 0 {
			v, err := binary.ReadUvarint(br)
			if err != nil {
				return Header{}, nil, fmt.Errorf("trace: record %d addr: %w", i, err)
			}
			in.Addr = v
		}
	}
	return hdr, instrs, nil
}

// Source replays an in-memory trace as a cpu.InstrSource, wrapping
// around at the end (runs are bounded by instruction budgets, not
// trace length).
type Source struct {
	hdr     Header
	instrs  []isa.Instruction
	pos     int
	emitted uint64
}

// NewSource wraps a loaded trace.
func NewSource(hdr Header, instrs []isa.Instruction) *Source {
	if len(instrs) == 0 {
		panic("trace: empty source")
	}
	return &Source{hdr: hdr, instrs: instrs}
}

// Load reads a trace from r and returns a replay source.
func Load(r io.Reader) (*Source, error) {
	hdr, instrs, err := Read(r)
	if err != nil {
		return nil, err
	}
	return NewSource(hdr, instrs), nil
}

// Header returns the trace metadata.
func (s *Source) Header() Header { return s.hdr }

// Emitted returns the number of instructions replayed so far.
func (s *Source) Emitted() uint64 { return s.emitted }

// Next implements cpu.InstrSource.
func (s *Source) Next(in *isa.Instruction) {
	*in = s.instrs[s.pos]
	s.pos++
	if s.pos == len(s.instrs) {
		s.pos = 0
	}
	s.emitted++
}

// RecordBenchmark captures n instructions of a workload generator into
// w: the bridge from the synthetic suite to the trace world.
func RecordBenchmark(w io.Writer, name string, codeFootprint uint64, n uint64,
	next func(*isa.Instruction)) error {
	tw, err := NewWriter(w, Header{Name: name, CodeFootprint: codeFootprint, Count: n})
	if err != nil {
		return err
	}
	var in isa.Instruction
	for i := uint64(0); i < n; i++ {
		next(&in)
		if err := tw.Write(&in); err != nil {
			return err
		}
	}
	return tw.Close()
}
