// Package trace records and replays dynamic instruction streams in a
// compact binary format.
//
// The simulator normally synthesizes instructions (internal/workload),
// but a trace file decouples workload generation from simulation: a
// stream can be captured once (from the synthetic generator here, or
// converted from an external pin/qemu-style trace) and replayed
// bit-identically into any core configuration. The format is
// self-describing, versioned, and varint-packed — a typical record is
// 3-6 bytes.
//
// Version 2 layout:
//
//	magic "AMPT" | version u8 | name len u8 | name | codeFootprint uvarint | count uvarint
//	frames until count records are delivered:
//	  sync 0xF7 0x3C | nrec uvarint | payloadLen uvarint | crc32c u32 LE | payload
//	payload is nrec packed records:
//	  class u8 | flags u8 | [dep1 uvarint] [dep2 uvarint] [addr uvarint] [takenBit in flags]
//
// Each frame (at most 1024 records) carries a CRC32-Castagnoli over
// its payload, so corruption is detected at frame granularity: the
// strict Read rejects a damaged stream outright, while ReadRecover
// skips the damaged frame, scans forward for the next sync marker,
// and returns every intact record with loss statistics — capture
// hardware glitches cost a window of records, not the whole trace.
// Version 1 streams (unframed records, no checksums) remain readable.
package trace

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"

	"ampsched/internal/isa"
)

// Magic identifies a trace stream.
var Magic = [4]byte{'A', 'M', 'P', 'T'}

// Version of the on-disk format written by NewWriter.
const Version = 2

// versionLegacy is the unframed, checksum-free v1 format; still
// readable for traces captured by older builds.
const versionLegacy = 1

// Frame geometry.
const (
	syncA = 0xF7
	syncB = 0x3C
	// FrameRecords is the maximum records per frame — the corruption
	// blast radius of ReadRecover.
	FrameRecords = 1024
	// maxFramePayload bounds a declared payload length; larger values
	// mark a forged or corrupted frame header. Generous: the widest
	// record is 2 + 3 varints ≤ 32 bytes.
	maxFramePayload = FrameRecords * 32
)

// crcTable is the Castagnoli polynomial (hardware-accelerated on
// amd64/arm64).
var crcTable = crc32.MakeTable(crc32.Castagnoli)

// ErrEmptyTrace is returned when a trace holds no replayable records.
var ErrEmptyTrace = errors.New("trace: empty source")

// record flags.
const (
	flagDep1  = 1 << 0
	flagDep2  = 1 << 1
	flagAddr  = 1 << 2
	flagTaken = 1 << 3
)

// Header describes a trace.
type Header struct {
	Name          string
	CodeFootprint uint64
	Count         uint64
}

// Writer streams instructions to an io.Writer, framing them with
// CRC32C checksums.
type Writer struct {
	w         *bufio.Writer
	count     uint64
	max       uint64
	frame     []byte // packed records of the open frame
	frameRecs int
}

// NewWriter writes the header for a trace of exactly hdr.Count
// instructions and returns a Writer. Close must be called to flush.
func NewWriter(w io.Writer, hdr Header) (*Writer, error) {
	if hdr.Count == 0 {
		return nil, fmt.Errorf("trace: zero-length trace")
	}
	if len(hdr.Name) > 255 {
		return nil, fmt.Errorf("trace: name too long (%d bytes)", len(hdr.Name))
	}
	if hdr.CodeFootprint == 0 {
		return nil, fmt.Errorf("trace: zero code footprint")
	}
	bw := bufio.NewWriter(w)
	if _, err := bw.Write(Magic[:]); err != nil {
		return nil, err
	}
	if err := bw.WriteByte(Version); err != nil {
		return nil, err
	}
	if err := bw.WriteByte(byte(len(hdr.Name))); err != nil {
		return nil, err
	}
	if _, err := bw.WriteString(hdr.Name); err != nil {
		return nil, err
	}
	var tmp [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(tmp[:], hdr.CodeFootprint)
	if _, err := bw.Write(tmp[:n]); err != nil {
		return nil, err
	}
	n = binary.PutUvarint(tmp[:], hdr.Count)
	if _, err := bw.Write(tmp[:n]); err != nil {
		return nil, err
	}
	return &Writer{w: bw, max: hdr.Count}, nil
}

// appendRecord packs one instruction onto b.
func appendRecord(b []byte, in *isa.Instruction) []byte {
	var flags byte
	if in.Dep1 > 0 {
		flags |= flagDep1
	}
	if in.Dep2 > 0 {
		flags |= flagDep2
	}
	if in.Addr != 0 {
		flags |= flagAddr
	}
	if in.Taken {
		flags |= flagTaken
	}
	b = append(b, byte(in.Class), flags)
	var tmp [binary.MaxVarintLen64]byte
	if flags&flagDep1 != 0 {
		n := binary.PutUvarint(tmp[:], uint64(in.Dep1))
		b = append(b, tmp[:n]...)
	}
	if flags&flagDep2 != 0 {
		n := binary.PutUvarint(tmp[:], uint64(in.Dep2))
		b = append(b, tmp[:n]...)
	}
	if flags&flagAddr != 0 {
		n := binary.PutUvarint(tmp[:], in.Addr)
		b = append(b, tmp[:n]...)
	}
	return b
}

// Write appends one instruction. It errors once the declared count is
// exceeded.
func (t *Writer) Write(in *isa.Instruction) error {
	if t.count >= t.max {
		return fmt.Errorf("trace: writing beyond the declared count %d", t.max)
	}
	t.frame = appendRecord(t.frame, in)
	t.frameRecs++
	t.count++
	if t.frameRecs >= FrameRecords {
		return t.flushFrame()
	}
	return nil
}

// flushFrame emits the open frame: sync marker, record count, payload
// length, CRC32C, payload.
func (t *Writer) flushFrame() error {
	if t.frameRecs == 0 {
		return nil
	}
	var hdr [2 + 2*binary.MaxVarintLen64 + 4]byte
	hdr[0], hdr[1] = syncA, syncB
	n := 2
	n += binary.PutUvarint(hdr[n:], uint64(t.frameRecs))
	n += binary.PutUvarint(hdr[n:], uint64(len(t.frame)))
	binary.LittleEndian.PutUint32(hdr[n:], crc32.Checksum(t.frame, crcTable))
	n += 4
	if _, err := t.w.Write(hdr[:n]); err != nil {
		return err
	}
	if _, err := t.w.Write(t.frame); err != nil {
		return err
	}
	t.frame = t.frame[:0]
	t.frameRecs = 0
	return nil
}

// Close flushes; it errors if fewer instructions than declared were
// written.
func (t *Writer) Close() error {
	if t.count != t.max {
		return fmt.Errorf("trace: wrote %d of %d declared instructions", t.count, t.max)
	}
	if err := t.flushFrame(); err != nil {
		return err
	}
	return t.w.Flush()
}

// readHeader parses the stream header and returns it with the format
// version.
func readHeader(br *bufio.Reader) (Header, byte, error) {
	var magic [4]byte
	if _, err := io.ReadFull(br, magic[:]); err != nil {
		return Header{}, 0, fmt.Errorf("trace: reading magic: %w", err)
	}
	if magic != Magic {
		return Header{}, 0, fmt.Errorf("trace: bad magic %q", magic[:])
	}
	ver, err := br.ReadByte()
	if err != nil {
		return Header{}, 0, err
	}
	if ver != Version && ver != versionLegacy {
		return Header{}, 0, fmt.Errorf("trace: unsupported version %d", ver)
	}
	nameLen, err := br.ReadByte()
	if err != nil {
		return Header{}, 0, err
	}
	name := make([]byte, nameLen)
	if _, err := io.ReadFull(br, name); err != nil {
		return Header{}, 0, err
	}
	foot, err := binary.ReadUvarint(br)
	if err != nil {
		return Header{}, 0, err
	}
	if foot == 0 {
		return Header{}, 0, fmt.Errorf("trace: zero code footprint")
	}
	count, err := binary.ReadUvarint(br)
	if err != nil {
		return Header{}, 0, err
	}
	if count == 0 {
		return Header{}, 0, fmt.Errorf("trace: zero-length trace")
	}
	const sanityMax = 1 << 32
	if count > sanityMax {
		return Header{}, 0, fmt.Errorf("trace: implausible count %d", count)
	}
	return Header{Name: string(name), CodeFootprint: foot, Count: count}, ver, nil
}

// capHint bounds the initial allocation for a declared record count:
// never trust a forged header to demand gigabytes up front.
func capHint(count uint64) uint64 {
	if count > 1<<20 {
		return 1 << 20
	}
	return count
}

// decodeRecord unpacks one record from data, returning the bytes
// consumed.
func decodeRecord(data []byte, in *isa.Instruction) (int, error) {
	if len(data) < 2 {
		return 0, io.ErrUnexpectedEOF
	}
	cls := data[0]
	if cls >= byte(isa.NumClasses) {
		return 0, fmt.Errorf("trace: invalid class %d", cls)
	}
	flags := data[1]
	*in = isa.Instruction{Class: isa.Class(cls), Taken: flags&flagTaken != 0}
	pos := 2
	if flags&flagDep1 != 0 {
		v, n := binary.Uvarint(data[pos:])
		if n <= 0 {
			return 0, fmt.Errorf("trace: dep1: truncated varint")
		}
		if v > 1<<31 {
			return 0, fmt.Errorf("trace: dep1 %d overflows", v)
		}
		in.Dep1 = int32(v)
		pos += n
	}
	if flags&flagDep2 != 0 {
		v, n := binary.Uvarint(data[pos:])
		if n <= 0 {
			return 0, fmt.Errorf("trace: dep2: truncated varint")
		}
		if v > 1<<31 {
			return 0, fmt.Errorf("trace: dep2 %d overflows", v)
		}
		in.Dep2 = int32(v)
		pos += n
	}
	if flags&flagAddr != 0 {
		v, n := binary.Uvarint(data[pos:])
		if n <= 0 {
			return 0, fmt.Errorf("trace: addr: truncated varint")
		}
		in.Addr = v
		pos += n
	}
	return pos, nil
}

// decodeFramePayload appends exactly nrec records from payload.
func decodeFramePayload(instrs []isa.Instruction, payload []byte, nrec uint64) ([]isa.Instruction, error) {
	pos := 0
	for i := uint64(0); i < nrec; i++ {
		var in isa.Instruction
		n, err := decodeRecord(payload[pos:], &in)
		if err != nil {
			return instrs, fmt.Errorf("trace: frame record %d: %w", i, err)
		}
		pos += n
		instrs = append(instrs, in)
	}
	if pos != len(payload) {
		return instrs, fmt.Errorf("trace: frame has %d trailing bytes", len(payload)-pos)
	}
	return instrs, nil
}

// readFrameHeader parses the fixed frame prologue after the caller has
// consumed the sync marker.
func readFrameHeader(br *bufio.Reader) (nrec, payloadLen uint64, crc uint32, err error) {
	nrec, err = binary.ReadUvarint(br)
	if err != nil {
		return 0, 0, 0, err
	}
	if nrec == 0 || nrec > FrameRecords {
		return 0, 0, 0, fmt.Errorf("trace: implausible frame record count %d", nrec)
	}
	payloadLen, err = binary.ReadUvarint(br)
	if err != nil {
		return 0, 0, 0, err
	}
	if payloadLen < 2*nrec || payloadLen > maxFramePayload {
		return 0, 0, 0, fmt.Errorf("trace: implausible frame payload length %d", payloadLen)
	}
	var crcBuf [4]byte
	if _, err := io.ReadFull(br, crcBuf[:]); err != nil {
		return 0, 0, 0, err
	}
	return nrec, payloadLen, binary.LittleEndian.Uint32(crcBuf[:]), nil
}

// Read loads a whole trace into memory, verifying every frame
// checksum. Any corruption is a fatal error; use ReadRecover to skip
// damaged frames instead.
func Read(r io.Reader) (Header, []isa.Instruction, error) {
	br := bufio.NewReader(r)
	hdr, ver, err := readHeader(br)
	if err != nil {
		return Header{}, nil, err
	}
	if ver == versionLegacy {
		instrs, err := readBodyV1(br, hdr.Count)
		if err != nil {
			return Header{}, nil, err
		}
		return hdr, instrs, nil
	}

	instrs := make([]isa.Instruction, 0, capHint(hdr.Count))
	for uint64(len(instrs)) < hdr.Count {
		var sync [2]byte
		if _, err := io.ReadFull(br, sync[:]); err != nil {
			return Header{}, nil, fmt.Errorf("trace: frame sync: %w", err)
		}
		if sync[0] != syncA || sync[1] != syncB {
			return Header{}, nil, fmt.Errorf("trace: bad frame sync %x%x", sync[0], sync[1])
		}
		nrec, payloadLen, crc, err := readFrameHeader(br)
		if err != nil {
			return Header{}, nil, err
		}
		payload := make([]byte, payloadLen)
		if _, err := io.ReadFull(br, payload); err != nil {
			return Header{}, nil, fmt.Errorf("trace: frame payload: %w", err)
		}
		if got := crc32.Checksum(payload, crcTable); got != crc {
			return Header{}, nil, fmt.Errorf("trace: frame checksum mismatch %08x != %08x", got, crc)
		}
		if instrs, err = decodeFramePayload(instrs, payload, nrec); err != nil {
			return Header{}, nil, err
		}
	}
	if uint64(len(instrs)) != hdr.Count {
		return Header{}, nil, fmt.Errorf("trace: frames deliver %d of %d declared records",
			len(instrs), hdr.Count)
	}
	return hdr, instrs, nil
}

// readBodyV1 parses the unframed v1 record stream.
func readBodyV1(br *bufio.Reader, count uint64) ([]isa.Instruction, error) {
	instrs := make([]isa.Instruction, 0, capHint(count))
	for i := uint64(0); i < count; i++ {
		instrs = append(instrs, isa.Instruction{})
		in := &instrs[len(instrs)-1]
		cls, err := br.ReadByte()
		if err != nil {
			return nil, fmt.Errorf("trace: record %d: %w", i, err)
		}
		if cls >= byte(isa.NumClasses) {
			return nil, fmt.Errorf("trace: record %d: invalid class %d", i, cls)
		}
		flags, err := br.ReadByte()
		if err != nil {
			return nil, fmt.Errorf("trace: record %d: %w", i, err)
		}
		in.Class = isa.Class(cls)
		in.Taken = flags&flagTaken != 0
		if flags&flagDep1 != 0 {
			v, err := binary.ReadUvarint(br)
			if err != nil {
				return nil, fmt.Errorf("trace: record %d dep1: %w", i, err)
			}
			if v > 1<<31 {
				return nil, fmt.Errorf("trace: record %d: dep1 %d overflows", i, v)
			}
			in.Dep1 = int32(v)
		}
		if flags&flagDep2 != 0 {
			v, err := binary.ReadUvarint(br)
			if err != nil {
				return nil, fmt.Errorf("trace: record %d dep2: %w", i, err)
			}
			if v > 1<<31 {
				return nil, fmt.Errorf("trace: record %d: dep2 %d overflows", i, v)
			}
			in.Dep2 = int32(v)
		}
		if flags&flagAddr != 0 {
			v, err := binary.ReadUvarint(br)
			if err != nil {
				return nil, fmt.Errorf("trace: record %d addr: %w", i, err)
			}
			in.Addr = v
		}
	}
	return instrs, nil
}

// RecoverStats reports what ReadRecover salvaged and lost.
type RecoverStats struct {
	FramesOK      uint64
	FramesDropped uint64
	BytesSkipped  uint64
	// RecordsLost is the shortfall against the declared count.
	RecordsLost uint64
}

// Degraded reports whether anything was lost.
func (s RecoverStats) Degraded() bool {
	return s.FramesDropped > 0 || s.BytesSkipped > 0 || s.RecordsLost > 0
}

// ReadRecover loads a trace, skipping damaged v2 frames instead of
// failing: on a checksum or structure error it scans forward for the
// next sync marker and resumes there. It errors only when the header
// is unreadable or no intact frame survives. Legacy v1 streams have
// no frame structure to resync on, so they are read strictly.
func ReadRecover(r io.Reader) (Header, []isa.Instruction, RecoverStats, error) {
	br := bufio.NewReader(r)
	hdr, ver, err := readHeader(br)
	if err != nil {
		return Header{}, nil, RecoverStats{}, err
	}
	if ver == versionLegacy {
		instrs, err := readBodyV1(br, hdr.Count)
		if err != nil {
			return Header{}, nil, RecoverStats{}, err
		}
		return hdr, instrs, RecoverStats{}, nil
	}

	body, err := io.ReadAll(br)
	if err != nil {
		return Header{}, nil, RecoverStats{}, fmt.Errorf("trace: reading body: %w", err)
	}
	var stats RecoverStats
	instrs := make([]isa.Instruction, 0, capHint(hdr.Count))
	pos := 0
	for pos < len(body) && uint64(len(instrs)) < hdr.Count {
		if body[pos] != syncA || pos+1 >= len(body) || body[pos+1] != syncB {
			pos++
			stats.BytesSkipped++
			continue
		}
		got, consumed, err := parseFrame(body[pos:])
		if err != nil {
			// Corrupted frame: resync just past the marker so an
			// intact frame hiding in the damaged span is still found.
			stats.FramesDropped++
			pos += 2
			stats.BytesSkipped += 2
			continue
		}
		instrs = append(instrs, got...)
		stats.FramesOK++
		pos += consumed
	}
	stats.RecordsLost = hdr.Count - uint64(len(instrs))
	if len(instrs) == 0 {
		return Header{}, nil, stats, fmt.Errorf("trace: no intact frames: %w", ErrEmptyTrace)
	}
	return hdr, instrs, stats, nil
}

// parseFrame decodes one frame starting at the sync marker in data,
// returning its records and total encoded size.
func parseFrame(data []byte) ([]isa.Instruction, int, error) {
	pos := 2 // past sync
	nrec, n := binary.Uvarint(data[pos:])
	if n <= 0 || nrec == 0 || nrec > FrameRecords {
		return nil, 0, fmt.Errorf("trace: implausible frame record count")
	}
	pos += n
	payloadLen, n := binary.Uvarint(data[pos:])
	if n <= 0 || payloadLen < 2*nrec || payloadLen > maxFramePayload {
		return nil, 0, fmt.Errorf("trace: implausible frame payload length")
	}
	pos += n
	if pos+4+int(payloadLen) > len(data) {
		return nil, 0, io.ErrUnexpectedEOF
	}
	crc := binary.LittleEndian.Uint32(data[pos:])
	pos += 4
	payload := data[pos : pos+int(payloadLen)]
	if crc32.Checksum(payload, crcTable) != crc {
		return nil, 0, fmt.Errorf("trace: frame checksum mismatch")
	}
	instrs, err := decodeFramePayload(nil, payload, nrec)
	if err != nil {
		return nil, 0, err
	}
	return instrs, pos + int(payloadLen), nil
}

// Source replays an in-memory trace as a cpu.InstrSource, wrapping
// around at the end (runs are bounded by instruction budgets, not
// trace length).
type Source struct {
	hdr     Header
	instrs  []isa.Instruction
	pos     int
	emitted uint64
}

// NewSource wraps a loaded trace. It returns ErrEmptyTrace when there
// are no records to replay.
func NewSource(hdr Header, instrs []isa.Instruction) (*Source, error) {
	if len(instrs) == 0 {
		return nil, ErrEmptyTrace
	}
	return &Source{hdr: hdr, instrs: instrs}, nil
}

// Load reads a trace from r and returns a replay source.
func Load(r io.Reader) (*Source, error) {
	hdr, instrs, err := Read(r)
	if err != nil {
		return nil, err
	}
	return NewSource(hdr, instrs)
}

// LoadRecover is Load with skip-and-resync recovery: damaged frames
// are dropped and the surviving records replay, alongside the loss
// statistics. It fails only when nothing survives.
func LoadRecover(r io.Reader) (*Source, RecoverStats, error) {
	hdr, instrs, stats, err := ReadRecover(r)
	if err != nil {
		return nil, stats, err
	}
	src, err := NewSource(hdr, instrs)
	return src, stats, err
}

// Header returns the trace metadata.
func (s *Source) Header() Header { return s.hdr }

// Emitted returns the number of instructions replayed so far.
func (s *Source) Emitted() uint64 { return s.emitted }

// Len returns the number of replayable records (may be below
// Header().Count for a recovered trace).
func (s *Source) Len() int { return len(s.instrs) }

// Next implements cpu.InstrSource.
func (s *Source) Next(in *isa.Instruction) {
	*in = s.instrs[s.pos]
	s.pos++
	if s.pos == len(s.instrs) {
		s.pos = 0
	}
	s.emitted++
}

// RecordBenchmark captures n instructions of a workload generator into
// w: the bridge from the synthetic suite to the trace world.
func RecordBenchmark(w io.Writer, name string, codeFootprint uint64, n uint64,
	next func(*isa.Instruction)) error {
	tw, err := NewWriter(w, Header{Name: name, CodeFootprint: codeFootprint, Count: n})
	if err != nil {
		return err
	}
	var in isa.Instruction
	for i := uint64(0); i < n; i++ {
		next(&in)
		if err := tw.Write(&in); err != nil {
			return err
		}
	}
	return tw.Close()
}
