package trace

import (
	"bytes"
	"testing"

	"ampsched/internal/isa"
)

// FuzzRead hardens the trace parser against arbitrary input: it must
// either return an error or a structurally valid trace, never panic.
func FuzzRead(f *testing.F) {
	// Seed with a valid trace and a few mutations.
	var buf bytes.Buffer
	w, err := NewWriter(&buf, Header{Name: "seed", CodeFootprint: 128, Count: 8})
	if err != nil {
		f.Fatal(err)
	}
	for i := 0; i < 8; i++ {
		in := isa.Instruction{Class: isa.Class(i % int(isa.NumClasses)), Dep1: int32(i), Addr: uint64(i * 64)}
		if err := w.Write(&in); err != nil {
			f.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		f.Fatal(err)
	}
	good := buf.Bytes()
	f.Add(good)
	f.Add(good[:len(good)/2])
	f.Add([]byte{})
	f.Add([]byte("AMPT"))
	mutated := append([]byte{}, good...)
	mutated[7] ^= 0xff
	f.Add(mutated)

	f.Fuzz(func(t *testing.T, data []byte) {
		hdr, instrs, err := Read(bytes.NewReader(data))
		if err != nil {
			return
		}
		if hdr.Count != uint64(len(instrs)) {
			t.Fatalf("header count %d but %d records", hdr.Count, len(instrs))
		}
		if hdr.CodeFootprint == 0 || hdr.Count == 0 {
			t.Fatal("accepted degenerate header")
		}
		for i := range instrs {
			if instrs[i].Class >= isa.NumClasses {
				t.Fatalf("record %d has invalid class", i)
			}
			if instrs[i].Dep1 < 0 || instrs[i].Dep2 < 0 {
				t.Fatalf("record %d has negative dependency", i)
			}
		}
	})
}
