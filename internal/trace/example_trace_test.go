package trace_test

import (
	"bytes"
	"fmt"

	"ampsched/internal/trace"
	"ampsched/internal/workload"
)

// Example records a workload into the binary trace format and replays
// it — the bridge between the synthetic suite and external traces.
func Example() {
	b := workload.MustByName("pi")
	gen := workload.NewGenerator(b, 7, 0)

	var buf bytes.Buffer
	if err := trace.RecordBenchmark(&buf, b.Name, b.EffectiveCodeFootprint(), 50_000, gen.Next); err != nil {
		panic(err)
	}
	src, err := trace.Load(&buf)
	if err != nil {
		panic(err)
	}
	fmt.Printf("trace %q: %d instructions, compact: %v\n",
		src.Header().Name, src.Header().Count, buf.Len() < 50_000*8)
	// Output:
	// trace "pi": 50000 instructions, compact: true
}
