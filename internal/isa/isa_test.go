package isa

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestClassPredicatesPartition(t *testing.T) {
	for c := Class(0); c < NumClasses; c++ {
		n := 0
		if c.IsInt() {
			n++
		}
		if c.IsFP() {
			n++
		}
		if c.IsMem() {
			n++
		}
		if c == Branch {
			n++
		}
		if n != 1 {
			t.Errorf("class %s matches %d predicate groups, want exactly 1", c, n)
		}
	}
}

func TestIntClasses(t *testing.T) {
	for _, c := range []Class{IntALU, IntMul, IntDiv} {
		if !c.IsInt() || c.IsFP() {
			t.Errorf("%s misclassified", c)
		}
	}
}

func TestFPClasses(t *testing.T) {
	for _, c := range []Class{FPALU, FPMul, FPDiv} {
		if !c.IsFP() || c.IsInt() {
			t.Errorf("%s misclassified", c)
		}
	}
}

func TestMemClasses(t *testing.T) {
	for _, c := range []Class{Load, Store} {
		if !c.IsMem() || c.IsInt() || c.IsFP() {
			t.Errorf("%s misclassified", c)
		}
	}
}

func TestUsesIntPipe(t *testing.T) {
	intPipe := []Class{IntALU, IntMul, IntDiv, Load, Store, Branch}
	for _, c := range intPipe {
		if !c.UsesIntPipe() {
			t.Errorf("%s should use int pipe", c)
		}
	}
	for _, c := range []Class{FPALU, FPMul, FPDiv} {
		if c.UsesIntPipe() {
			t.Errorf("%s should not use int pipe", c)
		}
	}
}

func TestClassString(t *testing.T) {
	if IntALU.String() != "IntALU" || FPDiv.String() != "FPDiv" {
		t.Fatalf("unexpected names: %s %s", IntALU, FPDiv)
	}
	if !strings.Contains(Class(200).String(), "200") {
		t.Fatalf("out-of-range class string: %s", Class(200))
	}
}

func TestMixNormalize(t *testing.T) {
	m := Mix{2, 0, 0, 0, 0, 0, 1, 1, 0}
	m.Normalize()
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	if m[IntALU] != 0.5 || m[Load] != 0.25 || m[Store] != 0.25 {
		t.Fatalf("bad normalization: %v", m)
	}
}

func TestMixNormalizeZero(t *testing.T) {
	var m Mix
	m.Normalize()
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	if m[IntALU] != 1 {
		t.Fatalf("zero mix did not default to IntALU: %v", m)
	}
}

func TestMixFractions(t *testing.T) {
	m := Mix{0.2, 0.1, 0.0, 0.15, 0.1, 0.05, 0.2, 0.1, 0.1}
	approx := func(got, want float64) bool { return got > want-1e-9 && got < want+1e-9 }
	if got := m.IntFrac(); !approx(got, 0.3) {
		t.Errorf("IntFrac = %g", got)
	}
	if got := m.FPFrac(); !approx(got, 0.3) {
		t.Errorf("FPFrac = %g", got)
	}
	if got := m.MemFrac(); !approx(got, 0.3) {
		t.Errorf("MemFrac = %g", got)
	}
}

func TestMixValidateErrors(t *testing.T) {
	m := Mix{-0.1, 1.1, 0, 0, 0, 0, 0, 0, 0}
	if err := m.Validate(); err == nil {
		t.Fatal("negative entry accepted")
	}
	m2 := Mix{0.5, 0, 0, 0, 0, 0, 0, 0, 0}
	if err := m2.Validate(); err == nil {
		t.Fatal("non-normalized mix accepted")
	}
}

func TestInstructionReset(t *testing.T) {
	in := Instruction{Addr: 42, Dep1: 3, Dep2: 9, Class: FPMul, Taken: true}
	in.Reset()
	if in != (Instruction{}) {
		t.Fatalf("Reset left state: %+v", in)
	}
}

func TestQuickNormalizeAlwaysValid(t *testing.T) {
	f := func(a, b, c, d, e, g, h, i, j float64) bool {
		abs := func(x float64) float64 {
			if x < 0 {
				return -x
			}
			return x
		}
		m := Mix{abs(a), abs(b), abs(c), abs(d), abs(e), abs(g), abs(h), abs(i), abs(j)}
		// Guard against non-finite quick inputs.
		for _, v := range m {
			if v != v || v > 1e300 {
				return true
			}
		}
		m.Normalize()
		return m.Validate() == nil
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestQuickFractionsSumBelowOne(t *testing.T) {
	f := func(a, b, c, d, e, g, h, i, j uint16) bool {
		m := Mix{float64(a), float64(b), float64(c), float64(d), float64(e),
			float64(g), float64(h), float64(i), float64(j)}
		m.Normalize()
		s := m.IntFrac() + m.FPFrac() + m.MemFrac() + m[Branch]
		return s > 0.999 && s < 1.001
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
