// Package isa defines the dynamic-instruction vocabulary shared by the
// workload generators, the core pipeline model and the schedulers.
//
// The simulator is trace driven: a workload generator emits a stream
// of Instruction values that carry everything the microarchitecture
// model needs — the operation class (which selects the functional
// unit, latency and energy), the dependency distances to the producer
// instructions, the effective address for memory operations and the
// outcome for branches. This mirrors how microarchitecture-independent
// workload characterization is done in the paper: the scheduler only
// ever observes the committed composition of this stream.
package isa

import "fmt"

// Class identifies the operation class of a dynamic instruction.
type Class uint8

// Operation classes. The split mirrors the paper's Table II: three
// integer classes, three floating-point classes, the two memory
// classes and branches.
const (
	IntALU Class = iota // integer add/sub/logic/shift/compare
	IntMul              // integer multiply
	IntDiv              // integer divide / modulo
	FPALU               // floating-point add/sub/compare/convert
	FPMul               // floating-point multiply
	FPDiv               // floating-point divide / sqrt
	Load                // memory read
	Store               // memory write
	Branch              // conditional/unconditional control transfer
	NumClasses
)

var classNames = [NumClasses]string{
	"IntALU", "IntMul", "IntDiv", "FPALU", "FPMul", "FPDiv",
	"Load", "Store", "Branch",
}

// String returns the conventional mnemonic for the class.
func (c Class) String() string {
	if int(c) < len(classNames) {
		return classNames[c]
	}
	return fmt.Sprintf("Class(%d)", uint8(c))
}

// IsInt reports whether the class counts as an "INT instruction" for
// the paper's %INT monitors. Loads, stores and branches are counted as
// neither INT nor FP, exactly as the instruction-composition counters
// in §VI-A treat them, so %INT + %FP <= 100.
func (c Class) IsInt() bool { return c == IntALU || c == IntMul || c == IntDiv }

// IsFP reports whether the class counts as an "FP instruction" for the
// paper's %FP monitors.
func (c Class) IsFP() bool { return c == FPALU || c == FPMul || c == FPDiv }

// IsMem reports whether the class accesses the data cache.
func (c Class) IsMem() bool { return c == Load || c == Store }

// UsesIntPipe reports whether the instruction issues to the integer
// issue queue. Memory address generation and branch resolution use the
// integer pipe, as in most OoO designs (and SESC).
func (c Class) UsesIntPipe() bool { return !c.IsFP() }

// Instruction is one dynamic instruction of a synthesized trace.
//
// Dep1 and Dep2 are the distances, in dynamic instructions, to the two
// producer instructions of this instruction's source operands; zero
// means "no dependence" (or a producer so old it is architecturally
// visible). Addr is the effective byte address for Load/Store and the
// (synthetic) program counter for Branch. Taken is the branch outcome.
type Instruction struct {
	Addr  uint64
	Dep1  int32
	Dep2  int32
	Class Class
	Taken bool
}

// Reset clears the instruction to an IntALU with no dependences. The
// generator reuses one Instruction value per slot to avoid allocation.
func (in *Instruction) Reset() {
	*in = Instruction{}
}

// Mix is a probability distribution over instruction classes. The
// entries need not be normalized when constructing; call Normalize
// before sampling.
type Mix [NumClasses]float64

// Normalize scales the mix so its entries sum to 1. A zero mix
// becomes 100% IntALU (a defined, harmless fallback).
func (m *Mix) Normalize() {
	var sum float64
	for _, v := range m {
		sum += v
	}
	if sum <= 0 {
		*m = Mix{}
		m[IntALU] = 1
		return
	}
	for i := range m {
		m[i] /= sum
	}
}

// IntFrac returns the fraction of INT-class instructions in the mix.
func (m *Mix) IntFrac() float64 { return m[IntALU] + m[IntMul] + m[IntDiv] }

// FPFrac returns the fraction of FP-class instructions in the mix.
func (m *Mix) FPFrac() float64 { return m[FPALU] + m[FPMul] + m[FPDiv] }

// MemFrac returns the fraction of memory instructions in the mix.
func (m *Mix) MemFrac() float64 { return m[Load] + m[Store] }

// Validate reports an error if the mix has a negative entry or does
// not sum to approximately 1.
func (m *Mix) Validate() error {
	var sum float64
	for c, v := range m {
		if v < 0 {
			return fmt.Errorf("isa: mix entry %s is negative (%g)", Class(c), v)
		}
		sum += v
	}
	if sum < 0.999 || sum > 1.001 {
		return fmt.Errorf("isa: mix sums to %g, want 1", sum)
	}
	return nil
}
