package cpu

import "ampsched/internal/cache"

// Engine is the per-window simulation surface the AMP system drives.
// The cycle-level Core is the reference implementation ("detailed");
// internal/interval provides a calibrated analytic model ("interval")
// and a two-tier sampled engine ("sampled"). Schedulers never see an
// Engine — they observe ThreadArch through the amp.View, so policy
// decisions are fidelity-agnostic by construction.
//
// The contract mirrors Core exactly: Bind/Unbind move a thread on and
// off the engine (Unbind returns squashed in-flight work), Run
// advances the engine by a whole window of cycles, StallCycles charges
// frozen swap-overhead cycles, and Stats returns the monotonic
// activity/cache ledger the power model integrates. Stride is the
// largest cycle batch the engine wants per Run call — 1 for the
// detailed core (it must interleave with the other core every cycle),
// larger for analytic engines that amortize bookkeeping.
type Engine interface {
	// Config returns the core configuration the engine models.
	Config() *Config
	// Fidelity names the engine's simulation fidelity ("detailed",
	// "interval", "sampled").
	Fidelity() string

	// Bind attaches a thread; the engine must be empty.
	Bind(src InstrSource, arch *ThreadArch)
	// Unbind squashes in-flight work and detaches the thread,
	// returning the number of squashed instructions.
	Unbind() uint64
	// Bound reports whether a thread is attached.
	Bound() bool
	// Arch returns the bound thread's architectural state (nil if
	// none).
	Arch() *ThreadArch
	// InFlight returns the number of in-flight (uncommitted)
	// instructions that would be squashed by Unbind.
	InFlight() int

	// Stats returns the monotonic activity and cache ledger.
	Stats() EngineStats

	// Run advances the engine by the given number of cycles starting
	// at global time now.
	Run(now, cycles uint64)
	// Stride returns the preferred cycles-per-Run batch size (>= 1).
	Stride() uint64
	// StallCycles charges n frozen cycles (swap overhead): leakage
	// accrues, nothing executes.
	StallCycles(n uint64)

	// Reconfigure installs a new execution-unit set (core morphing).
	// The engine must be unbound.
	Reconfigure(units [NumUnitKinds]UnitSpec) error
}

// EngineFactory builds an engine for one core configuration. The AMP
// and manycore systems call it once per core at construction.
type EngineFactory func(cfg *Config) (Engine, error)

// StateResetter is the optional engine capability behind system
// pooling: ResetState clears every accumulated ledger (cycles,
// committed instructions, event and cache counters) so the engine's
// next run is bit-identical to one on a freshly constructed engine.
// Analytic engines whose whole state is re-derived at Bind implement
// it; the detailed Core deliberately does not — its caches and
// predictor tables are persistent microarchitectural state, and a
// pooled Core would leak one run's warm-up into the next. The engine
// must be unbound when ResetState is called.
type StateResetter interface {
	ResetState()
}

// EngineStats is a monotonic snapshot of everything the power model
// and telemetry need from an engine: the activity ledger, the
// instructions this engine committed (across all threads it has run —
// unlike ThreadArch.Committed, which migrates with the thread), and
// the cache-hierarchy counters.
type EngineStats struct {
	Act       Activity
	Committed uint64 //ampvet:unit instructions
	L1I       cache.Stats
	L1D       cache.Stats
	L2        cache.Stats
}

// Add returns s + o component-wise (used by the sampled engine to
// merge its detailed and interval halves).
func (s EngineStats) Add(o EngineStats) EngineStats {
	return EngineStats{
		Act:       s.Act.Add(o.Act),
		Committed: s.Committed + o.Committed,
		L1I:       s.L1I.Add(o.L1I),
		L1D:       s.L1D.Add(o.L1D),
		L2:        s.L2.Add(o.L2),
	}
}

// Sub returns s - o component-wise (interval deltas; o must be an
// earlier snapshot of s).
func (s EngineStats) Sub(o EngineStats) EngineStats {
	return EngineStats{
		Act:       s.Act.Sub(o.Act),
		Committed: s.Committed - o.Committed,
		L1I:       s.L1I.Sub(o.L1I),
		L1D:       s.L1D.Sub(o.L1D),
		L2:        s.L2.Sub(o.L2),
	}
}

// Detailed is the cycle-level engine: the out-of-order Core itself.
type Detailed = Core

// NewDetailed builds a cycle-level engine (alias of NewCore).
func NewDetailed(cfg *Config) *Detailed { return NewCore(cfg) }

// DetailedFactory is the EngineFactory for the cycle-level core; it is
// the default fidelity everywhere.
func DetailedFactory(cfg *Config) (Engine, error) { return NewCore(cfg), nil }

// FidelityDetailed is the fidelity label of the cycle-level core.
const FidelityDetailed = "detailed"

var _ Engine = (*Core)(nil)

// Fidelity implements Engine.
func (c *Core) Fidelity() string { return FidelityDetailed }

// Stride implements Engine: the detailed core must interleave with its
// sibling every cycle.
func (c *Core) Stride() uint64 { return 1 }

// Run advances the core cycle by cycle.
//
//ampvet:hotpath
func (c *Core) Run(now, cycles uint64) {
	for end := now + cycles; now < end; now++ {
		c.Step(now)
	}
}

// StallCycles charges n frozen cycles.
//
//ampvet:hotpath
func (c *Core) StallCycles(n uint64) { c.act.StallCycles += n }

// Stats implements Engine.
func (c *Core) Stats() EngineStats {
	return EngineStats{
		Act:       c.act,
		Committed: c.committed,
		L1I:       c.hier.L1I.Stats(),
		L1D:       c.hier.L1D.Stats(),
		L2:        c.hier.L2.Stats(),
	}
}
