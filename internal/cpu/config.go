// Package cpu implements the cycle-level out-of-order core model that
// stands in for the SESC simulator of §IV.
//
// A Core is trace driven: it pulls dynamic instructions from an
// InstrSource (a workload generator bound by the AMP system), moves
// them through fetch, dispatch (rename + queue allocation), issue to
// functional units, and in-order commit, and charges every structure
// access to an Activity ledger that the power model converts into
// energy. The two core personalities of the paper — an INT core with a
// strong integer datapath and a weak FP datapath, and an FP core with
// the opposite — are expressed purely as Config data (Tables I and II)
// over the same pipeline code.
package cpu

import (
	"fmt"

	"ampsched/internal/cache"
)

// UnitKind enumerates the execution resources an instruction can
// occupy. The first six mirror isa.Class order so classes map to units
// by index; MemPort is the address-generation/cache port used by loads
// and stores.
type UnitKind int

// Unit kinds.
const (
	UIntALU UnitKind = iota
	UIntMul
	UIntDiv
	UFPALU
	UFPMul
	UFPDiv
	UMemPort
	NumUnitKinds
)

var unitNames = [NumUnitKinds]string{
	"IntALU", "IntMul", "IntDiv", "FPALU", "FPMul", "FPDiv", "MemPort",
}

// String returns the unit kind's name.
func (k UnitKind) String() string {
	if int(k) < len(unitNames) {
		return unitNames[k]
	}
	return fmt.Sprintf("UnitKind(%d)", int(k))
}

// UnitSpec describes the execution units of one kind (paper Table II):
// how many instances exist, their latency in cycles, and whether each
// instance is pipelined (accepts a new operation every cycle) or
// blocks for the full latency.
type UnitSpec struct {
	Count     int
	Latency   int
	Pipelined bool
}

// Config is a complete core description (paper Tables I and II).
type Config struct {
	Name string

	FetchWidth    int
	DispatchWidth int
	IssueWidth    int
	CommitWidth   int

	ROBSize   int
	IntISQ    int // integer issue-queue entries (also memory, branch)
	FPISQ     int
	LSQLoads  int
	LSQStores int
	IntRegs   int // integer physical/rename registers
	FPRegs    int

	Units [NumUnitKinds]UnitSpec

	// MispredictPenalty is the front-end refill delay, in cycles,
	// added after a mispredicted branch resolves.
	MispredictPenalty int

	// BranchHistoryBits sizes the gshare predictor (2^bits counters).
	BranchHistoryBits uint

	Caches cache.HierarchyConfig

	// FreqGHz converts cycles to seconds for power computations.
	//ampvet:unit cycles_per_second
	FreqGHz float64
}

// Validate reports the first problem with the configuration.
func (c *Config) Validate() error {
	if c.Name == "" {
		return fmt.Errorf("cpu: config with empty name")
	}
	for _, v := range []struct {
		name string
		val  int
	}{
		{"FetchWidth", c.FetchWidth}, {"DispatchWidth", c.DispatchWidth},
		{"IssueWidth", c.IssueWidth}, {"CommitWidth", c.CommitWidth},
		{"ROBSize", c.ROBSize}, {"IntISQ", c.IntISQ}, {"FPISQ", c.FPISQ},
		{"LSQLoads", c.LSQLoads}, {"LSQStores", c.LSQStores},
		{"IntRegs", c.IntRegs}, {"FPRegs", c.FPRegs},
		{"MispredictPenalty", c.MispredictPenalty},
	} {
		if v.val <= 0 {
			return fmt.Errorf("cpu: %s: %s must be positive (got %d)", c.Name, v.name, v.val)
		}
	}
	for k := UnitKind(0); k < NumUnitKinds; k++ {
		u := c.Units[k]
		if u.Count <= 0 || u.Latency <= 0 {
			return fmt.Errorf("cpu: %s: unit %s needs positive count and latency (got %+v)",
				c.Name, k, u)
		}
	}
	if c.FreqGHz <= 0 {
		return fmt.Errorf("cpu: %s: FreqGHz must be positive", c.Name)
	}
	if c.BranchHistoryBits == 0 {
		return fmt.Errorf("cpu: %s: BranchHistoryBits must be positive", c.Name)
	}
	if err := c.Caches.L1I.Validate(); err != nil {
		return fmt.Errorf("cpu: %s: %w", c.Name, err)
	}
	if err := c.Caches.L1D.Validate(); err != nil {
		return fmt.Errorf("cpu: %s: %w", c.Name, err)
	}
	if err := c.Caches.L2.Validate(); err != nil {
		return fmt.Errorf("cpu: %s: %w", c.Name, err)
	}
	if c.Caches.MemLatency <= 0 {
		return fmt.Errorf("cpu: %s: MemLatency must be positive", c.Name)
	}
	return nil
}

// defaultCaches returns the Table I hierarchy shared by both cores:
// 4 KB IL1, 4 KB DL1, 128 KB L2.
func defaultCaches() cache.HierarchyConfig {
	return cache.HierarchyConfig{
		L1I:        cache.Config{Name: "IL1", SizeBytes: 4 << 10, LineBytes: 32, Ways: 2, HitLatency: 1},
		L1D:        cache.Config{Name: "DL1", SizeBytes: 4 << 10, LineBytes: 32, Ways: 2, HitLatency: 1},
		L2:         cache.Config{Name: "L2", SizeBytes: 128 << 10, LineBytes: 64, Ways: 8, HitLatency: 10},
		MemLatency: 100,
	}
}

// FPCoreConfig returns the FP-flavored core of Tables I and II: strong
// (pipelined, multi-unit) floating-point datapath, weak (single,
// non-pipelined) integer units, FP-biased register and issue-queue
// sizing.
func FPCoreConfig() *Config {
	cfg := &Config{
		Name:          "FP",
		FetchWidth:    4,
		DispatchWidth: 4,
		IssueWidth:    4,
		CommitWidth:   4,
		ROBSize:       64,
		IntISQ:        12,
		FPISQ:         24,
		LSQLoads:      16,
		LSQStores:     16,
		IntRegs:       40,
		FPRegs:        68,
		Units: [NumUnitKinds]UnitSpec{
			UIntALU:  {Count: 1, Latency: 2, Pipelined: false},
			UIntMul:  {Count: 1, Latency: 3, Pipelined: false},
			UIntDiv:  {Count: 1, Latency: 12, Pipelined: false},
			UFPALU:   {Count: 2, Latency: 4, Pipelined: true},
			UFPMul:   {Count: 1, Latency: 4, Pipelined: true},
			UFPDiv:   {Count: 1, Latency: 12, Pipelined: true},
			UMemPort: {Count: 2, Latency: 1, Pipelined: true},
		},
		MispredictPenalty: 10,
		BranchHistoryBits: 12,
		Caches:            defaultCaches(),
		FreqGHz:           2.0,
	}
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	return cfg
}

// IntCoreConfig returns the INT-flavored core of Tables I and II:
// strong integer datapath, weak floating-point units, INT-biased
// register and issue-queue sizing.
func IntCoreConfig() *Config {
	cfg := &Config{
		Name:          "INT",
		FetchWidth:    4,
		DispatchWidth: 4,
		IssueWidth:    4,
		CommitWidth:   4,
		ROBSize:       64,
		IntISQ:        24,
		FPISQ:         12,
		LSQLoads:      16,
		LSQStores:     16,
		IntRegs:       68,
		FPRegs:        40,
		Units: [NumUnitKinds]UnitSpec{
			UIntALU:  {Count: 2, Latency: 1, Pipelined: true},
			UIntMul:  {Count: 1, Latency: 3, Pipelined: true},
			UIntDiv:  {Count: 1, Latency: 12, Pipelined: true},
			UFPALU:   {Count: 1, Latency: 4, Pipelined: false},
			UFPMul:   {Count: 1, Latency: 3, Pipelined: false},
			UFPDiv:   {Count: 1, Latency: 12, Pipelined: false},
			UMemPort: {Count: 2, Latency: 1, Pipelined: true},
		},
		MispredictPenalty: 10,
		BranchHistoryBits: 12,
		Caches:            defaultCaches(),
		FreqGHz:           2.0,
	}
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	return cfg
}
