package cpu

// Activity is the ledger of microarchitectural events a core performs.
// All counters are monotonic; interval accounting takes deltas with
// Sub. The power model (internal/power) assigns a per-event energy to
// each counter, Wattch-style.
type Activity struct {
	// Cycles the core was stepped with a thread bound (active cycles).
	//ampvet:unit cycles
	Cycles uint64
	// StallCycles the core spent frozen during a swap.
	//ampvet:unit cycles
	StallCycles uint64

	FetchGroups uint64 // instruction-cache access groups
	FetchedOps  uint64 // instructions delivered by fetch
	BPredOps    uint64 // predictor lookup+update pairs

	Renames   uint64 // rename-table writes (one per dispatched op)
	ROBWrites uint64 // ROB allocations
	ROBReads  uint64 // ROB commit reads

	IntISQWrites uint64 // integer issue-queue insertions
	FPISQWrites  uint64
	IntISQIssues uint64 // wakeup+select operations
	FPISQIssues  uint64

	IntRegReads  uint64
	IntRegWrites uint64
	FPRegReads   uint64
	FPRegWrites  uint64

	LSQWrites   uint64 // load/store queue insertions
	LSQSearches uint64 // disambiguation searches at issue

	UnitOps [NumUnitKinds]uint64 // operations executed per unit kind

	Squashed uint64 // in-flight ops discarded by pipeline squashes
}

// Sub returns a - b component-wise. Panics are impossible: all fields
// are unsigned and monotonic when b is an earlier snapshot of a.
func (a Activity) Sub(b Activity) Activity {
	out := Activity{
		Cycles:       a.Cycles - b.Cycles,
		StallCycles:  a.StallCycles - b.StallCycles,
		FetchGroups:  a.FetchGroups - b.FetchGroups,
		FetchedOps:   a.FetchedOps - b.FetchedOps,
		BPredOps:     a.BPredOps - b.BPredOps,
		Renames:      a.Renames - b.Renames,
		ROBWrites:    a.ROBWrites - b.ROBWrites,
		ROBReads:     a.ROBReads - b.ROBReads,
		IntISQWrites: a.IntISQWrites - b.IntISQWrites,
		FPISQWrites:  a.FPISQWrites - b.FPISQWrites,
		IntISQIssues: a.IntISQIssues - b.IntISQIssues,
		FPISQIssues:  a.FPISQIssues - b.FPISQIssues,
		IntRegReads:  a.IntRegReads - b.IntRegReads,
		IntRegWrites: a.IntRegWrites - b.IntRegWrites,
		FPRegReads:   a.FPRegReads - b.FPRegReads,
		FPRegWrites:  a.FPRegWrites - b.FPRegWrites,
		LSQWrites:    a.LSQWrites - b.LSQWrites,
		LSQSearches:  a.LSQSearches - b.LSQSearches,
		Squashed:     a.Squashed - b.Squashed,
	}
	for k := range out.UnitOps {
		out.UnitOps[k] = a.UnitOps[k] - b.UnitOps[k]
	}
	return out
}

// Add returns a + b component-wise (used when merging the ledgers of
// a sampled engine's two halves).
func (a Activity) Add(b Activity) Activity {
	out := Activity{
		Cycles:       a.Cycles + b.Cycles,
		StallCycles:  a.StallCycles + b.StallCycles,
		FetchGroups:  a.FetchGroups + b.FetchGroups,
		FetchedOps:   a.FetchedOps + b.FetchedOps,
		BPredOps:     a.BPredOps + b.BPredOps,
		Renames:      a.Renames + b.Renames,
		ROBWrites:    a.ROBWrites + b.ROBWrites,
		ROBReads:     a.ROBReads + b.ROBReads,
		IntISQWrites: a.IntISQWrites + b.IntISQWrites,
		FPISQWrites:  a.FPISQWrites + b.FPISQWrites,
		IntISQIssues: a.IntISQIssues + b.IntISQIssues,
		FPISQIssues:  a.FPISQIssues + b.FPISQIssues,
		IntRegReads:  a.IntRegReads + b.IntRegReads,
		IntRegWrites: a.IntRegWrites + b.IntRegWrites,
		FPRegReads:   a.FPRegReads + b.FPRegReads,
		FPRegWrites:  a.FPRegWrites + b.FPRegWrites,
		LSQWrites:    a.LSQWrites + b.LSQWrites,
		LSQSearches:  a.LSQSearches + b.LSQSearches,
		Squashed:     a.Squashed + b.Squashed,
	}
	for k := range out.UnitOps {
		out.UnitOps[k] = a.UnitOps[k] + b.UnitOps[k]
	}
	return out
}

// TotalOps returns the total functional-unit operations executed.
func (a Activity) TotalOps() uint64 {
	var n uint64
	for _, v := range a.UnitOps {
		n += v
	}
	return n
}
