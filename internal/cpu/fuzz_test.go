package cpu

import (
	"testing"
	"testing/quick"

	"ampsched/internal/isa"
	"ampsched/internal/rng"
)

// randomScript builds an arbitrary-but-valid instruction script from a
// seed, exercising every class, dependency shape and address pattern.
func randomScript(seed uint64, n int) []isa.Instruction {
	r := rng.New(seed)
	script := make([]isa.Instruction, n)
	for i := range script {
		in := &script[i]
		in.Class = isa.Class(r.Intn(int(isa.NumClasses)))
		if r.Bool(0.7) {
			in.Dep1 = int32(r.Intn(40) + 1)
		}
		if r.Bool(0.4) {
			in.Dep2 = int32(r.Intn(80) + 1)
		}
		switch {
		case in.Class.IsMem():
			in.Addr = r.Uint64n(1 << 22)
		case in.Class == isa.Branch:
			in.Addr = 0x400000 + r.Uint64n(256)*4
			in.Taken = r.Bool(0.5)
		}
	}
	return script
}

// TestQuickPipelineNeverWedges drives random instruction mixes through
// both paper cores and checks the global invariants: forward progress,
// bounded in-flight state, class counters summing to the commit count,
// and activity consistency.
func TestQuickPipelineNeverWedges(t *testing.T) {
	cfgs := []*Config{IntCoreConfig(), FPCoreConfig()}
	f := func(seed uint64) bool {
		for _, cfg := range cfgs {
			src := &scriptSource{script: randomScript(seed, 257)}
			core := NewCore(cfg)
			arch := &ThreadArch{CodeSize: 2048}
			core.Bind(src, arch)
			const target = 3000
			var cycle uint64
			for arch.Committed < target {
				core.Step(cycle)
				cycle++
				if cycle > 2_000_000 {
					t.Logf("seed %d on %s: wedged at %d commits", seed, cfg.Name, arch.Committed)
					return false
				}
				if core.InFlight() > cfg.ROBSize+2*cfg.FetchWidth {
					t.Logf("seed %d on %s: in-flight overflow", seed, cfg.Name)
					return false
				}
			}
			var sum uint64
			for _, v := range arch.CommittedByClass {
				sum += v
			}
			if sum != arch.Committed {
				t.Logf("seed %d on %s: class counters inconsistent", seed, cfg.Name)
				return false
			}
			act := core.Activity()
			if act.ROBReads != arch.Committed || act.Renames != act.ROBWrites {
				t.Logf("seed %d on %s: activity inconsistent", seed, cfg.Name)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickSquashAnywhereIsSafe unbinds at arbitrary points and checks
// the core is reusable with all resources restored.
func TestQuickSquashAnywhereIsSafe(t *testing.T) {
	cfg := IntCoreConfig()
	f := func(seed uint64, when uint16) bool {
		src := &scriptSource{script: randomScript(seed, 131)}
		core := NewCore(cfg)
		arch := &ThreadArch{CodeSize: 1024}
		core.Bind(src, arch)
		for cycle := uint64(0); cycle < uint64(when)%5000; cycle++ {
			core.Step(cycle)
		}
		core.Unbind()
		if core.InFlight() != 0 {
			return false
		}
		// Rebind and require forward progress.
		arch2 := &ThreadArch{NextSeq: arch.NextSeq, CodeSize: 1024}
		core.Bind(src, arch2)
		for cycle := uint64(10_000); cycle < 200_000; cycle++ {
			core.Step(cycle)
			if arch2.Committed > 50 {
				return true
			}
		}
		return false
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// TestCachesStayWithCore pins down the migration cost model: lines a
// thread warmed on a core remain resident there after Unbind (the next
// occupant inherits them; the departing thread finds cold caches
// elsewhere).
func TestCachesStayWithCore(t *testing.T) {
	cfg := IntCoreConfig()
	core := NewCore(cfg)
	script := []isa.Instruction{{Class: isa.Load, Addr: 0x3000}}
	src := &scriptSource{script: script}
	arch := &ThreadArch{CodeSize: 64}
	core.Bind(src, arch)
	for cycle := uint64(0); arch.Committed < 50; cycle++ {
		core.Step(cycle)
	}
	if !core.Hierarchy().L1D.Contains(0x3000) {
		t.Fatal("hot line not resident before unbind")
	}
	core.Unbind()
	if !core.Hierarchy().L1D.Contains(0x3000) {
		t.Fatal("Unbind evicted the previous thread's lines; caches must stay with the core")
	}
}
