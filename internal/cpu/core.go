package cpu

import (
	"fmt"

	"ampsched/internal/branch"
	"ampsched/internal/cache"
	"ampsched/internal/isa"
)

// InstrSource supplies the dynamic instruction stream of a thread.
type InstrSource interface {
	Next(*isa.Instruction)
}

// ThreadArch is the architectural state of a thread that survives
// migration between cores: the trace position (NextSeq), the synthetic
// program counter and code-footprint geometry for instruction-cache
// modeling, and the committed-instruction counters the schedulers
// observe. Microarchitectural state (caches, predictor tables,
// in-flight instructions) deliberately does NOT migrate — that is the
// cost of a swap.
type ThreadArch struct {
	NextSeq  uint64
	PC       uint64 // byte offset within the code footprint
	CodeBase uint64
	CodeSize uint64

	Committed        uint64 //ampvet:unit instructions
	CommittedByClass [isa.NumClasses]uint64

	// SyncClasses, when non-nil, materializes lazily maintained
	// per-class counters into CommittedByClass. Engines that attribute
	// classes in deferred batches (the interval engine) install it at
	// Bind and clear it at Unbind; readers outside the engine hot path
	// call Sync before touching CommittedByClass. The detailed core
	// maintains the counters eagerly and never sets it.
	SyncClasses func() `json:"-"`
}

// Equal reports whether two arch states hold identical architectural
// counters. The SyncClasses hook is runtime wiring, not architectural
// state, and is excluded (it also makes ThreadArch non-comparable).
func (t *ThreadArch) Equal(o *ThreadArch) bool {
	t.Sync()
	o.Sync()
	return t.NextSeq == o.NextSeq && t.PC == o.PC &&
		t.CodeBase == o.CodeBase && t.CodeSize == o.CodeSize &&
		t.Committed == o.Committed && t.CommittedByClass == o.CommittedByClass
}

// Sync brings CommittedByClass up to date for engines that attribute
// classes lazily; a no-op otherwise.
func (t *ThreadArch) Sync() {
	if t.SyncClasses != nil {
		t.SyncClasses()
	}
}

// IntPct returns the percentage of committed instructions that are
// integer-class.
func (t *ThreadArch) IntPct() float64 {
	if t.Committed == 0 {
		return 0
	}
	t.Sync()
	n := t.CommittedByClass[isa.IntALU] + t.CommittedByClass[isa.IntMul] + t.CommittedByClass[isa.IntDiv]
	return 100 * float64(n) / float64(t.Committed)
}

// FPPct returns the percentage of committed instructions that are
// floating-point-class.
func (t *ThreadArch) FPPct() float64 {
	if t.Committed == 0 {
		return 0
	}
	t.Sync()
	n := t.CommittedByClass[isa.FPALU] + t.CommittedByClass[isa.FPMul] + t.CommittedByClass[isa.FPDiv]
	return 100 * float64(n) / float64(t.Committed)
}

// entry states.
const (
	stEmpty uint8 = iota
	stDispatched
	stIssued // executing or complete; doneAt tells when the result is ready
)

const noSeq = ^uint64(0)

type robEntry struct {
	seq    uint64
	dep1   uint64 // absolute producer seq; noSeq = none
	dep2   uint64
	doneAt uint64
	addr   uint64
	class  isa.Class
	state  uint8
	misp   bool // mispredicted branch
}

// Core is one out-of-order core instance.
type Core struct {
	cfg  *Config
	hier *cache.Hierarchy
	bp   branch.Predictor
	act  Activity

	// units is the effective execution-unit set; it starts as
	// cfg.Units and changes only through Reconfigure (core morphing).
	units [NumUnitKinds]UnitSpec

	src  InstrSource
	arch *ThreadArch

	// Reorder buffer as a ring indexed by seq % ROBSize. headSeq is
	// the oldest live sequence number; nextSeq the next to allocate.
	rob     []robEntry
	headSeq uint64
	tailSeq uint64 // == next seq to dispatch into the ROB

	// Fetch buffer (fetched, not yet dispatched).
	fq     []fetchedOp
	fqHead int
	fqLen  int

	// Resource availability.
	intRegFree int
	fpRegFree  int
	intISQFree int
	fpISQFree  int
	ldFree     int
	stFree     int

	// Functional units: for non-pipelined instances, the cycle each
	// instance frees up; for pipelined kinds, acceptances this cycle.
	busyUntil [NumUnitKinds][]uint64
	accepted  [NumUnitKinds]int

	// Front-end control.
	fetchResumeAt uint64 // no fetch before this cycle
	mispPending   bool   // a mispredicted branch is unresolved

	// committed counts instructions this core committed across all
	// threads it has run (ThreadArch.Committed migrates with the
	// thread; this stays with the engine for per-engine telemetry).
	committed uint64

	// commitHook, when set, observes every committed instruction
	// (class and address) — the tap used by hardware monitors such as
	// the phase classifier.
	commitHook func(isa.Class, uint64)

	scratch isa.Instruction
}

// SetCommitHook installs (or clears, with nil) the commit observer.
func (c *Core) SetCommitHook(h func(class isa.Class, addr uint64)) { c.commitHook = h }

type fetchedOp struct {
	seq   uint64
	dep1  uint64
	dep2  uint64
	addr  uint64
	class isa.Class
	misp  bool
}

// NewCore builds a core from cfg. The configuration is validated and
// must not change afterwards.
func NewCore(cfg *Config) *Core {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	c := &Core{
		cfg:   cfg,
		hier:  cache.NewHierarchy(cfg.Caches),
		bp:    branch.NewGShare(cfg.BranchHistoryBits),
		rob:   make([]robEntry, cfg.ROBSize),
		fq:    make([]fetchedOp, 2*cfg.FetchWidth),
		units: cfg.Units,
	}
	for k := UnitKind(0); k < NumUnitKinds; k++ {
		c.busyUntil[k] = make([]uint64, c.units[k].Count)
	}
	c.resetResources()
	return c
}

func (c *Core) resetResources() {
	c.intRegFree = c.cfg.IntRegs
	c.fpRegFree = c.cfg.FPRegs
	c.intISQFree = c.cfg.IntISQ
	c.fpISQFree = c.cfg.FPISQ
	c.ldFree = c.cfg.LSQLoads
	c.stFree = c.cfg.LSQStores
}

// Config returns the core's configuration.
func (c *Core) Config() *Config { return c.cfg }

// Hierarchy exposes the cache hierarchy (for power accounting and
// tests).
func (c *Core) Hierarchy() *cache.Hierarchy { return c.hier }

// Predictor exposes the branch predictor.
func (c *Core) Predictor() branch.Predictor { return c.bp }

// Activity returns the monotonic event ledger.
func (c *Core) Activity() Activity { return c.act }

// Bound reports whether a thread is currently bound.
func (c *Core) Bound() bool { return c.arch != nil }

// Arch returns the bound thread's architectural state (nil if none).
func (c *Core) Arch() *ThreadArch { return c.arch }

// InFlight returns the number of live ROB entries plus buffered
// fetched instructions.
func (c *Core) InFlight() int {
	return int(c.tailSeq-c.headSeq) + c.fqLen
}

// Bind attaches a thread to the core. The core must be empty (freshly
// created, or after Unbind).
func (c *Core) Bind(src InstrSource, arch *ThreadArch) {
	if c.arch != nil {
		panic(fmt.Sprintf("cpu: %s: Bind with thread already bound", c.cfg.Name))
	}
	if arch.CodeSize == 0 {
		panic("cpu: Bind with zero CodeSize")
	}
	c.src = src
	c.arch = arch
	c.headSeq = arch.NextSeq
	c.tailSeq = arch.NextSeq
	c.fqHead = 0
	c.fqLen = 0
	c.fetchResumeAt = 0
	c.mispPending = false
}

// Unbind squashes all in-flight work and detaches the thread,
// returning the number of squashed (fetched or dispatched but not
// committed) instructions. Cache and predictor contents stay — the
// next thread inherits a polluted core and the departing thread will
// find cold structures wherever it lands.
func (c *Core) Unbind() uint64 {
	if c.arch == nil {
		return 0
	}
	squashed := uint64(c.InFlight())
	c.act.Squashed += squashed
	for i := range c.rob {
		c.rob[i].state = stEmpty
	}
	c.headSeq = 0
	c.tailSeq = 0
	c.fqLen = 0
	c.fqHead = 0
	c.resetResources()
	for k := range c.busyUntil {
		for i := range c.busyUntil[k] {
			c.busyUntil[k][i] = 0
		}
	}
	c.src = nil
	c.arch = nil
	c.mispPending = false
	c.fetchResumeAt = 0
	return squashed
}

// StallCycle charges one frozen cycle (swap overhead). Leakage still
// accrues; no pipeline activity happens.
//
//ampvet:hotpath
func (c *Core) StallCycle() { c.act.StallCycles++ }

// Step advances the core by one cycle at global time now. Stages run
// commit -> issue -> dispatch -> fetch so results propagate with
// correct one-cycle visibility.
//
//ampvet:hotpath
func (c *Core) Step(now uint64) {
	if c.arch == nil {
		return
	}
	c.act.Cycles++
	c.commit(now)
	c.issue(now)
	c.dispatch(now)
	c.fetch(now)
}

func (c *Core) entry(seq uint64) *robEntry {
	return &c.rob[seq%uint64(len(c.rob))]
}

//ampvet:hotpath
func (c *Core) commit(now uint64) {
	width := c.cfg.CommitWidth
	for n := 0; n < width && c.headSeq < c.tailSeq; n++ {
		e := c.entry(c.headSeq)
		if e.state != stIssued || e.doneAt > now {
			return
		}
		switch {
		case e.class == isa.Store:
			c.hier.WriteData(e.addr)
			c.stFree++
		case e.class == isa.Load:
			c.ldFree++
			c.intRegFree++
		case e.class.IsFP():
			c.fpRegFree++
		case e.class == isa.Branch:
			// no destination register
		default:
			c.intRegFree++
		}
		c.act.ROBReads++
		c.committed++
		c.arch.Committed++
		c.arch.CommittedByClass[e.class]++
		if c.commitHook != nil {
			c.commitHook(e.class, e.addr)
		}
		e.state = stEmpty
		c.headSeq++
	}
}

// unitFor maps an instruction class to the unit kind it occupies.
func unitFor(class isa.Class) UnitKind {
	switch class {
	case isa.Load, isa.Store:
		return UMemPort
	case isa.Branch:
		return UIntALU
	default:
		return UnitKind(class)
	}
}

// claimUnit reserves a unit of kind k at time now and returns its
// operation latency, or -1 if no instance can accept this cycle.
func (c *Core) claimUnit(k UnitKind, now uint64) int {
	spec := &c.units[k]
	if spec.Pipelined {
		if c.accepted[k] >= spec.Count {
			return -1
		}
		c.accepted[k]++
		return spec.Latency
	}
	for i := range c.busyUntil[k] {
		if c.busyUntil[k][i] <= now {
			c.busyUntil[k][i] = now + uint64(spec.Latency)
			return spec.Latency
		}
	}
	return -1
}

func (c *Core) producerReady(dep uint64, now uint64) bool {
	if dep == noSeq || dep < c.headSeq {
		return true
	}
	p := c.entry(dep)
	return p.state == stIssued && p.doneAt <= now
}

//ampvet:hotpath
func (c *Core) issue(now uint64) {
	for k := range c.accepted {
		c.accepted[k] = 0
	}
	issued := 0
	for seq := c.headSeq; seq < c.tailSeq && issued < c.cfg.IssueWidth; seq++ {
		e := c.entry(seq)
		if e.state != stDispatched {
			continue
		}
		if !c.producerReady(e.dep1, now) || !c.producerReady(e.dep2, now) {
			continue
		}
		kind := unitFor(e.class)
		lat := c.claimUnit(kind, now)
		if lat < 0 {
			continue
		}
		issued++
		c.act.UnitOps[kind]++

		// Operand reads and issue-queue wakeup/select energy.
		nreads := uint64(0)
		if e.dep1 != noSeq {
			nreads++
		}
		if e.dep2 != noSeq {
			nreads++
		}
		if e.class.IsFP() {
			c.act.FPISQIssues++
			c.act.FPRegReads += nreads
			c.fpISQFree++
		} else {
			c.act.IntISQIssues++
			c.act.IntRegReads += nreads
			c.intISQFree++
		}

		switch e.class {
		case isa.Load:
			c.act.LSQSearches++
			e.doneAt = now + uint64(lat) + uint64(c.hier.ReadData(e.addr))
			c.act.IntRegWrites++
		case isa.Store:
			c.act.LSQSearches++
			// Address generation only; the cache write happens at
			// commit out of the store buffer.
			e.doneAt = now + uint64(lat)
		case isa.Branch:
			e.doneAt = now + uint64(lat)
			if e.misp {
				// The front end restarts after resolution plus the
				// refill penalty.
				c.fetchResumeAt = e.doneAt + uint64(c.cfg.MispredictPenalty)
				c.mispPending = false
			}
		default:
			e.doneAt = now + uint64(lat)
			if e.class.IsFP() {
				c.act.FPRegWrites++
			} else {
				c.act.IntRegWrites++
			}
		}
		e.state = stIssued
	}
}

func (c *Core) dispatch(now uint64) {
	_ = now
	for n := 0; n < c.cfg.DispatchWidth && c.fqLen > 0; n++ {
		op := &c.fq[c.fqHead]
		if c.tailSeq-c.headSeq >= uint64(c.cfg.ROBSize) {
			return // ROB full
		}
		// Resource checks; in-order dispatch stalls on the first
		// instruction that cannot get all of its resources.
		switch {
		case op.class == isa.Load:
			if c.ldFree == 0 || c.intRegFree == 0 || c.intISQFree == 0 {
				return
			}
			c.ldFree--
			c.intRegFree--
			c.intISQFree--
			c.act.LSQWrites++
			c.act.IntISQWrites++
		case op.class == isa.Store:
			if c.stFree == 0 || c.intISQFree == 0 {
				return
			}
			c.stFree--
			c.intISQFree--
			c.act.LSQWrites++
			c.act.IntISQWrites++
		case op.class == isa.Branch:
			if c.intISQFree == 0 {
				return
			}
			c.intISQFree--
			c.act.IntISQWrites++
		case op.class.IsFP():
			if c.fpRegFree == 0 || c.fpISQFree == 0 {
				return
			}
			c.fpRegFree--
			c.fpISQFree--
			c.act.FPISQWrites++
		default: // IntALU, IntMul, IntDiv
			if c.intRegFree == 0 || c.intISQFree == 0 {
				return
			}
			c.intRegFree--
			c.intISQFree--
			c.act.IntISQWrites++
		}

		e := c.entry(op.seq)
		*e = robEntry{
			seq:   op.seq,
			dep1:  op.dep1,
			dep2:  op.dep2,
			addr:  op.addr,
			class: op.class,
			state: stDispatched,
			misp:  op.misp,
		}
		c.tailSeq = op.seq + 1
		c.act.Renames++
		c.act.ROBWrites++
		c.fqHead = (c.fqHead + 1) % len(c.fq)
		c.fqLen--
	}
}

// jumpTarget deterministically maps a branch site to its taken target
// offset within the thread's code footprint, 4-byte aligned.
func jumpTarget(site, codeSize uint64) uint64 {
	z := site
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	z ^= z >> 31
	return (z % codeSize) &^ 3
}

func (c *Core) fetch(now uint64) {
	if c.mispPending || now < c.fetchResumeAt {
		return
	}
	if len(c.fq)-c.fqLen < c.cfg.FetchWidth {
		return // no room for a full group
	}

	// One instruction-cache access per fetch group.
	pc := c.arch.CodeBase + c.arch.PC
	c.act.FetchGroups++
	lat := c.hier.FetchInstr(pc)
	if lat > c.cfg.Caches.L1I.HitLatency {
		// Miss: block the front end; the line is now resident so the
		// retried access hits.
		c.fetchResumeAt = now + uint64(lat)
		return
	}

	for i := 0; i < c.cfg.FetchWidth; i++ {
		in := &c.scratch
		c.src.Next(in)
		seq := c.arch.NextSeq
		c.arch.NextSeq++
		c.act.FetchedOps++

		op := fetchedOp{seq: seq, class: in.Class, addr: in.Addr, dep1: noSeq, dep2: noSeq}
		if in.Dep1 > 0 && uint64(in.Dep1) <= seq {
			op.dep1 = seq - uint64(in.Dep1)
		}
		if in.Dep2 > 0 && uint64(in.Dep2) <= seq {
			op.dep2 = seq - uint64(in.Dep2)
		}

		endGroup := false
		if in.Class == isa.Branch {
			c.act.BPredOps++
			pred := c.bp.Predict(in.Addr)
			c.bp.Update(in.Addr, in.Taken)
			op.misp = pred != in.Taken
			if in.Taken {
				c.arch.PC = jumpTarget(in.Addr, c.arch.CodeSize)
				endGroup = true // taken branches end the fetch group
			} else {
				c.advancePC()
			}
			if op.misp {
				c.mispPending = true
				endGroup = true
			}
		} else {
			c.advancePC()
		}

		tail := (c.fqHead + c.fqLen) % len(c.fq)
		c.fq[tail] = op
		c.fqLen++
		if endGroup {
			break
		}
	}
}

func (c *Core) advancePC() {
	c.arch.PC += 4
	if c.arch.PC >= c.arch.CodeSize {
		c.arch.PC = 0
	}
}
