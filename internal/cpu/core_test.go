package cpu

import (
	"testing"

	"ampsched/internal/isa"
	"ampsched/internal/workload"
)

// runSolo drives a core over a benchmark until limit commits and
// returns the core, thread state and elapsed cycles.
func runSolo(t testing.TB, cfg *Config, bench string, seed, limit uint64) (*Core, *ThreadArch, uint64) {
	t.Helper()
	b, err := workload.ByName(bench)
	if err != nil {
		t.Fatal(err)
	}
	gen := workload.NewGenerator(b, seed, 0)
	core := NewCore(cfg)
	arch := &ThreadArch{CodeBase: 1 << 36, CodeSize: b.EffectiveCodeFootprint()}
	core.Bind(gen, arch)
	var cycle uint64
	for arch.Committed < limit {
		core.Step(cycle)
		cycle++
		if cycle > 100*limit+1_000_000 {
			t.Fatalf("core wedged: %d commits after %d cycles", arch.Committed, cycle)
		}
	}
	return core, arch, cycle
}

func TestConfigsValid(t *testing.T) {
	if err := IntCoreConfig().Validate(); err != nil {
		t.Fatal(err)
	}
	if err := FPCoreConfig().Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestConfigValidationErrors(t *testing.T) {
	mutations := []func(*Config){
		func(c *Config) { c.Name = "" },
		func(c *Config) { c.FetchWidth = 0 },
		func(c *Config) { c.ROBSize = -1 },
		func(c *Config) { c.IntISQ = 0 },
		func(c *Config) { c.LSQLoads = 0 },
		func(c *Config) { c.IntRegs = 0 },
		func(c *Config) { c.Units[UIntALU].Count = 0 },
		func(c *Config) { c.Units[UFPDiv].Latency = 0 },
		func(c *Config) { c.MispredictPenalty = 0 },
		func(c *Config) { c.FreqGHz = 0 },
		func(c *Config) { c.BranchHistoryBits = 0 },
		func(c *Config) { c.Caches.MemLatency = 0 },
		func(c *Config) { c.Caches.L1I.SizeBytes = 0 },
	}
	for i, mutate := range mutations {
		cfg := *IntCoreConfig()
		mutate(&cfg)
		if err := cfg.Validate(); err == nil {
			t.Errorf("mutation %d accepted", i)
		}
	}
}

func TestTableIIAsymmetry(t *testing.T) {
	intC, fpC := IntCoreConfig(), FPCoreConfig()
	// The INT core's integer units are pipelined and at least as many
	// as the FP core's; the FP core's FP units are pipelined.
	for _, k := range []UnitKind{UIntALU, UIntMul, UIntDiv} {
		if !intC.Units[k].Pipelined || fpC.Units[k].Pipelined {
			t.Errorf("%s pipelining asymmetry wrong", k)
		}
	}
	for _, k := range []UnitKind{UFPALU, UFPMul, UFPDiv} {
		if !fpC.Units[k].Pipelined || intC.Units[k].Pipelined {
			t.Errorf("%s pipelining asymmetry wrong", k)
		}
	}
	if intC.IntRegs <= fpC.IntRegs || intC.FPRegs >= fpC.FPRegs {
		t.Error("register-file asymmetry wrong")
	}
	if intC.IntISQ <= fpC.IntISQ || intC.FPISQ >= fpC.FPISQ {
		t.Error("issue-queue asymmetry wrong")
	}
}

func TestUnitKindString(t *testing.T) {
	if UIntALU.String() != "IntALU" || UMemPort.String() != "MemPort" {
		t.Fatal("unit names wrong")
	}
	if UnitKind(99).String() == "" {
		t.Fatal("out-of-range name empty")
	}
}

func TestCommitsReachLimit(t *testing.T) {
	_, arch, _ := runSolo(t, IntCoreConfig(), "gcc", 1, 20_000)
	if arch.Committed < 20_000 {
		t.Fatalf("committed %d < limit", arch.Committed)
	}
	// Commit width bounds the overshoot.
	if arch.Committed > 20_000+4 {
		t.Fatalf("committed %d overshoots by more than the commit width", arch.Committed)
	}
}

func TestCommittedClassesSum(t *testing.T) {
	_, arch, _ := runSolo(t, FPCoreConfig(), "apsi", 2, 20_000)
	var sum uint64
	for _, v := range arch.CommittedByClass {
		sum += v
	}
	if sum != arch.Committed {
		t.Fatalf("class counts sum to %d, Committed = %d", sum, arch.Committed)
	}
}

func TestIPCPlausible(t *testing.T) {
	cfg := IntCoreConfig()
	_, arch, cycles := runSolo(t, cfg, "intstress", 3, 50_000)
	ipc := float64(arch.Committed) / float64(cycles)
	if ipc <= 0.2 || ipc > float64(cfg.CommitWidth) {
		t.Fatalf("intstress IPC %.3f implausible", ipc)
	}
}

func TestDeterministicRuns(t *testing.T) {
	c1, a1, cy1 := runSolo(t, IntCoreConfig(), "gcc", 7, 20_000)
	c2, a2, cy2 := runSolo(t, IntCoreConfig(), "gcc", 7, 20_000)
	if cy1 != cy2 {
		t.Fatalf("cycle counts differ: %d vs %d", cy1, cy2)
	}
	if !a1.Equal(a2) {
		t.Fatalf("arch state differs")
	}
	if c1.Activity() != c2.Activity() {
		t.Fatalf("activity differs")
	}
}

func TestIntWorkloadFasterOnIntCore(t *testing.T) {
	_, _, cyInt := runSolo(t, IntCoreConfig(), "intstress", 4, 50_000)
	_, _, cyFP := runSolo(t, FPCoreConfig(), "intstress", 4, 50_000)
	if cyInt >= cyFP {
		t.Fatalf("intstress: INT core took %d cycles, FP core %d", cyInt, cyFP)
	}
}

func TestFPWorkloadFasterOnFPCore(t *testing.T) {
	_, _, cyInt := runSolo(t, IntCoreConfig(), "fpstress", 4, 50_000)
	_, _, cyFP := runSolo(t, FPCoreConfig(), "fpstress", 4, 50_000)
	if cyFP >= cyInt {
		t.Fatalf("fpstress: FP core took %d cycles, INT core %d", cyFP, cyInt)
	}
}

func TestBranchMispredictionSlowsDown(t *testing.T) {
	// branchstress (0.70 predictability) must achieve lower IPC than
	// the similarly integer-bound but predictable sha.
	_, aBad, cyBad := runSolo(t, IntCoreConfig(), "branchstress", 5, 30_000)
	_, aGood, cyGood := runSolo(t, IntCoreConfig(), "sha", 5, 30_000)
	ipcBad := float64(aBad.Committed) / float64(cyBad)
	ipcGood := float64(aGood.Committed) / float64(cyGood)
	if ipcBad >= ipcGood {
		t.Fatalf("mispredict-heavy workload IPC %.3f >= predictable workload %.3f", ipcBad, ipcGood)
	}
}

func TestMemoryBoundSlow(t *testing.T) {
	_, aMem, cyMem := runSolo(t, IntCoreConfig(), "memstress", 6, 20_000)
	_, aCpu, cyCpu := runSolo(t, IntCoreConfig(), "intstress", 6, 20_000)
	ipcMem := float64(aMem.Committed) / float64(cyMem)
	ipcCpu := float64(aCpu.Committed) / float64(cyCpu)
	if ipcMem*2 > ipcCpu {
		t.Fatalf("memstress IPC %.3f not clearly below intstress %.3f", ipcMem, ipcCpu)
	}
}

func TestInFlightBounded(t *testing.T) {
	cfg := IntCoreConfig()
	b := workload.MustByName("swim")
	gen := workload.NewGenerator(b, 9, 0)
	core := NewCore(cfg)
	arch := &ThreadArch{CodeBase: 0, CodeSize: b.EffectiveCodeFootprint()}
	core.Bind(gen, arch)
	bound := cfg.ROBSize + 2*cfg.FetchWidth
	for cycle := uint64(0); cycle < 30_000; cycle++ {
		core.Step(cycle)
		if fl := core.InFlight(); fl > bound {
			t.Fatalf("in-flight %d exceeds ROB+fetch buffer %d at cycle %d", fl, bound, cycle)
		}
	}
}

func TestDoubleBindPanics(t *testing.T) {
	core := NewCore(IntCoreConfig())
	b := workload.MustByName("pi")
	gen := workload.NewGenerator(b, 1, 0)
	arch := &ThreadArch{CodeSize: 1024}
	core.Bind(gen, arch)
	defer func() {
		if recover() == nil {
			t.Fatal("double Bind did not panic")
		}
	}()
	core.Bind(gen, arch)
}

func TestBindZeroCodeSizePanics(t *testing.T) {
	core := NewCore(IntCoreConfig())
	b := workload.MustByName("pi")
	gen := workload.NewGenerator(b, 1, 0)
	defer func() {
		if recover() == nil {
			t.Fatal("Bind with zero CodeSize did not panic")
		}
	}()
	core.Bind(gen, &ThreadArch{})
}

func TestUnbindSquashes(t *testing.T) {
	cfg := IntCoreConfig()
	b := workload.MustByName("gcc")
	gen := workload.NewGenerator(b, 11, 0)
	core := NewCore(cfg)
	arch := &ThreadArch{CodeSize: b.EffectiveCodeFootprint()}
	core.Bind(gen, arch)
	var cycle uint64
	for ; core.InFlight() == 0 && cycle < 10_000; cycle++ {
		core.Step(cycle)
	}
	inFlight := core.InFlight()
	if inFlight == 0 {
		t.Fatal("expected in-flight work before unbind")
	}
	squashed := core.Unbind()
	if squashed != uint64(inFlight) {
		t.Fatalf("squashed %d, in-flight was %d", squashed, inFlight)
	}
	if core.InFlight() != 0 || core.Bound() {
		t.Fatal("core not empty after Unbind")
	}
	if core.Activity().Squashed != squashed {
		t.Fatal("squash not recorded in activity")
	}
	// Core is reusable.
	arch2 := &ThreadArch{NextSeq: arch.NextSeq, CodeSize: b.EffectiveCodeFootprint()}
	core.Bind(gen, arch2)
	for end := cycle + 20_000; cycle < end && arch2.Committed == 0; cycle++ {
		core.Step(cycle)
	}
	if arch2.Committed == 0 {
		t.Fatal("rebound core does not commit")
	}
}

func TestUnbindIdempotentWhenEmpty(t *testing.T) {
	core := NewCore(IntCoreConfig())
	if core.Unbind() != 0 {
		t.Fatal("Unbind on fresh core returned nonzero")
	}
}

func TestStepWithoutThreadIsNoop(t *testing.T) {
	core := NewCore(IntCoreConfig())
	core.Step(0)
	if core.Activity().Cycles != 0 {
		t.Fatal("unbound Step counted an active cycle")
	}
}

func TestStallCycleCounts(t *testing.T) {
	core := NewCore(IntCoreConfig())
	core.StallCycle()
	core.StallCycle()
	if core.Activity().StallCycles != 2 {
		t.Fatal("stall cycles not counted")
	}
}

func TestActivityConsistency(t *testing.T) {
	core, arch, _ := runSolo(t, IntCoreConfig(), "gcc", 13, 20_000)
	act := core.Activity()
	if act.Renames != act.ROBWrites {
		t.Errorf("renames %d != ROB writes %d", act.Renames, act.ROBWrites)
	}
	if act.ROBReads != arch.Committed {
		t.Errorf("ROB reads %d != committed %d", act.ROBReads, arch.Committed)
	}
	dispatched := act.IntISQWrites + act.FPISQWrites
	if dispatched != act.Renames {
		t.Errorf("ISQ writes %d != renames %d", dispatched, act.Renames)
	}
	issued := act.IntISQIssues + act.FPISQIssues
	if issued != act.TotalOps() {
		t.Errorf("ISQ issues %d != unit ops %d", issued, act.TotalOps())
	}
	// Everything committed was fetched; fetched >= committed.
	if act.FetchedOps < arch.Committed {
		t.Errorf("fetched %d < committed %d", act.FetchedOps, arch.Committed)
	}
}

func TestActivitySub(t *testing.T) {
	core, _, _ := runSolo(t, IntCoreConfig(), "pi", 17, 5_000)
	a := core.Activity()
	zero := a.Sub(a)
	if zero.TotalOps() != 0 || zero.Cycles != 0 || zero.Renames != 0 {
		t.Fatal("a.Sub(a) not zero")
	}
	if d := a.Sub(Activity{}); d != a {
		t.Fatal("a.Sub(zero) != a")
	}
}

func TestLargeCodeFootprintSlower(t *testing.T) {
	// Same workload statistics, different code footprint: the larger
	// footprint must produce more IL1 misses and lower IPC.
	b := workload.MustByName("gcc") // 48K code
	small := *b
	small.CodeFootprint = 1 << 10

	run := func(bench *workload.Benchmark) (float64, uint64) {
		gen := workload.NewGenerator(bench, 19, 0)
		core := NewCore(IntCoreConfig())
		arch := &ThreadArch{CodeSize: bench.EffectiveCodeFootprint()}
		core.Bind(gen, arch)
		var cycle uint64
		for arch.Committed < 30_000 {
			core.Step(cycle)
			cycle++
		}
		return float64(arch.Committed) / float64(cycle), core.Hierarchy().L1I.Stats().Misses
	}
	ipcBig, missBig := run(b)
	ipcSmall, missSmall := run(&small)
	if missBig <= missSmall {
		t.Fatalf("IL1 misses: big code %d <= small code %d", missBig, missSmall)
	}
	if ipcBig >= ipcSmall {
		t.Fatalf("IPC: big code %.3f >= small code %.3f", ipcBig, ipcSmall)
	}
}

func TestThreadArchPercentages(t *testing.T) {
	arch := &ThreadArch{}
	if arch.IntPct() != 0 || arch.FPPct() != 0 {
		t.Fatal("empty arch percentages nonzero")
	}
	arch.Committed = 10
	arch.CommittedByClass[isa.IntALU] = 4
	arch.CommittedByClass[isa.FPMul] = 3
	arch.CommittedByClass[isa.Load] = 3
	if arch.IntPct() != 40 || arch.FPPct() != 30 {
		t.Fatalf("percentages: int %.1f fp %.1f", arch.IntPct(), arch.FPPct())
	}
}

func TestNonPipelinedThroughput(t *testing.T) {
	// On the FP core the single non-pipelined 2-cycle IntALU bounds
	// pure integer throughput near 0.5 ops/cycle; the INT core's two
	// pipelined 1-cycle ALUs do not.
	_, arch1, cy1 := runSolo(t, FPCoreConfig(), "bitcount", 21, 30_000)
	ipcFP := float64(arch1.Committed) / float64(cy1)
	if ipcFP > 0.85 {
		t.Fatalf("bitcount on FP core IPC %.3f exceeds weak-ALU bound", ipcFP)
	}
	_, arch2, cy2 := runSolo(t, IntCoreConfig(), "bitcount", 21, 30_000)
	ipcInt := float64(arch2.Committed) / float64(cy2)
	if ipcInt < ipcFP*1.3 {
		t.Fatalf("bitcount: INT core IPC %.3f not clearly above FP core %.3f", ipcInt, ipcFP)
	}
}

func TestMigratedThreadContinuesSeq(t *testing.T) {
	// Unbind from one core, rebind the same thread arch on another:
	// sequence numbers and committed counters keep advancing.
	b := workload.MustByName("apsi")
	gen := workload.NewGenerator(b, 23, 0)
	arch := &ThreadArch{CodeSize: b.EffectiveCodeFootprint()}
	c1 := NewCore(IntCoreConfig())
	c1.Bind(gen, arch)
	var cycle uint64
	for arch.Committed < 5_000 {
		c1.Step(cycle)
		cycle++
	}
	c1.Unbind()
	committedAtSwap := arch.Committed
	c2 := NewCore(FPCoreConfig())
	c2.Bind(gen, arch)
	for arch.Committed < 10_000 {
		c2.Step(cycle)
		cycle++
	}
	if arch.Committed <= committedAtSwap {
		t.Fatal("no progress after migration")
	}
}

func TestJumpTargetDeterministicAligned(t *testing.T) {
	for _, size := range []uint64{1 << 10, 48 << 10} {
		for site := uint64(0x400000); site < 0x400100; site += 16 {
			a := jumpTarget(site, size)
			b := jumpTarget(site, size)
			if a != b {
				t.Fatal("jumpTarget not deterministic")
			}
			if a >= size || a%4 != 0 {
				t.Fatalf("jumpTarget %#x invalid for size %#x", a, size)
			}
		}
	}
}
