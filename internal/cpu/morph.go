package cpu

import "fmt"

// Core morphing (§III; Rodrigues et al., PACT 2011 [5]) lets the two
// asymmetric cores exchange execution datapaths at run time: the INT
// core takes over the FP core's strong floating-point units and
// relinquishes its own weak FP datapath, becoming a core that is
// strong on all fronts, while the FP core is left weak on all fronts.
// The paper under reproduction deliberately avoids morphing hardware
// and studies swap-only scheduling; implementing morphing here enables
// the comparison the paper's §III implies.
//
// In this model only the execution units migrate: queues, register
// files and caches stay put (the morphing hardware of [5] rewires
// datapaths, not storage). A core must be drained (unbound) before
// reconfiguration, which the AMP system guarantees by squashing both
// pipelines first — the same protocol as a thread swap.

// MorphStrongUnits returns the unit set of the morphed strong core:
// the INT core's strong integer datapath plus the FP core's strong
// floating-point datapath.
func MorphStrongUnits() [NumUnitKinds]UnitSpec {
	intU := IntCoreConfig().Units
	fpU := FPCoreConfig().Units
	return [NumUnitKinds]UnitSpec{
		UIntALU:  intU[UIntALU],
		UIntMul:  intU[UIntMul],
		UIntDiv:  intU[UIntDiv],
		UFPALU:   fpU[UFPALU],
		UFPMul:   fpU[UFPMul],
		UFPDiv:   fpU[UFPDiv],
		UMemPort: intU[UMemPort],
	}
}

// MorphWeakUnits returns the unit set of the morphed weak core: the
// FP core's weak integer datapath plus the INT core's weak
// floating-point datapath.
func MorphWeakUnits() [NumUnitKinds]UnitSpec {
	intU := IntCoreConfig().Units
	fpU := FPCoreConfig().Units
	return [NumUnitKinds]UnitSpec{
		UIntALU:  fpU[UIntALU],
		UIntMul:  fpU[UIntMul],
		UIntDiv:  fpU[UIntDiv],
		UFPALU:   intU[UFPALU],
		UFPMul:   intU[UFPMul],
		UFPDiv:   intU[UFPDiv],
		UMemPort: fpU[UMemPort],
	}
}

// MorphedStrongConfig returns a full Config describing the INT core in
// its morphed (strong) state — used by the power model, which scales
// leakage and per-op energy with the installed units.
func MorphedStrongConfig() *Config {
	cfg := IntCoreConfig()
	cfg.Name = "INT+strongFP"
	cfg.Units = MorphStrongUnits()
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	return cfg
}

// MorphedWeakConfig returns a full Config describing the FP core in
// its morphed (weak) state.
func MorphedWeakConfig() *Config {
	cfg := FPCoreConfig()
	cfg.Name = "FP-weak"
	cfg.Units = MorphWeakUnits()
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	return cfg
}

// EffectiveUnits returns the unit set the core currently executes
// with (the config's units unless Reconfigure changed them).
func (c *Core) EffectiveUnits() [NumUnitKinds]UnitSpec { return c.units }

// Reconfigure installs a new execution-unit set. The core must be
// drained (no bound thread): the AMP system unbinds/squashes before
// morphing, exactly like a swap.
func (c *Core) Reconfigure(units [NumUnitKinds]UnitSpec) error {
	if c.arch != nil {
		return fmt.Errorf("cpu: %s: Reconfigure with a bound thread", c.cfg.Name)
	}
	for k := UnitKind(0); k < NumUnitKinds; k++ {
		if units[k].Count <= 0 || units[k].Latency <= 0 {
			return fmt.Errorf("cpu: %s: invalid unit %s in reconfiguration: %+v",
				c.cfg.Name, k, units[k])
		}
	}
	c.units = units
	for k := UnitKind(0); k < NumUnitKinds; k++ {
		c.busyUntil[k] = make([]uint64, units[k].Count)
	}
	return nil
}
