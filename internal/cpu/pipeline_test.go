package cpu

import (
	"testing"

	"ampsched/internal/cache"
	"ampsched/internal/isa"
)

// scriptSource replays a fixed instruction pattern forever. It lets
// the tests pin down pipeline behavior (throughput bounds, latency
// chains, stalls) without workload randomness.
type scriptSource struct {
	script []isa.Instruction
	i      int
}

func (s *scriptSource) Next(in *isa.Instruction) {
	*in = s.script[s.i%len(s.script)]
	s.i++
}

// testConfig returns a wide, stall-free baseline configuration: big
// caches (no capacity misses), perfect-size queues, fast units. Tests
// then shrink one resource at a time.
func testConfig() *Config {
	cfg := &Config{
		Name:          "TEST",
		FetchWidth:    4,
		DispatchWidth: 4,
		IssueWidth:    4,
		CommitWidth:   4,
		ROBSize:       64,
		IntISQ:        32,
		FPISQ:         32,
		LSQLoads:      32,
		LSQStores:     32,
		IntRegs:       128,
		FPRegs:        128,
		Units: [NumUnitKinds]UnitSpec{
			UIntALU:  {Count: 4, Latency: 1, Pipelined: true},
			UIntMul:  {Count: 4, Latency: 1, Pipelined: true},
			UIntDiv:  {Count: 4, Latency: 1, Pipelined: true},
			UFPALU:   {Count: 4, Latency: 1, Pipelined: true},
			UFPMul:   {Count: 4, Latency: 1, Pipelined: true},
			UFPDiv:   {Count: 4, Latency: 1, Pipelined: true},
			UMemPort: {Count: 4, Latency: 1, Pipelined: true},
		},
		MispredictPenalty: 10,
		BranchHistoryBits: 12,
		Caches: cache.HierarchyConfig{
			L1I:        cache.Config{Name: "IL1", SizeBytes: 64 << 10, LineBytes: 32, Ways: 4, HitLatency: 1},
			L1D:        cache.Config{Name: "DL1", SizeBytes: 64 << 10, LineBytes: 32, Ways: 4, HitLatency: 1},
			L2:         cache.Config{Name: "L2", SizeBytes: 1 << 20, LineBytes: 64, Ways: 8, HitLatency: 10},
			MemLatency: 100,
		},
		FreqGHz: 2.0,
	}
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	return cfg
}

// measureIPC runs the script on cfg and returns steady-state
// committed/cycles, excluding a warmup period that hides compulsory
// instruction-cache misses (a cold IL1 miss blocks fetch for the full
// memory latency).
func measureIPC(t *testing.T, cfg *Config, script []isa.Instruction, commits uint64) float64 {
	t.Helper()
	src := &scriptSource{script: script}
	core := NewCore(cfg)
	arch := &ThreadArch{CodeBase: 0, CodeSize: 4096}
	core.Bind(src, arch)
	var cycle uint64
	warmup := commits / 4
	for arch.Committed < warmup {
		core.Step(cycle)
		cycle++
		if cycle > 1000*commits+100_000 {
			t.Fatalf("wedged at %d commits after %d cycles", arch.Committed, cycle)
		}
	}
	startCycle, startCommit := cycle, arch.Committed
	for arch.Committed < commits {
		core.Step(cycle)
		cycle++
		if cycle > 1000*commits+100_000 {
			t.Fatalf("wedged at %d commits after %d cycles", arch.Committed, cycle)
		}
	}
	return float64(arch.Committed-startCommit) / float64(cycle-startCycle)
}

func ints(n int) []isa.Instruction {
	s := make([]isa.Instruction, n)
	for i := range s {
		s[i] = isa.Instruction{Class: isa.IntALU}
	}
	return s
}

func TestIndependentStreamHitsWidth(t *testing.T) {
	// Independent 1-cycle ALU ops on a 4-wide machine: IPC -> ~4.
	ipc := measureIPC(t, testConfig(), ints(16), 40_000)
	if ipc < 3.5 {
		t.Fatalf("independent stream IPC %.2f, want near 4", ipc)
	}
}

func TestDependentChainBoundByLatency(t *testing.T) {
	// Every instruction depends on its predecessor with 3-cycle
	// latency units: IPC -> ~1/3.
	cfg := testConfig()
	cfg.Units[UIntALU] = UnitSpec{Count: 4, Latency: 3, Pipelined: true}
	script := []isa.Instruction{{Class: isa.IntALU, Dep1: 1}}
	ipc := measureIPC(t, cfg, script, 10_000)
	if ipc < 0.30 || ipc > 0.36 {
		t.Fatalf("dependent-chain IPC %.3f, want ~0.333", ipc)
	}
}

func TestPipelinedUnitThroughput(t *testing.T) {
	// One pipelined unit, independent ops: throughput 1/cycle
	// regardless of latency.
	cfg := testConfig()
	cfg.Units[UIntALU] = UnitSpec{Count: 1, Latency: 5, Pipelined: true}
	ipc := measureIPC(t, cfg, ints(8), 20_000)
	if ipc < 0.93 || ipc > 1.05 {
		t.Fatalf("pipelined unit IPC %.3f, want ~1", ipc)
	}
}

func TestNonPipelinedUnitThroughput(t *testing.T) {
	// One non-pipelined 4-cycle unit: throughput 1/4 per cycle.
	cfg := testConfig()
	cfg.Units[UIntALU] = UnitSpec{Count: 1, Latency: 4, Pipelined: false}
	ipc := measureIPC(t, cfg, ints(8), 10_000)
	if ipc < 0.23 || ipc > 0.27 {
		t.Fatalf("non-pipelined unit IPC %.3f, want ~0.25", ipc)
	}
}

func TestTwoNonPipelinedUnitsDouble(t *testing.T) {
	cfg := testConfig()
	cfg.Units[UIntALU] = UnitSpec{Count: 2, Latency: 4, Pipelined: false}
	ipc := measureIPC(t, cfg, ints(8), 10_000)
	if ipc < 0.46 || ipc > 0.54 {
		t.Fatalf("2x non-pipelined IPC %.3f, want ~0.5", ipc)
	}
}

func TestLoadLatencyExposedOnDependents(t *testing.T) {
	// load -> dependent ALU chain. With an L1 hit (1-cycle port +
	// 1-cycle cache), the pair costs ~3 cycles -> IPC ~0.66. With DL1
	// misses to L2 (10 cycles more) it drops sharply.
	cfg := testConfig()
	hitScript := []isa.Instruction{
		{Class: isa.Load, Addr: 0x100},
		{Class: isa.IntALU, Dep1: 1},
	}
	ipcHit := measureIPC(t, cfg, hitScript, 10_000)
	if ipcHit < 0.5 {
		t.Fatalf("L1-hit load chain IPC %.3f too low", ipcHit)
	}

	// Pointer-chase over a footprint bigger than DL1: each load
	// depends on the previous load's result, so the miss latency is
	// fully serialized (no memory-level parallelism to hide it).
	missScript := make([]isa.Instruction, 0, 256)
	for i := 0; i < 128; i++ {
		missScript = append(missScript,
			isa.Instruction{Class: isa.Load, Addr: uint64(i) * 1024 * 17, Dep1: 2},
			isa.Instruction{Class: isa.IntALU, Dep1: 1})
	}
	cfgSmall := testConfig()
	cfgSmall.Caches.L1D = cache.Config{Name: "DL1", SizeBytes: 4 << 10, LineBytes: 32, Ways: 2, HitLatency: 1}
	ipcMiss := measureIPC(t, cfgSmall, missScript, 10_000)
	if ipcMiss >= ipcHit*0.5 {
		t.Fatalf("serialized missing loads IPC %.3f not clearly below hitting loads %.3f", ipcMiss, ipcHit)
	}
}

func TestROBSizeLimitsMLP(t *testing.T) {
	// Long-latency independent loads: a bigger ROB overlaps more of
	// them (memory-level parallelism).
	mk := func(rob int) float64 {
		cfg := testConfig()
		cfg.ROBSize = rob
		// Random-ish spread far beyond L2: every load -> memory.
		script := make([]isa.Instruction, 0, 512)
		for i := 0; i < 256; i++ {
			script = append(script, isa.Instruction{Class: isa.Load, Addr: uint64(i) * 131072})
		}
		cfg.Caches.L1D = cache.Config{Name: "DL1", SizeBytes: 1 << 10, LineBytes: 32, Ways: 2, HitLatency: 1}
		cfg.Caches.L2 = cache.Config{Name: "L2", SizeBytes: 8 << 10, LineBytes: 64, Ways: 8, HitLatency: 10}
		return measureIPC(t, cfg, script, 5_000)
	}
	small := mk(8)
	big := mk(64)
	if big < small*1.5 {
		t.Fatalf("ROB 64 IPC %.3f not clearly above ROB 8 IPC %.3f on memory-bound stream", big, small)
	}
}

func TestISQCapacityStalls(t *testing.T) {
	// An FP op dependent on a missing load parks in the FP issue
	// queue for the full memory latency. With FPISQ=1 the parked op
	// monopolizes the queue and in-order dispatch stalls everything
	// behind it; with FPISQ=32 the independent FP work flows past.
	script := make([]isa.Instruction, 0, 16)
	script = append(script,
		isa.Instruction{Class: isa.Load, Addr: 0},  // rewritten below; always misses
		isa.Instruction{Class: isa.FPALU, Dep1: 1}, // parks until the load returns
	)
	for i := 0; i < 14; i++ {
		script = append(script, isa.Instruction{Class: isa.FPALU})
	}
	// Distinct far-apart load addresses so every load misses to
	// memory: rewrite Addr per slot in a long unrolled script.
	long := make([]isa.Instruction, 0, 16*64)
	for rep := 0; rep < 64; rep++ {
		for _, in := range script {
			if in.Class == isa.Load {
				in.Addr = uint64(rep) * 1 << 20
			}
			long = append(long, in)
		}
	}
	mk := func(isq int) float64 {
		cfg := testConfig()
		cfg.FPISQ = isq
		cfg.Caches.L1D = cache.Config{Name: "DL1", SizeBytes: 1 << 10, LineBytes: 32, Ways: 2, HitLatency: 1}
		cfg.Caches.L2 = cache.Config{Name: "L2", SizeBytes: 4 << 10, LineBytes: 64, Ways: 4, HitLatency: 10}
		return measureIPC(t, cfg, long, 20_000)
	}
	small := mk(1)
	big := mk(32)
	if big < small*1.5 {
		t.Fatalf("bigger FP ISQ did not help: %.3f vs %.3f", big, small)
	}
}

func TestMispredictPenaltyHurts(t *testing.T) {
	// A T,T,F,F pattern at one site against a 1-bit-history gshare:
	// the context "last branch taken" is followed by taken and
	// not-taken equally often, so the predictor sustains ~50%
	// mispredicts no matter how long it trains.
	script := []isa.Instruction{
		{Class: isa.IntALU},
		{Class: isa.Branch, Addr: 0x500, Taken: true},
		{Class: isa.IntALU},
		{Class: isa.Branch, Addr: 0x500, Taken: true},
		{Class: isa.IntALU},
		{Class: isa.Branch, Addr: 0x500, Taken: false},
		{Class: isa.IntALU},
		{Class: isa.Branch, Addr: 0x500, Taken: false},
	}
	mk := func(penalty int) float64 {
		cfg := testConfig()
		cfg.BranchHistoryBits = 1
		cfg.MispredictPenalty = penalty
		return measureIPC(t, cfg, script, 10_000)
	}
	small := mk(1)
	big := mk(30)
	if big >= small {
		t.Fatalf("penalty 30 IPC %.3f >= penalty 1 IPC %.3f", big, small)
	}
}

func TestPredictableBranchesCheap(t *testing.T) {
	// Always-taken branch at one site: gshare converges, and IPC
	// approaches the no-branch bound.
	script := []isa.Instruction{
		{Class: isa.IntALU},
		{Class: isa.IntALU},
		{Class: isa.IntALU},
		{Class: isa.Branch, Addr: 0x600, Taken: true},
	}
	ipc := measureIPC(t, testConfig(), script, 40_000)
	// Taken branches end fetch groups, so the bound is one group of 4
	// per cycle minus warmup.
	if ipc < 2.5 {
		t.Fatalf("predictable branch loop IPC %.3f", ipc)
	}
}

func TestStoreCommitWritesCache(t *testing.T) {
	cfg := testConfig()
	src := &scriptSource{script: []isa.Instruction{{Class: isa.Store, Addr: 0x1000}}}
	core := NewCore(cfg)
	arch := &ThreadArch{CodeSize: 4096}
	core.Bind(src, arch)
	for cycle := uint64(0); arch.Committed < 100; cycle++ {
		core.Step(cycle)
	}
	st := core.Hierarchy().L1D.Stats()
	if st.Accesses < 100 {
		t.Fatalf("stores committed %d but DL1 saw %d accesses", arch.Committed, st.Accesses)
	}
}

func TestLoadsTouchDataCacheNotICache(t *testing.T) {
	cfg := testConfig()
	src := &scriptSource{script: []isa.Instruction{{Class: isa.Load, Addr: 0x2000}}}
	core := NewCore(cfg)
	arch := &ThreadArch{CodeSize: 4096}
	core.Bind(src, arch)
	for cycle := uint64(0); arch.Committed < 100; cycle++ {
		core.Step(cycle)
	}
	if core.Hierarchy().L1D.Stats().Accesses == 0 {
		t.Fatal("loads never touched DL1")
	}
	if core.Hierarchy().L1I.Stats().Accesses == 0 {
		t.Fatal("fetch never touched IL1")
	}
}

func TestFPOpsUseFPQueue(t *testing.T) {
	cfg := testConfig()
	src := &scriptSource{script: []isa.Instruction{{Class: isa.FPMul}}}
	core := NewCore(cfg)
	arch := &ThreadArch{CodeSize: 4096}
	core.Bind(src, arch)
	for cycle := uint64(0); arch.Committed < 200; cycle++ {
		core.Step(cycle)
	}
	act := core.Activity()
	if act.FPISQWrites == 0 || act.FPISQIssues == 0 || act.FPRegWrites == 0 {
		t.Fatalf("FP stream missed FP structures: %+v", act)
	}
	if act.IntISQWrites != 0 {
		t.Fatalf("pure FP stream wrote int ISQ %d times", act.IntISQWrites)
	}
	if act.UnitOps[UFPMul] != act.FPISQIssues {
		t.Fatalf("FP unit ops %d != FP issues %d", act.UnitOps[UFPMul], act.FPISQIssues)
	}
}

func TestRegisterPressureStalls(t *testing.T) {
	// With only 4 int regs and long-latency ops holding them, in-
	// flight parallelism collapses.
	mk := func(regs int) float64 {
		cfg := testConfig()
		cfg.IntRegs = regs
		cfg.Units[UIntALU] = UnitSpec{Count: 4, Latency: 8, Pipelined: true}
		return measureIPC(t, cfg, ints(8), 10_000)
	}
	small := mk(4)
	big := mk(128)
	if big < small*1.5 {
		t.Fatalf("register pressure invisible: %.3f vs %.3f", big, small)
	}
}

func TestCommitInOrder(t *testing.T) {
	// A slow op followed by fast ones: nothing younger commits before
	// the slow head. Observe via committed count staying flat during
	// the divide's latency.
	cfg := testConfig()
	cfg.Units[UIntDiv] = UnitSpec{Count: 1, Latency: 30, Pipelined: false}
	script := append([]isa.Instruction{{Class: isa.IntDiv}}, ints(63)...)
	src := &scriptSource{script: script}
	core := NewCore(cfg)
	// A 64-byte code footprint warms the IL1 after two lines, so
	// fetch runs at full speed while the divide blocks commit.
	arch := &ThreadArch{CodeSize: 64}
	core.Bind(src, arch)
	sawFlat := false
	var cycle uint64
	for ; cycle < 5000 && arch.Committed < 64; cycle++ {
		core.Step(cycle)
		// While the 30-cycle divide sits unfinished at the ROB head,
		// younger completed ALUs pile up in flight with zero commits.
		if arch.Committed == 0 && core.InFlight() > 16 {
			sawFlat = true
		}
		if b := arch.Committed; b > 0 {
			_ = b
		}
	}
	if !sawFlat {
		t.Fatal("commit never stalled behind the slow head-of-ROB op")
	}
	// And commits per cycle never exceed the commit width.
	for ; arch.Committed < 200; cycle++ {
		before := arch.Committed
		core.Step(cycle)
		if arch.Committed-before > uint64(cfg.CommitWidth) {
			t.Fatalf("committed %d in one cycle, width %d", arch.Committed-before, cfg.CommitWidth)
		}
	}
}
