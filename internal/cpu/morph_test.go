package cpu

import (
	"testing"

	"ampsched/internal/workload"
)

func TestMorphUnitSets(t *testing.T) {
	strong := MorphStrongUnits()
	weak := MorphWeakUnits()
	intU := IntCoreConfig().Units
	fpU := FPCoreConfig().Units

	// Strong = strong int + strong fp.
	for _, k := range []UnitKind{UIntALU, UIntMul, UIntDiv} {
		if strong[k] != intU[k] {
			t.Errorf("strong %s != INT core's", k)
		}
		if weak[k] != fpU[k] {
			t.Errorf("weak %s != FP core's weak int", k)
		}
	}
	for _, k := range []UnitKind{UFPALU, UFPMul, UFPDiv} {
		if strong[k] != fpU[k] {
			t.Errorf("strong %s != FP core's", k)
		}
		if weak[k] != intU[k] {
			t.Errorf("weak %s != INT core's weak fp", k)
		}
	}
	// Every strong unit is pipelined; every weak one is not.
	for k := UIntALU; k <= UFPDiv; k++ {
		if !strong[k].Pipelined {
			t.Errorf("strong %s not pipelined", k)
		}
		if weak[k].Pipelined {
			t.Errorf("weak %s pipelined", k)
		}
	}
}

func TestMorphedConfigsValid(t *testing.T) {
	if err := MorphedStrongConfig().Validate(); err != nil {
		t.Fatal(err)
	}
	if err := MorphedWeakConfig().Validate(); err != nil {
		t.Fatal(err)
	}
	if MorphedStrongConfig().Name == MorphedWeakConfig().Name {
		t.Fatal("morphed configs share a name")
	}
}

func TestReconfigureRequiresDrained(t *testing.T) {
	core := NewCore(IntCoreConfig())
	b := workload.MustByName("pi")
	gen := workload.NewGenerator(b, 1, 0)
	core.Bind(gen, &ThreadArch{CodeSize: 1024})
	if err := core.Reconfigure(MorphStrongUnits()); err == nil {
		t.Fatal("Reconfigure accepted with a bound thread")
	}
	core.Unbind()
	if err := core.Reconfigure(MorphStrongUnits()); err != nil {
		t.Fatal(err)
	}
	if core.EffectiveUnits() != MorphStrongUnits() {
		t.Fatal("units not installed")
	}
}

func TestReconfigureRejectsInvalidUnits(t *testing.T) {
	core := NewCore(IntCoreConfig())
	bad := MorphStrongUnits()
	bad[UFPALU].Count = 0
	if err := core.Reconfigure(bad); err == nil {
		t.Fatal("invalid unit set accepted")
	}
}

func TestMorphedStrongCoreFasterOnFP(t *testing.T) {
	// The INT core with morphed-in strong FP units must run an FP
	// workload much faster than in its baseline shape.
	run := func(morph bool) uint64 {
		core := NewCore(IntCoreConfig())
		if morph {
			if err := core.Reconfigure(MorphStrongUnits()); err != nil {
				t.Fatal(err)
			}
		}
		b := workload.MustByName("fpstress")
		gen := workload.NewGenerator(b, 3, 0)
		arch := &ThreadArch{CodeSize: b.EffectiveCodeFootprint()}
		core.Bind(gen, arch)
		var cycle uint64
		for arch.Committed < 40_000 {
			core.Step(cycle)
			cycle++
		}
		return cycle
	}
	base := run(false)
	morphed := run(true)
	if morphed >= base*8/10 {
		t.Fatalf("morphed strong core not clearly faster on FP: %d vs %d cycles", morphed, base)
	}
}

func TestMorphPreservesCaches(t *testing.T) {
	core := NewCore(IntCoreConfig())
	core.Hierarchy().ReadData(0x7000)
	if err := core.Reconfigure(MorphStrongUnits()); err != nil {
		t.Fatal(err)
	}
	if !core.Hierarchy().L1D.Contains(0x7000) {
		t.Fatal("Reconfigure disturbed the caches; morphing only rewires datapaths")
	}
}

func TestMorphRoundTrip(t *testing.T) {
	core := NewCore(IntCoreConfig())
	orig := core.EffectiveUnits()
	if err := core.Reconfigure(MorphStrongUnits()); err != nil {
		t.Fatal(err)
	}
	if err := core.Reconfigure(orig); err != nil {
		t.Fatal(err)
	}
	if core.EffectiveUnits() != IntCoreConfig().Units {
		t.Fatal("round trip did not restore baseline units")
	}
}

func TestPrefetcherImprovesStreaming(t *testing.T) {
	// The substrate ablation behind BenchmarkAblationPrefetcher: the
	// L2 next-line prefetcher must speed up a streaming workload.
	run := func(prefetch bool) uint64 {
		cfg := IntCoreConfig()
		cfg.Caches.NextLinePrefetch = prefetch
		_, _, cycles := runSolo(t, cfg, "swim", 8, 40_000)
		return cycles
	}
	off := run(false)
	on := run(true)
	if on >= off {
		t.Fatalf("prefetch did not speed up swim: %d vs %d cycles", on, off)
	}
}
