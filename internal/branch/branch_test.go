package branch

import (
	"testing"
	"testing/quick"

	"ampsched/internal/rng"
)

func TestGShareLearnsBias(t *testing.T) {
	g := NewGShare(12)
	pc := uint64(0x400100)
	for i := 0; i < 100; i++ {
		g.Update(pc, true)
	}
	if !g.Predict(pc) {
		t.Fatal("did not learn always-taken branch")
	}
	st := g.Stats()
	if st.Lookups != 100 {
		t.Fatalf("lookups = %d", st.Lookups)
	}
	// Warmup cost: the global history changes the index for the first
	// ~historyBits updates, each landing on an untrained counter.
	if st.Mispredicts > 12+4 {
		t.Fatalf("mispredicts = %d on a trivially biased branch", st.Mispredicts)
	}
}

func TestGShareAccuracyTracksBias(t *testing.T) {
	r := rng.New(1)
	for _, bias := range []float64{0.99, 0.85, 0.6} {
		g := NewGShare(12)
		pc := uint64(0x400200)
		const n = 20000
		for i := 0; i < n; i++ {
			g.Update(pc, r.Bool(bias))
		}
		rate := g.Stats().MispredictRate()
		// A 2-bit counter on an i.i.d. biased stream mispredicts at
		// least (1-bias) and at most ~2*(1-bias)*bias + slack.
		lo := (1 - bias) * 0.7
		hi := 2*(1-bias)*bias + 0.08
		if rate < lo || rate > hi {
			t.Errorf("bias %.2f: mispredict rate %.3f outside [%.3f, %.3f]", bias, rate, lo, hi)
		}
	}
}

func TestGShareAlternatingPattern(t *testing.T) {
	// Global history lets gshare learn a strict alternation almost
	// perfectly after warmup.
	g := NewGShare(12)
	pc := uint64(0x400300)
	for i := 0; i < 1000; i++ {
		g.Update(pc, i%2 == 0)
	}
	before := g.Stats().Mispredicts
	for i := 1000; i < 2000; i++ {
		g.Update(pc, i%2 == 0)
	}
	after := g.Stats().Mispredicts
	if after-before > 20 {
		t.Fatalf("gshare failed to learn alternation: %d mispredicts in steady state", after-before)
	}
}

func TestGShareReset(t *testing.T) {
	g := NewGShare(10)
	for i := 0; i < 50; i++ {
		g.Update(0x100, true)
	}
	st := g.Stats()
	g.Reset()
	if g.Stats() != st {
		t.Fatal("Reset cleared statistics")
	}
	if g.Predict(0x100) {
		t.Fatal("Reset did not clear counters to weakly not-taken")
	}
}

func TestGShareSizePanics(t *testing.T) {
	for _, bits := range []uint{0, 25} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewGShare(%d) did not panic", bits)
				}
			}()
			NewGShare(bits)
		}()
	}
}

func TestBimodalLearnsPerPC(t *testing.T) {
	b := NewBimodal(12)
	taken := uint64(0x1000)
	notTaken := uint64(0x2000)
	for i := 0; i < 100; i++ {
		b.Update(taken, true)
		b.Update(notTaken, false)
	}
	if !b.Predict(taken) || b.Predict(notTaken) {
		t.Fatal("bimodal failed to learn per-PC biases")
	}
}

func TestBimodalSizePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewBimodal(0) did not panic")
		}
	}()
	NewBimodal(0)
}

func TestStatsSub(t *testing.T) {
	a := Stats{Lookups: 10, Mispredicts: 3}
	b := Stats{Lookups: 4, Mispredicts: 1}
	if got := a.Sub(b); got != (Stats{Lookups: 6, Mispredicts: 2}) {
		t.Fatalf("Sub = %+v", got)
	}
}

func TestMispredictRateEmpty(t *testing.T) {
	if (Stats{}).MispredictRate() != 0 {
		t.Fatal("empty rate not 0")
	}
}

func TestQuickMispredictsBounded(t *testing.T) {
	f := func(seed uint64, n uint16) bool {
		g := NewGShare(8)
		r := rng.New(seed)
		for i := 0; i < int(n); i++ {
			g.Update(r.Uint64n(1<<16), r.Bool(0.5))
		}
		st := g.Stats()
		return st.Mispredicts <= st.Lookups && st.Lookups == uint64(n)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestPredictorInterface(t *testing.T) {
	var _ Predictor = NewGShare(8)
	var _ Predictor = NewBimodal(8)
}
