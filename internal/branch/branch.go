// Package branch implements the branch direction predictors used by
// the core model.
//
// The default predictor is gshare (McFarling): a table of 2-bit
// saturating counters indexed by the XOR of the branch PC and a global
// history register. Workload phases control the achievable accuracy
// through per-site outcome biases (see internal/workload), so phases
// with low BranchPredictability produce real misprediction stalls in
// the pipeline model. A simple bimodal predictor is provided as an
// ablation baseline.
package branch

// Predictor is a branch direction predictor.
type Predictor interface {
	// Predict returns the predicted direction for the branch at pc.
	Predict(pc uint64) bool
	// Update trains the predictor with the actual outcome.
	Update(pc uint64, taken bool)
	// Reset clears all state (used when a core is reinitialized; a
	// thread swap does NOT reset — the migrated thread retrains on
	// the destination core's tables, a real migration cost).
	Reset()
	// Stats returns monotonic lookup/mispredict counters.
	Stats() Stats
}

// Stats are monotonic predictor counters.
type Stats struct {
	Lookups     uint64
	Mispredicts uint64
}

// MispredictRate returns mispredicts/lookups, or 0 if unused.
func (s Stats) MispredictRate() float64 {
	if s.Lookups == 0 {
		return 0
	}
	return float64(s.Mispredicts) / float64(s.Lookups)
}

// Sub returns s - o component-wise.
func (s Stats) Sub(o Stats) Stats {
	return Stats{Lookups: s.Lookups - o.Lookups, Mispredicts: s.Mispredicts - o.Mispredicts}
}

// GShare is a global-history XOR-indexed 2-bit counter predictor.
type GShare struct {
	historyBits uint
	history     uint64
	mask        uint64
	table       []uint8
	stats       Stats
}

// NewGShare returns a gshare predictor with 2^historyBits counters.
func NewGShare(historyBits uint) *GShare {
	if historyBits == 0 || historyBits > 24 {
		panic("branch: historyBits must be in [1, 24]")
	}
	g := &GShare{
		historyBits: historyBits,
		mask:        (1 << historyBits) - 1,
		table:       make([]uint8, 1<<historyBits),
	}
	g.Reset()
	return g
}

func (g *GShare) index(pc uint64) uint64 {
	return ((pc >> 2) ^ g.history) & g.mask
}

// Predict implements Predictor.
func (g *GShare) Predict(pc uint64) bool {
	return g.table[g.index(pc)] >= 2
}

// Update implements Predictor. It counts a lookup+train pair, updates
// the counter and shifts the outcome into the global history.
func (g *GShare) Update(pc uint64, taken bool) {
	i := g.index(pc)
	g.stats.Lookups++
	pred := g.table[i] >= 2
	if pred != taken {
		g.stats.Mispredicts++
	}
	if taken {
		if g.table[i] < 3 {
			g.table[i]++
		}
	} else if g.table[i] > 0 {
		g.table[i]--
	}
	g.history = ((g.history << 1) | b2u(taken)) & g.mask
}

// Reset implements Predictor. Counters start weakly not-taken and the
// history clears; statistics are preserved (they are monotonic).
func (g *GShare) Reset() {
	for i := range g.table {
		g.table[i] = 1
	}
	g.history = 0
}

// Stats implements Predictor.
func (g *GShare) Stats() Stats { return g.stats }

// Bimodal is a PC-indexed 2-bit counter predictor without history.
type Bimodal struct {
	mask  uint64
	table []uint8
	stats Stats
}

// NewBimodal returns a bimodal predictor with 2^indexBits counters.
func NewBimodal(indexBits uint) *Bimodal {
	if indexBits == 0 || indexBits > 24 {
		panic("branch: indexBits must be in [1, 24]")
	}
	b := &Bimodal{
		mask:  (1 << indexBits) - 1,
		table: make([]uint8, 1<<indexBits),
	}
	b.Reset()
	return b
}

// Predict implements Predictor.
func (b *Bimodal) Predict(pc uint64) bool {
	return b.table[(pc>>2)&b.mask] >= 2
}

// Update implements Predictor.
func (b *Bimodal) Update(pc uint64, taken bool) {
	i := (pc >> 2) & b.mask
	b.stats.Lookups++
	pred := b.table[i] >= 2
	if pred != taken {
		b.stats.Mispredicts++
	}
	if taken {
		if b.table[i] < 3 {
			b.table[i]++
		}
	} else if b.table[i] > 0 {
		b.table[i]--
	}
}

// Reset implements Predictor.
func (b *Bimodal) Reset() {
	for i := range b.table {
		b.table[i] = 1
	}
}

// Stats implements Predictor.
func (b *Bimodal) Stats() Stats { return b.stats }

func b2u(v bool) uint64 {
	if v {
		return 1
	}
	return 0
}
