package fault

import "ampsched/internal/telemetry"

// planTel holds a plan's resolved telemetry handles. The zero value
// (telemetry disabled) is fully functional: every handle is nil and
// every call a no-op, so injection sites publish unconditionally.
type planTel struct {
	t *telemetry.Telemetry

	dropped    *telemetry.Counter
	stale      *telemetry.Counter
	noised     *telemetry.Counter
	swapFails  *telemetry.Counter
	swapDelays *telemetry.Counter
	corrupted  *telemetry.Counter
}

// event publishes one injection to the event stream when it is live.
// detail names the fault subkind ("swap_fail", "sample_drop", ...).
func (pt *planTel) event(cycle uint64, detail string) {
	if pt.t.Eventing() {
		e := telemetry.NewEvent("fault")
		e.Cycle = cycle
		e.Detail = detail
		pt.t.Emit(e)
	}
}

// SetTelemetry publishes the plan's injections into t: counters
// "fault.{samples_dropped,samples_stale,samples_noised,swaps_failed,
// swaps_delayed,bytes_corrupted}" and — when t has sinks — one "fault"
// event per injection with the subkind in Detail. Observers already
// built by Observer share the plan's handles, so SetTelemetry may be
// called before or after wiring the observers. A nil t disables
// publication again.
func (p *Plan) SetTelemetry(t *telemetry.Telemetry) {
	if t == nil {
		p.tel = planTel{}
		return
	}
	p.tel = planTel{
		t:          t,
		dropped:    t.Counter("fault.samples_dropped"),
		stale:      t.Counter("fault.samples_stale"),
		noised:     t.Counter("fault.samples_noised"),
		swapFails:  t.Counter("fault.swaps_failed"),
		swapDelays: t.Counter("fault.swaps_delayed"),
		corrupted:  t.Counter("fault.bytes_corrupted"),
	}
}
